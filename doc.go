// Package heteroswitch is a from-scratch Go reproduction of "HeteroSwitch:
// Characterizing and Taming System-Induced Data Heterogeneity in Federated
// Learning" (Kim et al., MLSys 2024).
//
// The implementation lives under internal/: a neural-network training stack
// (internal/nn, internal/tensor), a camera + ISP simulation that generates
// system-induced data heterogeneity (internal/camera, internal/isp,
// internal/device, internal/scene), the federated-learning engine and
// baselines (internal/fl), the HeteroSwitch algorithm (internal/core), and
// one harness per paper table/figure (internal/experiments). Entry points:
// cmd/heterobench, cmd/flsim, cmd/ispdemo, and the runnable examples/.
//
// The root package exists to carry the repository-level benchmarks in
// bench_test.go, one per table and figure of the paper's evaluation.
package heteroswitch
