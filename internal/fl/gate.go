package fl

// This file holds update validation and corruption injection: the
// server-side gate that keeps poisoned client updates out of the global
// accumulator, and the helper that applies a faults.Mode to a finished
// result so chaos runs can exercise that gate end to end. Both engines
// share these: the sync Server gates per round, the AsyncServer per fold.

import (
	"math"

	"heteroswitch/internal/faults"
	"heteroswitch/internal/nn"
)

// updateValid reports whether a client update passes the validation gate.
// The delta is the client's reported weights minus the global weights it
// trained from, over parameters and optimizer/BN states, accumulated in
// float64. maxNorm <= 0 disables the gate (always valid); otherwise a
// non-finite delta is rejected, and a finite one is rejected when its L2
// norm exceeds maxNorm (maxNorm = +Inf keeps only the non-finite check).
func updateValid(global, w nn.Weights, maxNorm float64) bool {
	if maxNorm <= 0 {
		return true
	}
	var ss float64
	for i, p := range w.Params {
		g := global.Params[i].Data()
		for j, v := range p.Data() {
			d := float64(v) - float64(g[j])
			ss += d * d
		}
	}
	for i, s := range w.States {
		g := global.States[i].Data()
		for j, v := range s.Data() {
			d := float64(v) - float64(g[j])
			ss += d * d
		}
	}
	// A NaN or ±Inf anywhere in the update poisons ss, so this single
	// comparison covers both the non-finite and the norm check (NaN
	// compares false; +Inf exceeds any finite bound and maxNorm = +Inf
	// admits every finite delta).
	return ss <= maxNorm*maxNorm
}

// admitUpdate applies the configured corruption process to a finished
// client update (keyed by client and round, so every run replays the same
// poisonings) and passes it through the validation gate, reporting whether
// the result may be folded. Safe to call concurrently from round workers:
// it only reads the round's global weights and mutates the result.
func (s *Server) admitUpdate(res *ClientResult, round int) bool {
	if m := s.Cfg.Faults.Corruption(res.ClientID, round); m != faults.None {
		corruptUpdate(m, s.Global, res.Weights)
	}
	return updateValid(s.Global, res.Weights, s.Cfg.MaxDeltaNorm)
}

// corruptUpdate poisons a completed client update in place according to the
// drawn corruption mode, relative to the global weights it trained from:
// NaN and Inf plant a non-finite element in the first parameter tensor;
// Blowup scales the whole delta by 1e6, keeping values finite (modulo
// float32 overflow) but pushing the norm far beyond honest training.
func corruptUpdate(mode faults.Mode, global, w nn.Weights) {
	switch mode {
	case faults.NaN, faults.Inf:
		poison := float32(math.NaN())
		if mode == faults.Inf {
			poison = float32(math.Inf(1))
		}
		for _, p := range w.Params {
			if d := p.Data(); len(d) > 0 {
				d[0] = poison
				return
			}
		}
	case faults.Blowup:
		const factor = 1e6
		for i, p := range w.Params {
			g := global.Params[i].Data()
			d := p.Data()
			for j := range d {
				d[j] = g[j] + (d[j]-g[j])*factor
			}
		}
	}
}
