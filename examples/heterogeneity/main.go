// Heterogeneity walks through the characterization pipeline at image level:
// the same latent scene photographed by different devices, as RAW vs
// processed, and with individual ISP stages switched off — quantifying each
// effect by pixel distance, the precursor of the paper's §3 analysis.
//
//	go run ./examples/heterogeneity
package main

import (
	"fmt"
	"log"

	"heteroswitch/internal/device"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/isp"
	"heteroswitch/internal/scene"
)

func main() {
	gen := scene.NewImageNet12(64)
	sc := gen.Render(4, frand.New(3)) // ambulance: strong red/white signature

	fmt.Println("1. Same scene, different devices (pixel MSE to Pixel5's capture):")
	profiles := device.Profiles()
	var ref *isp.Image
	for i, p := range profiles {
		im, err := p.CaptureProcessed(sc, frand.New(uint64(i)+10))
		if err != nil {
			log.Fatal(err)
		}
		im = im.Resize(32, 32)
		if p.Name == "Pixel5" {
			ref = im
		}
	}
	for i, p := range profiles {
		im, err := p.CaptureProcessed(sc, frand.New(uint64(i)+10))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-8s MSE %.5f\n", p.Name, ref.MSE(im.Resize(32, 32)))
	}

	fmt.Println("\n2. RAW vs processed heterogeneity (Pixel5 vs S6):")
	p5, _ := device.ByName("Pixel5")
	s6, _ := device.ByName("S6")
	raw5, err := p5.CaptureRAW(sc, frand.New(1))
	if err != nil {
		log.Fatal(err)
	}
	raw6, err := s6.CaptureRAW(sc, frand.New(2))
	if err != nil {
		log.Fatal(err)
	}
	proc5, err := p5.CaptureProcessed(sc, frand.New(1))
	if err != nil {
		log.Fatal(err)
	}
	proc6, err := s6.CaptureProcessed(sc, frand.New(2))
	if err != nil {
		log.Fatal(err)
	}
	m5, m6 := raw5.ChannelMeans(), raw6.ChannelMeans()
	fmt.Printf("   RAW channel means  Pixel5 %.3f/%.3f/%.3f  S6 %.3f/%.3f/%.3f (uncorrected casts)\n",
		m5[0], m5[1], m5[2], m6[0], m6[1], m6[2])
	m5, m6 = proc5.ChannelMeans(), proc6.ChannelMeans()
	fmt.Printf("   processed means    Pixel5 %.3f/%.3f/%.3f  S6 %.3f/%.3f/%.3f (WB normalized)\n",
		m5[0], m5[1], m5[2], m6[0], m6[1], m6[2])

	fmt.Println("\n3. ISP stage contributions (S9 sensor, baseline vs stage omitted):")
	s9, _ := device.ByName("S9")
	base, err := s9.CaptureWithPipeline(sc, isp.Baseline(), frand.New(5))
	if err != nil {
		log.Fatal(err)
	}
	for stage := isp.StageDemosaic; stage < isp.NumStages; stage++ {
		pipe, err := isp.Baseline().Option(stage, 1)
		if err != nil {
			log.Fatal(err)
		}
		im, err := s9.CaptureWithPipeline(sc, pipe, frand.New(5))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-14s option1 MSE %.5f\n", stage, base.MSE(im))
	}
	fmt.Println("\nWhite balance and tone dominate — the paper's §3.4 finding.")
}
