//go:build !race

package nn

// raceEnabled reports a -race build (see race_on_test.go).
const raceEnabled = false
