package fl

import (
	"math"
	"sync"

	"heteroswitch/internal/nn"
)

// weightedAverage returns the sample-count-weighted average of client
// weights (params and states) — the FedAvg aggregation rule.
func weightedAverage(results []ClientResult) nn.Weights {
	var total float64
	for _, r := range results {
		total += float64(r.NumSamples)
	}
	avg := results[0].Weights.Zero()
	for _, r := range results {
		avg.Axpy(float32(float64(r.NumSamples)/total), r.Weights)
	}
	return avg
}

// FedAvg is McMahan et al.'s federated averaging: plain local SGD and
// sample-weighted model averaging. The paper's baseline. It implements
// StreamingAggregator (see streaming.go), so the server aggregates it
// shard-parallel without materializing all K snapshots.
type FedAvg struct{}

// Name implements Strategy.
func (FedAvg) Name() string { return "FedAvg" }

// LocalUpdate implements Strategy.
func (FedAvg) LocalUpdate(ctx *ClientContext) ClientResult {
	init := EvalLoss(ctx.Net, ctx.Loss, ctx.Client.Data, ctx.Cfg.BatchSize)
	trainLoss := TrainLocal(ctx.Net, ctx.Client.Data, ctx.Cfg, ctx.Loss, ctx.RNG, nil, nil)
	return ClientResult{
		ClientID: ctx.Client.ID, DeviceIdx: ctx.Client.Device,
		NumSamples: ctx.Client.Data.Len(),
		Weights:    ctx.SnapshotWeights(),
		TrainLoss:  trainLoss, InitLoss: init,
	}
}

// Aggregate implements Strategy.
func (FedAvg) Aggregate(global nn.Weights, results []ClientResult, cfg Config) nn.Weights {
	if len(results) == 0 {
		return global
	}
	return weightedAverage(results)
}

// FedProx (Li et al. 2020) adds a proximal term μ/2·||w - w_global||² to the
// local objective, pulling client updates toward the global model.
type FedProx struct {
	Mu float64
}

// Name implements Strategy.
func (p *FedProx) Name() string { return "FedProx" }

// LocalUpdate implements Strategy.
func (p *FedProx) LocalUpdate(ctx *ClientContext) ClientResult {
	init := EvalLoss(ctx.Net, ctx.Loss, ctx.Client.Data, ctx.Cfg.BatchSize)
	mu := float32(p.Mu)
	hook := func(ps []*nn.Param) {
		// grad += μ (w - w_global)
		for i, param := range ps {
			g, w, wg := param.Grad.Data(), param.W.Data(), ctx.Global.Params[i].Data()
			for j := range g {
				g[j] += mu * (w[j] - wg[j])
			}
		}
	}
	trainLoss := TrainLocal(ctx.Net, ctx.Client.Data, ctx.Cfg, ctx.Loss, ctx.RNG, hook, nil)
	return ClientResult{
		ClientID: ctx.Client.ID, DeviceIdx: ctx.Client.Device,
		NumSamples: ctx.Client.Data.Len(),
		Weights:    ctx.SnapshotWeights(),
		TrainLoss:  trainLoss, InitLoss: init,
	}
}

// Aggregate implements Strategy (same rule as FedAvg).
func (p *FedProx) Aggregate(global nn.Weights, results []ClientResult, cfg Config) nn.Weights {
	if len(results) == 0 {
		return global
	}
	return weightedAverage(results)
}

// QFedAvg implements q-FFL (Li et al. 2019): clients with higher loss get
// up-weighted updates, trading average accuracy for fairness. q=0 reduces to
// (unweighted) FedAvg.
type QFedAvg struct {
	Q float64
}

// Name implements Strategy.
func (q *QFedAvg) Name() string { return "q-FedAvg" }

// LocalUpdate implements Strategy: standard local SGD; the magic is in
// Aggregate.
func (q *QFedAvg) LocalUpdate(ctx *ClientContext) ClientResult {
	return FedAvg{}.LocalUpdate(ctx)
}

// Aggregate implements the q-FFL update:
//
//	Δ_k = (w_global - w_k)/η,  F_k = L_k + ε
//	w ← w_global - Σ_k F_k^q Δ_k / Σ_k (q F_k^{q-1} ||Δ_k||² + F_k^q/η)
func (q *QFedAvg) Aggregate(global nn.Weights, results []ClientResult, cfg Config) nn.Weights {
	if len(results) == 0 {
		return global
	}
	const eps = 1e-10
	invLR := 1.0 / cfg.LR
	num := global.Zero()
	var denom float64
	for _, r := range results {
		delta := global.Sub(r.Weights) // w_global - w_k
		delta.Scale(float32(invLR))
		f := r.InitLoss + eps
		fq := math.Pow(f, q.Q)
		var normSq float64
		for _, p := range delta.Params {
			normSq += p.L2NormSq()
		}
		num.Axpy(float32(fq), delta)
		denom += q.Q*math.Pow(f, q.Q-1)*normSq + fq*invLR
	}
	if denom <= 0 {
		return weightedAverage(results)
	}
	out := global.Clone()
	out.Axpy(float32(-1.0/denom), num)
	// States (BN statistics) are not part of the q-FFL objective; average
	// them as FedAvg does so inference stays calibrated.
	avg := weightedAverage(results)
	for i := range out.States {
		out.States[i].CopyFrom(avg.States[i])
	}
	return out
}

// Scaffold implements SCAFFOLD (Karimireddy et al. 2020): client and server
// control variates correct the client drift caused by non-IID data.
type Scaffold struct {
	// TotalClients is N, used in the server control-variate update.
	TotalClients int

	mu      sync.Mutex
	c       nn.Weights         // server control variate
	clients map[int]nn.Weights // per-client control variates c_k
	deltas  map[int]nn.Weights // per-round c_k deltas, keyed by client
	stepCnt map[int]int        // local step counts per client
}

// Name implements Strategy.
func (s *Scaffold) Name() string { return "Scaffold" }

func (s *Scaffold) ensure(global nn.Weights, clientID int) (c, ck nn.Weights) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.clients == nil {
		s.clients = map[int]nn.Weights{}
		s.deltas = map[int]nn.Weights{}
		s.stepCnt = map[int]int{}
	}
	if s.c.Params == nil {
		s.c = global.Zero()
	}
	ck, ok := s.clients[clientID]
	if !ok {
		ck = global.Zero()
		s.clients[clientID] = ck
	}
	return s.c.Clone(), ck.Clone()
}

// LocalUpdate implements Strategy. Local steps use w ← w - η(g - c_k + c);
// afterwards c_k ← c_k - c + (w_global - w_local)/(Sη).
func (s *Scaffold) LocalUpdate(ctx *ClientContext) ClientResult {
	c, ck := s.ensure(ctx.Global, ctx.Client.ID)
	init := EvalLoss(ctx.Net, ctx.Loss, ctx.Client.Data, ctx.Cfg.BatchSize)
	steps := 0
	hook := func(ps []*nn.Param) {
		for i, param := range ps {
			g, cd, ckd := param.Grad.Data(), c.Params[i].Data(), ck.Params[i].Data()
			for j := range g {
				g[j] += cd[j] - ckd[j]
			}
		}
		steps++
	}
	trainLoss := TrainLocal(ctx.Net, ctx.Client.Data, ctx.Cfg, ctx.Loss, ctx.RNG, hook, nil)
	w := ctx.Net.Snapshot()

	if steps > 0 {
		// c_k_new = c_k - c + (w_global - w_local)/(S·η)
		ckNew := ck.Clone()
		ckNew.Axpy(-1, c)
		drift := ctx.Global.Sub(w)
		drift.Scale(float32(1.0 / (float64(steps) * ctx.Cfg.LR)))
		for i := range ckNew.Params {
			ckNew.Params[i].AddInPlace(drift.Params[i])
		}
		dck := ckNew.Clone()
		dck.Axpy(-1, ck)
		s.mu.Lock()
		s.clients[ctx.Client.ID] = ckNew
		s.deltas[ctx.Client.ID] = dck
		s.stepCnt[ctx.Client.ID] = steps
		s.mu.Unlock()
	}
	return ClientResult{
		ClientID: ctx.Client.ID, DeviceIdx: ctx.Client.Device,
		NumSamples: ctx.Client.Data.Len(),
		Weights:    w,
		TrainLoss:  trainLoss, InitLoss: init,
	}
}

// Aggregate implements Strategy: average client models, then advance the
// server control variate by |S|/N of the mean client-variate delta.
func (s *Scaffold) Aggregate(global nn.Weights, results []ClientResult, cfg Config) nn.Weights {
	if len(results) == 0 {
		return global
	}
	out := weightedAverage(results)
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.TotalClients
	if n <= 0 {
		n = len(results)
	}
	if s.c.Params != nil {
		scale := float32(1.0 / float64(n))
		for _, r := range results {
			if d, ok := s.deltas[r.ClientID]; ok {
				// c += (1/N) Σ Δc_k over sampled clients.
				for i := range s.c.Params {
					s.c.Params[i].Axpy(scale, d.Params[i])
				}
				delete(s.deltas, r.ClientID)
			}
		}
	}
	return out
}
