package fl

import (
	"heteroswitch/internal/dataset"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/tensor"
)

// EvalLoss computes the mean loss of the network on ds in inference mode —
// L_init in Algorithm 1 terms. It handles both single- and multi-label data.
func EvalLoss(net *nn.Network, loss nn.Loss, ds *dataset.Dataset, batch int) float64 {
	if ds.Len() == 0 {
		return 0
	}
	var total float64
	for lo := 0; lo < ds.Len(); lo += batch {
		hi := lo + batch
		if hi > ds.Len() {
			hi = ds.Len()
		}
		var l float64
		if ds.Samples[lo].Multi != nil {
			x, y := ds.BatchMulti(lo, hi)
			l, _ = loss.Eval(net.Forward(x, false), nn.DenseTarget(y))
		} else {
			x, labels := ds.Batch(lo, hi)
			l, _ = loss.Eval(net.Forward(x, false), nn.ClassTarget(labels))
		}
		total += l * float64(hi-lo)
	}
	return total / float64(ds.Len())
}

// StepHook observes/adjusts parameter gradients right before each SGD step;
// FedProx adds its proximal pull here and SCAFFOLD its control variates.
type StepHook func(params []*nn.Param)

// BatchHook runs after each SGD step; HeteroSwitch maintains its per-batch
// SWA average here. batchIdx counts steps from 0 across all epochs.
type BatchHook func(net *nn.Network, batchIdx int)

// TrainLocal runs cfg.LocalEpochs of minibatch SGD on the client dataset and
// returns the running mean of batch losses (Algorithm 1's L_train). Batches
// are reshuffled each epoch from rng. stepHook and batchHook may be nil.
func TrainLocal(net *nn.Network, ds *dataset.Dataset, cfg Config, loss nn.Loss,
	rng *frand.RNG, stepHook StepHook, batchHook BatchHook) float64 {
	opt := nn.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	params := net.Params()
	var lossSum float64
	batchIdx := 0
	order := make([]int, ds.Len())
	for i := range order {
		order[i] = i
	}
	// One reusable shuffled view: only the sample headers move per epoch,
	// instead of allocating a fresh Subset dataset every epoch.
	shuffled := &dataset.Dataset{
		Samples:    make([]dataset.Sample, ds.Len()),
		NumClasses: ds.NumClasses,
	}
	for e := 0; e < cfg.LocalEpochs; e++ {
		rng.ShuffleInts(order)
		for i, j := range order {
			shuffled.Samples[i] = ds.Samples[j]
		}
		for lo := 0; lo < shuffled.Len(); lo += cfg.BatchSize {
			hi := lo + cfg.BatchSize
			if hi > shuffled.Len() {
				hi = shuffled.Len()
			}
			var l float64
			if shuffled.Samples[lo].Multi != nil {
				x, y := shuffled.BatchMulti(lo, hi)
				out := net.Forward(x, true)
				var gradT *tensor.Tensor
				l, gradT = loss.Eval(out, nn.DenseTarget(y))
				net.Backward(gradT)
			} else {
				x, labels := shuffled.Batch(lo, hi)
				out := net.Forward(x, true)
				var gradT *tensor.Tensor
				l, gradT = loss.Eval(out, nn.ClassTarget(labels))
				net.Backward(gradT)
			}
			if stepHook != nil {
				stepHook(params)
			}
			opt.Step(params)
			if batchHook != nil {
				batchHook(net, batchIdx)
			}
			lossSum += l
			batchIdx++
		}
	}
	if batchIdx == 0 {
		return 0
	}
	return lossSum / float64(batchIdx)
}
