package nn

import (
	"fmt"
	"math"
	"sync/atomic"

	"heteroswitch/internal/tensor"
)

// Frozen is a compiled inference-only view of a Network: the layer list is
// flattened (nested Networks inline), every BatchNorm2D that directly
// follows a Conv2D or Dense is folded into that layer's weights and bias
// (using the RUNNING statistics, so no batch reduction runs at all), and the
// activation that follows a matmul layer is fused into the kernel as a row
// epilogue. No op caches anything for a backward pass, so the frozen forward
// touches strictly less memory than Network.Forward(x, false).
//
// A frozen view shares its source network's arena and intra-op budget like
// any layer: Infer resets the arena exactly like Network.Forward (outputs
// are valid until the next Forward/Infer on the same network), and every
// fused kernel, pooling loop, activation sweep, and the residual (unfolded)
// BatchNorm eval path splits its work under the budget via
// internal/parallel. Like Network, a Frozen is not safe for concurrent use;
// freeze one replica per goroutine.
//
// Numerical contract: BN folding reorders float operations, so a frozen
// forward matches the reference eval forward to a small tolerance (≤ 1e-5
// max-abs on the test fixtures) rather than bit-exactly; networks without
// folded BN (pure fusion) are bit-identical. At a FIXED weight state the
// frozen forward is itself bit-identical across intra-op budgets, because
// chunks own disjoint output rows and epilogues are row-local.
type Frozen struct {
	net    *Network
	ops    []frozenOp
	nslots int // packed-weight slots the compiled program uses
}

// frozenOp is one step of the compiled inference program.
type frozenOp interface {
	infer(f *Frozen, x *tensor.Tensor) *tensor.Tensor
}

// refolder is implemented by ops that cache weights derived from trainable
// parameters (folded conv/dense, the standalone BN scale/shift) and by
// composites that contain such ops. Freeze re-runs refold on every call so a
// cached Frozen always reflects the network's current weights; ps (nil
// outside a panel cache) is the shared panel set the op's packed-weight slot
// lives in.
type refolder interface {
	refold(ps *panelSet)
}

// Freeze returns the network's cached inference view, compiling it on first
// use and re-folding the BatchNorm weights on every call so the view tracks
// the current parameters. The architecture must not change after the first
// Freeze (layers are compiled once); weights may change freely between
// calls. Typical use: freeze once per evaluation pass, run every batch
// through the frozen view.
//
// When a panel cache is attached (SetPanelSource — the serving replica
// path), the refold binds every matmul op to the shared panel set of the
// current weight version, and the reference on the previous version's set is
// dropped only AFTER the new set is live — the ordering the publish→retire
// safety of shared panels stands on. Without a cache each op refreshes its
// own private handle.
func (n *Network) Freeze() *Frozen {
	if n.frozen == nil {
		c := &opCompiler{}
		n.frozen = &Frozen{net: n, ops: c.compile(flattenLayers(n.LayerList, nil))}
		n.frozen.nslots = c.slots
	}
	ps := n.panelSet
	if n.panelCache != nil && (ps == nil || ps.version != n.panelVersion) {
		ps = n.panelCache.Acquire(n.panelVersion, n.frozen.nslots)
	}
	refoldOps(n.frozen.ops, ps)
	if ps != n.panelSet {
		if n.panelSet != nil {
			n.panelCache.Release(n.panelSet)
		}
		n.panelSet = ps
	}
	return n.frozen
}

// SetPanelSource attaches the shared panel cache and the weight version the
// next Freeze folds for. Serving replicas call this from Ensure before
// EvalView; networks without a panel source keep private per-op handles.
func (n *Network) SetPanelSource(pc *PanelCache, version int) {
	n.panelCache, n.panelVersion = pc, version
}

// Infer runs the compiled inference program. When the network owns its
// arena, the arena is reset first — identical lifetime contract to
// Network.Forward: the returned tensor is valid until the next Forward or
// Infer on this network.
func (f *Frozen) Infer(x *tensor.Tensor) *tensor.Tensor {
	if f.net.ownsArena && f.net.arena != nil {
		f.net.arena.Reset()
	}
	return runOps(f, f.ops, x)
}

// alloc returns an uninitialized per-batch tensor from the shared arena
// (tensor.New without an arena), mirroring arenaScratch.allocUninit.
func (f *Frozen) alloc(shape ...int) *tensor.Tensor {
	if a := f.net.arena; a != nil {
		return a.GetUninit(shape...)
	}
	return tensor.New(shape...)
}

// budget returns the network's intra-op budget (at least 1).
func (f *Frozen) budget() int {
	if f.net.intraOp < 1 {
		return 1
	}
	return f.net.intraOp
}

// runOps threads x through a compiled op sequence.
func runOps(f *Frozen, ops []frozenOp, x *tensor.Tensor) *tensor.Tensor {
	for _, op := range ops {
		x = op.infer(f, x)
	}
	return x
}

// refoldOps re-derives every cached folded weight in an op sequence and
// rebinds the ops' packed-weight handles (shared set when ps is non-nil,
// private otherwise).
func refoldOps(ops []frozenOp, ps *panelSet) {
	for _, op := range ops {
		if r, ok := op.(refolder); ok {
			r.refold(ps)
		}
	}
}

// Fused-eval toggle -----------------------------------------------------------

// fusedEvalOff is the process-wide kill switch for the frozen fast path
// (zero value = fused eval ENABLED, the default). It exists so the
// -fused-eval=false CLI flag can force every evaluation back onto the
// reference layer-by-layer forward for A/B comparison.
var fusedEvalOff atomic.Bool

// SetFusedEval enables or disables the frozen inference fast path for every
// subsequent EvalView call. Fused eval is on by default.
func SetFusedEval(enabled bool) { fusedEvalOff.Store(!enabled) }

// FusedEval reports whether EvalView routes through Freeze.
func FusedEval() bool { return !fusedEvalOff.Load() }

// Inference is the forward-only surface shared by *Network and *Frozen —
// what evaluation loops (metrics, fl.EvalLoss, the experiment sweeps)
// consume, so one loop serves both the fused and the reference path.
type Inference interface {
	Infer(x *tensor.Tensor) *tensor.Tensor
}

// Infer implements Inference as the reference eval forward.
func (n *Network) Infer(x *tensor.Tensor) *tensor.Tensor { return n.Forward(x, false) }

// EvalView returns the surface an evaluation pass should forward through:
// one frozen replica of the network when fused eval is enabled (the
// default), the network's reference forward otherwise.
func EvalView(n *Network) Inference {
	if FusedEval() {
		return n.Freeze()
	}
	return n
}

// Compilation -----------------------------------------------------------------

// flattenLayers expands nested *Network layers into one linear sequence, so
// conv→BN→activation runs fold even when they straddle a sub-network
// boundary (convBNAct builds exactly that shape).
func flattenLayers(layers []Layer, out []Layer) []Layer {
	for _, l := range layers {
		if sub, ok := l.(*Network); ok {
			out = flattenLayers(sub.LayerList, out)
			continue
		}
		out = append(out, l)
	}
	return out
}

// actKindOf maps activation layers onto their fused epilogue kind.
func actKindOf(l Layer) (epAct, bool) {
	switch l.(type) {
	case *ReLU:
		return epReLU, true
	case *HardSwish:
		return epHardSwish, true
	case *HardSigmoid:
		return epHardSigmoid, true
	case *Sigmoid:
		return epSigmoid, true
	}
	return epNone, false
}

// opCompiler threads the packed-weight slot counter through compilation:
// every fused matmul op (conv except fully-depthwise, every dense including
// the SE excitation pair) claims one slot in the program's panel sets.
type opCompiler struct {
	slots int
}

// nextSlot claims the next packed-weight slot.
func (c *opCompiler) nextSlot() int {
	s := c.slots
	c.slots++
	return s
}

// compile turns a flattened layer sequence into the inference program,
// folding BN and fusing activations as it scans.
func (c *opCompiler) compile(flat []Layer) []frozenOp {
	var ops []frozenOp
	peek := func(i int) Layer {
		if i < len(flat) {
			return flat[i]
		}
		return nil
	}
	for i := 0; i < len(flat); i++ {
		switch l := flat[i].(type) {
		case *Conv2D:
			op := &frozenConv{l: l, slot: -1}
			if !(l.Groups == l.InC && l.OutC == l.InC) {
				// Every non-depthwise conv runs a matmul and owns a
				// packed-weight slot; the depthwise tap loop never does.
				op.slot = c.nextSlot()
			}
			if bn, ok := peek(i + 1).(*BatchNorm2D); ok {
				if bn.C != l.OutC {
					panic(fmt.Sprintf("nn: Freeze: BatchNorm2D(%d) cannot fold into %s", bn.C, l.Name()))
				}
				op.bn = bn
				i++
			}
			if act, ok := actKindOf(peek(i + 1)); ok {
				op.act = act
				i++
			}
			op.build()
			ops = append(ops, op)
		case *Dense:
			op := &frozenDense{l: l, slot: c.nextSlot()}
			if bn, ok := peek(i + 1).(*BatchNorm2D); ok {
				if bn.C != l.Out {
					panic(fmt.Sprintf("nn: Freeze: BatchNorm2D(%d) cannot fold into %s", bn.C, l.Name()))
				}
				op.bn = bn
				i++
			}
			if act, ok := actKindOf(peek(i + 1)); ok {
				op.act = act
				i++
			}
			op.build()
			ops = append(ops, op)
		case *BatchNorm2D:
			// The residual case: a BN not preceded by a matmul layer
			// (after a Residual sum, pooling, ...) stays a standalone op
			// on the running statistics.
			op := &frozenBN{l: l, scale: make([]float32, l.C), shift: make([]float32, l.C)}
			ops = append(ops, op)
		case *ReLU:
			ops = append(ops, &frozenAct{kind: epReLU})
		case *HardSwish:
			ops = append(ops, &frozenAct{kind: epHardSwish})
		case *HardSigmoid:
			ops = append(ops, &frozenAct{kind: epHardSigmoid})
		case *Sigmoid:
			ops = append(ops, &frozenAct{kind: epSigmoid})
		case *MaxPool2D:
			ops = append(ops, &frozenMaxPool{k: l.K, stride: l.Stride})
		case *AvgPool2D:
			ops = append(ops, &frozenAvgPool{k: l.K, stride: l.Stride})
		case *GlobalAvgPool:
			ops = append(ops, &frozenGAP{})
		case *SEBlock:
			ops = append(ops, newFrozenSE(l, c))
		case *Residual:
			op := &frozenResidual{
				body: c.compileLayer(l.Body),
				proj: c.compileLayer(l.Proj),
			}
			op.foldProj()
			ops = append(ops, op)
		case *Parallel:
			op := &frozenParallel{l: l}
			for _, b := range l.Branches {
				op.branches = append(op.branches, c.compileLayer(b))
			}
			op.outCs = make([]int, len(l.Branches))
			op.outs = make([]*tensor.Tensor, len(l.Branches))
			ops = append(ops, op)
		case *Dropout, *Identity:
			// Identity in eval mode: compiles to nothing.
		default:
			// Pure view/permutation layers (Flatten, Reshape,
			// ChannelShuffle) and any layer type this compiler does not
			// know: their eval forward has no backward cache worth
			// skipping, so delegate to it.
			ops = append(ops, &frozenWrap{l: l})
		}
	}
	return ops
}

// compileLayer freezes a single composite child (which may itself be a
// Network, a composite block, or a bare layer).
func (c *opCompiler) compileLayer(l Layer) []frozenOp {
	return c.compile(flattenLayers([]Layer{l}, nil))
}

// BN folding math -------------------------------------------------------------

// bnScaleShift returns the per-channel affine form of a BatchNorm eval pass
// on the running statistics: y = scale·x + shift with
// scale = γ/√(var+ε), shift = β − scale·mean.
func bnScaleShift(bn *BatchNorm2D, c int) (scale, shift float32) {
	s := float32(float64(bn.Gamma.W.Data()[c]) / math.Sqrt(float64(bn.RunVar.Data()[c])+bn.Eps))
	return s, bn.Beta.W.Data()[c] - s*bn.RunMean.Data()[c]
}
