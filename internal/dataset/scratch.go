package dataset

import (
	"sync"

	"heteroswitch/internal/tensor"
)

// BatchScratch bundles the recycled per-batch buffers of one training or
// evaluation loop: the stacked input, dense multi-label targets (both drawn
// from a private arena, reset once per batch) and the label slice. Buffers
// live only between two Next calls — exactly one batch. A loop's network
// arena is NOT usable for these because the network resets it at the top of
// Forward, while the input must be filled before Forward runs.
//
// Scratches are recycled process-wide through GetBatchScratch /
// PutBatchScratch, so the steady state of any batched loop — training hot
// path or eval sweep — allocates no per-batch buffers at all.
type BatchScratch struct {
	arena  *tensor.Arena
	labels []int
	shape  []int
}

var batchScratchPool = sync.Pool{
	New: func() any { return &BatchScratch{arena: tensor.NewArena()} },
}

// GetBatchScratch returns a pooled scratch. Pair with PutBatchScratch
// (usually deferred) so the buffers recycle across loops, clients, and
// rounds.
func GetBatchScratch() *BatchScratch {
	return batchScratchPool.Get().(*BatchScratch)
}

// PutBatchScratch returns a scratch to the pool. The tensors it handed out
// must no longer be used.
func PutBatchScratch(bs *BatchScratch) { batchScratchPool.Put(bs) }

// Next recycles the previous batch's buffers and fills them with samples
// [lo, hi) of ds. For multi-label data it returns (x, y, nil), otherwise
// (x, nil, labels). The returned tensors are valid until the next Next call
// on this scratch.
func (bs *BatchScratch) Next(ds *Dataset, lo, hi int) (x, y *tensor.Tensor, labels []int) {
	bs.arena.Reset()
	n := hi - lo
	bs.shape = append(bs.shape[:0], n)
	bs.shape = append(bs.shape, ds.Samples[lo].X.Shape()...)
	x = bs.arena.GetUninit(bs.shape...)
	if ds.Samples[lo].Multi != nil {
		y = bs.arena.GetUninit(n, ds.NumClasses)
		ds.BatchMultiInto(x, y, lo, hi)
		return x, y, nil
	}
	if cap(bs.labels) < n {
		bs.labels = make([]int, n)
	}
	labels = bs.labels[:n]
	ds.BatchInto(x, labels, lo, hi)
	return x, nil, labels
}

// ForBatches is the shared eval-loop iterator: it sweeps ds in windows of
// the given batch size (the last window may be partial), recycling this
// scratch's buffers for every window, and invokes fn with the window bounds
// and the Next-style buffers. Every batched evaluation loop — accuracy,
// mean loss, per-device sweeps, multi-label scoring — iterates through it
// instead of hand-rolling the lo/hi arithmetic.
func (bs *BatchScratch) ForBatches(ds *Dataset, batch int,
	fn func(lo, hi int, x, y *tensor.Tensor, labels []int)) {
	for lo := 0; lo < ds.Len(); lo += batch {
		hi := min(lo+batch, ds.Len())
		x, y, labels := bs.Next(ds, lo, hi)
		fn(lo, hi, x, y, labels)
	}
}

// Alloc returns an uninitialized tensor with the current batch's lifetime
// (recycled at the next Next call), co-allocating loop-side tensors — a loss
// gradient, say — with the batch buffers. Within one batch, returned tensors
// never alias each other or the batch buffers.
func (bs *BatchScratch) Alloc(shape ...int) *tensor.Tensor {
	return bs.arena.GetUninit(shape...)
}
