package models

import (
	"testing"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/tensor"
)

func forwardShape(t *testing.T, net *nn.Network, inC, classes int) {
	t.Helper()
	r := frand.New(2)
	x := tensor.Randn(r, 1, 3, inC, 32, 32)
	y := net.Forward(x, false)
	if y.Dim(0) != 3 || y.Dim(1) != classes {
		t.Fatalf("output shape %v, want [3 %d]", y.Shape(), classes)
	}
	if y.HasNaN() {
		t.Fatal("forward produced NaN")
	}
}

func trainStepWorks(t *testing.T, net *nn.Network, inC, classes int) {
	t.Helper()
	r := frand.New(3)
	x := tensor.Randn(r, 1, 4, inC, 32, 32)
	labels := []int{0, 1, 2 % classes, 0}
	out := net.Forward(x, true)
	loss, grad := nn.SoftmaxCrossEntropy{}.Eval(out, nn.ClassTarget(labels))
	if loss <= 0 {
		t.Fatalf("implausible loss %v", loss)
	}
	net.Backward(grad)
	opt := nn.NewSGD(0.01, 0, 0)
	opt.Step(net.Params())
	out2 := net.Forward(x, true)
	if out2.HasNaN() {
		t.Fatal("NaN after one training step")
	}
}

func TestTinyMobileNetV3(t *testing.T) {
	net := TinyMobileNetV3(frand.New(1), 3, 12)
	forwardShape(t, net, 3, 12)
	trainStepWorks(t, net, 3, 12)
}

func TestTinyShuffleNetV2(t *testing.T) {
	net := TinyShuffleNetV2(frand.New(1), 3, 12)
	forwardShape(t, net, 3, 12)
	trainStepWorks(t, net, 3, 12)
}

func TestTinySqueezeNet(t *testing.T) {
	net := TinySqueezeNet(frand.New(1), 3, 12)
	forwardShape(t, net, 3, 12)
	trainStepWorks(t, net, 3, 12)
}

func TestSimpleCNN(t *testing.T) {
	net := SimpleCNN(frand.New(1), 3, 20)
	forwardShape(t, net, 3, 20)
	trainStepWorks(t, net, 3, 20)
}

func TestMLPRegressor(t *testing.T) {
	net := MLPRegressor(frand.New(1), 64, []int{32, 16}, 1)
	r := frand.New(2)
	x := tensor.Randn(r, 1, 5, 64)
	y := net.Forward(x, false)
	if y.Dim(0) != 5 || y.Dim(1) != 1 {
		t.Fatalf("MLP output shape %v", y.Shape())
	}
}

func TestBuilderDeterministic(t *testing.T) {
	for _, arch := range []Arch{ArchMobileNet, ArchShuffleNet, ArchSqueezeNet, ArchSimpleCNN} {
		b, err := BuilderFor(arch, 7, 3, 12)
		if err != nil {
			t.Fatal(err)
		}
		n1, n2 := b(), b()
		p1, p2 := n1.Params(), n2.Params()
		if len(p1) != len(p2) {
			t.Fatalf("%s: param count differs between builds", arch)
		}
		for i := range p1 {
			if !p1[i].W.AllClose(p2[i].W, 0) {
				t.Fatalf("%s: param %d differs between builds", arch, i)
			}
		}
	}
}

func TestBuilderUnknownArch(t *testing.T) {
	if _, err := BuilderFor("no-such-net", 1, 3, 12); err == nil {
		t.Fatal("expected error for unknown architecture")
	}
}

func TestWeightsTransferAcrossBuilds(t *testing.T) {
	b, _ := BuilderFor(ArchMobileNet, 11, 3, 12)
	n1 := b()
	n2 := b()
	// Perturb n1, snapshot, load into n2, confirm identical outputs.
	n1.Params()[0].W.AddScalar(0.1)
	if err := n2.LoadWeights(n1.Snapshot()); err != nil {
		t.Fatal(err)
	}
	r := frand.New(5)
	x := tensor.Randn(r, 1, 2, 3, 32, 32)
	if !n1.Forward(x, false).AllClose(n2.Forward(x, false), 1e-6) {
		t.Fatal("weight transfer did not reproduce outputs")
	}
}

func TestParamCountsReasonable(t *testing.T) {
	cases := []struct {
		name     string
		net      *nn.Network
		min, max int
	}{
		{"mobilenet", TinyMobileNetV3(frand.New(1), 3, 12), 2000, 100000},
		{"shufflenet", TinyShuffleNetV2(frand.New(1), 3, 12), 1500, 100000},
		{"squeezenet", TinySqueezeNet(frand.New(1), 3, 12), 1000, 100000},
		{"simplecnn", SimpleCNN(frand.New(1), 3, 20), 5000, 500000},
	}
	for _, c := range cases {
		n := c.net.NumParams()
		if n < c.min || n > c.max {
			t.Errorf("%s has %d params, want in [%d,%d]", c.name, n, c.min, c.max)
		}
	}
}

func BenchmarkMobileNetForward(b *testing.B) {
	net := TinyMobileNetV3(frand.New(1), 3, 12)
	x := tensor.Randn(frand.New(2), 1, 10, 3, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

func BenchmarkShuffleNetForward(b *testing.B) {
	net := TinyShuffleNetV2(frand.New(1), 3, 12)
	x := tensor.Randn(frand.New(2), 1, 10, 3, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

func TestECGConvNet(t *testing.T) {
	net := ECGConvNet(frand.New(1), 256)
	r := frand.New(2)
	x := tensor.Randn(r, 1, 5, 256)
	y := net.Forward(x, false)
	if y.Dim(0) != 5 || y.Dim(1) != 1 {
		t.Fatalf("ECG net output %v", y.Shape())
	}
	// One training step must run without NaN.
	out := net.Forward(x, true)
	target := tensor.New(5, 1)
	target.Fill(0.4)
	loss, grad := nn.MSE{}.Eval(out, nn.DenseTarget(target))
	if loss <= 0 {
		t.Fatalf("loss %v", loss)
	}
	net.Backward(grad)
	opt := nn.NewSGD(0.01, 0, 0)
	opt.Step(net.Params())
	if net.Forward(x, true).HasNaN() {
		t.Fatal("NaN after step")
	}
}
