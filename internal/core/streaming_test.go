package core

import (
	"math"
	"testing"

	"heteroswitch/internal/fl"
	"heteroswitch/internal/nn"
)

// One round of streaming HeteroSwitch must match the barrier path: same
// aggregated weights (within float32 tolerance) and the same L_EMA, since
// the accumulator folds the identical eq. 1 inputs per-result.
func TestHeteroSwitchStreamingMatchesBarrierRound(t *testing.T) {
	run := func(disable bool) (*HeteroSwitch, nn.Weights) {
		clients, _ := toyPopulation(33)
		cfg := fl.Config{
			Rounds: 1, ClientsPerRound: 4, BatchSize: 4, LocalEpochs: 1,
			LR: 0.1, Seed: 13, Workers: 2, DisableStreaming: disable,
		}
		hs := New()
		srv, err := fl.NewServer(cfg, toyBuilder(), nn.SoftmaxCrossEntropy{}, hs, clients)
		if err != nil {
			t.Fatal(err)
		}
		srv.RunRound(0)
		return hs, srv.Global
	}
	hsStream, wStream := run(false)
	hsBarrier, wBarrier := run(true)

	ls, okS := hsStream.LEMA()
	lb, okB := hsBarrier.LEMA()
	if !okS || !okB {
		t.Fatal("L_EMA not initialized after the first round")
	}
	if math.Abs(ls-lb) > 1e-9 {
		t.Fatalf("L_EMA diverged: streaming %v vs barrier %v", ls, lb)
	}
	for i := range wStream.Params {
		if !wStream.Params[i].AllClose(wBarrier.Params[i], 1e-5) {
			t.Fatalf("param %d diverged between streaming and barrier HeteroSwitch", i)
		}
	}
}

// Race coverage for the lema mutex and the shard-merge path: parallel
// workers, dropout, and full switching (LocalUpdate reads LEMA while
// Finalize writes it). Run with -race in CI.
func TestHeteroSwitchParallelDropoutRace(t *testing.T) {
	clients, _ := toyPopulation(47)
	cfg := fl.Config{
		Rounds: 10, ClientsPerRound: 5, BatchSize: 4, LocalEpochs: 1,
		LR: 0.1, Seed: 29, Workers: 4, ClientDropout: 0.25,
	}
	hs := New()
	srv, err := fl.NewServer(cfg, toyBuilder(), nn.SoftmaxCrossEntropy{}, hs, clients)
	if err != nil {
		t.Fatal(err)
	}
	srv.Run(nil)
	if lema, ok := hs.LEMA(); !ok || math.IsNaN(lema) {
		t.Fatalf("L_EMA bad after parallel run: %v (%v)", lema, ok)
	}
	for _, p := range srv.Global.Params {
		if p.HasNaN() {
			t.Fatal("NaN weights after parallel streaming HeteroSwitch")
		}
	}
}

// The SWAD per-batch snapshot buffer must not leak into results: two
// consecutive rounds in ModeTransformSWAD (SWAD always on) must keep
// producing finite, changing weights.
func TestSWADBufferReuseAcrossRounds(t *testing.T) {
	clients, _ := toyPopulation(61)
	cfg := fl.Config{
		Rounds: 3, ClientsPerRound: 4, BatchSize: 4, LocalEpochs: 2,
		LR: 0.1, Seed: 7, Workers: 2,
	}
	srv, err := fl.NewServer(cfg, toyBuilder(), nn.SoftmaxCrossEntropy{}, NewWithMode(ModeTransformSWAD), clients)
	if err != nil {
		t.Fatal(err)
	}
	prev := srv.Global.Clone()
	srv.Run(nil)
	if srv.Global.Params[0].AllClose(prev.Params[0], 0) {
		t.Fatal("SWAD rounds did not update the global weights")
	}
	for _, p := range srv.Global.Params {
		if p.HasNaN() {
			t.Fatal("NaN weights from SWAD buffer reuse")
		}
	}
}
