package tensor

import (
	"fmt"
	"testing"

	"heteroswitch/internal/frand"
)

// Col2ImP promises BIT-identical results to the serial scatter at every
// budget: image-column blocks own disjoint output pixels, and restricting
// the (c, ky, kx, oy, ox) sweep to a column range never reorders the adds
// into any one pixel. Geometries cover stride 1/2, pad 0/1/2, kernels 1-5,
// and widths that split raggedly across budgets.

var col2imGeoms = []struct {
	inC, inH, inW, k, stride, pad int
}{
	{1, 5, 5, 3, 1, 1},
	{3, 8, 8, 3, 1, 1},
	{2, 9, 13, 3, 2, 1},
	{4, 16, 16, 5, 1, 2},
	{1, 7, 31, 1, 1, 0},
	{8, 12, 10, 3, 2, 0},
	{2, 6, 64, 3, 1, 1}, // wide enough that every budget actually splits
}

func TestCol2ImPBitIdentical(t *testing.T) {
	r := frand.New(77)
	for _, g := range col2imGeoms {
		d, err := NewConvDims(g.inC, g.inH, g.inW, g.k, g.k, g.stride, g.pad)
		if err != nil {
			t.Fatal(err)
		}
		col := Randn(r, 1, d.ColRows(), d.ColCols())
		base := Randn(r, 1, g.inC, g.inH, g.inW) // non-zero: Col2Im accumulates
		want := base.Clone()
		Col2Im(want.Data(), col.Data(), d)
		for _, par := range []int{1, 2, 3, 4, 8} {
			got := base.Clone()
			Col2ImP(par, got.Data(), col.Data(), d)
			name := fmt.Sprintf("Col2ImP(%d) c%d %dx%d k%d s%d p%d",
				par, g.inC, g.inH, g.inW, g.k, g.stride, g.pad)
			exactEqual(t, name, got.Data(), want.Data())
		}
	}
}

// TestCol2ImColsCoverage checks the column-restricted building block
// partitions exactly: the union over any split of [0, InW) equals the full
// scatter, with no tap dropped or double-counted.
func TestCol2ImColsCoverage(t *testing.T) {
	r := frand.New(78)
	for _, g := range col2imGeoms {
		d, err := NewConvDims(g.inC, g.inH, g.inW, g.k, g.k, g.stride, g.pad)
		if err != nil {
			t.Fatal(err)
		}
		col := Randn(r, 1, d.ColRows(), d.ColCols())
		want := New(g.inC, g.inH, g.inW)
		Col2Im(want.Data(), col.Data(), d)
		for _, splits := range [][]int{{0, g.inW}, {0, 1, g.inW}, {0, g.inW / 2, g.inW - 1, g.inW}} {
			got := New(g.inC, g.inH, g.inW)
			for i := 0; i+1 < len(splits); i++ {
				if splits[i] < splits[i+1] {
					col2imCols(got.Data(), col.Data(), d, splits[i], splits[i+1])
				}
			}
			exactEqual(t, fmt.Sprintf("col2imCols splits %v c%d w%d", splits, g.inC, g.inW),
				got.Data(), want.Data())
		}
	}
}

// TestMatMulEpilogueBitIdentical: the fused epilogue runs row-locally inside
// each chunk, so a fused kernel must equal the unfused kernel followed by
// the same per-row pass, bit for bit, at every budget. Pinned to the serial
// backend: this is the oracle fused path's contract; the packed backend's
// tolerance contract is covered in packed_test.go.
func TestMatMulEpilogueBitIdentical(t *testing.T) {
	forceBackend(t, BackendSerial)
	r := frand.New(79)
	for _, sz := range parShapes {
		a := Randn(r, 1, sz.m, sz.k)
		b := Randn(r, 1, sz.k, sz.n)
		bias := Randn(r, 1, sz.m)
		ep := &testEpilogue{bias: bias.Data()}
		want := New(sz.m, sz.n)
		MatMulInto(want, a, b)
		for i := 0; i < sz.m; i++ {
			ep.Apply(want.Data()[i*sz.n:(i+1)*sz.n], i)
		}
		for _, par := range parBudgets {
			got := Randn(r, 1, sz.m, sz.n)
			MatMulIntoPEp(par, got, a, b, ep)
			exactEqual(t, fmt.Sprintf("MatMulIntoPEp(%d) %dx%dx%d", par, sz.m, sz.k, sz.n),
				got.Data(), want.Data())
		}
	}
}

// testEpilogue is a bias-add + leaky clamp, enough to catch a skipped or
// double-applied row.
type testEpilogue struct{ bias []float32 }

func (e *testEpilogue) Apply(row []float32, r int) {
	b := e.bias[r]
	for j := range row {
		v := row[j] + b
		if v < 0 {
			v *= 0.5
		}
		row[j] = v
	}
}

// BenchmarkCol2ImParallel measures the column-blocked scatter on a large
// single-sample geometry (the case the ROADMAP called out) across budgets.
// Speedup requires physical cores; on a 1-core runner all budgets converge
// to the serial scatter.
func BenchmarkCol2ImParallel(b *testing.B) {
	d, err := NewConvDims(32, 64, 64, 3, 3, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	r := frand.New(80)
	col := Randn(r, 1, d.ColRows(), d.ColCols())
	img := New(32, 64, 64)
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("intraop=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				Col2ImP(par, img.Data(), col.Data(), d)
			}
		})
	}
}
