package experiments

import (
	"fmt"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/fl"
	"heteroswitch/internal/metrics"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/simclock"
)

// AsyncArm is one row of the sync-vs-async characterization: an aggregation
// regime under one latency distribution.
type AsyncArm struct {
	Name    string
	Latency string
	// FinalAcc is accuracy on the pooled test set after all rounds.
	FinalAcc float64
	// RoundsToTarget is the first evaluation round whose accuracy reached
	// the sweep's target (90% of the sync arm's final accuracy); -1 when the
	// arm never got there.
	RoundsToTarget int
	// VirtualTime is the simulated clock at the end of the run — the metric
	// the round barrier loses on under stragglers: a synchronous round costs
	// the max of its clients' latencies, an async window only its
	// Buffer-th completion.
	VirtualTime float64
	// MeanStaleness averages each round's mean staleness over the run
	// (identically 0 for the sync arm).
	MeanStaleness float64
}

// AsyncSweepResult compares rounds-to-accuracy and virtual wall-clock of
// synchronous vs asynchronous aggregation under straggler distributions.
type AsyncSweepResult struct {
	TargetAcc float64
	Rounds    int
	Arms      []AsyncArm
}

// String renders the sweep.
func (r *AsyncSweepResult) String() string {
	t := &Table{
		Title: fmt.Sprintf("Async characterization — rounds-to-%.1f%% accuracy over %d rounds",
			r.TargetAcc*100, r.Rounds),
		Header: []string{"arm", "latency", "final-acc", "rounds-to-target", "virtual-time", "mean-staleness"},
	}
	for _, a := range r.Arms {
		rt := "never"
		if a.RoundsToTarget >= 0 {
			rt = fmt.Sprintf("%d", a.RoundsToTarget)
		}
		t.AddRow(a.Name, a.Latency, pct(a.FinalAcc), rt,
			fmt.Sprintf("%.1f", a.VirtualTime), fmt.Sprintf("%.2f", a.MeanStaleness))
	}
	return t.String()
}

// asyncTrajectory is one arm's measured run: accuracy at each evaluation
// checkpoint plus the async telemetry.
type asyncTrajectory struct {
	rounds        []int // evaluation checkpoints (1-based round counts)
	accs          []float64
	virtualTime   float64
	meanStaleness float64
}

// roundsToTarget returns the first checkpoint reaching the target, or -1.
func (tr *asyncTrajectory) roundsToTarget(target float64) int {
	for i, acc := range tr.accs {
		if acc >= target {
			return tr.rounds[i]
		}
	}
	return -1
}

// AsyncSweep is the async-aggregation characterization: the same federated
// workload trained synchronously and asynchronously under heterogeneous
// client latencies, comparing rounds-to-accuracy, end-of-run accuracy, and
// simulated wall-clock. The straggler arms are the paper's heterogeneity
// regime pushed into the time domain: a fixed slice of devices is
// persistently slow, so the synchronous barrier pays the tail latency every
// round while the async server folds fresh results and discounts stale ones.
func AsyncSweep(opts Options) (*AsyncSweepResult, error) {
	dd, err := BuildDeviceData(opts, opts.scaled(6), opts.scaled(3), dataset.ModeProcessed)
	if err != nil {
		return nil, err
	}
	const k = 8
	cfg := fl.Config{
		Rounds:           opts.scaled(30),
		ClientsPerRound:  k,
		BatchSize:        10,
		LocalEpochs:      1,
		LR:               0.1,
		Seed:             opts.Seed,
		Workers:          opts.Workers,
		DisableStreaming: opts.DisableStreaming,
		IntraOp:          opts.IntraOp,
	}
	builder := SimpleCNNBuilder(opts.Seed, dd.Classes)
	counts := MarketShareCounts(dd, 24)
	test := dd.AllTest()
	evalEvery := max(1, cfg.Rounds/8)

	alpha := opts.Async.StalenessAlpha
	if alpha == 0 {
		alpha = 0.5
	}
	uniform := simclock.Uniform{Lo: 0.5, Hi: 2, Seed: opts.Seed}
	straggler := simclock.StragglerTail{Lo: 0.5, Hi: 2, TailProb: 0.15, TailFactor: 8, Seed: opts.Seed}
	if opts.Async.LatencyModel != "" {
		m, err := simclock.ParseModel(opts.Async.LatencyModel, opts.Seed)
		if err != nil {
			return nil, err
		}
		// The spec replaces the matching arm; refusing the rest beats
		// silently running the defaults the operator thought they overrode.
		switch lm := m.(type) {
		case simclock.Uniform:
			uniform = lm
		case simclock.StragglerTail:
			straggler = lm
		default:
			return nil, fmt.Errorf("async sweep: latency model %q has no arm here; use a uniform: or straggler: spec", opts.Async.LatencyModel)
		}
	}

	runSync := func() (*asyncTrajectory, error) {
		clients, err := fl.BuildPopulation(dd.Train, counts, cfg.Seed)
		if err != nil {
			return nil, err
		}
		srv, err := fl.NewServer(cfg, builder, nn.SoftmaxCrossEntropy{}, fl.FedAvg{}, clients)
		if err != nil {
			return nil, err
		}
		tr := &asyncTrajectory{}
		step := 0
		srv.Run(func(s fl.RoundStats) {
			// The barrier pays the slowest sampled client every round; the
			// sync arm's virtual clock accrues that max so the time axis is
			// comparable with the async arms (same model, same step keying).
			var worst float64
			for i, id := range append(append([]int{}, s.Sampled...), s.Dropped...) {
				if d := straggler.Sample(id, step+i); d > worst {
					worst = d
				}
			}
			step += len(s.Sampled) + len(s.Dropped)
			tr.virtualTime += worst
			if (s.Round+1)%evalEvery == 0 || s.Round == cfg.Rounds-1 {
				tr.rounds = append(tr.rounds, s.Round+1)
				tr.accs = append(tr.accs, metrics.Accuracy(srv.GlobalNet(), test, 16))
			}
		})
		return tr, nil
	}

	runAsync := func(lat simclock.LatencyModel, a float64, depth int) (*asyncTrajectory, error) {
		clients, err := fl.BuildPopulation(dd.Train, counts, cfg.Seed)
		if err != nil {
			return nil, err
		}
		srv, err := fl.NewAsyncServer(cfg, builder, nn.SoftmaxCrossEntropy{}, fl.FedAvg{}, clients,
			fl.AsyncConfig{
				Staleness:   fl.PolynomialStaleness{Alpha: a},
				Latency:     lat,
				Concurrency: depth * k,
				Buffer:      k,
			})
		if err != nil {
			return nil, err
		}
		tr := &asyncTrajectory{}
		srv.Run(func(s fl.AsyncRoundStats) {
			tr.meanStaleness += s.MeanStaleness / float64(cfg.Rounds)
			tr.virtualTime = s.VirtualTime
			if (s.Round+1)%evalEvery == 0 || s.Round == cfg.Rounds-1 {
				tr.rounds = append(tr.rounds, s.Round+1)
				tr.accs = append(tr.accs, metrics.Accuracy(srv.GlobalNet(), test, 16))
			}
		})
		return tr, nil
	}

	type armSpec struct {
		name, latency string
		run           func() (*asyncTrajectory, error)
	}
	arms := []armSpec{
		{"sync (barrier pays tail)", "straggler", runSync},
		{"async zero-latency (sanity ≡ sync)", "zero",
			func() (*asyncTrajectory, error) { return runAsync(simclock.Constant{}, 0, 1) }},
		{"async uniform, poly discount", "uniform",
			func() (*asyncTrajectory, error) { return runAsync(uniform, alpha, 2) }},
		{"async straggler, no discount", "straggler",
			func() (*asyncTrajectory, error) { return runAsync(straggler, 0, 2) }},
		{fmt.Sprintf("async straggler, poly(%.2g)", alpha), "straggler",
			func() (*asyncTrajectory, error) { return runAsync(straggler, alpha, 2) }},
	}

	res := &AsyncSweepResult{Rounds: cfg.Rounds}
	trajectories := make([]*asyncTrajectory, len(arms))
	for i, arm := range arms {
		tr, err := arm.run()
		if err != nil {
			return nil, fmt.Errorf("async sweep arm %q: %w", arm.name, err)
		}
		trajectories[i] = tr
	}
	res.TargetAcc = 0.9 * trajectories[0].accs[len(trajectories[0].accs)-1]
	for i, arm := range arms {
		tr := trajectories[i]
		res.Arms = append(res.Arms, AsyncArm{
			Name:           arm.name,
			Latency:        arm.latency,
			FinalAcc:       tr.accs[len(tr.accs)-1],
			RoundsToTarget: tr.roundsToTarget(res.TargetAcc),
			VirtualTime:    tr.virtualTime,
			MeanStaleness:  tr.meanStaleness,
		})
	}
	return res, nil
}
