package experiments

import (
	"strings"
	"testing"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/fl"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/serve"
	"heteroswitch/internal/simclock"
	"heteroswitch/internal/tensor"
)

// tinyTrainServeSpec is a synthetic train-while-serve workload small enough
// for the race lane: 2 device classes of random 1×8×8 captures, a conv+BN
// model, and a closed-loop serving stream under EDF flush.
func tinyTrainServeSpec(t *testing.T, intraop int) TrainServeSpec {
	t.Helper()
	const classes = 3
	r := frand.New(5)
	mk := func(n int) *dataset.Dataset {
		d := &dataset.Dataset{NumClasses: classes}
		for i := 0; i < n; i++ {
			d.Samples = append(d.Samples, dataset.Sample{
				X:     tensor.Randn(r, 0.5, 1, 8, 8),
				Label: i % classes,
			})
		}
		return d
	}
	perDevice := map[int]*dataset.Dataset{0: mk(12), 1: mk(12)}
	clients, err := fl.BuildPopulation(perDevice, []int{3, 3}, 7)
	if err != nil {
		t.Fatal(err)
	}
	builder := func() *nn.Network {
		br := frand.New(11)
		return nn.NewNetwork(
			nn.NewConv2D(br, 1, 4, 3, 1, 1, 1),
			nn.NewBatchNorm2D(4),
			nn.NewReLU(),
			nn.NewGlobalAvgPool(),
			nn.NewDense(br, 4, classes),
		)
	}
	inputs := make([]*tensor.Tensor, 8)
	for i := range inputs {
		inputs[i] = tensor.Randn(r, 0.5, 1, 8, 8)
	}
	return TrainServeSpec{
		FL: fl.Config{
			Rounds: 10, ClientsPerRound: 4, BatchSize: 4, LocalEpochs: 1,
			LR: 0.2, Seed: 11, Workers: 1, IntraOp: intraop,
		},
		Async: fl.AsyncConfig{
			Staleness:   fl.PolynomialStaleness{Alpha: 0.5},
			Latency:     simclock.Uniform{Lo: 0.5, Hi: 2, Seed: 13},
			Concurrency: 8,
			Buffer:      4,
		},
		Strategy: fl.FedAvg{},
		Loss:     nn.SoftmaxCrossEntropy{},
		Clients:  clients,
		Builder:  builder,
		Serve: serve.Config{
			MaxBatch: 4, BatchBudget: 0.2, Workers: 2, IntraOp: intraop,
			Flush:     serve.FlushEDF,
			Admission: serve.AdmissionConfig{Deadline: 20},
		},
		Load: serve.LoadConfig{
			Requests:    120,
			Concurrency: 6,
			Arrival:     serve.ClosedLoop{Think: 0.3, Seed: 17},
			Service:     serve.AffineService{Base: 0.5, PerItem: 0.125},
			Inputs:      inputs,
		},
	}
}

// The joint run must track staleness over every served request, publish one
// store version per installed global, and reproduce byte-for-byte across
// runs and intra-op budgets.
func TestRunTrainServeDeterminism(t *testing.T) {
	rep, err := RunTrainServe(tinyTrainServeSpec(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Windows == 0 || rep.Published == 0 {
		t.Fatalf("windows=%d published=%d; the trainer never published", rep.Windows, rep.Published)
	}
	if rep.Published > rep.Windows {
		t.Fatalf("published=%d > windows=%d", rep.Published, rep.Windows)
	}
	if rep.TrainTime <= 0 {
		t.Fatalf("train_vtime=%g; the virtual clock never advanced", rep.TrainTime)
	}
	if !rep.Serving.StaleTracked {
		t.Fatal("wired serving report did not track staleness")
	}
	var hist int64
	for _, c := range rep.Serving.StaleHist {
		hist += c
	}
	if hist != int64(rep.Serving.Served) {
		t.Fatalf("staleness histogram counts %d, served %d", hist, rep.Serving.Served)
	}
	s := rep.String()
	if !strings.Contains(s, "train windows=") || !strings.Contains(s, "staleness histogram:") {
		t.Fatalf("report rendering lost a block:\n%s", s)
	}

	again, err := RunTrainServe(tinyTrainServeSpec(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if s != again.String() {
		t.Fatalf("train-serve replay diverged:\n%s\nvs\n%s", s, again)
	}
	wide, err := RunTrainServe(tinyTrainServeSpec(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	if s != wide.String() {
		t.Fatalf("train-serve output varies with intra-op budget:\n%s\nvs\n%s", s, wide)
	}
}

// The registry harness runs end to end at tiny scale on the real device
// population.
func TestTrainWhileServeHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: full device capture + FL run")
	}
	res, err := Run("train-serve", tinyOpts(0.1))
	if err != nil {
		t.Fatal(err)
	}
	rep, ok := res.(*TrainServeReport)
	if !ok {
		t.Fatalf("train-serve returned %T", res)
	}
	if rep.Published == 0 || !rep.Serving.StaleTracked {
		t.Fatalf("harness not wired: published=%d tracked=%v", rep.Published, rep.Serving.StaleTracked)
	}
	if !strings.Contains(rep.String(), "output_digest") {
		t.Fatalf("serving digest missing:\n%s", rep)
	}
}
