package isp

import "fmt"

// BayerPattern identifies the color filter array layout. Only RGGB is used
// by the device profiles, but the demosaicers are pattern-generic.
type BayerPattern int

// Supported CFA patterns.
const (
	RGGB BayerPattern = iota
	BGGR
	GRBG
	GBRG
)

// String implements fmt.Stringer.
func (p BayerPattern) String() string {
	switch p {
	case RGGB:
		return "RGGB"
	case BGGR:
		return "BGGR"
	case GRBG:
		return "GRBG"
	case GBRG:
		return "GBRG"
	}
	return fmt.Sprintf("BayerPattern(%d)", int(p))
}

// RAW is a single-plane Bayer mosaic as read off a simulated sensor,
// values nominally in [0,1].
type RAW struct {
	W, H    int
	Pix     []float64
	Pattern BayerPattern
}

// NewRAW allocates a zero RAW frame.
func NewRAW(w, h int, p BayerPattern) *RAW {
	return &RAW{W: w, H: h, Pix: make([]float64, w*h), Pattern: p}
}

// Clone deep-copies the frame.
func (r *RAW) Clone() *RAW {
	c := &RAW{W: r.W, H: r.H, Pix: make([]float64, len(r.Pix)), Pattern: r.Pattern}
	copy(c.Pix, r.Pix)
	return c
}

// At returns the sample at (x, y).
func (r *RAW) At(x, y int) float64 { return r.Pix[y*r.W+x] }

// Set writes the sample at (x, y).
func (r *RAW) Set(x, y int, v float64) { r.Pix[y*r.W+x] = v }

// ColorAt returns which color channel (0=R, 1=G, 2=B) the CFA passes at
// pixel (x, y).
func (r *RAW) ColorAt(x, y int) int { return cfaColor(r.Pattern, x, y) }

func cfaColor(p BayerPattern, x, y int) int {
	// Channel layout of the 2x2 CFA tile, row-major.
	var tile [4]int
	switch p {
	case RGGB:
		tile = [4]int{0, 1, 1, 2}
	case BGGR:
		tile = [4]int{2, 1, 1, 0}
	case GRBG:
		tile = [4]int{1, 0, 2, 1}
	case GBRG:
		tile = [4]int{1, 2, 0, 1}
	}
	return tile[(y&1)*2+(x&1)]
}

// Mosaic samples a full-color image through the CFA, producing the RAW frame
// an ideal noiseless sensor would record.
func Mosaic(im *Image, p BayerPattern) *RAW {
	r := NewRAW(im.W, im.H, p)
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r.Set(x, y, im.At(x, y, cfaColor(p, x, y)))
		}
	}
	return r
}
