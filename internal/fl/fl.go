// Package fl implements the federated-learning engine of the paper's
// evaluation: a simulated server/client round loop over a population of
// device-typed clients, with pluggable aggregation strategies (FedAvg,
// FedProx, q-FedAvg, SCAFFOLD — the baselines of §6.2) and a LocalUpdate
// extension point that HeteroSwitch (internal/core) plugs into.
//
// Determinism: given the same Config.Seed, population, and strategy, every
// run produces identical results even with Workers > 1 — workers only
// compute; aggregation always happens in client order on the main goroutine.
package fl

import (
	"fmt"
	"math"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/faults"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/models"
	"heteroswitch/internal/nn"
)

// Config carries the FL hyperparameters. The paper's defaults (§6, App. A.2)
// are N=100 total clients, K=20 per round, B=10, E=1, η=0.1, T=1000.
type Config struct {
	Rounds          int     // T: communication rounds
	ClientsPerRound int     // K: participants per round
	BatchSize       int     // B: local minibatch size
	LocalEpochs     int     // E: local epochs
	LR              float64 // η: local learning rate
	Momentum        float64 // local SGD momentum (0 in the paper's setup)
	WeightDecay     float64 // local L2 weight decay
	Seed            uint64  // master seed
	Workers         int     // parallel client trainers (<=1 means serial)
	// IntraOp is the total intra-op kernel parallelism budget: the number of
	// cores the tensor kernels (matmul, conv lowering) may occupy across all
	// client workers combined. 0 means auto (GOMAXPROCS). The server grants
	// each of its Workers an equal share (at least 1), so client-level and
	// kernel-level parallelism compose without oversubscribing the machine;
	// a share of 1 byte-for-byte selects the serial kernels. Results are
	// bit-identical at every setting.
	IntraOp int
	// ClientDropout is the probability that a sampled client fails to
	// report back this round (device offline, battery, network) — the
	// partial-participation regime of production FL. 0 disables dropout.
	ClientDropout float64
	// DisableStreaming forces the legacy barrier aggregation (materialize
	// all K client snapshots, then Strategy.Aggregate) even when the
	// strategy implements StreamingAggregator. Used for A/B memory
	// comparisons and debugging; leave false in production runs.
	DisableStreaming bool
	// Faults injects seeded client failures (see internal/faults). nil
	// injects nothing and is the bit-identical pre-fault behavior. The
	// synchronous Server accepts corruption-only models; crash, transient
	// failure, and churn need the virtual-time AsyncServer.
	Faults *faults.Model
	// MaxDeltaNorm arms the update-validation gate: before a client update
	// touches the global accumulator, the server checks the delta (client
	// weights minus the weights it trained from, parameters and states) and
	// rejects the update when any element is non-finite or the delta's L2
	// norm exceeds MaxDeltaNorm. 0 disables the gate entirely (the pre-gate
	// behavior); +Inf keeps only the non-finite check. Rejected clients are
	// listed in RoundStats.Rejected and their upload counted in BytesWasted.
	MaxDeltaNorm float64
}

// Default returns the paper's configuration with a modest round count; the
// experiments override Rounds per their scale knobs.
func Default() Config {
	return Config{
		Rounds:          100,
		ClientsPerRound: 20,
		BatchSize:       10,
		LocalEpochs:     1,
		LR:              0.1,
		Seed:            1,
		Workers:         4,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Rounds <= 0 || c.ClientsPerRound <= 0 || c.BatchSize <= 0 || c.LocalEpochs <= 0 {
		return fmt.Errorf("fl: non-positive round/client/batch/epoch config: %+v", c)
	}
	if c.LR <= 0 {
		return fmt.Errorf("fl: non-positive learning rate %v", c.LR)
	}
	if c.ClientDropout < 0 || c.ClientDropout >= 1 {
		return fmt.Errorf("fl: client dropout %v outside [0,1)", c.ClientDropout)
	}
	if c.IntraOp < 0 {
		return fmt.Errorf("fl: negative intra-op budget %d", c.IntraOp)
	}
	if c.MaxDeltaNorm < 0 || math.IsNaN(c.MaxDeltaNorm) {
		return fmt.Errorf("fl: invalid max delta norm %v", c.MaxDeltaNorm)
	}
	return nil
}

// Client is one federated participant: a local dataset captured by a device
// of some type, plus a private RNG stream.
type Client struct {
	ID     int
	Device int // device profile index (groups clients for fairness metrics)
	Data   *dataset.Dataset
	rng    *frand.RNG
}

// NewClient builds a client with its own deterministic RNG stream.
func NewClient(id, deviceIdx int, data *dataset.Dataset, seed uint64) *Client {
	return &Client{ID: id, Device: deviceIdx, Data: data, rng: frand.New(seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15)}
}

// RoundRNG derives the client's deterministic RNG for a given round,
// independent of scheduling order.
func (c *Client) RoundRNG(round int) *frand.RNG {
	child := frand.New(uint64(c.ID+1)*0xc2b2ae3d27d4eb4f ^ uint64(round+1)*0x9e3779b97f4a7c15)
	_ = c.rng // the stable per-client stream seeds identity; round stream is pure
	return child
}

// ClientContext is everything a strategy's LocalUpdate can see.
type ClientContext struct {
	Net    *nn.Network // already loaded with the round's global weights
	Global nn.Weights  // the round's global weights (read-only)
	Client *Client
	Cfg    Config
	Loss   nn.Loss
	Round  int
	RNG    *frand.RNG // deterministic per (client, round)
	// Scratch, when non-nil, points at a per-worker weight buffer the
	// strategy may return from LocalUpdate instead of allocating a fresh
	// snapshot (via SnapshotWeights). The server only sets it on the
	// streaming path, where each result is folded into the shard
	// accumulator before the buffer is reused for the next client.
	Scratch *nn.Weights
}

// SnapshotWeights returns the network's post-training weights: written into
// the per-worker scratch buffer when the server is streaming (the result is
// folded immediately, so the buffer can be recycled), or a fresh snapshot
// otherwise. Strategies should prefer this over Net.Snapshot for the
// weights they return. A scratch buffer that no longer matches the network
// is an invariant violation, reported the same way as an incompatible
// replica: by panicking.
func (ctx *ClientContext) SnapshotWeights() nn.Weights {
	if ctx.Scratch == nil {
		return ctx.Net.Snapshot()
	}
	if err := ctx.Net.SnapshotInto(*ctx.Scratch); err != nil {
		panic("fl: scratch buffer incompatible with network: " + err.Error())
	}
	return *ctx.Scratch
}

// ClientResult is what a client reports back to the server.
type ClientResult struct {
	ClientID   int
	DeviceIdx  int
	NumSamples int
	Weights    nn.Weights
	TrainLoss  float64 // running mean of batch losses (Algorithm 1's L_train)
	InitLoss   float64 // loss of the global model on the client data (L_init)
}

// Strategy couples a client-side local update rule with a server-side
// aggregation rule. Strategies whose rule is a streamable fold should also
// implement StreamingAggregator; the server then never materializes all K
// client snapshots and Aggregate serves only as the barrier fallback.
type Strategy interface {
	Name() string
	// LocalUpdate trains ctx.Net (which holds the global weights) on the
	// client's data and returns the updated weights plus losses.
	LocalUpdate(ctx *ClientContext) ClientResult
	// Aggregate merges the round's client results into new global weights.
	// results arrive in sampling order. On the streaming path the server
	// bypasses Aggregate in favor of the strategy's Accumulators; results
	// then carry empty Weights.
	Aggregate(global nn.Weights, results []ClientResult, cfg Config) nn.Weights
}

// RoundStats summarizes one communication round.
type RoundStats struct {
	Round       int
	MeanLoss    float64 // sample-weighted mean of client train losses
	MeanInit    float64 // sample-weighted mean of client initial losses
	Sampled     []int   // client IDs that participated
	Dropped     []int   // client IDs sampled but lost to dropout
	TotalEpochs int
	// Communication accounting: bytes broadcast to clients (down) and
	// reported back (up) this round, assuming float32 tensors on the wire.
	BytesDown int64
	BytesUp   int64
	// Rejected lists clients whose reported update failed the validation
	// gate (non-finite or norm-exploded delta, see Config.MaxDeltaNorm);
	// their upload never touches the global accumulator.
	Rejected []int
	// BytesWasted counts upload bytes the server received but discarded:
	// gate-rejected updates, and on the async engine also results dropped
	// by the MaxStaleness rule. Always a subset of BytesUp.
	BytesWasted int64
}

// Population helpers ---------------------------------------------------------

// DeviceCounts converts market shares into integer client counts summing to
// n, using largest-remainder apportionment. Every positive-share device gets
// at least its floor.
func DeviceCounts(shares []float64, n int) []int {
	counts := make([]int, len(shares))
	remainders := make([]float64, len(shares))
	var total float64
	for _, s := range shares {
		total += s
	}
	assigned := 0
	for i, s := range shares {
		exact := float64(n) * s / total
		counts[i] = int(exact)
		remainders[i] = exact - float64(counts[i])
		assigned += counts[i]
	}
	for assigned < n {
		best := 0
		for i := 1; i < len(remainders); i++ {
			if remainders[i] > remainders[best] {
				best = i
			}
		}
		counts[best]++
		remainders[best] = -1
		assigned++
	}
	return counts
}

// BuildPopulation creates clients per device according to counts, splitting
// each device's dataset evenly (round-robin after shuffle) among its
// clients. perDevice maps device index → that device's training pool.
func BuildPopulation(perDevice map[int]*dataset.Dataset, counts []int, seed uint64) ([]*Client, error) {
	rng := frand.New(seed)
	var clients []*Client
	id := 0
	for dev := 0; dev < len(counts); dev++ {
		k := counts[dev]
		if k == 0 {
			continue
		}
		ds, ok := perDevice[dev]
		if !ok || ds.Len() == 0 {
			return nil, fmt.Errorf("fl: no data for device %d with %d clients", dev, k)
		}
		shards := ds.PartitionIID(k, rng.Split())
		for _, sh := range shards {
			clients = append(clients, NewClient(id, dev, sh, seed))
			id++
		}
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("fl: empty population")
	}
	return clients, nil
}

// Builder re-exports models.Builder for convenience.
type Builder = models.Builder
