//go:build !race

package nn_test

// raceExtEnabled reports a -race build (see race_ext_on_test.go).
const raceExtEnabled = false
