package dataset

import (
	"testing"

	"heteroswitch/internal/device"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/isp"
	"heteroswitch/internal/scene"
	"heteroswitch/internal/tensor"
)

func synthDataset(n, classes int) *Dataset {
	d := &Dataset{NumClasses: classes}
	for i := 0; i < n; i++ {
		x := tensor.New(3, 4, 4)
		x.Fill(float32(i))
		d.Samples = append(d.Samples, Sample{X: x, Label: i % classes, Device: i % 3})
	}
	return d
}

func TestSplit(t *testing.T) {
	d := synthDataset(10, 2)
	tr, te := d.Split(0.7)
	if tr.Len() != 7 || te.Len() != 3 {
		t.Fatalf("split %d/%d", tr.Len(), te.Len())
	}
	if tr.NumClasses != 2 || te.NumClasses != 2 {
		t.Fatal("split lost class count")
	}
}

func TestStratifiedSplitKeepsAllClasses(t *testing.T) {
	d := synthDataset(40, 4)
	tr, te := d.StratifiedSplit(0.5)
	for _, ds := range []*Dataset{tr, te} {
		seen := map[int]bool{}
		for _, s := range ds.Samples {
			seen[s.Label] = true
		}
		if len(seen) != 4 {
			t.Fatalf("stratified split lost classes: %v", seen)
		}
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	d := synthDataset(20, 5)
	sum := 0
	for _, s := range d.Samples {
		sum += s.Label
	}
	d.Shuffle(frand.New(3))
	sum2 := 0
	for _, s := range d.Samples {
		sum2 += s.Label
	}
	if sum != sum2 {
		t.Fatal("shuffle changed contents")
	}
}

func TestBatchStacksCorrectly(t *testing.T) {
	d := synthDataset(6, 3)
	x, labels := d.Batch(2, 5)
	if x.Dim(0) != 3 || x.Dim(1) != 3 || x.Dim(2) != 4 {
		t.Fatalf("batch shape %v", x.Shape())
	}
	if labels[0] != 2 || labels[1] != 0 || labels[2] != 1 {
		t.Fatalf("labels %v", labels)
	}
	// First element of second sample in batch should be fill value 3.
	if x.At(1, 0, 0, 0) != 3 {
		t.Fatalf("batch data wrong: %v", x.At(1, 0, 0, 0))
	}
}

func TestBatchMulti(t *testing.T) {
	d := &Dataset{NumClasses: 3}
	for i := 0; i < 4; i++ {
		x := tensor.New(1, 2, 2)
		m := make([]float32, 3)
		m[i%3] = 1
		d.Samples = append(d.Samples, Sample{X: x, Label: -1, Multi: m})
	}
	x, y := d.BatchMulti(1, 3)
	if x.Dim(0) != 2 || y.Dim(0) != 2 || y.Dim(1) != 3 {
		t.Fatalf("shapes %v %v", x.Shape(), y.Shape())
	}
	if y.At(0, 1) != 1 || y.At(1, 2) != 1 {
		t.Fatalf("multi labels wrong: %v", y.Data())
	}
}

func TestPartitionIIDCoversAll(t *testing.T) {
	d := synthDataset(23, 4)
	shards := d.PartitionIID(5, frand.New(9))
	total := 0
	for _, s := range shards {
		total += s.Len()
		if s.Len() < 4 || s.Len() > 5 {
			t.Fatalf("unbalanced shard size %d", s.Len())
		}
	}
	if total != 23 {
		t.Fatalf("partition lost samples: %d", total)
	}
}

func TestByDevice(t *testing.T) {
	d := synthDataset(9, 2)
	groups := d.ByDevice()
	if len(groups) != 3 {
		t.Fatalf("groups = %d", len(groups))
	}
	for dev, g := range groups {
		for _, s := range g.Samples {
			if s.Device != dev {
				t.Fatal("sample in wrong device group")
			}
		}
	}
}

func TestConcat(t *testing.T) {
	a := synthDataset(3, 2)
	b := synthDataset(4, 2)
	c := Concat(a, nil, b)
	if c.Len() != 7 || c.NumClasses != 2 {
		t.Fatalf("concat %d classes %d", c.Len(), c.NumClasses)
	}
}

func TestCaptureProducesLabeledTensors(t *testing.T) {
	gen := scene.NewImageNet12(64)
	scenes := gen.RenderSet(1, frand.New(21)) // 12 scenes
	dev, err := device.ByName("S9")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Capture(scenes, dev, 7, ModeProcessed, 32, 12, frand.New(22))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 12 {
		t.Fatalf("captured %d samples", ds.Len())
	}
	for i, s := range ds.Samples {
		if s.Label != i {
			t.Fatalf("sample %d label %d", i, s.Label)
		}
		if s.Device != 7 {
			t.Fatal("device index not propagated")
		}
		sh := s.X.Shape()
		if sh[0] != 3 || sh[1] != 32 || sh[2] != 32 {
			t.Fatalf("tensor shape %v", sh)
		}
	}
}

func TestCaptureRAWDiffersFromProcessed(t *testing.T) {
	gen := scene.NewImageNet12(64)
	scenes := gen.RenderSet(1, frand.New(31))[:2]
	dev, _ := device.ByName("G4")
	proc, err := Capture(scenes, dev, 0, ModeProcessed, 32, 12, frand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Capture(scenes, dev, 0, ModeRAW, 32, 12, frand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if proc.Samples[0].X.AllClose(raw.Samples[0].X, 1e-4) {
		t.Fatal("RAW capture identical to processed capture")
	}
}

func TestCaptureWithPipeline(t *testing.T) {
	gen := scene.NewImageNet12(64)
	scenes := gen.RenderSet(1, frand.New(41))[:2]
	dev, _ := device.ByName("S9")
	noTone, err := isp.Baseline().Option(isp.StageTone, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := CaptureWithPipeline(scenes, dev, 0, isp.Baseline(), 32, 12, frand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := CaptureWithPipeline(scenes, dev, 0, noTone, 32, 12, frand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if a.Samples[0].X.AllClose(b.Samples[0].X, 1e-5) {
		t.Fatal("tone-omitted pipeline produced identical tensors")
	}
}
