package nn

import (
	"fmt"

	"heteroswitch/internal/tensor"
)

// MaxPool2D performs kxk max pooling with the given stride on NCHW tensors.
type MaxPool2D struct {
	arenaScratch
	K, Stride int
	argmax    []int
	inShape   []int
}

// NewMaxPool2D builds a max-pool layer.
func NewMaxPool2D(k, stride int) *MaxPool2D { return &MaxPool2D{K: k, Stride: stride} }

// Forward implements Layer.
func (l *MaxPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h-l.K)/l.Stride + 1
	ow := (w-l.K)/l.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: MaxPool2D k%d s%d on %dx%d", l.K, l.Stride, h, w))
	}
	l.inShape = x.Shape()
	out := l.allocUninit(n, c, oh, ow)
	need := n * c * oh * ow
	if cap(l.argmax) < need {
		l.argmax = make([]int, need)
	}
	l.argmax = l.argmax[:need]
	xd, od := x.Data(), out.Data()
	oi := 0
	for i := 0; i < n; i++ {
		for ci := 0; ci < c; ci++ {
			base := (i*c + ci) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					iy0, ix0 := oy*l.Stride, ox*l.Stride
					best := xd[base+iy0*w+ix0]
					bestIdx := base + iy0*w + ix0
					for ky := 0; ky < l.K; ky++ {
						for kx := 0; kx < l.K; kx++ {
							idx := base + (iy0+ky)*w + (ix0 + kx)
							if xd[idx] > best {
								best, bestIdx = xd[idx], idx
							}
						}
					}
					od[oi] = best
					l.argmax[oi] = bestIdx
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer, routing each gradient to its argmax position.
// The gradient scatter accumulates, so dx starts zeroed.
func (l *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := l.alloc(l.inShape...)
	dxd, gd := dx.Data(), grad.Data()
	for i, g := range gd {
		dxd[l.argmax[i]] += g
	}
	return dx
}

// Params implements Layer.
func (l *MaxPool2D) Params() []*Param { return nil }

// States implements Layer.
func (l *MaxPool2D) States() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *MaxPool2D) Name() string { return fmt.Sprintf("MaxPool2D(k%d,s%d)", l.K, l.Stride) }

// AvgPool2D performs kxk average pooling with the given stride.
type AvgPool2D struct {
	arenaScratch
	K, Stride int
	inShape   []int
}

// NewAvgPool2D builds an average-pool layer.
func NewAvgPool2D(k, stride int) *AvgPool2D { return &AvgPool2D{K: k, Stride: stride} }

// Forward implements Layer.
func (l *AvgPool2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h-l.K)/l.Stride + 1
	ow := (w-l.K)/l.Stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: AvgPool2D k%d s%d on %dx%d", l.K, l.Stride, h, w))
	}
	l.inShape = x.Shape()
	out := l.allocUninit(n, c, oh, ow)
	xd, od := x.Data(), out.Data()
	inv := 1 / float32(l.K*l.K)
	oi := 0
	for i := 0; i < n; i++ {
		for ci := 0; ci < c; ci++ {
			base := (i*c + ci) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					var s float32
					for ky := 0; ky < l.K; ky++ {
						row := base + (oy*l.Stride+ky)*w + ox*l.Stride
						for kx := 0; kx < l.K; kx++ {
							s += xd[row+kx]
						}
					}
					od[oi] = s * inv
					oi++
				}
			}
		}
	}
	return out
}

// Backward implements Layer, spreading the gradient uniformly over the
// window. Windows overlap when Stride < K, so dx accumulates from zero.
func (l *AvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := l.alloc(l.inShape...)
	n, c, h, w := l.inShape[0], l.inShape[1], l.inShape[2], l.inShape[3]
	oh, ow := grad.Dim(2), grad.Dim(3)
	dxd, gd := dx.Data(), grad.Data()
	inv := 1 / float32(l.K*l.K)
	oi := 0
	for i := 0; i < n; i++ {
		for ci := 0; ci < c; ci++ {
			base := (i*c + ci) * h * w
			for oy := 0; oy < oh; oy++ {
				for ox := 0; ox < ow; ox++ {
					g := gd[oi] * inv
					oi++
					for ky := 0; ky < l.K; ky++ {
						row := base + (oy*l.Stride+ky)*w + ox*l.Stride
						for kx := 0; kx < l.K; kx++ {
							dxd[row+kx] += g
						}
					}
				}
			}
		}
	}
	return dx
}

// Params implements Layer.
func (l *AvgPool2D) Params() []*Param { return nil }

// States implements Layer.
func (l *AvgPool2D) States() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *AvgPool2D) Name() string { return fmt.Sprintf("AvgPool2D(k%d,s%d)", l.K, l.Stride) }

// GlobalAvgPool collapses each channel's spatial extent to a single value,
// producing [N, C] from [N, C, H, W].
type GlobalAvgPool struct {
	arenaScratch
	inShape []int
}

// NewGlobalAvgPool builds a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Forward implements Layer.
func (l *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	l.inShape = x.Shape()
	out := l.allocUninit(n, c)
	xd, od := x.Data(), out.Data()
	hw := h * w
	inv := 1 / float32(hw)
	for i := 0; i < n*c; i++ {
		var s float32
		for j := 0; j < hw; j++ {
			s += xd[i*hw+j]
		}
		od[i] = s * inv
	}
	return out
}

// Backward implements Layer.
func (l *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := l.allocUninit(l.inShape...)
	hw := l.inShape[2] * l.inShape[3]
	inv := 1 / float32(hw)
	dxd, gd := dx.Data(), grad.Data()
	for i, g := range gd {
		gg := g * inv
		for j := 0; j < hw; j++ {
			dxd[i*hw+j] = gg
		}
	}
	return dx
}

// Params implements Layer.
func (l *GlobalAvgPool) Params() []*Param { return nil }

// States implements Layer.
func (l *GlobalAvgPool) States() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *GlobalAvgPool) Name() string { return "GlobalAvgPool" }

// Flatten reshapes [N, ...] to [N, prod(...)]. It is a pure view change;
// the two view headers are cached on the layer so steady-state batches
// allocate nothing.
type Flatten struct {
	inShape  []int
	out, dxv *tensor.Tensor
}

// NewFlatten builds a flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (l *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.inShape = x.Shape()
	l.out = x.ReshapeInto(l.out, x.Dim(0), -1)
	return l.out
}

// Backward implements Layer.
func (l *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	l.dxv = grad.ReshapeInto(l.dxv, l.inShape...)
	return l.dxv
}

// Params implements Layer.
func (l *Flatten) Params() []*Param { return nil }

// States implements Layer.
func (l *Flatten) States() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *Flatten) Name() string { return "Flatten" }
