package nn

import (
	"testing"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/tensor"
)

// arenaNet builds a network touching every layer type that draws from the
// arena, including a nested Network (inside Residual) that must adopt the
// outer arena rather than reset its own mid-batch.
func arenaNet(seed uint64) *Network {
	r := frand.New(seed)
	drop := frand.New(seed + 1)
	return NewNetwork(
		NewConv2D(r, 2, 4, 3, 1, 1, 1),
		NewBatchNorm2D(4),
		NewReLU(),
		NewResidual(NewNetwork(
			NewConv2D(r, 4, 4, 3, 1, 1, 1),
			NewBatchNorm2D(4),
		), nil),
		NewParallel(false,
			NewConv2D(r, 4, 2, 1, 1, 0, 1),
			NewConv2D(r, 4, 2, 3, 1, 1, 1),
		),
		NewChannelShuffle(2),
		NewSEBlock(r, 4, 2),
		NewHardSwish(),
		NewMaxPool2D(2, 2),
		NewDropout(drop, 0.25),
		NewFlatten(),
		NewDense(r, 64, 8),
		NewSigmoid(),
		NewDense(r, 8, 3),
	)
}

// Arena-backed and allocate-per-batch execution must agree bit-for-bit on
// outputs, input gradients, and parameter gradients, across several batches
// (the second and later batches run entirely on recycled buffers). Any
// aliasing bug — the arena handing out a buffer still referenced by a cached
// Backward intermediate, or a recycled buffer not being rebuilt — breaks the
// exact equality.
func TestArenaForwardBackwardBitIdentical(t *testing.T) {
	withArena := arenaNet(3)
	noArena := arenaNet(3)
	noArena.SetArena(nil)
	if noArena.Arena() != nil {
		t.Fatal("SetArena(nil) did not disable the arena")
	}

	r := frand.New(99)
	for step := 0; step < 3; step++ {
		x := tensor.Randn(r, 1, 2, 2, 8, 8)
		ya := withArena.Forward(x, true)
		yb := noArena.Forward(x, true)
		if !ya.AllClose(yb, 0) {
			t.Fatalf("step %d: forward outputs differ with arena enabled", step)
		}
		grad := tensor.Randn(r, 1, ya.Shape()...)
		dxa := withArena.Backward(grad)
		dxb := noArena.Backward(grad)
		if !dxa.AllClose(dxb, 0) {
			t.Fatalf("step %d: input gradients differ with arena enabled", step)
		}
		pa, pb := withArena.Params(), noArena.Params()
		for i := range pa {
			if !pa[i].Grad.AllClose(pb[i].Grad, 0) {
				t.Fatalf("step %d: grad of %s differs with arena enabled", step, pa[i].Name)
			}
		}
		withArena.ZeroGrads()
		noArena.ZeroGrads()
	}
}

// Backward's returned gradient must survive later Forward passes on the same
// network — the contract the numerical gradient checker relies on (it probes
// the loss with many Forwards after one Backward).
func TestBackwardResultSurvivesLaterForwards(t *testing.T) {
	net := arenaNet(5)
	r := frand.New(7)
	x := tensor.Randn(r, 1, 2, 2, 8, 8)
	y := net.Forward(x, true)
	grad := tensor.Randn(r, 1, y.Shape()...)
	dx := net.Backward(grad)
	snapshot := dx.Clone()
	for i := 0; i < 3; i++ {
		net.Forward(tensor.Randn(r, 1, 2, 2, 8, 8), true)
	}
	if !dx.AllClose(snapshot, 0) {
		t.Fatal("Backward result was clobbered by later Forward passes")
	}
}

// Eval-mode forwards must also run on recycled buffers without corrupting
// results: repeated evaluation of the same input is deterministic.
func TestArenaEvalForwardDeterministic(t *testing.T) {
	net := arenaNet(11)
	r := frand.New(13)
	x := tensor.Randn(r, 1, 4, 2, 8, 8)
	first := net.Forward(x, false).Clone()
	for i := 0; i < 4; i++ {
		if !net.Forward(x, false).AllClose(first, 0) {
			t.Fatalf("eval forward %d diverged on recycled buffers", i)
		}
	}
}

// A nested Network embedded as a layer must adopt the parent's arena: its
// own Forward must NOT reset mid-batch (which would recycle buffers the
// outer layers still hold). arenaNet's Residual body is such a network; here
// we additionally check the steady state allocates nothing new by watching
// the arena's live count stabilize.
func TestNestedNetworkSharesArena(t *testing.T) {
	net := arenaNet(17)
	r := frand.New(19)
	x := tensor.Randn(r, 1, 2, 2, 8, 8)
	grad := tensor.Randn(r, 1, 2, 3)

	net.Forward(x, true)
	net.Backward(grad)
	live := net.Arena().Live()
	if live == 0 {
		t.Fatal("expected live arena tensors after forward/backward")
	}
	for i := 0; i < 3; i++ {
		net.Forward(x, true)
		net.Backward(grad)
		if got := net.Arena().Live(); got != live {
			t.Fatalf("arena live count changed in steady state: %d -> %d (buffers leak per batch)", live, got)
		}
	}
}
