package tensor

import (
	"fmt"
	"testing"

	"heteroswitch/internal/frand"
)

// Within one Reset-to-Reset window the arena must never hand out the same
// buffer twice — the aliasing guarantee every cached Backward intermediate
// relies on.
func TestArenaDistinctBuffersWithinBatch(t *testing.T) {
	a := NewArena()
	x := a.Get(4, 3)
	y := a.Get(4, 3)
	z := a.GetUninit(4, 3)
	if &x.Data()[0] == &y.Data()[0] || &x.Data()[0] == &z.Data()[0] || &y.Data()[0] == &z.Data()[0] {
		t.Fatal("arena handed out an aliased buffer before Reset")
	}
	x.Fill(1)
	y.Fill(2)
	z.Fill(3)
	if x.Data()[0] != 1 || y.Data()[0] != 2 || z.Data()[0] != 3 {
		t.Fatal("buffers overlap")
	}
}

// After Reset the arena must actually recycle: same shape gets the same
// backing memory back, in hand-out order.
func TestArenaRecyclesAfterReset(t *testing.T) {
	a := NewArena()
	x := a.Get(2, 5)
	y := a.Get(2, 5)
	w := a.Get(7) // different shape class
	a.Reset()
	x2 := a.Get(2, 5)
	y2 := a.Get(2, 5)
	w2 := a.Get(7)
	if &x.Data()[0] != &x2.Data()[0] || &y.Data()[0] != &y2.Data()[0] || &w.Data()[0] != &w2.Data()[0] {
		t.Fatal("arena did not recycle buffers after Reset")
	}
}

// Get must return zeroed memory even when recycling a dirty buffer,
// matching tensor.New semantics.
func TestArenaGetZeroesRecycledBuffer(t *testing.T) {
	a := NewArena()
	a.Get(3, 3).Fill(42)
	a.Reset()
	x := a.Get(3, 3)
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatalf("recycled Get returned dirty value %v", v)
		}
	}
}

// Shapes beyond 4-D fall back to plain allocation (never recycled) but must
// still work.
func TestArenaHighRankFallback(t *testing.T) {
	a := NewArena()
	x := a.Get(2, 2, 2, 2, 2)
	if x.Size() != 32 {
		t.Fatalf("5-D fallback size %d", x.Size())
	}
	if got := a.Live(); got != 0 {
		t.Fatalf("fallback tensor tracked as live: %d", got)
	}
}

func TestArenaLive(t *testing.T) {
	a := NewArena()
	a.Get(4)
	a.Get(4)
	a.Get(2, 2)
	if a.Live() != 3 {
		t.Fatalf("Live = %d, want 3", a.Live())
	}
	a.Reset()
	if a.Live() != 0 {
		t.Fatalf("Live after Reset = %d, want 0", a.Live())
	}
}

// Reference kernels for the tiled matmul variants: straightforward triple
// loops with ascending-k accumulation per output element — the op order the
// optimized kernels must reproduce bit-for-bit.
func refMatMul(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for x := 0; x < k; x++ {
				s += a.Data()[i*k+x] * b.Data()[x*n+j]
			}
			out.Data()[i*n+j] = s
		}
	}
	return out
}

func refMatMulTransB(a, b *Tensor) *Tensor {
	m, k, n := a.Dim(0), a.Dim(1), b.Dim(0)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for x := 0; x < k; x++ {
				s += a.Data()[i*k+x] * b.Data()[j*k+x]
			}
			out.Data()[i*n+j] = s
		}
	}
	return out
}

func refMatMulTransA(a, b *Tensor) *Tensor {
	k, m, n := a.Dim(0), a.Dim(1), b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for x := 0; x < k; x++ {
				s += a.Data()[x*m+i] * b.Data()[x*n+j]
			}
			out.Data()[i*n+j] = s
		}
	}
	return out
}

// Odd sizes exercise the 4-wide unroll remainders; sizes above mmBlock
// exercise the cache blocking.
var kernelSizes = []struct{ m, k, n int }{
	{1, 1, 1}, {2, 3, 5}, {4, 4, 4}, {5, 7, 9}, {8, 16, 12},
	{17, 33, 65}, {64, 64, 64}, {70, 65, 130},
}

func TestTiledMatMulMatchesReference(t *testing.T) {
	r := frand.New(101)
	for _, sz := range kernelSizes {
		a := Randn(r, 1, sz.m, sz.k)
		b := Randn(r, 1, sz.k, sz.n)
		got := MatMul(a, b)
		want := refMatMul(a, b)
		if !got.AllClose(want, 1e-5) {
			t.Fatalf("MatMul %dx%dx%d diverged from reference", sz.m, sz.k, sz.n)
		}
	}
}

func TestMatMulTransBVariants(t *testing.T) {
	r := frand.New(103)
	for _, sz := range kernelSizes {
		a := Randn(r, 1, sz.m, sz.k)
		b := Randn(r, 1, sz.n, sz.k)
		want := refMatMulTransB(a, b)

		if got := MatMulTransB(a, b); !got.AllClose(want, 1e-5) {
			t.Fatalf("MatMulTransB %v diverged", sz)
		}
		into := New(sz.m, sz.n)
		into.Fill(7) // must be fully overwritten
		MatMulTransBInto(into, a, b)
		if !into.AllClose(want, 1e-5) {
			t.Fatalf("MatMulTransBInto %v diverged", sz)
		}
		acc := Randn(r, 1, sz.m, sz.n)
		wantAcc := acc.Add(want)
		MatMulTransBAccInto(acc, a, b)
		if !acc.AllClose(wantAcc, 1e-4) {
			t.Fatalf("MatMulTransBAccInto %v diverged", sz)
		}
	}
}

func TestMatMulTransAAccMatchesReference(t *testing.T) {
	r := frand.New(107)
	for _, sz := range kernelSizes {
		a := Randn(r, 1, sz.k, sz.m)
		b := Randn(r, 1, sz.k, sz.n)
		want := refMatMulTransA(a, b)
		got := New(sz.m, sz.n)
		MatMulTransAAccInto(got, a, b)
		if !got.AllClose(want, 1e-5) {
			t.Fatalf("MatMulTransAAccInto %v diverged", sz)
		}
		// Accumulation: a second pass must exactly double the result.
		MatMulTransAAccInto(got, a, b)
		if !got.AllClose(want.Scaled(2), 1e-4) {
			t.Fatalf("MatMulTransAAccInto %v did not accumulate", sz)
		}
	}
}

// The slice-level entry points (used by grouped convolution on sub-slices)
// must agree with the tensor-level ones.
func TestMatMulSliceEntryPoints(t *testing.T) {
	r := frand.New(109)
	a := Randn(r, 1, 5, 7)
	b := Randn(r, 1, 7, 6)
	out := make([]float32, 5*6)
	for i := range out {
		out[i] = 3 // MatMulSlices must overwrite
	}
	MatMulSlices(out, a.Data(), b.Data(), 5, 7, 6)
	want := refMatMul(a, b)
	if !FromSlice(out, 5, 6).AllClose(want, 1e-5) {
		t.Fatal("MatMulSlices diverged")
	}

	bt := Randn(r, 1, 6, 7)
	accT := New(5, 6)
	MatMulTransBAccSlices(accT.Data(), a.Data(), bt.Data(), 5, 7, 6)
	if !accT.AllClose(refMatMulTransB(a, bt), 1e-5) {
		t.Fatal("MatMulTransBAccSlices diverged")
	}

	at := Randn(r, 1, 7, 5)
	accA := New(5, 6)
	MatMulTransAAccSlices(accA.Data(), at.Data(), b.Data(), 7, 5, 6)
	if !accA.AllClose(refMatMulTransA(at, b), 1e-5) {
		t.Fatal("MatMulTransAAccSlices diverged")
	}
}

// BenchmarkMatMul tracks ns/op and allocs/op of the hot kernels at the sizes
// the training stack actually hits (Dense layers and im2col-lowered convs).
func BenchmarkMatMul(b *testing.B) {
	r := frand.New(11)
	for _, sz := range []struct{ m, k, n int }{{8, 64, 128}, {64, 64, 64}, {128, 128, 128}} {
		a := Randn(r, 1, sz.m, sz.k)
		bb := Randn(r, 1, sz.k, sz.n)
		bt := Randn(r, 1, sz.n, sz.k)
		at := Randn(r, 1, sz.k, sz.m)
		out := New(sz.m, sz.n)
		name := func(op string) string {
			return fmt.Sprintf("%s/%dx%dx%d", op, sz.m, sz.k, sz.n)
		}
		b.Run(name("Into"), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMulInto(out, a, bb)
			}
		})
		b.Run(name("TransBInto"), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMulTransBInto(out, a, bt)
			}
		})
		b.Run(name("TransAAccInto"), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMulTransAAccInto(out, at, bb)
			}
		})
		b.Run(name("TransBAccInto"), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				MatMulTransBAccInto(out, a, bt)
			}
		})
	}
}
