package core

import (
	"math"
	"testing"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/fl"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/tensor"
)

func imgTensor(c, h, w int, fill float32) *tensor.Tensor {
	t := tensor.New(c, h, w)
	t.Fill(fill)
	return t
}

func TestRandomWBGammaPreservesShapeAndRange(t *testing.T) {
	rng := frand.New(1)
	tf := RandomWBGamma(0.3, 0.5)
	x := imgTensor(3, 8, 8, 0.5)
	tf(x, rng)
	if x.Dim(0) != 3 || x.Dim(1) != 8 {
		t.Fatalf("shape changed: %v", x.Shape())
	}
	for _, v := range x.Data() {
		if v < 0 || v > 1.5 {
			t.Fatalf("value out of plausible range: %v", v)
		}
	}
}

func TestRandomWBGammaActuallyPerturbs(t *testing.T) {
	rng := frand.New(2)
	tf := RandomWBGamma(0.2, 0.9)
	x := imgTensor(3, 4, 4, 0.5)
	orig := x.Clone()
	tf(x, rng)
	if x.AllClose(orig, 1e-6) {
		t.Fatal("transform changed nothing at high degrees")
	}
}

func TestRandomWBGammaTinyDegreesNearIdentityWB(t *testing.T) {
	// Appendix: WB degree 0.001 — per-channel gains within ±0.1%.
	rng := frand.New(3)
	tf := RandomWBGamma(0.001, 0.0)
	x := imgTensor(3, 4, 4, 0.5)
	tf(x, rng)
	for _, v := range x.Data() {
		if math.Abs(float64(v)-0.5) > 0.001 {
			t.Fatalf("WB at degree 0.001 moved value to %v", v)
		}
	}
}

func TestGammaDirection(t *testing.T) {
	// γ < 1 brightens mid-tones, γ > 1 darkens.
	x := imgTensor(3, 2, 2, 0.25)
	GammaOnly(0)(x, frand.New(1)) // degree 0 → γ=1 exactly
	for _, v := range x.Data() {
		if math.Abs(float64(v)-0.25) > 1e-6 {
			t.Fatalf("γ=1 altered value: %v", v)
		}
	}
}

func TestTransformDatasetIsACopy(t *testing.T) {
	ds := &dataset.Dataset{NumClasses: 2}
	for i := 0; i < 4; i++ {
		ds.Samples = append(ds.Samples, dataset.Sample{X: imgTensor(3, 4, 4, 0.5), Label: i % 2, Device: 3})
	}
	out := TransformDataset(ds, RandomWBGamma(0.3, 0.9), frand.New(5))
	if out.Len() != 4 || out.NumClasses != 2 {
		t.Fatalf("copy malformed: %d/%d", out.Len(), out.NumClasses)
	}
	for i := range ds.Samples {
		if ds.Samples[i].X.Data()[0] != 0.5 {
			t.Fatal("original dataset mutated")
		}
		if out.Samples[i].Label != ds.Samples[i].Label || out.Samples[i].Device != 3 {
			t.Fatal("labels/device tags not preserved")
		}
	}
}

func TestGaussianSmoothReducesVariance(t *testing.T) {
	rng := frand.New(7)
	sig := make([]float32, 128)
	for i := range sig {
		sig[i] = float32(rng.NormFloat64())
	}
	out := gaussianSmooth(sig, 2.0)
	if variance32(out) >= variance32(sig) {
		t.Fatalf("smoothing increased variance: %v -> %v", variance32(sig), variance32(out))
	}
	// Mean should be approximately preserved.
	if math.Abs(mean32(out)-mean32(sig)) > 0.05 {
		t.Fatalf("smoothing shifted mean: %v -> %v", mean32(sig), mean32(out))
	}
}

func variance32(v []float32) float64 {
	m := mean32(v)
	var s float64
	for _, x := range v {
		d := float64(x) - m
		s += d * d
	}
	return s / float64(len(v))
}

func mean32(v []float32) float64 {
	var s float64
	for _, x := range v {
		s += float64(x)
	}
	return s / float64(len(v))
}

func TestRandomGaussianFilterTransform(t *testing.T) {
	rng := frand.New(9)
	x := tensor.New(64)
	for i := range x.Data() {
		x.Data()[i] = float32(rng.NormFloat64())
	}
	orig := x.Clone()
	RandomGaussianFilter(1, 3)(x, rng)
	if x.AllClose(orig, 1e-9) {
		t.Fatal("gaussian filter changed nothing")
	}
}

func TestAffineJitterPreservesShape(t *testing.T) {
	rng := frand.New(11)
	x := tensor.New(3, 8, 8)
	for i := range x.Data() {
		x.Data()[i] = float32(rng.Float64())
	}
	AffineJitter(0.5)(x, rng)
	if x.Dim(0) != 3 || x.Dim(1) != 8 || x.Dim(2) != 8 {
		t.Fatalf("shape changed: %v", x.Shape())
	}
	if x.HasNaN() {
		t.Fatal("NaN after affine jitter")
	}
}

func TestGaussianNoiseBounded(t *testing.T) {
	rng := frand.New(13)
	x := imgTensor(3, 8, 8, 0.5)
	GaussianNoise(0.9)(x, rng)
	for _, v := range x.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("noise exceeded [0,1]: %v", v)
		}
	}
}

// FL integration fixtures ----------------------------------------------------

// toyPopulation encodes class SPATIALLY (top-half bright vs bottom-half
// bright) rather than by global brightness: HeteroSwitch's gamma transform
// is designed to erase global tone cues, so a brightness-coded toy problem
// would be (correctly!) destroyed by the method under test. Devices differ
// by a brightness offset — a toy system-induced shift the transform removes.
func toyPopulation(seed uint64) ([]*fl.Client, map[int]*dataset.Dataset) {
	r := frand.New(seed)
	perDevice := map[int]*dataset.Dataset{}
	for dev := 0; dev < 2; dev++ {
		ds := &dataset.Dataset{NumClasses: 2}
		offset := float32(dev) * 0.1
		for i := 0; i < 24; i++ {
			label := i % 2
			x := tensor.New(1, 4, 4)
			for row := 0; row < 4; row++ {
				bright := (label == 0 && row < 2) || (label == 1 && row >= 2)
				for col := 0; col < 4; col++ {
					v := float32(0.15) + offset + float32(r.NormFloat64()*0.04)
					if bright {
						v += 0.6
					}
					x.Set(v, 0, row, col)
				}
			}
			ds.Samples = append(ds.Samples, dataset.Sample{X: x, Label: label, Device: dev})
		}
		perDevice[dev] = ds
	}
	clients, err := fl.BuildPopulation(perDevice, []int{3, 3}, seed)
	if err != nil {
		panic(err)
	}
	return clients, perDevice
}

func toyBuilder() fl.Builder {
	return func() *nn.Network {
		r := frand.New(77)
		return nn.NewNetwork(nn.NewFlatten(), nn.NewDense(r, 16, 2))
	}
}

func TestHeteroSwitchEndToEnd(t *testing.T) {
	clients, perDevice := toyPopulation(21)
	cfg := fl.Config{Rounds: 8, ClientsPerRound: 4, BatchSize: 4, LocalEpochs: 1, LR: 0.2, Seed: 5, Workers: 2}
	hs := New()
	srv, err := fl.NewServer(cfg, toyBuilder(), nn.SoftmaxCrossEntropy{}, hs, clients)
	if err != nil {
		t.Fatal(err)
	}
	srv.Run(nil)
	if _, has := hs.LEMA(); !has {
		t.Fatal("L_EMA never initialized")
	}
	net := srv.GlobalNet()
	correct, total := 0, 0
	for _, ds := range perDevice {
		x, labels := ds.Batch(0, ds.Len())
		for i, p := range net.Forward(x, false).ArgMaxRows() {
			if p == labels[i] {
				correct++
			}
			total++
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.85 {
		t.Fatalf("HeteroSwitch accuracy %v on separable toy problem", acc)
	}
}

func TestLEMAFollowsEq1(t *testing.T) {
	hs := New()
	mk := func(loss float64) []fl.ClientResult {
		w := nn.Weights{Params: []*tensor.Tensor{tensor.Full(1, 2)}}
		return []fl.ClientResult{{NumSamples: 2, Weights: w, TrainLoss: loss}}
	}
	global := nn.Weights{Params: []*tensor.Tensor{tensor.Full(1, 2)}}
	cfg := fl.Default()

	hs.Aggregate(global, mk(2.0), cfg)
	if l, has := hs.LEMA(); !has || l != 2.0 {
		t.Fatalf("first LEMA = %v (has=%v), want 2.0", l, has)
	}
	hs.Aggregate(global, mk(1.0), cfg)
	want := 0.9*1.0 + 0.1*2.0
	if l, _ := hs.LEMA(); math.Abs(l-want) > 1e-9 {
		t.Fatalf("second LEMA = %v, want %v", l, want)
	}
}

func TestSwitchLogic(t *testing.T) {
	// Construct a context where we can control L_init vs L_EMA.
	clients, _ := toyPopulation(31)
	client := clients[0]
	cfg := fl.Config{Rounds: 1, ClientsPerRound: 1, BatchSize: 4, LocalEpochs: 1, LR: 0.05, Seed: 1, Workers: 1}
	builder := toyBuilder()

	runUpdate := func(hs *HeteroSwitch) fl.ClientResult {
		net := builder()
		global := net.Snapshot()
		ctx := &fl.ClientContext{
			Net: net, Global: global, Client: client, Cfg: cfg,
			Loss: nn.SoftmaxCrossEntropy{}, Round: 0, RNG: frand.New(3),
		}
		return hs.LocalUpdate(ctx)
	}

	// Without LEMA, full mode must not transform (switches off): the result
	// equals plain FedAvg local training.
	hsOff := New()
	resOff := runUpdate(hsOff)

	fedNet := builder()
	fedGlobal := fedNet.Snapshot()
	fedCtx := &fl.ClientContext{Net: fedNet, Global: fedGlobal, Client: client, Cfg: cfg,
		Loss: nn.SoftmaxCrossEntropy{}, Round: 0, RNG: frand.New(3)}
	resFed := fl.FedAvg{}.LocalUpdate(fedCtx)
	for i := range resOff.Weights.Params {
		if !resOff.Weights.Params[i].AllClose(resFed.Weights.Params[i], 1e-6) {
			t.Fatal("switched-off HeteroSwitch should match FedAvg local update")
		}
	}

	// With a huge LEMA, Switch1 and Switch2 both fire, and the SWAD-averaged
	// weights differ from the plain final weights.
	hsOn := New()
	hsOn.mu.Lock()
	hsOn.lema = 1e9
	hsOn.hasLEMA = true
	hsOn.mu.Unlock()
	resOn := runUpdate(hsOn)
	same := true
	for i := range resOn.Weights.Params {
		if !resOn.Weights.Params[i].AllClose(resFed.Weights.Params[i], 1e-7) {
			same = false
		}
	}
	if same {
		t.Fatal("switched-on HeteroSwitch returned weights identical to FedAvg")
	}
}

func TestModesBehave(t *testing.T) {
	if NewWithMode(ModeTransformOnly).Name() != "ISP-Transformation" {
		t.Fatal("mode name wrong")
	}
	if NewWithMode(ModeTransformSWAD).Name() != "ISP+SWAD" {
		t.Fatal("mode name wrong")
	}
	if New().Name() != "HeteroSwitch" {
		t.Fatal("mode name wrong")
	}
	// All three modes should run end-to-end without issue.
	for _, mode := range []Mode{ModeFull, ModeTransformOnly, ModeTransformSWAD} {
		clients, _ := toyPopulation(41)
		cfg := fl.Config{Rounds: 3, ClientsPerRound: 3, BatchSize: 4, LocalEpochs: 1, LR: 0.1, Seed: 2, Workers: 1}
		srv, err := fl.NewServer(cfg, toyBuilder(), nn.SoftmaxCrossEntropy{}, NewWithMode(mode), clients)
		if err != nil {
			t.Fatal(err)
		}
		srv.Run(nil)
		for _, p := range srv.Global.Params {
			if p.HasNaN() {
				t.Fatalf("mode %v produced NaN", mode)
			}
		}
	}
}

func TestHeteroSwitchDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) nn.Weights {
		clients, _ := toyPopulation(51)
		cfg := fl.Config{Rounds: 4, ClientsPerRound: 4, BatchSize: 4, LocalEpochs: 1, LR: 0.1, Seed: 9, Workers: workers}
		srv, err := fl.NewServer(cfg, toyBuilder(), nn.SoftmaxCrossEntropy{}, New(), clients)
		if err != nil {
			t.Fatal(err)
		}
		srv.Run(nil)
		return srv.Global
	}
	a, b := run(1), run(3)
	for i := range a.Params {
		if !a.Params[i].AllClose(b.Params[i], 1e-6) {
			t.Fatalf("param %d differs across worker counts", i)
		}
	}
}
