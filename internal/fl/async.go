package fl

import (
	"fmt"
	"math"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/simclock"
)

// StalenessPolicy maps a completed result's staleness — how many global
// model updates were applied between its dispatch and its arrival — to the
// multiplicative discount on its fold weight. Weight must be a deterministic
// function of staleness, and policies that preserve the synchronous
// equivalence contract keep Weight(0) == 1 so fresh results fold exactly as
// the synchronous server folds them (PolynomialStaleness does;
// ConstantStaleness only at C = 1). A weight of 0 drops the result.
type StalenessPolicy interface {
	Name() string
	Weight(staleness int) float64
}

// ConstantStaleness applies the same weight C to every result regardless of
// staleness — FedAsync's "constant" policy. C = 1 disables discounting; any
// other C also rescales FRESH results (Weight(0) = C ≠ 1), deliberately
// trading away the sync-equivalence contract, and C = 0 discards every
// result, freezing the global model. Use PolynomialStaleness when staleness
// alone should drive the discount.
type ConstantStaleness struct {
	C float64
}

// Name implements StalenessPolicy.
func (p ConstantStaleness) Name() string { return fmt.Sprintf("const(%g)", p.C) }

// Weight implements StalenessPolicy.
func (p ConstantStaleness) Weight(int) float64 { return p.C }

// PolynomialStaleness is the polynomial discount 1/(1+s)^Alpha: fresh results
// fold at full weight and weight decays polynomially with staleness. Alpha = 0
// (the zero value) makes the discount identically 1.
type PolynomialStaleness struct {
	Alpha float64
}

// Name implements StalenessPolicy.
func (p PolynomialStaleness) Name() string { return fmt.Sprintf("poly(%g)", p.Alpha) }

// Weight implements StalenessPolicy.
func (p PolynomialStaleness) Weight(staleness int) float64 {
	if staleness <= 0 || p.Alpha == 0 {
		return 1
	}
	return math.Pow(1+float64(staleness), -p.Alpha)
}

// AsyncConfig carries the asynchronous server's knobs on top of the shared
// fl.Config hyperparameters.
type AsyncConfig struct {
	// Staleness discounts stale folds. nil means no discount
	// (PolynomialStaleness{Alpha: 0}).
	Staleness StalenessPolicy
	// Latency models each dispatched job's virtual duration. nil means zero
	// latency: every job completes at its dispatch instant, which (with the
	// default Concurrency/Buffer) makes the async run bit-identical to the
	// synchronous streaming server.
	Latency simclock.LatencyModel
	// Concurrency is the number of jobs kept in flight. 0 means
	// cfg.ClientsPerRound. Values above Buffer overlap aggregation windows:
	// jobs dispatched against older globals complete under newer ones, which
	// is where staleness (and its discount) appears.
	Concurrency int
	// Buffer is the number of completed results folded per aggregation
	// (FedBuff's K). 0 means cfg.ClientsPerRound.
	Buffer int
}

// withDefaults resolves zero fields against the base config.
func (a AsyncConfig) withDefaults(cfg Config) AsyncConfig {
	if a.Staleness == nil {
		a.Staleness = PolynomialStaleness{}
	}
	if a.Latency == nil {
		a.Latency = simclock.Constant{}
	}
	if a.Buffer == 0 {
		a.Buffer = cfg.ClientsPerRound
	}
	if a.Concurrency == 0 {
		a.Concurrency = a.Buffer
	}
	return a
}

// validate reports configuration errors (after withDefaults).
func (a AsyncConfig) validate() error {
	if a.Buffer < 1 || a.Concurrency < 1 {
		return fmt.Errorf("fl: non-positive async buffer/concurrency: %d/%d", a.Buffer, a.Concurrency)
	}
	if a.Buffer > a.Concurrency {
		return fmt.Errorf("fl: async buffer %d exceeds concurrency %d (a window could never fill)", a.Buffer, a.Concurrency)
	}
	return nil
}

// AsyncRoundStats extends RoundStats with the asynchronous path's
// observability: where the virtual clock stood when the aggregation fired and
// how stale (and therefore how discounted) the folded results were.
type AsyncRoundStats struct {
	RoundStats
	// VirtualTime is the simulated clock at this aggregation, in the latency
	// model's units.
	VirtualTime float64
	// MeanStaleness is the mean number of global updates applied between
	// dispatch and arrival across this window's results; MaxStaleness the
	// worst case.
	MeanStaleness float64
	MaxStaleness  int
	// MeanDiscount is the mean staleness weight applied to this window's
	// folds (1 when nothing was stale or discounting is off).
	MeanDiscount float64
	// Version is the number of global model updates applied through this
	// aggregation.
	Version int
	// Skipped counts this window's completions whose staleness discount was 0:
	// their uploads were discarded without paying local training (the fold at
	// weight 0 is a no-op, so the result could never matter). Skipped clients
	// still appear in Sampled and in the byte accounting.
	Skipped int
}

// asyncJob is one dispatched unit of client work: who trains, and against
// which global version.
type asyncJob struct {
	client  *Client
	version int
}

// AsyncServer drives staleness-aware asynchronous federated training on a
// deterministic virtual-time simulation. There is no round barrier: the
// server keeps Concurrency jobs in flight, a simclock heap orders their
// completions in virtual time, and every completed result folds into the
// streaming accumulator immediately — discounted by the staleness policy —
// with an aggregation (a new global version) every Buffer folds. New work is
// admitted at aggregation boundaries, so each job trains against a
// well-defined broadcast version; with Concurrency > Buffer the windows
// overlap and results arrive stale.
//
// Determinism: the only randomness is the client-sampling stream (the same
// stream, in the same order, as the synchronous server's) and the hash-seeded
// latency model; completion ties at one virtual instant break by dispatch
// sequence. Two runs with the same Config, AsyncConfig, and population are
// bit-identical, and a run with zero latency, no discount, and
// Concurrency == Buffer == ClientsPerRound is bit-identical to the
// synchronous streaming server with Workers = 1. No wall-clock time is read
// anywhere in the loop.
//
// Training is evaluated lazily at completion time on a single replica that
// gets the full intra-op kernel budget (Config.Workers is ignored): the
// simulation's parallelism lives inside the kernels, where it is bit-exact,
// not across clients, where fold order would become scheduling-dependent.
type AsyncServer struct {
	Cfg      Config
	Async    AsyncConfig
	Strategy Strategy
	Loss     nn.Loss
	Clients  []*Client
	Global   nn.Weights
	// Version counts applied global updates. A window whose folds all carried
	// zero weight leaves the model — and so the version — unchanged.
	Version int

	builder Builder
	rng     *frand.RNG
	net     *nn.Network
	sa      StreamingAggregator
	acc     WeightedAccumulator
	clock   simclock.Clock
	pool    weightsPool
	store   nn.VersionStore

	// queue holds drawn-but-undispatched clients in sampling order; qhead
	// avoids re-slicing the backing array away.
	queue []*Client
	qhead int
	// jobs maps dispatch sequence number → in-flight job; seq is the
	// monotonic dispatch counter (also the completion tie-break).
	jobs map[int]asyncJob
	seq  int
	// window counts completed aggregation windows (== RoundStats.Round).
	window  int
	dropped []int
}

// NewAsyncServer builds an asynchronous server with a fresh global model.
// The strategy must support streaming aggregation with weighted folds
// (FedAvg, FedProx, HeteroSwitch); barrier-only strategies (q-FedAvg,
// SCAFFOLD) need every result of a round at once and cannot aggregate
// asynchronously.
func NewAsyncServer(cfg Config, builder Builder, loss nn.Loss, strategy Strategy,
	clients []*Client, async AsyncConfig) (*AsyncServer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("fl: no clients")
	}
	if cfg.ClientsPerRound > len(clients) {
		return nil, fmt.Errorf("fl: K=%d exceeds population %d", cfg.ClientsPerRound, len(clients))
	}
	async = async.withDefaults(cfg)
	if err := async.validate(); err != nil {
		return nil, err
	}
	sa, ok := strategy.(StreamingAggregator)
	if !ok {
		return nil, fmt.Errorf("fl: strategy %s cannot aggregate asynchronously (no streaming fold)", strategy.Name())
	}
	net := builder()
	net.SetIntraOp(intraOpShare(cfg, 1))
	global := net.Snapshot()
	acc, ok := sa.NewAccumulator(global, cfg).(WeightedAccumulator)
	if !ok {
		return nil, fmt.Errorf("fl: strategy %s's accumulator cannot fold weighted results", strategy.Name())
	}
	return &AsyncServer{
		Cfg:      cfg,
		Async:    async,
		Strategy: strategy,
		Loss:     loss,
		Clients:  clients,
		Global:   global,
		builder:  builder,
		// The same sampling stream as the synchronous server: with zero
		// latency and no discount the two draw identical client sequences.
		rng:  frand.New(cfg.Seed ^ 0x5ca1ab1e),
		net:  net,
		sa:   sa,
		acc:  acc,
		jobs: make(map[int]asyncJob),
	}, nil
}

// nextClient pops the dispatch queue, refilling it with a fresh K-client
// draw — consuming the sampling RNG exactly as the synchronous server's
// SampleClients + dropout pass does — whenever it runs dry. Clients lost to
// dropout are recorded and never dispatched (their broadcast still counts,
// since dropout is only observed after the round trip).
func (s *AsyncServer) nextClient(st *AsyncRoundStats, wb int64) *Client {
	for {
		if s.qhead < len(s.queue) {
			c := s.queue[s.qhead]
			s.queue[s.qhead] = nil
			s.qhead++
			if s.qhead == len(s.queue) {
				s.queue = s.queue[:0]
				s.qhead = 0
			}
			return c
		}
		for _, j := range s.rng.Choice(len(s.Clients), s.Cfg.ClientsPerRound) {
			c := s.Clients[j]
			if s.Cfg.ClientDropout > 0 && s.rng.Float64() < s.Cfg.ClientDropout {
				s.dropped = append(s.dropped, c.ID)
				st.BytesDown += wb
				continue
			}
			s.queue = append(s.queue, c)
		}
	}
}

// admit tops the in-flight set up to Concurrency at the current virtual
// time, broadcasting the current global version to each new job.
func (s *AsyncServer) admit(st *AsyncRoundStats) {
	wb := weightBytes(s.Global)
	for len(s.jobs) < s.Async.Concurrency {
		c := s.nextClient(st, wb)
		id := s.seq
		s.seq++
		s.jobs[id] = asyncJob{client: c, version: s.Version}
		s.store.Retain(s.Version, s.Global)
		s.clock.Schedule(s.clock.Now()+s.Async.Latency.Sample(c.ID, id), id)
		st.BytesDown += wb
	}
}

// runJob lazily evaluates one completed job — training against the exact
// global version broadcast at its dispatch — and folds the result into the
// round accumulator at the given discount. The returned result carries only
// scalar stats; its weights aliased the recycled scratch buffer.
//
// A discount of 0 skips training entirely: the fold would contribute nothing
// (AccumulateWeighted at weight 0 is a no-op by contract), so paying all
// LocalEpochs of SGD for it is pure waste. The skip is invisible to
// everything downstream — the client's RoundRNG is a pure function of
// (client, version) so no shared RNG stream advances, the zero-weight
// accumulator state is unchanged, and the caller still releases the version
// and accounts BytesUp (the client uploaded; the server discarded).
func (s *AsyncServer) runJob(job asyncJob, discount float64) ClientResult {
	if discount == 0 {
		return ClientResult{ClientID: job.client.ID, DeviceIdx: job.client.Device}
	}
	global := s.store.Weights(job.version)
	scratch := s.pool.get(global)
	defer s.pool.put(scratch)
	res := localUpdate(s.Strategy, s.net, global, job.client, s.Cfg, s.Loss, job.version, &scratch)
	s.acc.AccumulateWeighted(res, discount)
	res.Weights = Weights{}
	return res
}

// RunRound executes one aggregation window: admit new jobs, fold the next
// Buffer completions in virtual-time order, and apply the aggregated update.
func (s *AsyncServer) RunRound() AsyncRoundStats {
	var st AsyncRoundStats
	st.Round = s.window
	s.window++
	s.admit(&st)
	st.Dropped = s.dropped
	s.dropped = nil

	wb := weightBytes(s.Global)
	var totalSamples, staleSum, discSum float64
	for fold := 0; fold < s.Async.Buffer; fold++ {
		ev, ok := s.clock.Next()
		if !ok {
			panic("fl: async event queue drained mid-window")
		}
		job := s.jobs[ev.ID]
		delete(s.jobs, ev.ID)
		staleness := s.Version - job.version
		discount := s.Async.Staleness.Weight(staleness)
		if discount == 0 {
			st.Skipped++
		}
		res := s.runJob(job, discount)
		s.store.Release(job.version, s.Global)

		n := float64(res.NumSamples)
		st.MeanLoss += res.TrainLoss * n
		st.MeanInit += res.InitLoss * n
		totalSamples += n
		st.Sampled = append(st.Sampled, res.ClientID)
		st.BytesUp += wb
		staleSum += float64(staleness)
		discSum += discount
		if staleness > st.MaxStaleness {
			st.MaxStaleness = staleness
		}
	}
	if totalSamples > 0 {
		st.MeanLoss /= totalSamples
		st.MeanInit /= totalSamples
	}
	st.MeanStaleness = staleSum / float64(s.Async.Buffer)
	st.MeanDiscount = discSum / float64(s.Async.Buffer)
	st.TotalEpochs = (s.Async.Buffer - st.Skipped) * s.Cfg.LocalEpochs

	s.finalizeWindow()
	st.VirtualTime = s.clock.Now()
	st.Version = s.Version
	return st
}

// finalizeWindow turns the window's accumulator into the next global
// version. Like the synchronous server it prefers FinalizeInto on a recycled
// buffer; the buffer pool here is the version store's, fed by retired globals
// once their last in-flight reader completes. A window whose folds all
// carried zero weight (every discount was 0) leaves the global — and the
// version counter — unchanged, so staleness keeps measuring real model drift.
func (s *AsyncServer) finalizeWindow() {
	old := s.Global
	if fi, ok := s.acc.(IntoFinalizer); ok {
		buf := s.store.TakeBuffer(old)
		if fi.FinalizeInto(buf) {
			s.Global = buf
		} else {
			s.store.GiveBuffer(buf)
		}
	} else {
		s.Global = s.acc.Finalize()
	}
	if !s.Global.SharesStorage(old) {
		s.Version++
		s.store.Retire(old)
	}
	if ra, ok := s.acc.(ResettableAccumulator); ok {
		ra.Reset(s.Global, s.Cfg)
	} else {
		s.acc = s.sa.NewAccumulator(s.Global, s.Cfg).(WeightedAccumulator)
	}
}

// Run executes cfg.Rounds aggregation windows, invoking callback (if
// non-nil) after each.
func (s *AsyncServer) Run(callback func(AsyncRoundStats)) {
	for w := 0; w < s.Cfg.Rounds; w++ {
		st := s.RunRound()
		if callback != nil {
			callback(st)
		}
	}
}

// Now returns the current virtual time of the simulation.
func (s *AsyncServer) Now() float64 { return s.clock.Now() }

// InFlight returns the number of dispatched-but-unfolded jobs.
func (s *AsyncServer) InFlight() int { return len(s.jobs) }

// GlobalNet returns a network loaded with the current global weights, for
// evaluation; it gets the full intra-op budget like the synchronous server's.
func (s *AsyncServer) GlobalNet() *nn.Network {
	net := s.builder()
	if err := net.LoadWeights(s.Global); err != nil {
		panic("fl: builder incompatible with global weights: " + err.Error())
	}
	net.SetIntraOp(intraOpShare(s.Cfg, 1))
	return net
}
