package nn

import (
	"sync"
	"testing"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/tensor"
)

// Ensure must load exactly once per version: after a load, mutating the
// source weights without bumping the version must not change the replica's
// outputs (the served weights are pinned to the version key).
func TestReplicaEnsureVersionKeyed(t *testing.T) {
	rep := NewReplica(func() *Network { return smallNet(99) }, 1)
	src := smallNet(1)
	w := src.Snapshot()
	r := frand.New(3)
	x := tensor.Randn(r, 1, 2, 1, 8, 8)

	if err := rep.Ensure(0, w); err != nil {
		t.Fatal(err)
	}
	before := rep.Infer(x).Clone()
	w.Params[0].Data()[0] += 10 // corrupt without bumping the version
	if err := rep.Ensure(0, w); err != nil {
		t.Fatal(err)
	}
	if !rep.Infer(x).AllClose(before, 0) {
		t.Fatal("Ensure reloaded weights for an already-loaded version")
	}
	if err := rep.Ensure(1, w); err != nil {
		t.Fatal(err)
	}
	if rep.Infer(x).AllClose(before, 0) {
		t.Fatal("Ensure(new version) did not reload changed weights")
	}
	if rep.Version() != 1 {
		t.Fatalf("Version() = %d, want 1", rep.Version())
	}
}

// Concurrent replicas serving one version must agree bit-for-bit with a
// serial reference replica on the same version: the frozen fold is a pure
// function of the version's weights. Run with -race, this is also the data
// race test for the pool's Get/Ensure/Infer/Put cycle under version churn.
func TestReplicaPoolConcurrentBitIdentical(t *testing.T) {
	build := func() *Network { return smallNet(99) }
	pool := NewReplicaPool(4, build, 1)
	src := smallNet(1)

	// Two immutable versions, served interleaved.
	v0 := src.Snapshot()
	src.Params()[0].W.Data()[0] += 0.5
	v1 := src.Snapshot()
	versions := []Weights{v0, v1}

	ref := NewReplica(build, 1)
	r := frand.New(5)
	const requests = 64
	inputs := make([]*tensor.Tensor, requests)
	want := make([][]float32, requests)
	for i := range inputs {
		inputs[i] = tensor.Randn(r, 1, 2, 1, 8, 8)
		v := i % 2
		if err := ref.Ensure(v, versions[v]); err != nil {
			t.Fatal(err)
		}
		out := ref.Infer(inputs[i])
		want[i] = append([]float32(nil), out.Data()...)
	}

	got := make([][]float32, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep := pool.Get()
			defer pool.Put(rep)
			v := i % 2
			if err := rep.Ensure(v, versions[v]); err != nil {
				t.Error(err)
				return
			}
			out := rep.Infer(inputs[i])
			got[i] = append([]float32(nil), out.Data()...)
		}(i)
	}
	wg.Wait()

	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("request %d output[%d] = %v, want %v (replica disagrees with serial reference)",
					i, j, got[i][j], want[i][j])
			}
		}
	}
}

// Same contract with the packed matmul backend forced: concurrent replicas
// hammer the shared pack-buffer pool from many goroutines, and every output
// must still be bit-identical to a serial packed reference (packed outputs
// are budget- and concurrency-invariant). Run with -race, this is the data
// race test for packBufPool/packTaskPool under real replica traffic.
func TestReplicaPoolConcurrentPackedBitIdentical(t *testing.T) {
	prev := tensor.ActiveBackend()
	tensor.SetBackend(tensor.BackendPacked)
	t.Cleanup(func() { tensor.SetBackend(prev) })

	build := func() *Network { return smallNet(99) }
	pool := NewReplicaPool(4, build, 2)
	src := smallNet(1)
	w := src.Snapshot()

	ref := NewReplica(build, 1)
	if err := ref.Ensure(0, w); err != nil {
		t.Fatal(err)
	}
	r := frand.New(7)
	const requests = 64
	inputs := make([]*tensor.Tensor, requests)
	want := make([][]float32, requests)
	for i := range inputs {
		inputs[i] = tensor.Randn(r, 1, 2, 1, 8, 8)
		out := ref.Infer(inputs[i])
		want[i] = append([]float32(nil), out.Data()...)
	}

	got := make([][]float32, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep := pool.Get()
			defer pool.Put(rep)
			if err := rep.Ensure(0, w); err != nil {
				t.Error(err)
				return
			}
			out := rep.Infer(inputs[i])
			got[i] = append([]float32(nil), out.Data()...)
		}(i)
	}
	wg.Wait()

	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("request %d output[%d] = %v, want %v (packed replica disagrees with packed serial reference)",
					i, j, got[i][j], want[i][j])
			}
		}
	}
}

// The pool's Get/Put cycle is the steady-state request path: it must not
// allocate.
func TestReplicaPoolZeroAllocCycle(t *testing.T) {
	pool := NewReplicaPool(2, func() *Network { return smallNet(1) }, 1)
	allocs := testing.AllocsPerRun(100, func() {
		rep := pool.Get()
		pool.Put(rep)
	})
	if allocs != 0 {
		t.Fatalf("pool Get/Put allocates %v per cycle, want 0", allocs)
	}
}
