package experiments

import (
	"fmt"

	"heteroswitch/internal/core"
	"heteroswitch/internal/dataset"
	"heteroswitch/internal/fl"
	"heteroswitch/internal/metrics"
	"heteroswitch/internal/models"
)

// MethodScore holds the paper's three evaluation metrics for one method:
// worst-case accuracy (DG), variance of per-device accuracy in percentage
// points squared, and average accuracy (fairness).
type MethodScore struct {
	Method    string
	WorstAcc  float64
	Variance  float64 // of accuracy expressed in percent, i.e. pp²
	AvgAcc    float64
	PerDevice []float64
}

// scoreFromAccuracies converts per-device accuracies into the Table 4/5
// metric triple.
func scoreFromAccuracies(method string, accByDevice map[int]float64) MethodScore {
	accs := metrics.Values(accByDevice)
	pcts := make([]float64, len(accs))
	for i, a := range accs {
		pcts[i] = a * 100
	}
	return MethodScore{
		Method:    method,
		WorstAcc:  metrics.Worst(accs),
		Variance:  metrics.Variance(pcts),
		AvgAcc:    metrics.Mean(accs),
		PerDevice: accs,
	}
}

// Table4Result is the main evaluation: HeteroSwitch and its ablations
// against FedAvg, q-FedAvg, FedProx, and SCAFFOLD.
type Table4Result struct {
	Scores []MethodScore
}

// String renders Table 4's layout.
func (r *Table4Result) String() string {
	t := &Table{
		Title:  "Table 4 — fairness and domain generalization",
		Header: []string{"method", "worst-case acc (DG)", "variance (pp²)", "avg acc"},
	}
	for _, s := range r.Scores {
		t.AddRow(s.Method, pct(s.WorstAcc), fmt.Sprintf("%.2f", s.Variance), pct(s.AvgAcc))
	}
	return t.String()
}

// table4Methods builds the method list in the paper's row order. Fresh
// strategy values are constructed per call because several carry state.
func table4Methods(totalClients int) []fl.Strategy {
	return []fl.Strategy{
		fl.FedAvg{},
		core.NewWithMode(core.ModeTransformOnly),
		core.NewWithMode(core.ModeTransformSWAD),
		core.New(),
		&fl.QFedAvg{Q: 1e-6}, // paper's tuned q (App. A.2)
		&fl.FedProx{Mu: 1e-1},
		&fl.Scaffold{TotalClients: totalClients},
	}
}

// table4Config is the §6 configuration with scaled rounds.
func table4Config(opts Options) fl.Config {
	return fl.Config{
		Rounds:           opts.scaled(120),
		ClientsPerRound:  20,
		BatchSize:        10,
		LocalEpochs:      1,
		LR:               0.1,
		Seed:             opts.Seed,
		Workers:          opts.Workers,
		DisableStreaming: opts.DisableStreaming,
		IntraOp:          opts.IntraOp,
	}
}

// Table4 runs the full main-evaluation sweep with TinyMobileNetV3.
func Table4(opts Options) (*Table4Result, error) {
	dd, err := BuildDeviceData(opts, opts.scaled(12), opts.scaled(4), dataset.ModeProcessed)
	if err != nil {
		return nil, err
	}
	cfg := table4Config(opts)
	n := opts.scaled(100)
	counts := MarketShareCounts(dd, n)
	builder := MobileNetBuilder(opts.Seed, dd.Classes)

	res := &Table4Result{}
	for _, strat := range table4Methods(n) {
		srv, err := RunFL(opts, strat, dd, counts, cfg, builder)
		if err != nil {
			return nil, fmt.Errorf("table4 %s: %w", strat.Name(), err)
		}
		acc := PerDeviceAccuracies(srv.GlobalNet(), dd, 16)
		res.Scores = append(res.Scores, scoreFromAccuracies(strat.Name(), acc))
	}
	return res, nil
}

// Table5Result evaluates FedAvg vs HeteroSwitch across model architectures.
type Table5Result struct {
	Rows []struct {
		Arch           string
		FedAvg, Hetero MethodScore
	}
}

// String renders Table 5's layout.
func (r *Table5Result) String() string {
	t := &Table{
		Title: "Table 5 — architectures × {FedAvg, HeteroSwitch}",
		Header: []string{"model", "FedAvg worst", "FedAvg var", "FedAvg avg",
			"HS worst", "HS var", "HS avg"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Arch,
			pct(row.FedAvg.WorstAcc), fmt.Sprintf("%.2f", row.FedAvg.Variance), pct(row.FedAvg.AvgAcc),
			pct(row.Hetero.WorstAcc), fmt.Sprintf("%.2f", row.Hetero.Variance), pct(row.Hetero.AvgAcc))
	}
	return t.String()
}

// Table5 runs the architecture sweep.
func Table5(opts Options) (*Table5Result, error) {
	dd, err := BuildDeviceData(opts, opts.scaled(12), opts.scaled(4), dataset.ModeProcessed)
	if err != nil {
		return nil, err
	}
	cfg := table4Config(opts)
	n := opts.scaled(100)
	counts := MarketShareCounts(dd, n)

	archs := []models.Arch{models.ArchMobileNet, models.ArchShuffleNet, models.ArchSqueezeNet}
	res := &Table5Result{}
	for _, arch := range archs {
		builder, err := models.BuilderFor(arch, opts.Seed, 3, dd.Classes)
		if err != nil {
			return nil, err
		}
		var scores [2]MethodScore
		for i, strat := range []fl.Strategy{fl.FedAvg{}, core.New()} {
			srv, err := RunFL(opts, strat, dd, counts, cfg, builder)
			if err != nil {
				return nil, fmt.Errorf("table5 %s/%s: %w", arch, strat.Name(), err)
			}
			acc := PerDeviceAccuracies(srv.GlobalNet(), dd, 16)
			scores[i] = scoreFromAccuracies(strat.Name(), acc)
		}
		res.Rows = append(res.Rows, struct {
			Arch           string
			FedAvg, Hetero MethodScore
		}{string(arch), scores[0], scores[1]})
	}
	return res, nil
}
