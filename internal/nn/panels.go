package nn

import (
	"sync"

	"heteroswitch/internal/tensor"
)

// Version-keyed panel sharing ---------------------------------------------------
//
// A panelSet holds one weight version's packed/quantized forms — one
// tensor.PackedWeights slot per fused matmul in the compiled frozen program.
// Serving replicas all load bit-identical folded weights for a given version
// (LoadWeights from the same immutable snapshot plus deterministic folding),
// so the packed forms are a pure function of the version and can be built
// once and shared: the first replica to freeze onto a version packs each
// slot under the set's lock, every later replica finds the slot packed and
// pays a pointer read.
//
// Lifetime is reference-counted, not GC'd: a replica holds one reference on
// the set it currently serves from and releases it only AFTER it has frozen
// onto the next version's set, so a publish→retire sequence can never free
// panels a replica is still reading mid-batch. A set whose references drop
// to zero while a newer version exists is recycled — packed flags cleared,
// slot capacity kept — bounding the cache at (replicas + 1) resident sets
// with zero steady-state allocation.

// panelSet is one weight version's shared packed-weight slots.
type panelSet struct {
	version int
	refs    int // guarded by the owning PanelCache's mu

	mu     sync.Mutex // serializes first-pack of each slot
	packed []bool
	slots  []tensor.PackedWeights
}

// grow sizes the set for nslots, keeping slot capacity across recycles.
func (ps *panelSet) grow(nslots int) {
	if cap(ps.packed) < nslots {
		ps.packed = make([]bool, nslots)
		ps.slots = make([]tensor.PackedWeights, nslots)
	}
	ps.packed = ps.packed[:nslots]
	ps.slots = ps.slots[:nslots]
}

// ensureB returns the slot's weights-as-B handle, packing it from w[k,n] if
// this caller is the first to fold the version.
func (ps *panelSet) ensureB(slot int, w []float32, k, n int) *tensor.PackedWeights {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if !ps.packed[slot] {
		ps.slots[slot].RefreshB(w, k, n)
		ps.packed[slot] = true
	}
	return &ps.slots[slot]
}

// ensureA returns the slot's weights-as-A handle, packing it from w[m,k] if
// this caller is the first to fold the version.
func (ps *panelSet) ensureA(slot int, w []float32, m, k int) *tensor.PackedWeights {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if !ps.packed[slot] {
		ps.slots[slot].RefreshA(w, m, k)
		ps.packed[slot] = true
	}
	return &ps.slots[slot]
}

// PanelCache shares packed weight panels across the replicas of one served
// model, keyed by weight version. Safe for concurrent use.
type PanelCache struct {
	mu     sync.Mutex
	sets   map[int]*panelSet
	pool   []*panelSet // recycled sets, capacity retained
	newest int

	resident int // live (referenced or newest) sets
	recycled int // cumulative sets recycled — the leak-accounting counter
}

// NewPanelCache returns an empty cache.
func NewPanelCache() *PanelCache {
	return &PanelCache{sets: make(map[int]*panelSet), newest: -1}
}

// Acquire takes a reference on version's panel set (creating or recycling
// one sized for nslots on first acquire). Callers must Release exactly once.
func (pc *PanelCache) Acquire(version, nslots int) *panelSet {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if ps, ok := pc.sets[version]; ok {
		ps.refs++
		return ps
	}
	var ps *panelSet
	if n := len(pc.pool); n > 0 {
		ps = pc.pool[n-1]
		pc.pool = pc.pool[:n-1]
	} else {
		ps = new(panelSet)
	}
	ps.version, ps.refs = version, 1
	ps.grow(nslots)
	pc.sets[version] = ps
	pc.resident++
	if version > pc.newest {
		pc.newest = version
	}
	return ps
}

// Release drops one reference. An unreferenced set of a superseded version
// is recycled (packed flags cleared, capacity kept); the newest version's
// set stays resident even at zero references so a replica arriving late to
// the current version still finds its panels packed.
func (pc *PanelCache) Release(ps *panelSet) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	ps.refs--
	if ps.refs > 0 || ps.version >= pc.newest {
		return
	}
	delete(pc.sets, ps.version)
	clear(ps.packed)
	pc.pool = append(pc.pool, ps)
	pc.resident--
	pc.recycled++
}

// Resident returns the number of live panel sets — bounded by one per
// replica plus the newest version.
func (pc *PanelCache) Resident() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.resident
}

// Recycled returns the cumulative number of recycled sets; together with
// Resident it proves every superseded version's panels were reclaimed.
func (pc *PanelCache) Recycled() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.recycled
}
