package flair

import "testing"

func smallConfig() Config {
	return Config{
		NumDeviceTypes:   4,
		SamplesPerDevice: 3,
		TestPerDevice:    2,
		Classes:          12,
		OutRes:           16,
		Seed:             5,
	}
}

func TestBuildFederation(t *testing.T) {
	fed, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(fed.Devices) != 4 {
		t.Fatalf("devices = %d", len(fed.Devices))
	}
	for d := 0; d < 4; d++ {
		tr, te := fed.Train[d], fed.Test[d]
		if tr.Len() != 3 || te.Len() != 2 {
			t.Fatalf("device %d sizes %d/%d", d, tr.Len(), te.Len())
		}
		for _, s := range tr.Samples {
			if s.Device != d {
				t.Fatal("device tag mismatch")
			}
			if len(s.Multi) != 12 {
				t.Fatalf("label vector %d", len(s.Multi))
			}
			pos := 0
			for _, l := range s.Multi {
				if l == 1 {
					pos++
				}
			}
			if pos < 2 || pos > 4 {
				t.Fatalf("positives %d", pos)
			}
			sh := s.X.Shape()
			if sh[0] != 3 || sh[1] != 16 {
				t.Fatalf("tensor shape %v", sh)
			}
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !a.Train[0].Samples[0].X.AllClose(b.Train[0].Samples[0].X, 0) {
		t.Fatal("federation not deterministic in seed")
	}
}

func TestBuildValidation(t *testing.T) {
	cfg := smallConfig()
	cfg.NumDeviceTypes = 0
	if _, err := Build(cfg); err == nil {
		t.Fatal("zero devices should fail")
	}
	cfg = smallConfig()
	cfg.Classes = 5
	if _, err := Build(cfg); err == nil {
		t.Fatal("unsupported class count should fail")
	}
}

func TestAllTest(t *testing.T) {
	fed, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	all := fed.AllTest()
	if all.Len() != 8 {
		t.Fatalf("AllTest length %d", all.Len())
	}
	devs := map[int]bool{}
	for _, s := range all.Samples {
		devs[s.Device] = true
	}
	if len(devs) != 4 {
		t.Fatal("AllTest lost device diversity")
	}
}
