package isp

import (
	"math"
	"sort"
)

// WBAlg selects the white-balance algorithm (Table 3 "Color transformation").
type WBAlg int

// White balance variants. Gray-world is the baseline; Option 1 omits the
// stage; Option 2 is white-patch (max-RGB on a high percentile).
const (
	WBGrayWorld WBAlg = iota
	WBNone
	WBWhitePatch
)

// String implements fmt.Stringer.
func (a WBAlg) String() string {
	switch a {
	case WBGrayWorld:
		return "gray-world"
	case WBNone:
		return "none"
	case WBWhitePatch:
		return "white-patch"
	}
	return "wb?"
}

// WhiteBalance corrects the illuminant color cast, returning a new image.
func WhiteBalance(im *Image, alg WBAlg) *Image {
	switch alg {
	case WBNone:
		return im.Clone()
	case WBWhitePatch:
		return wbWhitePatch(im)
	default:
		return wbGrayWorld(im)
	}
}

// wbGrayWorld scales each channel so all channel means equal their average
// (the gray-world assumption).
func wbGrayWorld(im *Image) *Image {
	means := im.ChannelMeans()
	avg := (means[0] + means[1] + means[2]) / 3
	out := im.Clone()
	var gains [3]float64
	for c := 0; c < 3; c++ {
		if means[c] > 1e-9 {
			gains[c] = avg / means[c]
		} else {
			gains[c] = 1
		}
	}
	applyGains(out, gains)
	return out
}

// wbWhitePatch scales each channel so its 99th percentile maps to the
// overall 99th percentile (robust max-RGB).
func wbWhitePatch(im *Image) *Image {
	n := im.W * im.H
	var highs [3]float64
	tmp := make([]float64, n)
	for c := 0; c < 3; c++ {
		for i := 0; i < n; i++ {
			tmp[i] = im.Pix[i*3+c]
		}
		sort.Float64s(tmp)
		highs[c] = tmp[(n*99)/100]
	}
	target := math.Max(highs[0], math.Max(highs[1], highs[2]))
	out := im.Clone()
	var gains [3]float64
	for c := 0; c < 3; c++ {
		if highs[c] > 1e-9 {
			gains[c] = target / highs[c]
		} else {
			gains[c] = 1
		}
	}
	applyGains(out, gains)
	return out
}

func applyGains(im *Image, g [3]float64) {
	n := im.W * im.H
	for i := 0; i < n; i++ {
		for c := 0; c < 3; c++ {
			im.Pix[i*3+c] = clamp01(im.Pix[i*3+c] * g[c])
		}
	}
}

// ApplyWBGains exposes raw per-channel gain application (used by device ISP
// presets and by HeteroSwitch's random-WB transformation, eq. 2).
func ApplyWBGains(im *Image, r, g, b float64) *Image {
	out := im.Clone()
	applyGains(out, [3]float64{r, g, b})
	return out
}

// GamutAlg selects the gamut mapping (Table 3 row "Gamut mapping").
type GamutAlg int

// Gamut variants. sRGB is the baseline working gamut (identity for data
// already in linear sRGB); Option 1 omits the stage; Option 2 re-encodes the
// primaries as ProPhoto RGB, compressing saturated colors toward neutral.
const (
	GamutSRGB GamutAlg = iota
	GamutNone
	GamutProPhoto
)

// String implements fmt.Stringer.
func (a GamutAlg) String() string {
	switch a {
	case GamutSRGB:
		return "srgb"
	case GamutNone:
		return "none"
	case GamutProPhoto:
		return "prophoto"
	}
	return "gamut?"
}

// Linear sRGB (D65) to XYZ and its inverse; ProPhoto (D50) matrices. The
// D65/D50 white-point difference is deliberately retained: it is part of the
// rendering difference between gamut choices on real devices.
var (
	srgbToXYZ = [9]float64{
		0.4124564, 0.3575761, 0.1804375,
		0.2126729, 0.7151522, 0.0721750,
		0.0193339, 0.1191920, 0.9503041,
	}
	xyzToProPhoto = [9]float64{
		1.3459433, -0.2556075, -0.0511118,
		-0.5445989, 1.5081673, 0.0205351,
		0.0000000, 0.0000000, 1.2118128,
	}
)

// GamutMap converts the image to the selected working gamut.
func GamutMap(im *Image, alg GamutAlg) *Image {
	switch alg {
	case GamutProPhoto:
		m := matMul3(xyzToProPhoto, srgbToXYZ)
		out := im.Clone()
		applyMatrix(out, m)
		return out
	default: // sRGB working space and "none" are both identity here.
		return im.Clone()
	}
}

func matMul3(a, b [9]float64) [9]float64 {
	var out [9]float64
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var s float64
			for k := 0; k < 3; k++ {
				s += a[i*3+k] * b[k*3+j]
			}
			out[i*3+j] = s
		}
	}
	return out
}

func applyMatrix(im *Image, m [9]float64) {
	n := im.W * im.H
	for i := 0; i < n; i++ {
		r := im.Pix[i*3]
		g := im.Pix[i*3+1]
		b := im.Pix[i*3+2]
		im.Pix[i*3] = clamp01(m[0]*r + m[1]*g + m[2]*b)
		im.Pix[i*3+1] = clamp01(m[3]*r + m[4]*g + m[5]*b)
		im.Pix[i*3+2] = clamp01(m[6]*r + m[7]*g + m[8]*b)
	}
}

// ApplyColorMatrix applies an arbitrary 3x3 color matrix (used by the sensor
// model for channel crosstalk).
func ApplyColorMatrix(im *Image, m [9]float64) *Image {
	out := im.Clone()
	applyMatrix(out, m)
	return out
}
