package experiments

import (
	"fmt"

	"heteroswitch/internal/core"
	"heteroswitch/internal/dataset"
	"heteroswitch/internal/fl"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/metrics"
	"heteroswitch/internal/models"
	"heteroswitch/internal/scene"
	"heteroswitch/internal/tensor"
)

// ColorJitterDevice is one of §6.5's synthetic device types: a fixed random
// contrast/brightness/saturation/hue rendering applied to every image the
// device "captures".
type ColorJitterDevice struct {
	Contrast, Brightness, Saturation, Hue float64
}

// RandomJitterDevice draws one device setting, matching §6.5's "10 different
// randomized settings for contrast, brightness, saturation, and hue".
func RandomJitterDevice(rng *frand.RNG) ColorJitterDevice {
	return ColorJitterDevice{
		Contrast:   rng.Uniform(0.6, 1.4),
		Brightness: rng.Uniform(-0.15, 0.15),
		Saturation: rng.Uniform(0.5, 1.5),
		Hue:        rng.Uniform(0, 0.25),
	}
}

// Apply renders a CHW tensor through the device setting in place.
func (d ColorJitterDevice) Apply(x *tensor.Tensor) {
	if x.NDim() != 3 || x.Dim(0) != 3 {
		return
	}
	hw := x.Dim(1) * x.Dim(2)
	data := x.Data()
	for i := 0; i < hw; i++ {
		r := float64(data[i])
		g := float64(data[hw+i])
		b := float64(data[2*hw+i])
		// Hue: blend toward the cyclically shifted channel order.
		r, g, b = (1-d.Hue)*r+d.Hue*g, (1-d.Hue)*g+d.Hue*b, (1-d.Hue)*b+d.Hue*r
		// Saturation around Rec.601 luma.
		l := 0.299*r + 0.587*g + 0.114*b
		r = l + d.Saturation*(r-l)
		g = l + d.Saturation*(g-l)
		b = l + d.Saturation*(b-l)
		// Contrast around mid-gray, then brightness.
		r = (r-0.5)*d.Contrast + 0.5 + d.Brightness
		g = (g-0.5)*d.Contrast + 0.5 + d.Brightness
		b = (b-0.5)*d.Contrast + 0.5 + d.Brightness
		data[i] = clampF32(r)
		data[hw+i] = clampF32(g)
		data[2*hw+i] = clampF32(b)
	}
}

func clampF32(v float64) float32 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return float32(v)
}

// Fig8Result compares FedAvg and HeteroSwitch across the 10 synthetic
// device types.
type Fig8Result struct {
	NumDevices int
	FedAvgAcc  []float64
	HeteroAcc  []float64
	FedAvg     MethodScore
	Hetero     MethodScore
}

// String renders the per-device accuracy series.
func (r *Fig8Result) String() string {
	t := &Table{
		Title:  "Figure 8 — synthetic device types (CIFAR-style scenes)",
		Header: []string{"device", "FedAvg", "HeteroSwitch"},
	}
	for i := 0; i < r.NumDevices; i++ {
		t.AddRow(fmt.Sprintf("jitter-%02d", i), pct(r.FedAvgAcc[i]), pct(r.HeteroAcc[i]))
	}
	t.AddRow("mean", pct(r.FedAvg.AvgAcc), pct(r.Hetero.AvgAcc))
	t.AddRow("variance(pp²)", fmt.Sprintf("%.2f", r.FedAvg.Variance), fmt.Sprintf("%.2f", r.Hetero.Variance))
	return t.String()
}

// Fig8 builds the synthetic-jitter federation and runs both methods with the
// SimpleCNN, as §6.5 does. The paper uses CIFAR-100; the scene generator
// stands in with 20 procedurally distinct classes at the same resolution.
func Fig8(opts Options) (*Fig8Result, error) {
	const numDevices = 10
	classes := 20
	gen := scene.NewSynthetic(classes, 48, opts.Seed^0xc1fa)
	rng := frand.New(opts.Seed ^ 0x5e77)

	devices := make([]ColorJitterDevice, numDevices)
	for i := range devices {
		devices[i] = RandomJitterDevice(rng)
	}

	perClassTrain := opts.scaled(6)
	perClassTest := opts.scaled(3)
	mkSet := func(perClass int, salt string) []scene.Scene {
		return gen.RenderSet(perClass, frand.New(opts.Seed).SplitNamed(salt))
	}
	trainScenes := mkSet(perClassTrain, "fig8-train")
	testScenes := mkSet(perClassTest, "fig8-test")

	capture := func(scenes []scene.Scene, dev int) *dataset.Dataset {
		ds := &dataset.Dataset{NumClasses: classes}
		for _, sc := range scenes {
			x := sc.Image.Resize(opts.OutRes, opts.OutRes).ToTensor()
			devices[dev].Apply(x)
			ds.Samples = append(ds.Samples, dataset.Sample{X: x, Label: sc.Class, Device: dev})
		}
		return ds
	}
	train := map[int]*dataset.Dataset{}
	test := map[int]*dataset.Dataset{}
	for d := 0; d < numDevices; d++ {
		train[d] = capture(trainScenes, d)
		test[d] = capture(testScenes, d)
	}

	builder, err := models.BuilderFor(models.ArchSimpleCNN, opts.Seed, 3, classes)
	if err != nil {
		return nil, err
	}
	cfg := fl.Config{
		Rounds:           opts.scaled(80),
		ClientsPerRound:  10,
		BatchSize:        10,
		LocalEpochs:      1,
		LR:               0.1,
		Seed:             opts.Seed,
		Workers:          opts.Workers,
		DisableStreaming: opts.DisableStreaming,
		IntraOp:          opts.IntraOp,
	}
	counts := EqualCounts(numDevices, opts.scaled(20))

	run := func(strat fl.Strategy) ([]float64, MethodScore, error) {
		srv, err := RunFLWithLoss(opts, strat, train, counts, cfg, builder, lossCE())
		if err != nil {
			return nil, MethodScore{}, err
		}
		net := srv.GlobalNet()
		accByDev := map[int]float64{}
		for d := 0; d < numDevices; d++ {
			accByDev[d] = metrics.Accuracy(net, test[d], 16)
		}
		return metrics.Values(accByDev), scoreFromAccuracies(strat.Name(), accByDev), nil
	}

	res := &Fig8Result{NumDevices: numDevices}
	if res.FedAvgAcc, res.FedAvg, err = run(fl.FedAvg{}); err != nil {
		return nil, err
	}
	if res.HeteroAcc, res.Hetero, err = run(core.New()); err != nil {
		return nil, err
	}
	return res, nil
}
