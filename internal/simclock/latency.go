package simclock

import (
	"fmt"
	"strconv"
	"strings"
)

// LatencyModel draws the virtual duration of one unit of client work (local
// training plus both network legs). Sample must be a pure function of the
// model's configuration and (id, step) — no internal state — so schedules
// replay identically across runs and are independent of the order in which
// the simulator happens to ask. id is typically a client ID and step a
// monotonically increasing dispatch counter, making every draw distinct.
type LatencyModel interface {
	Sample(id, step int) float64
}

// Constant is a fixed latency for every client and step. The zero value is
// the zero-latency model (every job completes at its dispatch instant).
type Constant struct {
	D float64
}

// Sample implements LatencyModel.
func (m Constant) Sample(int, int) float64 { return m.D }

// Uniform draws i.i.d. latencies uniformly from [Lo, Hi), hashed from
// (Seed, id, step).
type Uniform struct {
	Lo, Hi float64
	Seed   uint64
}

// Sample implements LatencyModel.
func (m Uniform) Sample(id, step int) float64 {
	return m.Lo + (m.Hi-m.Lo)*unit(m.Seed, id, step)
}

// StragglerTail models a heterogeneous fleet with a persistent slow tail:
// every draw starts uniform in [Lo, Hi), and clients deterministically
// marked as stragglers (a TailProb fraction of IDs, fixed per seed) are
// slowed by TailFactor on every step. This is the regime where asynchronous
// aggregation pays off: the same slow devices hold back every synchronous
// round.
type StragglerTail struct {
	Lo, Hi     float64
	TailProb   float64
	TailFactor float64
	Seed       uint64
}

// IsStraggler reports whether the model permanently slows the given client.
func (m StragglerTail) IsStraggler(id int) bool {
	return unit(m.Seed^stragglerSalt, id, 0) < m.TailProb
}

// Sample implements LatencyModel.
func (m StragglerTail) Sample(id, step int) float64 {
	d := m.Lo + (m.Hi-m.Lo)*unit(m.Seed, id, step)
	if m.IsStraggler(id) {
		d *= m.TailFactor
	}
	return d
}

// stragglerSalt separates the per-client straggler coin from the per-step
// latency stream so both draw independently from one seed.
const stragglerSalt = 0x5742_11d6_37c8_90a1

// Hash01 hashes (seed, a, b) to a uniform float64 in [0, 1): the package's
// stateless draw, exported for other virtual-time harnesses (internal/serve's
// arrival models) so every simulator shares one reproducible randomness
// primitive.
func Hash01(seed uint64, a, b int) float64 { return unit(seed, a, b) }

// unit hashes (seed, a, b) to a uniform float64 in [0, 1) with no allocation
// and no mutable state (SplitMix64 finalizer over a mixed key).
func unit(seed uint64, a, b int) float64 {
	x := seed ^ (uint64(a)+1)*0x9e3779b97f4a7c15 ^ (uint64(b)+2)*0xc2b2ae3d27d4eb4f
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) * (1.0 / (1 << 53))
}

// ParseModel builds a LatencyModel from a CLI spec, seeding the stochastic
// models from seed. Specs:
//
//	zero (or "")                    no latency: completions at dispatch time
//	const:D                         fixed latency D
//	uniform:LO,HI                   i.i.d. uniform in [LO, HI)
//	straggler:LO,HI,P,FACTOR        uniform base; a P fraction of clients is
//	                                persistently FACTOR× slower
func ParseModel(spec string, seed uint64) (LatencyModel, error) {
	name, argStr, _ := strings.Cut(spec, ":")
	var args []float64
	if argStr != "" {
		for _, s := range strings.Split(argStr, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return nil, fmt.Errorf("simclock: latency spec %q: %v", spec, err)
			}
			args = append(args, v)
		}
	}
	bad := func(want string) error {
		return fmt.Errorf("simclock: latency spec %q: want %s", spec, want)
	}
	switch name {
	case "", "zero":
		if len(args) != 0 {
			return nil, bad("zero (no arguments)")
		}
		return Constant{}, nil
	case "const":
		if len(args) != 1 || args[0] < 0 {
			return nil, bad("const:D with D >= 0")
		}
		return Constant{D: args[0]}, nil
	case "uniform":
		if len(args) != 2 || args[0] < 0 || args[1] < args[0] {
			return nil, bad("uniform:LO,HI with 0 <= LO <= HI")
		}
		return Uniform{Lo: args[0], Hi: args[1], Seed: seed}, nil
	case "straggler":
		if len(args) != 4 || args[0] < 0 || args[1] < args[0] ||
			args[2] < 0 || args[2] > 1 || args[3] < 1 {
			return nil, bad("straggler:LO,HI,P,FACTOR with 0 <= LO <= HI, P in [0,1], FACTOR >= 1")
		}
		return StragglerTail{Lo: args[0], Hi: args[1], TailProb: args[2], TailFactor: args[3], Seed: seed}, nil
	default:
		return nil, fmt.Errorf("simclock: unknown latency model %q (have zero, const, uniform, straggler)", name)
	}
}
