// Package ecg synthesizes the non-vision workload of §6.6: electrocardiogram
// windows whose heart rate must be regressed, recorded through four sensor
// types with distinct noise signatures (the system-induced heterogeneity of
// physiological sensing).
//
// The waveform model is the standard sum-of-Gaussians P-QRS-T template; the
// four sensors mirror the device classes of Vollmer et al.'s multi-device
// recordings: a clean chest strap, a wrist wearable with baseline wander, a
// dry-electrode handheld with powerline hum, and an adhesive patch with
// motion artifacts.
package ecg

import (
	"fmt"
	"math"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/tensor"
)

// Window geometry: 4 seconds at 64 Hz.
const (
	SampleRate = 64
	Seconds    = 4
	WindowLen  = SampleRate * Seconds
)

// HR range generated, in beats per minute.
const (
	MinHR = 50.0
	MaxHR = 120.0
)

// hrScale normalizes heart rates into a regression-friendly range.
const hrScale = 200.0

// NormalizeHR maps bpm into the network's target space.
func NormalizeHR(bpm float64) float32 { return float32(bpm / hrScale) }

// DenormalizeHR maps a network output back to bpm.
func DenormalizeHR(v float32) float64 { return float64(v) * hrScale }

// wave is one Gaussian component of the beat template: position is the
// fraction of the beat period, width likewise, amp in millivolt-ish units.
type wave struct{ pos, width, amp float64 }

// pqrst is the canonical beat template.
var pqrst = []wave{
	{pos: 0.15, width: 0.045, amp: 0.12},  // P
	{pos: 0.27, width: 0.012, amp: -0.18}, // Q
	{pos: 0.30, width: 0.016, amp: 1.00},  // R
	{pos: 0.33, width: 0.014, amp: -0.28}, // S
	{pos: 0.55, width: 0.070, amp: 0.25},  // T
}

// CleanWaveform synthesizes a noise-free ECG window at the given heart rate.
// phase (in beats) offsets the window start so identical HRs still produce
// varied windows.
func CleanWaveform(bpm, phase float64) []float64 {
	period := 60.0 / bpm // seconds per beat
	out := make([]float64, WindowLen)
	for i := range out {
		tSec := float64(i) / SampleRate
		beatPos := math.Mod(tSec/period+phase, 1.0)
		var v float64
		for _, w := range pqrst {
			d := beatPos - w.pos
			// Include wrapped contribution so beats join smoothly.
			for _, dd := range []float64{d, d - 1, d + 1} {
				v += w.amp * math.Exp(-dd*dd/(2*w.width*w.width))
			}
		}
		out[i] = v
	}
	return out
}

// SensorType enumerates the four recording devices.
type SensorType int

// The four sensor types of the experiment.
const (
	SensorChestStrap SensorType = iota
	SensorWrist
	SensorDryElectrode
	SensorPatch
	NumSensors
)

// String implements fmt.Stringer.
func (s SensorType) String() string {
	switch s {
	case SensorChestStrap:
		return "chest-strap"
	case SensorWrist:
		return "wrist-wearable"
	case SensorDryElectrode:
		return "dry-electrode"
	case SensorPatch:
		return "adhesive-patch"
	}
	return fmt.Sprintf("SensorType(%d)", int(s))
}

// Record passes a clean waveform through the sensor's noise model.
func Record(clean []float64, sensor SensorType, rng *frand.RNG) []float64 {
	out := make([]float64, len(clean))
	copy(out, clean)
	switch sensor {
	case SensorChestStrap:
		// Gold standard: small white noise.
		for i := range out {
			out[i] += 0.02 * rng.NormFloat64()
		}
	case SensorWrist:
		// Attenuated signal with strong baseline wander and white noise.
		wanderF := rng.Uniform(0.15, 0.45) // Hz
		wanderA := rng.Uniform(0.15, 0.35)
		ph := rng.Uniform(0, 2*math.Pi)
		for i := range out {
			tSec := float64(i) / SampleRate
			out[i] = 0.7*out[i] + wanderA*math.Sin(2*math.Pi*wanderF*tSec+ph) + 0.05*rng.NormFloat64()
		}
	case SensorDryElectrode:
		// Powerline hum (50 Hz, aliased at our 64 Hz rate, as real
		// undersampled recordings exhibit) plus moderate white noise.
		humA := rng.Uniform(0.08, 0.20)
		ph := rng.Uniform(0, 2*math.Pi)
		for i := range out {
			tSec := float64(i) / SampleRate
			out[i] += humA*math.Sin(2*math.Pi*50*tSec+ph) + 0.06*rng.NormFloat64()
		}
	case SensorPatch:
		// Motion artifacts: occasional step offsets and spike bursts.
		offset := 0.0
		for i := range out {
			if rng.Float64() < 0.01 {
				offset = rng.Uniform(-0.3, 0.3)
			}
			v := out[i] + offset + 0.04*rng.NormFloat64()
			if rng.Float64() < 0.005 {
				v += rng.Uniform(-0.8, 0.8)
			}
			out[i] = v
		}
	}
	return out
}

// toTensor converts a waveform to a normalized flat float32 tensor.
func toTensor(sig []float64) *tensor.Tensor {
	t := tensor.New(len(sig))
	d := t.Data()
	for i, v := range sig {
		d[i] = float32(v)
	}
	return t
}

// GenerateDataset builds n labelled windows recorded by the given sensor.
// Device index in the samples is the sensor type. Targets are stored in
// Sample.Multi (NumClasses=1) for the MSE regression path.
func GenerateDataset(sensor SensorType, n int, rng *frand.RNG) *dataset.Dataset {
	ds := &dataset.Dataset{NumClasses: 1}
	for i := 0; i < n; i++ {
		bpm := rng.Uniform(MinHR, MaxHR)
		clean := CleanWaveform(bpm, rng.Float64())
		sig := Record(clean, sensor, rng)
		ds.Samples = append(ds.Samples, dataset.Sample{
			X:      toTensor(sig),
			Label:  -1,
			Multi:  []float32{NormalizeHR(bpm)},
			Device: int(sensor),
		})
	}
	return ds
}

// PairedRecordings generates n underlying waveforms, each recorded by ALL
// four sensors — the "same individual ECG data" through different hardware,
// used to measure cross-sensor prediction divergence (§6.6's 31.8% metric).
// The return is indexed [signal][sensor]; truths holds the bpm per signal.
func PairedRecordings(n int, rng *frand.RNG) (windows [][]*tensor.Tensor, truths []float64) {
	windows = make([][]*tensor.Tensor, n)
	truths = make([]float64, n)
	for i := 0; i < n; i++ {
		bpm := rng.Uniform(MinHR, MaxHR)
		truths[i] = bpm
		clean := CleanWaveform(bpm, rng.Float64())
		row := make([]*tensor.Tensor, NumSensors)
		for s := SensorType(0); s < NumSensors; s++ {
			row[s] = toTensor(Record(clean, s, rng))
		}
		windows[i] = row
	}
	return windows, truths
}
