package models

import (
	"math"
	"testing"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/tensor"
)

func forwardShape(t *testing.T, net *nn.Network, inC, classes int) {
	t.Helper()
	r := frand.New(2)
	x := tensor.Randn(r, 1, 3, inC, 32, 32)
	y := net.Forward(x, false)
	if y.Dim(0) != 3 || y.Dim(1) != classes {
		t.Fatalf("output shape %v, want [3 %d]", y.Shape(), classes)
	}
	if y.HasNaN() {
		t.Fatal("forward produced NaN")
	}
}

func trainStepWorks(t *testing.T, net *nn.Network, inC, classes int) {
	t.Helper()
	r := frand.New(3)
	x := tensor.Randn(r, 1, 4, inC, 32, 32)
	labels := []int{0, 1, 2 % classes, 0}
	out := net.Forward(x, true)
	loss, grad := nn.SoftmaxCrossEntropy{}.Eval(out, nn.ClassTarget(labels))
	if loss <= 0 {
		t.Fatalf("implausible loss %v", loss)
	}
	net.Backward(grad)
	opt := nn.NewSGD(0.01, 0, 0)
	opt.Step(net.Params())
	out2 := net.Forward(x, true)
	if out2.HasNaN() {
		t.Fatal("NaN after one training step")
	}
}

func TestTinyMobileNetV3(t *testing.T) {
	net := TinyMobileNetV3(frand.New(1), 3, 12)
	forwardShape(t, net, 3, 12)
	trainStepWorks(t, net, 3, 12)
}

func TestTinyShuffleNetV2(t *testing.T) {
	net := TinyShuffleNetV2(frand.New(1), 3, 12)
	forwardShape(t, net, 3, 12)
	trainStepWorks(t, net, 3, 12)
}

func TestTinySqueezeNet(t *testing.T) {
	net := TinySqueezeNet(frand.New(1), 3, 12)
	forwardShape(t, net, 3, 12)
	trainStepWorks(t, net, 3, 12)
}

func TestSimpleCNN(t *testing.T) {
	net := SimpleCNN(frand.New(1), 3, 20)
	forwardShape(t, net, 3, 20)
	trainStepWorks(t, net, 3, 20)
}

func TestMLPRegressor(t *testing.T) {
	net := MLPRegressor(frand.New(1), 64, []int{32, 16}, 1)
	r := frand.New(2)
	x := tensor.Randn(r, 1, 5, 64)
	y := net.Forward(x, false)
	if y.Dim(0) != 5 || y.Dim(1) != 1 {
		t.Fatalf("MLP output shape %v", y.Shape())
	}
}

func TestBuilderDeterministic(t *testing.T) {
	for _, arch := range []Arch{ArchMobileNet, ArchShuffleNet, ArchSqueezeNet, ArchSimpleCNN} {
		b, err := BuilderFor(arch, 7, 3, 12)
		if err != nil {
			t.Fatal(err)
		}
		n1, n2 := b(), b()
		p1, p2 := n1.Params(), n2.Params()
		if len(p1) != len(p2) {
			t.Fatalf("%s: param count differs between builds", arch)
		}
		for i := range p1 {
			if !p1[i].W.AllClose(p2[i].W, 0) {
				t.Fatalf("%s: param %d differs between builds", arch, i)
			}
		}
	}
}

func TestBuilderUnknownArch(t *testing.T) {
	if _, err := BuilderFor("no-such-net", 1, 3, 12); err == nil {
		t.Fatal("expected error for unknown architecture")
	}
}

func TestWeightsTransferAcrossBuilds(t *testing.T) {
	b, _ := BuilderFor(ArchMobileNet, 11, 3, 12)
	n1 := b()
	n2 := b()
	// Perturb n1, snapshot, load into n2, confirm identical outputs.
	n1.Params()[0].W.AddScalar(0.1)
	if err := n2.LoadWeights(n1.Snapshot()); err != nil {
		t.Fatal(err)
	}
	r := frand.New(5)
	x := tensor.Randn(r, 1, 2, 3, 32, 32)
	if !n1.Forward(x, false).AllClose(n2.Forward(x, false), 1e-6) {
		t.Fatal("weight transfer did not reproduce outputs")
	}
}

func TestParamCountsReasonable(t *testing.T) {
	cases := []struct {
		name     string
		net      *nn.Network
		min, max int
	}{
		{"mobilenet", TinyMobileNetV3(frand.New(1), 3, 12), 2000, 100000},
		{"shufflenet", TinyShuffleNetV2(frand.New(1), 3, 12), 1500, 100000},
		{"squeezenet", TinySqueezeNet(frand.New(1), 3, 12), 1000, 100000},
		{"simplecnn", SimpleCNN(frand.New(1), 3, 20), 5000, 500000},
	}
	for _, c := range cases {
		n := c.net.NumParams()
		if n < c.min || n > c.max {
			t.Errorf("%s has %d params, want in [%d,%d]", c.name, n, c.min, c.max)
		}
	}
}

func BenchmarkMobileNetForward(b *testing.B) {
	net := TinyMobileNetV3(frand.New(1), 3, 12)
	x := tensor.Randn(frand.New(2), 1, 10, 3, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

func BenchmarkShuffleNetForward(b *testing.B) {
	net := TinyShuffleNetV2(frand.New(1), 3, 12)
	x := tensor.Randn(frand.New(2), 1, 10, 3, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

func TestECGConvNet(t *testing.T) {
	net := ECGConvNet(frand.New(1), 256)
	r := frand.New(2)
	x := tensor.Randn(r, 1, 5, 256)
	y := net.Forward(x, false)
	if y.Dim(0) != 5 || y.Dim(1) != 1 {
		t.Fatalf("ECG net output %v", y.Shape())
	}
	// One training step must run without NaN.
	out := net.Forward(x, true)
	target := tensor.New(5, 1)
	target.Fill(0.4)
	loss, grad := nn.MSE{}.Eval(out, nn.DenseTarget(target))
	if loss <= 0 {
		t.Fatalf("loss %v", loss)
	}
	net.Backward(grad)
	opt := nn.NewSGD(0.01, 0, 0)
	opt.Step(net.Params())
	if net.Forward(x, true).HasNaN() {
		t.Fatal("NaN after step")
	}
}

// TestFrozenMatchesReferencePerArch is the model-level frozen-vs-reference
// contract: for every architecture in the registry (and the ECG conv
// regressor), a few training steps move the weights and BN running
// statistics, then the frozen inference view must match the reference eval
// forward within 1e-5 max-abs with identical argmax rows. SqueezeNet has no
// BatchNorm, so its frozen forward must be bit-exact.
func TestFrozenMatchesReferencePerArch(t *testing.T) {
	archs := []struct {
		arch  Arch
		exact bool
	}{
		{ArchMobileNet, false},
		{ArchShuffleNet, false},
		{ArchSqueezeNet, true}, // no BN anywhere: pure fusion, tol 0
		{ArchSimpleCNN, false},
	}
	for _, tc := range archs {
		t.Run(string(tc.arch), func(t *testing.T) {
			builder, err := BuilderFor(tc.arch, 11, 3, 12)
			if err != nil {
				t.Fatal(err)
			}
			net := builder()
			r := frand.New(4)
			opt := nn.NewSGD(0.01, 0.9, 0)
			for step := 0; step < 4; step++ {
				x := tensor.Randn(r, 1, 4, 3, 32, 32)
				labels := []int{step % 12, (step + 3) % 12, (step + 5) % 12, (step + 7) % 12}
				out := net.Forward(x, true)
				_, grad := nn.SoftmaxCrossEntropy{}.Eval(out, nn.ClassTarget(labels))
				net.Backward(grad)
				opt.Step(net.Params())
			}
			x := tensor.Randn(r, 1, 5, 3, 32, 32)
			want := net.Forward(x, false).Clone()
			got := net.Freeze().Infer(x).Clone()
			// Bit-exactness and the 1e-5 bound are float-tier promises; the
			// opt-in int8 backend carries its documented looser tolerance
			// (relative past unit magnitude) instead. Argmax must hold on
			// every tier.
			int8Tier := tensor.ActiveBackend() == tensor.BackendInt8
			tol := 1e-5
			if int8Tier {
				var mag float64
				for _, v := range want.Data() {
					if a := math.Abs(float64(v)); a > mag {
						mag = a
					}
				}
				if mag < 1 {
					mag = 1
				}
				tol = tensor.Int8Tol * mag
			}
			var maxd float64
			for i, v := range got.Data() {
				d := float64(v) - float64(want.Data()[i])
				if d < 0 {
					d = -d
				}
				if d > maxd {
					maxd = d
				}
				if tc.exact && !int8Tier && v != want.Data()[i] {
					t.Fatalf("BN-free arch must be bit-exact; element %d: %v != %v", i, v, want.Data()[i])
				}
			}
			if maxd > tol {
				t.Fatalf("frozen output diverges: max-abs %.3g > %g", maxd, tol)
			}
			wantArg, gotArg := want.ArgMaxRows(), got.ArgMaxRows()
			classes := want.Dim(1)
			for i := range wantArg {
				if gotArg[i] == wantArg[i] {
					continue
				}
				if int8Tier {
					// These lightly-trained fixtures can tie their top-2
					// logits inside the int8 tolerance band, where no
					// quantization can promise the tie-break; the argmax
					// contract applies whenever the decision margin
					// exceeds the band (same guard as the tensor-level
					// int8 suite).
					row := want.Data()[i*classes : (i+1)*classes]
					top, second := -math.MaxFloat64, -math.MaxFloat64
					for _, v := range row {
						f := float64(v)
						if f > top {
							top, second = f, top
						} else if f > second {
							second = f
						}
					}
					if top-second <= 2*tol {
						continue
					}
				}
				t.Fatalf("argmax differs at row %d: frozen %d, reference %d", i, gotArg[i], wantArg[i])
			}
		})
	}
}

// TestFrozenECGConvNet covers the Reshape-fronted 1-D conv regressor.
func TestFrozenECGConvNet(t *testing.T) {
	net := ECGConvNet(frand.New(9), 64)
	r := frand.New(10)
	opt := nn.NewSGD(0.05, 0.9, 0)
	for step := 0; step < 3; step++ {
		x := tensor.Randn(r, 1, 4, 64)
		target := tensor.Randn(r, 1, 4, 1)
		out := net.Forward(x, true)
		_, grad := nn.MSE{}.Eval(out, nn.DenseTarget(target))
		net.Backward(grad)
		opt.Step(net.Params())
	}
	x := tensor.Randn(r, 1, 3, 64)
	want := net.Forward(x, false).Clone()
	got := net.Freeze().Infer(x)
	tol := 1e-5
	if tensor.ActiveBackend() == tensor.BackendInt8 {
		var mag float64
		for _, v := range want.Data() {
			if a := math.Abs(float64(v)); a > mag {
				mag = a
			}
		}
		if mag < 1 {
			mag = 1
		}
		tol = tensor.Int8Tol * mag
	}
	for i, v := range got.Data() {
		d := float64(v) - float64(want.Data()[i])
		if d < 0 {
			d = -d
		}
		if d > tol {
			t.Fatalf("frozen ECG output diverges at %d: %.3g", i, d)
		}
	}
}
