package core

import (
	"math"
	"sync"

	"heteroswitch/internal/fl"
	"heteroswitch/internal/nn"
)

// Mode selects how much of Algorithm 1 is active, matching the ablation rows
// of Table 4.
type Mode int

// Operating modes.
const (
	// ModeFull is HeteroSwitch proper: bias-gated transformation (Switch 1)
	// and loss-gated SWAD adoption (Switch 2).
	ModeFull Mode = iota
	// ModeTransformOnly always applies the ISP transformation and never uses
	// SWAD (Table 4's "ISP Transformation" row).
	ModeTransformOnly
	// ModeTransformSWAD always applies the transformation AND always returns
	// the SWAD average (Table 4's "+ SWAD" row) — the one-size-fits-all
	// variant HeteroSwitch improves upon.
	ModeTransformSWAD
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeTransformOnly:
		return "ISP-Transformation"
	case ModeTransformSWAD:
		return "ISP+SWAD"
	default:
		return "HeteroSwitch"
	}
}

// HeteroSwitch is the paper's selective generalization strategy. It
// implements fl.Strategy; the server side is FedAvg aggregation plus the
// L_EMA tracking of eq. 1.
type HeteroSwitch struct {
	// Mode selects full switching or an always-on ablation.
	Mode Mode
	// Alpha is the EMA smoothing factor of eq. 1 (paper: 0.9).
	Alpha float64
	// Transform perturbs one sample tensor; defaults to RandomWBGamma with
	// the appendix's tuned degrees (WB 0.001, gamma 0.9).
	Transform TransformFunc

	mu      sync.Mutex
	lema    float64
	hasLEMA bool
}

// New returns HeteroSwitch in full switching mode with the paper's tuned
// hyperparameters.
func New() *HeteroSwitch {
	return &HeteroSwitch{
		Mode:      ModeFull,
		Alpha:     0.9,
		Transform: RandomWBGamma(0.001, 0.9),
	}
}

// NewWithMode returns the requested ablation variant with default
// hyperparameters.
func NewWithMode(m Mode) *HeteroSwitch {
	h := New()
	h.Mode = m
	return h
}

// Name implements fl.Strategy.
func (h *HeteroSwitch) Name() string { return h.Mode.String() }

// LEMA returns the current EMA of the aggregated train loss and whether it
// has been initialized (it is undefined until the first aggregation).
func (h *HeteroSwitch) LEMA() (float64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lema, h.hasLEMA
}

// LocalUpdate implements Algorithm 1 (ClientUpdate).
func (h *HeteroSwitch) LocalUpdate(ctx *fl.ClientContext) fl.ClientResult {
	lema, hasLEMA := h.LEMA()

	// Line 2: L_init = L(D, W).
	initLoss := fl.EvalLoss(ctx.Net, ctx.Loss, ctx.Client.Data, ctx.Cfg.BatchSize)

	// Lines 3-5: Switch 1 — the global model already fits this data better
	// than the population average, so the data is likely (system-)biased.
	var switch1 bool
	switch h.Mode {
	case ModeTransformOnly, ModeTransformSWAD:
		switch1 = true
	default:
		switch1 = hasLEMA && initLoss < lema
	}

	// Lines 6-8: random ISP transformation on the client's data.
	data := ctx.Client.Data
	if switch1 {
		tf := h.Transform
		if tf == nil {
			tf = RandomWBGamma(0.001, 0.9)
		}
		data = TransformDataset(data, tf, ctx.RNG)
	}

	// Lines 9-21: local SGD; when Switch 1 is on, maintain the per-batch
	// weight average W_SWA (SWAD — denser than SWA's per-epoch averaging).
	useSWAD := switch1 && h.Mode != ModeTransformOnly
	var swa, batchBuf nn.Weights
	var batchHook fl.BatchHook
	if useSWAD {
		swa = ctx.Net.Snapshot() // line 10: initialize W_SWA as a copy of W
		// Per-batch snapshot buffer: the server's per-worker scratch is free
		// until SnapshotWeights (after training), so alias it instead of
		// allocating a full model copy per SWAD client.
		if ctx.Scratch != nil {
			batchBuf = *ctx.Scratch
		} else {
			batchBuf = ctx.Net.Snapshot()
		}
		batchHook = func(net *nn.Network, batchIdx int) {
			// Line 17: W_SWA ← (W_SWA·Idx_b + W) / (Idx_b + 1)
			if err := net.SnapshotInto(batchBuf); err != nil {
				panic("core: SWAD snapshot buffer: " + err.Error())
			}
			swa.Lerp(float32(1.0/float64(batchIdx+1)), batchBuf)
		}
	}
	trainLoss := fl.TrainLocal(ctx.Net, data, ctx.Cfg, ctx.Loss, ctx.RNG, nil, batchHook)

	// Lines 22-29: Switch 2 — adopt the averaged weights only if training
	// still tracks below the population EMA.
	var switch2 bool
	switch h.Mode {
	case ModeTransformSWAD:
		switch2 = true
	case ModeTransformOnly:
		switch2 = false
	default:
		switch2 = switch1 && hasLEMA && trainLoss < lema
	}

	var weights nn.Weights
	if switch2 && useSWAD {
		weights = swa
	} else {
		weights = ctx.SnapshotWeights()
	}
	return fl.ClientResult{
		ClientID: ctx.Client.ID, DeviceIdx: ctx.Client.Device,
		NumSamples: ctx.Client.Data.Len(),
		Weights:    weights,
		TrainLoss:  trainLoss, InitLoss: initLoss,
	}
}

// updateLEMA advances the eq. 1 EMA with the round's sample-weighted mean
// train loss (NaN/Inf rounds are skipped so a diverged client cannot poison
// the switching signal).
func (h *HeteroSwitch) updateLEMA(lcur float64) {
	if math.IsNaN(lcur) || math.IsInf(lcur, 0) {
		return
	}
	h.mu.Lock()
	if h.hasLEMA {
		h.lema = h.Alpha*lcur + (1-h.Alpha)*h.lema // eq. 1
	} else {
		h.lema = lcur
		h.hasLEMA = true
	}
	h.mu.Unlock()
}

// Aggregate implements fl.Strategy: FedAvg aggregation plus the eq. 1 EMA
// update over the round's sample-weighted mean train loss. This is the
// barrier fallback; the streaming path below computes the same quantities
// per-result.
func (h *HeteroSwitch) Aggregate(global nn.Weights, results []fl.ClientResult, cfg fl.Config) nn.Weights {
	if len(results) == 0 {
		return global
	}
	out := fl.FedAvg{}.Aggregate(global, results, cfg)

	var lcur, total float64
	for _, r := range results {
		lcur += r.TrainLoss * float64(r.NumSamples)
		total += float64(r.NumSamples)
	}
	h.updateLEMA(lcur / total)
	return out
}

// accumulator streams HeteroSwitch aggregation: the weight fold is FedAvg's,
// and the eq. 1 inputs (Σ L_train·n, Σ n) fold per-result alongside it, so
// switching semantics are identical to the barrier path.
type accumulator struct {
	weights fl.Accumulator
	h       *HeteroSwitch
	lossSum float64 // Σ L_train,k · n_k over this shard
	total   float64 // Σ n_k over this shard
}

// NewAccumulator implements fl.StreamingAggregator.
func (h *HeteroSwitch) NewAccumulator(global nn.Weights, cfg fl.Config) fl.Accumulator {
	return &accumulator{weights: fl.FedAvg{}.NewAccumulator(global, cfg), h: h}
}

// Reset implements fl.ResettableAccumulator, so the server reuses one
// accumulator (and its model-sized float64 sums) per worker across rounds.
func (a *accumulator) Reset(global nn.Weights, cfg fl.Config) {
	if ra, ok := a.weights.(fl.ResettableAccumulator); ok {
		ra.Reset(global, cfg)
	} else {
		a.weights = fl.FedAvg{}.NewAccumulator(global, cfg)
	}
	a.lossSum = 0
	a.total = 0
}

// Accumulate implements fl.Accumulator.
func (a *accumulator) Accumulate(r fl.ClientResult) {
	a.AccumulateWeighted(r, 1)
}

// AccumulateWeighted implements fl.WeightedAccumulator: the staleness
// discount scales the FedAvg weight fold AND the eq. 1 loss inputs, so a
// stale client influences the switching signal exactly as much as it
// influences the model. scale = 1 is byte-for-byte the synchronous fold.
func (a *accumulator) AccumulateWeighted(r fl.ClientResult, scale float64) {
	a.weights.(fl.WeightedAccumulator).AccumulateWeighted(r, scale)
	if scale == 0 {
		return // contributes nothing; keeps 0·Inf off the L_EMA sums too
	}
	n := scale * float64(r.NumSamples)
	a.lossSum += r.TrainLoss * n
	a.total += n
}

// Merge implements fl.Accumulator.
func (a *accumulator) Merge(other fl.Accumulator) {
	b := other.(*accumulator)
	a.weights.Merge(b.weights)
	a.lossSum += b.lossSum
	a.total += b.total
}

// Finalize implements fl.Accumulator.
func (a *accumulator) Finalize() nn.Weights {
	out := a.weights.Finalize()
	if a.total > 0 {
		a.h.updateLEMA(a.lossSum / a.total)
	}
	return out
}

// FinalizeInto implements fl.IntoFinalizer by forwarding to the FedAvg
// weight fold, so the server's recycled global buffer serves HeteroSwitch
// rounds too; the L_EMA update happens exactly as in Finalize.
func (a *accumulator) FinalizeInto(dst nn.Weights) bool {
	ok := a.weights.(fl.IntoFinalizer).FinalizeInto(dst)
	if a.total > 0 {
		a.h.updateLEMA(a.lossSum / a.total)
	}
	return ok
}

// interface conformance checks
var (
	_ fl.Strategy              = (*HeteroSwitch)(nil)
	_ fl.StreamingAggregator   = (*HeteroSwitch)(nil)
	_ fl.ResettableAccumulator = (*accumulator)(nil)
	_ fl.WeightedAccumulator   = (*accumulator)(nil)
	_ fl.IntoFinalizer         = (*accumulator)(nil)
)
