// Package serve is the serving front end for the frozen inference path: a
// refcounted cache of published model versions, a per-version micro-batcher
// under a virtual-time latency budget, per-worker frozen replicas executing
// batches on the intra-op pool, and a deterministic closed-loop load harness
// on internal/simclock.
//
// Determinism contract: the load harness never reads the wall clock — every
// arrival, batch deadline, and service completion is a virtual-time event
// whose schedule is a pure function of (seed, config), and batch outputs run
// through nn.Frozen replicas that are bit-identical at every intra-op
// budget. Two runs with the same LoadConfig therefore produce bit-identical
// per-request outputs, latency histograms, and quantiles, at any -intraop.
package serve

import (
	"sync"

	"heteroswitch/internal/nn"
)

// Store is the serving-side owner of published model versions. It wraps the
// shared nn.VersionStore (the same retain/release/recycle machinery the
// asynchronous trainer uses for in-flight jobs) behind a mutex so concurrent
// request goroutines can pin the version they were admitted under while the
// trainer publishes newer ones. A pinned version's weights stay immutable
// until its last reader releases it; fully released stale versions recycle
// into the buffer pool the next Publish draws from, so steady-state version
// churn allocates no model-sized buffers.
type Store struct {
	mu      sync.Mutex
	vs      nn.VersionStore
	version int
	current nn.Weights
}

// NewStore publishes w as version 0.
func NewStore(w nn.Weights) *Store {
	s := &Store{current: w}
	s.vs.Retain(0, w) // the store's own reference keeps the live version resident
	return s
}

// Version returns the current (latest published) version number.
func (s *Store) Version() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// Acquire pins the current version for one reader and returns it with its
// weights. The weights are immutable until the matching Release.
func (s *Store) Acquire() (int, nn.Weights) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vs.Retain(s.version, s.current)
	return s.version, s.current
}

// Release drops one reader's pin on version v.
func (s *Store) Release(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.vs.Release(v, s.current)
}

// Publish makes w the current version and returns its number, taking
// ownership of w. The previous version stays resident until its last reader
// releases it, then recycles.
func (s *Store) Publish(w nn.Weights) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.version
	s.version++
	s.current = w
	s.vs.Retain(s.version, w)
	// Drop the store's own reference to the old version. The live set passed
	// here must be the NEW current: passing the outgoing weights would make
	// Release think the old buffer still backs the live version and drop it
	// on the floor instead of recycling it — every publish whose old version
	// had no in-flight readers then leaked one model-sized buffer.
	s.vs.Release(old, s.current)
	return s.version
}

// Republish publishes a new version carrying the current version's exact
// values, copied into a recycled buffer. Serving output is bit-unchanged;
// what changes is every version-keyed cache downstream (replica reloads,
// batch pinning), which is precisely what the load harness's churn knob
// exercises.
func (s *Store) Republish() int {
	s.mu.Lock()
	buf := s.vs.TakeBuffer(s.current)
	for i, p := range s.current.Params {
		buf.Params[i].CopyFrom(p)
	}
	for i, st := range s.current.States {
		buf.States[i].CopyFrom(st)
	}
	s.mu.Unlock()
	return s.Publish(buf)
}

// TakeBuffer returns a recycled model-shaped buffer for the next Publish.
func (s *Store) TakeBuffer() nn.Weights {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vs.TakeBuffer(s.current)
}

// Live returns the number of versions still pinned (the current version
// always counts: the store itself holds one reference to it).
func (s *Store) Live() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vs.Live()
}
