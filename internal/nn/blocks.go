package nn

import (
	"fmt"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/tensor"
)

// Identity passes its input through unchanged. Useful as the pass-through
// branch of Parallel blocks.
type Identity struct{}

// NewIdentity returns an identity layer.
func NewIdentity() *Identity { return &Identity{} }

// Forward implements Layer.
func (l *Identity) Forward(x *tensor.Tensor, train bool) *tensor.Tensor { return x }

// Backward implements Layer.
func (l *Identity) Backward(grad *tensor.Tensor) *tensor.Tensor { return grad }

// Params implements Layer.
func (l *Identity) Params() []*Param { return nil }

// States implements Layer.
func (l *Identity) States() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *Identity) Name() string { return "Identity" }

// Residual computes y = Body(x) + Proj(x). Proj defaults to identity when
// nil; supply a 1x1 conv (+BN) projection when the body changes shape.
type Residual struct {
	arenaScratch
	Body Layer
	Proj Layer
}

// NewResidual builds a residual block.
func NewResidual(body, proj Layer) *Residual {
	if proj == nil {
		proj = NewIdentity()
	}
	return &Residual{Body: body, Proj: proj}
}

// SetArena implements ArenaUser, sharing the arena with both branches.
func (l *Residual) SetArena(a *tensor.Arena) {
	l.arenaScratch.SetArena(a)
	if u, ok := l.Body.(ArenaUser); ok {
		u.SetArena(a)
	}
	if u, ok := l.Proj.(ArenaUser); ok {
		u.SetArena(a)
	}
}

// SetIntraOp implements IntraOpUser, sharing the budget with both branches.
func (l *Residual) SetIntraOp(budget int) {
	if u, ok := l.Body.(IntraOpUser); ok {
		u.SetIntraOp(budget)
	}
	if u, ok := l.Proj.(IntraOpUser); ok {
		u.SetIntraOp(budget)
	}
}

// Forward implements Layer.
func (l *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := l.Body.Forward(x, train)
	s := l.Proj.Forward(x, train)
	if !y.SameShape(s) {
		panic(fmt.Sprintf("nn: Residual shape mismatch %v vs %v", y.Shape(), s.Shape()))
	}
	out := l.allocUninit(y.Shape()...)
	out.CopyFrom(y)
	out.AddInPlace(s)
	return out
}

// Backward implements Layer.
func (l *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	dx := l.Body.Backward(grad)
	ds := l.Proj.Backward(grad)
	out := l.allocUninit(dx.Shape()...)
	out.CopyFrom(dx)
	out.AddInPlace(ds)
	return out
}

// Params implements Layer.
func (l *Residual) Params() []*Param { return append(l.Body.Params(), l.Proj.Params()...) }

// States implements Layer.
func (l *Residual) States() []*tensor.Tensor { return append(l.Body.States(), l.Proj.States()...) }

// Name implements Layer.
func (l *Residual) Name() string { return "Residual(" + l.Body.Name() + ")" }

// Parallel runs branches side by side and concatenates their outputs along
// the channel dimension.
//
// With SplitInput=false every branch receives the full input (SqueezeNet
// fire expansion). With SplitInput=true the input channels are divided
// evenly among the branches (ShuffleNetV2 basic unit).
type Parallel struct {
	arenaScratch
	Branches   []Layer
	SplitInput bool
	inC        int
	outCs      []int
	// per-batch work lists, cached to keep steady-state batches allocation-free
	inputs, outs, grads, dxs []*tensor.Tensor
}

// NewParallel builds a parallel block. The cached per-batch work lists are
// sized lazily on first Forward (see ensureWorkLists).
func NewParallel(splitInput bool, branches ...Layer) *Parallel {
	return &Parallel{Branches: branches, SplitInput: splitInput}
}

// SetArena implements ArenaUser, sharing the arena with every branch.
func (l *Parallel) SetArena(a *tensor.Arena) {
	l.arenaScratch.SetArena(a)
	for _, b := range l.Branches {
		if u, ok := b.(ArenaUser); ok {
			u.SetArena(a)
		}
	}
}

// SetIntraOp implements IntraOpUser, sharing the budget with every branch.
func (l *Parallel) SetIntraOp(budget int) {
	for _, b := range l.Branches {
		if u, ok := b.(IntraOpUser); ok {
			u.SetIntraOp(budget)
		}
	}
}

// ensureWorkLists sizes the cached per-batch slices, so a Parallel built as
// a struct literal (bypassing NewParallel) still works.
func (l *Parallel) ensureWorkLists() {
	nb := len(l.Branches)
	if len(l.inputs) != nb {
		l.outCs = make([]int, nb)
		l.inputs = make([]*tensor.Tensor, nb)
		l.outs = make([]*tensor.Tensor, nb)
		l.grads = make([]*tensor.Tensor, nb)
		l.dxs = make([]*tensor.Tensor, nb)
	}
}

// Forward implements Layer.
func (l *Parallel) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.ensureWorkLists()
	n, c := x.Dim(0), x.Dim(1)
	l.inC = c
	nb := len(l.Branches)
	if l.SplitInput {
		if c%nb != 0 {
			panic(fmt.Sprintf("nn: Parallel split %d channels across %d branches", c, nb))
		}
		per := c / nb
		for i := range l.inputs {
			l.inputs[i] = l.sliceChannels(x, i*per, (i+1)*per)
		}
	} else {
		for i := range l.inputs {
			l.inputs[i] = x
		}
	}
	totalC := 0
	for i, b := range l.Branches {
		l.outs[i] = b.Forward(l.inputs[i], train)
		l.outCs[i] = l.outs[i].Dim(1)
		totalC += l.outCs[i]
	}
	oh, ow := l.outs[0].Dim(2), l.outs[0].Dim(3)
	out := l.allocUninit(n, totalC, oh, ow)
	at := 0
	for _, o := range l.outs {
		if o.Dim(2) != oh || o.Dim(3) != ow {
			panic("nn: Parallel branches disagree on spatial size")
		}
		copyChannels(out, o, at)
		at += o.Dim(1)
	}
	return out
}

// Backward implements Layer.
func (l *Parallel) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n := grad.Dim(0)
	nb := len(l.Branches)
	at := 0
	for i := range l.Branches {
		l.grads[i] = l.sliceChannels(grad, at, at+l.outCs[i])
		at += l.outCs[i]
	}
	if l.SplitInput {
		per := l.inC / nb
		var h, w int
		for i, b := range l.Branches {
			l.dxs[i] = b.Backward(l.grads[i])
			h, w = l.dxs[i].Dim(2), l.dxs[i].Dim(3)
		}
		dx := l.allocUninit(n, l.inC, h, w)
		for i, d := range l.dxs {
			copyChannels(dx, d, i*per)
		}
		return dx
	}
	var dx *tensor.Tensor
	for i, b := range l.Branches {
		d := b.Backward(l.grads[i])
		if dx == nil {
			dx = l.allocUninit(d.Shape()...)
			dx.CopyFrom(d)
		} else {
			dx.AddInPlace(d)
		}
	}
	return dx
}

// Params implements Layer.
func (l *Parallel) Params() []*Param {
	var out []*Param
	for _, b := range l.Branches {
		out = append(out, b.Params()...)
	}
	return out
}

// States implements Layer.
func (l *Parallel) States() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, b := range l.Branches {
		out = append(out, b.States()...)
	}
	return out
}

// Name implements Layer.
func (l *Parallel) Name() string { return fmt.Sprintf("Parallel(%d branches)", len(l.Branches)) }

// sliceChannels copies channels [lo,hi) of an NCHW tensor into a per-batch
// tensor.
func (l *Parallel) sliceChannels(x *tensor.Tensor, lo, hi int) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	out := l.allocUninit(n, hi-lo, h, w)
	hw := h * w
	xd, od := x.Data(), out.Data()
	per := hi - lo
	for i := 0; i < n; i++ {
		src := xd[(i*c+lo)*hw : (i*c+hi)*hw]
		dst := od[i*per*hw : (i+1)*per*hw]
		copy(dst, src)
	}
	return out
}

// copyChannels writes src into dst starting at channel offset `at`.
func copyChannels(dst, src *tensor.Tensor, at int) {
	n, dc, h, w := dst.Dim(0), dst.Dim(1), dst.Dim(2), dst.Dim(3)
	sc := src.Dim(1)
	hw := h * w
	dd, sd := dst.Data(), src.Data()
	for i := 0; i < n; i++ {
		copy(dd[(i*dc+at)*hw:(i*dc+at+sc)*hw], sd[i*sc*hw:(i+1)*sc*hw])
	}
}

// SEBlock is a squeeze-and-excitation channel attention block:
// s = GlobalAvgPool(x); z = hsig(W2·relu(W1·s)); y = x ⊙ z (per channel).
type SEBlock struct {
	arenaScratch
	C, Hidden int
	fc1, fc2  *Dense
	relu      *ReLU
	hsig      *HardSigmoid
	x         *tensor.Tensor
	z         *tensor.Tensor
}

// NewSEBlock builds a squeeze-excite block with the given reduction hidden
// width (typically C/4).
func NewSEBlock(r *frand.RNG, c, hidden int) *SEBlock {
	return &SEBlock{
		C: c, Hidden: hidden,
		fc1:  NewDense(r, c, hidden),
		fc2:  NewDense(r, hidden, c),
		relu: NewReLU(),
		hsig: NewHardSigmoid(),
	}
}

// SetArena implements ArenaUser, sharing the arena with the excitation MLP.
func (l *SEBlock) SetArena(a *tensor.Arena) {
	l.arenaScratch.SetArena(a)
	l.fc1.SetArena(a)
	l.fc2.SetArena(a)
	l.relu.SetArena(a)
	l.hsig.SetArena(a)
}

// SetIntraOp implements IntraOpUser, sharing the budget with the excitation
// MLP's dense layers.
func (l *SEBlock) SetIntraOp(budget int) {
	l.fc1.SetIntraOp(budget)
	l.fc2.SetIntraOp(budget)
}

// Forward implements Layer.
func (l *SEBlock) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c != l.C {
		panic(fmt.Sprintf("nn: SEBlock channels %d, want %d", c, l.C))
	}
	l.x = x
	hw := h * w
	s := l.allocUninit(n, c)
	xd, sd := x.Data(), s.Data()
	inv := 1 / float32(hw)
	for i := 0; i < n*c; i++ {
		var sum float32
		for j := 0; j < hw; j++ {
			sum += xd[i*hw+j]
		}
		sd[i] = sum * inv
	}
	z := l.hsig.Forward(l.fc2.Forward(l.relu.Forward(l.fc1.Forward(s, train), train), train), train)
	l.z = z
	out := l.allocUninit(n, c, h, w)
	od, zd := out.Data(), z.Data()
	for i := 0; i < n*c; i++ {
		zi := zd[i]
		for j := 0; j < hw; j++ {
			od[i*hw+j] = xd[i*hw+j] * zi
		}
	}
	return out
}

// Backward implements Layer.
func (l *SEBlock) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := l.x.Dim(0), l.x.Dim(1), l.x.Dim(2), l.x.Dim(3)
	hw := h * w
	gd, xd, zd := grad.Data(), l.x.Data(), l.z.Data()

	// dz[n,c] = Σ_hw dy·x ;  dx (direct path) = dy·z
	dz := l.allocUninit(n, c)
	dzd := dz.Data()
	dx := l.allocUninit(n, c, h, w)
	dxd := dx.Data()
	for i := 0; i < n*c; i++ {
		var s float32
		zi := zd[i]
		for j := 0; j < hw; j++ {
			g := gd[i*hw+j]
			s += g * xd[i*hw+j]
			dxd[i*hw+j] = g * zi
		}
		dzd[i] = s
	}
	// Backprop dz through the excitation MLP to ds [n,c].
	ds := l.fc1.Backward(l.relu.Backward(l.fc2.Backward(l.hsig.Backward(dz))))
	dsd := ds.Data()
	inv := 1 / float32(hw)
	for i := 0; i < n*c; i++ {
		g := dsd[i] * inv
		for j := 0; j < hw; j++ {
			dxd[i*hw+j] += g
		}
	}
	return dx
}

// Params implements Layer.
func (l *SEBlock) Params() []*Param { return append(l.fc1.Params(), l.fc2.Params()...) }

// States implements Layer.
func (l *SEBlock) States() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *SEBlock) Name() string { return fmt.Sprintf("SEBlock(%d,%d)", l.C, l.Hidden) }

// Dropout randomly zeroes activations during training, scaling survivors by
// 1/(1-p) (inverted dropout). It holds its own RNG so a network instance is
// self-contained; pass a split of the model seed.
type Dropout struct {
	arenaScratch
	P    float64
	rng  *frand.RNG
	mask []float32
}

// NewDropout builds a dropout layer with drop probability p.
func NewDropout(r *frand.RNG, p float64) *Dropout {
	return &Dropout{P: p, rng: r}
}

// Forward implements Layer.
func (l *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || l.P <= 0 {
		l.mask = nil
		return x
	}
	y := l.allocUninit(x.Shape()...)
	xd, d := x.Data(), y.Data()
	if cap(l.mask) < len(d) {
		l.mask = make([]float32, len(d))
	}
	l.mask = l.mask[:len(d)]
	scale := float32(1 / (1 - l.P))
	for i := range d {
		if l.rng.Float64() < l.P {
			l.mask[i] = 0
			d[i] = 0
		} else {
			l.mask[i] = scale
			d[i] = xd[i] * scale
		}
	}
	return y
}

// Backward implements Layer.
func (l *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if l.mask == nil {
		return grad
	}
	g := l.allocUninit(grad.Shape()...)
	gd, d := grad.Data(), g.Data()
	for i := range d {
		d[i] = gd[i] * l.mask[i]
	}
	return g
}

// Params implements Layer.
func (l *Dropout) Params() []*Param { return nil }

// States implements Layer.
func (l *Dropout) States() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *Dropout) Name() string { return fmt.Sprintf("Dropout(%.2f)", l.P) }
