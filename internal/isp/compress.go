package isp

import (
	"bytes"
	"fmt"
	"image/jpeg"
)

// CompressAlg selects the compression stage (Table 3 "Image compression").
type CompressAlg int

// Compression variants. JPEG quality 85 is the baseline; Option 1 omits the
// stage; Option 2 is JPEG quality 50.
const (
	CompressJPEG85 CompressAlg = iota
	CompressNone
	CompressJPEG50
)

// String implements fmt.Stringer.
func (a CompressAlg) String() string {
	switch a {
	case CompressJPEG85:
		return "jpeg-q85"
	case CompressNone:
		return "none"
	case CompressJPEG50:
		return "jpeg-q50"
	}
	return "compress?"
}

// Compress runs the image through a real JPEG encode/decode roundtrip at the
// selected quality, reproducing the block, quantization, and chroma
// subsampling artefacts the paper attributes to this stage. The error path
// only triggers on malformed geometry.
func Compress(im *Image, alg CompressAlg) (*Image, error) {
	var q int
	switch alg {
	case CompressNone:
		return im.Clone(), nil
	case CompressJPEG50:
		q = 50
	default:
		q = 85
	}
	return JPEGRoundtrip(im, q)
}

// JPEGRoundtrip encodes the image as JPEG at the given quality using the
// standard library codec and decodes it back to float.
func JPEGRoundtrip(im *Image, quality int) (*Image, error) {
	var buf bytes.Buffer
	if err := jpeg.Encode(&buf, im.ToNRGBA(), &jpeg.Options{Quality: quality}); err != nil {
		return nil, fmt.Errorf("isp: jpeg encode: %w", err)
	}
	decoded, err := jpeg.Decode(&buf)
	if err != nil {
		return nil, fmt.Errorf("isp: jpeg decode: %w", err)
	}
	return FromGoImage(decoded), nil
}
