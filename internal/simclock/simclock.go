// Package simclock provides a deterministic virtual-time event scheduler and
// seeded latency models for simulating asynchronous client fleets.
//
// Nothing in this package reads the wall clock: time is a float64 that
// advances only when the owner pops the next scheduled event, so every
// simulated schedule is a pure function of the seed and the sequence of
// Schedule calls. Ties at the same virtual instant are broken by the event's
// integer ID (ascending), which makes the pop order — and therefore
// everything driven by it — bit-reproducible across runs and platforms.
package simclock

// Event is one scheduled occurrence: a virtual timestamp plus an integer key.
// The key doubles as the deterministic tie-break for events scheduled at the
// same instant (smaller ID pops first).
type Event struct {
	At float64
	ID int
}

// Clock is a virtual-time event queue: a binary min-heap ordered by
// (At, ID). The zero value is ready to use. Clock is not safe for concurrent
// use; drive it from one goroutine.
type Clock struct {
	now    float64
	events []Event
}

// Now returns the current virtual time: 0 initially, then the timestamp of
// the most recently popped event.
func (c *Clock) Now() float64 { return c.now }

// Len returns the number of pending events.
func (c *Clock) Len() int { return len(c.events) }

// Schedule enqueues an event at virtual time `at`. Scheduling into the past
// panics: an event before Now would have to rewind time, which would break
// determinism for everything already popped.
func (c *Clock) Schedule(at float64, id int) {
	if at < c.now {
		panic("simclock: Schedule into the past")
	}
	c.events = append(c.events, Event{At: at, ID: id})
	// Sift up.
	i := len(c.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(c.events[i], c.events[parent]) {
			break
		}
		c.events[i], c.events[parent] = c.events[parent], c.events[i]
		i = parent
	}
}

// Peek returns the earliest pending event without popping it; the clock does
// not advance. ok is false when nothing is pending. Owners that interleave
// two event sources (e.g. a serving clock stepped up to each training
// publish) use Peek to decide whether the next event belongs to this horizon
// before committing to the pop.
func (c *Clock) Peek() (ev Event, ok bool) {
	if len(c.events) == 0 {
		return Event{}, false
	}
	return c.events[0], true
}

// Next pops the earliest pending event (ties by ascending ID), advances Now
// to its timestamp, and returns it. ok is false when nothing is pending; the
// clock does not advance then.
func (c *Clock) Next() (ev Event, ok bool) {
	n := len(c.events)
	if n == 0 {
		return Event{}, false
	}
	root := c.events[0]
	c.events[0] = c.events[n-1]
	c.events = c.events[:n-1]
	// Sift down.
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && less(c.events[l], c.events[smallest]) {
			smallest = l
		}
		if r < n && less(c.events[r], c.events[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		c.events[i], c.events[smallest] = c.events[smallest], c.events[i]
		i = smallest
	}
	c.now = root.At
	return root, true
}

// Reset rewinds the clock to time 0 and drops all pending events, keeping
// the heap's storage for reuse.
func (c *Clock) Reset() {
	c.now = 0
	c.events = c.events[:0]
}

// less is the heap order: earlier time first, smaller ID on ties.
func less(a, b Event) bool {
	return a.At < b.At || (a.At == b.At && a.ID < b.ID)
}
