package fl

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/parallel"
)

// Server drives the federated training loop: sample K clients, broadcast the
// global weights, run local updates (in parallel across workers), aggregate.
type Server struct {
	Cfg      Config
	Strategy Strategy
	Loss     nn.Loss
	Clients  []*Client
	Global   nn.Weights

	builder Builder
	rng     *frand.RNG
	// worker-owned network replicas, one per worker
	nets []*nn.Network
	// pool recycles per-worker snapshot scratch buffers on the streaming
	// path; it holds at most len(nets) buffers at rest.
	pool weightsPool
	// accs holds one shard accumulator per worker, reused across rounds
	// when the strategy's accumulators are resettable (so the model-sized
	// float64 sum buffers are allocated once per worker, not per round).
	accs []Accumulator
	// spare double-buffers the streaming path's outgoing global weights:
	// Finalize writes each round's new global into the weight set retired
	// two rounds ago instead of allocating a model-sized nn.Weights per
	// round. Safe because nothing retains a global weight set across rounds
	// — checkpoints serialize immediately and GlobalNet/replicas copy.
	spare nn.Weights
}

// NewServer builds a server with a fresh global model from the builder.
func NewServer(cfg Config, builder Builder, loss nn.Loss, strategy Strategy, clients []*Client) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("fl: no clients")
	}
	if cfg.ClientsPerRound > len(clients) {
		return nil, fmt.Errorf("fl: K=%d exceeds population %d", cfg.ClientsPerRound, len(clients))
	}
	if cfg.Faults.NeedsVirtualTime() {
		return nil, fmt.Errorf("fl: fault model %q needs the virtual-time async engine for crash/flaky/churn; the synchronous server supports corruption-only models", cfg.Faults)
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	nets := make([]*nn.Network, workers)
	share := intraOpShare(cfg, workers)
	for i := range nets {
		nets[i] = builder()
		nets[i].SetIntraOp(share)
	}
	return &Server{
		Cfg:      cfg,
		Strategy: strategy,
		Loss:     loss,
		Clients:  clients,
		Global:   nets[0].Snapshot(),
		builder:  builder,
		rng:      frand.New(cfg.Seed ^ 0x5ca1ab1e),
		nets:     nets,
	}, nil
}

// intraOpShare is the core-budget token grant: each of the server's W client
// workers gets an equal share of the total intra-op budget (cfg.IntraOp, or
// GOMAXPROCS when 0), at least 1, so W workers × their kernel parallelism
// never oversubscribes the machine. W=1 — the single-client path — receives
// the full budget.
func intraOpShare(cfg Config, workers int) int {
	total := cfg.IntraOp
	if total <= 0 {
		total = parallel.Workers()
	}
	if workers < 1 {
		workers = 1
	}
	share := total / workers
	if share < 1 {
		share = 1
	}
	return share
}

// SampleClients picks K distinct clients uniformly for the round.
func (s *Server) SampleClients() []*Client {
	idx := s.rng.Choice(len(s.Clients), s.Cfg.ClientsPerRound)
	out := make([]*Client, len(idx))
	for i, j := range idx {
		out[i] = s.Clients[j]
	}
	return out
}

// weightBytes returns the on-the-wire size of one weight set (float32
// payloads; headers ignored).
func weightBytes(w Weights) int64 {
	var n int64
	for _, p := range w.Params {
		n += int64(p.Size()) * 4
	}
	for _, st := range w.States {
		n += int64(st.Size()) * 4
	}
	return n
}

// Weights aliases nn.Weights for the local helper above.
type Weights = nn.Weights

// localUpdate runs one client's local training against the given global
// weights on the given replica — the unit of work shared by the synchronous
// round loop and the asynchronous event loop. round keys the client's
// deterministic per-round RNG; on the async path it is the global version the
// client trains against.
func localUpdate(strategy Strategy, net *nn.Network, global nn.Weights, client *Client,
	cfg Config, loss nn.Loss, round int, scratch *nn.Weights) ClientResult {
	if err := net.LoadWeights(global); err != nil {
		panic("fl: replica incompatible with global weights: " + err.Error())
	}
	ctx := &ClientContext{
		Net:     net,
		Global:  global,
		Client:  client,
		Cfg:     cfg,
		Loss:    loss,
		Round:   round,
		RNG:     client.RoundRNG(round),
		Scratch: scratch,
	}
	return strategy.LocalUpdate(ctx)
}

// RunRound executes one communication round and returns its stats.
//
// When the strategy implements StreamingAggregator (and streaming is not
// disabled), each worker folds its clients' results into a private shard
// accumulator as they finish — reusing one pooled snapshot buffer per
// worker — and the shards are merged tree-style at round end. Peak weight
// memory is then O(workers) instead of O(K). On this path clients are
// assigned to workers in contiguous index blocks, not via a dynamic queue,
// so shard contents (and thus the fold order) are deterministic across
// runs. The barrier fallback keeps the original dynamic work queue:
// aggregation there happens in client order on the main goroutine, so
// scheduling cannot affect results and load balancing is free.
func (s *Server) RunRound(round int) RoundStats {
	sampled := s.SampleClients()
	var dropped []int
	if s.Cfg.ClientDropout > 0 {
		kept := sampled[:0]
		for _, c := range sampled {
			if s.rng.Float64() < s.Cfg.ClientDropout {
				dropped = append(dropped, c.ID)
			} else {
				kept = append(kept, c)
			}
		}
		sampled = kept
	}
	if len(sampled) == 0 {
		// Everyone dropped: the round is lost; global model unchanged.
		return RoundStats{Round: round, Dropped: dropped}
	}
	results := make([]ClientResult, len(sampled))

	workers := len(s.nets)
	if workers > len(sampled) {
		workers = len(sampled)
	}
	sa, streaming := s.Strategy.(StreamingAggregator)
	streaming = streaming && !s.Cfg.DisableStreaming

	runClient := func(net *nn.Network, i int, scratch *nn.Weights) ClientResult {
		return localUpdate(s.Strategy, net, s.Global, sampled[i], s.Cfg, s.Loss, round, scratch)
	}
	// rejected[i] marks a result the validation gate kept out of aggregation;
	// workers write disjoint indices, stats are collected in client order.
	rejected := make([]bool, len(sampled))

	var wg sync.WaitGroup
	if streaming {
		// Reuse one accumulator per worker across rounds (resetting when the
		// strategy supports it), selected on the main goroutine so the shard
		// state lives in exactly one place.
		if s.accs == nil {
			s.accs = make([]Accumulator, len(s.nets))
		}
		for w := 0; w < workers; w++ {
			if ra, ok := s.accs[w].(ResettableAccumulator); ok {
				ra.Reset(s.Global, s.Cfg)
			} else {
				s.accs[w] = sa.NewAccumulator(s.Global, s.Cfg)
			}
		}
		for w := 0; w < workers; w++ {
			lo := w * len(sampled) / workers
			hi := (w + 1) * len(sampled) / workers
			wg.Add(1)
			go func(acc Accumulator, lo, hi int, net *nn.Network) {
				defer wg.Done()
				scratch := s.pool.get(s.Global)
				defer s.pool.put(scratch)
				for i := lo; i < hi; i++ {
					res := runClient(net, i, &scratch)
					if s.admitUpdate(&res, round) {
						acc.Accumulate(res)
					} else {
						rejected[i] = true
					}
					// The weights may alias the scratch buffer and have
					// been folded already; keep only the scalar stats.
					res.Weights = Weights{}
					results[i] = res
				}
			}(s.accs[w], lo, hi, s.nets[w])
		}
		wg.Wait()
		s.Global = s.finalizeRound(mergeShards(s.accs[:workers]))
	} else {
		jobs := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(net *nn.Network) {
				defer wg.Done()
				for i := range jobs {
					results[i] = runClient(net, i, nil)
				}
			}(s.nets[w])
		}
		for i := range sampled {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		agg := results
		nrej := 0
		for i := range results {
			if !s.admitUpdate(&results[i], round) {
				rejected[i] = true
				nrej++
			}
		}
		if nrej > 0 {
			agg = make([]ClientResult, 0, len(results)-nrej)
			for i, r := range results {
				if !rejected[i] {
					agg = append(agg, r)
				}
			}
		}
		if len(agg) > 0 {
			s.Global = s.Strategy.Aggregate(s.Global, agg, s.Cfg)
		}
	}

	stats := RoundStats{Round: round, Dropped: dropped}
	wb := weightBytes(s.Global)
	stats.BytesDown = wb * int64(len(sampled)+len(dropped)) // broadcast before dropout is known
	stats.BytesUp = wb * int64(len(sampled))
	var totalSamples float64
	for i, r := range results {
		n := float64(r.NumSamples)
		stats.MeanLoss += r.TrainLoss * n
		stats.MeanInit += r.InitLoss * n
		totalSamples += n
		stats.Sampled = append(stats.Sampled, r.ClientID)
		if rejected[i] {
			stats.Rejected = append(stats.Rejected, r.ClientID)
			stats.BytesWasted += wb
		}
	}
	if totalSamples > 0 {
		stats.MeanLoss /= totalSamples
		stats.MeanInit /= totalSamples
	}
	stats.TotalEpochs = len(sampled) * s.Cfg.LocalEpochs
	return stats
}

// finalizeRound turns the round's merged root accumulator into the new
// global weights. When the accumulator supports IntoFinalizer, the new
// global is written into the server's spare weight buffer — the set retired
// as global two rounds ago — so the steady state of the streaming path
// allocates no model-sized weights at all. The previous global (still
// referenced by this round's results until now) becomes the next spare.
// Rounds that aggregated nothing (total dropout) keep the global and the
// spare untouched.
func (s *Server) finalizeRound(root Accumulator) nn.Weights {
	fi, ok := root.(IntoFinalizer)
	if !ok {
		return root.Finalize()
	}
	if s.spare.Params == nil {
		s.spare = s.Global.Zero()
	}
	if !fi.FinalizeInto(s.spare) {
		return s.Global
	}
	neww := s.spare
	s.spare = s.Global
	return neww
}

// SaveCheckpoint serializes the current round counter and global weights so
// a long-running federation can resume after a restart.
func (s *Server) SaveCheckpoint(w io.Writer, round int) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(round))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("fl: checkpoint header: %w", err)
	}
	if _, err := s.Global.WriteTo(w); err != nil {
		return fmt.Errorf("fl: checkpoint weights: %w", err)
	}
	return nil
}

// LoadCheckpoint restores global weights written by SaveCheckpoint and
// returns the stored round counter. The weights must match the server's
// model architecture.
func (s *Server) LoadCheckpoint(r io.Reader) (round int, err error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("fl: checkpoint header: %w", err)
	}
	w, err := nn.ReadWeights(r)
	if err != nil {
		return 0, fmt.Errorf("fl: checkpoint weights: %w", err)
	}
	// Validate against the architecture via a replica before adopting.
	if err := s.nets[0].LoadWeights(w); err != nil {
		return 0, fmt.Errorf("fl: checkpoint incompatible: %w", err)
	}
	s.Global = w
	return int(binary.LittleEndian.Uint64(hdr[:])), nil
}

// Run executes cfg.Rounds rounds, invoking callback (if non-nil) after each.
func (s *Server) Run(callback func(RoundStats)) {
	for round := 0; round < s.Cfg.Rounds; round++ {
		stats := s.RunRound(round)
		if callback != nil {
			callback(stats)
		}
	}
}

// GlobalNet returns a network loaded with the current global weights, for
// evaluation. The returned network is owned by the caller and gets the full
// intra-op budget: evaluation is a single-goroutine path, so its kernels may
// take the whole machine.
func (s *Server) GlobalNet() *nn.Network {
	net := s.builder()
	if err := net.LoadWeights(s.Global); err != nil {
		panic("fl: builder incompatible with global weights: " + err.Error())
	}
	net.SetIntraOp(intraOpShare(s.Cfg, 1))
	return net
}
