package experiments

import (
	"fmt"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/fl"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/isp"
	"heteroswitch/internal/metrics"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/scene"
)

// Fig1Result reproduces Figure 1's headline comparison: FL accuracy when all
// clients share one device type versus a heterogeneous mix.
type Fig1Result struct {
	HomogeneousDevice string
	HomogeneousAcc    float64 // tested on the same device type
	HeterogeneousAcc  float64 // mixed clients, tested across all devices
	DegradationPct    float64
}

// String renders the result.
func (r *Fig1Result) String() string {
	t := &Table{
		Title:  "Figure 1 — homogeneous vs heterogeneous clients",
		Header: []string{"setting", "accuracy"},
	}
	t.AddRow("homogeneous ("+r.HomogeneousDevice+")", pct(r.HomogeneousAcc))
	t.AddRow("heterogeneous (market-share mix)", pct(r.HeterogeneousAcc))
	t.AddRow("degradation", fmt.Sprintf("%.1f%%", r.DegradationPct))
	return t.String()
}

// Fig1 runs the homogeneity experiment. Both arms see the same TOTAL data
// volume: the homogeneous population is nine same-type (S9) phones each
// photographing the shared scene set (distinct sensor-noise realizations),
// mirroring how the heterogeneous arm is nine different phones doing so.
func Fig1(opts Options) (*Fig1Result, error) {
	dd, err := BuildDeviceData(opts, opts.scaled(8), opts.scaled(4), dataset.ModeProcessed)
	if err != nil {
		return nil, err
	}
	cfg := fl.Config{
		Rounds:           opts.scaled(60),
		ClientsPerRound:  8,
		BatchSize:        10,
		LocalEpochs:      1,
		LR:               0.1,
		Seed:             opts.Seed,
		Workers:          opts.Workers,
		DisableStreaming: opts.DisableStreaming,
		IntraOp:          opts.IntraOp,
	}
	builder := SimpleCNNBuilder(opts.Seed, dd.Classes)

	// Homogeneous: re-capture the scene set with eight more S9 replicas so
	// the pool matches the heterogeneous arm's size, then give it to all
	// clients and evaluate on S9.
	s9 := dd.DeviceIndex("S9")
	gen := newSceneGen()
	rng := frand.New(opts.Seed)
	trainScenes := gen.RenderSet(opts.scaled(8), rng.SplitNamed("train-scenes"))
	pool := []*dataset.Dataset{dd.Train[s9]}
	for rep := 1; rep < len(dd.Profiles); rep++ {
		crng := frand.New(opts.Seed ^ uint64(rep)*0xfeed)
		ds, err := dataset.Capture(trainScenes, dd.Profiles[s9], s9, dataset.ModeProcessed, opts.OutRes, dd.Classes, crng)
		if err != nil {
			return nil, err
		}
		pool = append(pool, ds)
	}
	homoTrain := map[int]*dataset.Dataset{s9: dataset.Concat(pool...)}
	homoCounts := make([]int, len(dd.Profiles))
	homoCounts[s9] = 20
	srv, err := RunFLWithLoss(opts, fl.FedAvg{}, homoTrain, homoCounts, cfg, builder, lossCE())
	if err != nil {
		return nil, err
	}
	homoAcc := metrics.Accuracy(srv.GlobalNet(), dd.Test[s9], 16)

	// Heterogeneous: market-share mix, evaluated across all devices.
	srv, err = RunFL(opts, fl.FedAvg{}, dd, MarketShareCounts(dd, 20), cfg, builder)
	if err != nil {
		return nil, err
	}
	heteroAcc := metrics.Accuracy(srv.GlobalNet(), dd.AllTest(), 16)

	return &Fig1Result{
		HomogeneousDevice: "S9",
		HomogeneousAcc:    homoAcc,
		HeterogeneousAcc:  heteroAcc,
		DegradationPct:    metrics.Degradation(homoAcc, heteroAcc) * 100,
	}, nil
}

// CrossDeviceResult is the Table 2 (processed) or Fig 2 (RAW) matrix: train
// per device, test everywhere.
type CrossDeviceResult struct {
	Mode        dataset.CaptureMode
	DeviceNames []string
	// Acc[i][j] = accuracy of the model trained on device i, tested on j.
	Acc [][]float64
	// Degradation[i][j] = (Acc[i][i]-Acc[i][j])/Acc[i][i]; 0 on diagonal.
	Degradation [][]float64
	// MeanOthersRow[i] = mean degradation of train-device i on the others.
	MeanOthersRow []float64
	// MeanOthersCol[j] = mean degradation observed on test device j.
	MeanOthersCol []float64
}

// String renders the degradation matrix in Table 2's layout.
func (r *CrossDeviceResult) String() string {
	title := "Table 2 — cross-device model quality degradation (processed images)"
	if r.Mode == dataset.ModeRAW {
		title = "Figure 2 — cross-device model quality degradation (RAW data)"
	}
	t := &Table{Title: title, Header: append(append([]string{"train\\test"}, r.DeviceNames...), "MeanOthers")}
	n := len(r.DeviceNames)
	for i := 0; i < n; i++ {
		row := []string{r.DeviceNames[i]}
		for j := 0; j < n; j++ {
			if i == j {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%.1f%%", r.Degradation[i][j]*100))
			}
		}
		row = append(row, fmt.Sprintf("%.1f%%", r.MeanOthersRow[i]*100))
		t.AddRow(row...)
	}
	col := []string{"MeanOthers"}
	for j := 0; j < n; j++ {
		col = append(col, fmt.Sprintf("%.1f%%", r.MeanOthersCol[j]*100))
	}
	col = append(col, "")
	t.AddRow(col...)
	return t.String()
}

// TargetStats returns, for test device j, the mean/min/max degradation
// across training devices i≠j — Fig 2's bar + error bars.
func (r *CrossDeviceResult) TargetStats(j int) (mean, minV, maxV float64) {
	n := len(r.DeviceNames)
	first := true
	var sum float64
	cnt := 0
	for i := 0; i < n; i++ {
		if i == j {
			continue
		}
		d := r.Degradation[i][j]
		sum += d
		cnt++
		if first || d < minV {
			minV = d
		}
		if first || d > maxV {
			maxV = d
		}
		first = false
	}
	return sum / float64(cnt), minV, maxV
}

// CrossDevice trains one centralized model per device type and evaluates it
// on every device's test set (Table 2 with processed images, Fig 2 with
// ModeRAW).
func CrossDevice(opts Options, mode dataset.CaptureMode) (*CrossDeviceResult, error) {
	dd, err := BuildDeviceData(opts, opts.scaled(8), opts.scaled(4), mode)
	if err != nil {
		return nil, err
	}
	n := len(dd.Profiles)
	res := &CrossDeviceResult{Mode: mode}
	for _, p := range dd.Profiles {
		res.DeviceNames = append(res.DeviceNames, p.Name)
	}
	res.Acc = make([][]float64, n)
	res.Degradation = make([][]float64, n)
	res.MeanOthersRow = make([]float64, n)
	res.MeanOthersCol = make([]float64, n)
	epochs := opts.scaled(25)

	builder := SimpleCNNBuilder(opts.Seed, dd.Classes)
	for i := 0; i < n; i++ {
		net := builder()
		net.SetIntraOp(opts.IntraOpBudget())
		TrainCentralized(net, dd.Train[i], epochs, 10, 0.05, frand.New(opts.Seed^uint64(i+7)))
		res.Acc[i] = make([]float64, n)
		res.Degradation[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			res.Acc[i][j] = metrics.Accuracy(net, dd.Test[j], 16)
		}
		var rowSum float64
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			res.Degradation[i][j] = metrics.Degradation(res.Acc[i][i], res.Acc[i][j])
			rowSum += res.Degradation[i][j]
		}
		res.MeanOthersRow[i] = rowSum / float64(n-1)
	}
	for j := 0; j < n; j++ {
		var s float64
		for i := 0; i < n; i++ {
			if i != j {
				s += res.Degradation[i][j]
			}
		}
		res.MeanOthersCol[j] = s / float64(n-1)
	}
	return res, nil
}

// Table2 is the processed-image cross-device matrix.
func Table2(opts Options) (*CrossDeviceResult, error) {
	return CrossDevice(opts, dataset.ModeProcessed)
}

// Fig2 is the RAW-data cross-device matrix.
func Fig2(opts Options) (*CrossDeviceResult, error) {
	return CrossDevice(opts, dataset.ModeRAW)
}

// Fig3Result is the ISP stage ablation (Fig 3 / Table 3): degradation when a
// single ISP stage of the test-time pipeline is switched to Option 1 or 2.
type Fig3Result struct {
	BaselineAcc float64
	// Rows are stages; Deg[stage][opt-1] for options 1 and 2.
	Stages []string
	Names  [][2]string // algorithm names for the two options
	Deg    [][2]float64
}

// String renders the ablation table.
func (r *Fig3Result) String() string {
	t := &Table{
		Title:  fmt.Sprintf("Figure 3 — ISP stage ablation (baseline accuracy %s)", pct(r.BaselineAcc)),
		Header: []string{"stage", "option 1", "degradation", "option 2", "degradation"},
	}
	for i, s := range r.Stages {
		t.AddRow(s,
			r.Names[i][0], fmt.Sprintf("%.1f%%", r.Deg[i][0]*100),
			r.Names[i][1], fmt.Sprintf("%.1f%%", r.Deg[i][1]*100))
	}
	return t.String()
}

// Fig3 trains on Baseline-pipeline captures from all sensors and measures
// the accuracy drop when each test-time stage is switched to its Table-3
// Option 1 / Option 2 algorithm.
func Fig3(opts Options) (*Fig3Result, error) {
	gen := scene.NewImageNet12(64)
	rng := frand.New(opts.Seed)
	trainScenes := gen.RenderSet(opts.scaled(8), rng.SplitNamed("train-scenes"))
	testScenes := gen.RenderSet(opts.scaled(4), rng.SplitNamed("test-scenes"))
	profiles := deviceProfiles()

	base := isp.Baseline()
	captureAll := func(scenes []scene.Scene, pipe isp.Pipeline, salt uint64) (*dataset.Dataset, error) {
		parts := make([]*dataset.Dataset, len(profiles))
		for i, p := range profiles {
			crng := frand.New(opts.Seed ^ salt ^ uint64(i+1)*0x9e37)
			ds, err := dataset.CaptureWithPipeline(scenes, p, i, pipe, opts.OutRes, gen.NumClasses(), crng)
			if err != nil {
				return nil, err
			}
			parts[i] = ds
		}
		return dataset.Concat(parts...), nil
	}

	train, err := captureAll(trainScenes, base, 0xaaaa)
	if err != nil {
		return nil, err
	}
	baseTest, err := captureAll(testScenes, base, 0xbbbb)
	if err != nil {
		return nil, err
	}

	net := SimpleCNNBuilder(opts.Seed, gen.NumClasses())()
	net.SetIntraOp(opts.IntraOpBudget())
	TrainCentralized(net, train, opts.scaled(20), 10, 0.05, frand.New(opts.Seed^3))
	baseAcc := metrics.Accuracy(net, baseTest, 16)

	res := &Fig3Result{BaselineAcc: baseAcc}
	for stage := isp.StageDemosaic; stage < isp.NumStages; stage++ {
		var names [2]string
		var degs [2]float64
		for opt := 1; opt <= 2; opt++ {
			pipe, err := base.Option(stage, opt)
			if err != nil {
				return nil, err
			}
			test, err := captureAll(testScenes, pipe, 0xbbbb)
			if err != nil {
				return nil, err
			}
			acc := metrics.Accuracy(net, test, 16)
			names[opt-1] = stageOptionName(pipe, stage)
			degs[opt-1] = metrics.Degradation(baseAcc, acc)
		}
		res.Stages = append(res.Stages, stage.String())
		res.Names = append(res.Names, names)
		res.Deg = append(res.Deg, degs)
	}
	return res, nil
}

func stageOptionName(p isp.Pipeline, s isp.Stage) string {
	switch s {
	case isp.StageDemosaic:
		return p.Demosaic.String()
	case isp.StageDenoise:
		return p.Denoise.String()
	case isp.StageWB:
		return p.WB.String()
	case isp.StageGamut:
		return p.Gamut.String()
	case isp.StageTone:
		return p.Tone.String()
	default:
		return p.Compress.String()
	}
}

// loss type used across vision experiments.
var _ nn.Loss = nn.SoftmaxCrossEntropy{}
