package serve

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"heteroswitch/internal/simclock"
)

// ArrivalModel generates the virtual-time request process of the load
// harness. Delay must be a pure function of the model's configuration and
// (id, step) — no internal state — so the arrival schedule replays
// identically from the seed, like simclock.LatencyModel.
//
// Open-loop models ignore the server: Delay(0, i) is the gap between arrival
// i and arrival i+1, so a saturated server builds unbounded queues (the
// classic open-loop overload regime). Closed-loop models have Concurrency
// clients that wait for their response: Delay(client, step) is client's
// think time before its step'th request, so load self-limits at Concurrency
// outstanding.
type ArrivalModel interface {
	Delay(id, step int) float64
	// Closed reports whether the model is closed-loop (per-client think
	// times) rather than open-loop (global inter-arrival gaps).
	Closed() bool
}

// expDraw maps a Hash01 uniform to a unit-mean exponential deviate — the
// memoryless building block of both arrival models.
func expDraw(seed uint64, a, b int) float64 {
	return -math.Log1p(-simclock.Hash01(seed, a, b))
}

// OpenLoop is a Poisson-like open arrival process: i.i.d. exponential
// inter-arrival gaps with mean 1/Rate, hashed from (Seed, i).
type OpenLoop struct {
	Rate float64
	Seed uint64
}

// Delay implements ArrivalModel: the gap after arrival step.
func (m OpenLoop) Delay(_, step int) float64 { return expDraw(m.Seed, 0, step) / m.Rate }

// Closed implements ArrivalModel.
func (m OpenLoop) Closed() bool { return false }

// ClosedLoop models a fixed population of clients that each keep exactly one
// request outstanding: after a response, the client thinks for an
// exponential time with mean Think (0 = immediate re-issue) before its next
// request.
type ClosedLoop struct {
	Think float64
	Seed  uint64
}

// Delay implements ArrivalModel: client id's think time before its step'th
// request.
func (m ClosedLoop) Delay(id, step int) float64 {
	if m.Think == 0 {
		return 0
	}
	return m.Think * expDraw(m.Seed, id+1, step)
}

// Closed implements ArrivalModel.
func (m ClosedLoop) Closed() bool { return true }

// ServiceModel gives the virtual duration of executing one batch of n
// requests on a worker. Like every model in the harness it must be pure in
// (n, seq); seq is the batch's monotonic sequence number. The real compute
// (the frozen forward) runs regardless — the model prices its virtual time,
// which is what the latency quantiles integrate.
type ServiceModel interface {
	Batch(n, seq int) float64
}

// AffineService is the standard linear batch cost: Base per dispatch plus
// PerItem per request. PerItem/Base is the knob that makes micro-batching
// pay: large Base amortizes across a batch, pure PerItem makes batching
// latency-neutral.
type AffineService struct {
	Base, PerItem float64
}

// Batch implements ServiceModel.
func (m AffineService) Batch(n, _ int) float64 { return m.Base + m.PerItem*float64(n) }

// ParseArrival builds an ArrivalModel from a CLI spec, seeding it from seed.
// Specs:
//
//	closed:THINK    closed loop; each client thinks exp(THINK) between requests
//	open:RATE       open loop; Poisson arrivals at RATE requests per time unit
func ParseArrival(spec string, seed uint64) (ArrivalModel, error) {
	name, argStr, _ := strings.Cut(spec, ":")
	arg, err := strconv.ParseFloat(strings.TrimSpace(argStr), 64)
	if argStr == "" {
		arg, err = 0, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: arrival spec %q: %v", spec, err)
	}
	switch name {
	case "closed", "":
		if arg < 0 {
			return nil, fmt.Errorf("serve: arrival spec %q: want closed:THINK with THINK >= 0", spec)
		}
		return ClosedLoop{Think: arg, Seed: seed}, nil
	case "open":
		if arg <= 0 {
			return nil, fmt.Errorf("serve: arrival spec %q: want open:RATE with RATE > 0", spec)
		}
		return OpenLoop{Rate: arg, Seed: seed}, nil
	default:
		return nil, fmt.Errorf("serve: unknown arrival model %q (have closed, open)", name)
	}
}
