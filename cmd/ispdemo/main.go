// Command ispdemo renders one scene through every Table-1 device and every
// ISP stage option, writing PNGs that visualize system-induced data
// heterogeneity — the imaging counterpart of the paper's Figure 1.
//
// Usage:
//
//	ispdemo -out ./ispdemo-out [-class 4] [-seed 42]
//
// Output layout:
//
//	<out>/scene.png                 the latent scene
//	<out>/devices/<name>.png        per-device developed captures
//	<out>/devices/<name>_raw.png    per-device RAW (demosaic-only) renditions
//	<out>/stages/<stage>_opt<n>.png baseline S9 sensor, one stage switched
package main

import (
	"flag"
	"fmt"
	"image/png"
	"os"
	"path/filepath"

	"heteroswitch/internal/device"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/isp"
	"heteroswitch/internal/scene"
)

func main() {
	var (
		out   = flag.String("out", "ispdemo-out", "output directory")
		class = flag.Int("class", 4, "scene class (0-11)")
		seed  = flag.Uint64("seed", 42, "random seed")
	)
	flag.Parse()

	gen := scene.NewImageNet12(64)
	if *class < 0 || *class >= gen.NumClasses() {
		fatal(fmt.Errorf("class %d out of range [0,%d)", *class, gen.NumClasses()))
	}
	sc := gen.Render(*class, frand.New(*seed))

	mustMkdir(filepath.Join(*out, "devices"))
	mustMkdir(filepath.Join(*out, "stages"))
	writePNG(filepath.Join(*out, "scene.png"), sc)
	fmt.Printf("scene: class %d (%s)\n", *class, gen.ClassName(*class))

	for i, p := range device.Profiles() {
		rng := frand.New(*seed ^ uint64(i+1)*0x9e37)
		shot, err := p.CaptureProcessed(sc, rng)
		if err != nil {
			fatal(err)
		}
		writePNG(filepath.Join(*out, "devices", p.Name+".png"), shot)
		raw, err := p.CaptureRAW(sc, frand.New(*seed^uint64(i+1)*0x9e37))
		if err != nil {
			fatal(err)
		}
		writePNG(filepath.Join(*out, "devices", p.Name+"_raw.png"), raw)
		fmt.Printf("device %-8s -> devices/%s.png (+_raw)\n", p.Name, p.Name)
	}

	s9, err := device.ByName("S9")
	if err != nil {
		fatal(err)
	}
	base := isp.Baseline()
	for stage := isp.StageDemosaic; stage < isp.NumStages; stage++ {
		for opt := 0; opt <= 2; opt++ {
			pipe, err := base.Option(stage, opt)
			if err != nil {
				fatal(err)
			}
			im, err := s9.CaptureWithPipeline(sc, pipe, frand.New(*seed^0xabc))
			if err != nil {
				fatal(err)
			}
			name := fmt.Sprintf("%s_opt%d.png", stage, opt)
			writePNG(filepath.Join(*out, "stages", name), im)
		}
	}
	fmt.Printf("stage ablations -> %s/stages/\n", *out)
}

func writePNG(path string, im *isp.Image) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := png.Encode(f, im.ToNRGBA()); err != nil {
		fatal(err)
	}
}

func mustMkdir(dir string) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ispdemo:", err)
	os.Exit(1)
}
