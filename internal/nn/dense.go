package nn

import (
	"fmt"
	"math"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/tensor"
)

// Dense is a fully connected layer: y = x @ W + b for x of shape [N, in].
type Dense struct {
	arenaScratch
	intraOp
	In, Out int
	W, B    *Param
	x       *tensor.Tensor // cached input
}

// NewDense builds a dense layer with He-normal initialization.
func NewDense(r *frand.RNG, in, out int) *Dense {
	std := math.Sqrt(2.0 / float64(in))
	w := tensor.Randn(r, std, in, out)
	return &Dense{
		In: in, Out: out,
		W: &Param{Name: fmt.Sprintf("dense%dx%d.W", in, out), W: w, Grad: tensor.New(in, out)},
		B: &Param{Name: fmt.Sprintf("dense%dx%d.b", in, out), W: tensor.New(out), Grad: tensor.New(out), NoDecay: true},
	}
}

// Forward computes x @ W + b.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.NDim() != 2 || x.Dim(1) != d.In {
		panic(fmt.Sprintf("nn: Dense input shape %v, want [N %d]", x.Shape(), d.In))
	}
	d.x = x
	y := d.allocUninit(x.Dim(0), d.Out)
	tensor.MatMulIntoP(d.budget(), y, x, d.W.W)
	n, out := y.Dim(0), d.Out
	yd, bd := y.Data(), d.B.W.Data()
	for i := 0; i < n; i++ {
		row := yd[i*out : (i+1)*out]
		for j := range row {
			row[j] += bd[j]
		}
	}
	return y
}

// Backward accumulates dW = xᵀ @ dy, db = Σ dy, and returns dx = dy @ Wᵀ.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	tensor.MatMulTransAAccIntoP(d.budget(), d.W.Grad, d.x, grad) // Grad += xᵀ @ dy, no temporary
	n, out := grad.Dim(0), d.Out
	gd, bg := grad.Data(), d.B.Grad.Data()
	for i := 0; i < n; i++ {
		row := gd[i*out : (i+1)*out]
		for j := range row {
			bg[j] += row[j]
		}
	}
	dx := d.allocUninit(n, d.In)
	tensor.MatMulTransBIntoP(d.budget(), dx, grad, d.W.W)
	return dx
}

// Params returns W and b.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// States returns nil (Dense has no persistent state).
func (d *Dense) States() []*tensor.Tensor { return nil }

// Name implements Layer.
func (d *Dense) Name() string { return fmt.Sprintf("Dense(%d→%d)", d.In, d.Out) }
