package fl

import (
	"math"
	"reflect"
	"testing"

	"heteroswitch/internal/faults"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/simclock"
)

// corruptingFedAvg poisons the target client's returned update with a fixed
// mode — the adversarial client of the gate tests. Embedding FedAvg keeps
// the streaming/weighted fold capabilities the engines type-assert for.
type corruptingFedAvg struct {
	FedAvg
	target int
	mode   faults.Mode
}

func (c corruptingFedAvg) LocalUpdate(ctx *ClientContext) ClientResult {
	res := c.FedAvg.LocalUpdate(ctx)
	if ctx.Client.ID == c.target {
		corruptUpdate(c.mode, ctx.Global, res.Weights)
	}
	return res
}

// absentFedAvg is the ground truth the gate must reproduce: the target
// client reports a zero-sample, zero-delta result, which every engine folds
// as an exact no-op (all sums are sample-weighted, and n = 0 terms add
// nothing bit-for-bit) — i.e. the client's update never happened, while the
// sampling and latency streams stay untouched.
type absentFedAvg struct {
	FedAvg
	target int
}

func (a absentFedAvg) LocalUpdate(ctx *ClientContext) ClientResult {
	if ctx.Client.ID == a.target {
		return ClientResult{
			ClientID: ctx.Client.ID, DeviceIdx: ctx.Client.Device,
			Weights: ctx.SnapshotWeights(),
		}
	}
	return a.FedAvg.LocalUpdate(ctx)
}

// gateServer is fixtureServer with a config hook (fault model, gate, paths).
func gateServer(t *testing.T, strat Strategy, mutate func(*Config)) *Server {
	t.Helper()
	perDevice := fixtureData(24, 3)
	clients, err := BuildPopulation(perDevice, []int{3, 3}, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Rounds: 12, ClientsPerRound: 4, BatchSize: 4, LocalEpochs: 1,
		LR: 0.2, Seed: 11, Workers: 2,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := NewServer(cfg, fixtureBuilder(5), nn.SoftmaxCrossEntropy{}, strat, clients)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// gateAsyncServer mirrors gateServer on the asynchronous engine.
func gateAsyncServer(t *testing.T, strat Strategy, async AsyncConfig, mutate func(*Config)) *AsyncServer {
	t.Helper()
	perDevice := fixtureData(24, 3)
	clients, err := BuildPopulation(perDevice, []int{3, 3}, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Rounds: 12, ClientsPerRound: 4, BatchSize: 4, LocalEpochs: 1,
		LR: 0.2, Seed: 11, Workers: 1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := NewAsyncServer(cfg, fixtureBuilder(5), nn.SoftmaxCrossEntropy{}, strat, clients, async)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// The validation-gate contract on the synchronous engine, both aggregation
// paths: a NaN/Inf/huge-norm delta from one client never perturbs the
// global weights — bit-identical (tol 0) to a run where that client's
// update never happened — and lands in Rejected/BytesWasted instead.
func TestGateRejectsCorruptUpdateSyncEngine(t *testing.T) {
	const target = 2
	for _, mode := range []faults.Mode{faults.NaN, faults.Inf, faults.Blowup} {
		for _, barrier := range []bool{false, true} {
			name := mode.String()
			if barrier {
				name += "/barrier"
			} else {
				name += "/streaming"
			}
			t.Run(name, func(t *testing.T) {
				ref := gateServer(t, absentFedAvg{target: target}, func(c *Config) {
					c.DisableStreaming = barrier
				})
				ref.Run(nil)

				srv := gateServer(t, corruptingFedAvg{target: target, mode: mode}, func(c *Config) {
					c.DisableStreaming = barrier
					c.MaxDeltaNorm = 50
				})
				sampledTarget, rejected := 0, 0
				var wasted, up int64
				srv.Run(func(st RoundStats) {
					for _, id := range st.Sampled {
						if id == target {
							sampledTarget++
						}
					}
					for _, id := range st.Rejected {
						if id != target {
							t.Fatalf("round %d rejected honest client %d", st.Round, id)
						}
						rejected++
					}
					wasted += st.BytesWasted
					up += st.BytesUp
				})
				if sampledTarget == 0 {
					t.Fatal("target client never sampled; fixture broken")
				}
				if rejected != sampledTarget {
					t.Fatalf("target sampled %d times but rejected %d", sampledTarget, rejected)
				}
				if wasted != int64(rejected)*weightBytes(srv.Global) || wasted > up {
					t.Fatalf("wasted-bytes accounting off: wasted=%d rejected=%d up=%d", wasted, rejected, up)
				}
				requireBitIdentical(t, ref.Global, srv.Global, name)
			})
		}
	}
}

// The same contract on the asynchronous engine: corrupted completions are
// gated between training and the fold, tol-0 against the absent-client run.
func TestGateRejectsCorruptUpdateAsyncEngine(t *testing.T) {
	const target = 2
	async := AsyncConfig{
		Staleness:   PolynomialStaleness{Alpha: 0.5},
		Latency:     simclock.Uniform{Lo: 0.5, Hi: 2, Seed: 17},
		Concurrency: 8,
		Buffer:      4,
	}
	for _, mode := range []faults.Mode{faults.NaN, faults.Inf, faults.Blowup} {
		t.Run(mode.String(), func(t *testing.T) {
			ref := gateAsyncServer(t, absentFedAvg{target: target}, async, nil)
			ref.Run(nil)

			srv := gateAsyncServer(t, corruptingFedAvg{target: target, mode: mode}, async, func(c *Config) {
				c.MaxDeltaNorm = 50
			})
			sampledTarget, rejected := 0, 0
			srv.Run(func(st AsyncRoundStats) {
				for _, id := range st.Sampled {
					if id == target {
						sampledTarget++
					}
				}
				for _, id := range st.Rejected {
					if id != target {
						t.Fatalf("window %d rejected honest client %d", st.Round, id)
					}
					rejected++
				}
			})
			if sampledTarget == 0 || rejected != sampledTarget {
				t.Fatalf("target folded %d times, rejected %d; want equal and > 0", sampledTarget, rejected)
			}
			requireBitIdentical(t, ref.Global, srv.Global, mode.String())
		})
	}
}

// With every update corrupted and the gate armed, the global model must
// stay bit-frozen at its initialization: nothing poisoned ever lands.
func TestSyncAllCorruptFreezesGlobal(t *testing.T) {
	m := &faults.Model{Seed: 5, CorruptP: 1, CorruptMode: faults.NaN}
	srv := gateServer(t, FedAvg{}, func(c *Config) {
		c.Faults = m
		c.MaxDeltaNorm = math.Inf(1) // non-finite check only
	})
	before := srv.GlobalNet().Snapshot()
	srv.Run(func(st RoundStats) {
		if len(st.Rejected) != len(st.Sampled) {
			t.Fatalf("round %d: rejected %v, sampled %v; want all rejected",
				st.Round, st.Rejected, st.Sampled)
		}
		if st.BytesWasted != st.BytesUp {
			t.Fatalf("round %d: wasted %d != uploaded %d", st.Round, st.BytesWasted, st.BytesUp)
		}
	})
	requireBitIdentical(t, before, srv.Global, "all-corrupt freeze")
}

// Engine/fault-model compatibility is enforced at construction.
func TestFaultModelEngineRequirements(t *testing.T) {
	perDevice := fixtureData(24, 3)
	clients, err := BuildPopulation(perDevice, []int{3, 3}, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Rounds: 2, ClientsPerRound: 4, BatchSize: 4, LocalEpochs: 1,
		LR: 0.2, Seed: 11, Workers: 1,
	}
	crash, err := faults.ParseSpec("crash:0.5", 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = crash
	if _, err := NewServer(cfg, fixtureBuilder(5), nn.SoftmaxCrossEntropy{}, FedAvg{}, clients); err == nil {
		t.Fatal("sync server accepted a crash fault model")
	}
	if _, err := NewAsyncServer(cfg, fixtureBuilder(5), nn.SoftmaxCrossEntropy{}, FedAvg{}, clients, AsyncConfig{}); err == nil {
		t.Fatal("async server accepted crash faults without a timeout")
	}
	if _, err := NewAsyncServer(cfg, fixtureBuilder(5), nn.SoftmaxCrossEntropy{}, FedAvg{}, clients,
		AsyncConfig{Timeout: 5}); err != nil {
		t.Fatalf("async server rejected crash faults with a timeout: %v", err)
	}
	// Corruption-only models run on the sync engine.
	cfg.Faults = &faults.Model{Seed: 1, CorruptP: 0.5, CorruptMode: faults.Mix}
	if _, err := NewServer(cfg, fixtureBuilder(5), nn.SoftmaxCrossEntropy{}, FedAvg{}, clients); err != nil {
		t.Fatalf("sync server rejected a corruption-only model: %v", err)
	}
}

// A full chaos configuration — crash, transient failure, corruption, churn,
// timeouts with backoff, the staleness drop rule, and the gate — must be
// bit-reproducible run-to-run: weights and the entire stats stream,
// including every fault counter.
func TestAsyncChaosBitReproducible(t *testing.T) {
	mk := func() (*AsyncServer, []AsyncRoundStats) {
		m, err := faults.ParseSpec("crash:0.25+flaky:0.3,1+corrupt:0.3,mix+churn:30,0.5", 99)
		if err != nil {
			t.Fatal(err)
		}
		srv := gateAsyncServer(t, FedAvg{}, AsyncConfig{
			Staleness:    PolynomialStaleness{Alpha: 0.5},
			Latency:      simclock.Uniform{Lo: 0.5, Hi: 2, Seed: 17},
			Concurrency:  8,
			Buffer:       4,
			Timeout:      5,
			RetryBackoff: 0.5,
			MaxAttempts:  2,
			MaxStaleness: 2,
		}, func(c *Config) {
			c.Faults = m
			c.MaxDeltaNorm = 50
		})
		var stats []AsyncRoundStats
		srv.Run(func(s AsyncRoundStats) { stats = append(stats, s) })
		return srv, stats
	}
	a, sa := mk()
	b, sb := mk()
	requireBitIdentical(t, a.Global, b.Global, "chaos reproducibility")
	if !reflect.DeepEqual(sa, sb) {
		t.Fatal("chaos stats streams diverged between identical runs")
	}
	var reissues, failed, rejected, deferred, staleDropped int
	var wasted int64
	for _, st := range sa {
		reissues += st.Reissues
		failed += st.Failed
		rejected += len(st.Rejected)
		deferred += st.Deferred
		staleDropped += st.StaleDropped
		wasted += st.BytesWasted
	}
	if reissues == 0 || failed == 0 || rejected == 0 || deferred == 0 {
		t.Fatalf("chaos config did not exercise all fault paths: reissues=%d failed=%d rejected=%d deferred=%d staleDropped=%d",
			reissues, failed, rejected, deferred, staleDropped)
	}
	if wasted == 0 {
		t.Fatal("chaos run wasted no bytes despite rejections")
	}
	// Every folded window still fills completely.
	for _, st := range sa {
		if len(st.Sampled) != 4 {
			t.Fatalf("window %d folded %d results, want 4", st.Round, len(st.Sampled))
		}
	}
}

// The MaxStaleness drop rule's twin-run contract: against the no-drop
// server, the sampling/dropout RNG streams, the virtual clock, and the
// byte totals stay pinned — only the fold outcomes change, with dropped
// uploads accounted as wasted and their training skipped.
func TestAsyncMaxStalenessTwinRun(t *testing.T) {
	base := AsyncConfig{
		Staleness:   PolynomialStaleness{Alpha: 0.5},
		Latency:     simclock.StragglerTail{Lo: 0.5, Hi: 2, TailProb: 0.3, TailFactor: 8, Seed: 17},
		Concurrency: 8,
		Buffer:      4,
	}
	drop := base
	drop.MaxStaleness = 1

	run := func(async AsyncConfig) []AsyncRoundStats {
		srv := gateAsyncServer(t, FedAvg{}, async, func(c *Config) { c.ClientDropout = 0.2 })
		var stats []AsyncRoundStats
		srv.Run(func(s AsyncRoundStats) { stats = append(stats, s) })
		return stats
	}
	plain := run(base)
	dropped := run(drop)

	totalStale := 0
	for i := range plain {
		p, d := plain[i], dropped[i]
		if !reflect.DeepEqual(p.Sampled, d.Sampled) || !reflect.DeepEqual(p.Dropped, d.Dropped) {
			t.Fatalf("window %d: sampling streams diverged under the drop rule", i)
		}
		if p.VirtualTime != d.VirtualTime {
			t.Fatalf("window %d: virtual clocks diverged: %g vs %g", i, p.VirtualTime, d.VirtualTime)
		}
		if p.BytesDown != d.BytesDown || p.BytesUp != d.BytesUp {
			t.Fatalf("window %d: byte totals diverged", i)
		}
		if d.TotalEpochs != p.TotalEpochs-d.StaleDropped {
			t.Fatalf("window %d: dropped results still paid training: %d vs %d (dropped %d)",
				i, d.TotalEpochs, p.TotalEpochs, d.StaleDropped)
		}
		if wb := d.BytesUp / 4; d.StaleDropped > 0 && d.BytesWasted != int64(d.StaleDropped)*wb {
			t.Fatalf("window %d: wasted %d bytes for %d dropped results (wb %d)",
				i, d.BytesWasted, d.StaleDropped, wb)
		}
		totalStale += d.StaleDropped
	}
	if totalStale == 0 {
		t.Fatal("drop rule never fired; straggler config too tame")
	}
}

// Timeout reissue without any fault model: straggler latencies overrun the
// deadline, the job is redispatched with exponential backoff, and the whole
// schedule is bit-reproducible.
func TestAsyncTimeoutReissueDeterministic(t *testing.T) {
	run := func() (*AsyncServer, []AsyncRoundStats) {
		srv := gateAsyncServer(t, FedAvg{}, AsyncConfig{
			Staleness:    PolynomialStaleness{Alpha: 0.5},
			Latency:      simclock.StragglerTail{Lo: 0.5, Hi: 2, TailProb: 0.3, TailFactor: 8, Seed: 17},
			Concurrency:  8,
			Buffer:       4,
			Timeout:      3,
			RetryBackoff: 0.25,
			MaxAttempts:  3,
		}, nil)
		var stats []AsyncRoundStats
		srv.Run(func(s AsyncRoundStats) { stats = append(stats, s) })
		return srv, stats
	}
	a, sa := run()
	b, sb := run()
	requireBitIdentical(t, a.Global, b.Global, "timeout reissue reproducibility")
	if !reflect.DeepEqual(sa, sb) {
		t.Fatal("timeout stats streams diverged between identical runs")
	}
	reissues := 0
	for _, st := range sa {
		reissues += st.Reissues
		if len(st.Sampled) != 4 {
			t.Fatalf("window %d folded %d results, want 4", st.Round, len(st.Sampled))
		}
		if st.Rejected != nil || st.StaleDropped != 0 {
			t.Fatalf("window %d: gate/drop fired without faults: %+v", st.Round, st)
		}
	}
	if reissues == 0 {
		t.Fatal("straggler tail never overran the timeout; config too tame")
	}
}
