package fl

import (
	"testing"
	"testing/quick"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/tensor"
)

// randResults builds k client results with randomized weights (params and a
// state tensor, exercising both fold paths) and sample counts in [1, 32].
func randResults(r *frand.RNG, k, dim int) []ClientResult {
	out := make([]ClientResult, k)
	for i := range out {
		out[i] = ClientResult{
			ClientID:   i,
			NumSamples: r.Intn(32) + 1,
			Weights: nn.Weights{
				Params: []*tensor.Tensor{tensor.Randn(r, 1, dim), tensor.Randn(r, 1, 3)},
				States: []*tensor.Tensor{tensor.Randn(r, 1, 2)},
			},
			TrainLoss: r.Float64(),
		}
	}
	return out
}

// streamAggregate folds results through `shards` accumulators round-robin
// and merges them tree-style — the server's streaming path, minus the
// goroutines.
func streamAggregate(sa StreamingAggregator, global nn.Weights, results []ClientResult, shards int, cfg Config) nn.Weights {
	accs := make([]Accumulator, shards)
	for i := range accs {
		accs[i] = sa.NewAccumulator(global, cfg)
	}
	for i, r := range results {
		accs[i%shards].Accumulate(r)
	}
	return mergeShards(accs).Finalize()
}

// Property: streaming FedAvg aggregation is numerically equivalent (within
// float32 tolerance) to the barrier-path weightedAverage, for randomized
// client counts, sample sizes, weight values, and shard (worker) counts.
func TestStreamingFedAvgMatchesWeightedAverage(t *testing.T) {
	f := func(seed uint16, kRaw, dimRaw, shardsRaw uint8) bool {
		r := frand.New(uint64(seed) + 11)
		k := int(kRaw)%24 + 1
		dim := int(dimRaw)%16 + 1
		shards := int(shardsRaw)%8 + 1
		results := randResults(r, k, dim)
		global := results[0].Weights.Zero()

		want := weightedAverage(results)
		got := streamAggregate(FedAvg{}, global, results, shards, Default())

		for i := range want.Params {
			if !got.Params[i].AllClose(want.Params[i], 1e-4) {
				return false
			}
		}
		for i := range want.States {
			if !got.States[i].AllClose(want.States[i], 1e-4) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the streamed aggregate is insensitive to the shard split — any
// two worker counts agree far below float32 precision. (Float64 shard sums
// bound the split's effect to double-precision rounding; exact bit equality
// is not guaranteed because float64 addition is still non-associative.)
func TestStreamingShardInvariance(t *testing.T) {
	f := func(seed uint16, kRaw, s1Raw, s2Raw uint8) bool {
		r := frand.New(uint64(seed) + 23)
		k := int(kRaw)%24 + 1
		s1 := int(s1Raw)%8 + 1
		s2 := int(s2Raw)%8 + 1
		results := randResults(r, k, 9)
		global := results[0].Weights.Zero()
		a := streamAggregate(FedAvg{}, global, results, s1, Default())
		b := streamAggregate(FedAvg{}, global, results, s2, Default())
		for i := range a.Params {
			if !a.Params[i].AllClose(b.Params[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// End-to-end: a streaming server run matches a barrier (DisableStreaming)
// run of the same config within float32 tolerance, with parallel workers.
func TestStreamingServerMatchesBarrier(t *testing.T) {
	stream := fixtureServer(t, FedAvg{}, 4)
	barrier := fixtureServer(t, FedAvg{}, 4)
	barrier.Cfg.DisableStreaming = true
	stream.Run(nil)
	barrier.Run(nil)
	for i := range stream.Global.Params {
		if !stream.Global.Params[i].AllClose(barrier.Global.Params[i], 1e-5) {
			t.Fatalf("param %d diverged between streaming and barrier paths", i)
		}
	}
	for i := range stream.Global.States {
		if !stream.Global.States[i].AllClose(barrier.Global.States[i], 1e-5) {
			t.Fatalf("state %d diverged between streaming and barrier paths", i)
		}
	}
}

// Round stats assembled from streamed (weight-stripped) results must still
// carry all the scalar accounting. (The stripping itself is internal to
// RunRound and not observable here.)
func TestStreamingRoundStatsIntact(t *testing.T) {
	srv := fixtureServer(t, FedAvg{}, 3)
	stats := srv.RunRound(0)
	if len(stats.Sampled) != srv.Cfg.ClientsPerRound {
		t.Fatalf("sampled %d clients, want %d", len(stats.Sampled), srv.Cfg.ClientsPerRound)
	}
	if stats.MeanLoss <= 0 || stats.MeanInit <= 0 {
		t.Fatalf("losses not populated: %+v", stats)
	}
	if stats.BytesUp <= 0 || stats.BytesDown <= 0 {
		t.Fatalf("communication accounting not populated: %+v", stats)
	}
}

// An accumulator that never saw a result must finalize to the unchanged
// global weights (the all-dropped-round contract).
func TestEmptyAccumulatorFinalizesToGlobal(t *testing.T) {
	global := nn.Weights{Params: []*tensor.Tensor{tensor.Full(3, 4)}}
	acc := FedAvg{}.NewAccumulator(global, Default())
	out := acc.Finalize()
	if !out.Params[0].AllClose(global.Params[0], 0) {
		t.Fatal("empty accumulator did not return global weights")
	}
}

// FedProx shares FedAvg's fold; both must expose the streaming capability,
// while result-hungry strategies must not (they keep the barrier fallback).
func TestStreamingCapabilityMatrix(t *testing.T) {
	for _, s := range []Strategy{FedAvg{}, &FedProx{Mu: 0.1}} {
		if _, ok := s.(StreamingAggregator); !ok {
			t.Fatalf("%s should stream", s.Name())
		}
	}
	for _, s := range []Strategy{&QFedAvg{Q: 1}, &Scaffold{}} {
		if _, ok := s.(StreamingAggregator); ok {
			t.Fatalf("%s must keep the barrier path", s.Name())
		}
	}
}

// Race coverage: parallel workers with dropout exercise the shard-merge
// path, the scratch-buffer pool, and per-worker accumulators concurrently.
// Run with -race in CI.
func TestRunRoundParallelDropoutRace(t *testing.T) {
	srv := fixtureServer(t, FedAvg{}, 4)
	srv.Cfg.ClientDropout = 0.3
	var sampled, dropped int
	srv.Run(func(s RoundStats) {
		sampled += len(s.Sampled)
		dropped += len(s.Dropped)
	})
	if sampled+dropped != srv.Cfg.Rounds*srv.Cfg.ClientsPerRound {
		t.Fatalf("participation accounting broke under streaming: %d+%d", sampled, dropped)
	}
	for _, p := range srv.Global.Params {
		if p.HasNaN() {
			t.Fatal("NaN weights after parallel streaming rounds")
		}
	}
}

// The scratch pool must hand back distinct buffers while in use and recycle
// returned ones.
func TestWeightsPoolRecycles(t *testing.T) {
	like := nn.Weights{Params: []*tensor.Tensor{tensor.Full(1, 8)}}
	var p weightsPool
	a := p.get(like)
	b := p.get(like)
	if &a.Params[0].Data()[0] == &b.Params[0].Data()[0] {
		t.Fatal("pool handed out the same buffer twice while both are live")
	}
	p.put(a)
	c := p.get(like)
	if &a.Params[0].Data()[0] != &c.Params[0].Data()[0] {
		t.Fatal("pool did not recycle the returned buffer")
	}
}
