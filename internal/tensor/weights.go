package tensor

import (
	"fmt"
	"sync/atomic"
)

// Weight-stationary packed panels ---------------------------------------------
//
// A PackedWeights handle caches the backend-specific forms of one frozen
// matmul's weight operand, so packing and quantization run once per WEIGHT
// VERSION instead of once per call. The frozen inference ops (nn.Freeze)
// own a handle per fused matmul and refresh it when they re-fold; serving
// replicas share handles across replicas and batches through nn's
// version-keyed panel cache, so in steady state the only per-batch work on
// the weight side is a pointer read.
//
// Two orientations exist because the frozen path puts weights on both sides
// of its matmuls:
//
//   - weights-as-B (PackB): the dense layer computes x @ W, so W is the
//     packable right operand. The float form is exactly the packed GEBP
//     backend's panel-major layout — caching it makes the float packed
//     backend weight-stationary too (bit-identical to per-call packing, the
//     panels are the same bytes). The int8 form is the same panel layout
//     quantized with one symmetric scale per output COLUMN.
//   - weights-as-A (PackA): the conv layers compute W @ col, so W is the
//     left operand, already row-major contiguous — the float kernels need
//     no repacking (the per-call pack cost there is on the activation side).
//     Only the int8 form is cached: rows quantized with one symmetric scale
//     per output ROW (= per output channel).
//
// Forms are built lazily per the active backend at refresh time; a dispatch
// that finds its form missing (the backend changed after the last refresh)
// falls back to the per-call kernels on the CALLER's float weights, so a
// stale handle can cost performance but never correctness. The handle
// deliberately retains no reference to the source weights: a handle shared
// across serving replicas must not alias one replica's fold buffer, which
// that replica overwrites on its next version — every cached form is a
// copy, immutable for the handle's lifetime.

// PackedWeights is the version-stationary pack/quantization cache for one
// weight matrix. The zero value is ready; Refresh* before first use. Not
// safe for concurrent mutation — owners serialize Refresh calls (nn's panel
// cache packs under a lock, private handles refresh from the single
// goroutine that freezes).
type PackedWeights struct {
	asA  bool
	m, k int // weights-as-A dims [m,k]; as-B uses k,n
	n    int

	fpanels []float32 // float panel-major B panels (as-B only)
	qpanels []uint64  // int8 as-B form: biased lane-packed panels (int8.go layout)
	qrows   []uint8   // int8 as-A form: biased row-major [m,k]
	// qcorr holds the precomputed unbias corrections per output channel:
	// as-B per column, k·16384 − 128·Σw′ (the constant rides with the
	// stationary side); as-A per row, −128·Σw′ (the constant rides with the
	// per-call activation corrections instead).
	qcorr  []int64
	scales []float32 // per-output-channel dequant scales: as-A len m, as-B len n

	hasFloat, hasInt8 bool
}

// weightPacks counts every form actually packed/quantized into a
// PackedWeights — the "packs happen per installed version, not per batch"
// accounting the serving panel-cache tests assert on.
var weightPacks atomic.Uint64

// WeightPackCount returns the process-wide number of weight-form packs
// (float panel packs + int8 quantizations) performed so far.
func WeightPackCount() uint64 { return weightPacks.Load() }

// Reset invalidates all cached forms (keeping their capacity) so the handle
// can be repacked for a new weight version.
func (pw *PackedWeights) Reset() {
	pw.hasFloat, pw.hasInt8 = false, false
}

// HasFloat reports whether the float panel form is cached (as-B only).
func (pw *PackedWeights) HasFloat() bool { return pw.hasFloat }

// HasInt8 reports whether the int8 quantized form is cached.
func (pw *PackedWeights) HasInt8() bool { return pw.hasInt8 }

// Dims returns the weight matrix dimensions as the matmul sees them:
// weights-as-A → (m, k), weights-as-B → (k, n).
func (pw *PackedWeights) Dims() (int, int) {
	if pw.asA {
		return pw.m, pw.k
	}
	return pw.k, pw.n
}

// needForms maps the active backend onto the forms worth building now.
// Serial never touches a cached form; auto and packed use float panels;
// int8 uses the quantized form. Building only what the current backend can
// consume keeps the refold pass from paying for kernels that will not run.
func needForms(asA bool) (wantFloat, wantInt8 bool) {
	switch ActiveBackend() {
	case BackendInt8:
		return false, true
	case BackendSerial:
		return false, false
	default: // auto, packed
		return !asA, false
	}
}

// RefreshB (re)binds the handle to the weights-as-B matrix w[k,n] and packs
// the forms the active backend consumes. w is read during the call only —
// the handle keeps copies, never the slice.
func (pw *PackedWeights) RefreshB(w []float32, k, n int) {
	if len(w) < k*n {
		panic(fmt.Sprintf("tensor: RefreshB weights %d short of %dx%d", len(w), k, n))
	}
	pw.asA, pw.k, pw.n, pw.m = false, k, n, 0
	pw.hasFloat, pw.hasInt8 = false, false
	wantFloat, wantInt8 := needForms(false)
	if wantFloat {
		pw.packFloatB(w)
	}
	if wantInt8 {
		pw.quantizeB(w)
	}
}

// RefreshA (re)binds the handle to the weights-as-A matrix w[m,k] and packs
// the forms the active backend consumes.
func (pw *PackedWeights) RefreshA(w []float32, m, k int) {
	if len(w) < m*k {
		panic(fmt.Sprintf("tensor: RefreshA weights %d short of %dx%d", len(w), m, k))
	}
	pw.asA, pw.m, pw.k, pw.n = true, m, k, 0
	pw.hasFloat, pw.hasInt8 = false, false
	if _, wantInt8 := needForms(true); wantInt8 {
		pw.quantizeA(w)
	}
}

// packFloatB builds the panel-major float form — byte-identical to what the
// per-call packed backend would build from the same weights, so routing
// through the cache never changes a result bit.
func (pw *PackedWeights) packFloatB(w []float32) {
	np := (pw.n + packNR - 1) / packNR
	size := np * pw.k * packNR
	if cap(pw.fpanels) < size {
		pw.fpanels = make([]float32, size)
	}
	pw.fpanels = pw.fpanels[:size]
	packB(pw.fpanels, w, pw.k, pw.n)
	pw.hasFloat = true
	weightPacks.Add(1)
}

// quantizeB builds the int8 panel form of the as-B weights with one
// symmetric scale per output column: scales[j] = maxabs(W[:,j])/127, values
// round(w/scale) stored biased in the SWAR lane layout (int8.go) with the
// per-column unbias correction k·16384 − 128·Σw′ precomputed into qcorr.
// Zero columns quantize to all-zero with scale 0 (the dequant multiply then
// reproduces the exact 0).
func (pw *PackedWeights) quantizeB(src []float32) {
	k, n := pw.k, pw.n
	if k > int8MaxK {
		panic(fmt.Sprintf("tensor: int8 reduction depth %d exceeds %d", k, int8MaxK))
	}
	np := (n + packNR - 1) / packNR
	size := np * k * 2
	if cap(pw.qpanels) < size {
		pw.qpanels = make([]uint64, size)
	}
	pw.qpanels = pw.qpanels[:size]
	if cap(pw.qcorr) < n {
		pw.qcorr = make([]int64, n)
	}
	pw.qcorr = pw.qcorr[:n]
	if cap(pw.scales) < n {
		pw.scales = make([]float32, n)
	}
	pw.scales = pw.scales[:n]
	kbase := int64(k) * 128 * 128
	// Per-column maxabs, then a fused quantize+pack pass in panel order.
	inv := make([]float32, 0, packNR)
	for p := 0; p < np; p++ {
		j0 := p * packNR
		w := min(packNR, n-j0)
		inv = inv[:0]
		for j := j0; j < j0+w; j++ {
			var ma float32
			for kk := 0; kk < k; kk++ {
				if v := abs32(src[kk*n+j]); v > ma {
					ma = v
				}
			}
			pw.scales[j] = ma / 127
			inv = append(inv, quantInv(ma))
		}
		dst := pw.qpanels[p*k*2 : (p+1)*k*2]
		var csum [packNR]int64
		for j := range csum {
			csum[j] = 0
		}
		for kk := 0; kk < k; kk++ {
			var lane [packNR]uint64
			for j := 0; j < w; j++ {
				v := quantBiased(src[kk*n+j0+j], inv[j])
				lane[j] = uint64(v)
				csum[j] += int64(v)
			}
			dst[kk*2] = lane[0] | lane[1]<<32
			dst[kk*2+1] = lane[2] | lane[3]<<32
		}
		for j := 0; j < w; j++ {
			pw.qcorr[j0+j] = kbase - 128*csum[j]
		}
	}
	pw.hasInt8 = true
	weightPacks.Add(1)
}

// quantizeA builds the int8 row form of the as-A weights with one symmetric
// scale per output row (= per output channel for the conv fold), stored
// biased with the per-row unbias correction −128·Σw′ precomputed into qcorr.
func (pw *PackedWeights) quantizeA(w []float32) {
	m, k := pw.m, pw.k
	if k > int8MaxK {
		panic(fmt.Sprintf("tensor: int8 reduction depth %d exceeds %d", k, int8MaxK))
	}
	if cap(pw.qrows) < m*k {
		pw.qrows = make([]uint8, m*k)
	}
	pw.qrows = pw.qrows[:m*k]
	if cap(pw.qcorr) < m {
		pw.qcorr = make([]int64, m)
	}
	pw.qcorr = pw.qcorr[:m]
	if cap(pw.scales) < m {
		pw.scales = make([]float32, m)
	}
	pw.scales = pw.scales[:m]
	for i := 0; i < m; i++ {
		row := w[i*k : (i+1)*k]
		ma := maxAbsBits(row)
		pw.scales[i] = ma / 127
		inv := quantInv(ma)
		qrow := pw.qrows[i*k : (i+1)*k]
		var sum int64
		for j, v := range row {
			b := quantBiased(v, inv)
			qrow[j] = b
			sum += int64(b)
		}
		pw.qcorr[i] = -128 * sum
	}
	pw.hasInt8 = true
	weightPacks.Add(1)
}

// Weight-stationary fused entry points ----------------------------------------
//
// These are the tolerance-tier entries the frozen ops call when they hold a
// PackedWeights handle. They dispatch like the raw-slice entries, with two
// extra fast paths: BackendInt8 runs the integer microkernel against the
// handle's quantized form, and the packed float backend reuses the handle's
// panels instead of re-packing per call.

// MatMulWBSlicesPEp computes out[m,n] (+)= a[m,k] @ W for a weights-as-B
// handle (k, n from the handle), ep fused per completed row chunk — the
// frozen dense entry. w is the caller's own float weights [k,n], used only
// when the handle lacks the active backend's form (never when the int8 or
// cached-panel fast path runs).
func MatMulWBSlicesPEp(par int, out, a, w []float32, pw *PackedWeights, m int, accum bool, ep RowEpilogue) {
	k, n := pw.k, pw.n
	if ActiveBackend() == BackendInt8 && pw.hasInt8 {
		matMulInt8B(par, out, a, pw, m, accum, ep)
		return
	}
	if usePacked(m, k, n) && pw.hasFloat {
		runPackedPanels(par, out, a, pw.fpanels, m, k, n, accum, ep)
		return
	}
	if accum {
		MatMulAccSlicesPEp(par, out, a, w, m, k, n, ep)
		return
	}
	MatMulSlicesPEp(par, out, a, w, m, k, n, ep)
}

// MatMulWASlicesPEp computes out[rows,n] (+)= W[rowOff:rowOff+rows] @ b for
// a weights-as-A handle — the frozen conv entry. rowOff/rows select the
// group's output-channel rows within the handle (grouped convolutions pack
// all groups into one handle); w is the caller's own float rows for that
// window, ALREADY offset (the fallback operand).
func MatMulWASlicesPEp(par int, out, w []float32, pw *PackedWeights, rowOff, rows int, b []float32, n int, accum bool, ep RowEpilogue) {
	k := pw.k
	if ActiveBackend() == BackendInt8 && pw.hasInt8 {
		matMulInt8A(par, out, pw, rowOff, rows, b, n, accum, ep)
		return
	}
	if accum {
		MatMulAccSlicesPEp(par, out, w, b, rows, k, n, ep)
		return
	}
	MatMulSlicesPEp(par, out, w, b, rows, k, n, ep)
}
