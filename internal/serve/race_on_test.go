//go:build race

package serve

// raceEnabled reports a -race build: sync.Pool intentionally drops items at
// random under the race detector, so steady-state allocation counts are
// nondeterministic.
const raceEnabled = true
