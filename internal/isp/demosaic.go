package isp

import "math"

// DemosaicAlg selects the demosaicing algorithm (Table 3 row "Demosaicing").
type DemosaicAlg int

// Demosaic variants. PPG-style gradient-corrected interpolation is the
// paper's baseline; pixel binning is Option 1; AHD-style edge-directed
// interpolation is Option 2.
const (
	DemosaicPPG DemosaicAlg = iota
	DemosaicBinning
	DemosaicAHD
)

// String implements fmt.Stringer.
func (a DemosaicAlg) String() string {
	switch a {
	case DemosaicPPG:
		return "ppg"
	case DemosaicBinning:
		return "binning"
	case DemosaicAHD:
		return "ahd"
	}
	return "demosaic?"
}

// Demosaic reconstructs a full-color image from a Bayer RAW frame.
func Demosaic(r *RAW, alg DemosaicAlg) *Image {
	switch alg {
	case DemosaicBinning:
		return demosaicBinning(r)
	case DemosaicAHD:
		return demosaicAHD(r)
	default:
		return demosaicPPG(r)
	}
}

// reflect mirrors an out-of-range coordinate back into [0, n). Mirror
// reflection (without repeating the edge sample) preserves CFA parity for
// even-sized frames, which keeps demosaicing correct at the borders.
func reflect(v, n int) int {
	for v < 0 || v >= n {
		if v < 0 {
			v = -v
		}
		if v >= n {
			v = 2*n - 2 - v
		}
	}
	return v
}

// rawAt reads the RAW with mirror-reflected borders.
func rawAt(r *RAW, x, y int) float64 {
	return r.At(reflect(x, r.W), reflect(y, r.H))
}

// neighborAvg averages the CFA samples of channel c in the (2k+1)² window
// centred at (x, y), excluding the centre unless it is channel c.
func neighborAvg(r *RAW, x, y, c, k int) float64 {
	var sum float64
	n := 0
	for dy := -k; dy <= k; dy++ {
		for dx := -k; dx <= k; dx++ {
			xx, yy := reflect(x+dx, r.W), reflect(y+dy, r.H)
			if cfaColor(r.Pattern, xx, yy) == c {
				sum += r.At(xx, yy)
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// demosaicBilinear is the plain per-channel neighborhood average used as the
// base layer of the fancier variants and exported for RAW-mode training
// (Section 3.3 trains on demosaic-only data).
func demosaicBilinear(r *RAW) *Image {
	im := NewImage(r.W, r.H)
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			site := cfaColor(r.Pattern, x, y)
			for c := 0; c < 3; c++ {
				if c == site {
					im.Set(x, y, c, r.At(x, y))
				} else {
					im.Set(x, y, c, neighborAvg(r, x, y, c, 1))
				}
			}
		}
	}
	return im
}

// DemosaicBilinearOnly exposes the minimal bilinear reconstruction, used for
// the paper's RAW-data experiments where the rest of the ISP is bypassed.
func DemosaicBilinearOnly(r *RAW) *Image { return demosaicBilinear(r) }

// demosaicPPG approximates Pixel Grouping: bilinear interpolation with a
// same-channel Laplacian gradient correction (Malvar-style), which is what
// PPG's pattern classification converges to on smooth regions.
func demosaicPPG(r *RAW) *Image {
	im := demosaicBilinear(r)
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			site := cfaColor(r.Pattern, x, y)
			center := r.At(x, y)
			// Correct the interpolated green at R/B sites using the local
			// curvature of the site's own channel.
			if site != 1 {
				lap := 4*center - rawAt(r, x-2, y) - rawAt(r, x+2, y) - rawAt(r, x, y-2) - rawAt(r, x, y+2)
				g := im.At(x, y, 1) + lap/8
				im.Set(x, y, 1, clamp01(g))
			}
		}
	}
	return im
}

// demosaicAHD approximates Adaptive Homogeneity-Directed demosaicing: green
// is interpolated along the direction of least gradient, then chroma is
// reconstructed from bilinear color differences.
func demosaicAHD(r *RAW) *Image {
	im := NewImage(r.W, r.H)
	// Pass 1: green plane, edge-directed at non-green sites.
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			if cfaColor(r.Pattern, x, y) == 1 {
				im.Set(x, y, 1, r.At(x, y))
				continue
			}
			gl, gr := rawAt(r, x-1, y), rawAt(r, x+1, y)
			gu, gd := rawAt(r, x, y-1), rawAt(r, x, y+1)
			center := r.At(x, y)
			gradH := math.Abs(gl-gr) + math.Abs(2*center-rawAt(r, x-2, y)-rawAt(r, x+2, y))
			gradV := math.Abs(gu-gd) + math.Abs(2*center-rawAt(r, x, y-2)-rawAt(r, x, y+2))
			var g float64
			switch {
			case gradH < gradV:
				g = (gl + gr) / 2
			case gradV < gradH:
				g = (gu + gd) / 2
			default:
				g = (gl + gr + gu + gd) / 4
			}
			im.Set(x, y, 1, clamp01(g))
		}
	}
	// Pass 2: chroma via color-difference interpolation against green.
	for y := 0; y < r.H; y++ {
		for x := 0; x < r.W; x++ {
			site := cfaColor(r.Pattern, x, y)
			for _, c := range []int{0, 2} {
				if c == site {
					im.Set(x, y, c, r.At(x, y))
					continue
				}
				// Average the color difference (C - G) over CFA sites of
				// channel c in the 3x3 neighborhood.
				var sum float64
				n := 0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						xx := reflect(x+dx, r.W)
						yy := reflect(y+dy, r.H)
						if cfaColor(r.Pattern, xx, yy) == c {
							sum += r.At(xx, yy) - im.At(xx, yy, 1)
							n++
						}
					}
				}
				if n > 0 {
					im.Set(x, y, c, clamp01(im.At(x, y, 1)+sum/float64(n)))
				}
			}
		}
	}
	return im
}

// demosaicBinning merges each 2x2 CFA tile into one RGB superpixel at half
// resolution and bilinearly upsamples back, trading detail for noise — the
// behaviour of sensor pixel binning.
func demosaicBinning(r *RAW) *Image {
	hw, hh := (r.W+1)/2, (r.H+1)/2
	small := NewImage(hw, hh)
	for ty := 0; ty < hh; ty++ {
		for tx := 0; tx < hw; tx++ {
			var sums [3]float64
			var counts [3]int
			for dy := 0; dy < 2; dy++ {
				for dx := 0; dx < 2; dx++ {
					x, y := tx*2+dx, ty*2+dy
					if x >= r.W || y >= r.H {
						continue
					}
					c := cfaColor(r.Pattern, x, y)
					sums[c] += r.At(x, y)
					counts[c]++
				}
			}
			for c := 0; c < 3; c++ {
				if counts[c] > 0 {
					small.Set(tx, ty, c, sums[c]/float64(counts[c]))
				}
			}
		}
	}
	return small.Resize(r.W, r.H)
}
