package experiments

import (
	"fmt"

	"heteroswitch/internal/core"
	"heteroswitch/internal/dataset"
	"heteroswitch/internal/device"
	"heteroswitch/internal/fl"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/metrics"
	"heteroswitch/internal/scene"
)

// UnseenResult extends the paper's domain-generalization evaluation with
// TRULY unseen devices: random camera+ISP profiles that never contributed a
// single training sample (the paper's footnote: >500 new phone models ship
// per year). It compares FedAvg and HeteroSwitch on seen-device accuracy vs
// unseen-device accuracy.
type UnseenResult struct {
	UnseenNames []string
	Rows        []struct {
		Method    string
		SeenAvg   float64
		UnseenAvg float64
		UnseenMin float64
	}
}

// String renders the comparison.
func (r *UnseenResult) String() string {
	t := &Table{
		Title:  fmt.Sprintf("Unseen-device DG — %d random devices never in training", len(r.UnseenNames)),
		Header: []string{"method", "seen avg", "unseen avg", "unseen worst"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Method, pct(row.SeenAvg), pct(row.UnseenAvg), pct(row.UnseenMin))
	}
	return t.String()
}

// UnseenDG trains on the nine Table-1 devices and evaluates on freshly drawn
// random device profiles.
func UnseenDG(opts Options) (*UnseenResult, error) {
	dd, err := BuildDeviceData(opts, opts.scaled(10), opts.scaled(4), dataset.ModeProcessed)
	if err != nil {
		return nil, err
	}
	// Unseen devices capture the SAME test scenes.
	gen := scene.NewImageNet12(64)
	rng := frand.New(opts.Seed)
	testScenes := gen.RenderSet(opts.scaled(4), rng.SplitNamed("test-scenes"))
	const numUnseen = 3
	unseenTests := make([]*dataset.Dataset, numUnseen)
	res := &UnseenResult{}
	urng := frand.New(opts.Seed ^ 0x0ddba11)
	for i := 0; i < numUnseen; i++ {
		prof := device.Random(urng, fmt.Sprintf("unseen-%d", i))
		res.UnseenNames = append(res.UnseenNames, prof.Name)
		ds, err := dataset.Capture(testScenes, prof, 100+i, dataset.ModeProcessed, opts.OutRes, dd.Classes, urng.Split())
		if err != nil {
			return nil, err
		}
		unseenTests[i] = ds
	}

	cfg := fl.Config{
		Rounds:           opts.scaled(80),
		ClientsPerRound:  12,
		BatchSize:        10,
		LocalEpochs:      1,
		LR:               0.1,
		Seed:             opts.Seed,
		Workers:          opts.Workers,
		DisableStreaming: opts.DisableStreaming,
		IntraOp:          opts.IntraOp,
	}
	counts := MarketShareCounts(dd, opts.scaled(60))
	builder := SimpleCNNBuilder(opts.Seed, dd.Classes)

	for _, strat := range []fl.Strategy{fl.FedAvg{}, core.New()} {
		srv, err := RunFL(opts, strat, dd, counts, cfg, builder)
		if err != nil {
			return nil, err
		}
		net := srv.GlobalNet()
		seen := metrics.Values(PerDeviceAccuracies(net, dd, 16))
		var unseen []float64
		for _, ds := range unseenTests {
			unseen = append(unseen, metrics.Accuracy(net, ds, 16))
		}
		res.Rows = append(res.Rows, struct {
			Method    string
			SeenAvg   float64
			UnseenAvg float64
			UnseenMin float64
		}{strat.Name(), metrics.Mean(seen), metrics.Mean(unseen), metrics.Worst(unseen)})
	}
	return res, nil
}
