// Crossdevice reproduces the Table-2 phenomenon at small scale: a model
// trained on one device type loses accuracy on every other device type, and
// the loss is smallest between similar devices (Pixel5 ↔ Pixel2).
//
//	go run ./examples/crossdevice
package main

import (
	"fmt"
	"log"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/experiments"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/metrics"
)

func main() {
	opts := experiments.DefaultOptions()
	opts.Seed = 11

	fmt.Println("capturing shared scenes with all devices...")
	dd, err := experiments.BuildDeviceData(opts, 6, 3, dataset.ModeProcessed)
	if err != nil {
		log.Fatal(err)
	}

	// Train one model per source device, evaluate on three targets.
	sources := []string{"Pixel5", "S9", "G4"}
	targets := []string{"Pixel5", "Pixel2", "S9", "S6", "G4"}
	builder := experiments.SimpleCNNBuilder(opts.Seed, dd.Classes)

	fmt.Printf("\n%-8s", "train\\test")
	for _, tg := range targets {
		fmt.Printf("  %8s", tg)
	}
	fmt.Println()
	for _, src := range sources {
		si := dd.DeviceIndex(src)
		net := builder()
		experiments.TrainCentralized(net, dd.Train[si], 20, 10, 0.05, frand.New(opts.Seed))
		fmt.Printf("%-8s", src)
		for _, tg := range targets {
			ti := dd.DeviceIndex(tg)
			acc := metrics.Accuracy(net, dd.Test[ti], 16)
			fmt.Printf("  %7.1f%%", acc*100)
		}
		fmt.Println()
	}
	fmt.Println("\nDiagonal entries are highest; Pixel5-trained models transfer best to Pixel2.")
}
