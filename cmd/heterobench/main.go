// Command heterobench regenerates the paper's tables and figures from the
// simulated device federation.
//
// Usage:
//
//	heterobench -list
//	heterobench -exp table4 [-scale 1.0] [-seed 42] [-workers 8]
//	heterobench -exp all -scale 0.3
//
// Experiment ids follow DESIGN.md's per-experiment index (fig1, table2,
// fig2, fig3, fig4, fig5, fig7, table4, table5, table6, fig8, ecg, fig9,
// ablation-*, async-sweep). Scale 1.0 is the configuration recorded in
// EXPERIMENTS.md; smaller scales run faster and preserve trends. -async
// reruns the FL-driving harnesses on the asynchronous staleness-aware server
// (deterministic virtual-time simulation); async-sweep compares the two
// regimes under straggler latency distributions directly.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"heteroswitch/internal/experiments"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/tensor"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id to run, or 'all'")
		scale   = flag.Float64("scale", 1.0, "workload scale factor")
		seed    = flag.Uint64("seed", 42, "master random seed")
		workers = flag.Int("workers", 0, "parallel workers (0 = auto)")
		intraop = flag.Int("intraop", 0, "total intra-op kernel parallelism budget, split across workers (0 = GOMAXPROCS, 1 = serial kernels; results are bit-identical at every setting)")
		barrier = flag.Bool("barrier", false, "force legacy barrier aggregation instead of streaming")
		fused   = flag.Bool("fused-eval", true, "evaluate through the frozen inference fast path (BN folded, activations fused); -fused-eval=false keeps the reference layer-by-layer eval forward")
		backend = flag.String("kernel-backend", tensor.ActiveBackend().String(), "matmul kernel backend for the frozen eval path: auto (packed when profitable), serial (bit-identical oracle kernels), packed (force the cache-blocked kernel), int8 (force the quantized weight-stationary kernel, documented-tolerance tier); training always uses the oracle kernels; default honors HETEROSWITCH_KERNEL_BACKEND")
		list    = flag.Bool("list", false, "list available experiments")

		async      = flag.Bool("async", false, "run streaming-capable harness strategies on the asynchronous staleness-aware server (virtual-time simulation)")
		alpha      = flag.Float64("staleness-alpha", 0.5, "polynomial staleness discount 1/(1+s)^alpha for async folds (0 = no discount); also parameterizes async-sweep")
		latency    = flag.String("latency-model", "", "virtual client latency for -async runs: zero, const:D, uniform:LO,HI, straggler:LO,HI,P,FACTOR (default zero; async-sweep overrides with its arms)")
		asyncDepth = flag.Int("async-depth", 2, "in-flight async jobs as a multiple of each harness's K")

		faultSpec     = flag.String("faults", "", "seeded fault injection for the FL harnesses: crash:P, flaky:P,R, corrupt:P,MODE, churn:PERIOD,ON, combined with '+' (empty = fault-free; crash/flaky/churn need -async, crash/flaky also -fault-timeout)")
		maxNorm       = flag.Float64("max-delta-norm", 0, "update validation gate: reject client deltas with non-finite values or L2 norm above this (0 = gate off, unless -faults is set, then +Inf = non-finite check only)")
		faultTimeout  = flag.Float64("fault-timeout", 0, "async per-job virtual timeout before deterministic reissue (0 = no timeouts)")
		faultBackoff  = flag.Float64("fault-backoff", 0, "base virtual reissue backoff, doubled each attempt (needs -fault-timeout)")
		faultAttempts = flag.Int("fault-attempts", 0, "max dispatch attempts per job before its client counts failed (0 = 3 when timeouts are on)")
		maxStale      = flag.Int("max-staleness", 0, "drop async results staler than this many aggregation windows instead of folding them (0 = fold everything)")
	)
	flag.Parse()
	nn.SetFusedEval(*fused)

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "heterobench: -exp required (or -list); e.g. -exp table4")
		os.Exit(2)
	}

	opts := experiments.DefaultOptions()
	opts.Scale = *scale
	opts.Seed = *seed
	if *workers > 0 {
		opts.Workers = *workers
	}
	opts.DisableStreaming = *barrier
	opts.IntraOp = *intraop
	opts.KernelBackend = *backend
	opts.Async = experiments.AsyncOptions{
		Enabled:        *async,
		StalenessAlpha: *alpha,
		LatencyModel:   *latency,
		Depth:          *asyncDepth,
		Timeout:        *faultTimeout,
		RetryBackoff:   *faultBackoff,
		MaxAttempts:    *faultAttempts,
		MaxStaleness:   *maxStale,
	}
	opts.Faults = *faultSpec
	opts.MaxDeltaNorm = *maxNorm

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		res, err := experiments.Run(name, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heterobench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("### %s (scale %.2f, seed %d, %.1fs)\n\n%s\n", name, *scale, *seed, time.Since(start).Seconds(), res)
	}
}
