package frand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d identical outputs of 100", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat32Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float32()
		if f < 0 || f >= 1 {
			t.Fatalf("Float32 out of [0,1): %v", f)
		}
	}
}

func TestUniformRange(t *testing.T) {
	r := New(7)
	for i := 0; i < 1000; i++ {
		f := r.Uniform(-2, 3)
		if f < -2 || f >= 3 {
			t.Fatalf("Uniform out of [-2,3): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(99)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniform = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) out of range: %d", v)
		}
		counts[v]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(10) bucket %d has count %d, not near uniform", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const n = 200000
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestNormalScaling(t *testing.T) {
	r := New(5)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Normal(10, 2)
	}
	if math.Abs(sum/n-10) > 0.05 {
		t.Fatalf("Normal(10,2) mean = %v", sum/n)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(11)
	for _, n := range []int{0, 1, 2, 17, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestPermProperty(t *testing.T) {
	r := New(13)
	f := func(nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		p := r.Perm(n)
		sum := 0
		for _, v := range p {
			sum += v
		}
		return sum == n*(n-1)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChoiceDistinct(t *testing.T) {
	r := New(17)
	idx := r.Choice(20, 5)
	if len(idx) != 5 {
		t.Fatalf("Choice returned %d items", len(idx))
	}
	seen := map[int]bool{}
	for _, v := range idx {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Choice invalid: %v", idx)
		}
		seen[v] = true
	}
}

func TestWeightedChoiceRespectsWeights(t *testing.T) {
	r := New(23)
	w := []float64{0, 1, 0, 3}
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[r.WeightedChoice(w)]++
	}
	if counts[0] != 0 || counts[2] != 0 {
		t.Fatalf("zero-weight index sampled: %v", counts)
	}
	ratio := float64(counts[3]) / float64(counts[1])
	if ratio < 2.6 || ratio > 3.4 {
		t.Fatalf("weight ratio = %v, want ~3", ratio)
	}
}

func TestWeightedChoicePanicsOnAllZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for all-zero weights")
		}
	}()
	New(1).WeightedChoice([]float64{0, 0})
}

func TestWeightedSampleNoReplaceDistinct(t *testing.T) {
	r := New(29)
	w := []float64{1, 2, 3, 4, 5}
	got := r.WeightedSampleNoReplace(w, 5)
	seen := map[int]bool{}
	for _, v := range got {
		if seen[v] {
			t.Fatalf("duplicate index %d in %v", v, got)
		}
		seen[v] = true
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(31)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("children look correlated: %d collisions", same)
	}
}

func TestSplitNamedStable(t *testing.T) {
	a := New(37)
	b := New(37)
	ca := a.SplitNamed("camera")
	cb := b.SplitNamed("camera")
	for i := 0; i < 100; i++ {
		if ca.Uint64() != cb.Uint64() {
			t.Fatal("SplitNamed not deterministic across identical parents")
		}
	}
}

func TestSplitNamedDistinctLabels(t *testing.T) {
	a := New(37)
	b := New(37)
	ca := a.SplitNamed("camera")
	cb := b.SplitNamed("scene")
	same := 0
	for i := 0; i < 100; i++ {
		if ca.Uint64() == cb.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different labels yielded correlated streams: %d", same)
	}
}

func TestShuffleSwapContract(t *testing.T) {
	r := New(41)
	s := []string{"a", "b", "c", "d", "e"}
	orig := map[string]bool{}
	for _, v := range s {
		orig[v] = true
	}
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		if !orig[v] {
			t.Fatalf("shuffle lost element, got %v", s)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
