package fl

import (
	"sync"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/tensor"
)

// batchScratch bundles the per-batch buffers of one training or evaluation
// loop: the stacked input, dense targets, the loss gradient (all recycled
// through a private arena, reset once per batch) and the label slice. The
// buffers live only between two Resets, exactly one batch — the network's
// own arena is NOT usable for them because the network resets it at the top
// of Forward, while the input must be filled before Forward runs.
type batchScratch struct {
	arena  *tensor.Arena
	labels []int
	shape  []int
}

// batchScratchPool recycles batch scratch across TrainLocal/EvalLoss calls
// (i.e. across clients and rounds), so the steady state of a federated run
// allocates no per-batch buffers at all.
var batchScratchPool = sync.Pool{
	New: func() any { return &batchScratch{arena: tensor.NewArena()} },
}

// nextBatch recycles the previous batch's buffers and fills them with
// samples [lo, hi). For multi-label data it returns (x, y, nil), otherwise
// (x, nil, labels).
func (bs *batchScratch) nextBatch(ds *dataset.Dataset, lo, hi int) (x, y *tensor.Tensor, labels []int) {
	bs.arena.Reset()
	n := hi - lo
	bs.shape = append(bs.shape[:0], n)
	bs.shape = append(bs.shape, ds.Samples[lo].X.Shape()...)
	x = bs.arena.GetUninit(bs.shape...)
	if ds.Samples[lo].Multi != nil {
		y = bs.arena.GetUninit(n, ds.NumClasses)
		ds.BatchMultiInto(x, y, lo, hi)
		return x, y, nil
	}
	if cap(bs.labels) < n {
		bs.labels = make([]int, n)
	}
	labels = bs.labels[:n]
	ds.BatchInto(x, labels, lo, hi)
	return x, nil, labels
}

// evalBatch runs one loss evaluation on samples [lo, hi). When the loss
// supports LossInto the gradient lands in a recycled arena buffer; the
// caller may pass it to net.Backward before the next nextBatch call.
func (bs *batchScratch) evalBatch(net *nn.Network, loss nn.Loss, ds *dataset.Dataset,
	lo, hi int, train bool) (float64, *tensor.Tensor) {
	x, y, labels := bs.nextBatch(ds, lo, hi)
	var target nn.Target
	if y != nil {
		target = nn.DenseTarget(y)
	} else {
		target = nn.ClassTarget(labels)
	}
	out := net.Forward(x, train)
	if li, ok := loss.(nn.LossInto); ok {
		grad := bs.arena.GetUninit(out.Shape()...)
		return li.EvalInto(grad, out, target), grad
	}
	return loss.Eval(out, target)
}

// EvalLoss computes the mean loss of the network on ds in inference mode —
// L_init in Algorithm 1 terms. It handles both single- and multi-label data.
func EvalLoss(net *nn.Network, loss nn.Loss, ds *dataset.Dataset, batch int) float64 {
	if ds.Len() == 0 {
		return 0
	}
	bs := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(bs)
	var total float64
	for lo := 0; lo < ds.Len(); lo += batch {
		hi := min(lo+batch, ds.Len())
		l, _ := bs.evalBatch(net, loss, ds, lo, hi, false)
		total += l * float64(hi-lo)
	}
	return total / float64(ds.Len())
}

// StepHook observes/adjusts parameter gradients right before each SGD step;
// FedProx adds its proximal pull here and SCAFFOLD its control variates.
type StepHook func(params []*nn.Param)

// BatchHook runs after each SGD step; HeteroSwitch maintains its per-batch
// SWA average here. batchIdx counts steps from 0 across all epochs.
type BatchHook func(net *nn.Network, batchIdx int)

// TrainLocal runs cfg.LocalEpochs of minibatch SGD on the client dataset and
// returns the running mean of batch losses (Algorithm 1's L_train). Batches
// are reshuffled each epoch from rng. stepHook and batchHook may be nil.
//
// The steady state of the loop is allocation-free: batch inputs, targets,
// and the loss gradient recycle through a pooled scratch arena, and every
// layer's outputs/gradients recycle through the network's own arena.
func TrainLocal(net *nn.Network, ds *dataset.Dataset, cfg Config, loss nn.Loss,
	rng *frand.RNG, stepHook StepHook, batchHook BatchHook) float64 {
	opt := nn.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	params := net.Params()
	var lossSum float64
	batchIdx := 0
	order := make([]int, ds.Len())
	for i := range order {
		order[i] = i
	}
	// One reusable shuffled view: only the sample headers move per epoch,
	// instead of allocating a fresh Subset dataset every epoch.
	shuffled := &dataset.Dataset{
		Samples:    make([]dataset.Sample, ds.Len()),
		NumClasses: ds.NumClasses,
	}
	bs := batchScratchPool.Get().(*batchScratch)
	defer batchScratchPool.Put(bs)
	for e := 0; e < cfg.LocalEpochs; e++ {
		rng.ShuffleInts(order)
		for i, j := range order {
			shuffled.Samples[i] = ds.Samples[j]
		}
		for lo := 0; lo < shuffled.Len(); lo += cfg.BatchSize {
			hi := min(lo+cfg.BatchSize, shuffled.Len())
			l, gradT := bs.evalBatch(net, loss, shuffled, lo, hi, true)
			net.Backward(gradT)
			if stepHook != nil {
				stepHook(params)
			}
			opt.Step(params)
			if batchHook != nil {
				batchHook(net, batchIdx)
			}
			lossSum += l
			batchIdx++
		}
	}
	if batchIdx == 0 {
		return 0
	}
	return lossSum / float64(batchIdx)
}
