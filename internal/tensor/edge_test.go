package tensor

import (
	"bytes"
	"strings"
	"testing"
)

func TestStringFormat(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 2, 5)
	s := x.String()
	if !strings.Contains(s, "[2 5]") {
		t.Fatalf("String() = %q", s)
	}
}

func TestFullAndOnes(t *testing.T) {
	x := Full(3.5, 2, 2)
	for _, v := range x.Data() {
		if v != 3.5 {
			t.Fatal("Full wrong")
		}
	}
	y := Ones(3)
	if y.Sum() != 3 {
		t.Fatal("Ones wrong")
	}
}

func TestRowView(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	r := x.Row(1)
	if r.At(0) != 3 || r.At(1) != 4 {
		t.Fatalf("Row = %v", r.Data())
	}
	r.Set(9, 0)
	if x.At(1, 0) != 9 {
		t.Fatal("Row must be a view")
	}
}

func TestAddScalar(t *testing.T) {
	x := Full(1, 3)
	x.AddScalar(2)
	if x.Sum() != 9 {
		t.Fatalf("AddScalar sum %v", x.Sum())
	}
}

func TestApply(t *testing.T) {
	x := FromSlice([]float32{1, -2, 3}, 3)
	x.Apply(func(v float32) float32 {
		if v < 0 {
			return 0
		}
		return v
	})
	if x.At(1) != 0 || x.At(0) != 1 {
		t.Fatalf("Apply = %v", x.Data())
	}
}

// Failure injection: corrupted serialized streams must error, not panic.
func TestReadFromCorruptedStreams(t *testing.T) {
	good := New(2, 3)
	var buf bytes.Buffer
	if _, err := good.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	cases := map[string][]byte{
		"empty":            {},
		"truncated-header": full[:2],
		"truncated-shape":  full[:6],
		"truncated-data":   full[:len(full)-5],
	}
	for name, data := range cases {
		var x Tensor
		if _, err := x.ReadFrom(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}

	// Implausible dimension count must be rejected before allocation.
	bogus := make([]byte, 4)
	bogus[0] = 0xff
	bogus[1] = 0xff
	var x Tensor
	if _, err := x.ReadFrom(bytes.NewReader(bogus)); err == nil {
		t.Error("implausible ndim accepted")
	}
}

func TestPanicsOnBadShapes(t *testing.T) {
	cases := []func(){
		func() { New(-1) },
		func() { FromSlice([]float32{1}, 2) },
		func() { New(2).At(3) },
		func() { New(2, 2).At(0) },
		func() { New(2).Reshape(3) },
		func() { New(4).Reshape(-1, -1) },
		func() { FromSlice([]float32{1, 2}, 2).Slice(0, 1) }, // 1-D slice OK actually
	}
	for i, f := range cases[:6] {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMatMulShapePanics(t *testing.T) {
	a := New(2, 3)
	b := New(4, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for inner dim mismatch")
		}
	}()
	MatMul(a, b)
}
