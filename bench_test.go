package heteroswitch

// One benchmark per table and figure of the paper's evaluation, plus
// design-choice ablations and substrate micro-benchmarks. Each experiment
// benchmark runs its full harness at a reduced scale per iteration, so
// b.N=1 (the default for these run times) measures one end-to-end
// regeneration of the artifact; raise -scale via EXPBENCH_SCALE-style runs
// with cmd/heterobench for the recorded EXPERIMENTS.md numbers.

import (
	"testing"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/device"
	"heteroswitch/internal/experiments"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/isp"
	"heteroswitch/internal/scene"
)

// benchOpts is the per-iteration scale used by the experiment benchmarks:
// large enough to exercise every code path, small enough for go test -bench.
func benchOpts() experiments.Options {
	opts := experiments.DefaultOptions()
	opts.Scale = 0.1
	opts.Seed = 42
	return opts
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(name, benchOpts()); err != nil {
			b.Fatalf("%s: %v", name, err)
		}
	}
}

// Paper artifacts -------------------------------------------------------------

func BenchmarkFig1Homogeneity(b *testing.B)   { runExperiment(b, "fig1") }
func BenchmarkTable2CrossDevice(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkFig2RAW(b *testing.B)           { runExperiment(b, "fig2") }
func BenchmarkFig3ISPStages(b *testing.B)     { runExperiment(b, "fig3") }
func BenchmarkFig4Fairness(b *testing.B)      { runExperiment(b, "fig4") }
func BenchmarkFig5LODO(b *testing.B)          { runExperiment(b, "fig5") }
func BenchmarkFig7SWAD(b *testing.B)          { runExperiment(b, "fig7") }
func BenchmarkTable4Main(b *testing.B)        { runExperiment(b, "table4") }
func BenchmarkTable5Models(b *testing.B)      { runExperiment(b, "table5") }
func BenchmarkTable6Flair(b *testing.B)       { runExperiment(b, "table6") }
func BenchmarkFig8Synthetic(b *testing.B)     { runExperiment(b, "fig8") }
func BenchmarkECGHeartRate(b *testing.B)      { runExperiment(b, "ecg") }
func BenchmarkFig9Sensitivity(b *testing.B)   { runExperiment(b, "fig9") }

// Design-choice ablations ------------------------------------------------------

func BenchmarkAblationSwitches(b *testing.B) { runExperiment(b, "ablation-switch") }
func BenchmarkAblationEMAAlpha(b *testing.B) { runExperiment(b, "ablation-alpha") }
func BenchmarkAblationDegrees(b *testing.B)  { runExperiment(b, "ablation-degrees") }

// BenchmarkUnseenDeviceDG evaluates trained models on device profiles that
// never appeared in training — true out-of-distribution devices.
func BenchmarkUnseenDeviceDG(b *testing.B) { runExperiment(b, "unseen-dg") }

// Substrate micro-benchmarks ---------------------------------------------------

// BenchmarkDeviceCapture measures one full sensor+ISP capture of a 64x64
// scene on the S9 profile — the per-image cost of workload generation.
func BenchmarkDeviceCapture(b *testing.B) {
	gen := scene.NewImageNet12(64)
	sc := gen.Render(4, frand.New(1))
	p, err := device.ByName("S9")
	if err != nil {
		b.Fatal(err)
	}
	rng := frand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.CaptureProcessed(sc, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkISPPipeline measures the six-stage baseline pipeline alone.
func BenchmarkISPPipeline(b *testing.B) {
	gen := scene.NewImageNet12(64)
	sc := gen.Render(4, frand.New(1))
	raw := isp.Mosaic(sc, isp.RGGB)
	pipe := isp.Baseline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.Process(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadBuild measures building the full nine-device federation
// at one scene per class.
func BenchmarkWorkloadBuild(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BuildDeviceData(opts, 1, 1, dataset.ModeProcessed); err != nil {
			b.Fatal(err)
		}
	}
}
