package tensor

import (
	"fmt"
	"sync"

	"heteroswitch/internal/parallel"
)

// ConvDims describes a 2-D convolution geometry shared by Im2Col and the
// conv layers in internal/nn.
type ConvDims struct {
	InC, InH, InW    int // input channels / height / width
	KH, KW           int // kernel size
	StrideH, StrideW int
	PadH, PadW       int
	OutH, OutW       int // derived output size
}

// NewConvDims computes output sizes for the given geometry. It returns an
// error if the geometry produces a non-positive output size.
func NewConvDims(inC, inH, inW, kh, kw, stride, pad int) (ConvDims, error) {
	d := ConvDims{
		InC: inC, InH: inH, InW: inW,
		KH: kh, KW: kw,
		StrideH: stride, StrideW: stride,
		PadH: pad, PadW: pad,
	}
	d.OutH = (inH+2*pad-kh)/stride + 1
	d.OutW = (inW+2*pad-kw)/stride + 1
	if d.OutH <= 0 || d.OutW <= 0 {
		return d, fmt.Errorf("tensor: conv geometry %dx%d k%d s%d p%d yields output %dx%d",
			inH, inW, kh, stride, pad, d.OutH, d.OutW)
	}
	return d, nil
}

// ColRows returns the number of rows of the im2col matrix (inC*kh*kw).
func (d ConvDims) ColRows() int { return d.InC * d.KH * d.KW }

// ColCols returns the number of columns of the im2col matrix (outH*outW).
func (d ConvDims) ColCols() int { return d.OutH * d.OutW }

// Im2Col expands one image (flat CHW slice `img`) into the column matrix
// `col` of shape [inC*kh*kw, outH*outW], so that convolution becomes a
// single matrix multiply: W[outC, inC*kh*kw] @ col.
//
// col must have length ColRows()*ColCols(). Out-of-bounds taps (padding)
// are written as zeros.
func Im2Col(col, img []float32, d ConvDims) {
	if len(col) != d.ColRows()*d.ColCols() {
		panic(fmt.Sprintf("tensor: Im2Col col size %d, want %d", len(col), d.ColRows()*d.ColCols()))
	}
	if len(img) != d.InC*d.InH*d.InW {
		panic(fmt.Sprintf("tensor: Im2Col img size %d, want %d", len(img), d.InC*d.InH*d.InW))
	}
	cols := d.ColCols()
	row := 0
	for c := 0; c < d.InC; c++ {
		chanBase := c * d.InH * d.InW
		for ky := 0; ky < d.KH; ky++ {
			for kx := 0; kx < d.KW; kx++ {
				dst := col[row*cols : (row+1)*cols]
				i := 0
				for oy := 0; oy < d.OutH; oy++ {
					iy := oy*d.StrideH - d.PadH + ky
					if iy < 0 || iy >= d.InH {
						for ox := 0; ox < d.OutW; ox++ {
							dst[i] = 0
							i++
						}
						continue
					}
					rowBase := chanBase + iy*d.InW
					for ox := 0; ox < d.OutW; ox++ {
						ix := ox*d.StrideW - d.PadW + kx
						if ix < 0 || ix >= d.InW {
							dst[i] = 0
						} else {
							dst[i] = img[rowBase+ix]
						}
						i++
					}
				}
				row++
			}
		}
	}
}

// col2imCols is Col2Im restricted to image columns ix ∈ [xlo, xhi) — the
// column-blocked parallel building block. For every (channel, tap) row of
// col it computes the ox range whose target column lands inside the block,
// so the inner loop needs no per-element bounds check. A pixel's
// contributions arrive in the same (ky, kx, oy, ox) order as the serial
// scatter — restricting ix never reorders adds into one pixel, and every
// pixel lives in exactly one block — so results are bit-identical to Col2Im
// at any partition.
func col2imCols(img, col []float32, d ConvDims, xlo, xhi int) {
	cols := d.ColCols()
	// oxFor returns the smallest ox with ox*StrideW - PadW + kx >= x.
	oxFor := func(x, kx int) int {
		num := x + d.PadW - kx
		if num <= 0 {
			return 0
		}
		return (num + d.StrideW - 1) / d.StrideW
	}
	row := 0
	for c := 0; c < d.InC; c++ {
		chanBase := c * d.InH * d.InW
		for ky := 0; ky < d.KH; ky++ {
			for kx := 0; kx < d.KW; kx++ {
				src := col[row*cols : (row+1)*cols]
				oxLo := oxFor(xlo, kx)
				oxHi := min(oxFor(xhi, kx), d.OutW)
				if oxLo >= oxHi {
					row++
					continue
				}
				for oy := 0; oy < d.OutH; oy++ {
					iy := oy*d.StrideH - d.PadH + ky
					if iy < 0 || iy >= d.InH {
						continue
					}
					rowBase := chanBase + iy*d.InW - d.PadW + kx
					srcRow := src[oy*d.OutW : oy*d.OutW+d.OutW]
					for ox := oxLo; ox < oxHi; ox++ {
						img[rowBase+ox*d.StrideW] += srcRow[ox]
					}
				}
				row++
			}
		}
	}
}

// DepthwiseConvPlane convolves ONE channel plane directly, without the
// im2col lowering: y[OutH*OutW] = w[KH*KW] ⊛ img[InH*InW] for a d with
// InC == 1. The loop is tap-outer: each of the KH·KW taps sweeps the output
// as one bounds-free strided AXPY (contiguous at stride 1), so the kernel
// runs at matmul-class efficiency instead of gathering taps per pixel.
//
// Per output pixel the taps still accumulate in ascending (ky, kx) order —
// the same per-target order as the im2col matmul, whose skipped
// zero-padding and zero-weight products are exact no-ops — so the result is
// bit-identical to Im2Col + MatMulSlices on the same plane. The inference
// fast path uses it for depthwise convolutions, where the im2col copy costs
// more than the arithmetic.
func DepthwiseConvPlane(y, img, w []float32, d ConvDims) {
	clear(y[:d.OutH*d.OutW])
	// oxRange returns the ox interval whose tap column stays in bounds:
	// 0 <= ox*StrideW - PadW + kx < InW.
	oxRange := func(kx int) (int, int) {
		lo, hi := 0, d.OutW
		if num := d.PadW - kx; num > 0 {
			lo = (num + d.StrideW - 1) / d.StrideW
		}
		if num := d.InW + d.PadW - kx; num > 0 {
			hi = min(hi, (num+d.StrideW-1)/d.StrideW)
		} else {
			hi = 0
		}
		return lo, hi
	}
	t := 0
	for ky := 0; ky < d.KH; ky++ {
		for kx := 0; kx < d.KW; kx++ {
			wt := w[t]
			t++
			if wt == 0 {
				continue // exact no-op, as in the matmul kernel's zero skip
			}
			oxLo, oxHi := oxRange(kx)
			if oxLo >= oxHi {
				continue
			}
			for oy := 0; oy < d.OutH; oy++ {
				iy := oy*d.StrideH - d.PadH + ky
				if iy < 0 || iy >= d.InH {
					continue
				}
				yrow := y[oy*d.OutW : (oy+1)*d.OutW]
				ibase := iy*d.InW - d.PadW + kx
				if d.StrideW == 1 {
					irow := img[ibase+oxLo : ibase+oxHi]
					dst := yrow[oxLo : oxLo+len(irow)]
					for j, v := range irow {
						dst[j] += wt * v
					}
				} else {
					for ox := oxLo; ox < oxHi; ox++ {
						yrow[ox] += wt * img[ibase+ox*d.StrideW]
					}
				}
			}
		}
	}
}

// col2imTask is the pooled parallel.Runner behind Col2ImP.
type col2imTask struct {
	img, col []float32
	d        ConvDims
}

var col2imTaskPool = sync.Pool{New: func() any { return new(col2imTask) }}

// Run implements parallel.Runner over a range of image columns.
func (t *col2imTask) Run(_, lo, hi int) { col2imCols(t.img, t.col, t.d, lo, hi) }

// Col2ImP is Col2Im with the scatter parallelized over blocks of image
// columns under the given intra-op budget: each chunk owns a disjoint set of
// output pixels (all rows and channels of its column range), so chunks never
// write the same element and results are bit-identical to the serial scatter
// at every budget. Budget 1 — or a geometry too small for the grain — runs
// the serial kernel.
func Col2ImP(par int, img, col []float32, d ConvDims) {
	if par <= 1 || d.InW <= 1 {
		Col2Im(img, col, d)
		return
	}
	// Per-column work: the whole scatter costs about InC·KH·KW·OutH·OutW
	// adds, spread over the InW columns.
	perCol := d.InC * d.KH * d.KW * d.OutH * d.OutW / d.InW
	grain := parallel.GrainFor(perCol)
	if parallel.Chunks(par, d.InW, grain) <= 1 {
		Col2Im(img, col, d)
		return
	}
	t := col2imTaskPool.Get().(*col2imTask)
	t.img, t.col, t.d = img, col, d
	parallel.Run(par, d.InW, grain, t)
	t.img, t.col = nil, nil
	col2imTaskPool.Put(t)
}

// Col2Im scatters the column matrix back into an image, accumulating
// overlapping contributions. It is the adjoint of Im2Col and is used to
// compute input gradients of convolution. img is NOT zeroed first.
func Col2Im(img, col []float32, d ConvDims) {
	cols := d.ColCols()
	row := 0
	for c := 0; c < d.InC; c++ {
		chanBase := c * d.InH * d.InW
		for ky := 0; ky < d.KH; ky++ {
			for kx := 0; kx < d.KW; kx++ {
				src := col[row*cols : (row+1)*cols]
				i := 0
				for oy := 0; oy < d.OutH; oy++ {
					iy := oy*d.StrideH - d.PadH + ky
					if iy < 0 || iy >= d.InH {
						i += d.OutW
						continue
					}
					rowBase := chanBase + iy*d.InW
					for ox := 0; ox < d.OutW; ox++ {
						ix := ox*d.StrideW - d.PadW + kx
						if ix >= 0 && ix < d.InW {
							img[rowBase+ix] += src[i]
						}
						i++
					}
				}
				row++
			}
		}
	}
}
