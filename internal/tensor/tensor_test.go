package tensor

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"heteroswitch/internal/frand"
)

func TestNewZeroFilled(t *testing.T) {
	x := New(2, 3)
	if x.Size() != 6 || x.NDim() != 2 || x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Fatalf("bad shape bookkeeping: %v size %d", x.Shape(), x.Size())
	}
	for _, v := range x.Data() {
		if v != 0 {
			t.Fatal("New not zero filled")
		}
	}
}

func TestFromSliceAliases(t *testing.T) {
	d := []float32{1, 2, 3, 4}
	x := FromSlice(d, 2, 2)
	d[0] = 9
	if x.At(0, 0) != 9 {
		t.Fatal("FromSlice must alias, not copy")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float32{1, 2, 3}, 2, 2)
}

func TestAtSetRowMajor(t *testing.T) {
	x := New(2, 3)
	x.Set(7, 1, 2)
	if x.Data()[5] != 7 {
		t.Fatalf("row-major layout violated: %v", x.Data())
	}
	if x.At(1, 2) != 7 {
		t.Fatal("At/Set roundtrip failed")
	}
}

func TestReshapeView(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Reshape(3, 2)
	y.Set(99, 0, 0)
	if x.At(0, 0) != 99 {
		t.Fatal("Reshape must share data")
	}
	z := x.Reshape(-1, 2)
	if z.Dim(0) != 3 {
		t.Fatalf("inferred dim = %d, want 3", z.Dim(0))
	}
}

func TestCloneIndependent(t *testing.T) {
	x := Full(2, 3)
	y := x.Clone()
	y.Set(5, 0)
	if x.At(0) != 2 {
		t.Fatal("Clone must copy data")
	}
}

func TestElementwiseOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, 5, 6}, 3)
	if got := a.Add(b); !got.AllClose(FromSlice([]float32{5, 7, 9}, 3), 0) {
		t.Fatalf("Add = %v", got.Data())
	}
	if got := b.Sub(a); !got.AllClose(FromSlice([]float32{3, 3, 3}, 3), 0) {
		t.Fatalf("Sub = %v", got.Data())
	}
	if got := a.Mul(b); !got.AllClose(FromSlice([]float32{4, 10, 18}, 3), 0) {
		t.Fatalf("Mul = %v", got.Data())
	}
	c := a.Clone()
	c.Scale(2)
	if !c.AllClose(FromSlice([]float32{2, 4, 6}, 3), 0) {
		t.Fatalf("Scale = %v", c.Data())
	}
}

func TestAxpy(t *testing.T) {
	y := FromSlice([]float32{1, 1, 1}, 3)
	x := FromSlice([]float32{1, 2, 3}, 3)
	y.Axpy(2, x)
	if !y.AllClose(FromSlice([]float32{3, 5, 7}, 3), 0) {
		t.Fatalf("Axpy = %v", y.Data())
	}
}

func TestLerp(t *testing.T) {
	y := FromSlice([]float32{0, 0}, 2)
	x := FromSlice([]float32{10, 20}, 2)
	y.Lerp(0.25, x)
	if !y.AllClose(FromSlice([]float32{2.5, 5}, 2), 1e-6) {
		t.Fatalf("Lerp = %v", y.Data())
	}
}

func TestReductions(t *testing.T) {
	x := FromSlice([]float32{-1, 2, 5, 0}, 4)
	if x.Sum() != 6 {
		t.Fatalf("Sum = %v", x.Sum())
	}
	if x.Mean() != 1.5 {
		t.Fatalf("Mean = %v", x.Mean())
	}
	if x.Max() != 5 || x.Min() != -1 {
		t.Fatalf("Max/Min = %v/%v", x.Max(), x.Min())
	}
	if math.Abs(x.L2NormSq()-30) > 1e-9 {
		t.Fatalf("L2NormSq = %v", x.L2NormSq())
	}
}

func TestDot(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{4, -5, 6}, 3)
	if got := a.Dot(b); got != 12 {
		t.Fatalf("Dot = %v", got)
	}
}

func TestArgMaxRows(t *testing.T) {
	x := FromSlice([]float32{
		0.1, 0.9, 0.0,
		0.5, 0.2, 0.3,
	}, 2, 3)
	got := x.ArgMaxRows()
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("ArgMaxRows = %v", got)
	}
}

func TestSliceView(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	s := x.Slice(1, 3)
	if s.Dim(0) != 2 || s.At(0, 0) != 3 {
		t.Fatalf("Slice wrong: %v", s.Data())
	}
	s.Set(99, 0, 0)
	if x.At(1, 0) != 99 {
		t.Fatal("Slice must be a view")
	}
}

func TestTranspose2D(t *testing.T) {
	x := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	y := x.Transpose2D()
	if y.Dim(0) != 3 || y.Dim(1) != 2 || y.At(2, 1) != 6 || y.At(0, 1) != 4 {
		t.Fatalf("Transpose2D = %v %v", y.Shape(), y.Data())
	}
}

// naiveMatMul is the reference implementation for testing the blocked kernel.
func naiveMatMul(a, b *Tensor) *Tensor {
	m, k := a.Dim(0), a.Dim(1)
	n := b.Dim(1)
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for x := 0; x < k; x++ {
				s += float64(a.At(i, x)) * float64(b.At(x, j))
			}
			out.Set(float32(s), i, j)
		}
	}
	return out
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{5, 6, 7, 8}, 2, 2)
	got := MatMul(a, b)
	want := FromSlice([]float32{19, 22, 43, 50}, 2, 2)
	if !got.AllClose(want, 1e-5) {
		t.Fatalf("MatMul = %v", got.Data())
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	r := frand.New(1)
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {65, 64, 63}, {100, 33, 129}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, k, n)
		got := MatMul(a, b)
		want := naiveMatMul(a, b)
		if !got.AllClose(want, 1e-3) {
			t.Fatalf("MatMul %dx%dx%d diverges from naive", m, k, n)
		}
	}
}

func TestMatMulTransB(t *testing.T) {
	r := frand.New(2)
	a := Randn(r, 1, 7, 5)
	b := Randn(r, 1, 9, 5)
	got := MatMulTransB(a, b)
	want := MatMul(a, b.Transpose2D())
	if !got.AllClose(want, 1e-4) {
		t.Fatal("MatMulTransB != a @ bT")
	}
}

func TestMatMulTransA(t *testing.T) {
	r := frand.New(3)
	a := Randn(r, 1, 8, 4)
	b := Randn(r, 1, 8, 6)
	got := MatMulTransA(a, b)
	want := MatMul(a.Transpose2D(), b)
	if !got.AllClose(want, 1e-4) {
		t.Fatal("MatMulTransA != aT @ b")
	}
}

func TestMatMulAccInto(t *testing.T) {
	a := FromSlice([]float32{1, 0, 0, 1}, 2, 2)
	b := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	out := Ones(2, 2)
	MatMulAccInto(out, a, b)
	want := FromSlice([]float32{2, 3, 4, 5}, 2, 2)
	if !out.AllClose(want, 1e-6) {
		t.Fatalf("MatMulAccInto = %v", out.Data())
	}
}

func TestConvDims(t *testing.T) {
	d, err := NewConvDims(3, 32, 32, 3, 3, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.OutH != 32 || d.OutW != 32 {
		t.Fatalf("same-pad conv out %dx%d", d.OutH, d.OutW)
	}
	d, err = NewConvDims(3, 32, 32, 3, 3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.OutH != 16 || d.OutW != 16 {
		t.Fatalf("stride-2 conv out %dx%d", d.OutH, d.OutW)
	}
	if _, err = NewConvDims(1, 2, 2, 5, 5, 1, 0); err == nil {
		t.Fatal("expected geometry error")
	}
}

func TestIm2ColIdentityKernel(t *testing.T) {
	// 1x1 kernel, stride 1, no pad: col matrix equals the image itself.
	d, _ := NewConvDims(2, 3, 3, 1, 1, 1, 0)
	img := make([]float32, 2*3*3)
	for i := range img {
		img[i] = float32(i)
	}
	col := make([]float32, d.ColRows()*d.ColCols())
	Im2Col(col, img, d)
	for i := range img {
		if col[i] != img[i] {
			t.Fatalf("1x1 im2col mismatch at %d", i)
		}
	}
}

func TestIm2ColPaddingZeros(t *testing.T) {
	d, _ := NewConvDims(1, 2, 2, 3, 3, 1, 1)
	img := []float32{1, 2, 3, 4}
	col := make([]float32, d.ColRows()*d.ColCols())
	Im2Col(col, img, d)
	// kernel tap (0,0) at output (0,0) looks at input (-1,-1): padding zero.
	if col[0] != 0 {
		t.Fatalf("padding tap should be 0, got %v", col[0])
	}
	// kernel center tap (1,1) row index = 1*3+1 = 4; at output (0,0) it reads input (0,0)=1.
	if col[4*d.ColCols()] != 1 {
		t.Fatalf("center tap wrong: %v", col[4*d.ColCols()])
	}
}

// TestIm2ColCol2ImAdjoint verifies <Im2Col(x), y> == <x, Col2Im(y)> — the
// defining property of an adjoint pair, which is exactly what correct
// convolution backprop requires.
func TestIm2ColCol2ImAdjoint(t *testing.T) {
	r := frand.New(7)
	cfgs := [][7]int{
		{1, 5, 5, 3, 3, 1, 1},
		{2, 8, 6, 3, 3, 2, 1},
		{3, 7, 7, 5, 5, 1, 2},
		{2, 6, 6, 2, 2, 2, 0},
	}
	for _, c := range cfgs {
		d, err := NewConvDims(c[0], c[1], c[2], c[3], c[4], c[5], c[6])
		if err != nil {
			t.Fatal(err)
		}
		x := make([]float32, d.InC*d.InH*d.InW)
		for i := range x {
			x[i] = float32(r.NormFloat64())
		}
		y := make([]float32, d.ColRows()*d.ColCols())
		for i := range y {
			y[i] = float32(r.NormFloat64())
		}
		cx := make([]float32, len(y))
		Im2Col(cx, x, d)
		var lhs float64
		for i := range y {
			lhs += float64(cx[i]) * float64(y[i])
		}
		iy := make([]float32, len(x))
		Col2Im(iy, y, d)
		var rhs float64
		for i := range x {
			rhs += float64(x[i]) * float64(iy[i])
		}
		if math.Abs(lhs-rhs) > 1e-2*(1+math.Abs(lhs)) {
			t.Fatalf("adjoint mismatch for %v: %v vs %v", c, lhs, rhs)
		}
	}
}

func TestSerializationRoundtrip(t *testing.T) {
	r := frand.New(9)
	x := Randn(r, 2, 3, 4, 5)
	var buf bytes.Buffer
	if _, err := x.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	y := New()
	if _, err := y.ReadFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if !x.SameShape(y) || !x.AllClose(y, 0) {
		t.Fatal("serialization roundtrip mismatch")
	}
}

func TestHasNaN(t *testing.T) {
	x := New(3)
	if x.HasNaN() {
		t.Fatal("zeros flagged as NaN")
	}
	x.Set(float32(math.NaN()), 1)
	if !x.HasNaN() {
		t.Fatal("NaN not detected")
	}
}

func TestClamp(t *testing.T) {
	x := FromSlice([]float32{-2, 0.5, 3}, 3)
	x.Clamp(0, 1)
	if !x.AllClose(FromSlice([]float32{0, 0.5, 1}, 3), 0) {
		t.Fatalf("Clamp = %v", x.Data())
	}
}

// Property: (a+b)-b ≈ a for random tensors.
func TestAddSubInverseProperty(t *testing.T) {
	r := frand.New(17)
	f := func(seed uint16) bool {
		rr := frand.New(uint64(seed))
		n := rr.Intn(32) + 1
		a := Randn(r, 1, n)
		b := Randn(r, 1, n)
		c := a.Add(b)
		c.SubInPlace(b)
		return c.AllClose(a, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: MatMul distributes over addition: (a+b)@c == a@c + b@c.
func TestMatMulLinearityProperty(t *testing.T) {
	r := frand.New(19)
	f := func(seed uint16) bool {
		rr := frand.New(uint64(seed))
		m, k, n := rr.Intn(8)+1, rr.Intn(8)+1, rr.Intn(8)+1
		a := Randn(r, 1, m, k)
		b := Randn(r, 1, m, k)
		c := Randn(r, 1, k, n)
		lhs := MatMul(a.Add(b), c)
		rhs := MatMul(a, c)
		rhs.AddInPlace(MatMul(b, c))
		return lhs.AllClose(rhs, 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	r := frand.New(1)
	x := Randn(r, 1, 64, 64)
	y := Randn(r, 1, 64, 64)
	out := New(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, x, y)
	}
}

func BenchmarkMatMul256(b *testing.B) {
	r := frand.New(1)
	x := Randn(r, 1, 256, 256)
	y := Randn(r, 1, 256, 256)
	out := New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MatMulInto(out, x, y)
	}
}

func BenchmarkIm2Col32(b *testing.B) {
	d, _ := NewConvDims(16, 32, 32, 3, 3, 1, 1)
	img := make([]float32, d.InC*d.InH*d.InW)
	col := make([]float32, d.ColRows()*d.ColCols())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Im2Col(col, img, d)
	}
}
