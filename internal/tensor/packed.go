package tensor

import (
	"sync"

	"heteroswitch/internal/parallel"
)

// Packed cache-blocked GEBP matmul — the tolerance-tier backend behind the
// epilogue-fused entry points (see backend.go for the tier contract).
//
// Shape of the computation: out[m,n] (+)= a[m,k] @ b[k,n], with b packed
// into contiguous packNR-wide column panels (panel-major, zero-padded to the
// panel width) so the microkernel streams B with unit stride instead of the
// row-major stride-n walk the oracle kernels pay. Where the panels come from
// depends on the caller: the raw-slice fused entries pack b per call into a
// pooled buffer (b is typically an activation matrix that changes every
// batch), while the weight-stationary entries (weights.go) reuse panels a
// PackedWeights handle packed ONCE per weight version — the frozen dense
// path pays no per-batch packing at all. The driver blocks k into packKC
// slabs (one panel slab is packKC·packNR floats — L1 resident while every
// row block of the chunk re-reads it) and runs a widened register
// microkernel: packMR output rows × packNR output columns accumulate in
// registers across a whole k-block, so each B load feeds packMR fused
// multiply-adds instead of one.
//
// Numerics: within one (row, column) target the partial products still fold
// in ascending-k order, but k-blocking writes each packKC-slab's register
// sum into the output between slabs, reassociating the addition chain
// whenever k > packKC. That puts this kernel in the tolerance tier — callers
// hold the frozen path's ≤1e-5 + identical-argmax contract, not tol-0.
// Parallelism is row-partitioned under the caller's intra-op budget and the
// packed B is shared read-only across chunks, so no target's accumulation is
// ever split and results are bit-identical at every budget (the property the
// serving determinism tests stand on).
//
// The pack buffer is recycled through a sync.Pool of *packBuf, so a warm
// packed dispatch performs no heap allocation — the same 0 allocs/op
// contract as the oracle kernels.
const (
	// packMR × packNR is the register microkernel footprint. 2×4 doubles the
	// oracle kernels' 1×4 row tile: one load of 4 packed B values feeds both
	// rows' accumulators, halving B traffic per multiply-add. Wider tiles
	// (4×4, 8×4) were measured slower on amd64 — 16+ live accumulators
	// exceed the 16 XMM registers and the compiler's spill stores cost more
	// than the saved loads — so 2×4 (8 accumulators + 4 B + 2 A values) is
	// the widest spill-free footprint.
	packMR = 2
	packNR = 4
	// packKC bounds the k-block so one panel slab (packKC·packNR floats,
	// 4 KiB) stays L1-resident across the row sweep.
	packKC = 256
)

// packBuf is a pooled pack-destination buffer. Pooling the struct pointer
// (not the slice) keeps Get/Put free of interface-boxing allocations.
type packBuf struct{ data []float32 }

var packBufPool = sync.Pool{New: func() any { return new(packBuf) }}

// getPackBuf returns a pooled buffer with at least size elements.
func getPackBuf(size int) *packBuf {
	pb := packBufPool.Get().(*packBuf)
	if cap(pb.data) < size {
		pb.data = make([]float32, size)
	}
	pb.data = pb.data[:size]
	return pb
}

// putPackBuf recycles the buffer.
func putPackBuf(pb *packBuf) { packBufPool.Put(pb) }

// packB copies b[k,n] into panel-major layout: panel p holds columns
// [p·packNR, (p+1)·packNR) as k rows of packNR contiguous floats, the tail
// panel zero-padded so the microkernel never branches on column count (the
// padded products land in accumulators the store step discards).
func packB(buf, b []float32, k, n int) {
	np := (n + packNR - 1) / packNR
	for p := 0; p < np; p++ {
		j0 := p * packNR
		dst := buf[p*k*packNR : (p+1)*k*packNR]
		if n-j0 >= packNR {
			for kk := 0; kk < k; kk++ {
				src := b[kk*n+j0 : kk*n+j0+packNR : kk*n+j0+packNR]
				d := dst[kk*packNR : kk*packNR+packNR : kk*packNR+packNR]
				d[0], d[1], d[2], d[3] = src[0], src[1], src[2], src[3]
			}
		} else {
			w := n - j0
			for kk := 0; kk < k; kk++ {
				d := dst[kk*packNR : kk*packNR+packNR : kk*packNR+packNR]
				for j := 0; j < packNR; j++ {
					if j < w {
						d[j] = b[kk*n+j0+j]
					} else {
						d[j] = 0
					}
				}
			}
		}
	}
}

// packedStore writes one microkernel row's accumulators into w valid output
// columns, adding when a previous k-block (or an accumulating caller)
// already owns the output.
func packedStore(dst []float32, w int, add bool, c0, c1, c2, c3 float32) {
	if add {
		switch w {
		case 4:
			dst[0] += c0
			dst[1] += c1
			dst[2] += c2
			dst[3] += c3
		case 3:
			dst[0] += c0
			dst[1] += c1
			dst[2] += c2
		case 2:
			dst[0] += c0
			dst[1] += c1
		case 1:
			dst[0] += c0
		}
		return
	}
	switch w {
	case 4:
		dst[0], dst[1], dst[2], dst[3] = c0, c1, c2, c3
	case 3:
		dst[0], dst[1], dst[2] = c0, c1, c2
	case 2:
		dst[0], dst[1] = c0, c1
	case 1:
		dst[0] = c0
	}
}

// packedMicro2x4 accumulates c[2, w] (+)= [a0; a1][k0:kMax] @
// panel[k0:kMax, 4] with all 8 targets live in registers across the
// k-block. a0 and a1 are the two full A rows; c is pre-offset to the
// block's first output element (stride ldc).
func packedMicro2x4(c []float32, ldc int, a0, a1, panel []float32, k0, kMax, w int, add bool) {
	var c00, c01, c02, c03 float32
	var c10, c11, c12, c13 float32
	for kk := k0; kk < kMax; kk++ {
		bq := panel[kk*packNR : kk*packNR+packNR : kk*packNR+packNR]
		av0, av1 := a0[kk], a1[kk]
		c00 += av0 * bq[0]
		c01 += av0 * bq[1]
		c02 += av0 * bq[2]
		c03 += av0 * bq[3]
		c10 += av1 * bq[0]
		c11 += av1 * bq[1]
		c12 += av1 * bq[2]
		c13 += av1 * bq[3]
	}
	packedStore(c, w, add, c00, c01, c02, c03)
	packedStore(c[ldc:], w, add, c10, c11, c12, c13)
}

// packedMicro1x4 is the single-row tail microkernel.
func packedMicro1x4(c []float32, a []float32, panel []float32, k0, kMax, w int, add bool) {
	var c0, c1, c2, c3 float32
	for kk := k0; kk < kMax; kk++ {
		bq := panel[kk*packNR : kk*packNR+packNR : kk*packNR+packNR]
		av := a[kk]
		c0 += av * bq[0]
		c1 += av * bq[1]
		c2 += av * bq[2]
		c3 += av * bq[3]
	}
	packedStore(c, w, add, c0, c1, c2, c3)
}

// packedRowRange runs the GEBP driver over output rows [lo, hi): k-blocks
// outermost (the first block initializes the output unless the caller
// accumulates; later blocks add), then panels (each panel's k-slab is the
// L1-resident operand), then packMR row blocks with a 1-row tail.
func packedRowRange(out, a, buf []float32, k, n, lo, hi int, accum bool) {
	np := (n + packNR - 1) / packNR
	for k0 := 0; k0 < k; k0 += packKC {
		kMax := min(k0+packKC, k)
		add := accum || k0 > 0
		for p := 0; p < np; p++ {
			panel := buf[p*k*packNR : (p+1)*k*packNR]
			j0 := p * packNR
			w := min(packNR, n-j0)
			i := lo
			for ; i+packMR <= hi; i += packMR {
				packedMicro2x4(out[i*n+j0:], n, a[i*k:], a[(i+1)*k:], panel, k0, kMax, w, add)
			}
			for ; i < hi; i++ {
				packedMicro1x4(out[i*n+j0:], a[i*k:], panel, k0, kMax, w, add)
			}
		}
	}
}

// packTask is the pooled parallel.Runner of the packed kernel; chunks share
// the read-only packed B and own disjoint row ranges.
type packTask struct {
	out, a, buf []float32
	k, n        int
	accum       bool
	ep          RowEpilogue
}

var packTaskPool = sync.Pool{New: func() any { return new(packTask) }}

// Run implements parallel.Runner on a row range of the output.
func (t *packTask) Run(_, lo, hi int) {
	packedRowRange(t.out, t.a, t.buf, t.k, t.n, lo, hi, t.accum)
	if t.ep != nil {
		applyEpilogue(t.ep, t.out, t.n, lo, hi)
	}
}

// runPackedPanels executes the GEBP driver against an ALREADY-PACKED
// panel-major B — either a pooled per-call buffer or a PackedWeights
// handle's version-stationary panels.
func runPackedPanels(par int, out, a, panels []float32, m, k, n int, accum bool, ep RowEpilogue) {
	t := packTaskPool.Get().(*packTask)
	*t = packTask{out: out, a: a, buf: panels, k: k, n: n, accum: accum, ep: ep}
	parallel.Run(par, m, mmGrain(k, n), t)
	*t = packTask{} // drop slice references before pooling
	packTaskPool.Put(t)
}

// matMulPackedEp is the packed backend's per-call entry: out[m,n] (+)=
// a[m,k] @ b[k,n] with ep fused per completed row chunk, b packed into a
// pooled buffer for the duration of the call. The caller has already decided
// dispatch via usePacked; k ≥ 1 is required (the first k-block initializes
// the output).
func matMulPackedEp(par int, out, a, b []float32, m, k, n int, accum bool, ep RowEpilogue) {
	np := (n + packNR - 1) / packNR
	pb := getPackBuf(np * k * packNR)
	packB(pb.data, b, k, n)
	runPackedPanels(par, out, a, pb.data, m, k, n, accum, ep)
	putPackBuf(pb)
}
