package serve

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// histBuckets spans 2^histMinExp up to 2^(histMinExp+histBuckets-2) in
// power-of-two buckets, with bucket 0 catching everything below and the last
// bucket everything above — wide enough for any virtual latency a sane
// service model produces.
const (
	histBuckets = 64
	histMinExp  = -30
)

// Histogram is a fixed power-of-two-bucket latency histogram. Bucketing uses
// math.Frexp — pure exponent extraction, no transcendental whose libm could
// vary — so two runs with identical latencies produce byte-identical String
// output; the CI smoke diffs exactly that.
type Histogram struct {
	counts [histBuckets]int64
	total  int64
}

// Add records one latency observation.
func (h *Histogram) Add(d float64) {
	h.counts[bucketOf(d)]++
	h.total++
}

// bucketOf maps a latency to its bucket: b such that d ∈ [2^(histMinExp+b-1),
// 2^(histMinExp+b)), clamped at both ends.
func bucketOf(d float64) int {
	if d <= 0 {
		return 0
	}
	_, exp := math.Frexp(d) // d = frac × 2^exp, frac ∈ [0.5, 1)
	b := exp - histMinExp
	if b < 0 {
		return 0
	}
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total }

// Equal reports whether two histograms are identical bucket by bucket.
func (h *Histogram) Equal(o *Histogram) bool { return h.counts == o.counts && h.total == o.total }

// String renders the non-empty buckets as "[lo, hi): count" lines — the
// bit-diffable artifact the CI smoke compares across runs.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "latency histogram (%d requests)\n", h.total)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo := math.Ldexp(1, histMinExp+i-1)
		hi := math.Ldexp(1, histMinExp+i)
		switch i {
		case 0:
			fmt.Fprintf(&b, "  [0, %g): %d\n", hi, c)
		case histBuckets - 1:
			fmt.Fprintf(&b, "  [%g, +inf): %d\n", lo, c)
		default:
			fmt.Fprintf(&b, "  [%g, %g): %d\n", lo, hi, c)
		}
	}
	return b.String()
}

// staleBuckets sizes the served-version staleness histogram: buckets 0
// through staleBuckets-2 count exact staleness values, the last bucket
// catches everything at or beyond staleBuckets-1.
const staleBuckets = 16

// StalenessHist counts served requests by served-version staleness — how
// many versions the store had accepted beyond the version that served the
// request, measured at completion. Fixed-size (and so comparable) like
// Histogram; the last bucket is an overflow bucket.
type StalenessHist [staleBuckets]int64

// add records n requests served at the given staleness.
func (h *StalenessHist) add(stale int, n int64) {
	if stale < 0 {
		stale = 0
	}
	if stale >= staleBuckets {
		stale = staleBuckets - 1
	}
	h[stale] += n
}

// String renders the non-empty buckets on one line ("0:481 1:17 15+:2").
func (h *StalenessHist) String() string {
	var b strings.Builder
	b.WriteString("staleness histogram:")
	for i, c := range h {
		if c == 0 {
			continue
		}
		if i == staleBuckets-1 {
			fmt.Fprintf(&b, " %d+:%d", i, c)
		} else {
			fmt.Fprintf(&b, " %d:%d", i, c)
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// Report is one load run's deterministic summary: throughput and exact
// order-statistic latency quantiles in virtual time, batching efficiency,
// and an FNV-1a digest of every request's output in request order — the
// value two runs (or two intra-op budgets) must reproduce bit-for-bit.
type Report struct {
	// Requests counts every finished request, served or shed; Served only
	// those that completed service (latency stats cover exactly these).
	Requests int
	Served   int
	// ShedQueue/ShedDeadline count admission rejections: arrivals refused at
	// a full pending queue, and queued requests dropped at service start
	// because their wait blew the deadline. Reissues counts closed-loop
	// clients that immediately re-entered after a shed; MaxQueue is the
	// peak pending depth (forming batch plus flushed queue). All zero when
	// admission control is off.
	ShedQueue    int
	ShedDeadline int
	Reissues     int
	MaxQueue     int
	// Batches counts batches that completed service; a fully-deadline-shed
	// batch never reaches a worker and is not counted. MeanBatch averages
	// the served (post-shed) sizes of those batches.
	Batches     int
	MeanBatch   float64
	VirtualTime float64
	// Throughput is Served / VirtualTime (virtual requests per time unit).
	Throughput  float64
	MeanLatency float64
	// P50/P95/P99 are exact nearest-rank order statistics over the served
	// latencies: the smallest latency with at least ⌈q·n⌉ observations at
	// or below it.
	P50, P95, P99 float64
	OutputDigest  uint64
	Hist          Histogram
	// Served-version staleness, tracked only by wired train-while-serve runs
	// (StaleTracked gates both rendering and the digest fold, so unwired
	// load reports stay byte-identical to the pre-wiring harness): per
	// served request, how many versions the store had accepted beyond the
	// version that served it, measured at completion.
	StaleTracked       bool
	StaleMin, StaleMax int
	StaleMean          float64
	StaleHist          StalenessHist
}

// quantiles fills the report's latency summary from the raw per-request
// latencies (exact sorted order statistics, not histogram interpolation).
func (r *Report) quantiles(lat []float64) {
	if len(lat) == 0 {
		return
	}
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)
	var sum float64
	for _, d := range sorted {
		sum += d
	}
	r.MeanLatency = sum / float64(len(sorted))
	pick := func(q float64) float64 {
		// Nearest rank: index ⌈q·n⌉-1 (clamped). Flooring q·(n-1) instead
		// reads a systematically low order statistic — p99 of 500 requests
		// picked index 494, which is ~p98.8.
		idx := int(math.Ceil(q*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return sorted[idx]
	}
	r.P50, r.P95, r.P99 = pick(0.50), pick(0.95), pick(0.99)
}

// String renders the summary; like the histogram it is deterministic, so the
// CI smoke can diff two runs' full stdout.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests=%d batches=%d mean_batch=%.6g\n", r.Requests, r.Batches, r.MeanBatch)
	fmt.Fprintf(&b, "virtual_time=%.6g throughput=%.6g req/unit\n", r.VirtualTime, r.Throughput)
	fmt.Fprintf(&b, "latency mean=%.6g p50=%.6g p95=%.6g p99=%.6g\n", r.MeanLatency, r.P50, r.P95, r.P99)
	fmt.Fprintf(&b, "admission served=%d shed_queue=%d shed_deadline=%d reissues=%d max_queue=%d\n",
		r.Served, r.ShedQueue, r.ShedDeadline, r.Reissues, r.MaxQueue)
	if r.StaleTracked {
		fmt.Fprintf(&b, "staleness served min=%d mean=%.6g max=%d\n", r.StaleMin, r.StaleMean, r.StaleMax)
		b.WriteString(r.StaleHist.String())
	}
	fmt.Fprintf(&b, "output_digest=%016x\n", r.OutputDigest)
	b.WriteString(r.Hist.String())
	return b.String()
}
