package fl

import (
	"testing"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/simclock"
)

// asyncFixtureServer mirrors fixtureServer on the asynchronous path: same
// population, hyperparameters, and seed.
func asyncFixtureServer(t *testing.T, strat Strategy, async AsyncConfig) *AsyncServer {
	t.Helper()
	perDevice := fixtureData(24, 3)
	clients, err := BuildPopulation(perDevice, []int{3, 3}, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Rounds: 20, ClientsPerRound: 4, BatchSize: 4, LocalEpochs: 1,
		LR: 0.2, Seed: 11, Workers: 1,
	}
	srv, err := NewAsyncServer(cfg, fixtureBuilder(5), nn.SoftmaxCrossEntropy{}, strat, clients, async)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func requireBitIdentical(t *testing.T, a, b nn.Weights, what string) {
	t.Helper()
	for i := range a.Params {
		if !a.Params[i].AllClose(b.Params[i], 0) {
			t.Fatalf("%s: param %d not bit-identical", what, i)
		}
	}
	for i := range a.States {
		if !a.States[i].AllClose(b.States[i], 0) {
			t.Fatalf("%s: state %d not bit-identical", what, i)
		}
	}
}

// The async contract: with zero latency, discount ≡ 1, and
// Concurrency == Buffer == K, the asynchronous server is BIT-identical
// (tolerance 0) to the synchronous streaming server — weights and per-round
// scalar stats — for every strategy that folds. This is what keeps the async
// path honest.
func TestAsyncZeroLatencyMatchesSyncStreaming(t *testing.T) {
	for _, tc := range []struct {
		name  string
		strat func() Strategy
	}{
		{"FedAvg", func() Strategy { return FedAvg{} }},
		{"FedProx", func() Strategy { return &FedProx{Mu: 0.1} }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sync := fixtureServer(t, tc.strat(), 1)
			var syncStats []RoundStats
			sync.Run(func(s RoundStats) { syncStats = append(syncStats, s) })

			// PolynomialStaleness{Alpha: 0} makes the discount identically 1.
			async := asyncFixtureServer(t, tc.strat(), AsyncConfig{
				Staleness: PolynomialStaleness{Alpha: 0},
				Latency:   simclock.Constant{D: 0},
			})
			var asyncStats []AsyncRoundStats
			async.Run(func(s AsyncRoundStats) { asyncStats = append(asyncStats, s) })

			requireBitIdentical(t, sync.Global, async.Global, tc.name)
			if len(syncStats) != len(asyncStats) {
				t.Fatalf("round counts differ: %d vs %d", len(syncStats), len(asyncStats))
			}
			for i := range syncStats {
				ss, as := syncStats[i], asyncStats[i]
				if ss.MeanLoss != as.MeanLoss || ss.MeanInit != as.MeanInit {
					t.Fatalf("round %d losses diverged: sync %v/%v async %v/%v",
						i, ss.MeanLoss, ss.MeanInit, as.MeanLoss, as.MeanInit)
				}
				if len(ss.Sampled) != len(as.Sampled) {
					t.Fatalf("round %d sampled %d vs %d", i, len(ss.Sampled), len(as.Sampled))
				}
				for j := range ss.Sampled {
					if ss.Sampled[j] != as.Sampled[j] {
						t.Fatalf("round %d sampled client order diverged: %v vs %v", i, ss.Sampled, as.Sampled)
					}
				}
				if ss.BytesDown != as.BytesDown || ss.BytesUp != as.BytesUp {
					t.Fatalf("round %d communication accounting diverged", i)
				}
				if as.MeanStaleness != 0 || as.MaxStaleness != 0 || as.MeanDiscount != 1 {
					t.Fatalf("round %d saw staleness at zero latency: %+v", i, as)
				}
			}
		})
	}
}

// Two async runs with the same seed and latency model must be bit-identical:
// weights, virtual clock, and staleness telemetry.
func TestAsyncRunsAreBitReproducible(t *testing.T) {
	mk := func() (*AsyncServer, []AsyncRoundStats) {
		srv := asyncFixtureServer(t, FedAvg{}, AsyncConfig{
			Staleness:   PolynomialStaleness{Alpha: 0.5},
			Latency:     simclock.StragglerTail{Lo: 0.5, Hi: 2, TailProb: 0.3, TailFactor: 8, Seed: 17},
			Concurrency: 8,
			Buffer:      4,
		})
		var stats []AsyncRoundStats
		srv.Run(func(s AsyncRoundStats) { stats = append(stats, s) })
		return srv, stats
	}
	a, sa := mk()
	b, sb := mk()
	requireBitIdentical(t, a.Global, b.Global, "reproducibility")
	for i := range sa {
		if sa[i].VirtualTime != sb[i].VirtualTime ||
			sa[i].MeanStaleness != sb[i].MeanStaleness ||
			sa[i].MeanDiscount != sb[i].MeanDiscount ||
			sa[i].Version != sb[i].Version {
			t.Fatalf("round %d telemetry diverged: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}

// With more jobs in flight than the aggregation buffer and a straggler tail,
// windows overlap: results must arrive stale and the polynomial policy must
// discount them.
func TestAsyncStalenessEngagesUnderStragglers(t *testing.T) {
	srv := asyncFixtureServer(t, FedAvg{}, AsyncConfig{
		Staleness:   PolynomialStaleness{Alpha: 0.5},
		Latency:     simclock.StragglerTail{Lo: 0.5, Hi: 2, TailProb: 0.4, TailFactor: 16, Seed: 5},
		Concurrency: 8,
		Buffer:      4,
	})
	sawStale, sawDiscount := false, false
	var lastTime float64
	srv.Run(func(s AsyncRoundStats) {
		if s.VirtualTime < lastTime {
			t.Fatalf("virtual time went backwards: %v after %v", s.VirtualTime, lastTime)
		}
		lastTime = s.VirtualTime
		if s.MaxStaleness > 0 {
			sawStale = true
		}
		if s.MeanDiscount < 1 {
			sawDiscount = true
		}
		if s.MeanDiscount > 1 || s.MeanDiscount <= 0 {
			t.Fatalf("discount out of range: %+v", s)
		}
	})
	if !sawStale || !sawDiscount {
		t.Fatalf("straggler run never produced stale folds (stale %v, discount %v)", sawStale, sawDiscount)
	}
	if lastTime <= 0 {
		t.Fatal("virtual clock never advanced under nonzero latency")
	}
	for _, p := range srv.Global.Params {
		if p.HasNaN() {
			t.Fatal("NaN weights after stale aggregation")
		}
	}
}

// The version store must bound its footprint: at most Concurrency-Buffer
// jobs stay in flight between windows, and old versions recycle once their
// last reader completes.
func TestAsyncVersionStoreBounded(t *testing.T) {
	srv := asyncFixtureServer(t, FedAvg{}, AsyncConfig{
		Staleness:   PolynomialStaleness{Alpha: 0.5},
		Latency:     simclock.StragglerTail{Lo: 0.5, Hi: 2, TailProb: 0.4, TailFactor: 16, Seed: 5},
		Concurrency: 8,
		Buffer:      4,
	})
	srv.Run(nil)
	if got, want := srv.InFlight(), 8-4; got != want {
		t.Fatalf("in-flight after run = %d, want %d", got, want)
	}
	if n := srv.store.Live(); n > 8 {
		t.Fatalf("version store retains %d versions; in-flight jobs can reference at most 8", n)
	}
	if n := srv.store.FreeCount(); n > 16 {
		t.Fatalf("version free pool grew unboundedly: %d buffers", n)
	}
}

// Client dropout on the async path: dropped clients are drawn, recorded, and
// never dispatched; every fold still comes from a live client.
func TestAsyncDropoutAccounting(t *testing.T) {
	srv := asyncFixtureServer(t, FedAvg{}, AsyncConfig{
		Latency: simclock.Uniform{Lo: 0.5, Hi: 2, Seed: 9},
	})
	srv.Cfg.ClientDropout = 0.3
	folded, dropped := 0, 0
	srv.Run(func(s AsyncRoundStats) {
		folded += len(s.Sampled)
		dropped += len(s.Dropped)
	})
	if folded != srv.Cfg.Rounds*srv.Async.Buffer {
		t.Fatalf("folded %d results, want %d", folded, srv.Cfg.Rounds*srv.Async.Buffer)
	}
	if dropped == 0 {
		t.Fatal("30% dropout over 80 draws never dropped a client")
	}
	for _, p := range srv.Global.Params {
		if p.HasNaN() {
			t.Fatal("NaN weights under async dropout")
		}
	}
}

// Race coverage for the async completion loop: the intra-op budget sends the
// lazily evaluated training through the parallel kernels while the event
// loop folds completions. Run with -race in CI.
func TestAsyncIntraOpParallelRace(t *testing.T) {
	srv := asyncFixtureServer(t, FedAvg{}, AsyncConfig{
		Staleness:   PolynomialStaleness{Alpha: 0.5},
		Latency:     simclock.StragglerTail{Lo: 0.5, Hi: 2, TailProb: 0.3, TailFactor: 8, Seed: 3},
		Concurrency: 8,
		Buffer:      4,
	})
	srv.Cfg.IntraOp = 4
	srv.net.SetIntraOp(4)
	srv.Run(nil)
	for _, p := range srv.Global.Params {
		if p.HasNaN() {
			t.Fatal("NaN weights from async run with intra-op kernels")
		}
	}
}

func TestNewAsyncServerValidation(t *testing.T) {
	perDevice := fixtureData(8, 1)
	clients, _ := BuildPopulation(perDevice, []int{1, 1}, 1)
	cfg := Config{Rounds: 2, ClientsPerRound: 2, BatchSize: 4, LocalEpochs: 1, LR: 0.1, Seed: 1, Workers: 1}
	builder := fixtureBuilder(1)
	loss := nn.SoftmaxCrossEntropy{}

	// Barrier-only strategies cannot aggregate asynchronously.
	for _, strat := range []Strategy{&QFedAvg{Q: 1}, &Scaffold{}} {
		if _, err := NewAsyncServer(cfg, builder, loss, strat, clients, AsyncConfig{}); err == nil {
			t.Fatalf("%s must be rejected by the async server", strat.Name())
		}
	}
	// A window larger than the in-flight set could never fill.
	if _, err := NewAsyncServer(cfg, builder, loss, FedAvg{}, clients, AsyncConfig{Concurrency: 2, Buffer: 4}); err == nil {
		t.Fatal("Buffer > Concurrency must be rejected")
	}
	if _, err := NewAsyncServer(cfg, builder, loss, FedAvg{}, clients, AsyncConfig{Buffer: -1}); err == nil {
		t.Fatal("negative buffer must be rejected")
	}
	if _, err := NewAsyncServer(cfg, builder, loss, FedAvg{}, nil, AsyncConfig{}); err == nil {
		t.Fatal("empty population must be rejected")
	}
	bad := cfg
	bad.ClientsPerRound = 50
	if _, err := NewAsyncServer(bad, builder, loss, FedAvg{}, clients, AsyncConfig{}); err == nil {
		t.Fatal("K > N must be rejected")
	}
	// Defaults resolve: K-sized window, depth-1 pipeline, no discount.
	srv, err := NewAsyncServer(cfg, builder, loss, FedAvg{}, clients, AsyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Async.Buffer != 2 || srv.Async.Concurrency != 2 {
		t.Fatalf("defaults not resolved: %+v", srv.Async)
	}
	if srv.Async.Staleness.Weight(3) != 1 {
		t.Fatal("default policy must not discount")
	}
}

// A staleness discount of 0 discards the result, so the server must not pay
// local training for it. The skip has to be invisible: the global model
// stays bit-identical to its initial state (no window can update at all-zero
// weight), the version never bumps, and — because client RNG is a pure
// function of (client, version) — the sampling stream advances exactly as it
// does when training runs, which a C=1 twin run pins down.
func TestAsyncZeroDiscountSkipsTraining(t *testing.T) {
	mk := func(c float64) (*AsyncServer, []AsyncRoundStats) {
		srv := asyncFixtureServer(t, FedAvg{}, AsyncConfig{
			Staleness: ConstantStaleness{C: c},
			Latency:   simclock.Uniform{Lo: 0.5, Hi: 2, Seed: 9},
		})
		srv.Cfg.ClientDropout = 0.3 // exercise the refill loop's dropout coins too
		var stats []AsyncRoundStats
		srv.Run(func(s AsyncRoundStats) { stats = append(stats, s) })
		return srv, stats
	}

	zeroSrv := asyncFixtureServer(t, FedAvg{}, AsyncConfig{
		Staleness: ConstantStaleness{C: 0},
		Latency:   simclock.Uniform{Lo: 0.5, Hi: 2, Seed: 9},
	})
	zeroSrv.Cfg.ClientDropout = 0.3
	initial := zeroSrv.Global.Clone()
	var zeroStats []AsyncRoundStats
	zeroSrv.Run(func(s AsyncRoundStats) { zeroStats = append(zeroStats, s) })

	requireBitIdentical(t, zeroSrv.Global, initial, "zero-discount global")
	if zeroSrv.Version != 0 {
		t.Fatalf("zero-discount run bumped version to %d", zeroSrv.Version)
	}

	_, oneStats := mk(1)
	if len(zeroStats) != len(oneStats) {
		t.Fatalf("window counts differ: %d vs %d", len(zeroStats), len(oneStats))
	}
	for i := range zeroStats {
		zs, os := zeroStats[i], oneStats[i]
		if zs.Skipped != zeroSrv.Async.Buffer {
			t.Fatalf("window %d skipped %d folds, want all %d", i, zs.Skipped, zeroSrv.Async.Buffer)
		}
		if zs.TotalEpochs != 0 {
			t.Fatalf("window %d claims %d training epochs despite skipping", i, zs.TotalEpochs)
		}
		if os.Skipped != 0 {
			t.Fatalf("window %d of the C=1 run skipped %d folds", i, os.Skipped)
		}
		// The sampling RNG stream must be unperturbed by the skip: both runs
		// draw the same clients, drop the same clients, and account the same
		// bytes in the same windows.
		if len(zs.Sampled) != len(os.Sampled) {
			t.Fatalf("window %d sampled %d vs %d clients", i, len(zs.Sampled), len(os.Sampled))
		}
		for j := range zs.Sampled {
			if zs.Sampled[j] != os.Sampled[j] {
				t.Fatalf("window %d sampling stream diverged: %v vs %v", i, zs.Sampled, os.Sampled)
			}
		}
		if len(zs.Dropped) != len(os.Dropped) {
			t.Fatalf("window %d dropped %d vs %d clients", i, len(zs.Dropped), len(os.Dropped))
		}
		for j := range zs.Dropped {
			if zs.Dropped[j] != os.Dropped[j] {
				t.Fatalf("window %d dropout stream diverged: %v vs %v", i, zs.Dropped, os.Dropped)
			}
		}
		if zs.BytesDown != os.BytesDown || zs.BytesUp != os.BytesUp {
			t.Fatalf("window %d byte accounting diverged: down %d/%d up %d/%d",
				i, zs.BytesDown, os.BytesDown, zs.BytesUp, os.BytesUp)
		}
		if zs.VirtualTime != os.VirtualTime {
			t.Fatalf("window %d virtual clocks diverged: %v vs %v", i, zs.VirtualTime, os.VirtualTime)
		}
	}
}

// The refill loop's boundary case: an entire K-client draw lost to dropout.
// The synchronous server declares a lost round; the asynchronous server
// redraws until it can keep Concurrency jobs in flight. This test pins the
// RNG-stream contract at that boundary — the async server consumes the
// sampling stream (Choice + one dropout coin per drawn client) exactly as
// the sync server does, so the all-dropout draw's IDs match the sync
// server's lost round, and every redraw's dropped/admitted IDs and byte
// accounting replay from the seed by hand.
func TestAsyncAllDropoutRefill(t *testing.T) {
	const drop = 0.9
	perDevice := fixtureData(24, 3)
	clients, err := BuildPopulation(perDevice, []int{3, 3}, 7)
	if err != nil {
		t.Fatal(err)
	}
	n := len(clients)
	const k = 4

	// Find a seed whose FIRST draw is entirely lost to dropout, replaying the
	// server's sampling stream: one Choice(n, k), then one coin per drawn
	// client (the stream both servers share, seeded cfg.Seed ^ 0x5ca1ab1e).
	var seed uint64
	for s := uint64(1); ; s++ {
		if s > 100000 {
			t.Fatal("no all-dropout seed found in search range")
		}
		r := frand.New(s ^ 0x5ca1ab1e)
		r.Choice(n, k)
		all := true
		for i := 0; i < k; i++ {
			if r.Float64() >= drop {
				all = false
			}
		}
		if all {
			seed = s
			break
		}
	}

	// Hand-replay the refill loop: k-client draws, each client costing one
	// coin, until k survivors exist to fill the in-flight set.
	r := frand.New(seed ^ 0x5ca1ab1e)
	var expDropped, expAdmitted []int
	var firstDraw []int
	for len(expAdmitted) < k {
		first := firstDraw == nil
		for _, j := range r.Choice(n, k) {
			c := clients[j]
			if first {
				firstDraw = append(firstDraw, c.ID)
			}
			if r.Float64() < drop {
				expDropped = append(expDropped, c.ID)
			} else {
				expAdmitted = append(expAdmitted, c.ID)
			}
		}
	}
	if len(firstDraw) != len(expDropped) && len(expDropped) < k {
		t.Fatalf("seed search broken: first draw %v not all-dropout (dropped %v)", firstDraw, expDropped)
	}

	cfg := Config{
		Rounds: 1, ClientsPerRound: k, BatchSize: 4, LocalEpochs: 1,
		LR: 0.2, Seed: seed, Workers: 1, ClientDropout: drop,
	}
	srv, err := NewAsyncServer(cfg, fixtureBuilder(5), nn.SoftmaxCrossEntropy{}, FedAvg{}, clients, AsyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	wb := weightBytes(srv.Global)
	st := srv.RunRound()

	if len(st.Dropped) != len(expDropped) {
		t.Fatalf("dropped %v, want %v", st.Dropped, expDropped)
	}
	for i := range expDropped {
		if st.Dropped[i] != expDropped[i] {
			t.Fatalf("dropped order diverged: %v, want %v", st.Dropped, expDropped)
		}
	}
	for i := range firstDraw {
		if st.Dropped[i] != firstDraw[i] {
			t.Fatalf("all-dropout draw %v not recorded first in %v", firstDraw, st.Dropped)
		}
	}
	// Zero latency: fold order is dispatch order, so Sampled is the first k
	// survivors of the replayed stream.
	if len(st.Sampled) != k {
		t.Fatalf("folded %d results, want %d", len(st.Sampled), k)
	}
	for i := 0; i < k; i++ {
		if st.Sampled[i] != expAdmitted[i] {
			t.Fatalf("admitted %v, want %v", st.Sampled, expAdmitted[:k])
		}
	}
	// Every drawn client costs one broadcast — dropout is only observed after
	// the round trip — and every dispatched client one more model down+up.
	if want := wb * int64(len(expDropped)+k); st.BytesDown != want {
		t.Fatalf("BytesDown = %d, want %d (%d dropped + %d dispatched broadcasts)",
			st.BytesDown, want, len(expDropped), k)
	}
	if want := wb * int64(k); st.BytesUp != want {
		t.Fatalf("BytesUp = %d, want %d", st.BytesUp, want)
	}

	// The sync server's round 0 consumes the identical stream prefix, so its
	// lost round drops exactly the async server's first draw.
	ssrv, err := NewServer(cfg, fixtureBuilder(5), nn.SoftmaxCrossEntropy{}, FedAvg{}, clients)
	if err != nil {
		t.Fatal(err)
	}
	sst := ssrv.RunRound(0)
	if len(sst.Sampled) != 0 {
		t.Fatalf("sync round with an all-dropout draw still trained %v", sst.Sampled)
	}
	if len(sst.Dropped) != len(firstDraw) {
		t.Fatalf("sync lost round dropped %v, want the full draw %v", sst.Dropped, firstDraw)
	}
	for i := range firstDraw {
		if sst.Dropped[i] != firstDraw[i] {
			t.Fatalf("sync/async all-dropout draws diverged: %v vs %v", sst.Dropped, firstDraw)
		}
	}
}
