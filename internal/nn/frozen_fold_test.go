package nn

import (
	"testing"

	"heteroswitch/internal/frand"
)

// White-box coverage of the Residual projection fold: exactly the
// 1×1/stride-1/unpadded/ungrouped, activation-free projection shape may
// fold onto the skip path, everything else must keep the materialized
// branch.

// compileResidual freezes a lone Residual and returns its compiled op.
func compileResidual(body, proj Layer) *frozenResidual {
	ops := (&opCompiler{}).compileLayer(NewResidual(body, proj))
	if len(ops) != 1 {
		panic("residual compiled to more than one op")
	}
	return ops[0].(*frozenResidual)
}

func TestResidualProjFoldDetection(t *testing.T) {
	r := frand.New(11)
	body := func() Layer {
		return NewNetwork(NewConv2D(r, 4, 8, 3, 1, 1, 1), NewReLU())
	}

	if op := compileResidual(body(), NewNetwork(NewConv2D(r, 4, 8, 1, 1, 0, 1))); op.foldedProj == nil {
		t.Fatal("bare 1x1 conv projection must fold")
	}
	if op := compileResidual(body(), NewNetwork(NewConv2D(r, 4, 8, 1, 1, 0, 1), NewBatchNorm2D(8))); op.foldedProj == nil {
		t.Fatal("1x1 conv+BN projection must fold (BN is absorbed by the conv fold)")
	}

	for _, tc := range []struct {
		name string
		proj Layer
	}{
		{"identity", nil},
		{"strided", NewNetwork(NewConv2D(r, 4, 8, 1, 2, 0, 1))},
		{"3x3", NewNetwork(NewConv2D(r, 4, 8, 3, 1, 1, 1))},
		{"grouped", NewNetwork(NewConv2D(r, 4, 8, 1, 1, 0, 2))},
		{"activated", NewNetwork(NewConv2D(r, 4, 8, 1, 1, 0, 1), NewReLU())},
		{"two-ops", NewNetwork(NewConv2D(r, 4, 4, 1, 1, 0, 1), NewConv2D(r, 4, 8, 1, 1, 0, 1))},
	} {
		b := body()
		if tc.name == "strided" {
			b = NewNetwork(NewConv2D(r, 4, 8, 3, 2, 1, 1), NewReLU())
		}
		if op := compileResidual(b, tc.proj); op.foldedProj != nil {
			t.Fatalf("%s projection must NOT fold", tc.name)
		}
	}

	// An empty body would make runOps return the input itself; accumulating
	// the projection onto it would clobber x, so the fold must decline.
	if op := compileResidual(NewIdentity(), NewNetwork(NewConv2D(r, 4, 4, 1, 1, 0, 1))); op.foldedProj != nil {
		t.Fatal("empty-body residual must NOT fold its projection")
	}
}
