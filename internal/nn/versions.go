package nn

// VersionStore tracks reference-counted versions of a model's weights: every
// consumer that was handed version v — an in-flight asynchronous training job
// that must train against the exact global broadcast at its dispatch, or an
// admitted prediction request that must be served by the exact model version
// current at its admission — retains v until it completes. Fully released
// stale versions recycle into a free buffer pool the owner draws its next
// outgoing weight sets from, so the steady state of a version-churning loop
// allocates no model-sized buffers at all.
//
// The store is deliberately passive: it never copies weights and never
// decides what "current" means. The owner keeps the live weights outside the
// store (fl.AsyncServer's Global, serve.Store's published set), Retains them
// per consumer, Retires them when a newer version replaces them, and passes
// the live set to Release so a buffer that still backs the current version is
// never recycled out from under it.
//
// The zero value is ready to use. VersionStore is not safe for concurrent
// use; owners that admit from multiple goroutines wrap it in a mutex
// (internal/serve does), while single-goroutine event loops (fl.AsyncServer)
// use it bare.
type VersionStore struct {
	entries map[int]*versionEntry
	free    []Weights
}

type versionEntry struct {
	w    Weights
	refs int
}

// Retain records one in-flight reference to version v, whose weights are w.
func (vs *VersionStore) Retain(v int, w Weights) {
	if vs.entries == nil {
		vs.entries = map[int]*versionEntry{}
	}
	e := vs.entries[v]
	if e == nil {
		e = &versionEntry{w: w}
		vs.entries[v] = e
	}
	e.refs++
}

// Weights returns version v's weights; v must have been retained.
func (vs *VersionStore) Weights(v int) Weights { return vs.entries[v].w }

// Release drops one in-flight reference. A fully released version's buffer
// recycles unless it still backs the live weights (current).
func (vs *VersionStore) Release(v int, current Weights) {
	e := vs.entries[v]
	e.refs--
	if e.refs > 0 {
		return
	}
	delete(vs.entries, v)
	if !e.w.SharesStorage(current) {
		vs.free = append(vs.free, e.w)
	}
}

// Retire recycles an outgoing weight set with no in-flight readers; if
// readers remain, Release recycles it when the last one completes.
func (vs *VersionStore) Retire(w Weights) {
	for _, e := range vs.entries {
		if e.w.SharesStorage(w) {
			return
		}
	}
	vs.free = append(vs.free, w)
}

// TakeBuffer returns a pooled model-shaped buffer, allocating a zeroed clone
// only when the pool is empty.
func (vs *VersionStore) TakeBuffer(like Weights) Weights {
	if n := len(vs.free); n > 0 {
		w := vs.free[n-1]
		vs.free = vs.free[:n-1]
		return w
	}
	return like.Zero()
}

// GiveBuffer returns an unused buffer to the pool.
func (vs *VersionStore) GiveBuffer(w Weights) { vs.free = append(vs.free, w) }

// Live returns the number of versions still pinned by at least one reference.
func (vs *VersionStore) Live() int { return len(vs.entries) }

// FreeCount returns the number of recycled buffers waiting in the pool.
func (vs *VersionStore) FreeCount() int { return len(vs.free) }

// SharesStorage reports whether two weight sets are backed by the same
// tensors — the identity test behind the store's recycling decisions.
func (w Weights) SharesStorage(o Weights) bool {
	if len(w.Params) > 0 && len(o.Params) > 0 {
		return w.Params[0] == o.Params[0]
	}
	return len(w.States) > 0 && len(o.States) > 0 && w.States[0] == o.States[0]
}
