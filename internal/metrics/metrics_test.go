package metrics

import (
	"math"
	"testing"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/tensor"
)

func TestMeanVarianceWorst(t *testing.T) {
	vs := []float64{2, 4, 6}
	if Mean(vs) != 4 {
		t.Fatalf("Mean = %v", Mean(vs))
	}
	if math.Abs(Variance(vs)-8.0/3) > 1e-12 {
		t.Fatalf("Variance = %v", Variance(vs))
	}
	if Worst(vs) != 2 {
		t.Fatalf("Worst = %v", Worst(vs))
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Worst(nil) != 0 {
		t.Fatal("empty input should yield zeros")
	}
	if Std([]float64{1, 1, 1}) != 0 {
		t.Fatal("Std of constants should be 0")
	}
}

func TestDegradation(t *testing.T) {
	if d := Degradation(0.8, 0.6); math.Abs(d-0.25) > 1e-12 {
		t.Fatalf("Degradation = %v, want 0.25", d)
	}
	if Degradation(0, 0.5) != 0 {
		t.Fatal("zero reference should yield 0")
	}
	if Degradation(0.5, 0.6) >= 0 {
		t.Fatal("improvement should be negative degradation")
	}
}

func TestValuesOrdered(t *testing.T) {
	m := map[int]float64{2: 0.2, 0: 0.0, 1: 0.1}
	vs := Values(m)
	if len(vs) != 3 || vs[0] != 0 || vs[1] != 0.1 || vs[2] != 0.2 {
		t.Fatalf("Values = %v", vs)
	}
}

func TestAveragePrecisionPerfectRanking(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	rel := []bool{true, true, false, false}
	if ap := AveragePrecision(scores, rel); ap != 1 {
		t.Fatalf("perfect ranking AP = %v", ap)
	}
}

func TestAveragePrecisionWorstRanking(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	rel := []bool{true, true, false, false}
	// Positives at ranks 3 and 4: AP = (1/3 + 2/4)/2 = 5/12.
	if ap := AveragePrecision(scores, rel); math.Abs(ap-5.0/12) > 1e-12 {
		t.Fatalf("worst ranking AP = %v, want %v", ap, 5.0/12)
	}
}

func TestAveragePrecisionNoPositives(t *testing.T) {
	if ap := AveragePrecision([]float64{1, 2}, []bool{false, false}); ap != 0 {
		t.Fatalf("AP without positives = %v", ap)
	}
}

func TestMeanAveragePrecision(t *testing.T) {
	scores := tensor.FromSlice([]float32{
		0.9, 0.1,
		0.8, 0.9,
		0.1, 0.8,
	}, 3, 2)
	labels := tensor.FromSlice([]float32{
		1, 0,
		1, 1,
		0, 1,
	}, 3, 2)
	if m := MeanAveragePrecision(scores, labels); m != 1 {
		t.Fatalf("mAP = %v, want 1 for consistent rankings", m)
	}
	// A class with zero positives is skipped, not counted as zero.
	labels2 := tensor.FromSlice([]float32{1, 0, 1, 0, 0, 0}, 3, 2)
	if m := MeanAveragePrecision(scores, labels2); m != 1 {
		t.Fatalf("mAP with empty class = %v", m)
	}
}

func TestMeanAbsRelDeviation(t *testing.T) {
	pred := []float64{90, 110}
	truth := []float64{100, 100}
	if d := MeanAbsRelDeviation(pred, truth); math.Abs(d-0.1) > 1e-12 {
		t.Fatalf("deviation = %v, want 0.1", d)
	}
	if d := MeanAbsRelDeviation([]float64{5}, []float64{0}); d != 0 {
		t.Fatal("non-positive truth entries must be skipped")
	}
}

// biasedDataset builds a dataset where class = 1 iff the mean pixel exceeds
// 0.5, plus a network that a quick training run can fit, to test Accuracy.
func makeEvalFixture() (*nn.Network, *dataset.Dataset) {
	r := frand.New(5)
	ds := &dataset.Dataset{NumClasses: 2}
	for i := 0; i < 30; i++ {
		x := tensor.New(1, 4, 4)
		label := i % 2
		base := float32(0.2)
		if label == 1 {
			base = 0.8
		}
		for j := range x.Data() {
			x.Data()[j] = base + float32(r.NormFloat64()*0.02)
		}
		ds.Samples = append(ds.Samples, dataset.Sample{X: x, Label: label, Device: i % 2})
	}
	net := nn.NewNetwork(
		nn.NewFlatten(),
		nn.NewDense(r, 16, 2),
	)
	opt := nn.NewSGD(0.5, 0, 0)
	for e := 0; e < 30; e++ {
		x, labels := ds.Batch(0, ds.Len())
		out := net.Forward(x, true)
		_, grad := nn.SoftmaxCrossEntropy{}.Eval(out, nn.ClassTarget(labels))
		net.Backward(grad)
		opt.Step(net.Params())
	}
	return net, ds
}

func TestAccuracyOnLearnableProblem(t *testing.T) {
	net, ds := makeEvalFixture()
	acc := Accuracy(net, ds, 7) // odd batch exercises the remainder path
	if acc < 0.95 {
		t.Fatalf("accuracy %v on trivially separable data", acc)
	}
}

func TestPerDeviceAccuracy(t *testing.T) {
	net, ds := makeEvalFixture()
	per := PerDeviceAccuracy(net, ds, 8)
	if len(per) != 2 {
		t.Fatalf("expected 2 device groups, got %d", len(per))
	}
	for dev, acc := range per {
		if acc < 0.9 {
			t.Fatalf("device %d accuracy %v", dev, acc)
		}
	}
}

func TestMeanLoss(t *testing.T) {
	net, ds := makeEvalFixture()
	l := MeanLoss(net, nn.SoftmaxCrossEntropy{}, ds, 8)
	if l <= 0 || l > 1 {
		t.Fatalf("mean loss %v implausible for a fitted model", l)
	}
	if MeanLoss(net, nn.SoftmaxCrossEntropy{}, &dataset.Dataset{NumClasses: 2}, 8) != 0 {
		t.Fatal("empty dataset loss should be 0")
	}
}

func TestAccuracyEmptyDataset(t *testing.T) {
	net, _ := makeEvalFixture()
	if Accuracy(net, &dataset.Dataset{NumClasses: 2}, 4) != 0 {
		t.Fatal("empty dataset accuracy should be 0")
	}
}

// makeConvEvalFixture builds a small BN-bearing conv classifier and a
// device-tagged dataset, briefly trained so the BN running statistics and
// weights are non-trivial — the fixture for fused-vs-reference routing.
func makeConvEvalFixture() (*nn.Network, *dataset.Dataset) {
	r := frand.New(6)
	ds := &dataset.Dataset{NumClasses: 3}
	for i := 0; i < 26; i++ {
		ds.Samples = append(ds.Samples, dataset.Sample{
			X: tensor.Randn(r, 0.8, 2, 6, 6), Label: i % 3, Device: i % 2,
		})
	}
	net := nn.NewNetwork(
		nn.NewConv2D(r, 2, 6, 3, 1, 1, 1),
		nn.NewBatchNorm2D(6),
		nn.NewReLU(),
		nn.NewGlobalAvgPool(),
		nn.NewDense(r, 6, 3),
	)
	opt := nn.NewSGD(0.05, 0.9, 0)
	for e := 0; e < 5; e++ {
		x, labels := ds.Batch(0, ds.Len())
		out := net.Forward(x, true)
		_, grad := nn.SoftmaxCrossEntropy{}.Eval(out, nn.ClassTarget(labels))
		net.Backward(grad)
		opt.Step(net.Params())
	}
	return net, ds
}

// TestFusedEvalMatchesReference: every metrics entry point must return
// identical decisions (accuracy, per-device accuracy) and near-identical
// losses whether it routes through the frozen fast path or the reference
// forward — the -fused-eval A/B contract.
func TestFusedEvalMatchesReference(t *testing.T) {
	net, ds := makeConvEvalFixture()
	fusedAcc := Accuracy(net, ds, 7)
	fusedPer := PerDeviceAccuracy(net, ds, 7)
	fusedLoss := MeanLoss(net, nn.SoftmaxCrossEntropy{}, ds, 7)

	nn.SetFusedEval(false)
	defer nn.SetFusedEval(true)
	refAcc := Accuracy(net, ds, 7)
	refPer := PerDeviceAccuracy(net, ds, 7)
	refLoss := MeanLoss(net, nn.SoftmaxCrossEntropy{}, ds, 7)

	if fusedAcc != refAcc {
		t.Fatalf("fused accuracy %v != reference %v (argmax must be identical)", fusedAcc, refAcc)
	}
	if len(fusedPer) != len(refPer) {
		t.Fatalf("per-device map sizes differ: %d vs %d", len(fusedPer), len(refPer))
	}
	for dev, acc := range refPer {
		if fusedPer[dev] != acc {
			t.Fatalf("device %d: fused %v != reference %v", dev, fusedPer[dev], acc)
		}
	}
	// The loss bound follows the active kernel tier: the float tiers hold
	// 1e-5; the opt-in int8 tier carries its looser documented tolerance
	// (decisions above must stay identical regardless).
	lossTol := 1e-5
	if tensor.ActiveBackend() == tensor.BackendInt8 {
		lossTol = tensor.Int8Tol
	}
	if d := math.Abs(fusedLoss - refLoss); d > lossTol {
		t.Fatalf("fused mean loss diverges from reference by %.3g (tol %g)", d, lossTol)
	}
}

// TestPerDeviceAccuracyMatchesPerSubsetAccuracy pins the shared-iterator
// refactor: the per-device sweep on one scratch + one frozen replica must
// equal running Accuracy per device subset.
func TestPerDeviceAccuracyMatchesPerSubsetAccuracy(t *testing.T) {
	net, ds := makeConvEvalFixture()
	per := PerDeviceAccuracy(net, ds, 5)
	for dev, sub := range ds.ByDevice() {
		if want := Accuracy(net, sub, 5); per[dev] != want {
			t.Fatalf("device %d: PerDeviceAccuracy %v != Accuracy on subset %v", dev, per[dev], want)
		}
	}
}
