package experiments

import (
	"fmt"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/device"
	"heteroswitch/internal/fl"
	"heteroswitch/internal/metrics"
)

// Fig4Result is the fairness characterization (Fig. 4): per-device accuracy
// of a market-share FedAvg model, reported as degradation against the best
// dominant-device accuracy.
type Fig4Result struct {
	DeviceNames []string
	Acc         []float64
	DominantAcc float64 // max accuracy among the dominant devices (S9, S6)
	Degradation []float64
	Dominant    []bool
}

// String renders the per-device degradation bars.
func (r *Fig4Result) String() string {
	t := &Table{
		Title:  fmt.Sprintf("Figure 4 — bias toward dominant devices (dominant acc %s)", pct(r.DominantAcc)),
		Header: []string{"device", "accuracy", "degradation vs dominant", "dominant?"},
	}
	for i, name := range r.DeviceNames {
		dom := ""
		if r.Dominant[i] {
			dom = "yes"
		}
		t.AddRow(name, pct(r.Acc[i]), fmt.Sprintf("%.1f%%", r.Degradation[i]*100), dom)
	}
	return t.String()
}

// Fig4 trains FedAvg with market-share participation and measures how much
// worse each device fares than the dominant group.
func Fig4(opts Options) (*Fig4Result, error) {
	dd, err := BuildDeviceData(opts, opts.scaled(10), opts.scaled(4), dataset.ModeProcessed)
	if err != nil {
		return nil, err
	}
	cfg := fl.Config{
		Rounds:           opts.scaled(80),
		ClientsPerRound:  10,
		BatchSize:        10,
		LocalEpochs:      1,
		LR:               0.1,
		Seed:             opts.Seed,
		Workers:          opts.Workers,
		DisableStreaming: opts.DisableStreaming,
		IntraOp:          opts.IntraOp,
	}
	srv, err := RunFL(opts, fl.FedAvg{}, dd, MarketShareCounts(dd, opts.scaled(50)), cfg, SimpleCNNBuilder(opts.Seed, dd.Classes))
	if err != nil {
		return nil, err
	}
	net := srv.GlobalNet()
	acc := PerDeviceAccuracies(net, dd, 16)

	dominant := map[string]bool{}
	for _, n := range device.DominantNames() {
		dominant[n] = true
	}
	res := &Fig4Result{}
	for i, p := range dd.Profiles {
		res.DeviceNames = append(res.DeviceNames, p.Name)
		res.Acc = append(res.Acc, acc[i])
		res.Dominant = append(res.Dominant, dominant[p.Name])
		if dominant[p.Name] && acc[i] > res.DominantAcc {
			res.DominantAcc = acc[i]
		}
	}
	for _, a := range res.Acc {
		res.Degradation = append(res.Degradation, metrics.Degradation(res.DominantAcc, a))
	}
	return res, nil
}

// Fig5Result is the domain-generalization characterization (Fig. 5):
// leave-one-device-out FL, measuring accuracy change on the excluded device
// versus the all-devices-equal reference.
type Fig5Result struct {
	DeviceNames []string
	RefAcc      []float64 // accuracy on device j under all-device training
	LodoAcc     []float64 // accuracy on device j when j was excluded
	Degradation []float64 // (ref - lodo)/ref; negative means exclusion HELPED
}

// String renders the leave-one-out series.
func (r *Fig5Result) String() string {
	t := &Table{
		Title:  "Figure 5 — leave-one-device-out domain generalization",
		Header: []string{"excluded device", "ref accuracy", "LODO accuracy", "degradation"},
	}
	for i, name := range r.DeviceNames {
		t.AddRow(name, pct(r.RefAcc[i]), pct(r.LodoAcc[i]), fmt.Sprintf("%.1f%%", r.Degradation[i]*100))
	}
	return t.String()
}

// Fig5 runs the reference equal-participation FL plus one run per excluded
// device (10 runs total — the dominant cost of the characterization suite).
func Fig5(opts Options) (*Fig5Result, error) {
	dd, err := BuildDeviceData(opts, opts.scaled(8), opts.scaled(4), dataset.ModeProcessed)
	if err != nil {
		return nil, err
	}
	n := len(dd.Profiles)
	cfg := fl.Config{
		Rounds:           opts.scaled(60),
		ClientsPerRound:  9,
		BatchSize:        10,
		LocalEpochs:      1,
		LR:               0.1,
		Seed:             opts.Seed,
		Workers:          opts.Workers,
		DisableStreaming: opts.DisableStreaming,
		IntraOp:          opts.IntraOp,
	}
	builder := SimpleCNNBuilder(opts.Seed, dd.Classes)

	perDeviceClients := 2
	ref, err := RunFL(opts, fl.FedAvg{}, dd, EqualCounts(n, n*perDeviceClients), cfg, builder)
	if err != nil {
		return nil, err
	}
	refNet := ref.GlobalNet()
	res := &Fig5Result{}
	refAcc := PerDeviceAccuracies(refNet, dd, 16)

	for j := 0; j < n; j++ {
		counts := EqualCounts(n, n*perDeviceClients)
		counts[j] = 0
		srv, err := RunFL(opts, fl.FedAvg{}, dd, counts, cfg, builder)
		if err != nil {
			return nil, err
		}
		acc := metrics.Accuracy(srv.GlobalNet(), dd.Test[j], 16)
		res.DeviceNames = append(res.DeviceNames, dd.Profiles[j].Name)
		res.RefAcc = append(res.RefAcc, refAcc[j])
		res.LodoAcc = append(res.LodoAcc, acc)
		res.Degradation = append(res.Degradation, metrics.Degradation(refAcc[j], acc))
	}
	return res, nil
}
