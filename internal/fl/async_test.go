package fl

import (
	"testing"

	"heteroswitch/internal/nn"
	"heteroswitch/internal/simclock"
)

// asyncFixtureServer mirrors fixtureServer on the asynchronous path: same
// population, hyperparameters, and seed.
func asyncFixtureServer(t *testing.T, strat Strategy, async AsyncConfig) *AsyncServer {
	t.Helper()
	perDevice := fixtureData(24, 3)
	clients, err := BuildPopulation(perDevice, []int{3, 3}, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Rounds: 20, ClientsPerRound: 4, BatchSize: 4, LocalEpochs: 1,
		LR: 0.2, Seed: 11, Workers: 1,
	}
	srv, err := NewAsyncServer(cfg, fixtureBuilder(5), nn.SoftmaxCrossEntropy{}, strat, clients, async)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func requireBitIdentical(t *testing.T, a, b nn.Weights, what string) {
	t.Helper()
	for i := range a.Params {
		if !a.Params[i].AllClose(b.Params[i], 0) {
			t.Fatalf("%s: param %d not bit-identical", what, i)
		}
	}
	for i := range a.States {
		if !a.States[i].AllClose(b.States[i], 0) {
			t.Fatalf("%s: state %d not bit-identical", what, i)
		}
	}
}

// The async contract: with zero latency, discount ≡ 1, and
// Concurrency == Buffer == K, the asynchronous server is BIT-identical
// (tolerance 0) to the synchronous streaming server — weights and per-round
// scalar stats — for every strategy that folds. This is what keeps the async
// path honest.
func TestAsyncZeroLatencyMatchesSyncStreaming(t *testing.T) {
	for _, tc := range []struct {
		name  string
		strat func() Strategy
	}{
		{"FedAvg", func() Strategy { return FedAvg{} }},
		{"FedProx", func() Strategy { return &FedProx{Mu: 0.1} }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sync := fixtureServer(t, tc.strat(), 1)
			var syncStats []RoundStats
			sync.Run(func(s RoundStats) { syncStats = append(syncStats, s) })

			// PolynomialStaleness{Alpha: 0} makes the discount identically 1.
			async := asyncFixtureServer(t, tc.strat(), AsyncConfig{
				Staleness: PolynomialStaleness{Alpha: 0},
				Latency:   simclock.Constant{D: 0},
			})
			var asyncStats []AsyncRoundStats
			async.Run(func(s AsyncRoundStats) { asyncStats = append(asyncStats, s) })

			requireBitIdentical(t, sync.Global, async.Global, tc.name)
			if len(syncStats) != len(asyncStats) {
				t.Fatalf("round counts differ: %d vs %d", len(syncStats), len(asyncStats))
			}
			for i := range syncStats {
				ss, as := syncStats[i], asyncStats[i]
				if ss.MeanLoss != as.MeanLoss || ss.MeanInit != as.MeanInit {
					t.Fatalf("round %d losses diverged: sync %v/%v async %v/%v",
						i, ss.MeanLoss, ss.MeanInit, as.MeanLoss, as.MeanInit)
				}
				if len(ss.Sampled) != len(as.Sampled) {
					t.Fatalf("round %d sampled %d vs %d", i, len(ss.Sampled), len(as.Sampled))
				}
				for j := range ss.Sampled {
					if ss.Sampled[j] != as.Sampled[j] {
						t.Fatalf("round %d sampled client order diverged: %v vs %v", i, ss.Sampled, as.Sampled)
					}
				}
				if ss.BytesDown != as.BytesDown || ss.BytesUp != as.BytesUp {
					t.Fatalf("round %d communication accounting diverged", i)
				}
				if as.MeanStaleness != 0 || as.MaxStaleness != 0 || as.MeanDiscount != 1 {
					t.Fatalf("round %d saw staleness at zero latency: %+v", i, as)
				}
			}
		})
	}
}

// Two async runs with the same seed and latency model must be bit-identical:
// weights, virtual clock, and staleness telemetry.
func TestAsyncRunsAreBitReproducible(t *testing.T) {
	mk := func() (*AsyncServer, []AsyncRoundStats) {
		srv := asyncFixtureServer(t, FedAvg{}, AsyncConfig{
			Staleness:   PolynomialStaleness{Alpha: 0.5},
			Latency:     simclock.StragglerTail{Lo: 0.5, Hi: 2, TailProb: 0.3, TailFactor: 8, Seed: 17},
			Concurrency: 8,
			Buffer:      4,
		})
		var stats []AsyncRoundStats
		srv.Run(func(s AsyncRoundStats) { stats = append(stats, s) })
		return srv, stats
	}
	a, sa := mk()
	b, sb := mk()
	requireBitIdentical(t, a.Global, b.Global, "reproducibility")
	for i := range sa {
		if sa[i].VirtualTime != sb[i].VirtualTime ||
			sa[i].MeanStaleness != sb[i].MeanStaleness ||
			sa[i].MeanDiscount != sb[i].MeanDiscount ||
			sa[i].Version != sb[i].Version {
			t.Fatalf("round %d telemetry diverged: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}

// With more jobs in flight than the aggregation buffer and a straggler tail,
// windows overlap: results must arrive stale and the polynomial policy must
// discount them.
func TestAsyncStalenessEngagesUnderStragglers(t *testing.T) {
	srv := asyncFixtureServer(t, FedAvg{}, AsyncConfig{
		Staleness:   PolynomialStaleness{Alpha: 0.5},
		Latency:     simclock.StragglerTail{Lo: 0.5, Hi: 2, TailProb: 0.4, TailFactor: 16, Seed: 5},
		Concurrency: 8,
		Buffer:      4,
	})
	sawStale, sawDiscount := false, false
	var lastTime float64
	srv.Run(func(s AsyncRoundStats) {
		if s.VirtualTime < lastTime {
			t.Fatalf("virtual time went backwards: %v after %v", s.VirtualTime, lastTime)
		}
		lastTime = s.VirtualTime
		if s.MaxStaleness > 0 {
			sawStale = true
		}
		if s.MeanDiscount < 1 {
			sawDiscount = true
		}
		if s.MeanDiscount > 1 || s.MeanDiscount <= 0 {
			t.Fatalf("discount out of range: %+v", s)
		}
	})
	if !sawStale || !sawDiscount {
		t.Fatalf("straggler run never produced stale folds (stale %v, discount %v)", sawStale, sawDiscount)
	}
	if lastTime <= 0 {
		t.Fatal("virtual clock never advanced under nonzero latency")
	}
	for _, p := range srv.Global.Params {
		if p.HasNaN() {
			t.Fatal("NaN weights after stale aggregation")
		}
	}
}

// The version store must bound its footprint: at most Concurrency-Buffer
// jobs stay in flight between windows, and old versions recycle once their
// last reader completes.
func TestAsyncVersionStoreBounded(t *testing.T) {
	srv := asyncFixtureServer(t, FedAvg{}, AsyncConfig{
		Staleness:   PolynomialStaleness{Alpha: 0.5},
		Latency:     simclock.StragglerTail{Lo: 0.5, Hi: 2, TailProb: 0.4, TailFactor: 16, Seed: 5},
		Concurrency: 8,
		Buffer:      4,
	})
	srv.Run(nil)
	if got, want := srv.InFlight(), 8-4; got != want {
		t.Fatalf("in-flight after run = %d, want %d", got, want)
	}
	if n := len(srv.store.entries); n > 8 {
		t.Fatalf("version store retains %d versions; in-flight jobs can reference at most 8", n)
	}
	if n := len(srv.store.free); n > 16 {
		t.Fatalf("version free pool grew unboundedly: %d buffers", n)
	}
}

// Client dropout on the async path: dropped clients are drawn, recorded, and
// never dispatched; every fold still comes from a live client.
func TestAsyncDropoutAccounting(t *testing.T) {
	srv := asyncFixtureServer(t, FedAvg{}, AsyncConfig{
		Latency: simclock.Uniform{Lo: 0.5, Hi: 2, Seed: 9},
	})
	srv.Cfg.ClientDropout = 0.3
	folded, dropped := 0, 0
	srv.Run(func(s AsyncRoundStats) {
		folded += len(s.Sampled)
		dropped += len(s.Dropped)
	})
	if folded != srv.Cfg.Rounds*srv.Async.Buffer {
		t.Fatalf("folded %d results, want %d", folded, srv.Cfg.Rounds*srv.Async.Buffer)
	}
	if dropped == 0 {
		t.Fatal("30% dropout over 80 draws never dropped a client")
	}
	for _, p := range srv.Global.Params {
		if p.HasNaN() {
			t.Fatal("NaN weights under async dropout")
		}
	}
}

// Race coverage for the async completion loop: the intra-op budget sends the
// lazily evaluated training through the parallel kernels while the event
// loop folds completions. Run with -race in CI.
func TestAsyncIntraOpParallelRace(t *testing.T) {
	srv := asyncFixtureServer(t, FedAvg{}, AsyncConfig{
		Staleness:   PolynomialStaleness{Alpha: 0.5},
		Latency:     simclock.StragglerTail{Lo: 0.5, Hi: 2, TailProb: 0.3, TailFactor: 8, Seed: 3},
		Concurrency: 8,
		Buffer:      4,
	})
	srv.Cfg.IntraOp = 4
	srv.net.SetIntraOp(4)
	srv.Run(nil)
	for _, p := range srv.Global.Params {
		if p.HasNaN() {
			t.Fatal("NaN weights from async run with intra-op kernels")
		}
	}
}

func TestNewAsyncServerValidation(t *testing.T) {
	perDevice := fixtureData(8, 1)
	clients, _ := BuildPopulation(perDevice, []int{1, 1}, 1)
	cfg := Config{Rounds: 2, ClientsPerRound: 2, BatchSize: 4, LocalEpochs: 1, LR: 0.1, Seed: 1, Workers: 1}
	builder := fixtureBuilder(1)
	loss := nn.SoftmaxCrossEntropy{}

	// Barrier-only strategies cannot aggregate asynchronously.
	for _, strat := range []Strategy{&QFedAvg{Q: 1}, &Scaffold{}} {
		if _, err := NewAsyncServer(cfg, builder, loss, strat, clients, AsyncConfig{}); err == nil {
			t.Fatalf("%s must be rejected by the async server", strat.Name())
		}
	}
	// A window larger than the in-flight set could never fill.
	if _, err := NewAsyncServer(cfg, builder, loss, FedAvg{}, clients, AsyncConfig{Concurrency: 2, Buffer: 4}); err == nil {
		t.Fatal("Buffer > Concurrency must be rejected")
	}
	if _, err := NewAsyncServer(cfg, builder, loss, FedAvg{}, clients, AsyncConfig{Buffer: -1}); err == nil {
		t.Fatal("negative buffer must be rejected")
	}
	if _, err := NewAsyncServer(cfg, builder, loss, FedAvg{}, nil, AsyncConfig{}); err == nil {
		t.Fatal("empty population must be rejected")
	}
	bad := cfg
	bad.ClientsPerRound = 50
	if _, err := NewAsyncServer(bad, builder, loss, FedAvg{}, clients, AsyncConfig{}); err == nil {
		t.Fatal("K > N must be rejected")
	}
	// Defaults resolve: K-sized window, depth-1 pipeline, no discount.
	srv, err := NewAsyncServer(cfg, builder, loss, FedAvg{}, clients, AsyncConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Async.Buffer != 2 || srv.Async.Concurrency != 2 {
		t.Fatalf("defaults not resolved: %+v", srv.Async)
	}
	if srv.Async.Staleness.Weight(3) != 1 {
		t.Fatal("default policy must not discount")
	}
}
