package heteroswitch

// One benchmark per table and figure of the paper's evaluation, plus
// design-choice ablations and substrate micro-benchmarks. Each experiment
// benchmark runs its full harness at a reduced scale per iteration, so
// b.N=1 (the default for these run times) measures one end-to-end
// regeneration of the artifact; raise -scale via EXPBENCH_SCALE-style runs
// with cmd/heterobench for the recorded EXPERIMENTS.md numbers.

import (
	"fmt"
	"testing"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/device"
	"heteroswitch/internal/experiments"
	"heteroswitch/internal/fl"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/isp"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/scene"
	"heteroswitch/internal/serve"
	"heteroswitch/internal/simclock"
	"heteroswitch/internal/tensor"
)

// benchOpts is the per-iteration scale used by the experiment benchmarks:
// large enough to exercise every code path, small enough for go test -bench.
func benchOpts() experiments.Options {
	opts := experiments.DefaultOptions()
	opts.Scale = 0.1
	opts.Seed = 42
	return opts
}

func runExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(name, benchOpts()); err != nil {
			b.Fatalf("%s: %v", name, err)
		}
	}
}

// Paper artifacts -------------------------------------------------------------

func BenchmarkFig1Homogeneity(b *testing.B)   { runExperiment(b, "fig1") }
func BenchmarkTable2CrossDevice(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkFig2RAW(b *testing.B)           { runExperiment(b, "fig2") }
func BenchmarkFig3ISPStages(b *testing.B)     { runExperiment(b, "fig3") }
func BenchmarkFig4Fairness(b *testing.B)      { runExperiment(b, "fig4") }
func BenchmarkFig5LODO(b *testing.B)          { runExperiment(b, "fig5") }
func BenchmarkFig7SWAD(b *testing.B)          { runExperiment(b, "fig7") }
func BenchmarkTable4Main(b *testing.B)        { runExperiment(b, "table4") }
func BenchmarkTable5Models(b *testing.B)      { runExperiment(b, "table5") }
func BenchmarkTable6Flair(b *testing.B)       { runExperiment(b, "table6") }
func BenchmarkFig8Synthetic(b *testing.B)     { runExperiment(b, "fig8") }
func BenchmarkECGHeartRate(b *testing.B)      { runExperiment(b, "ecg") }
func BenchmarkFig9Sensitivity(b *testing.B)   { runExperiment(b, "fig9") }

// Design-choice ablations ------------------------------------------------------

func BenchmarkAblationSwitches(b *testing.B) { runExperiment(b, "ablation-switch") }
func BenchmarkAblationEMAAlpha(b *testing.B) { runExperiment(b, "ablation-alpha") }
func BenchmarkAblationDegrees(b *testing.B)  { runExperiment(b, "ablation-degrees") }

// BenchmarkUnseenDeviceDG evaluates trained models on device profiles that
// never appeared in training — true out-of-distribution devices.
func BenchmarkUnseenDeviceDG(b *testing.B) { runExperiment(b, "unseen-dg") }

// Aggregation-pipeline benchmarks ---------------------------------------------

// benchServer builds a K-client federation over a ~10k-parameter dense model
// with tiny per-client datasets, so weight-snapshot traffic dominates the
// allocation profile of a round.
func benchServer(b *testing.B, k, workers int, barrier bool) *fl.Server {
	b.Helper()
	r := frand.New(99)
	clients := make([]*fl.Client, k)
	for i := range clients {
		ds := &dataset.Dataset{NumClasses: 2}
		for j := 0; j < 2; j++ {
			x := tensor.Randn(r, 0.5, 1, 8, 8)
			ds.Samples = append(ds.Samples, dataset.Sample{X: x, Label: j % 2})
		}
		clients[i] = fl.NewClient(i, 0, ds, 99)
	}
	builder := func() *nn.Network {
		br := frand.New(7)
		return nn.NewNetwork(nn.NewFlatten(), nn.NewDense(br, 64, 128), nn.NewReLU(), nn.NewDense(br, 128, 10))
	}
	cfg := fl.Config{
		Rounds: 1, ClientsPerRound: k, BatchSize: 2, LocalEpochs: 1,
		LR: 0.1, Seed: 1, Workers: workers, DisableStreaming: barrier,
	}
	srv, err := fl.NewServer(cfg, builder, nn.SoftmaxCrossEntropy{}, fl.FedAvg{}, clients)
	if err != nil {
		b.Fatal(err)
	}
	return srv
}

// BenchmarkServerRound measures one communication round at K∈{8,64,512}
// participants on both aggregation paths. The acceptance target: on the
// streaming path, weight-buffer allocations scale with Workers, not K
// (compare B/op of streaming vs barrier at K=512).
func BenchmarkServerRound(b *testing.B) {
	const workers = 4
	for _, k := range []int{8, 64, 512} {
		for _, mode := range []struct {
			name    string
			barrier bool
		}{{"streaming", false}, {"barrier", true}} {
			b.Run(fmt.Sprintf("K=%d/W=%d/%s", k, workers, mode.name), func(b *testing.B) {
				srv := benchServer(b, k, workers, mode.barrier)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					srv.RunRound(i)
				}
			})
		}
	}
}

// BenchmarkAsyncServerRound measures one asynchronous aggregation window
// (admit + Buffer staleness-discounted folds + finalize) under a straggler
// latency distribution with a depth-2 pipeline. The acceptance target
// mirrors the streaming path's: steady-state weight allocations bounded by
// the version store's recycling, not by K.
func BenchmarkAsyncServerRound(b *testing.B) {
	for _, k := range []int{8, 64} {
		b.Run(fmt.Sprintf("K=%d/depth=2", k), func(b *testing.B) {
			r := frand.New(99)
			clients := make([]*fl.Client, 2*k)
			for i := range clients {
				ds := &dataset.Dataset{NumClasses: 2}
				for j := 0; j < 2; j++ {
					x := tensor.Randn(r, 0.5, 1, 8, 8)
					ds.Samples = append(ds.Samples, dataset.Sample{X: x, Label: j % 2})
				}
				clients[i] = fl.NewClient(i, 0, ds, 99)
			}
			builder := func() *nn.Network {
				br := frand.New(7)
				return nn.NewNetwork(nn.NewFlatten(), nn.NewDense(br, 64, 128), nn.NewReLU(), nn.NewDense(br, 128, 10))
			}
			cfg := fl.Config{
				Rounds: 1, ClientsPerRound: k, BatchSize: 2, LocalEpochs: 1,
				LR: 0.1, Seed: 1, Workers: 1,
			}
			srv, err := fl.NewAsyncServer(cfg, builder, nn.SoftmaxCrossEntropy{}, fl.FedAvg{}, clients,
				fl.AsyncConfig{
					Staleness:   fl.PolynomialStaleness{Alpha: 0.5},
					Latency:     simclock.StragglerTail{Lo: 0.5, Hi: 2, TailProb: 0.15, TailFactor: 8, Seed: 3},
					Concurrency: 2 * k,
					Buffer:      k,
				})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				srv.RunRound()
			}
		})
	}
}

// BenchmarkTrainLocal measures the per-client training hot path in isolation:
// one fl.TrainLocal call (all epochs × batches) per iteration. With the
// per-network tensor arena, steady-state allocs/op must not scale with
// batches × layers — this is the allocation-side acceptance benchmark for
// the zero-allocation training loop.
func BenchmarkTrainLocal(b *testing.B) {
	cases := []struct {
		name    string
		shape   []int
		builder func() *nn.Network
	}{
		{"MLP", []int{1, 8, 8}, func() *nn.Network {
			br := frand.New(7)
			return nn.NewNetwork(
				nn.NewFlatten(),
				nn.NewDense(br, 64, 64), nn.NewReLU(),
				nn.NewDense(br, 64, 4),
			)
		}},
		{"ConvNet", []int{1, 8, 8}, func() *nn.Network {
			br := frand.New(7)
			return nn.NewNetwork(
				nn.NewConv2D(br, 1, 4, 3, 1, 1, 1),
				nn.NewBatchNorm2D(4),
				nn.NewReLU(),
				nn.NewMaxPool2D(2, 2),
				nn.NewFlatten(),
				nn.NewDense(br, 4*4*4, 4),
			)
		}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			r := frand.New(17)
			ds := &dataset.Dataset{NumClasses: 4}
			for i := 0; i < 64; i++ {
				ds.Samples = append(ds.Samples, dataset.Sample{
					X: tensor.Randn(r, 0.5, tc.shape...), Label: i % 4,
				})
			}
			net := tc.builder()
			cfg := fl.Config{
				Rounds: 1, ClientsPerRound: 1, BatchSize: 8, LocalEpochs: 2,
				LR: 0.05, Seed: 1,
			}
			rng := frand.New(3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fl.TrainLocal(net, ds, cfg, nn.SoftmaxCrossEntropy{}, rng, nil, nil)
			}
		})
	}
}

// BenchmarkTrainLocalParallel measures intra-op kernel parallelism on the
// single-client path the ROADMAP called out: one client with large dense
// layers, trained with the network granted 1/2/4/8 cores. The kernels are
// bit-identical at every budget, so this sweep isolates pure speedup;
// allocs/op must stay flat (the parallel dispatch is pooled). Speedup
// requires physical cores — on a single-core runner all budgets take the
// serial fallback and times converge.
func BenchmarkTrainLocalParallel(b *testing.B) {
	r := frand.New(17)
	ds := &dataset.Dataset{NumClasses: 12}
	for i := 0; i < 64; i++ {
		ds.Samples = append(ds.Samples, dataset.Sample{
			X: tensor.Randn(r, 0.5, 8, 8, 8), Label: i % 12,
		})
	}
	cfg := fl.Config{
		Rounds: 1, ClientsPerRound: 1, BatchSize: 32, LocalEpochs: 1,
		LR: 0.05, Seed: 1,
	}
	for _, par := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("intraop=%d", par), func(b *testing.B) {
			br := frand.New(7)
			net := nn.NewNetwork(
				nn.NewFlatten(),
				nn.NewDense(br, 512, 1024), nn.NewReLU(),
				nn.NewDense(br, 1024, 512), nn.NewReLU(),
				nn.NewDense(br, 512, 12),
			)
			net.SetIntraOp(par)
			rng := frand.New(3)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fl.TrainLocal(net, ds, cfg, nn.SoftmaxCrossEntropy{}, rng, nil, nil)
			}
		})
	}
}

// BenchmarkEval measures one eval-batch forward pass on the fused inference
// fast path (Network.Freeze: BN folded into conv/dense, activations fused as
// kernel epilogues, no backward caches) against the reference
// layer-by-layer eval forward, across intra-op budgets. Acceptance: the
// ConvNet fused path is ≥2× the reference at intraop 4 on a multi-core box
// (both paths parallelize, so the gap is pure fusion + skipped caches), no
// slower at intraop 1, with 0 steady-state allocs/op (arena outputs, pooled
// dispatch, per-chunk im2col scratch). On a 1-core runner the budgets
// converge; the CI bench-smoke artifact records whatever the runner gives.
func BenchmarkEval(b *testing.B) {
	cases := []struct {
		name    string
		shape   []int
		builder func() *nn.Network
	}{
		{"MLP", []int{3, 16, 16}, func() *nn.Network {
			br := frand.New(7)
			return nn.NewNetwork(
				nn.NewFlatten(),
				nn.NewDense(br, 3*16*16, 256), nn.NewReLU(),
				nn.NewDense(br, 256, 128), nn.NewReLU(),
				nn.NewDense(br, 128, 12),
			)
		}},
		{"ConvNet", []int{3, 32, 32}, func() *nn.Network {
			// MobileNetV3-shaped (the paper's §6 default): 3×3 stem, 1×1
			// expand, 3×3 depthwise, 1×1 project — the mix the fast path's
			// pointwise/depthwise kernels target.
			br := frand.New(7)
			return nn.NewNetwork(
				nn.NewConv2D(br, 3, 16, 3, 2, 1, 1),
				nn.NewBatchNorm2D(16),
				nn.NewHardSwish(),
				nn.NewConv2D(br, 16, 48, 1, 1, 0, 1),
				nn.NewBatchNorm2D(48),
				nn.NewHardSwish(),
				nn.NewDepthwiseConv2D(br, 48, 3, 1, 1),
				nn.NewBatchNorm2D(48),
				nn.NewHardSwish(),
				nn.NewConv2D(br, 48, 32, 1, 1, 0, 1),
				nn.NewBatchNorm2D(32),
				nn.NewGlobalAvgPool(),
				nn.NewDense(br, 32, 12),
			)
		}},
	}
	for _, tc := range cases {
		// The fused path runs under every kernel backend (the packed-vs-serial
		// delta is the packed backend's acceptance number, the int8-vs-packed
		// delta the quantized tier's); the reference layer-by-layer forward
		// only ever uses the oracle entry points, so it gets a single serial
		// arm.
		for _, arm := range []struct {
			mode    string
			backend tensor.Backend
		}{
			{"fused-serial", tensor.BackendSerial},
			{"fused-packed", tensor.BackendPacked},
			{"fused-int8", tensor.BackendInt8},
			{"reference", tensor.BackendSerial},
		} {
			for _, par := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("%s/%s/intraop=%d", tc.name, arm.mode, par), func(b *testing.B) {
					prev := tensor.ActiveBackend()
					tensor.SetBackend(arm.backend)
					defer tensor.SetBackend(prev)
					r := frand.New(17)
					x := tensor.Randn(r, 0.5, append([]int{16}, tc.shape...)...)
					net := tc.builder()
					net.SetIntraOp(par)
					fz := net.Freeze()
					// Warm the arena, dispatch pools, and im2col scratch.
					fz.Infer(x)
					net.Forward(x, false)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if arm.mode == "reference" {
							benchEvalSink = net.Forward(x, false)
						} else {
							benchEvalSink = fz.Infer(x)
						}
					}
				})
			}
		}
	}
}

var benchEvalSink *tensor.Tensor

// gradPathLoss hides the LossValuer capability of a loss, forcing eval loops
// back onto the gradient (LossInto) path — the "before" arm of
// BenchmarkEvalLoss.
type gradPathLoss struct{ nn.LossInto }

// BenchmarkEvalLoss measures fl.EvalLoss — the pure-inference loss sweep —
// on the value-only path (nn.LossValuer, the default) against the former
// gradient path (LossInto materializing dL/d(pred) per batch). Acceptance:
// value-only is no slower and allocates no gradient tensors; the loss values
// are bit-identical by the LossValuer contract.
func BenchmarkEvalLoss(b *testing.B) {
	r := frand.New(17)
	ds := &dataset.Dataset{NumClasses: 12}
	for i := 0; i < 256; i++ {
		ds.Samples = append(ds.Samples, dataset.Sample{
			X: tensor.Randn(r, 0.5, 3, 16, 16), Label: i % 12,
		})
	}
	br := frand.New(7)
	net := nn.NewNetwork(
		nn.NewFlatten(),
		nn.NewDense(br, 3*16*16, 256), nn.NewReLU(),
		nn.NewDense(br, 256, 12),
	)
	for _, mode := range []struct {
		name string
		loss nn.Loss
	}{
		{"value-only", nn.SoftmaxCrossEntropy{}},
		{"grad-path", gradPathLoss{nn.SoftmaxCrossEntropy{}}},
	} {
		b.Run(mode.name, func(b *testing.B) {
			fl.EvalLoss(net, mode.loss, ds, 32) // warm scratch + arena
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchEvalLossSink = fl.EvalLoss(net, mode.loss, ds, 32)
			}
		})
	}
}

var benchEvalLossSink float64

// BenchmarkServe measures the serving front end end-to-end: one full
// closed-loop load run (seeded arrivals, micro-batching, frozen per-worker
// replicas) per iteration, swept over the micro-batcher's flush threshold.
// Custom metrics report the harness's virtual-time results — vthroughput
// (requests per virtual time unit) and vp99 (virtual p99 latency) — so the
// CI bench artifact records the batching trade-off curve: how throughput and
// tail latency move as MaxBatch grows. Wall-clock ns/op tracks the
// real inference cost of the same run. The per-request outputs are
// bit-identical across batch sizes and intra-op budgets (asserted by the
// serve package tests); this benchmark records the schedule consequences.
func BenchmarkServe(b *testing.B) {
	build := func() *nn.Network {
		br := frand.New(7)
		return nn.NewNetwork(
			nn.NewConv2D(br, 1, 4, 3, 1, 1, 1),
			nn.NewBatchNorm2D(4),
			nn.NewReLU(),
			nn.NewGlobalAvgPool(),
			nn.NewDense(br, 4, 3),
		)
	}
	weights := build().Snapshot()
	r := frand.New(17)
	inputs := make([]*tensor.Tensor, 16)
	for i := range inputs {
		inputs[i] = tensor.Randn(r, 0.5, 1, 8, 8)
	}
	// The virtual-time metrics (vthroughput, vp99) are backend-invariant by
	// the schedule contract; the wall-clock ns/op deltas between the backend
	// arms are the serving-path packed and int8 speedups.
	for _, be := range []tensor.Backend{tensor.BackendSerial, tensor.BackendPacked, tensor.BackendInt8} {
		for _, maxBatch := range []int{1, 2, 4, 8, 16} {
			b.Run(fmt.Sprintf("backend=%s/maxbatch=%d", be, maxBatch), func(b *testing.B) {
				prev := tensor.ActiveBackend()
				tensor.SetBackend(be)
				defer tensor.SetBackend(prev)
				srv, err := serve.NewServer(build, weights, serve.Config{
					MaxBatch:    maxBatch,
					BatchBudget: 0.5,
					Workers:     2,
					IntraOp:     2,
				})
				if err != nil {
					b.Fatal(err)
				}
				load := serve.LoadConfig{
					Requests:    512,
					Concurrency: 24,
					Arrival:     serve.ClosedLoop{Think: 0.5, Seed: 11},
					Service:     serve.AffineService{Base: 1, PerItem: 0.25},
					Seed:        42,
					Inputs:      inputs,
				}
				if _, err := srv.RunLoad(load); err != nil { // warm replicas + arenas
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				var last serve.Report
				for i := 0; i < b.N; i++ {
					rep, err := srv.RunLoad(load)
					if err != nil {
						b.Fatal(err)
					}
					last = rep
				}
				b.ReportMetric(last.Throughput, "vthroughput")
				b.ReportMetric(last.P99, "vp99")
				b.ReportMetric(last.MeanBatch, "meanbatch")
			})
		}
	}
}

// Substrate micro-benchmarks ---------------------------------------------------

// BenchmarkDeviceCapture measures one full sensor+ISP capture of a 64x64
// scene on the S9 profile — the per-image cost of workload generation.
func BenchmarkDeviceCapture(b *testing.B) {
	gen := scene.NewImageNet12(64)
	sc := gen.Render(4, frand.New(1))
	p, err := device.ByName("S9")
	if err != nil {
		b.Fatal(err)
	}
	rng := frand.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.CaptureProcessed(sc, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkISPPipeline measures the six-stage baseline pipeline alone.
func BenchmarkISPPipeline(b *testing.B) {
	gen := scene.NewImageNet12(64)
	sc := gen.Render(4, frand.New(1))
	raw := isp.Mosaic(sc, isp.RGGB)
	pipe := isp.Baseline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pipe.Process(raw); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkloadBuild measures building the full nine-device federation
// at one scene per class.
func BenchmarkWorkloadBuild(b *testing.B) {
	opts := benchOpts()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BuildDeviceData(opts, 1, 1, dataset.ModeProcessed); err != nil {
			b.Fatal(err)
		}
	}
}
