package experiments

import (
	"fmt"
	"sort"

	"heteroswitch/internal/tensor"
)

// Runner executes one experiment and returns a printable result.
type Runner func(Options) (fmt.Stringer, error)

// wrap adapts a typed harness to the Runner signature.
func wrap[T fmt.Stringer](f func(Options) (T, error)) Runner {
	return func(o Options) (fmt.Stringer, error) { return f(o) }
}

// registry maps experiment ids (the DESIGN.md index) to harnesses.
var registry = map[string]Runner{
	"fig1":             wrap(Fig1),
	"table2":           wrap(Table2),
	"fig2":             wrap(Fig2),
	"fig3":             wrap(Fig3),
	"fig4":             wrap(Fig4),
	"fig5":             wrap(Fig5),
	"fig7":             wrap(Fig7),
	"table4":           wrap(Table4),
	"table5":           wrap(Table5),
	"table6":           wrap(Table6),
	"fig8":             wrap(Fig8),
	"ecg":              wrap(ECG),
	"fig9":             wrap(Fig9),
	"async-sweep":      wrap(AsyncSweep),
	"ablation-switch":  wrap(AblationSwitches),
	"unseen-dg":        wrap(UnseenDG),
	"ablation-alpha":   wrap(AblationEMAAlpha),
	"ablation-degrees": wrap(AblationDegrees),
	"train-serve":      wrap(TrainWhileServe),
}

// Names returns the sorted experiment ids.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Run executes the named experiment, first applying the options' kernel
// backend selection process-wide.
func Run(name string, opts Options) (fmt.Stringer, error) {
	r, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	// An empty KernelBackend inherits the process-wide selection (flag
	// default or HETEROSWITCH_KERNEL_BACKEND) instead of resetting to auto.
	if opts.KernelBackend != "" {
		kb, err := tensor.ParseBackend(opts.KernelBackend)
		if err != nil {
			return nil, err
		}
		tensor.SetBackend(kb)
	}
	return r(opts)
}
