package serve

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"heteroswitch/internal/nn"
	"heteroswitch/internal/parallel"
	"heteroswitch/internal/tensor"
)

// Config carries the serving knobs.
type Config struct {
	// MaxBatch is the micro-batcher's flush threshold: a forming batch
	// executes as soon as it holds MaxBatch requests. 0 means 8.
	MaxBatch int
	// BatchBudget is the virtual time a partial batch waits for more
	// requests before flushing, measured from its first request's admission.
	// 0 still coalesces requests arriving at the same virtual instant.
	BatchBudget float64
	// Workers is the number of batches executing concurrently, each on its
	// own frozen replica. 0 means 1.
	Workers int
	// IntraOp is the total intra-op core budget, split evenly across
	// workers (each replica gets at least 1). 0 means the machine
	// (parallel.Workers()).
	IntraOp int
	// Admission is the overload policy. The zero value disables admission
	// control entirely — bit-identical to the pre-admission harness.
	Admission AdmissionConfig
	// Flush selects the order queued batches reach a freed worker in.
	// FlushFIFO (the zero value) starts batches strictly in flush order and
	// is byte-identical to the pre-SLO harness; FlushEDF starts the
	// earliest-deadline queued batch first (see FlushPolicy).
	Flush FlushPolicy
}

// FlushPolicy orders the flushed-batch queue.
type FlushPolicy int

const (
	// FlushFIFO starts queued batches in flush order. Under PublishEvery
	// churn this can invert urgency: the publish-triggered flush inside a
	// batch completion runs after the worker frees but before the queue
	// drains, so the forming batch — the newest arrivals — jumps straight
	// onto the worker while older queued batches keep aging toward the
	// admission deadline.
	FlushFIFO FlushPolicy = iota
	// FlushEDF starts the queued batch with the earliest deadline first
	// (a batch's deadline is its oldest request's arrival plus the
	// admission deadline; with no deadline configured the order degenerates
	// to oldest-arrival-first). Ties break on flush sequence, so the order
	// — like everything else in the harness — is deterministic.
	FlushEDF
)

// String renders the policy as its CLI spelling.
func (p FlushPolicy) String() string {
	if p == FlushEDF {
		return "edf"
	}
	return "fifo"
}

// ParseFlush parses the CLI flush-policy spec: "fifo" (or "") and "edf".
func ParseFlush(spec string) (FlushPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(spec)) {
	case "", "fifo":
		return FlushFIFO, nil
	case "edf", "deadline":
		return FlushEDF, nil
	}
	return FlushFIFO, fmt.Errorf("serve: unknown flush policy %q (want fifo or edf)", spec)
}

// AdmissionConfig bounds the serving pending queue so closed-loop overload
// degrades to deterministic rejections with stable tail latency instead of
// unbounded virtual queueing.
type AdmissionConfig struct {
	// Depth caps requests pending service (forming batch plus flushed
	// queue): an arrival finding Depth requests pending is shed
	// immediately. 0 = unbounded.
	Depth int
	// Deadline sheds queued requests whose wait already exceeds it when
	// their batch reaches a worker — they would only burn service capacity
	// on an answer the client gave up on. 0 = no deadline.
	Deadline float64
}

// Enabled reports whether any admission mechanism is active.
func (a AdmissionConfig) Enabled() bool { return a.Depth > 0 || a.Deadline > 0 }

// ParseAdmission parses the CLI admission spec "DEPTH,DEADLINE" (either may
// be 0 to disable that mechanism); "" and "off" disable admission control.
func ParseAdmission(spec string) (AdmissionConfig, error) {
	if spec == "" || spec == "off" {
		return AdmissionConfig{}, nil
	}
	depthStr, deadStr, ok := strings.Cut(spec, ",")
	if !ok {
		return AdmissionConfig{}, fmt.Errorf("serve: admission spec %q wants DEPTH,DEADLINE (e.g. 64,12)", spec)
	}
	var a AdmissionConfig
	var err error
	if a.Depth, err = strconv.Atoi(strings.TrimSpace(depthStr)); err != nil {
		return AdmissionConfig{}, fmt.Errorf("serve: admission depth in %q: %v", spec, err)
	}
	if a.Deadline, err = strconv.ParseFloat(strings.TrimSpace(deadStr), 64); err != nil {
		return AdmissionConfig{}, fmt.Errorf("serve: admission deadline in %q: %v", spec, err)
	}
	if a.Depth < 0 || !(a.Deadline >= 0) || math.IsInf(a.Deadline, 1) {
		return AdmissionConfig{}, fmt.Errorf("serve: admission spec %q out of range", spec)
	}
	return a, nil
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.IntraOp == 0 {
		c.IntraOp = parallel.Workers()
	}
	return c
}

// validate reports configuration errors (after withDefaults).
func (c Config) validate() error {
	if c.MaxBatch < 1 || c.Workers < 1 || c.IntraOp < 1 {
		return fmt.Errorf("serve: non-positive max-batch/workers/intraop: %d/%d/%d",
			c.MaxBatch, c.Workers, c.IntraOp)
	}
	if c.BatchBudget < 0 {
		return fmt.Errorf("serve: negative batch budget %g", c.BatchBudget)
	}
	if c.Admission.Depth < 0 || c.Admission.Deadline < 0 ||
		math.IsNaN(c.Admission.Deadline) {
		return fmt.Errorf("serve: invalid admission config %+v", c.Admission)
	}
	if c.Flush != FlushFIFO && c.Flush != FlushEDF {
		return fmt.Errorf("serve: unknown flush policy %d", c.Flush)
	}
	return nil
}

// Server owns the serving stack: the refcounted version store, one frozen
// replica per worker, and the micro-batcher state of the load harness.
// Publish/Republish and PredictInto are safe for concurrent use; the load
// harness (RunLoad) drives the whole stack from one goroutine in virtual
// time and must not run concurrently with itself.
type Server struct {
	cfg   Config
	store *Store
	pool  *nn.ReplicaPool

	ld loadState
}

// NewServer builds a serving stack for the model builder, publishing w as
// version 0. Each of cfg.Workers replicas is granted IntraOp/Workers cores
// (at least 1), mirroring fl's intra-op share so total kernel parallelism
// never oversubscribes the budget.
func NewServer(build func() *nn.Network, w nn.Weights, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	share := cfg.IntraOp / cfg.Workers
	if share < 1 {
		share = 1
	}
	return &Server{
		cfg:   cfg,
		store: NewStore(w),
		pool:  nn.NewReplicaPool(cfg.Workers, build, share),
	}, nil
}

// Store exposes the version store (for publishing trained weights).
func (s *Server) Store() *Store { return s.store }

// PredictInto serves one request synchronously on the calling goroutine: it
// pins the current model version, borrows a replica (blocking while all
// Workers replicas are busy — the pool is the admission valve), runs the
// frozen forward, and copies the outputs into dst. It returns the version
// that served the request and the number of values written. Concurrent
// callers race only for replicas; the version pin guarantees each request is
// served end-to-end by the exact version current at its admission, even
// while Publish runs.
func (s *Server) PredictInto(dst []float32, x *tensor.Tensor) (version, n int, err error) {
	v, w := s.store.Acquire()
	defer s.store.Release(v)
	rep := s.pool.Get()
	defer s.pool.Put(rep)
	if err := rep.Ensure(v, w); err != nil {
		return 0, 0, err
	}
	out := rep.Infer(x)
	return v, copy(dst, out.Data()), nil
}
