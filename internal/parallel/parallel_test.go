package parallel

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestChunksPartition checks the splitter's invariants across a grid of
// (budget, n, grain): chunk count respects budget and grain, chunks tile
// [0, n) exactly, and every chunk holds at least grain items when more than
// one chunk exists.
func TestChunksPartition(t *testing.T) {
	for _, budget := range []int{1, 2, 3, 4, 7, 8, 16} {
		for _, n := range []int{0, 1, 2, 3, 5, 8, 13, 64, 65, 127, 1000} {
			for _, grain := range []int{1, 2, 5, 64, 1000} {
				p := Chunks(budget, n, grain)
				if n == 0 {
					if p != 0 {
						t.Fatalf("Chunks(%d,%d,%d)=%d, want 0", budget, n, grain, p)
					}
					continue
				}
				if p < 1 || p > budget || p > n {
					t.Fatalf("Chunks(%d,%d,%d)=%d out of range", budget, n, grain, p)
				}
				if p > 1 && n/p < grain {
					t.Fatalf("Chunks(%d,%d,%d)=%d: chunk size %d below grain %d", budget, n, grain, p, n/p, grain)
				}
				// The partition used by Run must tile [0, n) exactly.
				covered := 0
				prevHi := 0
				for c := 0; c < p; c++ {
					lo, hi := c*n/p, (c+1)*n/p
					if lo != prevHi {
						t.Fatalf("partition gap at chunk %d: lo=%d prev hi=%d", c, lo, prevHi)
					}
					covered += hi - lo
					prevHi = hi
				}
				if covered != n || prevHi != n {
					t.Fatalf("partition covers %d of %d", covered, n)
				}
			}
		}
	}
}

// TestForCoversRangeOnce verifies every index is visited exactly once at
// several budgets, using atomic counters so the test doubles as a -race probe
// of the dispatch path.
func TestForCoversRangeOnce(t *testing.T) {
	const n = 1003
	for _, budget := range []int{1, 2, 3, 4, 8, 32} {
		var hits [n]int32
		For(budget, n, 1, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("budget %d: index %d visited %d times", budget, i, h)
			}
		}
	}
}

// TestRunChunkIndexing verifies chunk indices are dense, unique, and match
// the Chunks partition, which per-chunk scratch sizing depends on.
func TestRunChunkIndexing(t *testing.T) {
	const n, budget, grain = 100, 4, 1
	p := Chunks(budget, n, grain)
	seen := make([]int32, p)
	var mu sync.Mutex
	bounds := make(map[int][2]int)
	For(budget, n, grain, func(lo, hi int) {}) // warm the pool
	Run(budget, n, grain, runnerFunc(func(chunk, lo, hi int) {
		atomic.AddInt32(&seen[chunk], 1)
		mu.Lock()
		bounds[chunk] = [2]int{lo, hi}
		mu.Unlock()
	}))
	for c := 0; c < p; c++ {
		if seen[c] != 1 {
			t.Fatalf("chunk %d ran %d times", c, seen[c])
		}
		want := [2]int{c * n / p, (c + 1) * n / p}
		if bounds[c] != want {
			t.Fatalf("chunk %d bounds %v, want %v", c, bounds[c], want)
		}
	}
}

type runnerFunc func(chunk, lo, hi int)

func (f runnerFunc) Run(chunk, lo, hi int) { f(chunk, lo, hi) }

// TestNestedRunNoDeadlock exercises Run inside Run inside multiple
// goroutines — the fl-worker × intra-op composition. The unqueued dispatch
// (idle worker or inline) must make this deadlock-free regardless of pool
// size.
func TestNestedRunNoDeadlock(t *testing.T) {
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			For(4, 64, 1, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					For(4, 64, 1, func(lo2, hi2 int) {
						total.Add(int64(hi2 - lo2))
					})
				}
			})
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 4*64*64 {
		t.Fatalf("nested loops covered %d items, want %d", got, 4*64*64)
	}
}

// TestGrainFor spot-checks the work→grain mapping: heavy items parallelize
// at grain 1, featherweight items get grains that keep small loops serial.
func TestGrainFor(t *testing.T) {
	if g := GrainFor(minChunkWork); g != 1 {
		t.Fatalf("GrainFor(heavy)=%d, want 1", g)
	}
	if g := GrainFor(1); g != minChunkWork {
		t.Fatalf("GrainFor(1)=%d, want %d", g, minChunkWork)
	}
	if g := GrainFor(0); g != minChunkWork {
		t.Fatalf("GrainFor(0)=%d, want %d", g, minChunkWork)
	}
}

// TestWorkersPositive sanity-checks the full-machine budget.
func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers()=%d", Workers())
	}
}

// BenchmarkRunDispatch measures the dispatch overhead (and, with
// -benchmem, that the Runner path performs no steady-state allocation).
func BenchmarkRunDispatch(b *testing.B) {
	var sink atomic.Int64
	r := runnerFunc(func(_, lo, hi int) { sink.Add(int64(hi - lo)) })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Run(4, 1024, 1, r)
	}
}
