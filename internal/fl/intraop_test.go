package fl

import (
	"bytes"
	"fmt"
	"testing"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/tensor"
)

// convClients builds k clients with conv-sized samples so client training
// exercises the parallelized conv and dense kernels.
func convClients(k, samplesEach int) []*Client {
	r := frand.New(321)
	clients := make([]*Client, k)
	for i := range clients {
		ds := &dataset.Dataset{NumClasses: 4}
		for j := 0; j < samplesEach; j++ {
			ds.Samples = append(ds.Samples, dataset.Sample{
				X: tensor.Randn(r, 0.5, 3, 12, 12), Label: j % 4,
			})
		}
		clients[i] = NewClient(i, 0, ds, 99)
	}
	return clients
}

func convBuilder() *nn.Network {
	br := frand.New(7)
	return nn.NewNetwork(
		nn.NewConv2D(br, 3, 8, 3, 1, 1, 1),
		nn.NewReLU(),
		nn.NewFlatten(),
		nn.NewDense(br, 8*12*12, 32),
		nn.NewReLU(),
		nn.NewDense(br, 32, 4),
	)
}

func requireWeightsBitIdentical(t *testing.T, name string, got, want nn.Weights) {
	t.Helper()
	if len(got.Params) != len(want.Params) || len(got.States) != len(want.States) {
		t.Fatalf("%s: weight counts differ", name)
	}
	check := func(kind string, i int, g, w *tensor.Tensor) {
		gd, wd := g.Data(), w.Data()
		if len(gd) != len(wd) {
			t.Fatalf("%s: %s %d size %d != %d", name, kind, i, len(gd), len(wd))
		}
		for j := range gd {
			if gd[j] != wd[j] {
				t.Fatalf("%s: %s %d element %d differs: %v != %v (must be bit-identical)",
					name, kind, i, j, gd[j], wd[j])
			}
		}
	}
	for i := range got.Params {
		check("param", i, got.Params[i], want.Params[i])
	}
	for i := range got.States {
		check("state", i, got.States[i], want.States[i])
	}
}

// TestTrainLocalIntraOpBitIdentical trains the same client twice — serial
// kernels vs an intra-op budget — and requires bit-identical weights: the
// budget is a pure speed knob.
func TestTrainLocalIntraOpBitIdentical(t *testing.T) {
	ds := convClients(1, 20)[0].Data
	cfg := Config{
		Rounds: 1, ClientsPerRound: 1, BatchSize: 5, LocalEpochs: 2,
		LR: 0.05, Seed: 1,
	}
	serial := convBuilder()
	parl := convBuilder()
	parl.SetIntraOp(4)
	TrainLocal(serial, ds, cfg, nn.SoftmaxCrossEntropy{}, frand.New(3), nil, nil)
	TrainLocal(parl, ds, cfg, nn.SoftmaxCrossEntropy{}, frand.New(3), nil, nil)
	requireWeightsBitIdentical(t, "TrainLocal intraop=4 vs serial", parl.Snapshot(), serial.Snapshot())
}

// newConvServer builds a small conv federation for round-level tests.
func newConvServer(t *testing.T, workers, intraOp int, barrier bool) *Server {
	t.Helper()
	cfg := Config{
		Rounds: 3, ClientsPerRound: 6, BatchSize: 4, LocalEpochs: 1,
		LR: 0.1, Seed: 5, Workers: workers, IntraOp: intraOp, DisableStreaming: barrier,
	}
	srv, err := NewServer(cfg, convBuilder, nn.SoftmaxCrossEntropy{}, FedAvg{}, convClients(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// TestServerRoundNestedIntraOpBitIdentical runs the shard-parallel streaming
// round with intra-op kernels enabled inside the client workers — nested
// parallelism — and requires globals bit-identical to the all-serial run.
// Running this test under -race additionally validates the pool dispatch
// from concurrent worker goroutines (the CI race lane does).
func TestServerRoundNestedIntraOpBitIdentical(t *testing.T) {
	serial := newConvServer(t, 2, 1, false)
	nested := newConvServer(t, 2, 8, false) // share of 4 per worker
	for round := 0; round < 3; round++ {
		serial.RunRound(round)
		nested.RunRound(round)
		requireWeightsBitIdentical(t, fmt.Sprintf("round %d global", round), nested.Global, serial.Global)
	}
}

// TestIntraOpShare pins the core-budget token arithmetic: equal shares of
// the total, floored at 1, with the full budget for a single worker.
func TestIntraOpShare(t *testing.T) {
	cases := []struct {
		total, workers, want int
	}{
		{8, 2, 4},
		{8, 1, 8},
		{8, 3, 2},
		{2, 4, 1},
		{1, 1, 1},
		{1, 8, 1},
	}
	for _, c := range cases {
		if got := intraOpShare(Config{IntraOp: c.total}, c.workers); got != c.want {
			t.Fatalf("intraOpShare(total=%d, workers=%d)=%d, want %d", c.total, c.workers, got, c.want)
		}
	}
	// Auto budget is GOMAXPROCS-derived and must be at least 1.
	if got := intraOpShare(Config{}, 1); got < 1 {
		t.Fatalf("auto share %d < 1", got)
	}
}

// TestFinalizeRecyclingRetention locks the double-buffered Finalize
// invariant: weight sets handed out before the recycled buffer cycles back —
// checkpoint serializations and GlobalNet copies — must be unaffected by
// later rounds. It also confirms the streaming path matches the barrier path
// bit-for-bit with recycling active, over enough rounds for the ping-pong
// buffers to be reused twice.
func TestFinalizeRecyclingRetention(t *testing.T) {
	srv := newConvServer(t, 2, 1, false)
	srv.RunRound(0)

	// Capture everything an external consumer could retain at round 0.
	var ckpt bytes.Buffer
	if err := srv.SaveCheckpoint(&ckpt, 0); err != nil {
		t.Fatal(err)
	}
	gnet := srv.GlobalNet()
	snap := srv.Global.Clone()

	// Two more rounds: the recycled buffer written in round 2 is the weight
	// set that was global at the end of round 0.
	srv.RunRound(1)
	srv.RunRound(2)

	requireWeightsBitIdentical(t, "GlobalNet copy after recycling", gnet.Snapshot(), snap)
	restore := newConvServer(t, 2, 1, false)
	round, err := restore.LoadCheckpoint(&ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if round != 0 {
		t.Fatalf("checkpoint round %d, want 0", round)
	}
	requireWeightsBitIdentical(t, "checkpoint after recycling", restore.Global, snap)

	// And recycling must not change the aggregate: a run whose accumulators
	// hide the IntoFinalizer capability (forcing the allocating Finalize
	// every round) produces bit-identical globals.
	mk := func(strategy Strategy) *Server {
		cfg := Config{
			Rounds: 3, ClientsPerRound: 6, BatchSize: 4, LocalEpochs: 1,
			LR: 0.1, Seed: 5, Workers: 1,
		}
		srv, err := NewServer(cfg, convBuilder, nn.SoftmaxCrossEntropy{}, strategy, convClients(8, 8))
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}
	recycled := mk(FedAvg{})
	allocating := mk(noRecycleAgg{})
	for round := 0; round < 3; round++ {
		recycled.RunRound(round)
		allocating.RunRound(round)
		requireWeightsBitIdentical(t, fmt.Sprintf("round %d recycled vs allocating Finalize", round),
			recycled.Global, allocating.Global)
	}
}

// noRecycleAgg is FedAvg with the accumulator's IntoFinalizer (and
// ResettableAccumulator) capabilities hidden behind a plain Accumulator
// embedding, so the server must take the allocating Finalize path.
type noRecycleAgg struct{ FedAvg }

func (noRecycleAgg) NewAccumulator(global nn.Weights, cfg Config) Accumulator {
	return noRecycleAcc{FedAvg{}.NewAccumulator(global, cfg)}
}

type noRecycleAcc struct{ Accumulator }
