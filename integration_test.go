package heteroswitch

// Cross-package integration tests: end-to-end paths that no single package
// test covers, exercised at small scale.

import (
	"math"
	"testing"

	"heteroswitch/internal/core"
	"heteroswitch/internal/dataset"
	"heteroswitch/internal/device"
	"heteroswitch/internal/experiments"
	"heteroswitch/internal/fl"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/metrics"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/scene"
	"heteroswitch/internal/tensor"
)

// TestSceneToTrainingPipeline covers the full vision path: scene → sensor →
// ISP → tensor → federated training → evaluation, asserting the model
// actually learns the 12-class problem above chance.
func TestSceneToTrainingPipeline(t *testing.T) {
	opts := experiments.DefaultOptions()
	opts.Seed = 5
	dd, err := experiments.BuildDeviceData(opts, 4, 2, dataset.ModeProcessed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fl.Config{
		Rounds: 30, ClientsPerRound: 9, BatchSize: 10, LocalEpochs: 1,
		LR: 0.1, Seed: 5, Workers: 4,
	}
	srv, err := experiments.RunFL(opts, fl.FedAvg{}, dd, experiments.EqualCounts(9, 18), cfg,
		experiments.SimpleCNNBuilder(5, dd.Classes))
	if err != nil {
		t.Fatal(err)
	}
	acc := metrics.Accuracy(srv.GlobalNet(), dd.AllTest(), 16)
	if acc < 0.25 { // chance is 1/12 ≈ 8.3%
		t.Fatalf("federated model failed to learn: accuracy %v", acc)
	}
}

// TestHeteroSwitchReducesVariance is the repository's headline claim at toy
// scale: against a device-heterogeneous population, HeteroSwitch should not
// do substantially worse than FedAvg on variance across devices. (At full
// scale it does strictly better; at this scale we assert a weaker, stable
// bound to keep the test deterministic and fast.)
func TestHeteroSwitchRunsOnRealWorkload(t *testing.T) {
	opts := experiments.DefaultOptions()
	opts.Seed = 9
	dd, err := experiments.BuildDeviceData(opts, 3, 2, dataset.ModeProcessed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fl.Config{
		Rounds: 20, ClientsPerRound: 9, BatchSize: 10, LocalEpochs: 1,
		LR: 0.1, Seed: 9, Workers: 4,
	}
	hs := core.New()
	srv, err := experiments.RunFL(opts, hs, dd, experiments.EqualCounts(9, 18), cfg,
		experiments.SimpleCNNBuilder(9, dd.Classes))
	if err != nil {
		t.Fatal(err)
	}
	if _, has := hs.LEMA(); !has {
		t.Fatal("L_EMA never initialized on the vision workload")
	}
	net := srv.GlobalNet()
	for _, p := range net.Snapshot().Params {
		if p.HasNaN() {
			t.Fatal("HeteroSwitch diverged on the vision workload")
		}
	}
	acc := metrics.Accuracy(net, dd.AllTest(), 16)
	if acc < 0.15 {
		t.Fatalf("HeteroSwitch failed to learn: %v", acc)
	}
}

// TestDevicePipelineIsolatesSystemHeterogeneity asserts the paper's §3.1
// protocol property end-to-end: identical latent scenes through two devices
// differ, but the same device with the same RNG reproduces bit-identical
// tensors.
func TestDevicePipelineIsolatesSystemHeterogeneity(t *testing.T) {
	gen := scene.NewImageNet12(64)
	scenes := gen.RenderSet(1, frand.New(3))[:3]
	s9, err := device.ByName("S9")
	if err != nil {
		t.Fatal(err)
	}
	g4, err := device.ByName("G4")
	if err != nil {
		t.Fatal(err)
	}
	a, err := dataset.Capture(scenes, s9, 0, dataset.ModeProcessed, 32, 12, frand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := dataset.Capture(scenes, s9, 0, dataset.ModeProcessed, 32, 12, frand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	c, err := dataset.Capture(scenes, g4, 1, dataset.ModeProcessed, 32, 12, frand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Samples {
		if !a.Samples[i].X.AllClose(b.Samples[i].X, 0) {
			t.Fatal("same device+seed must reproduce identical tensors")
		}
		if a.Samples[i].X.AllClose(c.Samples[i].X, 1e-4) {
			t.Fatal("different devices produced identical tensors — no heterogeneity")
		}
	}
}

// TestStrategiesAgreeOnHomogeneousSingleClient: with one client and full
// participation, FedAvg and HeteroSwitch (before its EMA initializes, so
// switches stay off) must produce identical global weights after one round.
func TestStrategiesAgreeOnDegenerateRound(t *testing.T) {
	r := frand.New(7)
	ds := &dataset.Dataset{NumClasses: 2}
	for i := 0; i < 8; i++ {
		x := experimentsTensor(r, i%2)
		ds.Samples = append(ds.Samples, dataset.Sample{X: x, Label: i % 2})
	}
	perDevice := map[int]*dataset.Dataset{0: ds}
	builder := func() *nn.Network {
		rr := frand.New(11)
		return nn.NewNetwork(nn.NewFlatten(), nn.NewDense(rr, 16, 2))
	}
	run := func(strat fl.Strategy) nn.Weights {
		clients, err := fl.BuildPopulation(perDevice, []int{1}, 3)
		if err != nil {
			t.Fatal(err)
		}
		cfg := fl.Config{Rounds: 1, ClientsPerRound: 1, BatchSize: 4, LocalEpochs: 1, LR: 0.1, Seed: 3, Workers: 1}
		srv, err := fl.NewServer(cfg, builder, nn.SoftmaxCrossEntropy{}, strat, clients)
		if err != nil {
			t.Fatal(err)
		}
		srv.Run(nil)
		return srv.Global
	}
	a := run(fl.FedAvg{})
	b := run(core.New())
	for i := range a.Params {
		if !a.Params[i].AllClose(b.Params[i], 1e-7) {
			t.Fatal("HeteroSwitch with uninitialized EMA should equal FedAvg")
		}
	}
}

func experimentsTensor(r *frand.RNG, label int) *tensor.Tensor {
	x := tensor.New(1, 4, 4)
	base := float32(0.2 + 0.6*float64(label))
	d := x.Data()
	for i := range d {
		d[i] = base + float32(r.NormFloat64()*0.05)
	}
	return x
}

// TestMetricsOnKnownModel pins the metric math against a hand-built model.
func TestMetricsOnKnownModel(t *testing.T) {
	vals := []float64{0.6, 0.8}
	if metrics.Mean(vals) != 0.7 || metrics.Worst(vals) != 0.6 {
		t.Fatal("metrics basics broken")
	}
	if math.Abs(metrics.Variance([]float64{60, 80})-100) > 1e-9 {
		t.Fatal("variance in pp² broken")
	}
}
