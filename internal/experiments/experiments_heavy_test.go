package experiments

import (
	"strings"
	"testing"
)

// The heavier harnesses (many FL runs each) are exercised at very small
// scale; -short skips them.

func TestFig5Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: 10 FL runs")
	}
	res, err := Fig5(tinyOpts(0.08))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeviceNames) != 9 {
		t.Fatalf("device series %d", len(res.DeviceNames))
	}
	if !strings.Contains(res.String(), "LODO") {
		t.Fatal("rendering broken")
	}
}

func TestFig9Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: 12 FL runs")
	}
	res, err := Fig9(tinyOpts(0.06))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sweeps) != 4 {
		t.Fatalf("sweeps %d", len(res.Sweeps))
	}
	for _, sw := range res.Sweeps {
		if len(sw.Values) != 3 || len(sw.Acc) != 3 {
			t.Fatalf("sweep %s malformed", sw.Param)
		}
	}
}

func TestTable4Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: 7 FL runs with MobileNet")
	}
	res, err := Table4(tinyOpts(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 7 {
		t.Fatalf("methods %d, want 7", len(res.Scores))
	}
	wantOrder := []string{"FedAvg", "ISP-Transformation", "ISP+SWAD", "HeteroSwitch", "q-FedAvg", "FedProx", "Scaffold"}
	for i, w := range wantOrder {
		if res.Scores[i].Method != w {
			t.Fatalf("row %d = %s, want %s", i, res.Scores[i].Method, w)
		}
		if len(res.Scores[i].PerDevice) != 9 {
			t.Fatalf("%s per-device length %d", w, len(res.Scores[i].PerDevice))
		}
	}
}

func TestTable5Structure(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: 6 FL runs across architectures")
	}
	res, err := Table5(tinyOpts(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("architectures %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.FedAvg.Method != "FedAvg" || row.Hetero.Method != "HeteroSwitch" {
			t.Fatalf("row method names: %+v", row)
		}
	}
}

func TestAblationSwitchesStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: 4 FL runs")
	}
	res, err := AblationSwitches(tinyOpts(0.06))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 4 {
		t.Fatalf("variants %d", len(res.Scores))
	}
}

func TestFig2RunsRAWMode(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: 9 central trainings")
	}
	res, err := Fig2(tinyOpts(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.String(), "RAW") {
		t.Fatal("Fig2 should label itself as RAW")
	}
}

func TestUnseenDGStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("heavy: 2 FL runs + unseen captures")
	}
	res, err := UnseenDG(tinyOpts(0.08))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.UnseenNames) != 3 || len(res.Rows) != 2 {
		t.Fatalf("structure: %d unseen, %d rows", len(res.UnseenNames), len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.UnseenMin > row.UnseenAvg {
			t.Fatal("worst unseen accuracy above average")
		}
	}
}
