package tensor

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"heteroswitch/internal/frand"
)

// The int8 backend's contract (int8.go): quantized results track the oracle
// within Int8Tol (relative past unit magnitude) with identical per-row
// argmax, are bit-identical across intra-op budgets, dispatch falls back to
// the float kernels when a handle lacks the quantized form, warm dispatches
// allocate nothing, and weight packs happen per Refresh — never per call.

// int8TolOK is packedTolOK with the int8 tier's documented bound.
func int8TolOK(got, want float32) bool {
	w := math.Abs(float64(want))
	if w < 1 {
		w = 1
	}
	return math.Abs(float64(got)-float64(want)) <= Int8Tol*w
}

// rowMargin is the gap between a row's top two values (0 for single-column
// rows).
func rowMargin(row []float32) float32 {
	best, second := float32(math.Inf(-1)), float32(math.Inf(-1))
	for _, v := range row {
		if v > best {
			best, second = v, best
		} else if v > second {
			second = v
		}
	}
	if math.IsInf(float64(second), -1) {
		return 0
	}
	return best - second
}

// rowMagnitude is the unit-floored |max| the relative tolerance scales by.
func rowMagnitude(row []float32) float32 {
	m := float32(1)
	for _, v := range row {
		if a := abs32(v); a > m {
			m = a
		}
	}
	return m
}

// refreshB builds a weights-as-B handle with the forms of the CURRENT
// backend (callers force the backend first).
func refreshB(w *Tensor, k, n int) *PackedWeights {
	pw := new(PackedWeights)
	pw.RefreshB(w.Data(), k, n)
	return pw
}

func refreshA(w *Tensor, m, k int) *PackedWeights {
	pw := new(PackedWeights)
	pw.RefreshA(w.Data(), m, k)
	return pw
}

// TestInt8MatchesOracle: forced int8 vs forced serial on both
// weight-stationary entries, every shape × budget, within Int8Tol with
// identical per-row argmax — the documented quantized-tier contract, with
// and without an epilogue and under accumulation.
func TestInt8MatchesOracle(t *testing.T) {
	r := frand.New(131)
	for _, sz := range packedShapes {
		m, k, n := sz.m, sz.k, sz.n
		a := Randn(r, 1, m, k)
		w := fanInScaled(r, k, n)
		want := make([]float32, m*n)
		got := make([]float32, m*n)
		ep := &testEpilogue{bias: Randn(r, 1, n).Data()}

		forceBackend(t, BackendSerial)
		MatMulSlicesPEp(1, want, a.Data(), w.Data(), m, k, n, ep)

		forceBackend(t, BackendInt8)
		pwB := refreshB(w, k, n)
		if !pwB.HasInt8() {
			t.Fatalf("%dx%dx%d: RefreshB under int8 backend left no quantized form", m, k, n)
		}
		// The conv orientation computes the transposed product; reusing the
		// same operands as A[m,k] @ B[k,n] just relabels which side is the
		// weight.
		pwA := refreshA(a, m, k)
		for _, par := range packedBudgets {
			for name, run := range map[string]func(){
				"wb": func() { MatMulWBSlicesPEp(par, got, a.Data(), w.Data(), pwB, m, false, ep) },
				"wa": func() { MatMulWASlicesPEp(par, got, a.Data(), pwA, 0, m, w.Data(), n, false, ep) },
			} {
				clear(got)
				run()
				for i := 0; i < m; i++ {
					wantRow := want[i*n : (i+1)*n]
					gotRow := got[i*n : (i+1)*n]
					for j := 0; j < n; j++ {
						if !int8TolOK(gotRow[j], wantRow[j]) {
							t.Fatalf("%s %dx%dx%d par=%d: [%d,%d] got %g want %g (tol %g)",
								name, m, k, n, par, i, j, gotRow[j], wantRow[j], Int8Tol)
						}
					}
					// Argmax must survive quantization whenever the decision
					// margin exceeds the tolerance band (random matrices can
					// tie their top-2 arbitrarily closely; the model-fixture
					// suites apply the same margin guard under this tier).
					if n > 1 && rowArgmax(gotRow) != rowArgmax(wantRow) &&
						rowMargin(wantRow) > 2*Int8Tol*rowMagnitude(wantRow) {
						t.Fatalf("%s %dx%dx%d par=%d: row %d argmax %d want %d (margin %g)",
							name, m, k, n, par, i, rowArgmax(gotRow), rowArgmax(wantRow), rowMargin(wantRow))
					}
				}
			}
		}

		// Accumulation: out += product on a pre-seeded output.
		seed := Randn(r, 1, m, n)
		copy(want, seed.Data())
		forceBackend(t, BackendSerial)
		MatMulAccSlicesPEp(1, want, a.Data(), w.Data(), m, k, n, nil)
		forceBackend(t, BackendInt8)
		copy(got, seed.Data())
		MatMulWBSlicesPEp(1, got, a.Data(), w.Data(), pwB, m, true, nil)
		for i := range got {
			if !int8TolOK(got[i], want[i]) {
				t.Fatalf("wb accum %dx%dx%d: [%d] got %g want %g", m, k, n, i, got[i], want[i])
			}
		}
	}
}

// TestInt8BitIdenticalAcrossBudgets: the int8 kernel's integer accumulation
// is exact, so results must match BIT-FOR-BIT at every intra-op budget —
// the property the serve determinism contract stands on.
func TestInt8BitIdenticalAcrossBudgets(t *testing.T) {
	r := frand.New(137)
	forceBackend(t, BackendInt8)
	for _, sz := range packedShapes {
		m, k, n := sz.m, sz.k, sz.n
		a := Randn(r, 1, m, k)
		w := fanInScaled(r, k, n)
		ep := &testEpilogue{bias: Randn(r, 1, n).Data()}
		pwB := refreshB(w, k, n)
		pwA := refreshA(a, m, k)
		ref := make([]float32, m*n)
		refA := make([]float32, m*n)
		MatMulWBSlicesPEp(1, ref, a.Data(), w.Data(), pwB, m, false, ep)
		MatMulWASlicesPEp(1, refA, a.Data(), pwA, 0, m, w.Data(), n, false, ep)
		got := make([]float32, m*n)
		for _, par := range packedBudgets[1:] {
			clear(got)
			MatMulWBSlicesPEp(par, got, a.Data(), w.Data(), pwB, m, false, ep)
			for i := range got {
				if got[i] != ref[i] {
					t.Fatalf("wb %dx%dx%d par=%d: [%d] %g != par=1 %g", m, k, n, par, i, got[i], ref[i])
				}
			}
			clear(got)
			MatMulWASlicesPEp(par, got, a.Data(), pwA, 0, m, w.Data(), n, false, ep)
			for i := range got {
				if got[i] != refA[i] {
					t.Fatalf("wa %dx%dx%d par=%d: [%d] %g != par=1 %g", m, k, n, par, i, got[i], refA[i])
				}
			}
		}
	}
}

// TestInt8GroupRowOffset: the weights-as-A entry's rowOff/rows window must
// select exactly the group's rows — computing a 2-group product group by
// group against one handle matches per-group handles.
func TestInt8GroupRowOffset(t *testing.T) {
	r := frand.New(139)
	forceBackend(t, BackendInt8)
	const m, k, n = 10, 12, 9 // two groups of 5 rows
	w := Randn(r, 1, m, k)
	b := Randn(r, 1, k, n)
	pw := refreshA(w, m, k)
	got := make([]float32, m*n)
	MatMulWASlicesPEp(1, got[:5*n], w.Data()[:5*k], pw, 0, 5, b.Data(), n, false, nil)
	MatMulWASlicesPEp(1, got[5*n:], w.Data()[5*k:], pw, 5, 5, b.Data(), n, false, nil)
	want := make([]float32, m*n)
	lo := new(PackedWeights)
	lo.RefreshA(w.Data()[:5*k], 5, k)
	hi := new(PackedWeights)
	hi.RefreshA(w.Data()[5*k:], 5, k)
	MatMulWASlicesPEp(1, want[:5*n], w.Data()[:5*k], lo, 0, 5, b.Data(), n, false, nil)
	MatMulWASlicesPEp(1, want[5*n:], w.Data()[5*k:], hi, 0, 5, b.Data(), n, false, nil)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("[%d] windowed %g != per-group %g", i, got[i], want[i])
		}
	}
}

// TestWeightStationaryFallbacks: a handle refreshed under one backend must
// stay CORRECT under every other — missing forms fall back to the float
// kernels on the aliased weights, bit-identical to the raw-slice entries.
func TestWeightStationaryFallbacks(t *testing.T) {
	r := frand.New(149)
	const m, k, n = 6, 20, 11
	a := Randn(r, 1, m, k)
	w := fanInScaled(r, k, n)
	forceBackend(t, BackendSerial) // refresh builds no forms at all
	pwB := refreshB(w, k, n)
	pwA := refreshA(a, m, k)
	if pwB.HasFloat() || pwB.HasInt8() || pwA.HasInt8() {
		t.Fatal("serial refresh built forms it can never use")
	}
	want := make([]float32, m*n)
	got := make([]float32, m*n)
	for _, be := range []Backend{BackendSerial, BackendPacked, BackendAuto, BackendInt8} {
		forceBackend(t, be)
		clear(want)
		MatMulSlicesPEp(2, want, a.Data(), w.Data(), m, k, n, nil)
		clear(got)
		MatMulWBSlicesPEp(2, got, a.Data(), w.Data(), pwB, m, false, nil)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("wb fallback backend=%s: [%d] %g != raw %g", be, i, got[i], want[i])
			}
		}
		clear(got)
		MatMulWASlicesPEp(2, got, a.Data(), pwA, 0, m, w.Data(), n, false, nil)
		// The as-A float fallback always runs the raw kernels on the aliased
		// rows; under int8/packed the raw entry may dispatch packed — both
		// sides must still agree bit-for-bit only when the kernel matches,
		// so compare against the entry's own documented fallback.
		clear(want)
		if usePacked(m, k, n) {
			matMulPackedEp(2, want, a.Data(), w.Data(), m, k, n, false, nil)
		} else {
			MatMulSlicesPEp(2, want, a.Data(), w.Data(), m, k, n, nil)
		}
		for i := range got {
			if math.Abs(float64(got[i]-want[i])) > 1e-5 {
				t.Fatalf("wa fallback backend=%s: [%d] %g vs %g", be, i, got[i], want[i])
			}
		}
	}
}

// TestWeightPackCount: Refresh packs exactly the forms the active backend
// needs, and DISPATCH never packs — the packs == installed-versions
// accounting the frozen path's steady-state contract stands on.
func TestWeightPackCount(t *testing.T) {
	r := frand.New(151)
	const m, k, n = 8, 16, 12
	a := Randn(r, 1, m, k)
	w := fanInScaled(r, k, n)
	out := make([]float32, m*n)

	forceBackend(t, BackendInt8)
	before := WeightPackCount()
	pwB := refreshB(w, k, n)
	pwA := refreshA(a, m, k)
	if got := WeightPackCount() - before; got != 2 {
		t.Fatalf("two int8 refreshes packed %d forms, want 2", got)
	}
	before = WeightPackCount()
	for i := 0; i < 5; i++ {
		MatMulWBSlicesPEp(1, out, a.Data(), w.Data(), pwB, m, false, nil)
		MatMulWASlicesPEp(1, out, a.Data(), pwA, 0, m, w.Data(), n, false, nil)
	}
	if got := WeightPackCount() - before; got != 0 {
		t.Fatalf("10 dispatches packed %d forms, want 0", got)
	}

	forceBackend(t, BackendPacked)
	before = WeightPackCount()
	refreshB(w, k, n) // float panels only
	refreshA(a, m, k) // as-A needs no form under packed
	if got := WeightPackCount() - before; got != 1 {
		t.Fatalf("packed refreshes packed %d forms, want 1", got)
	}
}

// TestInt8AllocFree: a warm weight-stationary dispatch — activation
// quantization buffers included — performs zero heap allocations on both
// orientations.
func TestInt8AllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items randomly under -race; alloc counts are nondeterministic")
	}
	r := frand.New(157)
	const m, k, n = 16, 48, 32
	a := Randn(r, 1, m, k)
	w := fanInScaled(r, k, n)
	out := make([]float32, m*n)
	ep := &testEpilogue{bias: Randn(r, 1, n).Data()}
	forceBackend(t, BackendInt8)
	pwB := refreshB(w, k, n)
	pwA := refreshA(a, m, k)
	for _, tc := range []struct {
		name string
		run  func()
	}{
		{"wb", func() { MatMulWBSlicesPEp(2, out, a.Data(), w.Data(), pwB, m, false, ep) }},
		{"wa", func() { MatMulWASlicesPEp(2, out, a.Data(), pwA, 0, m, w.Data(), n, false, ep) }},
	} {
		tc.run() // warm the pools
		if allocs := testing.AllocsPerRun(10, tc.run); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestQuantVal pins the rounding contract: branchless round-half-up in the
// biased domain (v·inv is bounded to ±127 by construction — inv always
// derives from the maxabs of the data being quantized, so no clamp exists),
// zero-scale channels quantize to exact zero.
func TestQuantVal(t *testing.T) {
	for _, tc := range []struct {
		v, inv float32
		want   int8
	}{
		{0.5, 1, 1}, {-0.5, 1, 0}, {0.49, 1, 0}, {-0.51, 1, -1},
		{126.6, 1, 127}, {-126.6, 1, -127}, {127, 1, 127}, {-127, 1, -127},
		{3.7, 0, 0}, // all-zero channel: inv==0 maps everything to 0
		{1.5, 1, 2}, {-1.5, 1, -1},
	} {
		if got := quantVal(tc.v, tc.inv); got != tc.want {
			t.Errorf("quantVal(%g, %g) = %d, want %d", tc.v, tc.inv, got, tc.want)
		}
	}
	if quantInv(0) != 0 {
		t.Error("quantInv(0) != 0")
	}
	// A maxabs at the extreme ends must keep v·inv in the clamp-free domain:
	// the top of the range quantizes to exactly ±127.
	for _, ma := range []float32{1e-30, 1, 3e38} {
		if got := quantVal(ma, quantInv(ma)); got != 127 {
			t.Errorf("quantVal(maxabs=%g) = %d, want 127", ma, got)
		}
		if got := quantVal(-ma, quantInv(ma)); got != -127 {
			t.Errorf("quantVal(-maxabs=%g) = %d, want -127", ma, got)
		}
	}
	// Denormal maxabs: 127/ma overflows float32, so the channel flushes to
	// zero-quantization instead of feeding ±Inf into the rounding.
	if quantInv(1e-44) != 0 {
		t.Error("quantInv(denormal) should flush to 0")
	}
}

// TestBackendParseInt8 extends the flag round-trip to the int8 backend and
// pins the error path's wording (the lane-misconfiguration guard).
func TestBackendParseInt8(t *testing.T) {
	b, err := ParseBackend("int8")
	if err != nil || b != BackendInt8 {
		t.Fatalf("ParseBackend(int8) = %v, %v", b, err)
	}
	if b.String() != "int8" {
		t.Fatalf("String() = %q", b.String())
	}
	if _, err := ParseBackend("int4"); err == nil || !strings.Contains(err.Error(), "int8") {
		t.Fatalf("ParseBackend(int4) err = %v, want mention of valid values", err)
	}
}

// TestInitBackendFromEnv pins the fail-loud contract: a valid value pins
// the backend, an empty value is a no-op, and an UNKNOWN value returns an
// error naming the variable WITHOUT touching the active backend (init turns
// that error into a hard exit, so a CI lane can never silently test the
// wrong backend).
func TestInitBackendFromEnv(t *testing.T) {
	forceBackend(t, BackendAuto)
	if err := initBackendFromEnv("int8"); err != nil {
		t.Fatalf("int8: %v", err)
	}
	if ActiveBackend() != BackendInt8 {
		t.Fatalf("backend = %v after env init", ActiveBackend())
	}
	if err := initBackendFromEnv(""); err != nil || ActiveBackend() != BackendInt8 {
		t.Fatalf("empty value must be a no-op, got err=%v backend=%v", err, ActiveBackend())
	}
	err := initBackendFromEnv("fast")
	if err == nil || !strings.Contains(err.Error(), "HETEROSWITCH_KERNEL_BACKEND") {
		t.Fatalf("unknown value err = %v, want the variable named", err)
	}
	if ActiveBackend() != BackendInt8 {
		t.Fatalf("reject must not change the backend, got %v", ActiveBackend())
	}
}

// BenchmarkMatMulInt8 A/Bs the integer kernel against the float backends on
// the weight-stationary entry (weights pre-packed for packed/int8, so the
// comparison isolates kernel speed the way the frozen path sees it).
func BenchmarkMatMulInt8(b *testing.B) {
	r := frand.New(163)
	for _, sz := range []struct{ m, k, n int }{
		{16, 768, 256}, // MLP dense eval batch
		{48, 48, 256},  // ConvNet expand pointwise
		{64, 64, 64},
		{128, 128, 128},
		{256, 256, 256},
	} {
		a := Randn(r, 1, sz.m, sz.k)
		w := fanInScaled(r, sz.k, sz.n)
		out := make([]float32, sz.m*sz.n)
		for _, be := range []Backend{BackendSerial, BackendPacked, BackendInt8} {
			b.Run(fmt.Sprintf("%dx%dx%d/backend=%s", sz.m, sz.k, sz.n, be), func(b *testing.B) {
				prev := ActiveBackend()
				SetBackend(be)
				defer SetBackend(prev)
				pw := new(PackedWeights)
				pw.RefreshB(w.Data(), sz.k, sz.n)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					MatMulWBSlicesPEp(1, out, a.Data(), w.Data(), pw, sz.m, false, nil)
				}
			})
		}
	}
}
