package nn

import (
	"fmt"
	"math"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/parallel"
	"heteroswitch/internal/tensor"
)

// Conv2D is a grouped 2-D convolution over NCHW tensors. Groups==1 is a
// standard convolution; Groups==InC with OutC==InC is a depthwise
// convolution (the MobileNet building block); 1<Groups<InC gives the grouped
// convolutions used by ShuffleNet.
//
// The implementation lowers each sample and group to an im2col matrix and a
// single matmul, caching the column matrices for the backward pass.
//
// Under an intra-op budget (SetIntraOp), the sample×group loops run in
// parallel: forward iterations and the input-gradient iterations write
// disjoint slices, and the weight/bias gradients are parallelized over
// output-channel rows with the per-sample accumulation kept in ascending
// sample order — so results are bit-identical to the serial layer at every
// budget. A single-iteration layer (N=1, Groups=1) passes the budget down to
// the row-parallel matmul kernels instead, so large single-sample convs
// still use the cores.
type Conv2D struct {
	arenaScratch
	intraOp
	InC, OutC   int
	KH, KW      int
	Stride, Pad int
	Groups      int
	W, B        *Param
	inH, inW    int // geometry captured at Forward time
	dims        tensor.ConvDims
	cols        []float32 // cached im2col matrices: [N][G][rows*cols]
	dcol        []float32 // backward scratch: one [rows*cols] column gradient per parallel chunk
	batch       int
	x           *tensor.Tensor
	// persistent parallel.Runner values (avoid per-batch allocation)
	fwdTask convFwdTask
	rowTask convRowTask
	dxTask  convDxTask
}

// NewConv2D builds a grouped convolution with He-normal init. It panics if
// channel counts are not divisible by groups (a construction-time programmer
// error).
func NewConv2D(r *frand.RNG, inC, outC, k, stride, pad, groups int) *Conv2D {
	if groups < 1 || inC%groups != 0 || outC%groups != 0 {
		panic(fmt.Sprintf("nn: Conv2D groups=%d incompatible with channels %d→%d", groups, inC, outC))
	}
	fanIn := (inC / groups) * k * k
	std := math.Sqrt(2.0 / float64(fanIn))
	w := tensor.Randn(r, std, outC, fanIn)
	name := fmt.Sprintf("conv%d_%d_k%dg%d", inC, outC, k, groups)
	return &Conv2D{
		InC: inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad, Groups: groups,
		W: &Param{Name: name + ".W", W: w, Grad: tensor.New(outC, fanIn)},
		B: &Param{Name: name + ".b", W: tensor.New(outC), Grad: tensor.New(outC), NoDecay: true},
	}
}

// NewDepthwiseConv2D builds a depthwise convolution (groups == channels).
func NewDepthwiseConv2D(r *frand.RNG, c, k, stride, pad int) *Conv2D {
	return NewConv2D(r, c, c, k, stride, pad, c)
}

// Forward implements Layer.
func (l *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.NDim() != 4 || x.Dim(1) != l.InC {
		panic(fmt.Sprintf("nn: Conv2D input %v, want [N %d H W]", x.Shape(), l.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	if h != l.inH || w != l.inW {
		d, err := tensor.NewConvDims(l.InC/l.Groups, h, w, l.KH, l.KW, l.Stride, l.Pad)
		if err != nil {
			panic("nn: " + err.Error())
		}
		l.dims, l.inH, l.inW = d, h, w
	}
	d := l.dims
	rows, cols := d.ColRows(), d.ColCols()
	g := l.Groups
	gcIn := l.InC / g
	gcOut := l.OutC / g
	need := n * g * rows * cols
	if cap(l.cols) < need {
		l.cols = make([]float32, need)
	}
	l.cols = l.cols[:need]
	l.batch = n
	l.x = x

	out := l.allocUninit(n, l.OutC, d.OutH, d.OutW)
	xd, od := x.Data(), out.Data()
	fanIn := gcIn * l.KH * l.KW
	iters := n * g
	if iters == 1 {
		// One sample, one group: no iteration-level parallelism to mine, so
		// hand the whole budget to the row-parallel matmul instead.
		l.forwardIter(0, l.budget(), xd, od)
		return out
	}
	l.fwdTask = convFwdTask{l: l, xd: xd, od: od}
	parallel.Run(l.budget(), iters, parallel.GrainFor(gcOut*fanIn*cols), &l.fwdTask)
	return out
}

// forwardIter runs one sample×group forward iteration: im2col, the group
// matmul (row-parallel under par), and the bias add. Iterations write
// disjoint col and output slices, so any subset may run concurrently.
func (l *Conv2D) forwardIter(it, par int, xd, od []float32) {
	d := l.dims
	rows, cols := d.ColRows(), d.ColCols()
	g := l.Groups
	gcIn := l.InC / g
	gcOut := l.OutC / g
	fanIn := gcIn * l.KH * l.KW
	h, w := l.inH, l.inW
	imgStride := l.InC * h * w
	outStride := l.OutC * d.OutH * d.OutW
	wd, bd := l.W.W.Data(), l.B.W.Data()
	i, gi := it/g, it%g

	img := xd[i*imgStride+gi*gcIn*h*w : i*imgStride+(gi+1)*gcIn*h*w]
	col := l.cols[(i*g+gi)*rows*cols : (i*g+gi+1)*rows*cols]
	tensor.Im2Col(col, img, d)
	// y[gcOut, cols] = Wg[gcOut, fanIn] @ col[fanIn, cols]
	wg := wd[gi*gcOut*fanIn : (gi+1)*gcOut*fanIn]
	y := od[i*outStride+gi*gcOut*cols : i*outStride+(gi+1)*gcOut*cols]
	tensor.MatMulSlicesP(par, y, wg, col, gcOut, fanIn, cols)
	for oc := 0; oc < gcOut; oc++ {
		b := bd[gi*gcOut+oc]
		row := y[oc*cols : (oc+1)*cols]
		for j := range row {
			row[j] += b
		}
	}
}

// convFwdTask is the parallel.Runner for the forward sample×group loop.
type convFwdTask struct {
	l      *Conv2D
	xd, od []float32
}

// Run implements parallel.Runner over a contiguous iteration range.
func (t *convFwdTask) Run(_, lo, hi int) {
	for it := lo; it < hi; it++ {
		t.l.forwardIter(it, 1, t.xd, t.od)
	}
}

// Backward implements Layer. It runs in two phases so each can parallelize
// without changing any accumulation order:
//
//  1. Weight and bias gradients, parallel over output-channel rows. Each row
//     of dW (and its db entry) is owned by one goroutine that folds the
//     samples in ascending order — the same per-target order as the serial
//     i-outer loop, so results are bit-identical.
//  2. Input gradients, parallel over sample×group iterations. Iterations
//     write disjoint dx slices; each parallel chunk owns a private dcol
//     scratch.
func (l *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	d := l.dims
	rows, cols := d.ColRows(), d.ColCols()
	g := l.Groups
	gcIn := l.InC / g
	gcOut := l.OutC / g
	fanIn := gcIn * l.KH * l.KW
	n := l.batch
	h, w := l.inH, l.inW

	// Col2Im accumulates, so dx must start zeroed.
	dx := l.alloc(n, l.InC, h, w)
	gd, dxd := grad.Data(), dx.Data()

	// Phase 1: dW and db, parallel over the OutC output-channel rows. One
	// row costs n·cols·fanIn multiply-adds across all samples.
	l.rowTask = convRowTask{l: l, gd: gd}
	parallel.Run(l.budget(), l.OutC, parallel.GrainFor(n*cols*fanIn), &l.rowTask)

	// Phase 2: dx, parallel over sample×group iterations with one dcol
	// scratch per chunk (sized to the partition Run will actually use).
	iters := n * g
	perIter := gcOut * fanIn * cols
	chunks := parallel.Chunks(l.budget(), iters, parallel.GrainFor(perIter))
	if cap(l.dcol) < chunks*rows*cols {
		l.dcol = make([]float32, chunks*rows*cols)
	}
	l.dcol = l.dcol[:chunks*rows*cols]
	if iters == 1 {
		// Single iteration: hand the budget to the row-parallel kernel.
		l.backwardIter(0, l.budget(), l.dcol[:rows*cols], gd, dxd)
		return dx
	}
	l.dxTask = convDxTask{l: l, gd: gd, dxd: dxd}
	parallel.Run(l.budget(), iters, parallel.GrainFor(perIter), &l.dxTask)
	return dx
}

// backwardRows accumulates dW rows [lo, hi) (global output-channel indices
// across groups) and their db entries, folding samples in ascending order.
func (l *Conv2D) backwardRows(gd []float32, lo, hi int) {
	d := l.dims
	rows, cols := d.ColRows(), d.ColCols()
	g := l.Groups
	gcIn := l.InC / g
	gcOut := l.OutC / g
	fanIn := gcIn * l.KH * l.KW
	n := l.batch
	outStride := l.OutC * d.OutH * d.OutW
	dwd, dbd := l.W.Grad.Data(), l.B.Grad.Data()

	for oc := lo; oc < hi; {
		gi := oc / gcOut
		segHi := min(hi, (gi+1)*gcOut)
		o0 := oc - gi*gcOut // first row within the group
		segRows := segHi - oc
		dwg := dwd[gi*gcOut*fanIn : (gi+1)*gcOut*fanIn]
		for i := 0; i < n; i++ {
			dy := gd[i*outStride+gi*gcOut*cols : i*outStride+(gi+1)*gcOut*cols]
			col := l.cols[(i*g+gi)*rows*cols : (i*g+gi+1)*rows*cols]
			// dWg rows [o0, o0+segRows) += dy rows @ colᵀ, in place.
			tensor.MatMulTransBAccSlices(dwg[o0*fanIn:(o0+segRows)*fanIn],
				dy[o0*cols:(o0+segRows)*cols], col, segRows, cols, fanIn)
			// db += Σ spatial dy for the same rows
			for r := o0; r < o0+segRows; r++ {
				var s float32
				row := dy[r*cols : (r+1)*cols]
				for _, v := range row {
					s += v
				}
				dbd[gi*gcOut+r] += s
			}
		}
		oc = segHi
	}
}

// backwardIter computes one sample×group input-gradient iteration:
// dcol = Wgᵀ @ dy (row-parallel under par), scattered back to dx via the
// column-blocked Col2ImP (parallel over disjoint image columns under the
// same budget — the single-iteration case where par > 1). The transposed-A
// kernel reads Wg in place instead of materializing Wgᵀ.
func (l *Conv2D) backwardIter(it, par int, dcol, gd, dxd []float32) {
	d := l.dims
	cols := d.ColCols()
	g := l.Groups
	gcIn := l.InC / g
	gcOut := l.OutC / g
	fanIn := gcIn * l.KH * l.KW
	h, w := l.inH, l.inW
	imgStride := l.InC * h * w
	outStride := l.OutC * d.OutH * d.OutW
	wd := l.W.W.Data()
	i, gi := it/g, it%g

	dy := gd[i*outStride+gi*gcOut*cols : i*outStride+(gi+1)*gcOut*cols]
	wg := wd[gi*gcOut*fanIn : (gi+1)*gcOut*fanIn]
	clear(dcol)
	tensor.MatMulTransAAccSlicesP(par, dcol, wg, dy, gcOut, fanIn, cols)
	dimg := dxd[i*imgStride+gi*gcIn*h*w : i*imgStride+(gi+1)*gcIn*h*w]
	tensor.Col2ImP(par, dimg, dcol, d)
}

// convRowTask is the parallel.Runner for the weight/bias gradient rows.
type convRowTask struct {
	l  *Conv2D
	gd []float32
}

// Run implements parallel.Runner over a contiguous output-channel row range.
func (t *convRowTask) Run(_, lo, hi int) { t.l.backwardRows(t.gd, lo, hi) }

// convDxTask is the parallel.Runner for the input-gradient iterations; each
// chunk owns the dcol scratch slice matching its chunk index.
type convDxTask struct {
	l       *Conv2D
	gd, dxd []float32
}

// Run implements parallel.Runner over a contiguous iteration range.
func (t *convDxTask) Run(chunk, lo, hi int) {
	rc := t.l.dims.ColRows() * t.l.dims.ColCols()
	dcol := t.l.dcol[chunk*rc : (chunk+1)*rc]
	for it := lo; it < hi; it++ {
		t.l.backwardIter(it, 1, dcol, t.gd, t.dxd)
	}
}

// Params implements Layer.
func (l *Conv2D) Params() []*Param { return []*Param{l.W, l.B} }

// States implements Layer.
func (l *Conv2D) States() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D(%d→%d, k%d, s%d, g%d)", l.InC, l.OutC, l.KH, l.Stride, l.Groups)
}

// ChannelShuffle permutes channels between groups, the ShuffleNet mixing
// operation: viewing channels as [g, c/g], it transposes to [c/g, g].
type ChannelShuffle struct {
	arenaScratch
	Groups int
	c      int
}

// NewChannelShuffle returns a shuffle layer with the given group count.
func NewChannelShuffle(groups int) *ChannelShuffle { return &ChannelShuffle{Groups: groups} }

// Forward implements Layer.
func (l *ChannelShuffle) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.c = x.Dim(1)
	return l.shuffleChannels(x, l.Groups)
}

// Backward implements Layer: the inverse of a [g, c/g] transpose is a
// [c/g, g] transpose.
func (l *ChannelShuffle) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return l.shuffleChannels(grad, l.c/l.Groups)
}

func (l *ChannelShuffle) shuffleChannels(x *tensor.Tensor, g int) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c%g != 0 {
		panic(fmt.Sprintf("nn: ChannelShuffle %d channels not divisible by %d groups", c, g))
	}
	per := c / g
	out := l.allocUninit(n, c, h, w)
	hw := h * w
	xd, od := x.Data(), out.Data()
	for i := 0; i < n; i++ {
		base := i * c * hw
		for gi := 0; gi < g; gi++ {
			for ci := 0; ci < per; ci++ {
				src := xd[base+(gi*per+ci)*hw : base+(gi*per+ci+1)*hw]
				dst := od[base+(ci*g+gi)*hw : base+(ci*g+gi+1)*hw]
				copy(dst, src)
			}
		}
	}
	return out
}

// Params implements Layer.
func (l *ChannelShuffle) Params() []*Param { return nil }

// States implements Layer.
func (l *ChannelShuffle) States() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *ChannelShuffle) Name() string { return fmt.Sprintf("ChannelShuffle(g%d)", l.Groups) }
