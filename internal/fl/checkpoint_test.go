package fl

import (
	"bytes"
	"math"
	"testing"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
)

// Mid-run round-trip: checkpoint after a few rounds, restore into a fresh
// server, and verify the restored state is exactly the saved state and that
// training can continue from it without corruption.
func TestCheckpointMidRunRoundtrip(t *testing.T) {
	srv := fixtureServer(t, FedAvg{}, 2)
	for round := 0; round < 5; round++ {
		srv.RunRound(round)
	}
	var buf bytes.Buffer
	if err := srv.SaveCheckpoint(&buf, 5); err != nil {
		t.Fatal(err)
	}
	saved := srv.Global.Clone()

	restored := fixtureServer(t, FedAvg{}, 2)
	round, err := restored.LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if round != 5 {
		t.Fatalf("restored round %d, want 5", round)
	}
	for i := range saved.Params {
		if !restored.Global.Params[i].AllClose(saved.Params[i], 0) {
			t.Fatalf("param %d differs from the mid-run snapshot", i)
		}
	}
	// The restored server must be able to keep training (streaming path).
	stats := restored.RunRound(round)
	if math.IsNaN(stats.MeanLoss) || stats.MeanLoss <= 0 {
		t.Fatalf("continuation round after restore produced loss %v", stats.MeanLoss)
	}
}

// A header shorter than 8 bytes must be rejected without touching state.
func TestCheckpointTruncatedHeader(t *testing.T) {
	srv := fixtureServer(t, FedAvg{}, 1)
	before := srv.Global.Clone()
	for _, n := range []int{0, 1, 7} {
		if _, err := srv.LoadCheckpoint(bytes.NewReader(make([]byte, n))); err == nil {
			t.Fatalf("%d-byte header accepted", n)
		}
	}
	for i := range before.Params {
		if !srv.Global.Params[i].AllClose(before.Params[i], 0) {
			t.Fatal("failed restore mutated the global weights")
		}
	}
}

// A checkpoint cut off mid-weights must be rejected.
func TestCheckpointTruncatedWeights(t *testing.T) {
	srv := fixtureServer(t, FedAvg{}, 1)
	var buf bytes.Buffer
	if err := srv.SaveCheckpoint(&buf, 3); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{9, len(full) / 2, len(full) - 1} {
		if _, err := srv.LoadCheckpoint(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("checkpoint truncated at %d/%d bytes accepted", cut, len(full))
		}
	}
}

// Weights from a different architecture must be rejected and leave the
// server's weights untouched.
func TestCheckpointArchitectureMismatch(t *testing.T) {
	srv := fixtureServer(t, FedAvg{}, 1)
	before := srv.Global.Clone()

	// A real, valid checkpoint — just for the wrong model.
	other := nn.NewNetwork(nn.NewFlatten(), nn.NewDense(frand.New(1), 16, 5))
	var buf bytes.Buffer
	var hdr [8]byte
	buf.Write(hdr[:])
	if _, err := other.Snapshot().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.LoadCheckpoint(&buf); err == nil {
		t.Fatal("architecture-incompatible checkpoint accepted")
	}
	for i := range before.Params {
		if !srv.Global.Params[i].AllClose(before.Params[i], 0) {
			t.Fatal("rejected checkpoint still mutated the global weights")
		}
	}
}
