package nn

import (
	"math"

	"heteroswitch/internal/tensor"
)

// sigmoid64 is the one logistic implementation in this package: every
// sigmoid consumer — the Sigmoid layer, BCEWithLogits, and the fused
// inference epilogues — routes through it, so the numerics live in exactly
// one place.
func sigmoid64(z float64) float64 { return 1 / (1 + math.Exp(-z)) }

// sigmoid32 is sigmoid64 round-tripped through float32, the elementwise form
// used on tensor data.
func sigmoid32(v float32) float32 { return float32(sigmoid64(float64(v))) }

// ReLU is the rectified linear activation.
type ReLU struct {
	arenaScratch
	mask []bool
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward zeroes negative elements.
func (l *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := l.allocUninit(x.Shape()...)
	xd, yd := x.Data(), y.Data()
	if cap(l.mask) < len(xd) {
		l.mask = make([]bool, len(xd))
	}
	l.mask = l.mask[:len(xd)]
	for i, v := range xd {
		if v > 0 {
			l.mask[i] = true
			yd[i] = v
		} else {
			l.mask[i] = false
			yd[i] = 0
		}
	}
	return y
}

// Backward passes gradient only where the input was positive.
func (l *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := l.allocUninit(grad.Shape()...)
	gd, dd := grad.Data(), g.Data()
	for i, v := range gd {
		if l.mask[i] {
			dd[i] = v
		} else {
			dd[i] = 0
		}
	}
	return g
}

// Params implements Layer.
func (l *ReLU) Params() []*Param { return nil }

// States implements Layer.
func (l *ReLU) States() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *ReLU) Name() string { return "ReLU" }

// HardSigmoid computes clip((x+3)/6, 0, 1), MobileNetV3's cheap sigmoid.
type HardSigmoid struct {
	arenaScratch
	x *tensor.Tensor
}

// NewHardSigmoid returns a HardSigmoid layer.
func NewHardSigmoid() *HardSigmoid { return &HardSigmoid{} }

// Forward implements Layer.
func (l *HardSigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.x = x
	y := l.allocUninit(x.Shape()...)
	xd, yd := x.Data(), y.Data()
	for i, v := range xd {
		yd[i] = hardSigmoid(v)
	}
	return y
}

func hardSigmoid(v float32) float32 {
	s := (v + 3) / 6
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// Backward implements Layer: derivative is 1/6 inside (-3, 3), else 0.
func (l *HardSigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := l.allocUninit(grad.Shape()...)
	gd, dd, xd := grad.Data(), g.Data(), l.x.Data()
	for i := range gd {
		if xd[i] > -3 && xd[i] < 3 {
			dd[i] = gd[i] / 6
		} else {
			dd[i] = 0
		}
	}
	return g
}

// Params implements Layer.
func (l *HardSigmoid) Params() []*Param { return nil }

// States implements Layer.
func (l *HardSigmoid) States() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *HardSigmoid) Name() string { return "HardSigmoid" }

// HardSwish computes x * hardSigmoid(x), the MobileNetV3 activation.
type HardSwish struct {
	arenaScratch
	x *tensor.Tensor
}

// NewHardSwish returns a HardSwish layer.
func NewHardSwish() *HardSwish { return &HardSwish{} }

// Forward implements Layer.
func (l *HardSwish) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.x = x
	y := l.allocUninit(x.Shape()...)
	xd, yd := x.Data(), y.Data()
	for i, v := range xd {
		yd[i] = v * hardSigmoid(v)
	}
	return y
}

// Backward implements Layer. d/dx [x·hs(x)] = hs(x) + x·hs'(x).
func (l *HardSwish) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := l.allocUninit(grad.Shape()...)
	gd, dd, xd := grad.Data(), g.Data(), l.x.Data()
	for i := range gd {
		v := xd[i]
		der := hardSigmoid(v)
		if v > -3 && v < 3 {
			der += v / 6
		}
		dd[i] = gd[i] * der
	}
	return g
}

// Params implements Layer.
func (l *HardSwish) Params() []*Param { return nil }

// States implements Layer.
func (l *HardSwish) States() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *HardSwish) Name() string { return "HardSwish" }

// Sigmoid is the logistic activation.
type Sigmoid struct {
	arenaScratch
	y *tensor.Tensor
}

// NewSigmoid returns a Sigmoid layer.
func NewSigmoid() *Sigmoid { return &Sigmoid{} }

// Forward implements Layer.
func (l *Sigmoid) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := l.allocUninit(x.Shape()...)
	xd, yd := x.Data(), y.Data()
	for i, v := range xd {
		yd[i] = sigmoid32(v)
	}
	l.y = y
	return y
}

// Backward implements Layer: dx = dy · y(1-y).
func (l *Sigmoid) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := l.allocUninit(grad.Shape()...)
	gd, dd, yd := grad.Data(), g.Data(), l.y.Data()
	for i := range gd {
		dd[i] = gd[i] * yd[i] * (1 - yd[i])
	}
	return g
}

// Params implements Layer.
func (l *Sigmoid) Params() []*Param { return nil }

// States implements Layer.
func (l *Sigmoid) States() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *Sigmoid) Name() string { return "Sigmoid" }
