package fl

import (
	"bytes"
	"testing"

	"heteroswitch/internal/nn"
)

func TestClientDropoutReducesParticipation(t *testing.T) {
	srv := fixtureServer(t, FedAvg{}, 1)
	srv.Cfg.ClientDropout = 0.5
	var sampled, dropped int
	srv.Run(func(s RoundStats) {
		sampled += len(s.Sampled)
		dropped += len(s.Dropped)
	})
	if dropped == 0 {
		t.Fatal("50% dropout never dropped a client")
	}
	if sampled == 0 {
		t.Fatal("50% dropout killed every round")
	}
	// Dropped + sampled should equal K per round in expectation; exactly per
	// round by construction.
	if sampled+dropped != srv.Cfg.Rounds*srv.Cfg.ClientsPerRound {
		t.Fatalf("accounting mismatch: %d+%d != %d", sampled, dropped, srv.Cfg.Rounds*srv.Cfg.ClientsPerRound)
	}
}

func TestDropoutZeroPreservesLegacyStreams(t *testing.T) {
	// ClientDropout=0 must not consume RNG draws: results identical to a
	// server built before the feature existed (regression lock via the
	// deterministic fixture).
	a := fixtureServer(t, FedAvg{}, 1)
	b := fixtureServer(t, FedAvg{}, 1)
	b.Cfg.ClientDropout = 0
	a.Run(nil)
	b.Run(nil)
	for i := range a.Global.Params {
		if !a.Global.Params[i].AllClose(b.Global.Params[i], 0) {
			t.Fatal("dropout=0 changed results")
		}
	}
}

func TestConfigRejectsBadDropout(t *testing.T) {
	cfg := Default()
	cfg.ClientDropout = 1.0
	if err := cfg.Validate(); err == nil {
		t.Fatal("dropout=1 must be rejected")
	}
	cfg.ClientDropout = -0.1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative dropout must be rejected")
	}
}

func TestCommunicationAccounting(t *testing.T) {
	srv := fixtureServer(t, FedAvg{}, 1)
	wb := weightBytes(srv.Global)
	if wb <= 0 {
		t.Fatal("weight bytes must be positive")
	}
	stats := srv.RunRound(0)
	wantDown := wb * int64(srv.Cfg.ClientsPerRound)
	if stats.BytesDown != wantDown || stats.BytesUp != wantDown {
		t.Fatalf("bytes down/up = %d/%d, want %d", stats.BytesDown, stats.BytesUp, wantDown)
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	srv := fixtureServer(t, FedAvg{}, 1)
	srv.Run(nil)
	var buf bytes.Buffer
	if err := srv.SaveCheckpoint(&buf, 17); err != nil {
		t.Fatal(err)
	}
	// Fresh server, restore.
	srv2 := fixtureServer(t, FedAvg{}, 1)
	round, err := srv2.LoadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if round != 17 {
		t.Fatalf("restored round %d", round)
	}
	for i := range srv.Global.Params {
		if !srv.Global.Params[i].AllClose(srv2.Global.Params[i], 0) {
			t.Fatal("checkpoint weights differ after restore")
		}
	}
}

func TestCheckpointRejectsWrongArchitecture(t *testing.T) {
	srv := fixtureServer(t, FedAvg{}, 1)
	var buf bytes.Buffer
	// Write a checkpoint with a different architecture's weights.
	other := nn.NewNetwork(nn.NewFlatten())
	_ = other
	bogus := nn.Weights{}
	var hdr [8]byte
	buf.Write(hdr[:])
	if _, err := bogus.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.LoadCheckpoint(&buf); err == nil {
		t.Fatal("incompatible checkpoint accepted")
	}
}

func TestCheckpointTruncated(t *testing.T) {
	srv := fixtureServer(t, FedAvg{}, 1)
	if _, err := srv.LoadCheckpoint(bytes.NewReader([]byte{1, 2})); err == nil {
		t.Fatal("truncated checkpoint accepted")
	}
}
