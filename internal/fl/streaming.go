package fl

import (
	"sync"

	"heteroswitch/internal/nn"
)

// StreamingAggregator is an optional Strategy capability: strategies whose
// aggregation rule folds one client result at a time (FedAvg and friends)
// implement it so the server can stream aggregation instead of materializing
// all K client weight snapshots behind a round barrier. Each worker goroutine
// folds its clients into a private shard Accumulator; shards are merged
// tree-style at round end. Peak weight memory is then O(workers), not O(K).
//
// Strategies that genuinely need every result at once (q-FedAvg's normalized
// step) simply don't implement this interface and keep the legacy
// Strategy.Aggregate path.
type StreamingAggregator interface {
	// NewAccumulator returns a fresh shard accumulator for one round. It is
	// called once per worker; the returned accumulator is used from that
	// worker's goroutine only, until Merge/Finalize on the main goroutine.
	NewAccumulator(global nn.Weights, cfg Config) Accumulator
}

// Accumulator folds client results into running aggregation state.
type Accumulator interface {
	// Accumulate folds one client's result into the shard. The result's
	// weight buffers may be reused by the caller immediately afterwards, so
	// implementations must not retain them.
	Accumulate(result ClientResult)
	// Merge absorbs another accumulator produced by the same
	// StreamingAggregator for the same round.
	Merge(other Accumulator)
	// Finalize returns the round's new global weights. Called once, on the
	// root accumulator after all shards are merged. With no accumulated
	// results it returns the unchanged global weights.
	Finalize() nn.Weights
}

// IntoFinalizer is an optional Accumulator capability: accumulators that can
// write the round's new global weights into a caller-provided buffer
// implement it so the server can double-buffer the outgoing global instead
// of allocating a model-sized nn.Weights every round. dst must be shaped
// like the round's global weights; every element is overwritten on success.
// FinalizeInto returns false — leaving dst untouched — when nothing was
// accumulated (the round lost every client), in which case the caller keeps
// the old global, exactly as Finalize would have returned it.
type IntoFinalizer interface {
	FinalizeInto(dst nn.Weights) bool
}

// WeightedAccumulator is an optional Accumulator capability: accumulators
// that can fold a client result with an extra multiplicative weight implement
// it so the asynchronous server can discount stale results. scale multiplies
// the result's native fold weight (its sample count, for the FedAvg family);
// AccumulateWeighted(r, 1) must be exactly Accumulate(r), bit for bit — that
// identity is what keeps the zero-staleness async path equivalent to the
// synchronous one. A scale of 0 contributes nothing to the aggregate.
type WeightedAccumulator interface {
	Accumulator
	AccumulateWeighted(result ClientResult, scale float64)
}

// ResettableAccumulator is an optional Accumulator capability: accumulators
// whose state can be rewound implement it so the server reuses one
// accumulator per worker for its whole lifetime instead of allocating
// model-sized float64 sum buffers every round. Reset must leave the
// accumulator exactly as NewAccumulator(global, cfg) would have.
type ResettableAccumulator interface {
	Accumulator
	Reset(global nn.Weights, cfg Config)
}

// fedAvgAccumulator streams the sample-count-weighted average. Sums are kept
// in float64 and rounded to float32 exactly once, in Finalize, so the
// shard-merge order (which depends on the worker count) perturbs the result
// by at most double-precision rounding — in practice below float32
// resolution. Combined with the server's static client→worker assignment,
// runs with a fixed config are bit-reproducible, matching what the barrier
// path guaranteed by aggregating in client order on one goroutine.
type fedAvgAccumulator struct {
	global nn.Weights
	params [][]float64 // Σ n_k · w_k per param tensor
	states [][]float64 // Σ n_k · s_k per state tensor
	total  float64     // Σ n_k
}

// NewAccumulator implements StreamingAggregator for FedAvg.
func (FedAvg) NewAccumulator(global nn.Weights, cfg Config) Accumulator {
	a := &fedAvgAccumulator{
		global: global,
		params: make([][]float64, len(global.Params)),
		states: make([][]float64, len(global.States)),
	}
	for i, p := range global.Params {
		a.params[i] = make([]float64, p.Size())
	}
	for i, s := range global.States {
		a.states[i] = make([]float64, s.Size())
	}
	return a
}

// NewAccumulator implements StreamingAggregator: FedProx aggregates exactly
// like FedAvg (the proximal term only changes the local objective).
func (p *FedProx) NewAccumulator(global nn.Weights, cfg Config) Accumulator {
	return FedAvg{}.NewAccumulator(global, cfg)
}

// Accumulate implements Accumulator.
func (a *fedAvgAccumulator) Accumulate(r ClientResult) {
	a.AccumulateWeighted(r, 1)
}

// AccumulateWeighted implements WeightedAccumulator: the fold weight is
// scale·n_k, so the async server's staleness discount composes with FedAvg's
// sample weighting. scale = 1 is byte-for-byte the synchronous fold.
func (a *fedAvgAccumulator) AccumulateWeighted(r ClientResult, scale float64) {
	// Fail as loudly as the barrier path's weightedAverage would: a short
	// result would otherwise grow total without touching the sums, silently
	// shrinking the aggregate toward zero.
	if len(r.Weights.Params) != len(a.params) || len(r.Weights.States) != len(a.states) {
		panic("fl: streamed result weight count incompatible with accumulator")
	}
	// A zero scale contributes nothing: skip the model-sized fold entirely,
	// also keeping 0·±Inf/0·NaN from a diverged (and deliberately zeroed-out)
	// result off the sums.
	if scale == 0 {
		return
	}
	n := scale * float64(r.NumSamples)
	for i, p := range r.Weights.Params {
		dst, src := a.params[i], p.Data()
		if len(src) != len(dst) {
			panic("fl: streamed result param size incompatible with accumulator")
		}
		for j, v := range src {
			dst[j] += n * float64(v)
		}
	}
	for i, s := range r.Weights.States {
		dst, src := a.states[i], s.Data()
		if len(src) != len(dst) {
			panic("fl: streamed result state size incompatible with accumulator")
		}
		for j, v := range src {
			dst[j] += n * float64(v)
		}
	}
	a.total += n
}

// Reset implements ResettableAccumulator: the float64 sum buffers are kept
// and zeroed, so one accumulator per worker serves every round.
func (a *fedAvgAccumulator) Reset(global nn.Weights, cfg Config) {
	a.global = global
	a.total = 0
	for _, sum := range a.params {
		clear(sum)
	}
	for _, sum := range a.states {
		clear(sum)
	}
}

// Merge implements Accumulator.
func (a *fedAvgAccumulator) Merge(other Accumulator) {
	b := other.(*fedAvgAccumulator)
	for i, src := range b.params {
		dst := a.params[i]
		for j, v := range src {
			dst[j] += v
		}
	}
	for i, src := range b.states {
		dst := a.states[i]
		for j, v := range src {
			dst[j] += v
		}
	}
	a.total += b.total
}

// Finalize implements Accumulator.
func (a *fedAvgAccumulator) Finalize() nn.Weights {
	if a.total == 0 {
		return a.global
	}
	out := a.global.Zero()
	a.FinalizeInto(out)
	return out
}

// FinalizeInto implements IntoFinalizer: the sample-weighted average is
// rounded from the float64 sums straight into dst's float32 tensors, the
// same single rounding Finalize performs, so the recycled and allocating
// paths are bit-identical.
func (a *fedAvgAccumulator) FinalizeInto(dst nn.Weights) bool {
	if a.total == 0 {
		return false
	}
	if len(dst.Params) != len(a.params) || len(dst.States) != len(a.states) {
		panic("fl: FinalizeInto buffer incompatible with accumulator")
	}
	inv := 1.0 / a.total
	for i, sum := range a.params {
		d := dst.Params[i].Data()
		if len(d) != len(sum) {
			panic("fl: FinalizeInto param size incompatible with accumulator")
		}
		for j, v := range sum {
			d[j] = float32(v * inv)
		}
	}
	for i, sum := range a.states {
		d := dst.States[i].Data()
		if len(d) != len(sum) {
			panic("fl: FinalizeInto state size incompatible with accumulator")
		}
		for j, v := range sum {
			d[j] = float32(v * inv)
		}
	}
	return true
}

// interface conformance checks
var (
	_ WeightedAccumulator   = (*fedAvgAccumulator)(nil)
	_ ResettableAccumulator = (*fedAvgAccumulator)(nil)
	_ IntoFinalizer         = (*fedAvgAccumulator)(nil)
)

// mergeShards folds accs[1:] into accs[0] tree-style (pairwise, doubling
// stride) and returns the root, ready to finalize. Tree order keeps the
// merge O(log W) deep; the accumulators' float64 sums make the order
// numerically immaterial.
func mergeShards(accs []Accumulator) Accumulator {
	for stride := 1; stride < len(accs); stride *= 2 {
		for i := 0; i+stride < len(accs); i += 2 * stride {
			accs[i].Merge(accs[i+stride])
		}
	}
	return accs[0]
}

// weightsPool recycles weight-snapshot buffers across rounds so the
// streaming path's per-worker scratch costs one allocation per worker for
// the server's lifetime, not one per client per round.
type weightsPool struct {
	mu   sync.Mutex
	free []nn.Weights
}

// get returns a pooled buffer shaped like the reference weights, allocating
// only when the pool is empty.
func (p *weightsPool) get(like nn.Weights) nn.Weights {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		w := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return w
	}
	p.mu.Unlock()
	return like.Clone()
}

// put returns a buffer to the pool.
func (p *weightsPool) put(w nn.Weights) {
	p.mu.Lock()
	p.free = append(p.free, w)
	p.mu.Unlock()
}
