package isp

import (
	"math"
	"testing"
	"testing/quick"

	"heteroswitch/internal/frand"
)

// testScene builds a deterministic textured color image.
func testScene(w, h int, seed uint64) *Image {
	r := frand.New(seed)
	im := NewImage(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x)/float64(w), float64(y)/float64(h)
			im.Set(x, y, 0, clamp01(0.5+0.4*math.Sin(7*fx)+0.05*r.NormFloat64()))
			im.Set(x, y, 1, clamp01(0.4+0.4*fy+0.05*r.NormFloat64()))
			im.Set(x, y, 2, clamp01(0.3+0.3*math.Cos(5*fy)+0.05*r.NormFloat64()))
		}
	}
	return im
}

func constantImage(w, h int, r, g, b float64) *Image {
	im := NewImage(w, h)
	for i := 0; i < w*h; i++ {
		im.Pix[i*3] = r
		im.Pix[i*3+1] = g
		im.Pix[i*3+2] = b
	}
	return im
}

func TestCFAPatterns(t *testing.T) {
	// RGGB: (0,0)=R (1,0)=G (0,1)=G (1,1)=B
	cases := []struct {
		p    BayerPattern
		want [4]int // (0,0) (1,0) (0,1) (1,1)
	}{
		{RGGB, [4]int{0, 1, 1, 2}},
		{BGGR, [4]int{2, 1, 1, 0}},
		{GRBG, [4]int{1, 0, 2, 1}},
		{GBRG, [4]int{1, 2, 0, 1}},
	}
	for _, c := range cases {
		got := [4]int{cfaColor(c.p, 0, 0), cfaColor(c.p, 1, 0), cfaColor(c.p, 0, 1), cfaColor(c.p, 1, 1)}
		if got != c.want {
			t.Errorf("%v tile = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestMosaicSamplesCorrectChannel(t *testing.T) {
	im := constantImage(4, 4, 0.9, 0.5, 0.1)
	raw := Mosaic(im, RGGB)
	if raw.At(0, 0) != 0.9 || raw.At(1, 0) != 0.5 || raw.At(1, 1) != 0.1 {
		t.Fatalf("mosaic misrouted channels: %v %v %v", raw.At(0, 0), raw.At(1, 0), raw.At(1, 1))
	}
}

func TestDemosaicConstantRecovery(t *testing.T) {
	im := constantImage(16, 16, 0.7, 0.4, 0.2)
	raw := Mosaic(im, RGGB)
	for _, alg := range []DemosaicAlg{DemosaicPPG, DemosaicBinning, DemosaicAHD} {
		got := Demosaic(raw, alg)
		if mse := got.MSE(im); mse > 1e-4 {
			t.Errorf("%v on constant image MSE = %v", alg, mse)
		}
	}
}

func TestDemosaicSmoothAccuracy(t *testing.T) {
	// Smooth gradient: all demosaicers should reconstruct with low error.
	im := NewImage(32, 32)
	for y := 0; y < 32; y++ {
		for x := 0; x < 32; x++ {
			im.Set(x, y, 0, float64(x)/64+0.2)
			im.Set(x, y, 1, float64(y)/64+0.3)
			im.Set(x, y, 2, float64(x+y)/128+0.1)
		}
	}
	raw := Mosaic(im, RGGB)
	for _, alg := range []DemosaicAlg{DemosaicPPG, DemosaicAHD} {
		if mse := Demosaic(raw, alg).MSE(im); mse > 5e-4 {
			t.Errorf("%v smooth MSE = %v", alg, mse)
		}
	}
}

func TestBinningSofterThanPPG(t *testing.T) {
	im := testScene(32, 32, 5)
	raw := Mosaic(im, RGGB)
	ppg := Demosaic(raw, DemosaicPPG).MSE(im)
	bin := Demosaic(raw, DemosaicBinning).MSE(im)
	if bin <= ppg {
		t.Errorf("binning (%v) should lose more detail than PPG (%v)", bin, ppg)
	}
}

func TestDenoiseNoneIdentity(t *testing.T) {
	im := testScene(16, 16, 7)
	got := Denoise(im, DenoiseNone)
	if got.MSE(im) != 0 {
		t.Fatal("DenoiseNone altered the image")
	}
}

func TestFBDDRemovesImpulses(t *testing.T) {
	clean := constantImage(16, 16, 0.5, 0.5, 0.5)
	noisy := clean.Clone()
	r := frand.New(11)
	for k := 0; k < 20; k++ {
		i := r.Intn(16 * 16)
		noisy.Pix[i*3+r.Intn(3)] = 1.0
	}
	den := Denoise(noisy, DenoiseFBDD)
	if den.MSE(clean) >= noisy.MSE(clean)/2 {
		t.Errorf("FBDD barely reduced impulse noise: %v -> %v", noisy.MSE(clean), den.MSE(clean))
	}
}

func TestWaveletReducesGaussianNoise(t *testing.T) {
	clean := constantImage(32, 32, 0.5, 0.5, 0.5)
	noisy := clean.Clone()
	r := frand.New(13)
	for i := range noisy.Pix {
		noisy.Pix[i] = clamp01(noisy.Pix[i] + 0.08*r.NormFloat64())
	}
	den := Denoise(noisy, DenoiseWavelet)
	if den.MSE(clean) >= noisy.MSE(clean) {
		t.Errorf("wavelet denoise increased MSE: %v -> %v", noisy.MSE(clean), den.MSE(clean))
	}
}

func TestGrayWorldNeutralizesCast(t *testing.T) {
	im := testScene(32, 32, 17)
	cast := ApplyWBGains(im, 1.4, 1.0, 0.6) // warm cast
	bal := WhiteBalance(cast, WBGrayWorld)
	m := bal.ChannelMeans()
	if math.Abs(m[0]-m[1]) > 0.02 || math.Abs(m[1]-m[2]) > 0.02 {
		t.Errorf("gray-world left unequal means: %v", m)
	}
}

func TestWhitePatchBrightensHighlights(t *testing.T) {
	im := testScene(32, 32, 19)
	cast := ApplyWBGains(im, 0.8, 1.0, 0.7)
	bal := WhiteBalance(cast, WBWhitePatch)
	// The highlight percentiles should be aligned across channels afterwards.
	mb := bal.ChannelMeans()
	mc := cast.ChannelMeans()
	if mb[0] <= mc[0] || mb[2] <= mc[2] {
		t.Errorf("white-patch failed to lift suppressed channels: %v -> %v", mc, mb)
	}
}

func TestWBNoneIdentity(t *testing.T) {
	im := testScene(8, 8, 23)
	if WhiteBalance(im, WBNone).MSE(im) != 0 {
		t.Fatal("WBNone altered the image")
	}
}

func TestGamutSRGBIdentity(t *testing.T) {
	im := testScene(8, 8, 29)
	if GamutMap(im, GamutSRGB).MSE(im) != 0 {
		t.Fatal("sRGB gamut mapping should be identity for sRGB data")
	}
}

func TestGamutProPhotoChangesColors(t *testing.T) {
	im := constantImage(4, 4, 0.8, 0.2, 0.2) // saturated red
	got := GamutMap(im, GamutProPhoto)
	if got.MSE(im) < 1e-4 {
		t.Fatal("ProPhoto mapping should change saturated colors")
	}
	// Saturated colors move more than near-neutral ones.
	gray := constantImage(4, 4, 0.5, 0.5, 0.5)
	gotGray := GamutMap(gray, GamutProPhoto)
	if gotGray.MSE(gray) >= got.MSE(im) {
		t.Errorf("neutral shifted (%v) more than saturated (%v)", gotGray.MSE(gray), got.MSE(im))
	}
}

func TestSRGBEncodeDecodeInverse(t *testing.T) {
	f := func(raw uint16) bool {
		v := float64(raw) / 65535
		return math.Abs(SRGBDecode(SRGBEncode(v))-v) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSRGBEncodeMonotonicBrightens(t *testing.T) {
	prev := -1.0
	for v := 0.0; v <= 1.0; v += 0.01 {
		e := SRGBEncode(v)
		if e < prev {
			t.Fatalf("sRGB encode not monotonic at %v", v)
		}
		prev = e
		if v > 0.01 && v < 0.99 && e <= v {
			t.Fatalf("sRGB encode should brighten midtones: f(%v)=%v", v, e)
		}
	}
}

func TestToneNoneIdentity(t *testing.T) {
	im := testScene(8, 8, 31)
	if ToneTransform(im, ToneNone).MSE(im) != 0 {
		t.Fatal("ToneNone altered the image")
	}
}

func TestToneEqualizeIncreasesContrast(t *testing.T) {
	// Low-contrast image around mid gray.
	r := frand.New(37)
	im := NewImage(32, 32)
	for i := 0; i < 32*32; i++ {
		v := 0.45 + 0.1*r.Float64()
		for c := 0; c < 3; c++ {
			im.Pix[i*3+c] = v
		}
	}
	plain := ToneTransform(im, ToneSRGBGamma)
	eq := ToneTransform(im, ToneSRGBGammaEq)
	if lumaStd(eq) <= lumaStd(plain) {
		t.Errorf("equalization did not increase contrast: %v vs %v", lumaStd(eq), lumaStd(plain))
	}
}

func lumaStd(im *Image) float64 {
	n := im.W * im.H
	var sum, sumsq float64
	for i := 0; i < n; i++ {
		l := im.Luma(i)
		sum += l
		sumsq += l * l
	}
	mean := sum / float64(n)
	return math.Sqrt(sumsq/float64(n) - mean*mean)
}

func TestApplyGammaRoundtrip(t *testing.T) {
	im := testScene(8, 8, 41)
	im.Clamp()
	round := ApplyGamma(ApplyGamma(im, 2.0), 0.5)
	if round.MSE(im) > 1e-9 {
		t.Fatalf("gamma 2 then 0.5 should invert, MSE=%v", round.MSE(im))
	}
}

func TestJPEGQualityOrdering(t *testing.T) {
	im := testScene(32, 32, 43)
	im.Clamp()
	q85, err := Compress(im, CompressJPEG85)
	if err != nil {
		t.Fatal(err)
	}
	q50, err := Compress(im, CompressJPEG50)
	if err != nil {
		t.Fatal(err)
	}
	if q85.MSE(im) >= q50.MSE(im) {
		t.Errorf("Q85 MSE %v should beat Q50 MSE %v", q85.MSE(im), q50.MSE(im))
	}
	none, err := Compress(im, CompressNone)
	if err != nil {
		t.Fatal(err)
	}
	if none.MSE(im) != 0 {
		t.Fatal("CompressNone altered the image")
	}
}

func TestPipelineOptionTable3(t *testing.T) {
	base := Baseline()
	p, err := base.Option(StageWB, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.WB != WBNone {
		t.Fatalf("WB option 1 = %v, want none", p.WB)
	}
	if p.Demosaic != base.Demosaic || p.Tone != base.Tone {
		t.Fatal("Option modified unrelated stages")
	}
	p, err = base.Option(StageTone, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tone != ToneSRGBGammaEq {
		t.Fatalf("Tone option 2 = %v", p.Tone)
	}
	if _, err := base.Option(StageCompress, 3); err == nil {
		t.Fatal("expected error for option 3")
	}
	if _, err := base.Option(Stage(99), 1); err == nil {
		t.Fatal("expected error for unknown stage")
	}
}

func TestPipelineProcessEndToEnd(t *testing.T) {
	im := testScene(32, 32, 47)
	raw := Mosaic(im, RGGB)
	out, err := Baseline().Process(raw)
	if err != nil {
		t.Fatal(err)
	}
	if out.W != 32 || out.H != 32 {
		t.Fatalf("pipeline changed geometry: %dx%d", out.W, out.H)
	}
	for _, v := range out.Pix {
		if v < 0 || v > 1 {
			t.Fatalf("pipeline output out of range: %v", v)
		}
	}
	// The processed image must still correlate with the scene.
	if out.MSE(im) > 0.2 {
		t.Errorf("pipeline output implausibly far from scene: MSE %v", out.MSE(im))
	}
}

func TestProcessRAWOnlySkipsISP(t *testing.T) {
	im := testScene(16, 16, 53)
	raw := Mosaic(im, RGGB)
	rawIm := ProcessRAWOnly(raw)
	full, err := Baseline().Process(raw)
	if err != nil {
		t.Fatal(err)
	}
	if rawIm.MSE(full) < 1e-5 {
		t.Fatal("RAW-only output should differ from full ISP output")
	}
}

func TestResizeIdentityAndConstant(t *testing.T) {
	im := testScene(16, 16, 59)
	same := im.Resize(16, 16)
	if same.MSE(im) != 0 {
		t.Fatal("same-size resize not identity")
	}
	c := constantImage(16, 16, 0.3, 0.6, 0.9)
	down := c.Resize(8, 8)
	for i := 0; i < 8*8; i++ {
		if math.Abs(down.Pix[i*3]-0.3) > 1e-9 {
			t.Fatal("resize of constant image not constant")
		}
	}
}

func TestToTensorFromTensorRoundtrip(t *testing.T) {
	im := testScene(8, 8, 61)
	tt := im.ToTensor()
	if tt.Dim(0) != 3 || tt.Dim(1) != 8 || tt.Dim(2) != 8 {
		t.Fatalf("tensor shape %v", tt.Shape())
	}
	back, err := FromTensor(tt)
	if err != nil {
		t.Fatal(err)
	}
	if back.MSE(im) > 1e-12 {
		t.Fatal("ToTensor/FromTensor roundtrip lossy beyond float32")
	}
}

func TestPipelineDifferencesProduceHeterogeneity(t *testing.T) {
	// The core premise: the same RAW through different ISP configs yields
	// measurably different images.
	im := testScene(32, 32, 67)
	raw := Mosaic(im, RGGB)
	base, err := Baseline().Process(raw)
	if err != nil {
		t.Fatal(err)
	}
	for stage := StageDemosaic; stage < NumStages; stage++ {
		for opt := 1; opt <= 2; opt++ {
			p, err := Baseline().Option(stage, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, err := p.Process(raw)
			if err != nil {
				t.Fatal(err)
			}
			if got.MSE(base) == 0 && !(stage == StageGamut && opt == 1) {
				t.Errorf("stage %v option %d produced identical output", stage, opt)
			}
		}
	}
}

func BenchmarkBaselinePipeline32(b *testing.B) {
	im := testScene(32, 32, 71)
	raw := Mosaic(im, RGGB)
	p := Baseline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Process(raw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDemosaicPPG64(b *testing.B) {
	im := testScene(64, 64, 73)
	raw := Mosaic(im, RGGB)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Demosaic(raw, DemosaicPPG)
	}
}
