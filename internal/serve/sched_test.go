package serve

import (
	"strings"
	"testing"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
)

// Nearest-rank order statistics: p-q is the smallest value with at least
// ⌈q·n⌉ observations at or below it. The old floor(q·(n-1)) indexing read a
// systematically low statistic (p99 of 500 read index 494 ≈ p98.8).
func TestQuantilesNearestRank(t *testing.T) {
	cases := []struct {
		n                 int
		wantP50, p95, p99 float64
	}{
		{n: 100, wantP50: 50, p95: 95, p99: 99},
		{n: 500, wantP50: 250, p95: 475, p99: 495},
		{n: 10, wantP50: 5, p95: 10, p99: 10},
		{n: 1, wantP50: 1, p95: 1, p99: 1},
	}
	for _, tc := range cases {
		// Feed the values in a scrambled order to prove quantiles sorts.
		lat := make([]float64, tc.n)
		for i := range lat {
			lat[i] = float64((i*7)%tc.n + 1)
		}
		var r Report
		r.quantiles(lat)
		if r.P50 != tc.wantP50 || r.P95 != tc.p95 || r.P99 != tc.p99 {
			t.Errorf("n=%d: p50/p95/p99 = %g/%g/%g, want %g/%g/%g",
				tc.n, r.P50, r.P95, r.P99, tc.wantP50, tc.p95, tc.p99)
		}
	}
}

// A failing Replica.Ensure at service start must roll back everything the
// batch holds — the busy slot, the borrowed replica, the version pin, the
// batch struct — and surface the error cleanly. The failure is provoked end
// to end: a wired publish installs weights of an incompatible architecture,
// so the next flushed batch pins a version no replica can load.
func TestEnsureErrorPathReleasesEverything(t *testing.T) {
	cfg := Config{MaxBatch: 1, Workers: 1, IntraOp: 1}
	s := testServer(t, cfg)
	lc := LoadConfig{
		Requests:    8,
		Concurrency: 1,
		Arrival:     ClosedLoop{Think: 0.5, Seed: 3},
		Service:     AffineService{Base: 1},
		Inputs:      testInputs(4),
	}
	if err := s.BeginTrainLoad(lc); err != nil {
		t.Fatal(err)
	}
	for s.ld.served < 2 {
		if !s.step() {
			t.Fatal("load drained before the bad publish")
		}
	}
	bad := nn.NewNetwork(nn.NewDense(frand.New(3), 4, 2)).Snapshot()
	if err := s.PublishAt(s.ld.clock.Now(), bad); err != nil {
		t.Fatalf("publishing mis-shaped weights should only fail at Ensure, got %v", err)
	}
	if _, err := s.FinishTrainLoad(); err == nil {
		t.Fatal("Ensure failure never surfaced from FinishTrainLoad")
	}
	if s.ld.err == nil {
		t.Fatal("load state lost the error")
	}
	if s.ld.busy != 0 {
		t.Fatalf("busy=%d after Ensure failure; the worker slot leaked", s.ld.busy)
	}
	if free := s.pool.Free(); free != cfg.Workers {
		t.Fatalf("pool has %d free replicas, want %d; the replica leaked", free, cfg.Workers)
	}
	if live := s.store.Live(); live != 1 {
		t.Fatalf("store has %d live versions, want 1 (the current); the version pin leaked", live)
	}
	if fc := s.store.vs.FreeCount(); fc < 1 {
		t.Fatalf("store free list has %d buffers; the retired version never recycled", fc)
	}
}

// scriptedArrival is an open-loop process with fixed inter-arrival gaps
// (the last gap repeats), for tests that need exact arrival instants.
type scriptedArrival struct{ gaps []float64 }

func (a scriptedArrival) Delay(_, step int) float64 {
	if step < len(a.gaps) {
		return a.gaps[step]
	}
	return a.gaps[len(a.gaps)-1]
}
func (a scriptedArrival) Closed() bool { return false }

// A batch whose every request blew the deadline is shed whole at service
// start: its version pin is released, the batch struct recycles, the worker
// is never marked busy, and the drain loop keeps pulling — the next queued
// batch starts in the same drain.
func TestFullyShedBatchNeverReachesWorker(t *testing.T) {
	cfg := Config{MaxBatch: 1, Workers: 1, IntraOp: 1, Admission: AdmissionConfig{Deadline: 1}}
	s := testServer(t, cfg)
	// Arrivals at t = 0, 0.5, 2.5, 12.5, 22.5; service is a flat 3 units.
	// req0 serves immediately (done t=3); req1 queues and ages 2.5 > 1 by
	// then — fully shed; req2 queues but has only aged 0.5 — it must start
	// in the very same drain pass.
	lc := LoadConfig{
		Requests: 5,
		Arrival:  scriptedArrival{gaps: []float64{0, 0.5, 2, 10}},
		Service:  AffineService{Base: 3},
		Inputs:   testInputs(4),
	}
	if err := s.beginLoad(lc); err != nil {
		t.Fatal(err)
	}
	for s.ld.shedD == 0 {
		if !s.step() {
			t.Fatal("load drained without a deadline shed")
		}
	}
	// The instant after the shed: the drain pulled past the fully-shed batch
	// and started the next queued one on the freed worker.
	if s.ld.busy != 1 || s.pool.Free() != 0 {
		t.Fatalf("after fully-shed batch: busy=%d poolFree=%d, want the NEXT batch in service (1, 0)",
			s.ld.busy, s.pool.Free())
	}
	if s.ld.served != 1 || s.ld.shedD != 1 {
		t.Fatalf("served=%d shedD=%d at the shed instant, want 1, 1", s.ld.served, s.ld.shedD)
	}
	for s.step() {
	}
	if s.ld.err != nil {
		t.Fatal(s.ld.err)
	}
	r := s.ld.report()
	if r.Served != 4 || r.ShedDeadline != 1 || r.Requests != 5 {
		t.Fatalf("served=%d shedDeadline=%d requests=%d, want 4, 1, 5", r.Served, r.ShedDeadline, r.Requests)
	}
	if r.Batches != 4 {
		t.Fatalf("Batches=%d counts the fully-shed batch, want 4 served batches only", r.Batches)
	}
	if s.ld.busy != 0 || s.pool.Free() != 1 || s.store.Live() != 1 {
		t.Fatalf("quiesced state leaked: busy=%d poolFree=%d live=%d", s.ld.busy, s.pool.Free(), s.store.Live())
	}
	// Every batch struct returned to the free stack (prealloc = Requests here).
	if got := len(s.ld.freeBatches); got != 5 {
		t.Fatalf("%d batch structs on the free stack, want 5; a batch leaked", got)
	}
}

func TestParseFlush(t *testing.T) {
	for spec, want := range map[string]FlushPolicy{"": FlushFIFO, "fifo": FlushFIFO, "edf": FlushEDF, "EDF": FlushEDF, "deadline": FlushEDF} {
		got, err := ParseFlush(spec)
		if err != nil || got != want {
			t.Errorf("ParseFlush(%q) = %v, %v; want %v", spec, got, err, want)
		}
	}
	if _, err := ParseFlush("lifo"); err == nil {
		t.Error("ParseFlush accepted an unknown policy")
	}
}

// Without version churn there is no queue-jumping flush, so EDF order equals
// FIFO order and the two policies must be bit-identical.
func TestFlushEDFMatchesFIFOWithoutChurn(t *testing.T) {
	lc := overloadLoad()
	a := AdmissionConfig{Depth: 12, Deadline: 8}
	fifo := mustLoad(t, overloadConfig(a), lc)
	edfCfg := overloadConfig(a)
	edfCfg.Flush = FlushEDF
	edf := mustLoad(t, edfCfg, lc)
	requireSameReport(t, fifo, edf, "edf vs fifo without churn")
}

// Under overload with publish churn, FIFO's publish-triggered flush jumps the
// forming batch (the newest arrivals) straight onto the freed worker while
// older queued batches age toward the deadline. EDF starts the earliest-
// deadline batch first, so at the same offered load it sheds strictly fewer
// deadline-expired requests and serves at least the same throughput.
func TestFlushEDFShedsFewerUnderChurn(t *testing.T) {
	// Open-loop overload (rate 1.3 vs capacity ~1.14 at full batches) so the
	// forming batch is non-empty at most completions — every publish then
	// exercises the flush-ordering decision.
	lc := LoadConfig{
		Requests:     600,
		Arrival:      OpenLoop{Rate: 1.3, Seed: 9},
		Service:      AffineService{Base: 1, PerItem: 0.5},
		Inputs:       testInputs(16),
		PublishEvery: 1,
	}
	fifoCfg := Config{
		MaxBatch: 4, BatchBudget: 0.5, Workers: 1, IntraOp: 2,
		Admission: AdmissionConfig{Depth: 14, Deadline: 9},
	}
	edfCfg := fifoCfg
	edfCfg.Flush = FlushEDF

	fifo := mustLoad(t, fifoCfg, lc)
	edf := mustLoad(t, edfCfg, lc)
	if fifo.Requests != edf.Requests {
		t.Fatalf("unequal offered load: %d vs %d requests", fifo.Requests, edf.Requests)
	}
	if edf.ShedDeadline >= fifo.ShedDeadline {
		t.Fatalf("EDF shed %d deadline-expired requests, FIFO %d; want strictly fewer",
			edf.ShedDeadline, fifo.ShedDeadline)
	}
	if edf.Served < fifo.Served || edf.Throughput < fifo.Throughput {
		t.Fatalf("EDF served=%d tput=%g below FIFO served=%d tput=%g",
			edf.Served, edf.Throughput, fifo.Served, fifo.Throughput)
	}
	t.Logf("shed_deadline: fifo=%d edf=%d; served: fifo=%d edf=%d",
		fifo.ShedDeadline, edf.ShedDeadline, fifo.Served, edf.Served)

	// The EDF schedule is as deterministic as FIFO's: bit-identical across
	// runs and intra-op budgets.
	requireSameReport(t, edf, mustLoad(t, edfCfg, lc), "edf replay")
	edfWide := edfCfg
	edfWide.IntraOp = 5
	requireSameReport(t, edf, mustLoad(t, edfWide, lc), "edf intra-op invariance")
	if !strings.Contains(edf.String(), "shed_deadline") {
		t.Fatal("report lost the admission line")
	}
}
