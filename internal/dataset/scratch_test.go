package dataset

import (
	"testing"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/tensor"
)

// TestBatchScratchMatchesBatch verifies Next fills exactly what the
// allocating Batch/BatchMulti would, for both label kinds, and that Alloc
// tensors never alias the batch buffers within one batch.
func TestBatchScratchMatchesBatch(t *testing.T) {
	r := frand.New(3)
	single := &Dataset{NumClasses: 3}
	multi := &Dataset{NumClasses: 3}
	for i := 0; i < 7; i++ {
		single.Samples = append(single.Samples, Sample{X: tensor.Randn(r, 1, 2, 4, 4), Label: i % 3})
		mv := make([]float32, 3)
		mv[i%3] = 1
		multi.Samples = append(multi.Samples, Sample{X: tensor.Randn(r, 1, 2, 4, 4), Label: -1, Multi: mv})
	}

	bs := GetBatchScratch()
	defer PutBatchScratch(bs)

	for lo := 0; lo < single.Len(); lo += 3 {
		hi := min(lo+3, single.Len())
		x, y, labels := bs.Next(single, lo, hi)
		if y != nil {
			t.Fatal("single-label batch returned dense targets")
		}
		wantX, wantL := single.Batch(lo, hi)
		if !x.AllClose(wantX, 0) {
			t.Fatalf("batch [%d,%d) input differs from Batch", lo, hi)
		}
		for i := range labels {
			if labels[i] != wantL[i] {
				t.Fatalf("label %d: %d != %d", i, labels[i], wantL[i])
			}
		}
		extra := bs.Alloc(x.Shape()...)
		if &extra.Data()[0] == &x.Data()[0] {
			t.Fatal("Alloc aliased the live batch input")
		}
	}

	x, y, labels := bs.Next(multi, 1, 5)
	if labels != nil {
		t.Fatal("multi-label batch returned labels")
	}
	wantX, wantY := multi.BatchMulti(1, 5)
	if !x.AllClose(wantX, 0) || !y.AllClose(wantY, 0) {
		t.Fatal("multi-label batch differs from BatchMulti")
	}
}

// TestBatchScratchZeroAllocSteadyState verifies a warmed scratch batches
// without heap allocation — the property the eval harnesses rely on for
// large sweeps.
func TestBatchScratchZeroAllocSteadyState(t *testing.T) {
	r := frand.New(5)
	ds := &Dataset{NumClasses: 2}
	for i := 0; i < 16; i++ {
		ds.Samples = append(ds.Samples, Sample{X: tensor.Randn(r, 1, 2, 4, 4), Label: i % 2})
	}
	bs := GetBatchScratch()
	defer PutBatchScratch(bs)
	bs.Next(ds, 0, 8) // warm the arena and label slice
	allocs := testing.AllocsPerRun(20, func() {
		for lo := 0; lo < ds.Len(); lo += 8 {
			bs.Next(ds, lo, lo+8)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm BatchScratch allocates %.1f/op, want 0", allocs)
	}
}

// TestForBatchesCoversDataset checks the shared eval iterator visits every
// window exactly once (including the partial tail) with Next's buffers.
func TestForBatchesCoversDataset(t *testing.T) {
	r := frand.New(9)
	ds := &Dataset{NumClasses: 4}
	for i := 0; i < 11; i++ {
		ds.Samples = append(ds.Samples, Sample{X: tensor.Randn(r, 1, 2, 3, 3), Label: i % 4})
	}
	bs := GetBatchScratch()
	defer PutBatchScratch(bs)
	var bounds [][2]int
	seen := 0
	bs.ForBatches(ds, 4, func(lo, hi int, x, y *tensor.Tensor, labels []int) {
		bounds = append(bounds, [2]int{lo, hi})
		if y != nil {
			t.Fatal("single-label data must not produce dense targets")
		}
		if x.Dim(0) != hi-lo || len(labels) != hi-lo {
			t.Fatalf("window [%d,%d): batch %d, labels %d", lo, hi, x.Dim(0), len(labels))
		}
		for i, l := range labels {
			if l != (lo+i)%4 {
				t.Fatalf("window [%d,%d): label %d = %d, want %d", lo, hi, i, l, (lo+i)%4)
			}
		}
		seen += hi - lo
	})
	want := [][2]int{{0, 4}, {4, 8}, {8, 11}}
	if len(bounds) != len(want) {
		t.Fatalf("windows %v, want %v", bounds, want)
	}
	for i := range want {
		if bounds[i] != want[i] {
			t.Fatalf("window %d = %v, want %v", i, bounds[i], want[i])
		}
	}
	if seen != ds.Len() {
		t.Fatalf("covered %d samples, want %d", seen, ds.Len())
	}
}
