package serve

import (
	"fmt"
	"math"

	"heteroswitch/internal/nn"
	"heteroswitch/internal/simclock"
	"heteroswitch/internal/tensor"
)

// LoadConfig describes one deterministic load run.
type LoadConfig struct {
	// Requests is the total number of requests to serve.
	Requests int
	// Concurrency is the closed-loop client population (each keeps one
	// request outstanding). Ignored by open-loop arrival models.
	Concurrency int
	// Arrival generates the request process. nil means ClosedLoop{} —
	// zero-think clients, the saturation regime.
	Arrival ArrivalModel
	// Service prices a batch's virtual execution time. nil means
	// AffineService{Base: 1, PerItem: 0.25}.
	Service ServiceModel
	// Seed seeds the request-content stream and any nil models.
	Seed uint64
	// PublishEvery republishes the model (same values, new version) every N
	// completed batches, exercising version-cache churn: replica reloads and
	// refcount handoff with zero effect on outputs. 0 disables.
	PublishEvery int
	// Inputs is the request content bank: request i sends Inputs[i % len].
	// All tensors must share one shape (a single sample, no batch dim).
	Inputs []*tensor.Tensor
}

// withDefaults resolves nil models and zero fields.
func (lc LoadConfig) withDefaults() LoadConfig {
	if lc.Arrival == nil {
		lc.Arrival = ClosedLoop{Seed: lc.Seed}
	}
	if lc.Service == nil {
		lc.Service = AffineService{Base: 1, PerItem: 0.25}
	}
	if lc.Concurrency == 0 {
		lc.Concurrency = 1
	}
	return lc
}

// Event kinds of the load simulation.
const (
	evArrival  = iota // a request enters the micro-batcher
	evDeadline        // a forming batch's latency budget expires
	evDone            // a worker finishes a batch's virtual service time
	evPublish         // a trained global version lands in the store (wired runs)
)

// simEvent is one scheduled occurrence, keyed by its simclock event ID.
type simEvent struct {
	kind int
	req  int        // evArrival: request id
	gen  int        // evDeadline: forming-batch generation at schedule time
	b    *batch     // evDone: the serviced batch
	w    nn.Weights // evPublish: the trained weights to publish
}

// batch is one flushed micro-batch: request ids pinned to the model version
// current at flush, plus the replica executing it. dl is the batch's service
// deadline — its oldest request's arrival plus the admission deadline — and
// fseq the flush sequence number; together they key the EDF queue (fseq is
// the deterministic tie-break and reproduces FIFO order when deadlines tie).
type batch struct {
	ids     []int
	version int
	w       nn.Weights
	rep     *nn.Replica
	dl      float64
	fseq    int
}

// loadState is the single-goroutine virtual-time simulation behind RunLoad,
// structured as beginLoad + step so white-box tests can assert the warm
// steady-state step is allocation-free.
type loadState struct {
	lc  LoadConfig
	srv *Server
	err error

	clock  simclock.Clock
	seq    int
	events map[int]simEvent

	// Request bookkeeping, preallocated for all lc.Requests.
	nextReq    int
	arrTime    []float64
	lat        []float64
	outs       []float32
	outDim     int
	sampleSize int
	done       int
	reqClient  []int32
	clientStep []int

	// The forming batch; formGen invalidates stale deadline events.
	forming []int
	formGen int

	// Batch execution: a free stack of recycled batch structs, the flushed
	// batches waiting for a worker — a FIFO ring (queue/qhead) under
	// FlushFIFO, a (deadline, fseq) min-heap (bheap) under FlushEDF — and
	// the busy-worker count.
	freeBatches []*batch
	queue       []*batch
	qhead       int
	bheap       []*batch
	busy        int
	batchSeq    int
	flushSeq    int
	batchesDone int
	sizeSum     int

	// Admission accounting. pending counts requests admitted but not yet at
	// a worker (forming batch plus flushed queue); served counts requests
	// that actually completed service (lat[:served] holds their latencies in
	// completion order — quantiles sort, so the multiset is what matters).
	pending  int
	maxQueue int
	served   int
	shedQ    int
	shedD    int
	reissues int

	// staging[n-1] is the [n, sample...] input tensor batches of size n are
	// assembled into before the frozen forward.
	staging []*tensor.Tensor

	hist Histogram

	// Wired train-while-serve bookkeeping. wired runs (BeginTrainLoad …
	// FinishTrainLoad) receive trained versions through evPublish events and
	// record, per served request, how many versions the store had accepted
	// beyond the one that served it, measured at completion. curVersion
	// mirrors the store's latest version so the hot loop never takes the
	// store mutex; staleMin is -1 until the first served request.
	wired      bool
	curVersion int
	staleMin   int
	staleMax   int
	staleSum   int64
	staleHist  StalenessHist
}

// RunLoad executes one deterministic load run to completion and returns its
// report. Same LoadConfig (and server Config) ⇒ bit-identical report,
// including per-request outputs, at every intra-op budget.
func (s *Server) RunLoad(lc LoadConfig) (Report, error) {
	if err := s.beginLoad(lc); err != nil {
		return Report{}, err
	}
	for s.step() {
	}
	if s.ld.err != nil {
		return Report{}, s.ld.err
	}
	return s.ld.report(), nil
}

// beginLoad validates the config, preallocates every steady-state buffer,
// warms the replicas (arena, frozen fold, im2col scratch), and schedules the
// initial arrivals.
func (s *Server) beginLoad(lc LoadConfig) error {
	lc = lc.withDefaults()
	if lc.Requests < 1 {
		return fmt.Errorf("serve: load needs at least 1 request, have %d", lc.Requests)
	}
	if len(lc.Inputs) == 0 {
		return fmt.Errorf("serve: load needs a non-empty input bank")
	}
	ld := &s.ld
	*ld = loadState{lc: lc, srv: s}
	ld.events = make(map[int]simEvent)
	ld.sampleSize = lc.Inputs[0].Size()
	for _, x := range lc.Inputs {
		if x.Size() != ld.sampleSize {
			return fmt.Errorf("serve: input bank shapes differ")
		}
	}

	// Staging tensors for every batch size, plus a warmup forward per size on
	// EVERY replica, so each worker's arena, frozen fold, and im2col scratch
	// hold every shape before time starts — the steady-state event loop then
	// allocates nothing.
	sample := lc.Inputs[0].Shape()
	ld.staging = make([]*tensor.Tensor, s.cfg.MaxBatch)
	shape := append([]int{0}, sample...)
	for n := 1; n <= s.cfg.MaxBatch; n++ {
		shape[0] = n
		ld.staging[n-1] = tensor.New(shape...)
		for r := 0; r < n; r++ {
			copy(ld.staging[n-1].Data()[r*ld.sampleSize:], lc.Inputs[r%len(lc.Inputs)].Data())
		}
	}
	v, w := s.store.Acquire()
	reps := make([]*nn.Replica, s.pool.Size())
	for i := range reps {
		reps[i] = s.pool.Get()
		if err := reps[i].Ensure(v, w); err != nil {
			for _, r := range reps[:i+1] {
				s.pool.Put(r)
			}
			s.store.Release(v)
			return err
		}
		for n := 1; n <= s.cfg.MaxBatch; n++ {
			out := reps[i].Infer(ld.staging[n-1])
			ld.outDim = out.Size() / n
		}
	}
	for _, r := range reps {
		s.pool.Put(r)
	}
	s.store.Release(v)

	ld.arrTime = make([]float64, lc.Requests)
	ld.lat = make([]float64, lc.Requests)
	ld.outs = make([]float32, lc.Requests*ld.outDim)
	ld.forming = make([]int, 0, s.cfg.MaxBatch)
	prealloc := s.cfg.Workers + lc.Concurrency + 4
	if prealloc > lc.Requests {
		prealloc = lc.Requests
	}
	for i := 0; i < prealloc; i++ {
		ld.freeBatches = append(ld.freeBatches, &batch{ids: make([]int, 0, s.cfg.MaxBatch)})
	}

	if lc.Arrival.Closed() {
		clients := lc.Concurrency
		if clients > lc.Requests {
			clients = lc.Requests
		}
		ld.reqClient = make([]int32, lc.Requests)
		ld.clientStep = make([]int, clients)
		for c := 0; c < clients; c++ {
			id := ld.nextReq
			ld.nextReq++
			ld.reqClient[id] = int32(c)
			ld.schedule(lc.Arrival.Delay(c, 0), simEvent{kind: evArrival, req: id})
			ld.clientStep[c] = 1
		}
	} else {
		ld.nextReq = 1
		ld.schedule(lc.Arrival.Delay(0, 0), simEvent{kind: evArrival, req: 0})
	}
	return nil
}

// schedule enqueues ev after delay; the monotonic seq doubles as the
// deterministic tie-break at equal virtual instants.
func (ld *loadState) schedule(delay float64, ev simEvent) {
	ld.scheduleAt(ld.clock.Now()+delay, ev)
}

// scheduleAt enqueues ev at an absolute virtual instant (used by PublishAt,
// whose timestamps come from the trainer's clock and must not pick up
// float rounding from a now+delay round trip).
func (ld *loadState) scheduleAt(at float64, ev simEvent) {
	id := ld.seq
	ld.seq++
	ld.events[id] = ev
	ld.clock.Schedule(at, id)
}

// step pops and handles one event. It returns false once every request has
// completed (or on an execution error); leftover stale deadlines are
// discarded with the clock.
func (s *Server) step() bool {
	ld := &s.ld
	if ld.done >= ld.lc.Requests || ld.err != nil {
		return false
	}
	ev, ok := ld.clock.Next()
	if !ok {
		ld.err = fmt.Errorf("serve: event queue drained with %d/%d requests done", ld.done, ld.lc.Requests)
		return false
	}
	e := ld.events[ev.ID]
	delete(ld.events, ev.ID)
	switch e.kind {
	case evArrival:
		ld.onArrival(e.req)
	case evDeadline:
		if e.gen == ld.formGen && len(ld.forming) > 0 {
			ld.flush()
		}
	case evDone:
		ld.onDone(e.b)
	case evPublish:
		ld.applyPublish(e.w)
	}
	return ld.done < ld.lc.Requests && ld.err == nil
}

// applyPublish installs a trained global version: the forming batch (if any)
// flushes first, pinned to the pre-publish version — exactly the ordering the
// PublishEvery churn path uses — and then the store advances.
func (ld *loadState) applyPublish(w nn.Weights) {
	if len(ld.forming) > 0 {
		ld.flush()
	}
	ld.curVersion = ld.srv.store.Publish(w)
}

// onArrival admits one request to the forming batch, flushing at MaxBatch
// and arming the budget deadline when the batch opens. Under a bounded
// admission depth, an arrival finding the pending set full is shed on the
// spot — the closed loop reissues, the open loop keeps chaining either way.
func (ld *loadState) onArrival(req int) {
	ld.arrTime[req] = ld.clock.Now()
	if !ld.lc.Arrival.Closed() && ld.nextReq <= ld.lc.Requests-1 {
		// Chain the open-loop process: arrival i schedules arrival i+1.
		id := ld.nextReq
		ld.nextReq++
		ld.schedule(ld.lc.Arrival.Delay(0, id), simEvent{kind: evArrival, req: id})
	}
	if d := ld.srv.cfg.Admission.Depth; d > 0 && ld.pending >= d {
		ld.shed(req, true)
		return
	}
	ld.pending++
	if ld.pending > ld.maxQueue {
		ld.maxQueue = ld.pending
	}
	if len(ld.forming) == 0 && ld.srv.cfg.MaxBatch > 1 {
		// Arm the budget deadline when the batch opens. A zero budget still
		// coalesces: the deadline lands at this same virtual instant but after
		// every already-scheduled event here (larger event ID), so simultaneous
		// arrivals join the batch first.
		ld.schedule(ld.srv.cfg.BatchBudget, simEvent{kind: evDeadline, gen: ld.formGen})
	}
	ld.forming = append(ld.forming, req)
	if len(ld.forming) >= ld.srv.cfg.MaxBatch {
		ld.flush()
	}
}

// flush pins the forming batch to the current model version and hands it
// off. FlushFIFO gives it straight to an idle worker (or appends it to the
// FIFO queue when all are busy); FlushEDF always routes through the deadline
// heap and drains, so a flush that happens while older batches are queued —
// the publish-churn path — cannot jump them.
func (ld *loadState) flush() {
	b := ld.getBatch()
	b.ids = append(b.ids[:0], ld.forming...)
	b.version, b.w = ld.srv.store.Acquire()
	b.dl = ld.arrTime[b.ids[0]] + ld.srv.cfg.Admission.Deadline
	b.fseq = ld.flushSeq
	ld.flushSeq++
	ld.forming = ld.forming[:0]
	ld.formGen++
	if ld.srv.cfg.Flush == FlushEDF {
		ld.heapPush(b)
		ld.drain()
	} else if ld.busy < ld.srv.cfg.Workers {
		ld.startService(b)
	} else {
		ld.queue = append(ld.queue, b)
	}
}

// drain pulls queued batches onto free workers until either runs out,
// honoring the configured flush policy. A fully-deadline-shed batch never
// occupies a worker, so the loop keeps pulling past it; an execution error
// stops the drain (startService has already rolled the failed batch back).
func (ld *loadState) drain() {
	for ld.err == nil && ld.busy < ld.srv.cfg.Workers {
		var nb *batch
		if ld.srv.cfg.Flush == FlushEDF {
			if len(ld.bheap) == 0 {
				return
			}
			nb = ld.heapPop()
		} else {
			if ld.qhead >= len(ld.queue) {
				return
			}
			nb = ld.queue[ld.qhead]
			ld.queue[ld.qhead] = nil
			ld.qhead++
			if ld.qhead == len(ld.queue) {
				ld.queue = ld.queue[:0]
				ld.qhead = 0
			}
		}
		ld.startService(nb)
	}
}

// heapPush / heapPop maintain the EDF queue: a binary min-heap of flushed
// batches ordered by (deadline, flush sequence). Hand-rolled on the pooled
// *batch slice so the steady-state path stays allocation-free.
func (ld *loadState) heapPush(b *batch) {
	ld.bheap = append(ld.bheap, b)
	i := len(ld.bheap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !batchLess(ld.bheap[i], ld.bheap[parent]) {
			break
		}
		ld.bheap[i], ld.bheap[parent] = ld.bheap[parent], ld.bheap[i]
		i = parent
	}
}

func (ld *loadState) heapPop() *batch {
	n := len(ld.bheap)
	root := ld.bheap[0]
	ld.bheap[0] = ld.bheap[n-1]
	ld.bheap[n-1] = nil
	ld.bheap = ld.bheap[:n-1]
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && batchLess(ld.bheap[l], ld.bheap[smallest]) {
			smallest = l
		}
		if r < n && batchLess(ld.bheap[r], ld.bheap[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		ld.bheap[i], ld.bheap[smallest] = ld.bheap[smallest], ld.bheap[i]
		i = smallest
	}
	return root
}

// batchLess is the EDF order: earlier deadline first, earlier flush on ties.
func batchLess(a, b *batch) bool {
	return a.dl < b.dl || (a.dl == b.dl && a.fseq < b.fseq)
}

// shed rejects one request without serving it: its output slot stays zero,
// no latency is recorded, and — like a completion — a closed-loop client
// whose request was shed immediately issues its next one (counted as a
// reissue). atAdmission distinguishes depth-bound sheds from deadline sheds.
func (ld *loadState) shed(req int, atAdmission bool) {
	if atAdmission {
		ld.shedQ++
	} else {
		ld.shedD++
	}
	ld.done++
	if ld.feed(req) {
		ld.reissues++
	}
}

// feed schedules the closed-loop successor of a finished (served or shed)
// request, reporting whether one was issued.
func (ld *loadState) feed(id int) bool {
	if !ld.lc.Arrival.Closed() || ld.nextReq >= ld.lc.Requests {
		return false
	}
	c := int(ld.reqClient[id])
	nid := ld.nextReq
	ld.nextReq++
	ld.reqClient[nid] = int32(c)
	ld.schedule(ld.lc.Arrival.Delay(c, ld.clientStep[c]), simEvent{kind: evArrival, req: nid})
	ld.clientStep[c]++
	return true
}

// startService executes the batch NOW (the compute is real: assemble inputs,
// ensure the replica serves the pinned version, run the frozen forward, copy
// outputs out by request id) and schedules its completion at now + the
// service model's virtual duration. Under a deadline policy, requests whose
// queueing wait already blew the deadline are shed here — at the last
// instant before they would burn service capacity; a fully-shed batch
// releases its version pin and never reaches a worker.
func (ld *loadState) startService(b *batch) {
	ld.pending -= len(b.ids)
	if dl := ld.srv.cfg.Admission.Deadline; dl > 0 {
		now := ld.clock.Now()
		kept := b.ids[:0]
		for _, id := range b.ids {
			if now-ld.arrTime[id] > dl {
				ld.shed(id, false)
			} else {
				kept = append(kept, id)
			}
		}
		b.ids = kept
		if len(b.ids) == 0 {
			ld.srv.store.Release(b.version)
			b.w = nn.Weights{}
			ld.putBatch(b)
			return
		}
	}
	ld.busy++
	rep := ld.srv.pool.Get()
	b.rep = rep
	if err := rep.Ensure(b.version, b.w); err != nil {
		// Roll back everything the batch holds before surfacing the error:
		// the worker slot, the borrowed replica, the version pin, and the
		// batch struct itself. Without this the run leaked a replica and a
		// pinned version per failed Ensure and kept reporting a busy worker.
		ld.busy--
		b.rep = nil
		ld.srv.pool.Put(rep)
		ld.srv.store.Release(b.version)
		b.w = nn.Weights{}
		ld.putBatch(b)
		ld.err = err
		return
	}
	n := len(b.ids)
	x := ld.staging[n-1]
	for r, id := range b.ids {
		copy(x.Data()[r*ld.sampleSize:(r+1)*ld.sampleSize], ld.lc.Inputs[id%len(ld.lc.Inputs)].Data())
	}
	out := rep.Infer(x).Data()
	for r, id := range b.ids {
		copy(ld.outs[id*ld.outDim:(id+1)*ld.outDim], out[r*ld.outDim:(r+1)*ld.outDim])
	}
	seq := ld.batchSeq
	ld.batchSeq++
	ld.schedule(ld.lc.Service.Batch(n, seq), simEvent{kind: evDone, b: b})
}

// onDone retires a completed batch: record latencies, feed the closed loop,
// release the version pin and the replica, then pull queued work onto the
// freed worker. Version churn (PublishEvery) fires here, after the forming
// batch is flushed under its admission version.
func (ld *loadState) onDone(b *batch) {
	now := ld.clock.Now()
	ld.busy--
	stale := ld.curVersion - b.version
	for _, id := range b.ids {
		d := now - ld.arrTime[id]
		ld.lat[ld.served] = d
		ld.served++
		ld.hist.Add(d)
		ld.done++
		ld.feed(id)
	}
	if ld.wired && len(b.ids) > 0 {
		ld.recordStaleness(stale, len(b.ids))
	}
	ld.srv.store.Release(b.version)
	ld.srv.pool.Put(b.rep)
	b.rep = nil
	b.w = nn.Weights{}
	ld.batchesDone++
	ld.sizeSum += len(b.ids)
	ld.putBatch(b)

	if pe := ld.lc.PublishEvery; pe > 0 && ld.batchesDone%pe == 0 {
		if len(ld.forming) > 0 {
			ld.flush() // the forming batch belongs to the pre-publish version
		}
		ld.curVersion = ld.srv.store.Republish()
	}
	ld.drain()
}

// recordStaleness folds one batch's served-version staleness (versions the
// store accepted beyond the batch's pinned version, measured at completion)
// into the wired-run summary, once per served request.
func (ld *loadState) recordStaleness(stale, n int) {
	if ld.staleMin < 0 || stale < ld.staleMin {
		ld.staleMin = stale
	}
	if stale > ld.staleMax {
		ld.staleMax = stale
	}
	ld.staleSum += int64(stale) * int64(n)
	ld.staleHist.add(stale, int64(n))
}

// getBatch pops the batch free stack (growing it only when the preallocated
// set is exhausted — open-loop overload).
func (ld *loadState) getBatch() *batch {
	if n := len(ld.freeBatches); n > 0 {
		b := ld.freeBatches[n-1]
		ld.freeBatches[n-1] = nil
		ld.freeBatches = ld.freeBatches[:n-1]
		return b
	}
	return &batch{ids: make([]int, 0, ld.srv.cfg.MaxBatch)}
}

// putBatch returns a batch struct to the free stack.
func (ld *loadState) putBatch(b *batch) { ld.freeBatches = append(ld.freeBatches, b) }

// report summarizes the completed run.
func (ld *loadState) report() Report {
	r := Report{
		Requests:     ld.done,
		Served:       ld.served,
		ShedQueue:    ld.shedQ,
		ShedDeadline: ld.shedD,
		Reissues:     ld.reissues,
		MaxQueue:     ld.maxQueue,
		Batches:      ld.batchesDone,
		VirtualTime:  ld.clock.Now(),
		Hist:         ld.hist,
	}
	if ld.batchesDone > 0 {
		r.MeanBatch = float64(ld.sizeSum) / float64(ld.batchesDone)
	}
	if r.VirtualTime > 0 {
		r.Throughput = float64(ld.served) / r.VirtualTime
	}
	r.quantiles(ld.lat[:ld.served])
	r.OutputDigest = digest(ld.outs)
	if ld.srv.cfg.Admission.Enabled() {
		// Fold the admission counters into the digest so a run that shed a
		// different request set cannot collide with one that didn't. Shed
		// requests already perturb the base digest (their output slots stay
		// zero), but the counters make the witness explicit. Admission-off
		// digests are untouched — the pre-admission bit-identity contract.
		for _, c := range [...]int{ld.served, ld.shedQ, ld.shedD, ld.reissues, ld.maxQueue} {
			r.OutputDigest = foldU64(r.OutputDigest, uint64(c))
		}
	}
	if ld.wired {
		// Wired runs carry the staleness summary; fold it into the digest so
		// a run that served a different version mix cannot collide. Unwired
		// reports are untouched — byte-identical to the pre-wiring harness.
		r.StaleTracked = true
		if ld.staleMin > 0 {
			r.StaleMin = ld.staleMin
		}
		r.StaleMax = ld.staleMax
		if ld.served > 0 {
			r.StaleMean = float64(ld.staleSum) / float64(ld.served)
		}
		r.StaleHist = ld.staleHist
		r.OutputDigest = foldU64(r.OutputDigest, uint64(r.StaleMin))
		r.OutputDigest = foldU64(r.OutputDigest, uint64(r.StaleMax))
		for _, c := range r.StaleHist {
			r.OutputDigest = foldU64(r.OutputDigest, uint64(c))
		}
	}
	return r
}

// BeginTrainLoad starts a wired train-while-serve run: the same deterministic
// load simulation as RunLoad, but paused between trained-version publishes
// instead of free-running. The caller interleaves training and serving on one
// virtual clock by calling PublishAt at every training publish instant and
// FinishTrainLoad once training ends:
//
//	err := srv.BeginTrainLoad(lc)
//	… for each finalized global, at trainer virtual time t:
//	buf := srv.Store().TakeBuffer(); copy the global into buf
//	err = srv.PublishAt(t, buf)
//	… after the last window:
//	report, err := srv.FinishTrainLoad()
//
// Wired runs track served-version staleness (Report.StaleTracked); the
// synthetic PublishEvery churn knob is rejected — version churn comes from
// the trainer.
func (s *Server) BeginTrainLoad(lc LoadConfig) error {
	if lc.PublishEvery != 0 {
		return fmt.Errorf("serve: PublishEvery is the unwired churn knob; wired runs publish from the trainer")
	}
	if err := s.beginLoad(lc); err != nil {
		return err
	}
	s.ld.wired = true
	s.ld.curVersion = s.store.Version()
	s.ld.staleMin = -1
	return nil
}

// PublishAt schedules trained weights w to land in the serving store at
// virtual instant t and advances the serving simulation through every event
// at or before t. Ordering is fixed and deterministic: serving events already
// scheduled at exactly t fire before the publish (the publish event carries a
// larger tie-break ID), the forming batch then flushes pinned to the
// pre-publish version, and the store advances. t must not precede an instant
// the serving clock has already passed. The store takes ownership of w —
// publish a Store().TakeBuffer() copy, never a buffer the trainer will
// recycle.
func (s *Server) PublishAt(t float64, w nn.Weights) error {
	ld := &s.ld
	if !ld.wired {
		return fmt.Errorf("serve: PublishAt outside a BeginTrainLoad run")
	}
	if ld.err != nil {
		return ld.err
	}
	if t < ld.clock.Now() {
		return fmt.Errorf("serve: publish at %g is in the serving past (now %g)", t, ld.clock.Now())
	}
	if ld.done >= ld.lc.Requests {
		// The load has drained; nothing left to interleave with, but the
		// version stream stays complete for anyone reading the store.
		ld.applyPublish(w)
		return nil
	}
	ld.scheduleAt(t, simEvent{kind: evPublish, w: w})
	return s.advanceTo(t)
}

// advanceTo processes every pending event at or before t. Once the load has
// drained mid-advance, remaining publishes still apply (the trainer keeps
// publishing) while stale deadlines are discarded.
func (s *Server) advanceTo(t float64) error {
	ld := &s.ld
	for ld.err == nil {
		ev, ok := ld.clock.Peek()
		if !ok || ev.At > t {
			break
		}
		if ld.done < ld.lc.Requests {
			s.step()
			continue
		}
		ev, _ = ld.clock.Next()
		e := ld.events[ev.ID]
		delete(ld.events, ev.ID)
		if e.kind == evPublish {
			ld.applyPublish(e.w)
		}
	}
	return ld.err
}

// FinishTrainLoad runs the wired load to completion (requests arriving after
// the last publish are served by the final trained version) and returns the
// report, with Report.StaleTracked staleness summary included.
func (s *Server) FinishTrainLoad() (Report, error) {
	if !s.ld.wired {
		return Report{}, fmt.Errorf("serve: FinishTrainLoad outside a BeginTrainLoad run")
	}
	for s.step() {
	}
	if s.ld.err != nil {
		return Report{}, s.ld.err
	}
	return s.ld.report(), nil
}

// foldU64 mixes eight little-endian bytes of v into an FNV-1a digest.
func foldU64(h, v uint64) uint64 {
	for s := 0; s < 64; s += 8 {
		h ^= (v >> s) & 0xff
		h *= 1099511628211
	}
	return h
}

// digest is FNV-1a over the float32 bit patterns in request order — the
// cheap bit-identity witness for "same outputs".
func digest(vals []float32) uint64 {
	h := uint64(14695981039346656037)
	for _, v := range vals {
		bits := math.Float32bits(v)
		for s := 0; s < 32; s += 8 {
			h ^= uint64(bits>>s) & 0xff
			h *= 1099511628211
		}
	}
	return h
}
