package nn_test

import (
	"math"
	"sync"
	"testing"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/tensor"
)

// The frozen inference fast path folds BatchNorm into the preceding matmul
// layer and fuses activations into kernel epilogues. Folding reorders float
// operations, so the contract is tolerance-based: frozen output within 1e-5
// max-abs of the reference eval forward and IDENTICAL argmax predictions on
// every fixture. At a fixed weight state the frozen forward itself must be
// bit-identical across intra-op budgets (chunks own disjoint rows and
// epilogues are row-local), which doubles as the serial-vs-parallel tol-0
// test for the parallel pooling, activation, and BN-eval sweeps.

const frozenTol = 1e-5

// frozenTolFor returns the max-abs bound the active kernel tier documents
// for a frozen forward against the reference output: the float tiers hold
// frozenTol; the opt-in int8 tier (forced via HETEROSWITCH_KERNEL_BACKEND)
// holds tensor.Int8Tol relative to the reference's unit-floored magnitude.
// Argmax must be identical under every tier — only the bound loosens.
func frozenTolFor(want []float32) float64 {
	if tensor.ActiveBackend() != tensor.BackendInt8 {
		return frozenTol
	}
	m := 1.0
	for _, v := range want {
		if a := math.Abs(float64(v)); a > m {
			m = a
		}
	}
	return tensor.Int8Tol * m
}

// frozenFixture is one block-coverage case: a network builder plus its
// input channel count.
type frozenFixture struct {
	name string
	inC  int
	net  func(r *frand.RNG) *nn.Network
}

func frozenFixtures() []frozenFixture {
	return []frozenFixture{
		{"conv-bn-relu-maxpool", 3, func(r *frand.RNG) *nn.Network {
			return nn.NewNetwork(
				nn.NewConv2D(r, 3, 8, 3, 1, 1, 1),
				nn.NewBatchNorm2D(8),
				nn.NewReLU(),
				nn.NewMaxPool2D(2, 2),
				nn.NewFlatten(),
				nn.NewDense(r, 8*4*4, 5),
			)
		}},
		{"conv-bn-hswish-strided", 3, func(r *frand.RNG) *nn.Network {
			return nn.NewNetwork(
				nn.NewConv2D(r, 3, 8, 3, 2, 1, 1),
				nn.NewBatchNorm2D(8),
				nn.NewHardSwish(),
				nn.NewFlatten(),
				nn.NewDense(r, 8*4*4, 5),
			)
		}},
		{"grouped-conv-bn", 4, func(r *frand.RNG) *nn.Network {
			return nn.NewNetwork(
				nn.NewConv2D(r, 4, 8, 3, 1, 1, 2),
				nn.NewBatchNorm2D(8),
				nn.NewReLU(),
				nn.NewGlobalAvgPool(),
				nn.NewDense(r, 8, 5),
			)
		}},
		{"depthwise-conv-bn", 6, func(r *frand.RNG) *nn.Network {
			return nn.NewNetwork(
				nn.NewDepthwiseConv2D(r, 6, 3, 1, 1),
				nn.NewBatchNorm2D(6),
				nn.NewHardSwish(),
				nn.NewGlobalAvgPool(),
				nn.NewDense(r, 6, 5),
			)
		}},
		{"dense-sigmoid-dropout", 3, func(r *frand.RNG) *nn.Network {
			return nn.NewNetwork(
				nn.NewFlatten(),
				nn.NewDense(r, 3*8*8, 16),
				nn.NewSigmoid(),
				nn.NewDropout(r.SplitNamed("drop"), 0.3),
				nn.NewDense(r, 16, 5),
			)
		}},
		{"residual-proj-standalone-bn", 3, func(r *frand.RNG) *nn.Network {
			body := nn.NewNetwork(
				nn.NewConv2D(r, 3, 8, 3, 1, 1, 1),
				nn.NewBatchNorm2D(8),
				nn.NewReLU(),
				nn.NewConv2D(r, 8, 8, 3, 1, 1, 1),
				nn.NewBatchNorm2D(8),
			)
			proj := nn.NewNetwork(
				nn.NewConv2D(r, 3, 8, 1, 1, 0, 1),
				nn.NewBatchNorm2D(8),
			)
			return nn.NewNetwork(
				nn.NewResidual(body, proj),
				nn.NewReLU(), // standalone activation (after a sum)
				nn.NewMaxPool2D(2, 2),
				nn.NewBatchNorm2D(8), // the residual BN eval path: no matmul precedes it
				nn.NewGlobalAvgPool(),
				nn.NewDense(r, 8, 5),
			)
		}},
		{"residual-conv-proj-folded", 3, func(r *frand.RNG) *nn.Network {
			// BN-free 1×1 projection: folds onto the skip path as a single
			// accumulating affine at Freeze time.
			body := nn.NewNetwork(
				nn.NewConv2D(r, 3, 8, 3, 1, 1, 1),
				nn.NewReLU(),
			)
			proj := nn.NewNetwork(nn.NewConv2D(r, 3, 8, 1, 1, 0, 1))
			return nn.NewNetwork(
				nn.NewResidual(body, proj),
				nn.NewGlobalAvgPool(),
				nn.NewDense(r, 8, 5),
			)
		}},
		{"residual-strided-proj", 3, func(r *frand.RNG) *nn.Network {
			// Stride-2 1×1 projection: NOT foldable, keeps the materialized
			// skip-path branch covered.
			body := nn.NewNetwork(
				nn.NewConv2D(r, 3, 8, 3, 2, 1, 1),
				nn.NewBatchNorm2D(8),
			)
			proj := nn.NewNetwork(
				nn.NewConv2D(r, 3, 8, 1, 2, 0, 1),
				nn.NewBatchNorm2D(8),
			)
			return nn.NewNetwork(
				nn.NewResidual(body, proj),
				nn.NewReLU(),
				nn.NewGlobalAvgPool(),
				nn.NewDense(r, 8, 5),
			)
		}},
		{"seblock", 3, func(r *frand.RNG) *nn.Network {
			return nn.NewNetwork(
				nn.NewConv2D(r, 3, 8, 3, 1, 1, 1),
				nn.NewBatchNorm2D(8),
				nn.NewHardSwish(),
				nn.NewSEBlock(r, 8, 4),
				nn.NewGlobalAvgPool(),
				nn.NewDense(r, 8, 5),
			)
		}},
		{"parallel-split-shuffle", 3, func(r *frand.RNG) *nn.Network {
			branch := nn.NewNetwork(
				nn.NewConv2D(r, 4, 4, 3, 1, 1, 1),
				nn.NewBatchNorm2D(4),
				nn.NewReLU(),
			)
			return nn.NewNetwork(
				nn.NewConv2D(r, 3, 8, 1, 1, 0, 1),
				nn.NewReLU(),
				nn.NewParallel(true, nn.NewIdentity(), branch),
				nn.NewChannelShuffle(2),
				nn.NewGlobalAvgPool(),
				nn.NewDense(r, 8, 5),
			)
		}},
		{"parallel-concat-hsig", 3, func(r *frand.RNG) *nn.Network {
			b1 := nn.NewNetwork(nn.NewConv2D(r, 3, 4, 1, 1, 0, 1), nn.NewReLU())
			b2 := nn.NewNetwork(nn.NewConv2D(r, 3, 4, 3, 1, 1, 1), nn.NewHardSigmoid())
			return nn.NewNetwork(
				nn.NewParallel(false, b1, b2),
				nn.NewAvgPool2D(2, 2),
				nn.NewFlatten(),
				nn.NewDense(r, 8*4*4, 5),
			)
		}},
		{"nested-networks", 3, func(r *frand.RNG) *nn.Network {
			return nn.NewNetwork(
				nn.NewNetwork(
					nn.NewConv2D(r, 3, 8, 3, 1, 1, 1),
					nn.NewBatchNorm2D(8),
					nn.NewHardSwish(),
				),
				nn.NewNetwork(
					nn.NewConv2D(r, 8, 8, 3, 2, 1, 1),
					nn.NewBatchNorm2D(8),
					nn.NewReLU(),
				),
				nn.NewGlobalAvgPool(),
				nn.NewDense(r, 8, 5),
			)
		}},
	}
}

// trainFixture runs a few SGD steps so weights move and the BN running
// statistics leave their initialization.
func trainFixture(net *nn.Network, r *frand.RNG, inC, steps int) {
	loss := nn.SoftmaxCrossEntropy{}
	opt := nn.NewSGD(0.05, 0.9, 0)
	labels := make([]int, 4)
	for s := 0; s < steps; s++ {
		x := tensor.Randn(r, 1, 4, inC, 8, 8)
		for i := range labels {
			labels[i] = r.Intn(5)
		}
		out := net.Forward(x, true)
		_, grad := loss.Eval(out, nn.ClassTarget(labels))
		net.Backward(grad)
		opt.Step(net.Params())
	}
}

func maxAbsDiff(a, b []float32) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(float64(a[i]) - float64(b[i])); d > m {
			m = d
		}
	}
	return m
}

// TestFrozenEquivalence checks the tolerance contract against the reference
// eval forward for every block that can precede or follow a BatchNorm,
// including a partial final batch.
func TestFrozenEquivalence(t *testing.T) {
	for _, fx := range frozenFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			r := frand.New(1234)
			net := fx.net(r)
			trainFixture(net, r, fx.inC, 6)
			for _, batch := range []int{1, 4, 7} {
				x := tensor.Randn(r, 1, batch, fx.inC, 8, 8)
				want := net.Forward(x, false).Clone()
				wantArg := want.ArgMaxRows()
				got := net.Freeze().Infer(x).Clone()
				if d, tol := maxAbsDiff(got.Data(), want.Data()), frozenTolFor(want.Data()); d > tol {
					t.Fatalf("batch %d: frozen output diverges: max-abs %.3g > %g", batch, d, tol)
				}
				gotArg := got.ArgMaxRows()
				for i := range wantArg {
					if gotArg[i] != wantArg[i] {
						t.Fatalf("batch %d: argmax differs at row %d: frozen %d, reference %d",
							batch, i, gotArg[i], wantArg[i])
					}
				}
			}
		})
	}
}

// TestFrozenTracksWeightUpdates re-freezes after further training and checks
// the cached frozen view re-folds to the new weights.
func TestFrozenTracksWeightUpdates(t *testing.T) {
	fx := frozenFixtures()[0]
	r := frand.New(99)
	net := fx.net(r)
	trainFixture(net, r, fx.inC, 3)
	x := tensor.Randn(r, 1, 4, fx.inC, 8, 8)
	first := net.Freeze().Infer(x).Clone()
	trainFixture(net, r, fx.inC, 3)
	want := net.Forward(x, false).Clone()
	got := net.Freeze().Infer(x).Clone()
	if d, tol := maxAbsDiff(got.Data(), want.Data()), frozenTolFor(want.Data()); d > tol {
		t.Fatalf("re-frozen output diverges from reference: max-abs %.3g > %g", d, tol)
	}
	if maxAbsDiff(first.Data(), got.Data()) == 0 {
		t.Fatal("frozen view did not re-fold after weights changed")
	}
}

// TestFrozenBudgetsBitIdentical is the serial-vs-parallel tol-0 contract for
// the frozen path: the fused matmuls, parallel pooling, activation sweeps,
// and the standalone BN eval path must produce byte-for-byte the budget-1
// result at every budget.
func TestFrozenBudgetsBitIdentical(t *testing.T) {
	for _, fx := range frozenFixtures() {
		t.Run(fx.name, func(t *testing.T) {
			r := frand.New(4321)
			net := fx.net(r)
			trainFixture(net, r, fx.inC, 4)
			x := tensor.Randn(r, 1, 5, fx.inC, 8, 8)
			net.SetIntraOp(1)
			want := net.Freeze().Infer(x).Clone()
			for _, par := range []int{2, 3, 4, 8} {
				net.SetIntraOp(par)
				got := net.Freeze().Infer(x)
				for i, v := range got.Data() {
					if v != want.Data()[i] {
						t.Fatalf("budget %d: element %d differs: %v != %v (must be bit-identical)",
							par, i, v, want.Data()[i])
					}
				}
			}
		})
	}
}

// TestFrozenSingleSampleUsesKernelBudget covers the iters==1 route where the
// whole budget is handed to the fused row-parallel matmul and the
// column-blocked Col2ImP geometry inside conv backward stays untouched.
func TestFrozenSingleSampleUsesKernelBudget(t *testing.T) {
	r := frand.New(7)
	net := nn.NewNetwork(
		nn.NewConv2D(r, 3, 16, 3, 1, 1, 1),
		nn.NewBatchNorm2D(16),
		nn.NewReLU(),
		nn.NewGlobalAvgPool(),
		nn.NewDense(r, 16, 5),
	)
	trainFixture(net, r, 3, 3)
	x := tensor.Randn(r, 1, 1, 3, 8, 8)
	net.SetIntraOp(1)
	want := net.Freeze().Infer(x).Clone()
	for _, par := range []int{2, 4, 8} {
		net.SetIntraOp(par)
		got := net.Freeze().Infer(x)
		for i, v := range got.Data() {
			if v != want.Data()[i] {
				t.Fatalf("budget %d: single-sample frozen forward not bit-identical at %d", par, i)
			}
		}
	}
}

// TestFrozenConcurrentReplicas runs one frozen replica per goroutine — the
// server-worker shape — under the shared worker pool; with -race this is the
// concurrency lane for the frozen forward.
func TestFrozenConcurrentReplicas(t *testing.T) {
	build := func() *nn.Network {
		r := frand.New(55)
		return nn.NewNetwork(
			nn.NewConv2D(r, 3, 8, 3, 1, 1, 1),
			nn.NewBatchNorm2D(8),
			nn.NewHardSwish(),
			nn.NewSEBlock(r, 8, 4),
			nn.NewGlobalAvgPool(),
			nn.NewDense(r, 8, 5),
		)
	}
	ref := build()
	refIn := tensor.Randn(frand.New(66), 1, 4, 3, 8, 8)
	want := ref.Freeze().Infer(refIn).Clone()

	const workers = 4
	outs := make([]*tensor.Tensor, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			net := build()
			net.SetIntraOp(2)
			fz := net.Freeze()
			x := tensor.Randn(frand.New(66), 1, 4, 3, 8, 8)
			var out *tensor.Tensor
			for rep := 0; rep < 8; rep++ {
				out = fz.Infer(x)
			}
			outs[w] = out.Clone()
		}(w)
	}
	wg.Wait()
	for w, out := range outs {
		for i, v := range out.Data() {
			if v != want.Data()[i] {
				t.Fatalf("worker %d: concurrent frozen forward diverged at element %d", w, i)
			}
		}
	}
}

// TestEvalViewToggle checks the -fused-eval routing contract.
func TestEvalViewToggle(t *testing.T) {
	r := frand.New(5)
	net := nn.NewNetwork(nn.NewFlatten(), nn.NewDense(r, 3*8*8, 4))
	if _, ok := nn.EvalView(net).(*nn.Frozen); !ok {
		t.Fatal("fused eval should be the default")
	}
	nn.SetFusedEval(false)
	defer nn.SetFusedEval(true)
	if _, ok := nn.EvalView(net).(*nn.Network); !ok {
		t.Fatal("SetFusedEval(false) must route EvalView to the reference network")
	}
}

// TestFrozenPureFusionBitIdentical: without any BatchNorm there is no float
// reordering, so the frozen forward must match the reference eval forward
// exactly (the SqueezeNet-shaped contract). The net covers all three conv
// kernels of the fast path — general im2col, the direct depthwise tap loop,
// and the lowering-free pointwise matmul — which all promise the im2col
// matmul's per-target accumulation order. Pinned to the serial kernel
// backend: bit-identity to the reference forward is the ORACLE-tier
// contract, and the packed backend only promises ≤1e-5 (see tensor's
// backend docs).
func TestFrozenPureFusionBitIdentical(t *testing.T) {
	prev := tensor.ActiveBackend()
	tensor.SetBackend(tensor.BackendSerial)
	defer tensor.SetBackend(prev)
	r := frand.New(31)
	net := nn.NewNetwork(
		nn.NewConv2D(r, 3, 8, 3, 2, 1, 1),
		nn.NewReLU(),
		nn.NewDepthwiseConv2D(r, 8, 3, 1, 1),
		nn.NewHardSwish(),
		nn.NewMaxPool2D(2, 2),
		nn.NewConv2D(r, 8, 12, 1, 1, 0, 1),
		nn.NewHardSwish(),
		nn.NewGlobalAvgPool(),
		nn.NewDense(r, 12, 5),
	)
	trainFixture(net, r, 3, 3)
	for _, batch := range []int{1, 4} {
		x := tensor.Randn(r, 1, batch, 3, 8, 8)
		want := net.Forward(x, false).Clone()
		got := net.Freeze().Infer(x)
		for i, v := range got.Data() {
			if v != want.Data()[i] {
				t.Fatalf("batch %d: BN-free frozen forward must be bit-identical, element %d: %v != %v",
					batch, i, v, want.Data()[i])
			}
		}
	}
}

// TestFrozenAllocFree: after a warm-up pass, the frozen forward performs no
// steady-state heap allocation (arena outputs, pooled dispatch, cached
// im2col scratch).
func TestFrozenAllocFree(t *testing.T) {
	if raceExtEnabled {
		t.Skip("sync.Pool drops items randomly under -race; alloc counts are nondeterministic")
	}
	fx := frozenFixtures()[0]
	r := frand.New(77)
	net := fx.net(r)
	trainFixture(net, r, fx.inC, 2)
	fz := net.Freeze()
	x := tensor.Randn(r, 1, 4, fx.inC, 8, 8)
	fz.Infer(x) // warm the arena and scratch
	avg := testing.AllocsPerRun(20, func() { fz.Infer(x) })
	if avg != 0 {
		t.Fatalf("frozen forward allocates %.1f objects per pass in steady state, want 0", avg)
	}
}

var sinkArg []int

// BenchmarkFrozenForward compares the frozen and reference eval forwards on
// one conv block (micro view of BenchmarkEval at the root).
func BenchmarkFrozenForward(b *testing.B) {
	r := frand.New(8)
	net := nn.NewNetwork(
		nn.NewConv2D(r, 3, 16, 3, 1, 1, 1),
		nn.NewBatchNorm2D(16),
		nn.NewReLU(),
		nn.NewGlobalAvgPool(),
		nn.NewDense(r, 16, 10),
	)
	x := tensor.Randn(r, 1, 16, 3, 16, 16)
	for _, mode := range []string{"fused", "reference"} {
		b.Run(mode, func(b *testing.B) {
			fz := net.Freeze()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if mode == "fused" {
					sinkArg = fz.Infer(x).ArgMaxRows()
				} else {
					sinkArg = net.Forward(x, false).ArgMaxRows()
				}
			}
		})
	}
}
