// Package camera simulates the image-capture hardware whose variation is
// the "HW" half of system-induced data heterogeneity (paper §3.3): spectral
// response differences between sensor generations and vendors, illuminant
// response, vignetting, sensor resolution, photon shot noise, read noise,
// black level, and ADC quantization.
//
// A Sensor turns a latent linear-RGB scene into the Bayer RAW frame that
// particular piece of hardware would record. Pairing a Sensor with an
// isp.Pipeline (the "SW" half) yields a complete device camera.
package camera

import (
	"fmt"
	"math"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/isp"
)

// Sensor describes one image sensor's physical characteristics.
type Sensor struct {
	// Resolution is the sensor's pixel count per side; scenes are resampled
	// to this before sampling, so lower-resolution sensors genuinely see
	// less detail.
	Resolution int
	// Pattern is the color filter array layout.
	Pattern isp.BayerPattern
	// ColorMatrix models spectral crosstalk between the color channels:
	// RAW = M · scene. Rows should roughly sum to 1.
	ColorMatrix [9]float64
	// IlluminantGains are per-channel sensitivities under the capture
	// illuminant; they create the color cast that white balance corrects.
	IlluminantGains [3]float64
	// Vignetting is the relative illumination falloff at the frame corners
	// (0 = none, 0.3 = corners 30% darker).
	Vignetting float64
	// ShotNoise scales photon shot noise: σ = ShotNoise·sqrt(signal).
	ShotNoise float64
	// ReadNoise is the signal-independent noise floor σ.
	ReadNoise float64
	// BlackLevel is the sensor pedestal added before quantization.
	BlackLevel float64
	// BitDepth is the ADC precision in bits (e.g. 10 or 12).
	BitDepth int
}

// Validate reports configuration errors.
func (s *Sensor) Validate() error {
	if s.Resolution < 4 {
		return fmt.Errorf("camera: resolution %d too small", s.Resolution)
	}
	if s.BitDepth < 4 || s.BitDepth > 16 {
		return fmt.Errorf("camera: bit depth %d out of range", s.BitDepth)
	}
	if s.ShotNoise < 0 || s.ReadNoise < 0 || s.Vignetting < 0 || s.Vignetting >= 1 {
		return fmt.Errorf("camera: negative noise or invalid vignetting")
	}
	return nil
}

// Capture exposes the sensor to a linear-RGB scene and returns the RAW
// Bayer frame it records. The rng drives the noise realization; captures of
// the same scene with different rng states model repeated shots.
func (s *Sensor) Capture(scene *isp.Image, rng *frand.RNG) (*isp.RAW, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	im := scene.Resize(s.Resolution, s.Resolution)

	// Spectral response: channel crosstalk then illuminant gains.
	im = isp.ApplyColorMatrix(im, s.ColorMatrix)
	n := im.W * im.H
	for i := 0; i < n; i++ {
		for c := 0; c < 3; c++ {
			im.Pix[i*3+c] *= s.IlluminantGains[c]
		}
	}

	// Vignetting: radial falloff, normalized so the centre is unattenuated.
	if s.Vignetting > 0 {
		cx, cy := float64(im.W-1)/2, float64(im.H-1)/2
		maxR2 := cx*cx + cy*cy
		for y := 0; y < im.H; y++ {
			for x := 0; x < im.W; x++ {
				dx, dy := float64(x)-cx, float64(y)-cy
				f := 1 - s.Vignetting*(dx*dx+dy*dy)/maxR2
				i := (y*im.W + x) * 3
				im.Pix[i] *= f
				im.Pix[i+1] *= f
				im.Pix[i+2] *= f
			}
		}
	}

	raw := isp.Mosaic(im, s.Pattern)

	// Noise, pedestal, and quantization.
	levels := float64(int(1)<<s.BitDepth - 1)
	for i, v := range raw.Pix {
		if v < 0 {
			v = 0
		}
		v += s.ShotNoise*math.Sqrt(v)*rng.NormFloat64() + s.ReadNoise*rng.NormFloat64()
		v += s.BlackLevel
		v = math.Round(v*levels) / levels
		if v < 0 {
			v = 0
		} else if v > 1 {
			v = 1
		}
		raw.Pix[i] = v
	}
	return raw, nil
}

// CrosstalkMatrix builds a row-normalized color mixing matrix with diagonal
// weight (1-2a) and off-diagonal weight a — larger a means poorer color
// separation (older sensor generations).
func CrosstalkMatrix(a float64) [9]float64 {
	d := 1 - 2*a
	return [9]float64{
		d, a, a,
		a, d, a,
		a, a, d,
	}
}
