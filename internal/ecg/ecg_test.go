package ecg

import (
	"math"
	"testing"

	"heteroswitch/internal/frand"
)

func TestCleanWaveformPeriodicity(t *testing.T) {
	// At 60 bpm the beat period is exactly one second = SampleRate samples;
	// the waveform must repeat with that period.
	sig := CleanWaveform(60, 0)
	for i := 0; i < WindowLen-SampleRate; i++ {
		if math.Abs(sig[i]-sig[i+SampleRate]) > 1e-9 {
			t.Fatalf("waveform not periodic at sample %d", i)
		}
	}
}

func TestCleanWaveformRPeakDominates(t *testing.T) {
	sig := CleanWaveform(75, 0)
	maxV := sig[0]
	for _, v := range sig {
		if v > maxV {
			maxV = v
		}
	}
	if maxV < 0.8 || maxV > 1.2 {
		t.Fatalf("R peak amplitude %v outside template range", maxV)
	}
}

func TestBeatCountMatchesHR(t *testing.T) {
	// Count R peaks (threshold crossings) and compare with bpm.
	for _, bpm := range []float64{50, 80, 120} {
		sig := CleanWaveform(bpm, 0)
		peaks := 0
		above := false
		for _, v := range sig {
			if v > 0.5 && !above {
				peaks++
				above = true
			} else if v < 0.2 {
				above = false
			}
		}
		wantBeats := bpm / 60 * Seconds
		if math.Abs(float64(peaks)-wantBeats) > 1.5 {
			t.Fatalf("bpm %v: %d peaks, want ~%.1f", bpm, peaks, wantBeats)
		}
	}
}

func TestSensorsAddDistinctNoise(t *testing.T) {
	clean := CleanWaveform(70, 0.2)
	rng := frand.New(1)
	var mses [NumSensors]float64
	for s := SensorType(0); s < NumSensors; s++ {
		rec := Record(clean, s, rng)
		var mse float64
		for i := range rec {
			d := rec[i] - clean[i]
			mse += d * d
		}
		mses[s] = mse / float64(len(rec))
	}
	// Chest strap must be the cleanest.
	for s := SensorChestStrap + 1; s < NumSensors; s++ {
		if mses[SensorChestStrap] >= mses[s] {
			t.Fatalf("chest strap (%v) noisier than %v (%v)", mses[SensorChestStrap], s, mses[s])
		}
	}
}

func TestRecordDeterministic(t *testing.T) {
	clean := CleanWaveform(90, 0)
	a := Record(clean, SensorPatch, frand.New(7))
	b := Record(clean, SensorPatch, frand.New(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("recording not deterministic under identical RNG")
		}
	}
}

func TestGenerateDataset(t *testing.T) {
	ds := GenerateDataset(SensorWrist, 10, frand.New(3))
	if ds.Len() != 10 || ds.NumClasses != 1 {
		t.Fatalf("dataset %d samples %d classes", ds.Len(), ds.NumClasses)
	}
	for _, s := range ds.Samples {
		if s.X.Size() != WindowLen {
			t.Fatalf("window length %d", s.X.Size())
		}
		if len(s.Multi) != 1 {
			t.Fatal("missing regression target")
		}
		bpm := DenormalizeHR(s.Multi[0])
		if bpm < MinHR || bpm > MaxHR {
			t.Fatalf("target bpm %v out of range", bpm)
		}
		if s.Device != int(SensorWrist) {
			t.Fatal("device tag wrong")
		}
	}
}

func TestNormalizeRoundtrip(t *testing.T) {
	for _, bpm := range []float64{50, 77.5, 120} {
		if got := DenormalizeHR(NormalizeHR(bpm)); math.Abs(got-bpm) > 1e-3 {
			t.Fatalf("normalize roundtrip %v -> %v", bpm, got)
		}
	}
}

func TestPairedRecordings(t *testing.T) {
	windows, truths := PairedRecordings(5, frand.New(9))
	if len(windows) != 5 || len(truths) != 5 {
		t.Fatalf("%d windows %d truths", len(windows), len(truths))
	}
	for i, row := range windows {
		if len(row) != int(NumSensors) {
			t.Fatalf("signal %d has %d sensor variants", i, len(row))
		}
		// Variants share the underlying waveform: they should correlate but
		// not be identical.
		same := true
		for j := range row[0].Data() {
			if row[0].Data()[j] != row[1].Data()[j] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("two sensors produced identical recordings")
		}
	}
}
