package fl

import (
	"math"
	"testing"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/tensor"
)

// fixture: a linearly separable 2-class problem over two "devices" whose
// images have different brightness offsets (a toy system-induced shift).
func fixtureData(n int, seed uint64) map[int]*dataset.Dataset {
	r := frand.New(seed)
	perDevice := map[int]*dataset.Dataset{}
	for dev := 0; dev < 2; dev++ {
		ds := &dataset.Dataset{NumClasses: 2}
		offset := float32(dev) * 0.1
		for i := 0; i < n; i++ {
			label := i % 2
			x := tensor.New(1, 4, 4)
			base := float32(0.25) + offset
			if label == 1 {
				base = 0.75 - offset
			}
			for j := range x.Data() {
				x.Data()[j] = base + float32(r.NormFloat64()*0.05)
			}
			ds.Samples = append(ds.Samples, dataset.Sample{X: x, Label: label, Device: dev})
		}
		perDevice[dev] = ds
	}
	return perDevice
}

func fixtureBuilder(seed uint64) Builder {
	return func() *nn.Network {
		r := frand.New(seed)
		return nn.NewNetwork(nn.NewFlatten(), nn.NewDense(r, 16, 2))
	}
}

func fixtureServer(t *testing.T, strat Strategy, workers int) *Server {
	t.Helper()
	perDevice := fixtureData(24, 3)
	clients, err := BuildPopulation(perDevice, []int{3, 3}, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Rounds: 20, ClientsPerRound: 4, BatchSize: 4, LocalEpochs: 1,
		LR: 0.2, Seed: 11, Workers: workers,
	}
	srv, err := NewServer(cfg, fixtureBuilder(5), nn.SoftmaxCrossEntropy{}, strat, clients)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func globalAccuracy(srv *Server, perDevice map[int]*dataset.Dataset) float64 {
	net := srv.GlobalNet()
	correct, total := 0, 0
	for _, ds := range perDevice {
		for lo := 0; lo < ds.Len(); lo += 8 {
			hi := lo + 8
			if hi > ds.Len() {
				hi = ds.Len()
			}
			x, labels := ds.Batch(lo, hi)
			pred := net.Forward(x, false).ArgMaxRows()
			for i, p := range pred {
				if p == labels[i] {
					correct++
				}
			}
			total += hi - lo
		}
	}
	return float64(correct) / float64(total)
}

func TestConfigValidate(t *testing.T) {
	good := Default()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.LR = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero LR should fail")
	}
	bad = good
	bad.BatchSize = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero batch should fail")
	}
}

func TestDeviceCounts(t *testing.T) {
	counts := DeviceCounts([]float64{0.38, 0.27, 0.12, 0.08, 0.05, 0.04, 0.03, 0.02, 0.01}, 100)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 100 {
		t.Fatalf("counts sum to %d", total)
	}
	if counts[0] != 38 || counts[1] != 27 {
		t.Fatalf("dominant shares misallocated: %v", counts)
	}
	// Small n: every count still >= 0 and sums right.
	counts = DeviceCounts([]float64{0.5, 0.3, 0.2}, 7)
	total = 0
	for _, c := range counts {
		if c < 0 {
			t.Fatal("negative count")
		}
		total += c
	}
	if total != 7 {
		t.Fatalf("sum %d != 7", total)
	}
}

func TestBuildPopulation(t *testing.T) {
	perDevice := fixtureData(20, 1)
	clients, err := BuildPopulation(perDevice, []int{4, 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(clients) != 6 {
		t.Fatalf("population %d", len(clients))
	}
	perDev := map[int]int{}
	samples := 0
	for i, c := range clients {
		if c.ID != i {
			t.Fatalf("client IDs not sequential: %d at %d", c.ID, i)
		}
		perDev[c.Device]++
		samples += c.Data.Len()
		if c.Data.Len() == 0 {
			t.Fatal("client with empty shard")
		}
	}
	if perDev[0] != 4 || perDev[1] != 2 {
		t.Fatalf("device allocation %v", perDev)
	}
	if samples != 40 {
		t.Fatalf("samples across shards %d, want 40", samples)
	}
}

func TestBuildPopulationErrors(t *testing.T) {
	if _, err := BuildPopulation(map[int]*dataset.Dataset{}, []int{1}, 1); err == nil {
		t.Fatal("missing device data should error")
	}
}

func TestFedAvgAggregateWeighted(t *testing.T) {
	mk := func(v float32) nn.Weights {
		return nn.Weights{Params: []*tensor.Tensor{tensor.Full(v, 2)}}
	}
	results := []ClientResult{
		{NumSamples: 1, Weights: mk(0)},
		{NumSamples: 3, Weights: mk(4)},
	}
	out := FedAvg{}.Aggregate(mk(99), results, Default())
	if math.Abs(float64(out.Params[0].At(0))-3) > 1e-6 {
		t.Fatalf("weighted average = %v, want 3", out.Params[0].At(0))
	}
}

func TestFedAvgLearns(t *testing.T) {
	perDevice := fixtureData(24, 3)
	srv := fixtureServer(t, FedAvg{}, 1)
	srv.Run(nil)
	if acc := globalAccuracy(srv, perDevice); acc < 0.9 {
		t.Fatalf("FedAvg accuracy %v on separable toy problem", acc)
	}
}

func TestParallelWorkersDeterministic(t *testing.T) {
	a := fixtureServer(t, FedAvg{}, 1)
	b := fixtureServer(t, FedAvg{}, 4)
	a.Run(nil)
	b.Run(nil)
	for i := range a.Global.Params {
		if !a.Global.Params[i].AllClose(b.Global.Params[i], 1e-6) {
			t.Fatalf("param %d differs between 1 and 4 workers", i)
		}
	}
}

func TestRunsAreReproducible(t *testing.T) {
	a := fixtureServer(t, FedAvg{}, 2)
	b := fixtureServer(t, FedAvg{}, 2)
	a.Run(nil)
	b.Run(nil)
	for i := range a.Global.Params {
		if !a.Global.Params[i].AllClose(b.Global.Params[i], 0) {
			t.Fatalf("identical configs diverged at param %d", i)
		}
	}
}

func TestFedProxStaysCloserToGlobal(t *testing.T) {
	// With huge μ the local update barely moves from the global weights.
	perDevice := fixtureData(24, 3)
	clients, _ := BuildPopulation(perDevice, []int{1, 1}, 7)
	cfg := Config{Rounds: 1, ClientsPerRound: 1, BatchSize: 4, LocalEpochs: 3, LR: 0.2, Seed: 1, Workers: 1}
	builder := fixtureBuilder(5)

	run := func(strat Strategy) float64 {
		srv, err := NewServer(cfg, builder, nn.SoftmaxCrossEntropy{}, strat, clients)
		if err != nil {
			t.Fatal(err)
		}
		before := srv.Global.Clone()
		srv.Run(nil)
		return before.L2DistSq(srv.Global)
	}
	freeDist := run(FedAvg{})
	proxDist := run(&FedProx{Mu: 2})
	if proxDist >= freeDist {
		t.Fatalf("FedProx(μ=2) moved further (%v) than FedAvg (%v)", proxDist, freeDist)
	}
}

func TestQFedAvgAggregateFinite(t *testing.T) {
	srv := fixtureServer(t, &QFedAvg{Q: 1e-1}, 1)
	// q-FFL's normalized step is far more conservative than full averaging;
	// give it extra rounds to converge on the toy problem.
	srv.Cfg.Rounds = 25
	srv.Run(nil)
	for _, p := range srv.Global.Params {
		if p.HasNaN() {
			t.Fatal("q-FedAvg produced NaN weights")
		}
	}
	perDevice := fixtureData(24, 3)
	if acc := globalAccuracy(srv, perDevice); acc < 0.8 {
		t.Fatalf("q-FedAvg accuracy %v", acc)
	}
}

func TestScaffoldLearnsAndMaintainsVariates(t *testing.T) {
	strat := &Scaffold{TotalClients: 6}
	perDevice := fixtureData(24, 3)
	srv := fixtureServer(t, strat, 1)
	// SCAFFOLD needs a few extra rounds for the control variates to warm up
	// before they help rather than perturb.
	srv.Cfg.Rounds = 30
	srv.Run(nil)
	if acc := globalAccuracy(srv, perDevice); acc < 0.85 {
		t.Fatalf("Scaffold accuracy %v", acc)
	}
	if strat.c.Params == nil {
		t.Fatal("server control variate never initialized")
	}
	if len(strat.clients) == 0 {
		t.Fatal("client control variates never stored")
	}
	var norm float64
	for _, p := range strat.c.Params {
		norm += p.L2NormSq()
	}
	if math.IsNaN(norm) || math.IsInf(norm, 0) {
		t.Fatal("control variate diverged")
	}
}

func TestSampleClientsDistinct(t *testing.T) {
	srv := fixtureServer(t, FedAvg{}, 1)
	for round := 0; round < 5; round++ {
		sampled := srv.SampleClients()
		if len(sampled) != srv.Cfg.ClientsPerRound {
			t.Fatalf("sampled %d clients", len(sampled))
		}
		seen := map[int]bool{}
		for _, c := range sampled {
			if seen[c.ID] {
				t.Fatal("client sampled twice in one round")
			}
			seen[c.ID] = true
		}
	}
}

func TestRoundStatsPopulated(t *testing.T) {
	srv := fixtureServer(t, FedAvg{}, 1)
	var got []RoundStats
	srv.Run(func(s RoundStats) { got = append(got, s) })
	if len(got) != srv.Cfg.Rounds {
		t.Fatalf("callbacks %d, want %d", len(got), srv.Cfg.Rounds)
	}
	for i, s := range got {
		if s.Round != i || len(s.Sampled) != srv.Cfg.ClientsPerRound {
			t.Fatalf("stats %d malformed: %+v", i, s)
		}
		if s.MeanLoss <= 0 {
			t.Fatalf("round %d mean loss %v", i, s.MeanLoss)
		}
	}
	// Losses should broadly decrease on this easy problem.
	if got[len(got)-1].MeanLoss >= got[0].MeanLoss {
		t.Fatalf("loss did not decrease: %v -> %v", got[0].MeanLoss, got[len(got)-1].MeanLoss)
	}
}

func TestNewServerValidation(t *testing.T) {
	perDevice := fixtureData(8, 1)
	clients, _ := BuildPopulation(perDevice, []int{1, 1}, 1)
	cfg := Default()
	cfg.ClientsPerRound = 50 // more than population
	if _, err := NewServer(cfg, fixtureBuilder(1), nn.SoftmaxCrossEntropy{}, FedAvg{}, clients); err == nil {
		t.Fatal("K > N should fail")
	}
	if _, err := NewServer(Default(), fixtureBuilder(1), nn.SoftmaxCrossEntropy{}, FedAvg{}, nil); err == nil {
		t.Fatal("empty population should fail")
	}
}

func TestEvalLossMatchesMetricsSemantics(t *testing.T) {
	perDevice := fixtureData(10, 2)
	net := fixtureBuilder(9)()
	l := EvalLoss(net, nn.SoftmaxCrossEntropy{}, perDevice[0], 4)
	if l <= 0 || math.IsNaN(l) {
		t.Fatalf("EvalLoss = %v", l)
	}
	if EvalLoss(net, nn.SoftmaxCrossEntropy{}, &dataset.Dataset{NumClasses: 2}, 4) != 0 {
		t.Fatal("empty dataset should yield 0")
	}
}

func TestTrainLocalHooksFire(t *testing.T) {
	perDevice := fixtureData(12, 4)
	net := fixtureBuilder(9)()
	cfg := Config{Rounds: 1, ClientsPerRound: 1, BatchSize: 4, LocalEpochs: 2, LR: 0.1, Workers: 1}
	stepCalls, batchCalls := 0, 0
	lastIdx := -1
	TrainLocal(net, perDevice[0], cfg, nn.SoftmaxCrossEntropy{}, frand.New(1),
		func(ps []*nn.Param) { stepCalls++ },
		func(n *nn.Network, idx int) {
			batchCalls++
			if idx != lastIdx+1 {
				t.Fatalf("batch index jumped: %d after %d", idx, lastIdx)
			}
			lastIdx = idx
		})
	// 12 samples, batch 4 → 3 batches/epoch × 2 epochs = 6.
	if stepCalls != 6 || batchCalls != 6 {
		t.Fatalf("hooks fired %d/%d times, want 6/6", stepCalls, batchCalls)
	}
}
