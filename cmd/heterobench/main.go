// Command heterobench regenerates the paper's tables and figures from the
// simulated device federation.
//
// Usage:
//
//	heterobench -list
//	heterobench -exp table4 [-scale 1.0] [-seed 42] [-workers 8]
//	heterobench -exp all -scale 0.3
//
// Experiment ids follow DESIGN.md's per-experiment index (fig1, table2,
// fig2, fig3, fig4, fig5, fig7, table4, table5, table6, fig8, ecg, fig9,
// ablation-*). Scale 1.0 is the configuration recorded in EXPERIMENTS.md;
// smaller scales run faster and preserve trends.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"heteroswitch/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id to run, or 'all'")
		scale   = flag.Float64("scale", 1.0, "workload scale factor")
		seed    = flag.Uint64("seed", 42, "master random seed")
		workers = flag.Int("workers", 0, "parallel workers (0 = auto)")
		intraop = flag.Int("intraop", 0, "total intra-op kernel parallelism budget, split across workers (0 = GOMAXPROCS, 1 = serial kernels; results are bit-identical at every setting)")
		barrier = flag.Bool("barrier", false, "force legacy barrier aggregation instead of streaming")
		list    = flag.Bool("list", false, "list available experiments")
	)
	flag.Parse()

	if *list {
		for _, name := range experiments.Names() {
			fmt.Println(name)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "heterobench: -exp required (or -list); e.g. -exp table4")
		os.Exit(2)
	}

	opts := experiments.DefaultOptions()
	opts.Scale = *scale
	opts.Seed = *seed
	if *workers > 0 {
		opts.Workers = *workers
	}
	opts.DisableStreaming = *barrier
	opts.IntraOp = *intraop

	names := []string{*exp}
	if *exp == "all" {
		names = experiments.Names()
	}
	for _, name := range names {
		start := time.Now()
		res, err := experiments.Run(name, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "heterobench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("### %s (scale %.2f, seed %d, %.1fs)\n\n%s\n", name, *scale, *seed, time.Since(start).Seconds(), res)
	}
}
