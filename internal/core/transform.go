// Package core implements HeteroSwitch, the paper's contribution (§5): a
// selective generalization technique that measures each client's bias via a
// loss comparison against an exponential moving average (Switch 1), applies
// random ISP transformations (white balance, eq. 2; gamma, eq. 3) to biased
// clients' data, maintains a per-batch stochastic weight average (SWAD)
// during local training, and returns the averaged weights only when the
// client's training loss still beats the EMA (Switch 2).
package core

import (
	"math"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/tensor"
)

// TransformFunc perturbs one sample tensor in place, using rng for its
// randomness. Implementations must tolerate any tensor shape they are
// registered for.
type TransformFunc func(x *tensor.Tensor, rng *frand.RNG)

// RandomWBGamma returns the paper's ISP transformation (eqs. 2 and 3): each
// image gets per-channel gains r_c ~ U(1-wbDeg, 1+wbDeg) and a gamma
// exponent γ ~ U(1-gammaDeg, 1+gammaDeg). Inputs are assumed CHW in [0,1].
// The appendix's tuned degrees are wbDeg=0.001, gammaDeg=0.9.
func RandomWBGamma(wbDeg, gammaDeg float64) TransformFunc {
	return func(x *tensor.Tensor, rng *frand.RNG) {
		if x.NDim() != 3 {
			return
		}
		c, hw := x.Dim(0), x.Dim(1)*x.Dim(2)
		d := x.Data()
		for ch := 0; ch < c; ch++ {
			gain := float32(rng.Uniform(1-wbDeg, 1+wbDeg))
			seg := d[ch*hw : (ch+1)*hw]
			for i := range seg {
				seg[i] *= gain
			}
		}
		gamma := rng.Uniform(1-gammaDeg, 1+gammaDeg)
		if gamma < 0.05 {
			gamma = 0.05
		}
		for i, v := range d {
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			d[i] = float32(math.Pow(float64(v), gamma))
		}
	}
}

// RandomGaussianFilter returns the 1-D signal transformation used for the
// ECG experiment (§6.6): the flattened signal is convolved with a Gaussian
// kernel whose σ is drawn uniformly from [minSigma, maxSigma] (in samples).
func RandomGaussianFilter(minSigma, maxSigma float64) TransformFunc {
	return func(x *tensor.Tensor, rng *frand.RNG) {
		sigma := rng.Uniform(minSigma, maxSigma)
		if sigma <= 0 {
			return
		}
		d := x.Data()
		smoothed := gaussianSmooth(d, sigma)
		copy(d, smoothed)
	}
}

// gaussianSmooth convolves a signal with a truncated (±3σ) Gaussian kernel,
// renormalizing at the borders.
func gaussianSmooth(sig []float32, sigma float64) []float32 {
	radius := int(3*sigma + 0.5)
	if radius < 1 {
		radius = 1
	}
	kernel := make([]float64, 2*radius+1)
	var ksum float64
	for i := range kernel {
		d := float64(i - radius)
		kernel[i] = math.Exp(-d * d / (2 * sigma * sigma))
		ksum += kernel[i]
	}
	for i := range kernel {
		kernel[i] /= ksum
	}
	out := make([]float32, len(sig))
	for i := range sig {
		var s, wsum float64
		for k, w := range kernel {
			j := i + k - radius
			if j < 0 || j >= len(sig) {
				continue
			}
			s += w * float64(sig[j])
			wsum += w
		}
		if wsum > 0 {
			out[i] = float32(s / wsum)
		}
	}
	return out
}

// TransformDataset returns a copy of ds whose sample tensors have been
// independently perturbed by tf. Labels and device tags are preserved; the
// original dataset is untouched.
func TransformDataset(ds *dataset.Dataset, tf TransformFunc, rng *frand.RNG) *dataset.Dataset {
	out := &dataset.Dataset{NumClasses: ds.NumClasses, Samples: make([]dataset.Sample, len(ds.Samples))}
	for i, s := range ds.Samples {
		x := s.X.Clone()
		tf(x, rng)
		out.Samples[i] = dataset.Sample{X: x, Label: s.Label, Multi: s.Multi, Device: s.Device}
	}
	return out
}

// AffineJitter is a geometric augmentation (small rotation+shift via nearest
// resampling) used by the Fig. 7 robustness comparison. degree scales the
// maximum rotation (radians ≈ degree/2) and shift (fraction of size).
func AffineJitter(degree float64) TransformFunc {
	return func(x *tensor.Tensor, rng *frand.RNG) {
		if x.NDim() != 3 {
			return
		}
		c, h, w := x.Dim(0), x.Dim(1), x.Dim(2)
		angle := rng.Uniform(-degree/2, degree/2)
		dx := rng.Uniform(-degree/4, degree/4) * float64(w)
		dy := rng.Uniform(-degree/4, degree/4) * float64(h)
		sin, cos := math.Sin(angle), math.Cos(angle)
		cx, cy := float64(w)/2, float64(h)/2
		src := x.Clone().Data()
		d := x.Data()
		for ch := 0; ch < c; ch++ {
			for y := 0; y < h; y++ {
				for xx := 0; xx < w; xx++ {
					fx := float64(xx) - cx
					fy := float64(y) - cy
					sx := int(math.Round(cos*fx + sin*fy + cx - dx))
					sy := int(math.Round(-sin*fx + cos*fy + cy - dy))
					var v float32
					if sx >= 0 && sx < w && sy >= 0 && sy < h {
						v = src[(ch*h+sy)*w+sx]
					}
					d[(ch*h+y)*w+xx] = v
				}
			}
		}
	}
}

// GaussianNoise adds N(0, degree·0.1) pixel noise (Fig. 7 robustness axis).
func GaussianNoise(degree float64) TransformFunc {
	std := degree * 0.1
	return func(x *tensor.Tensor, rng *frand.RNG) {
		d := x.Data()
		for i := range d {
			v := float64(d[i]) + std*rng.NormFloat64()
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			d[i] = float32(v)
		}
	}
}

// WBOnly returns just the eq. 2 white-balance perturbation at the given
// degree (Fig. 7's "WB" axis).
func WBOnly(degree float64) TransformFunc {
	return func(x *tensor.Tensor, rng *frand.RNG) {
		if x.NDim() != 3 {
			return
		}
		c, hw := x.Dim(0), x.Dim(1)*x.Dim(2)
		d := x.Data()
		for ch := 0; ch < c; ch++ {
			gain := float32(rng.Uniform(1-degree, 1+degree))
			seg := d[ch*hw : (ch+1)*hw]
			for i := range seg {
				v := seg[i] * gain
				if v < 0 {
					v = 0
				} else if v > 1 {
					v = 1
				}
				seg[i] = v
			}
		}
	}
}

// GammaOnly returns just the eq. 3 gamma perturbation (Fig. 7's "Gamma").
func GammaOnly(degree float64) TransformFunc {
	return func(x *tensor.Tensor, rng *frand.RNG) {
		gamma := rng.Uniform(1-degree, 1+degree)
		if gamma < 0.05 {
			gamma = 0.05
		}
		d := x.Data()
		for i, v := range d {
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			d[i] = float32(math.Pow(float64(v), gamma))
		}
	}
}
