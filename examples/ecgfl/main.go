// ECGFL demonstrates the non-vision use of HeteroSwitch (§6.6): federated
// heart-rate regression across four ECG sensor types, with the
// Random-Gaussian-Filter transformation standing in for the vision ISP
// transformation.
//
//	go run ./examples/ecgfl
package main

import (
	"fmt"
	"log"

	"heteroswitch/internal/core"
	"heteroswitch/internal/dataset"
	"heteroswitch/internal/ecg"
	"heteroswitch/internal/experiments"
	"heteroswitch/internal/fl"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/models"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/tensor"
)

func main() {
	const seed = 17
	rng := frand.New(seed)

	fmt.Println("generating ECG windows for 4 sensor types...")
	train := map[int]*dataset.Dataset{}
	for s := ecg.SensorType(0); s < ecg.NumSensors; s++ {
		train[int(s)] = ecg.GenerateDataset(s, 160, rng.SplitNamed(s.String()))
		fmt.Printf("  %-15s %d windows\n", s, train[int(s)].Len())
	}

	builder := models.ECGConvBuilder(seed, ecg.WindowLen)
	cfg := fl.Config{
		Rounds:          120,
		ClientsPerRound: 8,
		BatchSize:       16,
		LocalEpochs:     1,
		LR:              0.05,
		Seed:            seed,
		Workers:         4,
	}
	counts := experiments.EqualCounts(int(ecg.NumSensors), 12)

	hetero := core.New()
	hetero.Transform = core.RandomGaussianFilter(0.5, 2.5)

	for _, strat := range []fl.Strategy{fl.FedAvg{}, hetero} {
		srv, err := experiments.RunFLWithLoss(experiments.DefaultOptions(), strat, train, counts, cfg, builder, nn.MSE{})
		if err != nil {
			log.Fatal(err)
		}
		net := srv.GlobalNet()

		// Same waveforms through all four sensors: how much do predictions
		// diverge purely because of the recording hardware?
		windows, truths := ecg.PairedRecordings(30, frand.New(seed^0xe))
		var spread float64
		for i, row := range windows {
			minP, maxP := 1e9, -1e9
			for _, w := range row {
				x := tensor.New(1, w.Size())
				copy(x.Data(), w.Data())
				p := ecg.DenormalizeHR(net.Forward(x, false).At(0, 0))
				if p < minP {
					minP = p
				}
				if p > maxP {
					maxP = p
				}
			}
			spread += (maxP - minP) / truths[i]
		}
		fmt.Printf("\n%s: mean cross-sensor prediction spread %.1f%% of true HR\n",
			strat.Name(), spread/float64(len(windows))*100)
	}
}
