package tensor

import (
	"fmt"
	"math"
	"testing"

	"heteroswitch/internal/frand"
)

// The packed backend's contract (backend.go): forced serial is bit-identical
// to the oracle kernels, packed tracks them within 1e-5 with identical
// per-row argmax, packed results are bit-identical across intra-op budgets,
// and a warm packed dispatch — pack buffers included — allocates nothing.

// forceBackend pins the process-wide backend for one test and restores the
// previous selection afterwards.
func forceBackend(t *testing.T, b Backend) {
	t.Helper()
	prev := ActiveBackend()
	SetBackend(b)
	t.Cleanup(func() { SetBackend(prev) })
}

// packedShapes stresses the microkernel tails (rows not multiples of 8 or 4,
// columns not multiples of the panel width), the k-block boundary
// (k > packKC), and shapes below the auto thresholds that only run packed
// when forced.
var packedShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{3, 5, 7},
	{5, 9, 6},
	{8, 64, 128},
	{13, 17, 19},
	{16, 768, 256}, // MLP-shaped, two k-block boundaries
	{31, 64, 67},
	{47, 300, 66}, // one k-block boundary, ragged everything
	{48, 48, 256}, // ConvNet-shaped
	{65, 33, 129},
}

var packedBudgets = []int{1, 2, 3, 4, 8}

func rowArgmax(row []float32) int {
	best := 0
	for j, v := range row {
		if v > row[best] {
			best = j
		}
	}
	return best
}

// runFusedEp computes out via MatMulSlicesPEp under a forced backend.
func runFusedEp(b Backend, par int, out, a, bb []float32, m, k, n int, ep RowEpilogue) {
	prev := ActiveBackend()
	SetBackend(b)
	defer SetBackend(prev)
	MatMulSlicesPEp(par, out, a, bb, m, k, n, ep)
}

// fanInScaled builds a k×n "weight" operand with Kaiming-style 1/sqrt(k)
// scaling, so matmul outputs are O(1) like real network activations and the
// frozen path's absolute 1e-5 tolerance is the meaningful unit (raw
// unit-variance B would grow sums to ~sqrt(k), below float32 ulp at 1e-5).
func fanInScaled(r *frand.RNG, k, n int) *Tensor {
	return Randn(r, 1/math.Sqrt(float64(k)), k, n)
}

// packedTolOK reports whether got is within the packed backend's tolerance
// of want: 1e-5 absolute, scaled by |want| for the rare value outside the
// unit range.
func packedTolOK(got, want float32) bool {
	w := math.Abs(float64(want))
	if w < 1 {
		w = 1
	}
	return math.Abs(float64(got)-float64(want)) <= 1e-5*w
}

// TestPackedMatchesOracle: forced packed vs forced serial on the fused entry
// point, every shape × budget, ≤1e-5 (relative past unit magnitude) with
// identical per-row argmax — the contract the frozen path holds, with and
// without an epilogue.
func TestPackedMatchesOracle(t *testing.T) {
	r := frand.New(91)
	for _, sz := range packedShapes {
		a := Randn(r, 1, sz.m, sz.k)
		b := fanInScaled(r, sz.k, sz.n)
		bias := Randn(r, 1, sz.m)
		for _, ep := range []RowEpilogue{nil, &testEpilogue{bias: bias.Data()}} {
			want := make([]float32, sz.m*sz.n)
			runFusedEp(BackendSerial, 1, want, a.Data(), b.Data(), sz.m, sz.k, sz.n, ep)
			for _, par := range packedBudgets {
				got := make([]float32, sz.m*sz.n)
				runFusedEp(BackendPacked, par, got, a.Data(), b.Data(), sz.m, sz.k, sz.n, ep)
				name := fmt.Sprintf("packed(%d) %dx%dx%d ep=%v", par, sz.m, sz.k, sz.n, ep != nil)
				for i := range got {
					if !packedTolOK(got[i], want[i]) {
						t.Fatalf("%s: element %d packed %v vs serial %v exceeds 1e-5", name, i, got[i], want[i])
					}
				}
				for i := 0; i < sz.m; i++ {
					gr, wr := got[i*sz.n:(i+1)*sz.n], want[i*sz.n:(i+1)*sz.n]
					if rowArgmax(gr) != rowArgmax(wr) {
						t.Fatalf("%s: row %d argmax %d != %d", name, i, rowArgmax(gr), rowArgmax(wr))
					}
				}
			}
		}
	}
}

// TestPackedAccMatchesOracle covers the accumulating fused entry
// (out += a @ b) both backends must agree on — the Residual skip-path fold
// depends on it.
func TestPackedAccMatchesOracle(t *testing.T) {
	r := frand.New(92)
	for _, sz := range packedShapes {
		a := Randn(r, 1, sz.m, sz.k)
		b := fanInScaled(r, sz.k, sz.n)
		base := Randn(r, 1, sz.m, sz.n)
		bias := Randn(r, 1, sz.m)
		ep := &testEpilogue{bias: bias.Data()}
		want := append([]float32(nil), base.Data()...)
		prev := ActiveBackend()
		SetBackend(BackendSerial)
		MatMulAccSlicesPEp(1, want, a.Data(), b.Data(), sz.m, sz.k, sz.n, ep)
		SetBackend(prev)
		for _, par := range packedBudgets {
			got := append([]float32(nil), base.Data()...)
			SetBackend(BackendPacked)
			MatMulAccSlicesPEp(par, got, a.Data(), b.Data(), sz.m, sz.k, sz.n, ep)
			SetBackend(prev)
			name := fmt.Sprintf("packedAcc(%d) %dx%dx%d", par, sz.m, sz.k, sz.n)
			for i := range got {
				if !packedTolOK(got[i], want[i]) {
					t.Fatalf("%s: element %d packed %v vs serial %v exceeds 1e-5", name, i, got[i], want[i])
				}
			}
		}
	}
}

// TestSerialBackendBitIdentical: with backend=serial the fused entries are
// bit-identical to the oracle kernels plus a separate epilogue pass — the
// pre-dispatch behavior, tol 0.
func TestSerialBackendBitIdentical(t *testing.T) {
	forceBackend(t, BackendSerial)
	r := frand.New(93)
	for _, sz := range packedShapes {
		a := Randn(r, 1, sz.m, sz.k)
		b := Randn(r, 1, sz.k, sz.n)
		bias := Randn(r, 1, sz.m)
		ep := &testEpilogue{bias: bias.Data()}
		want := make([]float32, sz.m*sz.n)
		MatMulSlices(want, a.Data(), b.Data(), sz.m, sz.k, sz.n)
		for i := 0; i < sz.m; i++ {
			ep.Apply(want[i*sz.n:(i+1)*sz.n], i)
		}
		for _, par := range packedBudgets {
			got := make([]float32, sz.m*sz.n)
			MatMulSlicesPEp(par, got, a.Data(), b.Data(), sz.m, sz.k, sz.n, ep)
			exactEqual(t, fmt.Sprintf("serial backend(%d) %dx%dx%d", par, sz.m, sz.k, sz.n), got, want)
		}
	}
}

// TestPackedBudgetsBitIdentical: the packed kernel row-partitions a shared
// packed B and never splits one target's accumulation, so its results are
// bit-identical across budgets — the invariant frozen-eval determinism
// tests stand on.
func TestPackedBudgetsBitIdentical(t *testing.T) {
	forceBackend(t, BackendPacked)
	r := frand.New(94)
	for _, sz := range packedShapes {
		a := Randn(r, 1, sz.m, sz.k)
		b := Randn(r, 1, sz.k, sz.n)
		want := make([]float32, sz.m*sz.n)
		MatMulSlicesPEp(1, want, a.Data(), b.Data(), sz.m, sz.k, sz.n, nil)
		for _, par := range packedBudgets[1:] {
			got := make([]float32, sz.m*sz.n)
			MatMulSlicesPEp(par, got, a.Data(), b.Data(), sz.m, sz.k, sz.n, nil)
			exactEqual(t, fmt.Sprintf("packed budgets(%d) %dx%dx%d", par, sz.m, sz.k, sz.n), got, want)
		}
	}
}

// TestBackendParse pins the flag surface.
func TestBackendParse(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Backend
	}{{"", BackendAuto}, {"auto", BackendAuto}, {"serial", BackendSerial}, {"packed", BackendPacked}} {
		got, err := ParseBackend(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseBackend(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		if tc.in != "" && got.String() != tc.in {
			t.Fatalf("Backend %v String() = %q, want %q", got, got.String(), tc.in)
		}
	}
	if _, err := ParseBackend("simd"); err == nil {
		t.Fatal("ParseBackend(simd) did not error")
	}
}

// TestAutoDispatch pins the auto heuristic's edges: tiny matmuls stay on the
// oracle kernels, frozen-eval-shaped ones go packed, and k == 0 never
// dispatches (the packed driver needs one k-block to initialize the output).
func TestAutoDispatch(t *testing.T) {
	forceBackend(t, BackendAuto)
	for _, tc := range []struct {
		m, k, n int
		want    bool
	}{
		{1, 768, 256, false},                     // single serving row: pack cost unamortized
		{packAutoMinRows - 1, 1024, 1024, false}, // below the row floor
		{16, 768, 256, true},                     // MLP eval batch
		{48, 48, 256, true},                      // ConvNet eval matmul
		{8, 8, 8, false},                         // below the work floor
		{16, 0, 256, false},                      // k == 0 must stay oracle
	} {
		if got := usePacked(tc.m, tc.k, tc.n); got != tc.want {
			t.Fatalf("usePacked(%d,%d,%d) = %v, want %v", tc.m, tc.k, tc.n, got, tc.want)
		}
	}
	SetBackend(BackendPacked)
	if usePacked(16, 0, 256) {
		t.Fatal("usePacked with k=0 must be false even when packed is forced")
	}
	SetBackend(BackendSerial)
	if usePacked(1024, 1024, 1024) {
		t.Fatal("usePacked must be false when serial is forced")
	}
}

// TestPackedZeroAllocSteadyState: a warm packed dispatch recycles its pack
// buffer and task through pools — 0 allocs/op, serial and parallel.
func TestPackedZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items randomly under -race; alloc counts are nondeterministic")
	}
	forceBackend(t, BackendPacked)
	r := frand.New(95)
	a := Randn(r, 1, 48, 48)
	b := Randn(r, 1, 48, 256)
	bias := Randn(r, 1, 48)
	ep := &testEpilogue{bias: bias.Data()}
	out := make([]float32, 48*256)
	for _, par := range []int{1, 4} {
		MatMulSlicesPEp(par, out, a.Data(), b.Data(), 48, 48, 256, ep) // warm pools
		allocs := testing.AllocsPerRun(20, func() {
			MatMulSlicesPEp(par, out, a.Data(), b.Data(), 48, 48, 256, ep)
		})
		if allocs != 0 {
			t.Fatalf("packed dispatch par=%d steady state allocates %.1f/op, want 0", par, allocs)
		}
	}
}

// BenchmarkMatMulPacked A/Bs the packed kernel against the oracle on the
// frozen path's real shapes (ConvNet pointwise/im2col matmuls, the MLP
// dense) and on square cache-pressure shapes.
func BenchmarkMatMulPacked(b *testing.B) {
	r := frand.New(96)
	for _, sz := range []struct{ m, k, n int }{
		{16, 768, 256}, // MLP dense eval batch
		{48, 48, 256},  // ConvNet expand pointwise
		{64, 64, 64},
		{128, 128, 128},
		{256, 256, 256},
	} {
		a := Randn(r, 1, sz.m, sz.k)
		bb := Randn(r, 1, sz.k, sz.n)
		out := make([]float32, sz.m*sz.n)
		for _, be := range []Backend{BackendSerial, BackendPacked} {
			b.Run(fmt.Sprintf("%dx%dx%d/backend=%s", sz.m, sz.k, sz.n, be), func(b *testing.B) {
				prev := ActiveBackend()
				SetBackend(be)
				defer SetBackend(prev)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					MatMulSlicesPEp(1, out, a.Data(), bb.Data(), sz.m, sz.k, sz.n, nil)
				}
			})
		}
	}
}
