package experiments

import (
	"fmt"

	"heteroswitch/internal/core"
	"heteroswitch/internal/fl"
	"heteroswitch/internal/flair"
	"heteroswitch/internal/metrics"
	"heteroswitch/internal/models"
	"heteroswitch/internal/nn"
)

// Table6Result is the FLAIR-substitute evaluation: multi-label averaged
// precision across a long tail of device types.
type Table6Result struct {
	Rows []struct {
		Method   string
		MeanAP   float64 // macro AP averaged over device types (percent)
		Variance float64 // variance of per-device AP (percentage points²)
	}
}

// String renders Table 6's layout.
func (r *Table6Result) String() string {
	t := &Table{
		Title:  "Table 6 — FLAIR-substitute multi-label evaluation",
		Header: []string{"method", "averaged precision", "variance (pp²)"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Method, fmt.Sprintf("%.2f%%", row.MeanAP), fmt.Sprintf("%.2f", row.Variance))
	}
	return t.String()
}

// Table6 builds the multi-device-type multi-label federation and compares
// FedAvg, HeteroSwitch, q-FedAvg, and FedProx on averaged precision.
func Table6(opts Options) (*Table6Result, error) {
	cfg := flair.DefaultConfig()
	cfg.NumDeviceTypes = opts.scaled(24)
	cfg.SamplesPerDevice = opts.scaled(12)
	cfg.TestPerDevice = opts.scaled(6)
	cfg.OutRes = opts.OutRes
	cfg.Seed = opts.Seed
	fed, err := flair.Build(cfg)
	if err != nil {
		return nil, err
	}

	builder, err := models.BuilderFor(models.ArchMobileNet, opts.Seed, 3, cfg.Classes)
	if err != nil {
		return nil, err
	}
	flCfg := fl.Config{
		Rounds:           opts.scaled(80),
		ClientsPerRound:  min(12, cfg.NumDeviceTypes),
		BatchSize:        6,
		LocalEpochs:      1,
		LR:               0.1,
		Seed:             opts.Seed,
		Workers:          opts.Workers,
		DisableStreaming: opts.DisableStreaming,
		IntraOp:          opts.IntraOp,
	}
	counts := EqualCounts(cfg.NumDeviceTypes, cfg.NumDeviceTypes) // one client per device type

	strategies := []fl.Strategy{
		fl.FedAvg{},
		core.New(),
		&fl.QFedAvg{Q: 1e-6},
		&fl.FedProx{Mu: 1e-1},
	}
	res := &Table6Result{}
	for _, strat := range strategies {
		srv, err := RunFLWithLoss(opts, strat, fed.Train, counts, flCfg, builder, nn.BCEWithLogits{})
		if err != nil {
			return nil, fmt.Errorf("table6 %s: %w", strat.Name(), err)
		}
		net := srv.GlobalNet()
		// Per-device-type averaged precision.
		var aps []float64
		for d := 0; d < cfg.NumDeviceTypes; d++ {
			scores, labels := metrics.MultiLabelScores(net, fed.Test[d], 8)
			aps = append(aps, metrics.MeanAveragePrecision(scores, labels)*100)
		}
		res.Rows = append(res.Rows, struct {
			Method   string
			MeanAP   float64
			Variance float64
		}{strat.Name(), metrics.Mean(aps), metrics.Variance(aps)})
	}
	return res, nil
}
