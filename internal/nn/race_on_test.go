//go:build race

package nn

// raceEnabled reports a -race build: sync.Pool intentionally drops items at
// random under the race detector, so AllocsPerRun assertions on pooled hot
// paths are nondeterministic and must be skipped.
const raceEnabled = true
