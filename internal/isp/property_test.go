package isp

import (
	"testing"
	"testing/quick"

	"heteroswitch/internal/frand"
)

// Property: the full baseline pipeline keeps every output value in [0,1]
// and preserves geometry, for arbitrary random scenes.
func TestPipelineRangeProperty(t *testing.T) {
	pipe := Baseline()
	f := func(seed uint16) bool {
		r := frand.New(uint64(seed))
		im := NewImage(16, 16)
		for i := range im.Pix {
			im.Pix[i] = r.Float64()
		}
		raw := Mosaic(im, RGGB)
		out, err := pipe.Process(raw)
		if err != nil || out.W != 16 || out.H != 16 {
			return false
		}
		for _, v := range out.Pix {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: gray-world WB is idempotent — applying it twice equals once
// (the second pass sees already-equalized channel means).
func TestGrayWorldIdempotentProperty(t *testing.T) {
	f := func(seed uint16) bool {
		r := frand.New(uint64(seed) + 3)
		im := NewImage(12, 12)
		for i := range im.Pix {
			im.Pix[i] = 0.1 + 0.8*r.Float64()
		}
		once := WhiteBalance(im, WBGrayWorld)
		twice := WhiteBalance(once, WBGrayWorld)
		return twice.MSE(once) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: every demosaicer is deterministic and bounded on random RAW
// frames.
func TestDemosaicBoundedProperty(t *testing.T) {
	f := func(seed uint16, algRaw uint8) bool {
		alg := DemosaicAlg(int(algRaw) % 3)
		r := frand.New(uint64(seed) + 11)
		raw := NewRAW(14, 14, RGGB)
		for i := range raw.Pix {
			raw.Pix[i] = r.Float64()
		}
		a := Demosaic(raw, alg)
		b := Demosaic(raw, alg)
		if a.MSE(b) != 0 {
			return false
		}
		for _, v := range a.Pix {
			if v < -1e-9 || v > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: mosaicing a demosaiced constant frame is lossless (the CFA
// samples of a constant image survive the roundtrip exactly).
func TestMosaicDemosaicConstantFixpoint(t *testing.T) {
	f := func(rv, gv, bv uint8) bool {
		im := NewImage(8, 8)
		cols := [3]float64{float64(rv) / 255, float64(gv) / 255, float64(bv) / 255}
		for i := 0; i < 64; i++ {
			for c := 0; c < 3; c++ {
				im.Pix[i*3+c] = cols[c]
			}
		}
		raw := Mosaic(im, RGGB)
		rec := Demosaic(raw, DemosaicPPG)
		raw2 := Mosaic(rec, RGGB)
		for i := range raw.Pix {
			if diff := raw.Pix[i] - raw2.Pix[i]; diff > 1e-9 || diff < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
