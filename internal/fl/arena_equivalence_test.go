package fl

import (
	"testing"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/tensor"
)

// arenaTestNet builds the small conv net used by the arena A/B tests.
func arenaTestNet(seed uint64) *nn.Network {
	r := frand.New(seed)
	return nn.NewNetwork(
		nn.NewConv2D(r, 1, 4, 3, 1, 1, 1),
		nn.NewBatchNorm2D(4),
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2),
		nn.NewFlatten(),
		nn.NewDense(r, 4*4*4, 8),
		nn.NewHardSwish(),
		nn.NewDense(r, 8, 3),
	)
}

func arenaTestData(seed uint64, n int) *dataset.Dataset {
	r := frand.New(seed)
	ds := &dataset.Dataset{NumClasses: 3}
	for i := 0; i < n; i++ {
		ds.Samples = append(ds.Samples, dataset.Sample{
			X: tensor.Randn(r, 0.5, 1, 8, 8), Label: i % 3,
		})
	}
	return ds
}

// The acceptance criterion of the zero-allocation hot path: training with
// the arena enabled (default) must produce bit-identical weights to training
// with the arena disabled — same ops, same order, just recycled buffers.
// 22 samples against batch size 8 leaves a short tail batch, so the arena
// recycles across two tensor shapes per epoch.
func TestTrainLocalArenaBitIdenticalWeights(t *testing.T) {
	cfg := Config{
		Rounds: 1, ClientsPerRound: 1, BatchSize: 8, LocalEpochs: 3,
		LR: 0.05, Momentum: 0.9, WeightDecay: 1e-4, Seed: 1,
	}
	ds := arenaTestData(21, 22)

	withArena := arenaTestNet(9)
	noArena := arenaTestNet(9)
	noArena.SetArena(nil)

	lossA := TrainLocal(withArena, ds, cfg, nn.SoftmaxCrossEntropy{}, frand.New(4), nil, nil)
	lossB := TrainLocal(noArena, ds, cfg, nn.SoftmaxCrossEntropy{}, frand.New(4), nil, nil)
	if lossA != lossB {
		t.Fatalf("train losses diverged: %v (arena) vs %v (no arena)", lossA, lossB)
	}

	wa, wb := withArena.Snapshot(), noArena.Snapshot()
	for i := range wa.Params {
		if !wa.Params[i].AllClose(wb.Params[i], 0) {
			t.Fatalf("param %d not bit-identical with arena enabled", i)
		}
	}
	for i := range wa.States {
		if !wa.States[i].AllClose(wb.States[i], 0) {
			t.Fatalf("state %d not bit-identical with arena enabled", i)
		}
	}
}

// Same criterion on the multi-label path (dense targets through
// BCEWithLogits and the pooled y-buffer in batchScratch).
func TestTrainLocalArenaBitIdenticalMultiLabel(t *testing.T) {
	cfg := Config{
		Rounds: 1, ClientsPerRound: 1, BatchSize: 4, LocalEpochs: 2,
		LR: 0.05, Seed: 1,
	}
	r := frand.New(31)
	ds := &dataset.Dataset{NumClasses: 3}
	for i := 0; i < 10; i++ {
		multi := make([]float32, 3)
		multi[i%3] = 1
		ds.Samples = append(ds.Samples, dataset.Sample{
			X: tensor.Randn(r, 0.5, 1, 8, 8), Label: -1, Multi: multi,
		})
	}

	withArena := arenaTestNet(13)
	noArena := arenaTestNet(13)
	noArena.SetArena(nil)
	TrainLocal(withArena, ds, cfg, nn.BCEWithLogits{}, frand.New(6), nil, nil)
	TrainLocal(noArena, ds, cfg, nn.BCEWithLogits{}, frand.New(6), nil, nil)

	wa, wb := withArena.Snapshot(), noArena.Snapshot()
	for i := range wa.Params {
		if !wa.Params[i].AllClose(wb.Params[i], 0) {
			t.Fatalf("param %d not bit-identical on multi-label path", i)
		}
	}
}

// EvalLoss on the pooled scratch path must agree exactly with a network
// running without any arena.
func TestEvalLossArenaBitIdentical(t *testing.T) {
	ds := arenaTestData(41, 11)
	withArena := arenaTestNet(15)
	noArena := arenaTestNet(15)
	noArena.SetArena(nil)
	la := EvalLoss(withArena, nn.SoftmaxCrossEntropy{}, ds, 4)
	lb := EvalLoss(noArena, nn.SoftmaxCrossEntropy{}, ds, 4)
	if la != lb {
		t.Fatalf("EvalLoss diverged: %v (arena) vs %v (no arena)", la, lb)
	}
}

// A reset accumulator must behave exactly like a freshly constructed one —
// the contract that lets the server pool model-sized float64 sum buffers
// across rounds.
func TestFedAvgAccumulatorResetMatchesFresh(t *testing.T) {
	r := frand.New(77)
	round1 := randResults(r, 5, 12)
	round2 := randResults(r, 7, 12)
	global := round1[0].Weights.Zero()

	pooled := FedAvg{}.NewAccumulator(global, Default())
	for _, res := range round1 {
		pooled.Accumulate(res)
	}
	_ = pooled.Finalize()

	ra, ok := pooled.(ResettableAccumulator)
	if !ok {
		t.Fatal("FedAvg accumulator must be resettable")
	}
	ra.Reset(global, Default())
	for _, res := range round2 {
		ra.Accumulate(res)
	}
	got := ra.Finalize()

	fresh := FedAvg{}.NewAccumulator(global, Default())
	for _, res := range round2 {
		fresh.Accumulate(res)
	}
	want := fresh.Finalize()

	for i := range want.Params {
		if !got.Params[i].AllClose(want.Params[i], 0) {
			t.Fatalf("param %d: reset accumulator diverged from fresh one", i)
		}
	}
	for i := range want.States {
		if !got.States[i].AllClose(want.States[i], 0) {
			t.Fatalf("state %d: reset accumulator diverged from fresh one", i)
		}
	}
}

// A reset-to-empty accumulator must finalize to the (new) global weights.
func TestResetAccumulatorEmptyRound(t *testing.T) {
	global := nn.Weights{Params: []*tensor.Tensor{tensor.Full(3, 4)}}
	acc := FedAvg{}.NewAccumulator(global, Default())
	acc.Accumulate(ClientResult{
		NumSamples: 2,
		Weights:    nn.Weights{Params: []*tensor.Tensor{tensor.Full(9, 4)}},
	})
	_ = acc.Finalize()
	next := nn.Weights{Params: []*tensor.Tensor{tensor.Full(5, 4)}}
	acc.(ResettableAccumulator).Reset(next, Default())
	out := acc.Finalize()
	if !out.Params[0].AllClose(next.Params[0], 0) {
		t.Fatal("reset accumulator with no results did not return the new global weights")
	}
}
