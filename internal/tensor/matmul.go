package tensor

import (
	"fmt"
	"sync"

	"heteroswitch/internal/parallel"
)

// matmul kernel block size, chosen to keep a block of B rows of both
// operands inside L1 cache for float32 data.
const mmBlock = 64

// All kernels below preserve a strict per-accumulation-target operation
// order: for any output element, partial products are added in ascending
// inner-dimension order, exactly as the pre-tiled scalar kernels did. The
// register tiling (4-wide j unrolling) only changes WHICH targets are in
// flight at once, never the order of adds into one target, so results are
// bit-identical to the straightforward loops and independent of tiling.
//
// The *P variants additionally split the output rows (the M dimension, or
// the transposed-A result's row dimension) into parallel.Chunks-fixed
// contiguous blocks, one goroutine per block. Every output element is still
// computed entirely by one goroutine running the serial inner loops, so the
// per-target operation order — and therefore the result — is bit-identical
// to the serial kernels at every budget. Budget 1 (or a matrix too small
// for its grain) takes the serial code path byte-for-byte.

// MatMul returns a @ b for 2-D tensors a[m,k] and b[k,n] as a new [m,n]
// tensor.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-D tensors, have %v @ %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", k, k2))
	}
	out := New(m, n)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a @ b, overwriting out. out must be [m,n].
func MatMulInto(out, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto out shape %v, want [%d %d]", out.shape, m, n))
	}
	MatMulSlices(out.data, a.data, b.data, m, k, n)
}

// MatMulAccInto computes out += a @ b without zeroing out first.
func MatMulAccInto(out, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || out.shape[0] != m || out.shape[1] != n {
		panic("tensor: MatMulAccInto shape mismatch")
	}
	matmulAcc(out.data, a.data, b.data, m, k, n)
}

// MatMulSlices computes out = a @ b on raw row-major slices: out[m,n],
// a[m,k], b[k,n]. It is the header-free entry point used by layers that
// multiply sub-slices of larger buffers (e.g. grouped convolution) on the
// per-batch hot path, where wrapping every operand in a Tensor would
// allocate.
func MatMulSlices(out, a, b []float32, m, k, n int) {
	clear(out[:m*n])
	matmulAcc(out, a, b, m, k, n)
}

// matmulAcc is the blocked, register-tiled kernel: out[m,n] += a[m,k] @
// b[k,n], all row-major flat slices. Within each k-block, four output
// columns are accumulated in registers across the whole block, quartering
// the load/store traffic on out relative to a scalar j sweep.
func matmulAcc(out, a, b []float32, m, k, n int) {
	for i0 := 0; i0 < m; i0 += mmBlock {
		iMax := min(i0+mmBlock, m)
		for k0 := 0; k0 < k; k0 += mmBlock {
			kMax := min(k0+mmBlock, k)
			for i := i0; i < iMax; i++ {
				arow := a[i*k+k0 : i*k+kMax]
				orow := out[i*n : i*n+n]
				j := 0
				for ; j+4 <= n; j += 4 {
					c0, c1, c2, c3 := orow[j], orow[j+1], orow[j+2], orow[j+3]
					bi := k0*n + j
					for _, av := range arow {
						if av != 0 {
							bq := b[bi : bi+4 : bi+4]
							c0 += av * bq[0]
							c1 += av * bq[1]
							c2 += av * bq[2]
							c3 += av * bq[3]
						}
						bi += n
					}
					orow[j], orow[j+1], orow[j+2], orow[j+3] = c0, c1, c2, c3
				}
				for ; j < n; j++ {
					c := orow[j]
					bi := k0*n + j
					for _, av := range arow {
						if av != 0 {
							c += av * b[bi]
						}
						bi += n
					}
					orow[j] = c
				}
			}
		}
	}
}

// MatMulTransB returns a @ bᵀ for a[m,k] and b[n,k] as [m,n]. This avoids
// materializing the transpose in backward passes.
func MatMulTransB(a, b *Tensor) *Tensor {
	m, n := transBDims(a, b)
	out := New(m, n)
	matMulTransB(out.data, a.data, b.data, m, a.shape[1], n, false)
	return out
}

// MatMulTransBInto computes out = a @ bᵀ into the existing [m,n] tensor.
func MatMulTransBInto(out, a, b *Tensor) {
	m, n := transBDims(a, b)
	if out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransBInto out shape %v, want [%d %d]", out.shape, m, n))
	}
	matMulTransB(out.data, a.data, b.data, m, a.shape[1], n, false)
}

// MatMulTransBAccInto computes out += a @ bᵀ for a[m,k] and b[n,k] into the
// existing [m,n] tensor — the allocation-free weight-gradient accumulation
// for convolution (dW += dy @ colᵀ) on the per-batch training hot path.
func MatMulTransBAccInto(out, a, b *Tensor) {
	m, n := transBDims(a, b)
	if out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransBAccInto out shape %v, want [%d %d]", out.shape, m, n))
	}
	matMulTransB(out.data, a.data, b.data, m, a.shape[1], n, true)
}

// MatMulTransBAccSlices is MatMulTransBAccInto on raw row-major slices:
// out[m,n] += a[m,k] @ b[n,k]ᵀ.
func MatMulTransBAccSlices(out, a, b []float32, m, k, n int) {
	matMulTransB(out, a, b, m, k, n, true)
}

func transBDims(a, b *Tensor) (m, n int) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMulTransB needs 2-D tensors")
	}
	if a.shape[1] != b.shape[1] {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims %d != %d", a.shape[1], b.shape[1]))
	}
	return a.shape[0], b.shape[0]
}

// matMulTransB computes out[m,n] (+)= a[m,k] @ b[n,k]ᵀ. Each output element
// is a dot product of two contiguous rows; four dot products run at once so
// every load of a's row feeds four accumulators.
func matMulTransB(out, a, b []float32, m, k, n int, acc bool) {
	for i := 0; i < m; i++ {
		arow := a[i*k : i*k+k]
		orow := out[i*n : i*n+n]
		j := 0
		for ; j+4 <= n; j += 4 {
			b0 := b[j*k : j*k+k]
			b1 := b[(j+1)*k : (j+2)*k]
			b2 := b[(j+2)*k : (j+3)*k]
			b3 := b[(j+3)*k : (j+4)*k]
			var s0, s1, s2, s3 float32
			for x, av := range arow {
				s0 += av * b0[x]
				s1 += av * b1[x]
				s2 += av * b2[x]
				s3 += av * b3[x]
			}
			if acc {
				orow[j] += s0
				orow[j+1] += s1
				orow[j+2] += s2
				orow[j+3] += s3
			} else {
				orow[j], orow[j+1], orow[j+2], orow[j+3] = s0, s1, s2, s3
			}
		}
		for ; j < n; j++ {
			brow := b[j*k : j*k+k]
			var s float32
			for x, av := range arow {
				s += av * brow[x]
			}
			if acc {
				orow[j] += s
			} else {
				orow[j] = s
			}
		}
	}
}

// MatMulTransA returns aᵀ @ b for a[k,m] and b[k,n] as [m,n], used for
// weight-gradient computation (xᵀ @ dy).
func MatMulTransA(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMulTransA needs 2-D tensors")
	}
	out := New(a.shape[1], b.shape[1])
	MatMulTransAAccInto(out, a, b)
	return out
}

// MatMulTransAAccInto computes out += aᵀ @ b for a[k,m] and b[k,n] into the
// existing [m,n] tensor — the allocation-free weight-gradient accumulation
// (Grad += xᵀ @ dy) on the per-batch training hot path.
func MatMulTransAAccInto(out, a, b *Tensor) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMulTransAAccInto needs 2-D tensors")
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransAAccInto inner dims %d != %d", k, k2))
	}
	if out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransAAccInto out shape %v, want [%d %d]", out.shape, m, n))
	}
	MatMulTransAAccSlices(out.data, a.data, b.data, k, m, n)
}

// MatMulTransAAccSlices is MatMulTransAAccInto on raw row-major slices:
// out[m,n] += a[k,m]ᵀ @ b[k,n]. Convolution's input-gradient lowering
// (dcol += Wᵀ @ dy) uses it directly, instead of materializing the weight
// transpose per sample.
func MatMulTransAAccSlices(out, a, b []float32, k, m, n int) {
	matMulTransAAccRange(out, a, b, k, m, n, 0, m)
}

// matMulTransAAccRange is MatMulTransAAccSlices restricted to output rows
// [i0, i1) — the row-parallel building block. out is still indexed with full
// row stride n from row 0.
func matMulTransAAccRange(out, a, b []float32, k, m, n, i0, i1 int) {
	// out[i,j] += Σ_x a[x,i]·b[x,j], with x ascending per target and four
	// output columns held in registers across each x block. Blocking over x
	// keeps the strided a column (stride m) and the touched b rows resident
	// while the j sweep re-reads them; per-target add order stays x
	// ascending across blocks, so results match the scalar loop exactly.
	for x0 := 0; x0 < k; x0 += mmBlock {
		xMax := min(x0+mmBlock, k)
		for i := i0; i < i1; i++ {
			orow := out[i*n : i*n+n]
			j := 0
			for ; j+4 <= n; j += 4 {
				c0, c1, c2, c3 := orow[j], orow[j+1], orow[j+2], orow[j+3]
				ai, bi := x0*m+i, x0*n+j
				for x := x0; x < xMax; x++ {
					if av := a[ai]; av != 0 {
						bq := b[bi : bi+4 : bi+4]
						c0 += av * bq[0]
						c1 += av * bq[1]
						c2 += av * bq[2]
						c3 += av * bq[3]
					}
					ai += m
					bi += n
				}
				orow[j], orow[j+1], orow[j+2], orow[j+3] = c0, c1, c2, c3
			}
			for ; j < n; j++ {
				c := orow[j]
				ai, bi := x0*m+i, x0*n+j
				for x := x0; x < xMax; x++ {
					if av := a[ai]; av != 0 {
						c += av * b[bi]
					}
					ai += m
					bi += n
				}
				orow[j] = c
			}
		}
	}
}

// Parallel kernel entry points ------------------------------------------------
//
// Each *P function is the corresponding serial kernel parallelized over
// output rows under an intra-op budget: par is the maximum number of chunks
// in flight (1 ⇒ the serial kernel, byte for byte). Work-based grains keep
// small matmuls serial, so callers can pass their budget unconditionally.

// mmGrain converts one output row's work (k·n multiply-adds) into the
// minimum rows per parallel chunk.
func mmGrain(k, n int) int { return parallel.GrainFor(k * n) }

// RowEpilogue post-processes completed output rows of a matmul in place —
// bias adds and activation functions fused into the kernel call. The *PEp
// kernels apply it INSIDE each parallel chunk, right after the chunk's rows
// are computed, so the epilogue runs on cache-warm data and the output is
// never re-traversed by a separate layer pass. Apply receives the global row
// index r and the row slice out[r*n : (r+1)*n].
//
// Apply must be safe for concurrent calls on distinct rows (chunks run in
// parallel): implementations read shared state but mutate only the row.
// Because the epilogue is row-local, fused results are bit-identical at
// every budget, exactly like the unfused kernels.
type RowEpilogue interface {
	Apply(row []float32, r int)
}

// mmTask is the pooled parallel.Runner behind the *P kernels; recycling it
// keeps the parallel dispatch path free of steady-state allocation.
type mmTask struct {
	kind      mmKind
	out, a, b []float32
	k, n, m   int
	acc       bool
	ep        RowEpilogue
}

type mmKind uint8

const (
	mmAB     mmKind = iota // out[rows] = a[rows] @ b
	mmTransB               // out[rows] (+)= a[rows] @ bᵀ
	mmTransA               // out[rows] += aᵀ @ b, rows of the result
)

var mmTaskPool = sync.Pool{New: func() any { return new(mmTask) }}

// Run implements parallel.Runner on a row range of the output.
func (t *mmTask) Run(_, lo, hi int) {
	switch t.kind {
	case mmAB:
		o := t.out[lo*t.n : hi*t.n]
		if !t.acc {
			clear(o)
		}
		matmulAcc(o, t.a[lo*t.k:hi*t.k], t.b, hi-lo, t.k, t.n)
	case mmTransB:
		matMulTransB(t.out[lo*t.n:hi*t.n], t.a[lo*t.k:hi*t.k], t.b, hi-lo, t.k, t.n, t.acc)
	case mmTransA:
		matMulTransAAccRange(t.out, t.a, t.b, t.k, t.m, t.n, lo, hi)
	}
	if t.ep != nil {
		applyEpilogue(t.ep, t.out, t.n, lo, hi)
	}
}

// applyEpilogue runs ep over output rows [lo, hi).
func applyEpilogue(ep RowEpilogue, out []float32, n, lo, hi int) {
	for r := lo; r < hi; r++ {
		ep.Apply(out[r*n:(r+1)*n], r)
	}
}

func runMMTask(par, rows int, fill mmTask) {
	t := mmTaskPool.Get().(*mmTask)
	*t = fill
	parallel.Run(par, rows, mmGrain(t.k, t.n), t)
	*t = mmTask{} // drop slice references before pooling
	mmTaskPool.Put(t)
}

// MatMulSlicesP is MatMulSlices with output rows computed in parallel under
// the given intra-op budget.
func MatMulSlicesP(par int, out, a, b []float32, m, k, n int) {
	if par <= 1 {
		MatMulSlices(out, a, b, m, k, n)
		return
	}
	runMMTask(par, m, mmTask{kind: mmAB, out: out, a: a, b: b, k: k, n: n})
}

// MatMulIntoP is MatMulInto with output rows computed in parallel under the
// given intra-op budget.
func MatMulIntoP(par int, out, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulIntoP out shape %v, want [%d %d]", out.shape, m, n))
	}
	MatMulSlicesP(par, out.data, a.data, b.data, m, k, n)
}

// MatMulTransBIntoP is MatMulTransBInto with output rows computed in
// parallel under the given intra-op budget.
func MatMulTransBIntoP(par int, out, a, b *Tensor) {
	m, n := transBDims(a, b)
	if out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransBIntoP out shape %v, want [%d %d]", out.shape, m, n))
	}
	k := a.shape[1]
	if par <= 1 {
		matMulTransB(out.data, a.data, b.data, m, k, n, false)
		return
	}
	runMMTask(par, m, mmTask{kind: mmTransB, out: out.data, a: a.data, b: b.data, k: k, n: n})
}

// MatMulTransBAccSlicesP is MatMulTransBAccSlices with output rows computed
// in parallel under the given intra-op budget.
func MatMulTransBAccSlicesP(par int, out, a, b []float32, m, k, n int) {
	if par <= 1 {
		matMulTransB(out, a, b, m, k, n, true)
		return
	}
	runMMTask(par, m, mmTask{kind: mmTransB, out: out, a: a, b: b, k: k, n: n, acc: true})
}

// MatMulTransAAccIntoP is MatMulTransAAccInto with the result's rows
// computed in parallel under the given intra-op budget.
func MatMulTransAAccIntoP(par int, out, a, b *Tensor) {
	if par <= 1 {
		MatMulTransAAccInto(out, a, b)
		return
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransAAccIntoP inner dims %d != %d", k, k2))
	}
	if out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransAAccIntoP out shape %v, want [%d %d]", out.shape, m, n))
	}
	MatMulTransAAccSlicesP(par, out.data, a.data, b.data, k, m, n)
}

// MatMulTransAAccSlicesP is MatMulTransAAccSlices with the result's rows
// computed in parallel under the given intra-op budget. The per-row work is
// k·n multiply-adds (a full strided column of a), the same grain unit as the
// other kernels.
func MatMulTransAAccSlicesP(par int, out, a, b []float32, k, m, n int) {
	if par <= 1 {
		matMulTransAAccRange(out, a, b, k, m, n, 0, m)
		return
	}
	runMMTask(par, m, mmTask{kind: mmTransA, out: out, a: a, b: b, k: k, m: m, n: n})
}

// Epilogue-fused kernel entry points ------------------------------------------
//
// The *PEp kernels are the inference fast path's fused matmuls: out = a @ b
// with ep applied to each completed output row inside the chunk that computed
// it. Bias adds and activations therefore cost one extra sweep over rows that
// are still cache-resident, instead of whole separate layer passes over the
// output tensor. A nil ep degrades to the plain kernel.
//
// These entry points — and only these — are the TOLERANCE tier: they
// dispatch through the process-wide Backend (see backend.go) and may run
// the packed GEBP kernel instead of the oracle kernels. Every unfused entry
// point above stays on the oracle kernels unconditionally.

// MatMulSlicesPEp is MatMulSlicesP with a fused row epilogue.
func MatMulSlicesPEp(par int, out, a, b []float32, m, k, n int, ep RowEpilogue) {
	if usePacked(m, k, n) {
		matMulPackedEp(par, out, a, b, m, k, n, false, ep)
		return
	}
	if par <= 1 {
		MatMulSlices(out, a, b, m, k, n)
		if ep != nil {
			applyEpilogue(ep, out, n, 0, m)
		}
		return
	}
	runMMTask(par, m, mmTask{kind: mmAB, out: out, a: a, b: b, k: k, n: n, ep: ep})
}

// MatMulIntoPEp is MatMulIntoP with a fused row epilogue.
func MatMulIntoPEp(par int, out, a, b *Tensor, ep RowEpilogue) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulIntoPEp out shape %v, want [%d %d]", out.shape, m, n))
	}
	MatMulSlicesPEp(par, out.data, a.data, b.data, m, k, n, ep)
}

// MatMulAccSlicesPEp is MatMulSlicesPEp without the initial clear:
// out[m,n] += a[m,k] @ b[k,n], ep fused per completed row chunk. The frozen
// Residual skip-path fold uses it to add the projected input onto the body
// output in one pass.
func MatMulAccSlicesPEp(par int, out, a, b []float32, m, k, n int, ep RowEpilogue) {
	if usePacked(m, k, n) {
		matMulPackedEp(par, out, a, b, m, k, n, true, ep)
		return
	}
	if par <= 1 {
		matmulAcc(out, a, b, m, k, n)
		if ep != nil {
			applyEpilogue(ep, out, n, 0, m)
		}
		return
	}
	runMMTask(par, m, mmTask{kind: mmAB, acc: true, out: out, a: a, b: b, k: k, n: n, ep: ep})
}
