package nn

import (
	"heteroswitch/internal/tensor"
)

// SGD is stochastic gradient descent with optional momentum and decoupled
// L2 weight decay (decay is skipped for params flagged NoDecay).
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64
	velocity    map[*Param]*tensor.Tensor
}

// NewSGD builds an SGD optimizer.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay,
		velocity: make(map[*Param]*tensor.Tensor)}
}

// Step applies one update to every parameter using its accumulated gradient,
// then zeroes the gradients.
func (o *SGD) Step(params []*Param) {
	lr := float32(o.LR)
	mom := float32(o.Momentum)
	wd := float32(o.WeightDecay)
	for _, p := range params {
		g := p.Grad
		if wd != 0 && !p.NoDecay {
			g.Axpy(wd, p.W)
		}
		if mom != 0 {
			v, ok := o.velocity[p]
			if !ok {
				v = tensor.New(p.W.Shape()...)
				o.velocity[p] = v
			}
			v.Scale(mom)
			v.Axpy(1, g)
			p.W.Axpy(-lr, v)
		} else {
			p.W.Axpy(-lr, g)
		}
		g.Zero()
	}
}

// Reset clears momentum state (call when reusing an optimizer across
// federated clients so one client's momentum does not leak into another's).
func (o *SGD) Reset() {
	o.velocity = make(map[*Param]*tensor.Tensor)
}

// GradStep applies a raw gradient step w -= lr*adjust(grad) with a caller
// -supplied per-parameter adjustment, used by SCAFFOLD's variance-reduced
// update. adjust receives the parameter index and its gradient tensor and
// may modify the gradient in place before the step.
func GradStep(params []*Param, lr float64, adjust func(i int, grad *tensor.Tensor)) {
	l := float32(lr)
	for i, p := range params {
		if adjust != nil {
			adjust(i, p.Grad)
		}
		p.W.Axpy(-l, p.Grad)
		p.Grad.Zero()
	}
}
