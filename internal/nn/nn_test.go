package nn

import (
	"bytes"
	"math"
	"testing"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/tensor"
)

func smallNet(seed uint64) *Network {
	r := frand.New(seed)
	return NewNetwork(
		NewConv2D(r, 1, 4, 3, 1, 1, 1),
		NewBatchNorm2D(4),
		NewReLU(),
		NewGlobalAvgPool(),
		NewDense(r, 4, 3),
	)
}

func TestNetworkShapes(t *testing.T) {
	net := smallNet(1)
	r := frand.New(2)
	x := tensor.Randn(r, 1, 5, 1, 8, 8)
	y := net.Forward(x, false)
	if y.Dim(0) != 5 || y.Dim(1) != 3 {
		t.Fatalf("output shape %v", y.Shape())
	}
}

func TestSnapshotLoadRoundtrip(t *testing.T) {
	a := smallNet(1)
	b := smallNet(99) // different init
	w := a.Snapshot()
	if err := b.LoadWeights(w); err != nil {
		t.Fatal(err)
	}
	r := frand.New(3)
	x := tensor.Randn(r, 1, 2, 1, 8, 8)
	ya := a.Forward(x, false)
	yb := b.Forward(x, false)
	if !ya.AllClose(yb, 1e-6) {
		t.Fatal("networks with identical weights disagree")
	}
}

func TestSnapshotIsDetached(t *testing.T) {
	net := smallNet(1)
	w := net.Snapshot()
	net.Params()[0].W.Data()[0] += 100
	if w.Params[0].Data()[0] == net.Params()[0].W.Data()[0] {
		t.Fatal("snapshot aliases live parameters")
	}
}

func TestLoadWeightsShapeMismatch(t *testing.T) {
	net := smallNet(1)
	w := net.Snapshot()
	w.Params = w.Params[:1]
	if err := net.LoadWeights(w); err == nil {
		t.Fatal("expected error for truncated weights")
	}
}

func TestWeightsAxpyLerp(t *testing.T) {
	net := smallNet(1)
	w := net.Snapshot()
	z := w.Zero()
	z.Axpy(2, w)
	for i, p := range z.Params {
		want := w.Params[i].Scaled(2)
		if !p.AllClose(want, 1e-5) {
			t.Fatalf("Axpy param %d mismatch", i)
		}
	}
	a := w.Clone()
	a.Lerp(1, z) // a becomes z == 2w
	for i, p := range a.Params {
		if !p.AllClose(w.Params[i].Scaled(2), 1e-5) {
			t.Fatalf("Lerp param %d mismatch", i)
		}
	}
}

func TestWeightsSubAndL2(t *testing.T) {
	net := smallNet(1)
	w := net.Snapshot()
	d := w.Sub(w)
	for _, p := range d.Params {
		if p.L2Norm() != 0 {
			t.Fatal("w - w != 0")
		}
	}
	if w.L2DistSq(w) != 0 {
		t.Fatal("L2DistSq(w,w) != 0")
	}
	w2 := w.Clone()
	w2.Params[0].AddScalar(1)
	want := float64(w.Params[0].Size())
	if math.Abs(w.L2DistSq(w2)-want) > 1e-3 {
		t.Fatalf("L2DistSq = %v, want %v", w.L2DistSq(w2), want)
	}
}

func TestWeightsSerializationRoundtrip(t *testing.T) {
	net := smallNet(5)
	w := net.Snapshot()
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWeights(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Params) != len(w.Params) || len(got.States) != len(w.States) {
		t.Fatal("tensor counts differ after roundtrip")
	}
	for i := range w.Params {
		if !got.Params[i].AllClose(w.Params[i], 0) {
			t.Fatalf("param %d differs", i)
		}
	}
}

func TestSoftmaxCrossEntropyKnownValue(t *testing.T) {
	logits := tensor.FromSlice([]float32{0, 0, 0}, 1, 3)
	loss, grad := SoftmaxCrossEntropy{}.Eval(logits, ClassTarget([]int{1}))
	if math.Abs(loss-math.Log(3)) > 1e-6 {
		t.Fatalf("uniform logits loss = %v, want ln3", loss)
	}
	// grad = p - onehot = (1/3, 1/3-1, 1/3)
	want := []float32{1.0 / 3, 1.0/3 - 1, 1.0 / 3}
	for i, v := range want {
		if math.Abs(float64(grad.Data()[i]-v)) > 1e-6 {
			t.Fatalf("grad[%d] = %v, want %v", i, grad.Data()[i], v)
		}
	}
}

func TestSoftmaxCrossEntropyGradSumsToZero(t *testing.T) {
	r := frand.New(7)
	logits := tensor.Randn(r, 2, 4, 6)
	_, grad := SoftmaxCrossEntropy{}.Eval(logits, ClassTarget([]int{0, 5, 2, 3}))
	for i := 0; i < 4; i++ {
		var s float64
		for j := 0; j < 6; j++ {
			s += float64(grad.At(i, j))
		}
		if math.Abs(s) > 1e-5 {
			t.Fatalf("row %d grad sum = %v, want 0", i, s)
		}
	}
}

func TestBCEWithLogitsMatchesManual(t *testing.T) {
	logits := tensor.FromSlice([]float32{2, -1}, 1, 2)
	target := tensor.FromSlice([]float32{1, 0}, 1, 2)
	loss, grad := BCEWithLogits{}.Eval(logits, DenseTarget(target))
	p0 := 1 / (1 + math.Exp(-2.0))
	p1 := 1 / (1 + math.Exp(1.0))
	want := (-math.Log(p0) - math.Log(1-p1)) / 2
	if math.Abs(loss-want) > 1e-6 {
		t.Fatalf("BCE loss = %v, want %v", loss, want)
	}
	if math.Abs(float64(grad.At(0, 0))-(p0-1)/2) > 1e-6 {
		t.Fatalf("BCE grad wrong: %v", grad.Data())
	}
}

func TestMSEKnownValue(t *testing.T) {
	pred := tensor.FromSlice([]float32{1, 3}, 2, 1)
	target := tensor.FromSlice([]float32{0, 0}, 2, 1)
	loss, grad := MSE{}.Eval(pred, DenseTarget(target))
	if math.Abs(loss-5) > 1e-6 { // (1+9)/2
		t.Fatalf("MSE = %v, want 5", loss)
	}
	if math.Abs(float64(grad.At(0, 0))-1) > 1e-6 || math.Abs(float64(grad.At(1, 0))-3) > 1e-6 {
		t.Fatalf("MSE grad = %v", grad.Data())
	}
}

// numericLossGrad checks loss gradients against finite differences.
func TestLossGradNumeric(t *testing.T) {
	r := frand.New(11)
	logits := tensor.Randn(r, 1, 3, 5)
	labels := []int{1, 4, 0}
	_, grad := SoftmaxCrossEntropy{}.Eval(logits, ClassTarget(labels))
	const eps = 1e-3
	for c := 0; c < logits.Size(); c++ {
		orig := logits.Data()[c]
		logits.Data()[c] = orig + eps
		lp, _ := SoftmaxCrossEntropy{}.Eval(logits, ClassTarget(labels))
		logits.Data()[c] = orig - eps
		lm, _ := SoftmaxCrossEntropy{}.Eval(logits, ClassTarget(labels))
		logits.Data()[c] = orig
		numeric := (lp - lm) / (2 * eps)
		if math.Abs(numeric-float64(grad.Data()[c])) > 1e-3 {
			t.Fatalf("CE grad[%d]: numeric %v analytic %v", c, numeric, grad.Data()[c])
		}
	}
}

// TestTrainingReducesLoss is the end-to-end sanity check: a small network
// must be able to fit a tiny synthetic classification problem.
func TestTrainingReducesLoss(t *testing.T) {
	r := frand.New(21)
	net := NewNetwork(
		NewConv2D(r, 1, 6, 3, 1, 1, 1),
		NewBatchNorm2D(6),
		NewReLU(),
		NewGlobalAvgPool(),
		NewDense(r, 6, 2),
	)
	// Class 0: bright top half. Class 1: bright bottom half.
	const n = 20
	x := tensor.New(n, 1, 8, 8)
	labels := make([]int, n)
	for i := 0; i < n; i++ {
		labels[i] = i % 2
		for y := 0; y < 8; y++ {
			for xx := 0; xx < 8; xx++ {
				v := float32(r.Float64() * 0.2)
				if (labels[i] == 0 && y < 4) || (labels[i] == 1 && y >= 4) {
					v += 0.8
				}
				x.Set(v, i, 0, y, xx)
			}
		}
	}
	opt := NewSGD(0.1, 0.9, 0)
	loss0 := 0.0
	var lossN float64
	for epoch := 0; epoch < 30; epoch++ {
		out := net.Forward(x, true)
		loss, grad := SoftmaxCrossEntropy{}.Eval(out, ClassTarget(labels))
		if epoch == 0 {
			loss0 = loss
		}
		lossN = loss
		net.Backward(grad)
		opt.Step(net.Params())
	}
	if lossN > loss0*0.5 {
		t.Fatalf("training failed to reduce loss: %v -> %v", loss0, lossN)
	}
	out := net.Forward(x, false)
	pred := out.ArgMaxRows()
	correct := 0
	for i, p := range pred {
		if p == labels[i] {
			correct++
		}
	}
	if correct < n*8/10 {
		t.Fatalf("train accuracy %d/%d too low", correct, n)
	}
}

func TestSGDWeightDecaySkipsNoDecay(t *testing.T) {
	p1 := &Param{W: tensor.Ones(2), Grad: tensor.New(2)}
	p2 := &Param{W: tensor.Ones(2), Grad: tensor.New(2), NoDecay: true}
	opt := NewSGD(1, 0, 0.1)
	opt.Step([]*Param{p1, p2})
	if p1.W.At(0) >= 1 {
		t.Fatal("weight decay not applied to p1")
	}
	if p2.W.At(0) != 1 {
		t.Fatal("weight decay applied to NoDecay param")
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	p := &Param{W: tensor.New(1), Grad: tensor.New(1)}
	opt := NewSGD(1, 0.5, 0)
	p.Grad.Fill(1)
	opt.Step([]*Param{p}) // v=1, w=-1
	p.Grad.Fill(1)
	opt.Step([]*Param{p}) // v=1.5, w=-2.5
	if math.Abs(float64(p.W.At(0))+2.5) > 1e-6 {
		t.Fatalf("momentum update wrong: w=%v", p.W.At(0))
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	l := NewBatchNorm2D(1)
	r := frand.New(31)
	x := tensor.Randn(r, 1, 8, 1, 4, 4)
	x.AddScalar(5) // mean far from running mean of 0
	_ = l.Forward(x, true)
	yTrain := l.Forward(x, true)
	yEval := l.Forward(x, false)
	// Train mode normalizes to ~zero mean; eval with barely-updated running
	// stats (mean≈ small) must differ noticeably.
	if yTrain.AllClose(yEval, 1e-2) {
		t.Fatal("eval mode appears to use batch statistics")
	}
	if math.Abs(yTrain.Mean()) > 0.2 {
		t.Fatalf("train-mode output mean = %v, want ~0", yTrain.Mean())
	}
}

func TestDropoutTrainEval(t *testing.T) {
	r := frand.New(41)
	l := NewDropout(r.Split(), 0.5)
	x := tensor.Ones(1, 1000)
	yT := l.Forward(x, true)
	zeros := 0
	for _, v := range yT.Data() {
		if v == 0 {
			zeros++
		}
	}
	if zeros < 300 || zeros > 700 {
		t.Fatalf("dropout zeroed %d/1000, want ~500", zeros)
	}
	yE := l.Forward(x, false)
	if !yE.AllClose(x, 0) {
		t.Fatal("dropout active in eval mode")
	}
}

func TestChannelShuffleRoundTrip(t *testing.T) {
	r := frand.New(43)
	x := tensor.Randn(r, 1, 2, 6, 3, 3)
	l := NewChannelShuffle(3)
	y := l.Forward(x, false)
	back := l.Backward(y) // backward applies the inverse permutation
	if !back.AllClose(x, 0) {
		t.Fatal("shuffle backward is not the inverse permutation")
	}
}

func TestNumParamsAndNames(t *testing.T) {
	net := smallNet(1)
	if net.NumParams() == 0 {
		t.Fatal("no params found")
	}
	for _, p := range net.Params() {
		if p.Name == "" {
			t.Fatal("unnamed parameter")
		}
	}
	if net.Name() == "" {
		t.Fatal("empty network name")
	}
}

func BenchmarkForwardSmallCNN(b *testing.B) {
	net := smallNet(1)
	r := frand.New(1)
	x := tensor.Randn(r, 1, 10, 1, 32, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x, false)
	}
}

func BenchmarkTrainStepSmallCNN(b *testing.B) {
	net := smallNet(1)
	r := frand.New(1)
	x := tensor.Randn(r, 1, 10, 1, 32, 32)
	labels := make([]int, 10)
	opt := NewSGD(0.01, 0.9, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := net.Forward(x, true)
		_, grad := SoftmaxCrossEntropy{}.Eval(out, ClassTarget(labels))
		net.Backward(grad)
		opt.Step(net.Params())
	}
}

func TestReshapeLayerRoundtrip(t *testing.T) {
	l := NewReshape(1, 1, 12)
	r := frand.New(1)
	x := tensor.Randn(r, 1, 3, 12)
	y := l.Forward(x, true)
	if y.Dim(0) != 3 || y.Dim(1) != 1 || y.Dim(3) != 12 {
		t.Fatalf("reshape forward %v", y.Shape())
	}
	g := l.Backward(y)
	if g.Dim(0) != 3 || g.Dim(1) != 12 {
		t.Fatalf("reshape backward %v", g.Shape())
	}
}
