package tensor

import (
	"fmt"
	"os"
	"sync/atomic"
)

// Kernel backends & numerics tiers --------------------------------------------
//
// The matmul entry points are split into two numerics tiers:
//
//   - The ORACLE tier: every kernel the training path uses (MatMul*,
//     MatMulTransB*, MatMulTransAAcc*, and their *P row-parallel forms).
//     These always run the serial/parallel register-tiled kernels with a
//     strict per-target ascending-k accumulation order and are bit-exact
//     at every intra-op budget. They never dispatch — the tol-0 training
//     and aggregation reproducibility contracts stand on them.
//
//   - The TOLERANCE tier: the epilogue-fused entry points the frozen
//     inference path compiles to (MatMulSlicesPEp, MatMulIntoPEp,
//     MatMulAccSlicesPEp). These dispatch through the process-wide Backend
//     below and may run the packed, cache-blocked GEBP kernel, whose
//     k-blocking reassociates partial sums. nn.Freeze's contract (≤1e-5
//     max-abs vs the reference forward, identical argmax) absorbs that;
//     BackendSerial forces the oracle kernels and is bit-identical to the
//     pre-dispatch behavior.
//
// A future int8-quantized tier slots into the same seam: a new Backend
// value selected here, with per-op weight re-quantization hooked into
// nn.Freeze's refold pass (the dispatch sees only shapes and the active
// Backend, so a quantized kernel only needs its own packed-weight cache).

// Backend selects the kernel implementation behind the tolerance-tier
// (epilogue-fused) matmul entry points.
type Backend uint8

const (
	// BackendAuto picks per call: the packed GEBP kernel when the matmul is
	// large enough to amortize packing, the oracle kernels otherwise. The
	// default.
	BackendAuto Backend = iota
	// BackendSerial forces the oracle kernels everywhere — bit-identical to
	// the pre-backend behavior at every budget.
	BackendSerial
	// BackendPacked forces the packed kernel for every eligible shape
	// (k ≥ 1); used by the CI backend matrix lane and A/B benchmarks.
	BackendPacked
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendSerial:
		return "serial"
	case BackendPacked:
		return "packed"
	}
	return fmt.Sprintf("Backend(%d)", uint8(b))
}

// ParseBackend maps the -kernel-backend flag values onto a Backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "auto":
		return BackendAuto, nil
	case "serial":
		return BackendSerial, nil
	case "packed":
		return BackendPacked, nil
	}
	return BackendAuto, fmt.Errorf("tensor: unknown kernel backend %q (want auto, serial, or packed)", s)
}

// activeBackend is the process-wide selection; the zero value is
// BackendAuto. Reads sit on the matmul hot path, so it is a lock-free
// atomic like the fused-eval toggle.
var activeBackend atomic.Uint32

// SetBackend selects the kernel backend for every subsequent
// tolerance-tier matmul. Safe for concurrent use; typically set once at
// startup from the -kernel-backend flag.
func SetBackend(b Backend) { activeBackend.Store(uint32(b)) }

// ActiveBackend returns the current process-wide backend selection.
func ActiveBackend() Backend { return Backend(activeBackend.Load()) }

// init honors the HETEROSWITCH_KERNEL_BACKEND environment variable so test
// lanes (the CI backend matrix) can force a backend across whole packages
// without threading flags through every harness.
func init() {
	if v := os.Getenv("HETEROSWITCH_KERNEL_BACKEND"); v != "" {
		if b, err := ParseBackend(v); err == nil {
			SetBackend(b)
		}
	}
}

// Auto-dispatch thresholds: packing B costs k·n writes against m·k·n
// multiply-adds of compute, so the packed kernel needs enough rows to
// amortize the pack (m ≥ packAutoMinRows ⇒ pack ≤ 1/packAutoMinRows of
// compute) and enough total work for the panel loop's bookkeeping to
// vanish. Below either bound the oracle kernels win and auto stays on
// them.
const (
	packAutoMinRows = 8
	packAutoMinWork = 1 << 14
)

// usePacked reports whether a tolerance-tier matmul of the given shape
// dispatches to the packed kernel under the active backend. k == 0 always
// stays on the oracle path (the packed driver's first k-block doubles as
// the output initialization, so it needs at least one block).
func usePacked(m, k, n int) bool {
	if k <= 0 || m <= 0 || n <= 0 {
		return false
	}
	switch ActiveBackend() {
	case BackendPacked:
		return true
	case BackendSerial:
		return false
	default:
		return m >= packAutoMinRows && m*k*n >= packAutoMinWork
	}
}
