package fl

import (
	"math"
	"testing"
	"testing/quick"

	"heteroswitch/internal/frand"
)

// Property: staleness-weighted folds are arrival-order-invariant. For a
// fixed set of (staleness version, delta) pairs — i.e. fixed (result,
// discount) inputs — any two arrival permutations aggregate to the same
// weights far below float32 precision (float64 sums make the order's effect
// double-precision rounding only), mirroring the shard-invariance property
// of the synchronous streaming path.
func TestAsyncWeightedFoldOrderInvariance(t *testing.T) {
	policy := PolynomialStaleness{Alpha: 0.6}
	f := func(seed uint16, kRaw uint8) bool {
		r := frand.New(uint64(seed) + 31)
		k := int(kRaw)%16 + 2
		results := randResults(r, k, 9)
		// Fixed (version, delta) pairs: each result carries a staleness drawn
		// once, so its discount is identical in every arrival order.
		discounts := make([]float64, k)
		for i := range discounts {
			discounts[i] = policy.Weight(r.Intn(6))
		}
		global := results[0].Weights.Zero()

		fold := func(order []int) Weights {
			acc := FedAvg{}.NewAccumulator(global, Default()).(WeightedAccumulator)
			for _, i := range order {
				acc.AccumulateWeighted(results[i], discounts[i])
			}
			return acc.Finalize()
		}
		identity := make([]int, k)
		for i := range identity {
			identity[i] = i
		}
		a := fold(identity)
		b := fold(r.Perm(k))
		for i := range a.Params {
			if !a.Params[i].AllClose(b.Params[i], 1e-6) {
				return false
			}
		}
		for i := range a.States {
			if !a.States[i].AllClose(b.States[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: AccumulateWeighted with scale 1 is bit-identical to Accumulate —
// the identity that makes the zero-staleness async path exactly the sync
// fold.
func TestAccumulateWeightedScaleOneIsAccumulate(t *testing.T) {
	f := func(seed uint16, kRaw uint8) bool {
		r := frand.New(uint64(seed) + 41)
		k := int(kRaw)%12 + 1
		results := randResults(r, k, 7)
		global := results[0].Weights.Zero()
		plain := FedAvg{}.NewAccumulator(global, Default())
		scaled := FedAvg{}.NewAccumulator(global, Default()).(WeightedAccumulator)
		for _, res := range results {
			plain.Accumulate(res)
			scaled.AccumulateWeighted(res, 1)
		}
		a, b := plain.Finalize(), scaled.Finalize()
		for i := range a.Params {
			if !a.Params[i].AllClose(b.Params[i], 0) {
				return false
			}
		}
		for i := range a.States {
			if !a.States[i].AllClose(b.States[i], 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the polynomial policy is a valid discount — Weight(0) = 1,
// positive, and non-increasing in staleness — for arbitrary α ≥ 0.
func TestPolynomialStalenessProperties(t *testing.T) {
	f := func(alphaRaw uint8, sRaw uint8) bool {
		p := PolynomialStaleness{Alpha: float64(alphaRaw) / 32}
		if p.Weight(0) != 1 {
			return false
		}
		s := int(sRaw) % 50
		w0, w1 := p.Weight(s), p.Weight(s+1)
		return w0 > 0 && w1 > 0 && w1 <= w0 && w0 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: a fold scaled by 0 contributes nothing — folding any result at
// scale 0 leaves the aggregate exactly where it was, even when the dropped
// result is diverged (Inf weights would poison the sums as 0·Inf = NaN if
// the fold were merely multiplied through instead of skipped).
func TestZeroScaleFoldIsNoOp(t *testing.T) {
	f := func(seed uint16) bool {
		r := frand.New(uint64(seed) + 53)
		results := randResults(r, 4, 5)
		for i := range results {
			if i%2 == 0 { // the zero-scaled folds carry diverged weights
				results[i].Weights.Params[0].Data()[0] = float32(math.Inf(1))
			}
		}
		global := results[0].Weights.Zero()
		with := FedAvg{}.NewAccumulator(global, Default()).(WeightedAccumulator)
		without := FedAvg{}.NewAccumulator(global, Default()).(WeightedAccumulator)
		for i, res := range results {
			with.AccumulateWeighted(res, float64(i%2)) // every other fold zeroed
			if i%2 == 1 {
				without.AccumulateWeighted(res, 1)
			}
		}
		a, b := with.Finalize(), without.Finalize()
		for i := range a.Params {
			if !a.Params[i].AllClose(b.Params[i], 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
