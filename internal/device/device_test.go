package device

import (
	"math"
	"testing"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/isp"
	"heteroswitch/internal/scene"
)

func TestProfilesTableOne(t *testing.T) {
	ps := Profiles()
	if len(ps) != 9 {
		t.Fatalf("want 9 devices, have %d", len(ps))
	}
	wantShare := map[string]float64{
		"S22": 0.12, "VELVET": 0.02, "Pixel5": 0.01,
		"S9": 0.27, "G7": 0.05, "Pixel2": 0.03,
		"S6": 0.38, "G4": 0.08, "Nexus5X": 0.04,
	}
	var total float64
	seen := map[Vendor]int{}
	for _, p := range ps {
		if w, ok := wantShare[p.Name]; !ok || math.Abs(w-p.MarketShare) > 1e-9 {
			t.Errorf("%s market share %v, want %v", p.Name, p.MarketShare, wantShare[p.Name])
		}
		total += p.MarketShare
		seen[p.Vendor]++
		if err := p.Sensor.Validate(); err != nil {
			t.Errorf("%s sensor invalid: %v", p.Name, err)
		}
	}
	if math.Abs(total-1.0) > 1e-9 {
		t.Errorf("market shares sum to %v, want 1", total)
	}
	for _, v := range []Vendor{VendorSamsung, VendorLG, VendorGoogle} {
		if seen[v] != 3 {
			t.Errorf("vendor %s has %d devices, want 3", v, seen[v])
		}
	}
}

func TestByName(t *testing.T) {
	p, err := ByName("S9")
	if err != nil || p.Name != "S9" {
		t.Fatalf("ByName(S9) = %v, %v", p, err)
	}
	if _, err := ByName("iPhone"); err == nil {
		t.Fatal("expected error for unknown device")
	}
}

func TestDominantDevices(t *testing.T) {
	doms := DominantNames()
	ps := Profiles()
	for _, d := range doms {
		var share float64
		for _, p := range ps {
			if p.Name == d {
				share = p.MarketShare
			}
		}
		// Dominant devices must be in the top-2 by share.
		higher := 0
		for _, p := range ps {
			if p.MarketShare > share {
				higher++
			}
		}
		if higher >= 2 {
			t.Errorf("%s is not a top-2 device by market share", d)
		}
	}
}

func TestTierOrderingHoldsForNoiseAndResolution(t *testing.T) {
	byName := map[string]*Profile{}
	for _, p := range Profiles() {
		byName[p.Name] = p
	}
	triples := [][3]string{
		{"S22", "S9", "S6"},
		{"VELVET", "G7", "G4"},
		{"Pixel5", "Pixel2", "Nexus5X"},
	}
	for _, tr := range triples {
		h, m, l := byName[tr[0]], byName[tr[1]], byName[tr[2]]
		if !(h.Sensor.Resolution > m.Sensor.Resolution && m.Sensor.Resolution > l.Sensor.Resolution) {
			t.Errorf("%v resolution ordering violated", tr)
		}
		if !(h.Sensor.ReadNoise < m.Sensor.ReadNoise && m.Sensor.ReadNoise < l.Sensor.ReadNoise) {
			t.Errorf("%v noise ordering violated", tr)
		}
	}
}

// TestCrossDeviceHeterogeneity is the package's core property: the same
// latent scene produces measurably different captures on different devices,
// and similar devices (Pixel5/Pixel2) are closer to each other than
// cross-vendor pairs (the paper's Table 2 structure).
func TestCrossDeviceHeterogeneity(t *testing.T) {
	gen := scene.NewImageNet12(64)
	sc := gen.Render(4, frand.New(3)) // ambulance: strong color signature
	byName := map[string]*isp.Image{}
	for _, p := range Profiles() {
		im, err := p.CaptureProcessed(sc, frand.New(99))
		if err != nil {
			t.Fatal(err)
		}
		byName[p.Name] = im.Resize(32, 32)
	}
	pixelGap := byName["Pixel5"].MSE(byName["Pixel2"])
	crossGap := byName["Pixel5"].MSE(byName["S6"])
	if pixelGap >= crossGap {
		t.Errorf("Pixel5↔Pixel2 gap (%v) should be smaller than Pixel5↔S6 (%v)", pixelGap, crossGap)
	}
	// And heterogeneity must exist at all.
	if crossGap < 1e-4 {
		t.Errorf("cross-vendor captures suspiciously similar: %v", crossGap)
	}
}

func TestRAWMoreHeterogeneousThanProcessed(t *testing.T) {
	// §3.3: RAW data shows MORE cross-device discrepancy than ISP-processed
	// data, because the ISP (white balance in particular) normalizes sensor
	// differences. Checked in aggregate over all device pairs and several
	// scene classes — individual pairs can cancel by coincidence.
	gen := scene.NewImageNet12(64)
	ps := Profiles()
	var rawMSE, procMSE, rawCast, procCast float64
	pairs := 0
	cast := func(im *isp.Image) [2]float64 {
		m := im.ChannelMeans()
		return [2]float64{math.Log(m[0]/m[1] + 1e-9), math.Log(m[2]/m[1] + 1e-9)}
	}
	for class := 0; class < 12; class += 4 {
		sc := gen.Render(class, frand.New(uint64(class)))
		raws := make([]*isp.Image, len(ps))
		procs := make([]*isp.Image, len(ps))
		for i, p := range ps {
			r, err := p.CaptureRAW(sc, frand.New(uint64(i*100+class)))
			if err != nil {
				t.Fatal(err)
			}
			raws[i] = r.Resize(32, 32)
			pr, err := p.CaptureProcessed(sc, frand.New(uint64(i*100+class)))
			if err != nil {
				t.Fatal(err)
			}
			procs[i] = pr.Resize(32, 32)
		}
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				rawMSE += raws[i].MSE(raws[j])
				procMSE += procs[i].MSE(procs[j])
				ci, cj := cast(raws[i]), cast(raws[j])
				rawCast += math.Abs(ci[0]-cj[0]) + math.Abs(ci[1]-cj[1])
				ci, cj = cast(procs[i]), cast(procs[j])
				procCast += math.Abs(ci[0]-cj[0]) + math.Abs(ci[1]-cj[1])
				pairs++
			}
		}
	}
	if rawMSE <= procMSE {
		t.Errorf("aggregate RAW MSE gap (%v) should exceed processed (%v)", rawMSE/float64(pairs), procMSE/float64(pairs))
	}
	if rawCast <= 5*procCast {
		t.Errorf("RAW color-cast divergence (%v) should dwarf processed (%v): WB is supposed to normalize casts",
			rawCast/float64(pairs), procCast/float64(pairs))
	}
}

func TestCaptureWithPipelineDiffersFromDefault(t *testing.T) {
	gen := scene.NewImageNet12(64)
	sc := gen.Render(7, frand.New(7))
	p, _ := ByName("S9")
	noWB, err := isp.Baseline().Option(isp.StageWB, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.CaptureWithPipeline(sc, isp.Baseline(), frand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.CaptureWithPipeline(sc, noWB, frand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if a.MSE(b) < 1e-6 {
		t.Error("omitting white balance changed nothing")
	}
}

func TestRandomProfilesAreDiverseAndValid(t *testing.T) {
	rng := frand.New(13)
	names := map[string]bool{}
	var lastGamma float64
	distinct := false
	for i := 0; i < 20; i++ {
		p := Random(rng, "rand")
		if err := p.Sensor.Validate(); err != nil {
			t.Fatalf("random profile %d invalid: %v", i, err)
		}
		names[string(p.Vendor)] = true
		if i > 0 && p.ToneGamma != lastGamma {
			distinct = true
		}
		lastGamma = p.ToneGamma
	}
	if !distinct {
		t.Error("random profiles are identical")
	}
}

func TestVendorTuningApplied(t *testing.T) {
	gen := scene.NewImageNet12(64)
	sc := gen.Render(2, frand.New(17))
	s22, _ := ByName("S22")
	neutral := *s22
	neutral.ToneGamma = 1
	neutral.Saturation = 1
	a, err := s22.CaptureProcessed(sc, frand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := neutral.CaptureProcessed(sc, frand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if a.MSE(b) < 1e-6 {
		t.Error("vendor tuning has no effect")
	}
}
