// Package parallel is the intra-op parallelism runtime of the tensor kernel
// layer: a persistent worker pool plus a deterministic range splitter that
// tensor matmuls, the convolution lowering, and other data-parallel loops use
// to spread one operator's work across cores.
//
// Determinism contract: Run and For split [0, n) into a FIXED partition of
// contiguous chunks keyed only by (budget, n, grain) — never by dynamic
// stealing or by which worker happens to be idle — and every chunk is
// processed by exactly one goroutine with the same serial code the
// single-threaded kernels run. A kernel whose chunks write disjoint output
// ranges therefore produces bit-identical results at every budget, including
// budget 1, which bypasses the pool entirely and is byte-for-byte the serial
// kernel.
//
// Composition contract: callers pass an explicit budget — the maximum number
// of chunks in flight — instead of sizing work to the machine. A process
// that is already parallel at a coarser grain (the fl server's per-client
// workers) grants each coarse worker a share of GOMAXPROCS so the total
// never oversubscribes the machine. Dispatch never queues: a chunk is handed
// to an idle pool worker or run inline on the caller, so nested Run calls
// (an intra-op kernel inside an fl worker, or inside another Run) cannot
// deadlock.
//
// The dispatch path performs no steady-state heap allocation: per-call state
// is recycled through a sync.Pool and tasks travel by value through the
// submission channel.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// minChunkWork is the floor on per-chunk work (in multiply-add-like units)
// below which parallel dispatch costs more than it saves; GrainFor derives
// per-item grains from it.
const minChunkWork = 1 << 15

// Runner is one data-parallel loop body. Run invokes Run(chunk, lo, hi) once
// per chunk of the fixed partition; chunk indexes the partition (0-based,
// dense), so a Runner can address per-chunk scratch without synchronization.
type Runner interface {
	Run(chunk, lo, hi int)
}

// Workers returns the pool size: GOMAXPROCS at the time the pool started, or
// the current GOMAXPROCS before first use. It is the natural "full machine"
// budget for single-tenant callers.
func Workers() int {
	if p := pool.Load(); p != nil {
		return p.size
	}
	return runtime.GOMAXPROCS(0)
}

// Chunks returns the number of chunks Run/For will use for the given budget,
// range length, and grain: min(budget, n/grain), at least 1 (0 for empty
// ranges). Every chunk holds at least grain items. Callers sizing per-chunk
// scratch use it to match Run's partition exactly.
func Chunks(budget, n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain < 1 {
		grain = 1
	}
	p := n / grain
	if p > budget {
		p = budget
	}
	if p < 1 {
		p = 1
	}
	return p
}

// GrainFor converts per-item work (multiply-add-like units) into the minimum
// items one chunk must hold so chunks amortize dispatch overhead. Heavy items
// get grain 1; featherweight items get grains large enough that small loops
// stay serial.
func GrainFor(perItem int) int {
	if perItem < 1 {
		perItem = 1
	}
	g := minChunkWork / perItem
	if g < 1 {
		g = 1
	}
	return g
}

// Run splits [0, n) into Chunks(budget, n, grain) contiguous chunks and
// invokes r.Run on each, concurrently up to the budget. It returns when every
// chunk has finished. With an effective chunk count of 1 (small n, small
// budget, or large grain) it calls r.Run(0, 0, n) inline — the serial
// fallback, byte-for-byte the plain loop.
func Run(budget, n, grain int, r Runner) {
	p := Chunks(budget, n, grain)
	if p <= 1 {
		if n > 0 {
			r.Run(0, 0, n)
		}
		return
	}
	wp := getPool()
	c := ctxPool.Get().(*runCtx)
	c.r, c.n, c.p = r, n, p
	c.wg.Add(p - 1)
	for i := 1; i < p; i++ {
		select {
		case wp.tasks <- task{ctx: c, chunk: i}:
		default:
			// Every pool worker is busy (nested Run, or budgets beyond the
			// machine): run the chunk on the caller instead of queueing, so
			// nesting can never deadlock and work never waits behind work.
			c.runChunk(i)
			c.wg.Done()
		}
	}
	r.Run(0, 0, n/p)
	c.wg.Wait()
	c.r = nil
	ctxPool.Put(c)
}

// For is Run for closure-based callers: fn receives each chunk's [lo, hi)
// range. The closure may allocate (it escapes to the pool workers); hot
// kernels that must stay allocation-free implement Runner on a recycled
// struct and call Run directly.
func For(budget, n, grain int, fn func(lo, hi int)) {
	f := funcRunner{fn: fn}
	Run(budget, n, grain, &f)
}

type funcRunner struct{ fn func(lo, hi int) }

func (f *funcRunner) Run(_, lo, hi int) { f.fn(lo, hi) }

// runCtx is the per-Run dispatch state, recycled through ctxPool.
type runCtx struct {
	r    Runner
	n, p int
	wg   sync.WaitGroup
}

func (c *runCtx) runChunk(i int) { c.r.Run(i, i*c.n/c.p, (i+1)*c.n/c.p) }

var ctxPool = sync.Pool{New: func() any { return new(runCtx) }}

// task is one chunk handed to a pool worker; it travels by value.
type task struct {
	ctx   *runCtx
	chunk int
}

// workerPool is the process-wide persistent pool, started lazily at first
// parallel Run and sized to GOMAXPROCS at that moment.
type workerPool struct {
	size  int
	tasks chan task
}

var (
	pool     atomic.Pointer[workerPool]
	poolOnce sync.Once
)

func getPool() *workerPool {
	if p := pool.Load(); p != nil {
		return p
	}
	poolOnce.Do(func() {
		wp := &workerPool{size: runtime.GOMAXPROCS(0), tasks: make(chan task)}
		for i := 0; i < wp.size; i++ {
			go func() {
				for t := range wp.tasks {
					t.ctx.runChunk(t.chunk)
					t.ctx.wg.Done()
				}
			}()
		}
		pool.Store(wp)
	})
	return pool.Load()
}
