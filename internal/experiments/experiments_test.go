package experiments

import (
	"strings"
	"testing"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/fl"
)

func tinyOpts(scale float64) Options {
	opts := DefaultOptions()
	opts.Scale = scale
	opts.Seed = 42
	return opts
}

func TestOptionsScaled(t *testing.T) {
	o := Options{Scale: 0.5}
	if o.scaled(10) != 5 {
		t.Fatalf("scaled(10) = %d", o.scaled(10))
	}
	if o.scaled(1) != 1 {
		t.Fatal("scaled must floor at 1")
	}
	o.Scale = 0.01
	if o.scaled(10) != 1 {
		t.Fatal("tiny scale must floor at 1")
	}
}

func TestRegistryNames(t *testing.T) {
	names := Names()
	want := []string{"fig1", "table2", "fig2", "fig3", "fig4", "fig5", "fig7",
		"table4", "table5", "table6", "fig8", "ecg", "fig9",
		"ablation-switch", "ablation-alpha", "ablation-degrees", "unseen-dg",
		"async-sweep", "train-serve"}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, w := range want {
		if !have[w] {
			t.Errorf("registry missing %q", w)
		}
	}
	if _, err := Run("nope", tinyOpts(0.1)); err == nil {
		t.Fatal("unknown experiment should error")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "T", Header: []string{"a", "bb"}}
	tab.AddRow("xxx", "y")
	s := tab.String()
	if !strings.Contains(s, "T\n") || !strings.Contains(s, "xxx") || !strings.Contains(s, "bb") {
		t.Fatalf("table rendering broken:\n%s", s)
	}
}

func TestEqualCounts(t *testing.T) {
	c := EqualCounts(4, 10)
	total := 0
	for _, v := range c {
		total += v
		if v < 2 || v > 3 {
			t.Fatalf("unbalanced: %v", c)
		}
	}
	if total != 10 {
		t.Fatalf("sum %d", total)
	}
}

func TestBuildDeviceDataStructure(t *testing.T) {
	opts := tinyOpts(1)
	dd, err := BuildDeviceData(opts, 1, 1, dataset.ModeProcessed)
	if err != nil {
		t.Fatal(err)
	}
	if len(dd.Profiles) != 9 || dd.Classes != 12 {
		t.Fatalf("profiles %d classes %d", len(dd.Profiles), dd.Classes)
	}
	for i := range dd.Profiles {
		if dd.Train[i].Len() != 12 || dd.Test[i].Len() != 12 {
			t.Fatalf("device %d sizes %d/%d", i, dd.Train[i].Len(), dd.Test[i].Len())
		}
	}
	if dd.DeviceIndex("S9") < 0 || dd.DeviceIndex("nope") != -1 {
		t.Fatal("DeviceIndex broken")
	}
	if dd.AllTest().Len() != 9*12 {
		t.Fatalf("AllTest %d", dd.AllTest().Len())
	}
}

func TestBuildDeviceDataDeterministic(t *testing.T) {
	opts := tinyOpts(1)
	a, err := BuildDeviceData(opts, 1, 1, dataset.ModeProcessed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildDeviceData(opts, 1, 1, dataset.ModeProcessed)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Train[3].Samples[0].X.AllClose(b.Train[3].Samples[0].X, 0) {
		t.Fatal("device data not deterministic (parallel capture ordering?)")
	}
}

func TestFig1Structure(t *testing.T) {
	res, err := Fig1(tinyOpts(0.12))
	if err != nil {
		t.Fatal(err)
	}
	if res.HomogeneousAcc < 0 || res.HomogeneousAcc > 1 || res.HeterogeneousAcc < 0 || res.HeterogeneousAcc > 1 {
		t.Fatalf("accuracies out of range: %+v", res)
	}
	if !strings.Contains(res.String(), "homogeneous") {
		t.Fatal("rendering broken")
	}
}

func TestTable2Structure(t *testing.T) {
	res, err := Table2(tinyOpts(0.12))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeviceNames) != 9 || len(res.Acc) != 9 {
		t.Fatalf("matrix shape wrong")
	}
	for i := 0; i < 9; i++ {
		if res.Degradation[i][i] != 0 {
			t.Fatal("diagonal degradation must be 0")
		}
	}
	mean, lo, hi := res.TargetStats(0)
	if lo > mean || mean > hi {
		t.Fatalf("TargetStats ordering: %v %v %v", lo, mean, hi)
	}
	if !strings.Contains(res.String(), "MeanOthers") {
		t.Fatal("rendering broken")
	}
}

func TestFig3Structure(t *testing.T) {
	res, err := Fig3(tinyOpts(0.12))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Stages) != 6 {
		t.Fatalf("stages %d", len(res.Stages))
	}
	if res.BaselineAcc <= 0 {
		t.Fatalf("baseline accuracy %v", res.BaselineAcc)
	}
}

func TestFig7Structure(t *testing.T) {
	res, err := Fig7(tinyOpts(0.2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transforms) != 4 {
		t.Fatalf("transforms %d", len(res.Transforms))
	}
	for m := 0; m < 3; m++ {
		if res.CleanAcc[m] < 0 || res.CleanAcc[m] > 1 {
			t.Fatalf("clean acc %v", res.CleanAcc[m])
		}
	}
}

func TestFig4Structure(t *testing.T) {
	res, err := Fig4(tinyOpts(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DeviceNames) != 9 || len(res.Degradation) != 9 {
		t.Fatal("per-device series wrong length")
	}
	doms := 0
	for _, d := range res.Dominant {
		if d {
			doms++
		}
	}
	if doms != 2 {
		t.Fatalf("dominant flags %d, want 2", doms)
	}
}

func TestFig8Structure(t *testing.T) {
	res, err := Fig8(tinyOpts(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumDevices != 10 || len(res.FedAvgAcc) != 10 || len(res.HeteroAcc) != 10 {
		t.Fatal("device series wrong")
	}
	if !strings.Contains(res.String(), "jitter-07") {
		t.Fatal("rendering broken")
	}
}

func TestECGStructure(t *testing.T) {
	res, err := ECG(tinyOpts(0.08))
	if err != nil {
		t.Fatal(err)
	}
	if res.FedAvgDeviation <= 0 || res.HeteroDeviation <= 0 {
		t.Fatalf("deviations: %+v", res)
	}
	if !strings.Contains(res.String(), "HeteroSwitch+RGF") {
		t.Fatal("rendering broken")
	}
}

func TestTable6Structure(t *testing.T) {
	res, err := Table6(tinyOpts(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.MeanAP < 0 || row.MeanAP > 100 {
			t.Fatalf("AP out of range: %+v", row)
		}
	}
}

func TestAsyncSweepStructure(t *testing.T) {
	res, err := AsyncSweep(tinyOpts(0.1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Arms) != 5 {
		t.Fatalf("arms %d, want 5", len(res.Arms))
	}
	// Arms 0 (sync) and 1 (async, zero latency, no discount, depth 1) run
	// the same aggregation math and must report identical accuracy — the
	// equivalence contract surfacing in the characterization itself.
	if res.Arms[0].FinalAcc != res.Arms[1].FinalAcc {
		t.Fatalf("zero-latency async arm diverged from sync: %v vs %v",
			res.Arms[1].FinalAcc, res.Arms[0].FinalAcc)
	}
	if res.Arms[1].VirtualTime != 0 || res.Arms[1].MeanStaleness != 0 {
		t.Fatalf("zero-latency arm accrued time or staleness: %+v", res.Arms[1])
	}
	for _, a := range res.Arms {
		if a.FinalAcc < 0 || a.FinalAcc > 1 {
			t.Fatalf("accuracy out of range: %+v", a)
		}
	}
	// The straggler arms must accrue virtual time; the sync arm pays at
	// least as much per aggregation as an async window of the same size.
	syncT, asyncT := res.Arms[0].VirtualTime, res.Arms[4].VirtualTime
	if syncT <= 0 || asyncT <= 0 {
		t.Fatalf("straggler arms accrued no virtual time: sync %v async %v", syncT, asyncT)
	}
	if !strings.Contains(res.String(), "rounds-to-target") {
		t.Fatal("rendering broken")
	}
}

// Options.Async must reroute streaming-capable strategies through the async
// server inside the shared RunFL funnel (and leave barrier-only strategies
// on the synchronous path).
func TestRunFLHonorsAsyncOptions(t *testing.T) {
	opts := tinyOpts(0.1)
	opts.Async = AsyncOptions{Enabled: true, StalenessAlpha: 0.5, LatencyModel: "uniform:0.5,2"}
	dd, err := BuildDeviceData(opts, 1, 1, dataset.ModeProcessed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fl.Config{Rounds: 2, ClientsPerRound: 4, BatchSize: 4, LocalEpochs: 1,
		LR: 0.1, Seed: opts.Seed, Workers: 2}
	counts := MarketShareCounts(dd, 9)
	srv, err := RunFL(opts, fl.FedAvg{}, dd, counts, cfg, SimpleCNNBuilder(opts.Seed, dd.Classes))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := srv.(*fl.AsyncServer); !ok {
		t.Fatalf("async options ignored: got %T", srv)
	}
	srv, err = RunFL(opts, &fl.QFedAvg{Q: 1e-6}, dd, counts, cfg, SimpleCNNBuilder(opts.Seed, dd.Classes))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := srv.(*fl.Server); !ok {
		t.Fatalf("barrier-only strategy must stay synchronous: got %T", srv)
	}
	if srv.GlobalNet() == nil {
		t.Fatal("trained server returned no network")
	}
	if _, err := (AsyncOptions{LatencyModel: "bogus"}).Config(4, 1); err == nil {
		t.Fatal("bad latency spec must error")
	}
}

func TestJitterDeviceBounded(t *testing.T) {
	d := ColorJitterDevice{Contrast: 1.4, Brightness: 0.15, Saturation: 1.5, Hue: 0.25}
	ds := sceneDataset(tinyOpts(0.1), 1, "jitter-test")
	x := ds.Samples[0].X
	d.Apply(x)
	for _, v := range x.Data() {
		if v < 0 || v > 1 {
			t.Fatalf("jitter out of range: %v", v)
		}
	}
}

func TestScoreFromAccuracies(t *testing.T) {
	s := scoreFromAccuracies("m", map[int]float64{0: 0.5, 1: 0.7})
	if s.WorstAcc != 0.5 || s.AvgAcc != 0.6 {
		t.Fatalf("score %+v", s)
	}
	// variance of {50, 70} (population) = 100.
	if s.Variance != 100 {
		t.Fatalf("variance %v", s.Variance)
	}
}
