package nn

import (
	"sync"
	"testing"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/tensor"
)

// The shared panel-cache contract (panels.go): a version's packed weights
// are built once no matter how many replicas serve it, a publish→retire
// sequence never reclaims a set a replica still references, superseded sets
// recycle (capacity kept, no leak), and the steady-state inference path
// neither packs nor allocates.

// forceNNBackend pins the kernel backend for one test.
func forceNNBackend(t *testing.T, b tensor.Backend) {
	t.Helper()
	prev := tensor.ActiveBackend()
	tensor.SetBackend(b)
	t.Cleanup(func() { tensor.SetBackend(prev) })
}

// TestPanelCacheAcquireRelease pins the refcount semantics: same-version
// acquires share one set, the newest set survives zero references, and a
// superseded set recycles exactly once with its slot capacity retained.
func TestPanelCacheAcquireRelease(t *testing.T) {
	pc := NewPanelCache()
	a1 := pc.Acquire(0, 2)
	a2 := pc.Acquire(0, 2)
	if a1 != a2 {
		t.Fatal("same-version acquires returned distinct sets")
	}
	if pc.Resident() != 1 {
		t.Fatalf("Resident = %d, want 1", pc.Resident())
	}
	pc.Release(a1)
	pc.Release(a2)
	if pc.Resident() != 1 || pc.Recycled() != 0 {
		t.Fatalf("newest set must survive zero refs: resident %d recycled %d", pc.Resident(), pc.Recycled())
	}

	b := pc.Acquire(1, 2)
	if b == a1 {
		t.Fatal("version 1 reused the still-resident version 0 set")
	}
	// Re-acquiring the superseded version still finds its resident set…
	a3 := pc.Acquire(0, 2)
	if a3 != a1 {
		t.Fatal("resident superseded set was not found by version key")
	}
	// …and its final release recycles it now that version 1 is newer.
	pc.Release(a3)
	if pc.Resident() != 1 || pc.Recycled() != 1 {
		t.Fatalf("superseded set not recycled: resident %d recycled %d", pc.Resident(), pc.Recycled())
	}
	// The recycled set's arrays come back for the next version, flags clear.
	c := pc.Acquire(2, 2)
	if c != a1 {
		t.Fatal("recycled set was not reused")
	}
	for i, p := range c.packed {
		if p {
			t.Fatalf("recycled set slot %d still marked packed", i)
		}
	}
	pc.Release(b)
	if pc.Resident() != 1 || pc.Recycled() != 2 {
		t.Fatalf("after retiring version 1: resident %d recycled %d", pc.Resident(), pc.Recycled())
	}
}

// TestPanelPacksPerVersionNotPerBatch is the weight-stationary accounting
// contract: under the int8 backend a pool of replicas packs each version's
// weights exactly once per matmul slot — not once per replica, and never per
// batch.
func TestPanelPacksPerVersionNotPerBatch(t *testing.T) {
	forceNNBackend(t, tensor.BackendInt8)
	const replicas = 3
	pool := NewReplicaPool(replicas, func() *Network { return smallNet(99) }, 1)
	src := smallNet(1)
	v0 := src.Snapshot()
	src.Params()[0].W.Data()[0] += 0.25
	v1 := src.Snapshot()

	reps := make([]*Replica, replicas)
	for i := range reps {
		reps[i] = pool.Get()
	}
	defer func() {
		for _, rep := range reps {
			pool.Put(rep)
		}
	}()

	// smallNet compiles to one conv slot + one dense slot.
	const slots = 2
	base := tensor.WeightPackCount()
	for _, rep := range reps {
		if err := rep.Ensure(0, v0); err != nil {
			t.Fatal(err)
		}
	}
	if got := tensor.WeightPackCount() - base; got != slots {
		t.Fatalf("%d replicas ensuring one version packed %d times, want %d (once per slot)", replicas, got, slots)
	}

	r := frand.New(11)
	x := tensor.Randn(r, 1, 2, 1, 8, 8)
	for i := 0; i < 10; i++ {
		for _, rep := range reps {
			rep.Infer(x)
		}
	}
	if got := tensor.WeightPackCount() - base; got != slots {
		t.Fatalf("steady-state batches packed weights: count %d, want %d", got, slots)
	}

	for _, rep := range reps {
		if err := rep.Ensure(1, v1); err != nil {
			t.Fatal(err)
		}
	}
	if got := tensor.WeightPackCount() - base; got != 2*slots {
		t.Fatalf("two versions packed %d times total, want %d", got, 2*slots)
	}
}

// TestReplicaPoolPanelLifecycleUnderChurn drives concurrent replicas across
// a stream of published versions (run with -race): every output must be
// bit-identical to a serial reference on the same version (a freed or
// clobbered panel would diverge or trip the race detector), and afterwards
// every superseded version's panel set must have been reclaimed — exactly
// one set resident once all replicas land on the final version.
func TestReplicaPoolPanelLifecycleUnderChurn(t *testing.T) {
	forceNNBackend(t, tensor.BackendInt8)
	build := func() *Network { return smallNet(99) }
	const replicas = 4
	pool := NewReplicaPool(replicas, build, 1)

	const nVersions = 6
	src := smallNet(1)
	versions := make([]Weights, nVersions)
	for v := range versions {
		versions[v] = src.Snapshot()
		src.Params()[0].W.Data()[0] += 0.125
	}

	ref := NewReplica(build, 1)
	r := frand.New(17)
	const requests = 96
	inputs := make([]*tensor.Tensor, requests)
	want := make([][]float32, requests)
	for i := range inputs {
		inputs[i] = tensor.Randn(r, 1, 2, 1, 8, 8)
		v := i * nVersions / requests // monotone publish schedule
		if err := ref.Ensure(v, versions[v]); err != nil {
			t.Fatal(err)
		}
		want[i] = append([]float32(nil), ref.Infer(inputs[i]).Data()...)
	}

	got := make([][]float32, requests)
	var wg sync.WaitGroup
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep := pool.Get()
			defer pool.Put(rep)
			v := i * nVersions / requests
			if err := rep.Ensure(v, versions[v]); err != nil {
				t.Error(err)
				return
			}
			got[i] = append([]float32(nil), rep.Infer(inputs[i]).Data()...)
		}(i)
	}
	wg.Wait()

	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("request %d output[%d] = %v, want %v (shared panels diverge from serial reference)",
					i, j, got[i][j], want[i][j])
			}
		}
	}

	// Land every replica on the final version, then audit the cache: one
	// resident set, everything superseded recycled, no leaked panels.
	reps := make([]*Replica, replicas)
	for i := range reps {
		reps[i] = pool.Get()
		if err := reps[i].Ensure(nVersions-1, versions[nVersions-1]); err != nil {
			t.Fatal(err)
		}
	}
	pc := reps[0].panels
	for _, rep := range reps {
		pool.Put(rep)
	}
	if res := pc.Resident(); res != 1 {
		t.Fatalf("%d panel sets resident after all replicas reached the final version, want 1 (leak)", res)
	}
	// Every version was served at least once, so at least nVersions sets
	// were brought resident over the run; all but the final one must have
	// been recycled (out-of-order stale requests may add a few more cycles).
	if rec := pc.Recycled(); rec < nVersions-1 {
		t.Fatalf("recycled %d sets, want at least %d", rec, nVersions-1)
	}
}

// TestReplicaInferSteadyStateZeroAlloc: with panels packed and scratch pools
// warm, the int8 inference path allocates nothing per batch.
func TestReplicaInferSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items randomly under -race; alloc counts are nondeterministic")
	}
	forceNNBackend(t, tensor.BackendInt8)
	pool := NewReplicaPool(1, func() *Network { return smallNet(99) }, 1)
	rep := pool.Get()
	defer pool.Put(rep)
	if err := rep.Ensure(0, smallNet(1).Snapshot()); err != nil {
		t.Fatal(err)
	}
	x := tensor.Randn(frand.New(23), 1, 2, 1, 8, 8)
	rep.Infer(x) // warm the arena, im2col scratch, and int8 scratch pool
	if allocs := testing.AllocsPerRun(100, func() { rep.Infer(x) }); allocs != 0 {
		t.Fatalf("steady-state int8 Infer allocates %v per batch, want 0", allocs)
	}
}
