// Package metrics evaluates trained models and computes the statistics the
// paper reports: accuracy, cross-device variance, worst-case accuracy
// (domain generalization), model-quality degradation matrices, multi-label
// averaged precision (FLAIR), and regression deviation (ECG).
package metrics

import (
	"math"
	"sort"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/tensor"
)

// Accuracy returns the single-label classification accuracy of net on ds,
// evaluated with the given batch size through one frozen inference replica
// (nn.EvalView: BN folded, activations fused; the reference forward when
// fused eval is disabled). Batches recycle through the pooled
// dataset.BatchScratch, so sweeps over many devices or degrees allocate no
// per-batch buffers.
func Accuracy(net *nn.Network, ds *dataset.Dataset, batch int) float64 {
	if ds.Len() == 0 {
		return 0
	}
	bs := dataset.GetBatchScratch()
	defer dataset.PutBatchScratch(bs)
	return accuracyOn(nn.EvalView(net), bs, ds, batch)
}

// accuracyOn is the shared accuracy loop: one inference surface, one
// scratch, one dataset.
func accuracyOn(inf nn.Inference, bs *dataset.BatchScratch, ds *dataset.Dataset, batch int) float64 {
	if ds.Len() == 0 {
		return 0
	}
	correct := 0
	bs.ForBatches(ds, batch, func(lo, hi int, x, _ *tensor.Tensor, labels []int) {
		if labels == nil {
			// Multi-label data has no single label to match (Sample.Label is
			// -1); every prediction counts as wrong, matching the previous
			// ds.Batch behaviour. Use MeanAveragePrecision for these sets.
			return
		}
		pred := inf.Infer(x).ArgMaxRows()
		for i, p := range pred {
			if p == labels[i] {
				correct++
			}
		}
	})
	return float64(correct) / float64(ds.Len())
}

// MeanLoss returns the mean loss of net on ds without updating anything —
// the quantity HeteroSwitch compares against its EMA (L_init). Like
// Accuracy it forwards through one frozen replica per evaluation, and like
// fl.EvalLoss it takes the value-only loss path (nn.LossValuer): no gradient
// tensor is computed or allocated per batch.
func MeanLoss(net *nn.Network, loss nn.Loss, ds *dataset.Dataset, batch int) float64 {
	if ds.Len() == 0 {
		return 0
	}
	inf := nn.EvalView(net)
	bs := dataset.GetBatchScratch()
	defer dataset.PutBatchScratch(bs)
	var total float64
	var count int
	bs.ForBatches(ds, batch, func(lo, hi int, x, y *tensor.Tensor, labels []int) {
		out := inf.Infer(x)
		target := nn.ClassTarget(labels)
		if y != nil {
			target = nn.DenseTarget(y)
		}
		l := nn.LossValue(loss, func() *tensor.Tensor { return bs.Alloc(out.Shape()...) }, out, target)
		total += l * float64(hi-lo)
		count += hi - lo
	})
	return total / float64(count)
}

// PerDeviceAccuracy evaluates accuracy separately on each device's test
// samples, keyed by device index. One frozen replica and one pooled batch
// scratch serve every device's sweep.
func PerDeviceAccuracy(net *nn.Network, ds *dataset.Dataset, batch int) map[int]float64 {
	out := map[int]float64{}
	if ds.Len() == 0 {
		return out
	}
	inf := nn.EvalView(net)
	bs := dataset.GetBatchScratch()
	defer dataset.PutBatchScratch(bs)
	for dev, sub := range ds.ByDevice() {
		out[dev] = accuracyOn(inf, bs, sub, batch)
	}
	return out
}

// Mean returns the arithmetic mean of vs (0 for empty input).
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// Variance returns the population variance of vs. The paper reports accuracy
// variance across device types in percentage-point² units; callers scale
// accuracies to percent before calling when reproducing those tables.
func Variance(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	m := Mean(vs)
	var s float64
	for _, v := range vs {
		d := v - m
		s += d * d
	}
	return s / float64(len(vs))
}

// Std returns the population standard deviation.
func Std(vs []float64) float64 { return math.Sqrt(Variance(vs)) }

// Worst returns the minimum value (the worst-case accuracy used as the DG
// metric). Returns 0 for empty input.
func Worst(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	w := vs[0]
	for _, v := range vs[1:] {
		if v < w {
			w = v
		}
	}
	return w
}

// Degradation returns the paper's "model quality degradation" between a
// reference accuracy and an observed accuracy: (ref - acc) / ref, reported
// as a fraction (multiply by 100 for the paper's percentages). Zero ref
// yields zero.
func Degradation(ref, acc float64) float64 {
	if ref <= 0 {
		return 0
	}
	d := (ref - acc) / ref
	return d
}

// Values extracts map values ordered by key, for stable reporting.
func Values(m map[int]float64) []float64 {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]float64, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// AveragePrecision computes the area under the precision-recall curve for
// one class given per-sample scores and binary relevance, using the standard
// "sum of precision at each positive" estimator. Returns 0 when there are
// no positives.
func AveragePrecision(scores []float64, relevant []bool) float64 {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	var hits int
	var sum float64
	for rank, i := range idx {
		if relevant[i] {
			hits++
			sum += float64(hits) / float64(rank+1)
		}
	}
	if hits == 0 {
		return 0
	}
	return sum / float64(hits)
}

// MeanAveragePrecision computes macro-averaged AP across classes for a
// multi-label dataset: scores is [N, C] model outputs (higher = more
// confident), labels is [N, C] with {0,1} relevance.
func MeanAveragePrecision(scores, labels *tensor.Tensor) float64 {
	n, c := scores.Dim(0), scores.Dim(1)
	var sum float64
	classes := 0
	col := make([]float64, n)
	rel := make([]bool, n)
	for j := 0; j < c; j++ {
		pos := 0
		for i := 0; i < n; i++ {
			col[i] = float64(scores.At(i, j))
			rel[i] = labels.At(i, j) > 0.5
			if rel[i] {
				pos++
			}
		}
		if pos == 0 {
			continue
		}
		sum += AveragePrecision(col, rel)
		classes++
	}
	if classes == 0 {
		return 0
	}
	return sum / float64(classes)
}

// MultiLabelScores runs the network over a multi-label dataset through one
// frozen inference replica and returns the raw score matrix alongside the
// label matrix.
func MultiLabelScores(net *nn.Network, ds *dataset.Dataset, batch int) (scores, labels *tensor.Tensor) {
	n := ds.Len()
	scores = tensor.New(n, ds.NumClasses)
	labels = tensor.New(n, ds.NumClasses)
	inf := nn.EvalView(net)
	bs := dataset.GetBatchScratch()
	defer dataset.PutBatchScratch(bs)
	bs.ForBatches(ds, batch, func(lo, hi int, x, y *tensor.Tensor, _ []int) {
		out := inf.Infer(x)
		copy(scores.Data()[lo*ds.NumClasses:hi*ds.NumClasses], out.Data())
		copy(labels.Data()[lo*ds.NumClasses:hi*ds.NumClasses], y.Data())
	})
	return scores, labels
}

// MeanAbsRelDeviation returns mean(|pred - truth| / truth) — the heart-rate
// deviation metric of §6.6. Entries with non-positive truth are skipped.
func MeanAbsRelDeviation(pred, truth []float64) float64 {
	var s float64
	n := 0
	for i := range pred {
		if truth[i] <= 0 {
			continue
		}
		s += math.Abs(pred[i]-truth[i]) / truth[i]
		n++
	}
	if n == 0 {
		return 0
	}
	return s / float64(n)
}
