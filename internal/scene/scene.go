// Package scene procedurally generates the latent images the simulated
// devices photograph. It replaces the paper's monitor-displayed ImageNet
// photos: because every device captures the SAME latent scene, any
// cross-device difference in the resulting training data is system-induced
// by construction — the paper's controlled dark-room setup.
//
// Each class is a parametric recipe combining a color palette with a texture
// (stripes, checker, rings, blobs, noise octaves, or a shape on a gradient).
// Class identity is carried by both structure and color/tone statistics, so
// ISP and sensor variation genuinely perturbs class evidence, as it does for
// natural images.
package scene

import (
	"fmt"
	"math"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/isp"
)

// TextureKind enumerates the procedural texture families.
type TextureKind int

// Texture families.
const (
	TexStripes TextureKind = iota
	TexChecker
	TexRings
	TexBlobs
	TexNoise
	TexShape
	numTexKinds
)

// Recipe is one class's generative program.
type Recipe struct {
	Name    string
	Texture TextureKind
	// ColorA and ColorB are the two palette anchors (linear RGB).
	ColorA, ColorB [3]float64
	// Freq is the base spatial frequency (stripes/rings/checker) or feature
	// count (blobs), in cycles per image.
	Freq float64
	// Angle is the base texture orientation in radians.
	Angle float64
}

// Generator renders class instances at a fixed resolution.
type Generator struct {
	Res     int
	Recipes []Recipe
}

// NumClasses returns the number of classes.
func (g *Generator) NumClasses() int { return len(g.Recipes) }

// ClassName returns the human-readable class label.
func (g *Generator) ClassName(class int) string { return g.Recipes[class].Name }

// NewImageNet12 builds the 12-class generator standing in for the paper's
// 12 non-overlapping ImageNet classes (§3.1). Palettes and textures are
// hand-assigned so classes are visually and statistically distinct.
func NewImageNet12(res int) *Generator {
	rc := []Recipe{
		{Name: "chihuahua", Texture: TexBlobs, ColorA: [3]float64{0.72, 0.55, 0.36}, ColorB: [3]float64{0.30, 0.20, 0.12}, Freq: 5},
		{Name: "altar", Texture: TexShape, ColorA: [3]float64{0.78, 0.70, 0.52}, ColorB: [3]float64{0.25, 0.18, 0.30}, Freq: 2},
		{Name: "cock", Texture: TexBlobs, ColorA: [3]float64{0.80, 0.25, 0.18}, ColorB: [3]float64{0.18, 0.45, 0.25}, Freq: 8},
		{Name: "abaya", Texture: TexNoise, ColorA: [3]float64{0.12, 0.12, 0.18}, ColorB: [3]float64{0.35, 0.32, 0.40}, Freq: 3},
		{Name: "ambulance", Texture: TexStripes, ColorA: [3]float64{0.85, 0.85, 0.88}, ColorB: [3]float64{0.82, 0.15, 0.12}, Freq: 4, Angle: 0},
		{Name: "loggerhead", Texture: TexRings, ColorA: [3]float64{0.35, 0.42, 0.25}, ColorB: [3]float64{0.62, 0.55, 0.35}, Freq: 5},
		{Name: "timber-wolf", Texture: TexNoise, ColorA: [3]float64{0.55, 0.55, 0.58}, ColorB: [3]float64{0.22, 0.22, 0.25}, Freq: 6},
		{Name: "tiger-beetle", Texture: TexChecker, ColorA: [3]float64{0.15, 0.50, 0.30}, ColorB: [3]float64{0.60, 0.45, 0.12}, Freq: 7},
		{Name: "accordion", Texture: TexStripes, ColorA: [3]float64{0.55, 0.12, 0.15}, ColorB: [3]float64{0.85, 0.80, 0.70}, Freq: 9, Angle: math.Pi / 2},
		{Name: "french-loaf", Texture: TexShape, ColorA: [3]float64{0.76, 0.58, 0.30}, ColorB: [3]float64{0.42, 0.26, 0.12}, Freq: 1},
		{Name: "barber-chair", Texture: TexRings, ColorA: [3]float64{0.70, 0.15, 0.20}, ColorB: [3]float64{0.88, 0.88, 0.90}, Freq: 8},
		{Name: "orangutan", Texture: TexBlobs, ColorA: [3]float64{0.70, 0.35, 0.12}, ColorB: [3]float64{0.25, 0.12, 0.06}, Freq: 3},
	}
	return &Generator{Res: res, Recipes: rc}
}

// NewSynthetic builds a generator with `classes` procedurally-derived
// recipes (used for the CIFAR-style and FLAIR-style experiments). Recipes
// are deterministic in the seed.
func NewSynthetic(classes, res int, seed uint64) *Generator {
	r := frand.New(seed)
	rc := make([]Recipe, classes)
	for c := range rc {
		rc[c] = Recipe{
			Name:    fmt.Sprintf("class%02d", c),
			Texture: TextureKind(r.Intn(int(numTexKinds))),
			ColorA:  randColor(r),
			ColorB:  randColor(r),
			Freq:    r.Uniform(2, 10),
			Angle:   r.Uniform(0, math.Pi),
		}
	}
	return &Generator{Res: res, Recipes: rc}
}

func randColor(r *frand.RNG) [3]float64 {
	return [3]float64{r.Uniform(0.1, 0.9), r.Uniform(0.1, 0.9), r.Uniform(0.1, 0.9)}
}

// Render draws one instance of the class with per-instance jitter drawn from
// rng (orientation, phase, scale, mild color shift), returning a linear-RGB
// scene. It panics if class is out of range (caller bug).
func (g *Generator) Render(class int, rng *frand.RNG) *isp.Image {
	if class < 0 || class >= len(g.Recipes) {
		panic(fmt.Sprintf("scene: class %d out of range [0,%d)", class, len(g.Recipes)))
	}
	rc := g.Recipes[class]
	res := g.Res
	im := isp.NewImage(res, res)

	// Per-instance jitter.
	angle := rc.Angle + rng.Uniform(-0.35, 0.35)
	freq := rc.Freq * rng.Uniform(0.8, 1.25)
	phase := rng.Uniform(0, 2*math.Pi)
	cx := rng.Uniform(0.35, 0.65)
	cy := rng.Uniform(0.35, 0.65)
	colJitter := rng.Uniform(-0.06, 0.06)
	a, b := rc.ColorA, rc.ColorB
	for c := 0; c < 3; c++ {
		a[c] = clamp01f(a[c] + colJitter)
		b[c] = clamp01f(b[c] + colJitter)
	}
	sin, cos := math.Sin(angle), math.Cos(angle)

	// Blob fields need per-instance centres.
	type blob struct{ x, y, r2 float64 }
	var blobs []blob
	if rc.Texture == TexBlobs {
		n := int(freq)
		if n < 2 {
			n = 2
		}
		blobs = make([]blob, n)
		for i := range blobs {
			rad := rng.Uniform(0.08, 0.22)
			blobs[i] = blob{x: rng.Uniform(0.1, 0.9), y: rng.Uniform(0.1, 0.9), r2: rad * rad}
		}
	}
	// Noise octave offsets.
	noiseSeed := rng.Uint64()

	for y := 0; y < res; y++ {
		for x := 0; x < res; x++ {
			fx := float64(x) / float64(res)
			fy := float64(y) / float64(res)
			// t in [0,1] selects between palette colors.
			var t float64
			switch rc.Texture {
			case TexStripes:
				u := fx*cos + fy*sin
				t = 0.5 + 0.5*math.Sin(2*math.Pi*freq*u+phase)
			case TexChecker:
				u := fx*cos + fy*sin
				v := -fx*sin + fy*cos
				t = 0.0
				if (int(math.Floor(u*freq))+int(math.Floor(v*freq)))%2 == 0 {
					t = 1.0
				}
			case TexRings:
				dx, dy := fx-cx, fy-cy
				t = 0.5 + 0.5*math.Sin(2*math.Pi*freq*math.Sqrt(dx*dx+dy*dy)+phase)
			case TexBlobs:
				t = 0
				for _, bl := range blobs {
					dx, dy := fx-bl.x, fy-bl.y
					t += math.Exp(-(dx*dx + dy*dy) / bl.r2)
				}
				if t > 1 {
					t = 1
				}
			case TexNoise:
				t = valueNoise(fx*freq, fy*freq, noiseSeed)
			default: // TexShape: a filled ellipse on a diagonal gradient
				dx := (fx - cx) / 0.3
				dy := (fy - cy) / 0.22
				if dx*dx+dy*dy < 1 {
					t = 1
				} else {
					t = 0.25 * (fx + fy)
				}
			}
			for c := 0; c < 3; c++ {
				im.Set(x, y, c, clamp01f(a[c]*t+b[c]*(1-t)))
			}
		}
	}
	// Mild scene-level sensor-independent noise (display/ambient).
	for i := range im.Pix {
		im.Pix[i] = clamp01f(im.Pix[i] + 0.01*rng.NormFloat64())
	}
	return im
}

// valueNoise is 2-octave value noise with hashed lattice gradients — cheap
// and deterministic.
func valueNoise(x, y float64, seed uint64) float64 {
	v := 0.65*latticeNoise(x, y, seed) + 0.35*latticeNoise(2*x+13, 2*y+7, seed^0x9e37)
	return clamp01f(v)
}

func latticeNoise(x, y float64, seed uint64) float64 {
	x0, y0 := math.Floor(x), math.Floor(y)
	tx, ty := x-x0, y-y0
	// Smoothstep interpolation between hashed corners.
	sx := tx * tx * (3 - 2*tx)
	sy := ty * ty * (3 - 2*ty)
	h := func(ix, iy float64) float64 {
		u := uint64(int64(ix))*0x9e3779b97f4a7c15 ^ uint64(int64(iy))*0xc2b2ae3d27d4eb4f ^ seed
		u ^= u >> 33
		u *= 0xff51afd7ed558ccd
		u ^= u >> 33
		return float64(u>>11) / (1 << 53)
	}
	top := h(x0, y0) + (h(x0+1, y0)-h(x0, y0))*sx
	bot := h(x0, y0+1) + (h(x0+1, y0+1)-h(x0, y0+1))*sx
	return top + (bot-top)*sy
}

func clamp01f(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Scene pairs a rendered latent image with its label, the unit the capture
// pipelines consume.
type Scene struct {
	Class int
	Image *isp.Image
}

// RenderSet renders perClass instances of every class, returning them in
// class-major order. The same RenderSet captured through different devices
// reproduces the paper's data-collection protocol.
func (g *Generator) RenderSet(perClass int, rng *frand.RNG) []Scene {
	out := make([]Scene, 0, perClass*g.NumClasses())
	for c := 0; c < g.NumClasses(); c++ {
		for i := 0; i < perClass; i++ {
			out = append(out, Scene{Class: c, Image: g.Render(c, rng)})
		}
	}
	return out
}

// MultiLabelScene composes 2x2 quadrants, each drawn from a distinct class,
// for multi-label experiments (FLAIR substitute). The returned label vector
// has a 1 for every class present.
func (g *Generator) MultiLabelScene(rng *frand.RNG) (*isp.Image, []float32) {
	res := g.Res
	im := isp.NewImage(res, res)
	labels := make([]float32, g.NumClasses())
	half := res / 2
	quads := [][2]int{{0, 0}, {half, 0}, {0, half}, {half, half}}
	nObjects := 2 + rng.Intn(3) // 2..4 quadrants populated
	order := rng.Perm(4)
	chosen := map[int]bool{}
	for q := 0; q < nObjects; q++ {
		class := rng.Intn(g.NumClasses())
		for chosen[class] {
			class = rng.Intn(g.NumClasses())
		}
		chosen[class] = true
		labels[class] = 1
		tile := g.Render(class, rng).Resize(half, half)
		ox, oy := quads[order[q]][0], quads[order[q]][1]
		for y := 0; y < half; y++ {
			for x := 0; x < half; x++ {
				for c := 0; c < 3; c++ {
					im.Set(ox+x, oy+y, c, tile.At(x, y, c))
				}
			}
		}
	}
	return im, labels
}
