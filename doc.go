// Package heteroswitch is a from-scratch Go reproduction of "HeteroSwitch:
// Characterizing and Taming System-Induced Data Heterogeneity in Federated
// Learning" (Kim et al., MLSys 2024).
//
// The implementation lives under internal/: a neural-network training stack
// (internal/nn, internal/tensor), a camera + ISP simulation that generates
// system-induced data heterogeneity (internal/camera, internal/isp,
// internal/device, internal/scene), the federated-learning engine and
// baselines (internal/fl), the HeteroSwitch algorithm (internal/core), and
// one harness per paper table/figure (internal/experiments), and a serving
// front end on the frozen inference path (internal/serve). Entry points:
// cmd/heterobench, cmd/flsim, cmd/flserve, cmd/ispdemo, and the runnable
// examples/.
//
// # Streaming shard-parallel aggregation
//
// The server's round loop (internal/fl.Server.RunRound) aggregates on a
// streaming pipeline rather than a barrier. Strategies whose aggregation
// rule is a per-client fold — FedAvg, FedProx, and HeteroSwitch — implement
// the optional fl.StreamingAggregator capability:
//
//	NewAccumulator(global, cfg) → Accumulator
//	Accumulator.Accumulate(result)   // fold one client, buffers reusable after
//	Accumulator.Merge(other)         // absorb a sibling shard
//	Accumulator.Finalize() → Weights // new global model
//
// Each worker goroutine trains its contiguous block of the round's sampled
// clients, snapshots into a pooled per-worker scratch buffer, and folds the
// result into a private shard accumulator in place; the shards are merged
// tree-style at round end. Peak weight memory is therefore O(workers)
// instead of O(K) — at K=512, W=4 the streaming path allocates ~78% fewer
// bytes per round than the barrier path (BenchmarkServerRound). Shard sums
// are kept in float64, confining the merge order's effect to
// double-precision rounding (below float32 resolution in practice), and
// client→worker assignment on this path is static (contiguous index
// blocks), so runs with a fixed config are bit-reproducible. The barrier
// fallback keeps the original dynamic work queue, since it aggregates in
// client order regardless of scheduling.
//
// HeteroSwitch's accumulator additionally folds the eq. 1 inputs
// (Σ L_train·n, Σ n) per-result, so the L_EMA switching signal is identical
// to the barrier path's. Strategies that genuinely need every result at
// once (q-FedAvg's normalized step, SCAFFOLD's control-variate update) do
// not implement the capability and keep the legacy Strategy.Aggregate
// barrier; fl.Config.DisableStreaming forces that fallback everywhere for
// A/B comparisons (flsim -barrier, experiments.Options.DisableStreaming).
//
// # Arena-backed zero-allocation training hot path
//
// Every nn.Network owns a tensor.Arena, a shape-keyed recycler of per-batch
// tensors. Layers draw their outputs, input gradients, and scratch tensors
// from it, and the network resets the arena at the top of each Forward; the
// im2col-lowered convolution kernels and the register-tiled matmuls
// (tensor.MatMul*, 4-wide column unrolling, bit-identical op order per
// accumulation target) run on those recycled buffers, so the steady state of
// fl.TrainLocal performs no heap allocation at all (BenchmarkTrainLocal:
// ≥99% fewer allocs/op than per-batch allocation).
//
// Ownership rules — who may retain a tensor across a Reset:
//
//   - Tensors returned by Network.Forward (and anything a layer allocated
//     from the arena) are valid only until the NEXT Forward on that network.
//     Callers that keep an output across batches must Clone it first.
//   - Network.Backward's return value survives later Forward passes: the
//     owning network copies the final input gradient into a small per-size
//     cache outside the arena (the numerical gradient checker depends on
//     this). It is still only valid until the NEXT Backward with a
//     same-size gradient, which reuses the cached buffer.
//   - Anything that outlives a batch must never come from the arena:
//     parameters, gradient accumulators, optimizer state, running BN
//     statistics, and weight snapshots all use plain tensor.New.
//   - Layer caches written in Forward and read in the matching Backward
//     (BatchNorm's xhat, Dense's input reference, conv's column matrices)
//     MAY live in the arena: within one Reset-to-Reset window the arena
//     never hands out the same buffer twice.
//   - A nested Network embedded as a layer adopts its parent's arena via
//     SetArena and neither resets it nor detaches gradients — exactly one
//     owner resets per batch. SetArena(nil) disables recycling entirely
//     (the equivalence tests A/B this against the arena-backed path and
//     require bit-identical weights).
//   - Networks (and so arenas) are per-goroutine; the fl server keeps one
//     replica per worker. The loop-side batch buffers (inputs, targets,
//     loss gradient via nn.LossInto.EvalInto) recycle through a pooled
//     scratch arena in fl, reset per batch before Forward runs.
//
// # Parallelism & determinism
//
// The compute substrate is parallel at two grains that compose by budget
// division, never by contention:
//
//   - Client-level: the fl server trains W client replicas concurrently
//     (fl.Config.Workers), one network + arena per worker goroutine.
//   - Intra-op: within one replica, the tensor kernels (tensor.MatMul*P)
//     and the Conv2D sample×group loops split their output rows across a
//     persistent worker pool (internal/parallel), under an explicit core
//     budget granted via nn.Network.SetIntraOp.
//
// Core-budget rules: fl.Config.IntraOp is the total kernel budget
// (0 = GOMAXPROCS). The server grants each of its W workers an equal share
// (at least 1), so W replicas × their kernels never oversubscribe the
// machine; single-client paths (W=1, experiments.TrainCentralized, the swad
// harness, Server.GlobalNet evaluation) receive the full budget. A budget
// of 1 is byte-for-byte the serial kernels.
//
// Fixed-partitioning invariant: parallel.Run splits a loop's index range
// into contiguous chunks keyed only by (budget, length, grain) — never by
// dynamic stealing — and every output element is computed entirely by one
// goroutine running the serial inner loops in the serial order. Gradient
// accumulations that cross the parallel dimension (conv dW/db) are instead
// parallelized over output-channel rows with samples folded in ascending
// order per row. Both ways, the per-target operation order is exactly the
// serial kernels', so training is BIT-identical at every budget and worker
// count (the kernel equivalence tests assert tol 0). Work-based grains
// (parallel.GrainFor) keep small matmuls serial, and dispatch never queues:
// a chunk runs on an idle pool worker or inline on the caller, which makes
// nested parallelism (intra-op kernels inside fl workers) deadlock-free.
// The dispatch path allocates nothing in steady state — kernels recycle
// their parallel.Runner state, preserving the zero-allocation hot path.
//
// # Asynchronous aggregation & virtual time
//
// fl.AsyncServer removes the round barrier entirely: the server keeps a
// configurable number of client jobs in flight, folds each completed result
// into the streaming accumulator the moment it arrives, and applies an
// aggregated update every Buffer folds (FedBuff-style windows). A result's
// staleness is the number of global updates applied between its dispatch and
// its arrival; its fold weight is discounted by a pluggable
// fl.StalenessPolicy (PolynomialStaleness 1/(1+s)^α, ConstantStaleness) via
// the fl.WeightedAccumulator capability — FedAvg, FedProx, and HeteroSwitch
// implement it, and HeteroSwitch discounts the eq. 1 L_EMA inputs by the
// same factor, so a stale client influences the switching signal exactly as
// much as it influences the model. Barrier-only strategies (q-FedAvg,
// SCAFFOLD) are rejected by NewAsyncServer.
//
// Time is simulated, never measured: internal/simclock provides a
// virtual-time event heap (ties at one instant break by dispatch sequence)
// and hash-seeded latency models (constant, uniform, straggler-tail with a
// persistent slow client cohort) that are pure functions of
// (seed, client, step). No code in the async loop or its tests calls
// time.Now. Determinism rules:
//
//   - Client sampling consumes the same RNG stream, in the same order, as
//     the synchronous server; dropout coins are spent at draw time.
//   - New work is admitted at aggregation boundaries, so every job trains
//     against a well-defined broadcast version; Concurrency > Buffer
//     overlaps windows, which is the only source of staleness.
//   - Training is evaluated lazily at completion time on one replica with
//     the full intra-op budget; a refcounted version store retains each
//     broadcast global until its last in-flight reader completes, then
//     recycles the buffer into the FinalizeInto pool (the async analogue of
//     the sync server's spare double-buffer).
//   - Contract (asserted at tolerance 0 by tests in fl and core): zero
//     latency + discount ≡ 1 + Concurrency == Buffer == K is bit-identical
//     to the synchronous streaming server with Workers = 1, and any two
//     async runs with equal seeds and latency models are bit-identical.
//
// Entry points: flsim -async -staleness-alpha -latency-model -async-depth,
// heterobench -exp async-sweep (sync vs async rounds-to-accuracy and virtual
// wall-clock under straggler distributions), and experiments.Options.Async,
// which reroutes every harness's RunFL funnel through the async server.
//
// # Inference fast path
//
// The server-side loop is eval-heavy: every round and every sweep cell runs
// full-dataset accuracy, loss, and fairness metrics on the current global
// model. nn.Network.Freeze compiles a network into an inference-only view
// (nn.Frozen) that strips every training-mode cost:
//
//   - Each BatchNorm2D directly following a Conv2D or Dense is folded into
//     that layer's weights and bias using the RUNNING statistics
//     (W′ = W·γ/√(var+ε), b′ = b·γ/√(var+ε) + β − mean·γ/√(var+ε)), so no
//     normalization pass runs at all. A BN with no matmul predecessor (after
//     a residual sum or pooling) stays a standalone channel-parallel affine.
//   - The activation following a matmul layer (ReLU, HardSwish, HardSigmoid,
//     Sigmoid) is fused into the kernel as a tensor.RowEpilogue: bias + act
//     are applied to each output row inside the parallel chunk that computed
//     it, so the output is never re-traversed by a separate layer pass.
//   - 1×1 stride-1 unpadded convs matmul the image slice directly (their
//     im2col matrix IS the image); depthwise convs run a direct tap-outer
//     plane kernel (tensor.DepthwiseConvPlane) with no lowering. Remaining
//     convs keep one im2col scratch per parallel chunk instead of caching
//     every sample×group column matrix for a backward pass.
//   - Pooling, activations, and the standalone BN path are parallel under
//     the intra-op budget (parallel.GrainFor); nested Networks are inlined;
//     Dropout and Identity compile away.
//
// A frozen view shares its source network's arena and intra-op budget like
// any layer, is re-folded (not recompiled) on every Freeze call so it
// tracks weight updates, and allocates nothing in steady state.
//
// Contract boundary: BN folding reorders float operations, so the frozen
// forward is TOLERANCE-based — within 1e-5 max-abs of the reference eval
// forward with identical argmax on the test fixtures — while networks
// without folded BN (SqueezeNet) are bit-exact, and the frozen forward is
// itself bit-identical across intra-op budgets. Training paths are
// untouched: every tol-0 training bit-reproducibility contract (arena,
// intra-op, async) holds unchanged. Consumers route through nn.EvalView,
// which returns the frozen replica when fused eval is enabled (the default)
// and the reference forward under -fused-eval=false (flsim, heterobench) or
// nn.SetFusedEval(false): metrics.Accuracy / MeanLoss / PerDeviceAccuracy /
// MultiLabelScores, fl.EvalLoss (per-client L_init, including inside server
// workers and the async completion loop), and the experiment eval sweeps.
// The reference path also remains the only path for anything that needs
// batch statistics or backward passes — training, gradient checks — and for
// exact A/B measurements (BenchmarkEval fused vs reference).
//
// Loss evaluation on this path is value-only: losses implement nn.LossValuer
// (EvalValue), which computes the scalar loss with exactly the float-op
// order of the gradient path's EvalInto but elides the dL/d(pred) writes, so
// the value is bit-identical while the eval loops (fl.EvalLoss,
// metrics.MeanLoss) allocate and compute no gradient tensor at all.
// nn.LossValue is the routing helper: LossValuer when available, otherwise
// the LossInto/Eval fallbacks (BenchmarkEvalLoss A/Bs the two paths).
//
// # Kernel backends & numerics tiers
//
// The matmul layer under the frozen path is a three-backend dispatch
// (internal/tensor/backend.go). Every tensor entry point belongs to exactly
// one of two numerics tiers (with the int8 backend occupying a documented
// looser corner of the tolerance tier):
//
//   - ORACLE tier — the unfused entry points (tensor.MatMul, MatMulSlices,
//     MatMulP, the transpose variants, and everything the training stack
//     touches). These always run the original register-tiled serial/parallel
//     kernels with their exact float-op order; they never dispatch. Every
//     tol-0 contract in the repo — training bit-reproducibility across
//     budgets and worker counts, async equivalence, gradient checks — rides
//     on this tier and is untouched by backend selection.
//   - TOLERANCE tier — the fused epilogue entry points the frozen path
//     compiles to (MatMulSlicesPEp, MatMulIntoPEp, MatMulAccSlicesPEp).
//     These dispatch on the active backend and promise ≤1e-5-per-unit
//     closeness to the oracle result with identical argmax, the same
//     contract the BN fold already imposes on frozen outputs.
//
// The packed backend is a cache-blocked GEBP kernel: it packs B once into
// panel-major 4-wide column panels (zero-padded tail), k-blocks at 256 so
// the panel stays cache-resident, and runs a 2×4 register microkernel with
// the row epilogue applied per completed row chunk. Pack buffers and
// dispatch state recycle through pools, preserving the frozen path's
// 0 allocs/op steady state. Parallelism row-partitions the shared read-only
// packed panel, so every output element is still computed wholly by one
// goroutine — packed outputs are bit-identical across intra-op budgets and
// across concurrent replicas, which keeps the serving determinism contract
// (digests, histograms) intact per backend. Numerically, packed differs from
// the oracle only by k-block summation order (k > 256) and ±0/NaN edge
// cases; TestPackedMatchesOracle sweeps shapes × budgets against the 1e-5 +
// argmax contract.
//
// Backend selection is process-wide: tensor.SetBackend /
// tensor.ParseBackend, the HETEROSWITCH_KERNEL_BACKEND environment variable
// (read at init), and the -kernel-backend flag on flsim, heterobench, and
// flserve (experiments.Options.KernelBackend for library callers). The
// default, BackendAuto, packs only when the shape profits (m ≥ 8 rows and
// m·k·n ≥ 16384): packing costs O(k·n) writes, so tiny matmuls — the serve
// smoke model's 4×9×64, say — stay on the oracle kernels, and forcing
// -kernel-backend=packed on such shapes measurably loses to serial.
// BackendSerial pins the oracle kernels everywhere and is bit-identical to
// the pre-dispatch repo. The CI backend matrix runs the full suite under
// both forced backends.
//
// # Int8 tier & weight-stationary panels
//
// BackendInt8 is the quantized rung of the tolerance tier, strictly opt-in:
// the auto heuristic never selects it, so the default lanes (and every
// byte-identical smoke contract) are untouched unless the user forces
// -kernel-backend=int8. The weight operand of each frozen matmul is
// quantized symmetrically per output channel to 8 bits (biased-unsigned
// storage), the activation operand is quantized per row (dense) or per
// tensor (im2col) at call time, and the SWAR microkernel accumulates exact
// int32 dot products before a single float dequantize-and-epilogue per
// output row. Because the integer accumulation is exact and the row
// partitioning is the same as the float tiers, int8 outputs are bit-identical
// across intra-op budgets and concurrent replicas — serving digests replay
// exactly under int8, just with different bits than the float tiers. The
// numeric promise is tensor.Int8Tol (5e-2 relative, unit-floored) against
// the oracle with identical argmax; TestInt8MatchesOracle and the CI int8
// matrix lane enforce it suite-wide.
//
// Weights are stationary: tensor.PackedWeights holds a weight version's
// packed forms (float GEBP panels, int8 panels, per-channel scales), built
// once per (version, matmul slot) and reused across every replica and batch
// of that version. Ownership rules: nn's PanelCache keys sets by version and
// refcounts them across the replica pool — a replica acquires the set for
// the version it is folding BEFORE releasing its previous set
// (publish→retire safety), the newest set survives zero references so a
// landing version never repacks, and superseded sets recycle their slot
// arrays through a pool. A PackedWeights never retains the source weight
// slice; callers pass the live folded weights at each fused entry call, so
// there is no aliasing between a replica's fold buffer and the shared
// panels. tensor.WeightPackCount observes the pack counter: steady state
// packs once per slot per version — never per replica, never per batch —
// and the int8 inference path allocates nothing per batch once scratch
// pools are warm. The same PackedWeights handle makes the packed float
// backend weight-stationary on the frozen path (panels built at fold time
// instead of per call).
//
// # Serving
//
// internal/serve stands a prediction front end on the frozen inference path;
// cmd/flserve is its load-harness entry point. Three pieces:
//
//   - Version cache: serve.Store wraps the refcounted nn.VersionStore (the
//     same store backing the async server's broadcast versions). Acquire
//     pins the current version for one request; Publish installs new weights
//     as version N+1 and drops the store's own reference to N, which is
//     recycled into a buffer pool the moment its last in-flight reader
//     releases it. Resident versions are therefore bounded by request
//     lifetimes (1 + versions still being read), never by publish count.
//   - Micro-batching: requests admitted to the load harness join the forming
//     batch for the version current at THEIR admission. A batch flushes when
//     it reaches Config.MaxBatch, when Config.BatchBudget virtual time has
//     passed since its first request, or when a publish occurs — a batch
//     never mixes versions, so every request is served end-to-end by the
//     exact version it was admitted under. Flushed batches execute on
//     Config.Workers frozen replicas (nn.ReplicaPool), each granted
//     IntraOp/Workers cores; a replica reloads + re-folds weights only when
//     its pinned version changes (nn.Replica.Ensure), not per batch. If
//     Ensure fails at service start, the error path rolls back everything
//     the batch held — the busy slot, the borrowed replica, the version
//     pin, the batch struct — before surfacing the error, so a failed run
//     leaves the pool full, the store at Live()==1, and nothing leaked.
//   - Flush order: flushed batches start in FIFO order by default.
//     Config.Flush = FlushEDF (flserve -flush edf) starts them earliest-
//     deadline-first instead, deadline = oldest member's arrival +
//     Admission.Deadline, ties broken by flush sequence. Without version
//     churn the two orders coincide (flush order is already deadline
//     order, asserted bit-for-bit); under churn FIFO's publish-triggered
//     flush lets the forming batch (the newest arrivals) jump older queued
//     batches onto the freed worker, so under overload EDF sheds strictly
//     fewer deadline-expired requests at equal offered load.
//   - Load harness: Server.RunLoad drives the stack in virtual time on a
//     single goroutine — seeded open-loop (Poisson) or closed-loop
//     (exponential think time) arrivals, an affine virtual service-time
//     model, and a power-of-two-bucket latency histogram (math.Frexp
//     bucketing, no libm). The steady-state request path performs zero heap
//     allocations (asserted by TestLoadSteadyStateZeroAlloc). Report
//     quantiles are nearest-rank order statistics (index ceil(q·n)-1), so
//     the printed p99 is the smallest latency with ≥99% of requests at or
//     below it.
//
// Train-while-serve wiring: fl.AsyncServer.OnPublish fires synchronously
// from finalizeWindow for every window that installs a new global version
// (zero-weight windows publish nothing), with (version, weights, virtual
// time); the weights are only valid during the call — consumers copy them
// into a recycled buffer (serve.Store.TakeBuffer) and land them with
// Server.PublishAt(t, w), which advances the serving simulation to t and
// applies the publish on the shared virtual clock. Server.BeginTrainLoad /
// PublishAt / FinishTrainLoad run training completions and serving arrivals
// as one deterministic event stream (experiments.RunTrainServe, flserve
// -train); wired runs replace the synthetic PublishEvery churn knob and
// extend the Report with served-version staleness — how many versions
// behind the newest finalized global each request was served
// (min/mean/max + histogram, folded into the output digest). Unwired runs
// carry no staleness fields and print byte-identical reports to earlier
// releases.
//
// Determinism contract (asserted at tolerance 0 by the serve tests and
// diffed byte-for-byte by the CI flserve and train-while-serve smokes): a
// load run's Report — per-request output digest, latency histogram,
// quantiles, virtual throughput, staleness when wired — is a pure function
// of (model weights, LoadConfig, Config), bit-identical across runs and
// across every intra-op budget; version churn (publishes from the trainer,
// or PublishEvery republishing identical values) may legally shift batch
// boundaries and therefore the latency schedule, but never the outputs.
// Server.PredictInto is the synchronous concurrent entry point (real
// goroutines, no virtual time) and keeps only the output contract: results
// bit-identical to a serial reference regardless of interleaving with
// Publish.
//
// # Fault injection & robustness
//
// internal/faults provides seeded, composable client fault models, and the
// training/serving engines are hardened against exactly those faults. A
// faults.Model is parsed from a CLI spec (faults.ParseSpec, mirroring
// simclock.ParseModel): "crash:P" (a drawn job never completes), "flaky:P,R"
// (completes after R timeouts), "corrupt:P,MODE" (the returned delta is
// poisoned — nan, inf, blowup, or mix), and "churn:PERIOD,ON" (per-client
// on/off duty cycles in virtual time), combined with "+". Every draw is a
// pure hash of (seed, client, job), never an RNG stream, so fault fates
// replay identically run-to-run and are independent of scheduling.
//
// Hardened consumers:
//
//   - fl.AsyncServer arms a virtual-time timeout per dispatched job
//     (AsyncConfig.Timeout); an expired job is reissued against the CURRENT
//     global with exponential backoff (RetryBackoff doubled per attempt) up
//     to MaxAttempts, after which the client counts failed and its window
//     slot is refilled. Churned-off clients have their dispatch deferred to
//     the next on-window. AsyncConfig.MaxStaleness drops results staler
//     than the bound instead of folding them. AsyncRoundStats accounts for
//     all of it: Reissues, Failed, Deferred, StaleDropped, Rejected,
//     BytesWasted.
//   - Both engines gate every update before it reaches the global
//     accumulator: fl.Config.MaxDeltaNorm rejects deltas containing NaN/Inf
//     or with float64 L2 norm beyond the bound (+Inf = non-finite check
//     only; 0 = gate off). The gate tests prove a corrupted client's
//     update never perturbs the global weights — bit-identical (tol 0) to a
//     run where that client contributes nothing — on both engines.
//   - internal/serve gains admission control (Config.Admission,
//     serve.ParseAdmission "DEPTH,DEADLINE"): arrivals beyond Depth pending
//     requests are shed immediately, and queued requests whose wait exceeds
//     Deadline are shed at service start, so closed-loop overload degrades
//     to deterministic rejections with a bounded p99 instead of unbounded
//     virtual queueing. Report gains Served/ShedQueue/ShedDeadline/
//     Reissues/MaxQueue, folded into the output digest when admission is
//     enabled.
//
// The load-bearing contract, asserted by the fault tests and the CI chaos
// smoke (seeded crash+flaky+corrupt+churn runs diffed byte-for-byte): with
// no faults configured every output is bit-identical to the pre-fault
// engines, and WITH faults configured a run is still a pure function of
// (config, seed) — chaos is deterministic. Flags: flsim/heterobench
// -faults, -max-delta-norm, -fault-timeout, -fault-backoff,
// -fault-attempts, -max-staleness; flserve -admission
// (experiments.Options.Faults/MaxDeltaNorm and AsyncOptions for library
// callers).
//
// The root package exists to carry the repository-level benchmarks in
// bench_test.go, one per table and figure of the paper's evaluation, plus
// the aggregation-pipeline benchmarks.
package heteroswitch
