package isp

import "fmt"

// Stage identifies one of the six ISP stages (Table 3 rows).
type Stage int

// The six ISP stages, in processing order.
const (
	StageDemosaic Stage = iota
	StageDenoise
	StageWB
	StageGamut
	StageTone
	StageCompress
	NumStages
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageDemosaic:
		return "demosaic"
	case StageDenoise:
		return "denoise"
	case StageWB:
		return "white-balance"
	case StageGamut:
		return "gamut"
	case StageTone:
		return "tone"
	case StageCompress:
		return "compress"
	}
	return fmt.Sprintf("Stage(%d)", int(s))
}

// Pipeline is a full ISP configuration: one algorithm per stage.
type Pipeline struct {
	Demosaic DemosaicAlg
	Denoise  DenoiseAlg
	WB       WBAlg
	Gamut    GamutAlg
	Tone     ToneAlg
	Compress CompressAlg
}

// Baseline returns the paper's Baseline column of Table 3: PPG demosaicing,
// FBDD denoising, gray-world white balance, sRGB gamut, sRGB gamma tone,
// JPEG quality 85.
func Baseline() Pipeline {
	return Pipeline{
		Demosaic: DemosaicPPG,
		Denoise:  DenoiseFBDD,
		WB:       WBGrayWorld,
		Gamut:    GamutSRGB,
		Tone:     ToneSRGBGamma,
		Compress: CompressJPEG85,
	}
}

// Option selects Baseline (0), Option 1 (1) or Option 2 (2) of Table 3 for
// a single stage, returning a modified copy. It returns an error for
// unknown stages or option indices.
func (p Pipeline) Option(stage Stage, option int) (Pipeline, error) {
	if option < 0 || option > 2 {
		return p, fmt.Errorf("isp: option %d out of range", option)
	}
	switch stage {
	case StageDemosaic:
		p.Demosaic = []DemosaicAlg{DemosaicPPG, DemosaicBinning, DemosaicAHD}[option]
	case StageDenoise:
		p.Denoise = []DenoiseAlg{DenoiseFBDD, DenoiseNone, DenoiseWavelet}[option]
	case StageWB:
		p.WB = []WBAlg{WBGrayWorld, WBNone, WBWhitePatch}[option]
	case StageGamut:
		p.Gamut = []GamutAlg{GamutSRGB, GamutNone, GamutProPhoto}[option]
	case StageTone:
		p.Tone = []ToneAlg{ToneSRGBGamma, ToneNone, ToneSRGBGammaEq}[option]
	case StageCompress:
		p.Compress = []CompressAlg{CompressJPEG85, CompressNone, CompressJPEG50}[option]
	default:
		return p, fmt.Errorf("isp: unknown stage %v", stage)
	}
	return p, nil
}

// String renders the pipeline configuration compactly.
func (p Pipeline) String() string {
	return fmt.Sprintf("ISP{%v|%v|%v|%v|%v|%v}", p.Demosaic, p.Denoise, p.WB, p.Gamut, p.Tone, p.Compress)
}

// Process runs a RAW frame through the full pipeline, producing the
// display-referred image a device's camera app would save.
func (p Pipeline) Process(raw *RAW) (*Image, error) {
	im := Demosaic(raw, p.Demosaic)
	im = Denoise(im, p.Denoise)
	im = WhiteBalance(im, p.WB)
	im = GamutMap(im, p.Gamut)
	im = ToneTransform(im, p.Tone)
	im, err := Compress(im, p.Compress)
	if err != nil {
		return nil, err
	}
	im.Clamp()
	return im, nil
}

// ProcessRAWOnly converts a RAW frame with the minimal bilinear demosaic and
// no further processing — the "RAW data" condition of Section 3.3, which
// exposes the sensor's uncorrected output to the model.
func ProcessRAWOnly(raw *RAW) *Image {
	im := DemosaicBilinearOnly(raw)
	im.Clamp()
	return im
}
