package fl

import (
	"fmt"
	"math"

	"heteroswitch/internal/faults"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/simclock"
)

// StalenessPolicy maps a completed result's staleness — how many global
// model updates were applied between its dispatch and its arrival — to the
// multiplicative discount on its fold weight. Weight must be a deterministic
// function of staleness, and policies that preserve the synchronous
// equivalence contract keep Weight(0) == 1 so fresh results fold exactly as
// the synchronous server folds them (PolynomialStaleness does;
// ConstantStaleness only at C = 1). A weight of 0 drops the result.
type StalenessPolicy interface {
	Name() string
	Weight(staleness int) float64
}

// ConstantStaleness applies the same weight C to every result regardless of
// staleness — FedAsync's "constant" policy. C = 1 disables discounting; any
// other C also rescales FRESH results (Weight(0) = C ≠ 1), deliberately
// trading away the sync-equivalence contract, and C = 0 discards every
// result, freezing the global model. Use PolynomialStaleness when staleness
// alone should drive the discount.
type ConstantStaleness struct {
	C float64
}

// Name implements StalenessPolicy.
func (p ConstantStaleness) Name() string { return fmt.Sprintf("const(%g)", p.C) }

// Weight implements StalenessPolicy.
func (p ConstantStaleness) Weight(int) float64 { return p.C }

// PolynomialStaleness is the polynomial discount 1/(1+s)^Alpha: fresh results
// fold at full weight and weight decays polynomially with staleness. Alpha = 0
// (the zero value) makes the discount identically 1.
type PolynomialStaleness struct {
	Alpha float64
}

// Name implements StalenessPolicy.
func (p PolynomialStaleness) Name() string { return fmt.Sprintf("poly(%g)", p.Alpha) }

// Weight implements StalenessPolicy.
func (p PolynomialStaleness) Weight(staleness int) float64 {
	if staleness <= 0 || p.Alpha == 0 {
		return 1
	}
	return math.Pow(1+float64(staleness), -p.Alpha)
}

// AsyncConfig carries the asynchronous server's knobs on top of the shared
// fl.Config hyperparameters.
type AsyncConfig struct {
	// Staleness discounts stale folds. nil means no discount
	// (PolynomialStaleness{Alpha: 0}).
	Staleness StalenessPolicy
	// Latency models each dispatched job's virtual duration. nil means zero
	// latency: every job completes at its dispatch instant, which (with the
	// default Concurrency/Buffer) makes the async run bit-identical to the
	// synchronous streaming server.
	Latency simclock.LatencyModel
	// Concurrency is the number of jobs kept in flight. 0 means
	// cfg.ClientsPerRound. Values above Buffer overlap aggregation windows:
	// jobs dispatched against older globals complete under newer ones, which
	// is where staleness (and its discount) appears.
	Concurrency int
	// Buffer is the number of completed results folded per aggregation
	// (FedBuff's K). 0 means cfg.ClientsPerRound.
	Buffer int
	// Timeout arms per-job virtual-time reissue: an attempt that has not
	// completed Timeout units after its dispatch instant is abandoned and
	// the job redispatched (against the then-current global) after
	// RetryBackoff. 0 disables timeouts — the pre-timeout behavior, where
	// every dispatch eventually completes — and is rejected when
	// Config.Faults can crash jobs.
	Timeout float64
	// RetryBackoff is the virtual-time delay before a timed-out job's
	// reissue, doubling with each further attempt (exponential backoff).
	// 0 reissues at the timeout instant.
	RetryBackoff float64
	// MaxAttempts caps dispatch attempts per job: when the last allowed
	// attempt times out the client is counted failed for the window
	// (AsyncRoundStats.Failed) and a replacement admitted. 0 means 3
	// whenever Timeout > 0.
	MaxAttempts int
	// MaxStaleness, when > 0, is the drop rule: a completion whose
	// staleness exceeds it is discarded before training — it consumes its
	// fold slot like a zero-discount skip, its upload bytes are wasted
	// (AsyncRoundStats.BytesWasted), and no replacement draw happens, so
	// the sampling stream stays pinned to the no-drop server's.
	MaxStaleness int
}

// withDefaults resolves zero fields against the base config.
func (a AsyncConfig) withDefaults(cfg Config) AsyncConfig {
	if a.Staleness == nil {
		a.Staleness = PolynomialStaleness{}
	}
	if a.Latency == nil {
		a.Latency = simclock.Constant{}
	}
	if a.Buffer == 0 {
		a.Buffer = cfg.ClientsPerRound
	}
	if a.Concurrency == 0 {
		a.Concurrency = a.Buffer
	}
	if a.Timeout > 0 && a.MaxAttempts == 0 {
		a.MaxAttempts = 3
	}
	return a
}

// validate reports configuration errors (after withDefaults).
func (a AsyncConfig) validate() error {
	if a.Buffer < 1 || a.Concurrency < 1 {
		return fmt.Errorf("fl: non-positive async buffer/concurrency: %d/%d", a.Buffer, a.Concurrency)
	}
	if a.Buffer > a.Concurrency {
		return fmt.Errorf("fl: async buffer %d exceeds concurrency %d (a window could never fill)", a.Buffer, a.Concurrency)
	}
	if a.Timeout < 0 || a.RetryBackoff < 0 || a.MaxAttempts < 0 || a.MaxStaleness < 0 {
		return fmt.Errorf("fl: negative async timeout/backoff/attempts/staleness: %g/%g/%d/%d",
			a.Timeout, a.RetryBackoff, a.MaxAttempts, a.MaxStaleness)
	}
	if a.Timeout <= 0 && (a.MaxAttempts > 0 || a.RetryBackoff > 0) {
		return fmt.Errorf("fl: async attempt cap/backoff configured without a timeout")
	}
	return nil
}

// AsyncRoundStats extends RoundStats with the asynchronous path's
// observability: where the virtual clock stood when the aggregation fired and
// how stale (and therefore how discounted) the folded results were.
type AsyncRoundStats struct {
	RoundStats
	// VirtualTime is the simulated clock at this aggregation, in the latency
	// model's units.
	VirtualTime float64
	// MeanStaleness is the mean number of global updates applied between
	// dispatch and arrival across this window's results; MaxStaleness the
	// worst case.
	MeanStaleness float64
	MaxStaleness  int
	// MeanDiscount is the mean staleness weight applied to this window's
	// folds (1 when nothing was stale or discounting is off).
	MeanDiscount float64
	// Version is the number of global model updates applied through this
	// aggregation.
	Version int
	// Skipped counts this window's completions whose staleness discount was 0:
	// their uploads were discarded without paying local training (the fold at
	// weight 0 is a no-op, so the result could never matter). Skipped clients
	// still appear in Sampled and in the byte accounting.
	Skipped int
	// StaleDropped counts completions discarded by the AsyncConfig.
	// MaxStaleness drop rule: like Skipped they consume a fold slot without
	// training, but their upload bytes additionally count as BytesWasted.
	StaleDropped int
	// Reissues counts timed-out attempts that were redispatched (with
	// exponential backoff) this window.
	Reissues int
	// Failed counts jobs abandoned after MaxAttempts timed-out attempts;
	// each failed client never uploads and a replacement job is admitted.
	Failed int
	// Deferred counts dispatches delayed by availability churn to the
	// client's next duty window.
	Deferred int
}

// asyncJob is one dispatched unit of client work: who trains, against which
// global version, on which attempt. key is the job's first dispatch sequence
// number — the stable identity under which the fault model draws the job's
// fate, so retries of the same job replay the same draw.
type asyncJob struct {
	client  *Client
	version int
	attempt int // 1-based dispatch attempt
	key     int
}

// asyncEvent is the single pending clock event of one in-flight job: its
// completion, or — when the current attempt is fated to fail or its latency
// overruns the timeout — its reissue deadline.
type asyncEvent struct {
	job     asyncJob
	timeout bool
}

// AsyncServer drives staleness-aware asynchronous federated training on a
// deterministic virtual-time simulation. There is no round barrier: the
// server keeps Concurrency jobs in flight, a simclock heap orders their
// completions in virtual time, and every completed result folds into the
// streaming accumulator immediately — discounted by the staleness policy —
// with an aggregation (a new global version) every Buffer folds. New work is
// admitted at aggregation boundaries, so each job trains against a
// well-defined broadcast version; with Concurrency > Buffer the windows
// overlap and results arrive stale.
//
// Determinism: the only randomness is the client-sampling stream (the same
// stream, in the same order, as the synchronous server's) and the hash-seeded
// latency model; completion ties at one virtual instant break by dispatch
// sequence. Two runs with the same Config, AsyncConfig, and population are
// bit-identical, and a run with zero latency, no discount, and
// Concurrency == Buffer == ClientsPerRound is bit-identical to the
// synchronous streaming server with Workers = 1. No wall-clock time is read
// anywhere in the loop.
//
// Training is evaluated lazily at completion time on a single replica that
// gets the full intra-op kernel budget (Config.Workers is ignored): the
// simulation's parallelism lives inside the kernels, where it is bit-exact,
// not across clients, where fold order would become scheduling-dependent.
type AsyncServer struct {
	Cfg      Config
	Async    AsyncConfig
	Strategy Strategy
	Loss     nn.Loss
	Clients  []*Client
	Global   nn.Weights
	// Version counts applied global updates. A window whose folds all carried
	// zero weight leaves the model — and so the version — unchanged.
	Version int
	// OnPublish, when non-nil, is invoked synchronously from finalizeWindow
	// for every window that installed a new global version, with the new
	// version counter, the new global weights, and the virtual time of the
	// publish. This is the training→serving wiring point: a serving store
	// subscribes here instead of polling. The weights are only guaranteed
	// valid during the call — retired globals recycle once their last
	// in-flight reader completes — so a consumer that outlives the call must
	// copy them (serve.Store.TakeBuffer + PublishAt is the wired pattern).
	// Windows whose folds all carried zero weight publish nothing.
	OnPublish func(version int, w nn.Weights, vtime float64)

	builder Builder
	rng     *frand.RNG
	net     *nn.Network
	sa      StreamingAggregator
	acc     WeightedAccumulator
	clock   simclock.Clock
	pool    weightsPool
	store   nn.VersionStore

	// queue holds drawn-but-undispatched clients in sampling order; qhead
	// avoids re-slicing the backing array away.
	queue []*Client
	qhead int
	// events maps dispatch sequence number → the pending event of an
	// in-flight job (exactly one per job); seq is the monotonic dispatch
	// counter (also the clock tie-break).
	events map[int]asyncEvent
	seq    int
	// window counts completed aggregation windows (== RoundStats.Round).
	window  int
	dropped []int
}

// NewAsyncServer builds an asynchronous server with a fresh global model.
// The strategy must support streaming aggregation with weighted folds
// (FedAvg, FedProx, HeteroSwitch); barrier-only strategies (q-FedAvg,
// SCAFFOLD) need every result of a round at once and cannot aggregate
// asynchronously.
func NewAsyncServer(cfg Config, builder Builder, loss nn.Loss, strategy Strategy,
	clients []*Client, async AsyncConfig) (*AsyncServer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(clients) == 0 {
		return nil, fmt.Errorf("fl: no clients")
	}
	if cfg.ClientsPerRound > len(clients) {
		return nil, fmt.Errorf("fl: K=%d exceeds population %d", cfg.ClientsPerRound, len(clients))
	}
	async = async.withDefaults(cfg)
	if err := async.validate(); err != nil {
		return nil, err
	}
	if cfg.Faults.NeedsTimeout() && async.Timeout <= 0 {
		return nil, fmt.Errorf("fl: fault model %q can lose dispatched jobs; AsyncConfig.Timeout must be > 0", cfg.Faults)
	}
	sa, ok := strategy.(StreamingAggregator)
	if !ok {
		return nil, fmt.Errorf("fl: strategy %s cannot aggregate asynchronously (no streaming fold)", strategy.Name())
	}
	net := builder()
	net.SetIntraOp(intraOpShare(cfg, 1))
	global := net.Snapshot()
	acc, ok := sa.NewAccumulator(global, cfg).(WeightedAccumulator)
	if !ok {
		return nil, fmt.Errorf("fl: strategy %s's accumulator cannot fold weighted results", strategy.Name())
	}
	return &AsyncServer{
		Cfg:      cfg,
		Async:    async,
		Strategy: strategy,
		Loss:     loss,
		Clients:  clients,
		Global:   global,
		builder:  builder,
		// The same sampling stream as the synchronous server: with zero
		// latency and no discount the two draw identical client sequences.
		rng:    frand.New(cfg.Seed ^ 0x5ca1ab1e),
		net:    net,
		sa:     sa,
		acc:    acc,
		events: make(map[int]asyncEvent),
	}, nil
}

// nextClient pops the dispatch queue, refilling it with a fresh K-client
// draw — consuming the sampling RNG exactly as the synchronous server's
// SampleClients + dropout pass does — whenever it runs dry. Clients lost to
// dropout are recorded and never dispatched (their broadcast still counts,
// since dropout is only observed after the round trip).
func (s *AsyncServer) nextClient(st *AsyncRoundStats, wb int64) *Client {
	for {
		if s.qhead < len(s.queue) {
			c := s.queue[s.qhead]
			s.queue[s.qhead] = nil
			s.qhead++
			if s.qhead == len(s.queue) {
				s.queue = s.queue[:0]
				s.qhead = 0
			}
			return c
		}
		for _, j := range s.rng.Choice(len(s.Clients), s.Cfg.ClientsPerRound) {
			c := s.Clients[j]
			if s.Cfg.ClientDropout > 0 && s.rng.Float64() < s.Cfg.ClientDropout {
				s.dropped = append(s.dropped, c.ID)
				st.BytesDown += wb
				continue
			}
			s.queue = append(s.queue, c)
		}
	}
}

// admit tops the in-flight set up to Concurrency at the current virtual
// time, broadcasting the current global version to each new job.
func (s *AsyncServer) admit(st *AsyncRoundStats) {
	wb := weightBytes(s.Global)
	for len(s.events) < s.Async.Concurrency {
		c := s.nextClient(st, wb)
		job := asyncJob{client: c, version: s.Version, attempt: 1, key: s.seq}
		s.store.Retain(s.Version, s.Global)
		s.dispatch(job, 0, st, wb)
	}
}

// dispatch broadcasts one attempt of a job, delay virtual-time units from
// now (0 at admission; the exponential backoff on reissue), and schedules
// the attempt's single pending event. Churn defers the dispatch instant to
// the client's next duty window. The attempt's latency is drawn exactly as
// the fault-free server draws it — one Sample per dispatch sequence number —
// and the attempt fails when the fault model says so (crash or a transient
// attempt still in its failing prefix) or, with a timeout armed, when the
// drawn latency overruns it; a failing attempt schedules only its reissue
// deadline, a succeeding one only its completion. With no faults and no
// timeout this is byte-for-byte the pre-fault dispatch.
func (s *AsyncServer) dispatch(job asyncJob, delay float64, st *AsyncRoundStats, wb int64) {
	id := s.seq
	s.seq++
	at := s.clock.Now() + delay
	if f := s.Cfg.Faults; f.NeedsVirtualTime() && !f.Available(job.client.ID, at) {
		st.Deferred++
		at = f.NextOn(job.client.ID, at)
	}
	lat := s.Async.Latency.Sample(job.client.ID, id)
	fails := s.Cfg.Faults.FailCount(job.client.ID, job.key)
	to := s.Async.Timeout
	if job.attempt <= fails || (to > 0 && lat > to) {
		s.events[id] = asyncEvent{job: job, timeout: true}
		s.clock.Schedule(at+to, id)
	} else {
		s.events[id] = asyncEvent{job: job}
		s.clock.Schedule(at+lat, id)
	}
	st.BytesDown += wb
}

// runJob lazily evaluates one completed job — training against the exact
// global version broadcast at its dispatch — and folds the result into the
// round accumulator at the given discount. The returned result carries only
// scalar stats; its weights aliased the recycled scratch buffer.
//
// A discount of 0 skips training entirely: the fold would contribute nothing
// (AccumulateWeighted at weight 0 is a no-op by contract), so paying all
// LocalEpochs of SGD for it is pure waste. The skip is invisible to
// everything downstream — the client's RoundRNG is a pure function of
// (client, version) so no shared RNG stream advances, the zero-weight
// accumulator state is unchanged, and the caller still releases the version
// and accounts BytesUp (the client uploaded; the server discarded).
// The corruption process and the validation gate sit between training and
// the fold: a poisoned update is detected against the exact global version
// the client trained from and never reaches the accumulator — its client
// lands in Rejected and its upload in BytesWasted.
func (s *AsyncServer) runJob(job asyncJob, discount float64, st *AsyncRoundStats, wb int64) ClientResult {
	if discount == 0 {
		return ClientResult{ClientID: job.client.ID, DeviceIdx: job.client.Device}
	}
	global := s.store.Weights(job.version)
	scratch := s.pool.get(global)
	defer s.pool.put(scratch)
	res := localUpdate(s.Strategy, s.net, global, job.client, s.Cfg, s.Loss, job.version, &scratch)
	if m := s.Cfg.Faults.Corruption(job.client.ID, job.key); m != faults.None {
		corruptUpdate(m, global, res.Weights)
	}
	if updateValid(global, res.Weights, s.Cfg.MaxDeltaNorm) {
		s.acc.AccumulateWeighted(res, discount)
	} else {
		st.Rejected = append(st.Rejected, job.client.ID)
		st.BytesWasted += wb
	}
	res.Weights = Weights{}
	return res
}

// RunRound executes one aggregation window: admit new jobs, fold the next
// Buffer completions in virtual-time order, and apply the aggregated update.
func (s *AsyncServer) RunRound() AsyncRoundStats {
	var st AsyncRoundStats
	st.Round = s.window
	s.window++
	s.admit(&st)

	wb := weightBytes(s.Global)
	var totalSamples, staleSum, discSum float64
	for fold := 0; fold < s.Async.Buffer; fold++ {
		ev, ok := s.clock.Next()
		if !ok {
			panic("fl: async event queue drained mid-window")
		}
		e := s.events[ev.ID]
		delete(s.events, ev.ID)
		job := e.job
		if e.timeout {
			// The attempt's reissue deadline expired (the fault model failed
			// it, or its latency overran the timeout). Timeouts never consume
			// fold slots: either the job is redispatched against the current
			// global with exponential backoff, or — attempts exhausted — the
			// client is counted failed for the window and replaced so
			// Concurrency jobs stay in flight.
			s.store.Release(job.version, s.Global)
			if job.attempt >= s.Async.MaxAttempts {
				st.Failed++
				if st.Failed > failedGuard(s.Async.Buffer) {
					panic("fl: async window starved: every dispatched job times out (is the crash probability 1?)")
				}
				s.admit(&st)
				fold--
				continue
			}
			delay := math.Ldexp(s.Async.RetryBackoff, job.attempt-1)
			job.attempt++
			job.version = s.Version
			s.store.Retain(s.Version, s.Global)
			s.dispatch(job, delay, &st, wb)
			st.Reissues++
			fold--
			continue
		}
		staleness := s.Version - job.version
		discount := s.Async.Staleness.Weight(staleness)
		dropStale := s.Async.MaxStaleness > 0 && staleness > s.Async.MaxStaleness
		if dropStale {
			// The MaxStaleness drop rule fires before training: the upload
			// already happened (BytesUp) but is discarded (BytesWasted), and
			// the fold slot is consumed without a replacement draw, keeping
			// the sampling stream pinned to the no-drop server's.
			st.StaleDropped++
			st.BytesWasted += wb
			discount = 0
		} else if discount == 0 {
			st.Skipped++
		}
		res := s.runJob(job, discount, &st, wb)
		s.store.Release(job.version, s.Global)

		n := float64(res.NumSamples)
		st.MeanLoss += res.TrainLoss * n
		st.MeanInit += res.InitLoss * n
		totalSamples += n
		st.Sampled = append(st.Sampled, res.ClientID)
		st.BytesUp += wb
		staleSum += float64(staleness)
		discSum += discount
		if staleness > st.MaxStaleness {
			st.MaxStaleness = staleness
		}
	}
	// Collected after the fold loop so dropout observed while admitting
	// replacements for failed jobs lands in this window's stats (with no
	// faults, admission only happens up front and this is the same value).
	st.Dropped = s.dropped
	s.dropped = nil
	if totalSamples > 0 {
		st.MeanLoss /= totalSamples
		st.MeanInit /= totalSamples
	}
	st.MeanStaleness = staleSum / float64(s.Async.Buffer)
	st.MeanDiscount = discSum / float64(s.Async.Buffer)
	st.TotalEpochs = (s.Async.Buffer - st.Skipped - st.StaleDropped) * s.Cfg.LocalEpochs

	s.finalizeWindow()
	st.VirtualTime = s.clock.Now()
	st.Version = s.Version
	return st
}

// finalizeWindow turns the window's accumulator into the next global
// version. Like the synchronous server it prefers FinalizeInto on a recycled
// buffer; the buffer pool here is the version store's, fed by retired globals
// once their last in-flight reader completes. A window whose folds all
// carried zero weight (every discount was 0) leaves the global — and the
// version counter — unchanged, so staleness keeps measuring real model drift.
func (s *AsyncServer) finalizeWindow() {
	old := s.Global
	if fi, ok := s.acc.(IntoFinalizer); ok {
		buf := s.store.TakeBuffer(old)
		if fi.FinalizeInto(buf) {
			s.Global = buf
		} else {
			s.store.GiveBuffer(buf)
		}
	} else {
		s.Global = s.acc.Finalize()
	}
	if !s.Global.SharesStorage(old) {
		s.Version++
		s.store.Retire(old)
		if s.OnPublish != nil {
			s.OnPublish(s.Version, s.Global, s.clock.Now())
		}
	}
	if ra, ok := s.acc.(ResettableAccumulator); ok {
		ra.Reset(s.Global, s.Cfg)
	} else {
		s.acc = s.sa.NewAccumulator(s.Global, s.Cfg).(WeightedAccumulator)
	}
}

// Run executes cfg.Rounds aggregation windows, invoking callback (if
// non-nil) after each.
func (s *AsyncServer) Run(callback func(AsyncRoundStats)) {
	for w := 0; w < s.Cfg.Rounds; w++ {
		st := s.RunRound()
		if callback != nil {
			callback(st)
		}
	}
}

// failedGuard bounds permanent failures per window: past it every dispatch
// is evidently timing out (e.g. crash probability 1) and the window can
// never fill, so the simulation stops instead of spinning forever.
func failedGuard(buffer int) int {
	return 1000 * (buffer + 1)
}

// Now returns the current virtual time of the simulation.
func (s *AsyncServer) Now() float64 { return s.clock.Now() }

// InFlight returns the number of dispatched-but-unfolded jobs.
func (s *AsyncServer) InFlight() int { return len(s.events) }

// GlobalNet returns a network loaded with the current global weights, for
// evaluation; it gets the full intra-op budget like the synchronous server's.
func (s *AsyncServer) GlobalNet() *nn.Network {
	net := s.builder()
	if err := net.LoadWeights(s.Global); err != nil {
		panic("fl: builder incompatible with global weights: " + err.Error())
	}
	net.SetIntraOp(intraOpShare(s.Cfg, 1))
	return net
}
