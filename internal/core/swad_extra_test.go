package core

import (
	"testing"

	"heteroswitch/internal/fl"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/tensor"
)

// TestSWADAverageMatchesManual verifies Algorithm 1's line 17 arithmetic:
// after k batches the SWAD weights equal the running mean of the post-step
// weights (the initial copy is fully replaced by the first update).
func TestSWADAverageMatchesManual(t *testing.T) {
	clients, _ := toyPopulation(61)
	client := clients[0]
	cfg := fl.Config{Rounds: 1, ClientsPerRound: 1, BatchSize: 4, LocalEpochs: 2, LR: 0.05, Seed: 1, Workers: 1}

	build := func() *nn.Network {
		r := frand.New(99)
		return nn.NewNetwork(nn.NewFlatten(), nn.NewDense(r, 16, 2))
	}

	// Manual run: record post-step snapshots with a batch hook.
	netA := build()
	var snaps []nn.Weights
	lossA := fl.TrainLocal(netA, client.Data, cfg, nn.SoftmaxCrossEntropy{}, frand.New(3), nil,
		func(n *nn.Network, idx int) { snaps = append(snaps, n.Snapshot()) })
	_ = lossA
	manual := snaps[0].Clone()
	for i := 1; i < len(snaps); i++ {
		manual.Lerp(float32(1.0/float64(i+1)), snaps[i])
	}

	// HeteroSwitch run with Switch1 and Switch2 forced on (huge LEMA) and an
	// identity transform so the data stream matches the manual run.
	hs := New()
	hs.Transform = func(x *tensor.Tensor, rng *frand.RNG) {}
	hs.mu.Lock()
	hs.lema = 1e9
	hs.hasLEMA = true
	hs.mu.Unlock()

	netB := build()
	ctx := &fl.ClientContext{
		Net: netB, Global: netB.Snapshot(), Client: client, Cfg: cfg,
		Loss: nn.SoftmaxCrossEntropy{}, Round: 0, RNG: frand.New(3),
	}
	res := hs.LocalUpdate(ctx)

	for i := range manual.Params {
		if !res.Weights.Params[i].AllClose(manual.Params[i], 1e-5) {
			t.Fatalf("SWAD average deviates from manual running mean at param %d", i)
		}
	}
}

// TestTransformConsumesClientRNGDeterministically: two identical updates
// must produce identical transformed data and weights.
func TestTransformDeterministicPerRound(t *testing.T) {
	clients, _ := toyPopulation(71)
	client := clients[0]
	cfg := fl.Config{Rounds: 1, ClientsPerRound: 1, BatchSize: 4, LocalEpochs: 1, LR: 0.05, Seed: 1, Workers: 1}
	run := func() fl.ClientResult {
		hs := New()
		hs.mu.Lock()
		hs.lema = 1e9
		hs.hasLEMA = true
		hs.mu.Unlock()
		r := frand.New(55)
		net := nn.NewNetwork(nn.NewFlatten(), nn.NewDense(r, 16, 2))
		ctx := &fl.ClientContext{
			Net: net, Global: net.Snapshot(), Client: client, Cfg: cfg,
			Loss: nn.SoftmaxCrossEntropy{}, Round: 3, RNG: client.RoundRNG(3),
		}
		return hs.LocalUpdate(ctx)
	}
	a, b := run(), run()
	for i := range a.Weights.Params {
		if !a.Weights.Params[i].AllClose(b.Weights.Params[i], 0) {
			t.Fatal("HeteroSwitch update not deterministic")
		}
	}
}

// TestSwitch2RequiresSwitch1: when Switch 1 is off, Switch 2 can never adopt
// SWAD weights even if the train loss beats the EMA (Algorithm 1 line 22).
func TestSwitch2RequiresSwitch1(t *testing.T) {
	clients, _ := toyPopulation(81)
	client := clients[0]
	cfg := fl.Config{Rounds: 1, ClientsPerRound: 1, BatchSize: 4, LocalEpochs: 1, LR: 0.05, Seed: 1, Workers: 1}

	build := func() *nn.Network {
		r := frand.New(31)
		return nn.NewNetwork(nn.NewFlatten(), nn.NewDense(r, 16, 2))
	}

	// LEMA strictly between L_init and L_train is impossible to arrange
	// robustly, so instead: set LEMA below L_init (Switch1 off). Even though
	// TrainLocal may drive L_train below LEMA, the result must equal plain
	// FedAvg training (no SWAD adoption).
	hs := New()
	hs.mu.Lock()
	hs.lema = 1e-9
	hs.hasLEMA = true
	hs.mu.Unlock()
	netA := build()
	ctxA := &fl.ClientContext{Net: netA, Global: netA.Snapshot(), Client: client, Cfg: cfg,
		Loss: nn.SoftmaxCrossEntropy{}, Round: 0, RNG: frand.New(9)}
	resA := hs.LocalUpdate(ctxA)

	netB := build()
	ctxB := &fl.ClientContext{Net: netB, Global: netB.Snapshot(), Client: client, Cfg: cfg,
		Loss: nn.SoftmaxCrossEntropy{}, Round: 0, RNG: frand.New(9)}
	resB := fl.FedAvg{}.LocalUpdate(ctxB)

	for i := range resA.Weights.Params {
		if !resA.Weights.Params[i].AllClose(resB.Weights.Params[i], 1e-7) {
			t.Fatal("Switch 2 fired without Switch 1")
		}
	}
}
