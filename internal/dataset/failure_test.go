package dataset

import (
	"testing"

	"heteroswitch/internal/device"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/scene"
)

// Failure injection: an invalid sensor configuration must surface as an
// error from Capture (wrapped with device context), never a panic.
func TestCapturePropagatesSensorErrors(t *testing.T) {
	gen := scene.NewImageNet12(16)
	scenes := gen.RenderSet(1, frand.New(1))[:1]
	dev, err := device.ByName("S9")
	if err != nil {
		t.Fatal(err)
	}
	broken := *dev
	broken.Sensor.Resolution = 1 // fails Validate
	if _, err := Capture(scenes, &broken, 0, ModeProcessed, 16, 12, frand.New(1)); err == nil {
		t.Fatal("expected sensor validation error")
	}
	if _, err := Capture(scenes, &broken, 0, ModeRAW, 16, 12, frand.New(1)); err == nil {
		t.Fatal("expected sensor validation error in RAW mode")
	}
}

func TestSplitBoundaries(t *testing.T) {
	d := synthDataset(4, 2)
	tr, te := d.Split(0)
	if tr.Len() != 0 || te.Len() != 4 {
		t.Fatal("Split(0) wrong")
	}
	tr, te = d.Split(1)
	if tr.Len() != 4 || te.Len() != 0 {
		t.Fatal("Split(1) wrong")
	}
	tr, te = d.Split(2.0) // over-fraction clamps
	if tr.Len() != 4 || te.Len() != 0 {
		t.Fatal("Split(>1) must clamp")
	}
}

func TestPartitionMoreShardsThanSamples(t *testing.T) {
	d := synthDataset(3, 2)
	shards := d.PartitionIID(5, frand.New(1))
	total := 0
	empty := 0
	for _, s := range shards {
		total += s.Len()
		if s.Len() == 0 {
			empty++
		}
	}
	if total != 3 || empty != 2 {
		t.Fatalf("partition of 3 into 5: total %d empty %d", total, empty)
	}
}
