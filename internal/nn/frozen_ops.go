package nn

import (
	"fmt"

	"heteroswitch/internal/parallel"
	"heteroswitch/internal/tensor"
)

// epAct identifies the activation fused into a kernel epilogue (or applied
// by a standalone frozenAct). The scalar formulas are exactly the ones the
// training layers use, so pure fusion (no BN fold) is bit-identical to the
// reference eval forward.
type epAct uint8

// Fusable activations.
const (
	epNone epAct = iota
	epReLU
	epHardSwish
	epHardSigmoid
	epSigmoid
)

// applyBiasAct computes row[j] = act(row[j] + b) in one sweep.
func applyBiasAct(row []float32, b float32, act epAct) {
	switch act {
	case epNone:
		for j := range row {
			row[j] += b
		}
	case epReLU:
		for j := range row {
			if v := row[j] + b; v > 0 {
				row[j] = v
			} else {
				row[j] = 0
			}
		}
	case epHardSwish:
		for j := range row {
			v := row[j] + b
			row[j] = v * hardSigmoid(v)
		}
	case epHardSigmoid:
		for j := range row {
			row[j] = hardSigmoid(row[j] + b)
		}
	case epSigmoid:
		for j := range row {
			row[j] = sigmoid32(row[j] + b)
		}
	}
}

// applyVecBiasAct computes row[j] = act(row[j] + bias[j]) in one sweep — the
// dense-layer epilogue, where the bias is per output column.
func applyVecBiasAct(row, bias []float32, act epAct) {
	switch act {
	case epNone:
		for j := range row {
			row[j] += bias[j]
		}
	case epReLU:
		for j := range row {
			if v := row[j] + bias[j]; v > 0 {
				row[j] = v
			} else {
				row[j] = 0
			}
		}
	case epHardSwish:
		for j := range row {
			v := row[j] + bias[j]
			row[j] = v * hardSigmoid(v)
		}
	case epHardSigmoid:
		for j := range row {
			row[j] = hardSigmoid(row[j] + bias[j])
		}
	case epSigmoid:
		for j := range row {
			row[j] = sigmoid32(row[j] + bias[j])
		}
	}
}

// applyAct computes yd[i] = act(xd[i]) over [lo, hi) — the standalone
// activation sweep.
func applyAct(yd, xd []float32, lo, hi int, act epAct) {
	switch act {
	case epReLU:
		for i := lo; i < hi; i++ {
			if v := xd[i]; v > 0 {
				yd[i] = v
			} else {
				yd[i] = 0
			}
		}
	case epHardSwish:
		for i := lo; i < hi; i++ {
			v := xd[i]
			yd[i] = v * hardSigmoid(v)
		}
	case epHardSigmoid:
		for i := lo; i < hi; i++ {
			yd[i] = hardSigmoid(xd[i])
		}
	case epSigmoid:
		for i := lo; i < hi; i++ {
			yd[i] = sigmoid32(xd[i])
		}
	default:
		copy(yd[lo:hi], xd[lo:hi])
	}
}

// Fused conv ------------------------------------------------------------------

// convEpilogue applies one group's bias + activation to a freshly computed
// output row (= one output channel of the group). It is stateless per call,
// so chunks may share it concurrently.
type convEpilogue struct {
	bias []float32 // the group's folded biases, indexed by local row
	act  epAct
}

// Apply implements tensor.RowEpilogue.
func (e *convEpilogue) Apply(row []float32, r int) { applyBiasAct(row, e.bias[r], e.act) }

// frozenConv is Conv2D's inference op: im2col + a fused matmul whose
// epilogue adds the (BN-folded) bias and applies the fused activation inside
// each parallel chunk. Unlike the training layer it keeps ONE im2col scratch
// per parallel chunk instead of caching every sample×group column matrix
// for a backward pass — and two layer shapes skip the lowering entirely:
//
//   - 1×1 stride-1 unpadded convs matmul the image slice directly (the
//     im2col matrix of such a conv IS the image, so the copy is pure waste);
//   - depthwise groups (one input and output channel per group) run the
//     direct tap loop tensor.DepthwiseConvPlane, whose im2col copy would
//     cost more than the arithmetic.
//
// Both shortcuts accumulate in the im2col matmul's per-target order, so
// they are bit-identical to the lowered kernel.
type frozenConv struct {
	l   *Conv2D
	bn  *BatchNorm2D // folded into wf/bf when non-nil
	act epAct

	wf []float32 // effective weights: alias l.W when bn == nil, else folded copy
	bf []float32 // effective biases: alias l.B when bn == nil, else folded copy

	// slot is the op's packed-weight slot in the program's panel sets (-1
	// for depthwise convs, which never matmul). pw is the active handle —
	// the shared set's slot when freezing through a panel cache, the
	// private own otherwise — holding all groups' rows as one [OutC, fanIn]
	// weights-as-A matrix; group gi dispatches rows [gi·gcOut, (gi+1)·gcOut).
	slot int
	pw   *tensor.PackedWeights
	own  tensor.PackedWeights

	eps      []convEpilogue // one per group (stateless, shared by chunks)
	dims     tensor.ConvDims
	inH, inW int
	cols     []float32 // per-chunk im2col scratch

	// per-Run state for the parallel.Runner
	xd, od []float32
}

// build sizes the folded buffers and the per-group epilogues.
func (c *frozenConv) build() {
	l := c.l
	fanIn := (l.InC / l.Groups) * l.KH * l.KW
	if c.bn != nil {
		c.wf = make([]float32, l.OutC*fanIn)
		c.bf = make([]float32, l.OutC)
	} else {
		c.wf = l.W.W.Data()
		c.bf = l.B.W.Data()
	}
	gcOut := l.OutC / l.Groups
	c.eps = make([]convEpilogue, l.Groups)
	for gi := range c.eps {
		c.eps[gi] = convEpilogue{bias: c.bf[gi*gcOut : (gi+1)*gcOut], act: c.act}
	}
}

// refold implements refolder: W′ = W·scale, b′ = b·scale + shift per output
// channel, with scale/shift from the BN running statistics, then rebinds the
// packed-weight handle to the folded rows (the weights may have changed
// since the last Freeze even without BN, so the private handle refreshes
// every refold; a shared set packs each slot once per version).
func (c *frozenConv) refold(ps *panelSet) {
	l := c.l
	fanIn := (l.InC / l.Groups) * l.KH * l.KW
	if c.bn != nil {
		wd, bd := l.W.W.Data(), l.B.W.Data()
		for oc := 0; oc < l.OutC; oc++ {
			s, sh := bnScaleShift(c.bn, oc)
			row := wd[oc*fanIn : (oc+1)*fanIn]
			frow := c.wf[oc*fanIn : (oc+1)*fanIn]
			for j, v := range row {
				frow[j] = v * s
			}
			c.bf[oc] = bd[oc]*s + sh
		}
	}
	if c.slot < 0 {
		return // depthwise: direct tap loop, no matmul to feed
	}
	if ps != nil {
		c.pw = ps.ensureA(c.slot, c.wf, l.OutC, fanIn)
	} else {
		c.own.RefreshA(c.wf, l.OutC, fanIn)
		c.pw = &c.own
	}
}

// infer implements frozenOp, mirroring Conv2D.Forward's sample×group
// parallel loop.
func (c *frozenConv) infer(f *Frozen, x *tensor.Tensor) *tensor.Tensor {
	l := c.l
	if x.NDim() != 4 || x.Dim(1) != l.InC {
		panic(fmt.Sprintf("nn: frozen Conv2D input %v, want [N %d H W]", x.Shape(), l.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	if h != c.inH || w != c.inW {
		d, err := tensor.NewConvDims(l.InC/l.Groups, h, w, l.KH, l.KW, l.Stride, l.Pad)
		if err != nil {
			panic("nn: " + err.Error())
		}
		c.dims, c.inH, c.inW = d, h, w
	}
	d := c.dims
	rows, cols := d.ColRows(), d.ColCols()
	g := l.Groups
	gcOut := l.OutC / g
	fanIn := (l.InC / g) * l.KH * l.KW
	out := f.alloc(n, l.OutC, d.OutH, d.OutW)
	par := f.budget()
	iters := n * g
	grain := parallel.GrainFor(gcOut * fanIn * cols)
	if c.needsCol() {
		chunks := parallel.Chunks(par, iters, grain)
		if cap(c.cols) < chunks*rows*cols {
			c.cols = make([]float32, chunks*rows*cols)
		}
		c.cols = c.cols[:chunks*rows*cols]
	}
	c.xd, c.od = x.Data(), out.Data()
	if iters == 1 {
		// One sample, one group: hand the budget to the fused row-parallel
		// matmul instead.
		c.inferIter(0, par, c.cols)
	} else {
		parallel.Run(par, iters, grain, c)
	}
	c.xd, c.od = nil, nil
	return out
}

// needsCol reports whether this layer shape still requires the im2col
// scratch (neither pointwise nor depthwise).
func (c *frozenConv) needsCol() bool {
	l := c.l
	pointwise := l.KH == 1 && l.KW == 1 && l.Stride == 1 && l.Pad == 0
	depthwise := l.Groups == l.InC && l.OutC == l.InC
	return !pointwise && !depthwise
}

// Run implements parallel.Runner over a contiguous sample×group range; each
// chunk owns the im2col scratch slice matching its chunk index.
func (c *frozenConv) Run(chunk, lo, hi int) {
	var col []float32
	if len(c.cols) > 0 {
		rc := c.dims.ColRows() * c.dims.ColCols()
		col = c.cols[chunk*rc : (chunk+1)*rc]
	}
	for it := lo; it < hi; it++ {
		c.inferIter(it, 1, col)
	}
}

// inferIter runs one sample×group iteration through the cheapest kernel its
// shape admits (see the type comment), fusing bias + activation either as
// the matmul epilogue or as a sweep over the freshly computed plane.
func (c *frozenConv) inferIter(it, par int, col []float32) {
	l := c.l
	d := c.dims
	cols := d.ColCols()
	g := l.Groups
	gcIn, gcOut := l.InC/g, l.OutC/g
	fanIn := gcIn * l.KH * l.KW
	h, w := c.inH, c.inW
	imgStride := l.InC * h * w
	outStride := l.OutC * d.OutH * d.OutW
	i, gi := it/g, it%g

	img := c.xd[i*imgStride+gi*gcIn*h*w : i*imgStride+(gi+1)*gcIn*h*w]
	wg := c.wf[gi*gcOut*fanIn : (gi+1)*gcOut*fanIn]
	y := c.od[i*outStride+gi*gcOut*cols : i*outStride+(gi+1)*gcOut*cols]
	switch {
	case gcIn == 1 && gcOut == 1 && g == l.InC:
		// Depthwise: direct tap loop on the plane, no lowering at all.
		tensor.DepthwiseConvPlane(y, img, wg, d)
		applyBiasAct(y, c.bf[gi], c.act)
	case l.KH == 1 && l.KW == 1 && l.Stride == 1 && l.Pad == 0:
		// Pointwise: the im2col matrix IS the image slice.
		tensor.MatMulWASlicesPEp(par, y, wg, c.pw, gi*gcOut, gcOut, img, cols, false, &c.eps[gi])
	default:
		tensor.Im2Col(col, img, d)
		tensor.MatMulWASlicesPEp(par, y, wg, c.pw, gi*gcOut, gcOut, col, cols, false, &c.eps[gi])
	}
}

// Fused dense -----------------------------------------------------------------

// denseEpilogue adds the per-column bias vector and applies the fused
// activation to one output row (= one sample).
type denseEpilogue struct {
	bias []float32
	act  epAct
}

// Apply implements tensor.RowEpilogue.
func (e *denseEpilogue) Apply(row []float32, _ int) { applyVecBiasAct(row, e.bias, e.act) }

// frozenDense is Dense's inference op: one fused matmul, bias+activation as
// the row epilogue.
type frozenDense struct {
	l   *Dense
	bn  *BatchNorm2D
	act epAct

	wf *tensor.Tensor // effective weights: alias l.W when bn == nil
	bf []float32
	ep denseEpilogue

	// slot/pw/own: the packed-weight slot and active weights-as-B handle,
	// same ownership scheme as frozenConv.
	slot int
	pw   *tensor.PackedWeights
	own  tensor.PackedWeights
}

// build sizes the folded buffers and the epilogue.
func (d *frozenDense) build() {
	if d.bn != nil {
		d.wf = tensor.New(d.l.In, d.l.Out)
		d.bf = make([]float32, d.l.Out)
	} else {
		d.wf = d.l.W.W
		d.bf = d.l.B.W.Data()
	}
	d.ep = denseEpilogue{bias: d.bf, act: d.act}
}

// refold implements refolder: column j is scaled by the BN channel j affine,
// then the weights-as-B handle rebinds to the folded matrix.
func (d *frozenDense) refold(ps *panelSet) {
	if d.bn != nil {
		in, out := d.l.In, d.l.Out
		wd, fd := d.l.W.W.Data(), d.wf.Data()
		bd := d.l.B.W.Data()
		for j := 0; j < out; j++ {
			s, sh := bnScaleShift(d.bn, j)
			for i := 0; i < in; i++ {
				fd[i*out+j] = wd[i*out+j] * s
			}
			d.bf[j] = bd[j]*s + sh
		}
	}
	if ps != nil {
		d.pw = ps.ensureB(d.slot, d.wf.Data(), d.l.In, d.l.Out)
	} else {
		d.own.RefreshB(d.wf.Data(), d.l.In, d.l.Out)
		d.pw = &d.own
	}
}

// infer implements frozenOp.
func (d *frozenDense) infer(f *Frozen, x *tensor.Tensor) *tensor.Tensor {
	if x.NDim() != 2 || x.Dim(1) != d.l.In {
		panic(fmt.Sprintf("nn: frozen Dense input %v, want [N %d]", x.Shape(), d.l.In))
	}
	y := f.alloc(x.Dim(0), d.l.Out)
	tensor.MatMulWBSlicesPEp(f.budget(), y.Data(), x.Data(), d.wf.Data(), d.pw, x.Dim(0), false, &d.ep)
	return y
}

// Standalone BatchNorm --------------------------------------------------------

// frozenBN is the residual BatchNorm eval path: a BN that no matmul layer
// precedes (after a residual sum, pooling, a Parallel block). It applies the
// running-statistics affine y = scale·x + shift, channel-parallel under the
// intra-op budget (channels own disjoint planes, so results are
// bit-identical at every budget).
type frozenBN struct {
	l            *BatchNorm2D
	scale, shift []float32

	// per-Run state
	xd, od []float32
	n, hw  int
}

// refold implements refolder (no matmul, so ps is unused).
func (b *frozenBN) refold(_ *panelSet) {
	for c := 0; c < b.l.C; c++ {
		b.scale[c], b.shift[c] = bnScaleShift(b.l, c)
	}
}

// infer implements frozenOp.
func (b *frozenBN) infer(f *Frozen, x *tensor.Tensor) *tensor.Tensor {
	if x.NDim() != 4 || x.Dim(1) != b.l.C {
		panic(fmt.Sprintf("nn: frozen BatchNorm2D input %v, want [N %d H W]", x.Shape(), b.l.C))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	out := f.alloc(x.Shape()...)
	b.xd, b.od, b.n, b.hw = x.Data(), out.Data(), n, h*w
	parallel.Run(f.budget(), b.l.C, parallel.GrainFor(n*b.hw), b)
	b.xd, b.od = nil, nil
	return out
}

// Run implements parallel.Runner over a channel range.
func (b *frozenBN) Run(_, lo, hi int) {
	c := b.l.C
	for ch := lo; ch < hi; ch++ {
		s, sh := b.scale[ch], b.shift[ch]
		for i := 0; i < b.n; i++ {
			base := (i*c + ch) * b.hw
			row := b.od[base : base+b.hw]
			xrow := b.xd[base : base+b.hw]
			for j, v := range xrow {
				row[j] = s*v + sh
			}
		}
	}
}

// Standalone activation -------------------------------------------------------

// frozenAct is an activation that does not follow a matmul layer (so it
// could not ride a kernel epilogue): an element-parallel sweep with no
// backward mask.
type frozenAct struct {
	kind epAct

	xd, od []float32 // per-Run state
}

// infer implements frozenOp.
func (a *frozenAct) infer(f *Frozen, x *tensor.Tensor) *tensor.Tensor {
	y := f.alloc(x.Shape()...)
	a.xd, a.od = x.Data(), y.Data()
	parallel.Run(f.budget(), x.Size(), parallel.GrainFor(1), a)
	a.xd, a.od = nil, nil
	return y
}

// Run implements parallel.Runner over an element range.
func (a *frozenAct) Run(_, lo, hi int) { applyAct(a.od, a.xd, lo, hi, a.kind) }

// Pooling ---------------------------------------------------------------------

// frozenMaxPool is MaxPool2D without the argmax cache, parallel over
// [N·C] planes.
type frozenMaxPool struct {
	k, stride int

	xd, od       []float32 // per-Run state
	h, w, oh, ow int
}

// infer implements frozenOp.
func (p *frozenMaxPool) infer(f *Frozen, x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h-p.k)/p.stride + 1
	ow := (w-p.k)/p.stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: frozen MaxPool2D k%d s%d on %dx%d", p.k, p.stride, h, w))
	}
	out := f.alloc(n, c, oh, ow)
	p.xd, p.od, p.h, p.w, p.oh, p.ow = x.Data(), out.Data(), h, w, oh, ow
	parallel.Run(f.budget(), n*c, parallel.GrainFor(oh*ow*p.k*p.k), p)
	p.xd, p.od = nil, nil
	return out
}

// Run implements parallel.Runner over a plane range.
func (p *frozenMaxPool) Run(_, lo, hi int) {
	for pl := lo; pl < hi; pl++ {
		base := pl * p.h * p.w
		oi := pl * p.oh * p.ow
		for oy := 0; oy < p.oh; oy++ {
			for ox := 0; ox < p.ow; ox++ {
				iy0, ix0 := oy*p.stride, ox*p.stride
				best := p.xd[base+iy0*p.w+ix0]
				for ky := 0; ky < p.k; ky++ {
					row := base + (iy0+ky)*p.w + ix0
					for kx := 0; kx < p.k; kx++ {
						if v := p.xd[row+kx]; v > best {
							best = v
						}
					}
				}
				p.od[oi] = best
				oi++
			}
		}
	}
}

// frozenAvgPool is AvgPool2D's inference op, parallel over planes.
type frozenAvgPool struct {
	k, stride int

	xd, od       []float32 // per-Run state
	h, w, oh, ow int
}

// infer implements frozenOp.
func (p *frozenAvgPool) infer(f *Frozen, x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	oh := (h-p.k)/p.stride + 1
	ow := (w-p.k)/p.stride + 1
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("nn: frozen AvgPool2D k%d s%d on %dx%d", p.k, p.stride, h, w))
	}
	out := f.alloc(n, c, oh, ow)
	p.xd, p.od, p.h, p.w, p.oh, p.ow = x.Data(), out.Data(), h, w, oh, ow
	parallel.Run(f.budget(), n*c, parallel.GrainFor(oh*ow*p.k*p.k), p)
	p.xd, p.od = nil, nil
	return out
}

// Run implements parallel.Runner over a plane range.
func (p *frozenAvgPool) Run(_, lo, hi int) {
	inv := 1 / float32(p.k*p.k)
	for pl := lo; pl < hi; pl++ {
		base := pl * p.h * p.w
		oi := pl * p.oh * p.ow
		for oy := 0; oy < p.oh; oy++ {
			for ox := 0; ox < p.ow; ox++ {
				var s float32
				for ky := 0; ky < p.k; ky++ {
					row := base + (oy*p.stride+ky)*p.w + ox*p.stride
					for kx := 0; kx < p.k; kx++ {
						s += p.xd[row+kx]
					}
				}
				p.od[oi] = s * inv
				oi++
			}
		}
	}
}

// planeMean averages each [N·C] plane down to one value — the shared kernel
// of GlobalAvgPool and the SE squeeze, parallel over planes. Per-plane sums
// run in the serial ascending order, so results are bit-identical to the
// reference layers at every budget.
type planeMean struct {
	xd, od []float32
	hw     int
}

// run executes the plane sweep under the budget.
func (t *planeMean) run(par, planes int) {
	parallel.Run(par, planes, parallel.GrainFor(t.hw), t)
}

// Run implements parallel.Runner over a plane range.
func (t *planeMean) Run(_, lo, hi int) {
	inv := 1 / float32(t.hw)
	for i := lo; i < hi; i++ {
		var s float32
		row := t.xd[i*t.hw : (i+1)*t.hw]
		for _, v := range row {
			s += v
		}
		t.od[i] = s * inv
	}
}

// frozenGAP is GlobalAvgPool's inference op.
type frozenGAP struct {
	t planeMean
}

// infer implements frozenOp.
func (g *frozenGAP) infer(f *Frozen, x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	out := f.alloc(n, c)
	g.t = planeMean{xd: x.Data(), od: out.Data(), hw: h * w}
	g.t.run(f.budget(), n*c)
	g.t = planeMean{}
	return out
}

// Composites ------------------------------------------------------------------

// frozenResidual runs both frozen branches and sums them, mirroring
// Residual.Forward's copy+add order exactly — unless the projection folded
// into a single affine (foldedProj non-nil), in which case the skip path
// never materializes: the projection's W′x + b′ is accumulated directly
// onto the body output by the accumulating fused matmul, one pass over y
// instead of a projection tensor plus an elementwise sum.
type frozenResidual struct {
	body, proj []frozenOp

	// foldedProj is proj's single op when the projection compiled down to
	// one pointwise conv with everything folded in (1×1, stride 1, no pad,
	// one group, BN absorbed by the conv fold, no activation) — exactly the
	// ResNet/MobileNet downsample-projection shape. Folding reassociates
	// the skip add ((y + W′x) + b′ versus y + (W′x + b′)), so it lives
	// under the same ≤1e-5 tolerance contract as BN folding.
	foldedProj *frozenConv

	// per-Run state of the folded sample loop
	xd, yd []float32
	hw     int
}

// foldProj detects the foldable projection shape at compile time.
func (r *frozenResidual) foldProj() {
	// An empty body compiles runOps to the input itself; accumulating onto
	// it would clobber x, so the fold requires a real body.
	if len(r.body) == 0 || len(r.proj) != 1 {
		return
	}
	fc, ok := r.proj[0].(*frozenConv)
	if !ok || fc.act != epNone {
		return
	}
	l := fc.l
	if l.Groups != 1 || l.KH != 1 || l.KW != 1 || l.Stride != 1 || l.Pad != 0 {
		return
	}
	r.foldedProj = fc
}

// infer implements frozenOp.
func (r *frozenResidual) infer(f *Frozen, x *tensor.Tensor) *tensor.Tensor {
	y := runOps(f, r.body, x)
	if r.foldedProj != nil {
		r.inferFolded(f, x, y)
		return y
	}
	s := runOps(f, r.proj, x)
	if !y.SameShape(s) {
		panic(fmt.Sprintf("nn: frozen Residual shape mismatch %v vs %v", y.Shape(), s.Shape()))
	}
	out := f.alloc(y.Shape()...)
	od, yd, sd := out.Data(), y.Data(), s.Data()
	for i := range od {
		od[i] = yd[i] + sd[i]
	}
	return out
}

// inferFolded accumulates the folded projection onto the body output in
// place: y_i += W′ @ x_i + b′ per sample, parallel over samples like
// frozenConv (a single sample hands the whole budget to the row-parallel
// matmul instead). Chunks own whole samples and the matmul is
// budget-invariant, so results stay bit-identical at every budget.
func (r *frozenResidual) inferFolded(f *Frozen, x, y *tensor.Tensor) {
	l := r.foldedProj.l
	if x.NDim() != 4 || x.Dim(1) != l.InC {
		panic(fmt.Sprintf("nn: frozen Residual projection input %v, want [N %d H W]", x.Shape(), l.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	if y.NDim() != 4 || y.Dim(0) != n || y.Dim(1) != l.OutC || y.Dim(2) != h || y.Dim(3) != w {
		panic(fmt.Sprintf("nn: frozen Residual shape mismatch %v vs projection [%d %d %d %d]",
			y.Shape(), n, l.OutC, h, w))
	}
	r.xd, r.yd, r.hw = x.Data(), y.Data(), h*w
	par := f.budget()
	if n == 1 {
		r.foldSample(0, par)
	} else {
		parallel.Run(par, n, parallel.GrainFor(l.OutC*l.InC*r.hw), r)
	}
	r.xd, r.yd = nil, nil
}

// foldSample accumulates one sample's projection.
func (r *frozenResidual) foldSample(i, par int) {
	fc := r.foldedProj
	l := fc.l
	xi := r.xd[i*l.InC*r.hw : (i+1)*l.InC*r.hw]
	yi := r.yd[i*l.OutC*r.hw : (i+1)*l.OutC*r.hw]
	tensor.MatMulWASlicesPEp(par, yi, fc.wf, fc.pw, 0, l.OutC, xi, r.hw, true, &fc.eps[0])
}

// Run implements parallel.Runner over a sample range of the folded skip.
func (r *frozenResidual) Run(_, lo, hi int) {
	for i := lo; i < hi; i++ {
		r.foldSample(i, 1)
	}
}

// refold implements refolder, recursing into both branches.
func (r *frozenResidual) refold(ps *panelSet) {
	refoldOps(r.body, ps)
	refoldOps(r.proj, ps)
}

// frozenParallel runs the frozen branches and concatenates along channels,
// mirroring Parallel.Forward.
type frozenParallel struct {
	l        *Parallel
	branches [][]frozenOp
	outCs    []int
	outs     []*tensor.Tensor // per-batch worklist, reused
}

// infer implements frozenOp.
func (p *frozenParallel) infer(f *Frozen, x *tensor.Tensor) *tensor.Tensor {
	n, c := x.Dim(0), x.Dim(1)
	nb := len(p.branches)
	totalC := 0
	for i, ops := range p.branches {
		in := x
		if p.l.SplitInput {
			if c%nb != 0 {
				panic(fmt.Sprintf("nn: frozen Parallel split %d channels across %d branches", c, nb))
			}
			per := c / nb
			in = frozenSliceChannels(f, x, i*per, (i+1)*per)
		}
		p.outs[i] = runOps(f, ops, in)
		p.outCs[i] = p.outs[i].Dim(1)
		totalC += p.outCs[i]
	}
	oh, ow := p.outs[0].Dim(2), p.outs[0].Dim(3)
	out := f.alloc(n, totalC, oh, ow)
	at := 0
	for _, o := range p.outs {
		if o.Dim(2) != oh || o.Dim(3) != ow {
			panic("nn: frozen Parallel branches disagree on spatial size")
		}
		copyChannels(out, o, at)
		at += o.Dim(1)
	}
	return out
}

// refold implements refolder, recursing into every branch.
func (p *frozenParallel) refold(ps *panelSet) {
	for _, ops := range p.branches {
		refoldOps(ops, ps)
	}
}

// frozenSliceChannels copies channels [lo,hi) into a per-batch tensor.
func frozenSliceChannels(f *Frozen, x *tensor.Tensor, lo, hi int) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	out := f.alloc(n, hi-lo, h, w)
	hw := h * w
	xd, od := x.Data(), out.Data()
	per := hi - lo
	for i := 0; i < n; i++ {
		copy(od[i*per*hw:(i+1)*per*hw], xd[(i*c+lo)*hw:(i*c+hi)*hw])
	}
	return out
}

// frozenSE is the squeeze-and-excitation inference op: plane-mean squeeze,
// the two excitation matmuls with their activations fused as epilogues, and
// the per-channel rescale.
type frozenSE struct {
	se       *SEBlock
	fc1, fc2 *frozenDense
	t        planeMean

	xd, od, zd []float32 // per-Run state of the rescale sweep
	hw         int
}

// newFrozenSE compiles an SEBlock, fusing the excitation MLP's ReLU and
// HardSigmoid into the dense kernels; both excitation matmuls claim
// packed-weight slots like any dense.
func newFrozenSE(l *SEBlock, c *opCompiler) *frozenSE {
	fc1 := &frozenDense{l: l.fc1, act: epReLU, slot: c.nextSlot()}
	fc1.build()
	fc2 := &frozenDense{l: l.fc2, act: epHardSigmoid, slot: c.nextSlot()}
	fc2.build()
	return &frozenSE{se: l, fc1: fc1, fc2: fc2}
}

// infer implements frozenOp.
func (s *frozenSE) infer(f *Frozen, x *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c != s.se.C {
		panic(fmt.Sprintf("nn: frozen SEBlock channels %d, want %d", c, s.se.C))
	}
	hw := h * w
	sq := f.alloc(n, c)
	s.t = planeMean{xd: x.Data(), od: sq.Data(), hw: hw}
	s.t.run(f.budget(), n*c)
	s.t = planeMean{}
	z := s.fc2.infer(f, s.fc1.infer(f, sq))
	out := f.alloc(n, c, h, w)
	s.xd, s.od, s.zd, s.hw = x.Data(), out.Data(), z.Data(), hw
	parallel.Run(f.budget(), n*c, parallel.GrainFor(hw), s)
	s.xd, s.od, s.zd = nil, nil, nil
	return out
}

// Run implements parallel.Runner over the rescale's plane range.
func (s *frozenSE) Run(_, lo, hi int) {
	for i := lo; i < hi; i++ {
		zi := s.zd[i]
		row := s.od[i*s.hw : (i+1)*s.hw]
		xrow := s.xd[i*s.hw : (i+1)*s.hw]
		for j, v := range xrow {
			row[j] = v * zi
		}
	}
}

// refold implements refolder for the excitation layers.
func (s *frozenSE) refold(ps *panelSet) {
	s.fc1.refold(ps)
	s.fc2.refold(ps)
}

// frozenWrap delegates to a layer's own eval forward — pure view or
// permutation layers with no backward caches, and any layer type the
// compiler does not know.
type frozenWrap struct {
	l Layer
}

// infer implements frozenOp.
func (w *frozenWrap) infer(_ *Frozen, x *tensor.Tensor) *tensor.Tensor {
	return w.l.Forward(x, false)
}
