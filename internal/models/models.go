// Package models builds the network architectures used in the paper's
// evaluation, scaled down to run on CPU against 32x32 synthetic captures:
//
//   - TinyMobileNetV3: depthwise-separable bottlenecks with squeeze-excite
//     and hard-swish (MobileNetV3-small's defining mechanisms, §6 default).
//   - TinyShuffleNetV2: channel-split units with channel shuffle (Table 5).
//   - TinySqueezeNet: fire modules, faithful to the original's lack of
//     normalization layers (Table 5).
//   - SimpleCNN: the plain CNN of the synthetic CIFAR experiment (§6.5).
//   - MLPRegressor: the "simple DNN" heart-rate regressor (§6.6).
//
// Every constructor is deterministic in the provided seed, so federated
// workers can build bit-identical replicas.
package models

import (
	"fmt"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
)

// Builder constructs a fresh network instance. Calls must be deterministic:
// every invocation returns an identically-initialized network, so parallel
// federated workers can each own a private replica.
type Builder func() *nn.Network

// Arch identifies one of the available architectures.
type Arch string

// Supported architectures.
const (
	ArchMobileNet  Arch = "mobilenetv3-tiny"
	ArchShuffleNet Arch = "shufflenetv2-tiny"
	ArchSqueezeNet Arch = "squezenet-tiny"
	ArchSimpleCNN  Arch = "simplecnn"
)

// BuilderFor returns a deterministic Builder for the named architecture on
// inC-channel images with the given number of classes. Unknown names return
// an error.
func BuilderFor(arch Arch, seed uint64, inC, classes int) (Builder, error) {
	switch arch {
	case ArchMobileNet:
		return func() *nn.Network { return TinyMobileNetV3(frand.New(seed), inC, classes) }, nil
	case ArchShuffleNet:
		return func() *nn.Network { return TinyShuffleNetV2(frand.New(seed), inC, classes) }, nil
	case ArchSqueezeNet:
		return func() *nn.Network { return TinySqueezeNet(frand.New(seed), inC, classes) }, nil
	case ArchSimpleCNN:
		return func() *nn.Network { return SimpleCNN(frand.New(seed), inC, classes) }, nil
	default:
		return nil, fmt.Errorf("models: unknown architecture %q", arch)
	}
}

// convBNAct returns conv → BN → activation as a sub-network.
func convBNAct(r *frand.RNG, inC, outC, k, stride, pad, groups int, act func() nn.Layer) *nn.Network {
	return nn.NewNetwork(
		nn.NewConv2D(r, inC, outC, k, stride, pad, groups),
		nn.NewBatchNorm2D(outC),
		act(),
	)
}

func hswish() nn.Layer { return nn.NewHardSwish() }
func relu() nn.Layer   { return nn.NewReLU() }

// bneck builds a MobileNetV3 inverted-residual bottleneck:
// 1x1 expand → depthwise k3 → SE → 1x1 project, residual when stride 1 and
// channel-preserving.
func bneck(r *frand.RNG, inC, expC, outC, stride int, useSE bool) nn.Layer {
	layers := []nn.Layer{
		nn.NewConv2D(r, inC, expC, 1, 1, 0, 1),
		nn.NewBatchNorm2D(expC),
		nn.NewHardSwish(),
		nn.NewDepthwiseConv2D(r, expC, 3, stride, 1),
		nn.NewBatchNorm2D(expC),
		nn.NewHardSwish(),
	}
	if useSE {
		hidden := expC / 4
		if hidden < 2 {
			hidden = 2
		}
		layers = append(layers, nn.NewSEBlock(r, expC, hidden))
	}
	layers = append(layers,
		nn.NewConv2D(r, expC, outC, 1, 1, 0, 1),
		nn.NewBatchNorm2D(outC),
	)
	body := nn.NewNetwork(layers...)
	if stride == 1 && inC == outC {
		return nn.NewResidual(body, nil)
	}
	return body
}

// TinyMobileNetV3 is a scaled-down MobileNetV3-small for 32x32 inputs:
// stem s2 → three bottlenecks (one s2) → head → GAP → classifier.
func TinyMobileNetV3(r *frand.RNG, inC, classes int) *nn.Network {
	return nn.NewNetwork(
		// Stem: 32x32 → 16x16.
		nn.NewConv2D(r, inC, 8, 3, 2, 1, 1),
		nn.NewBatchNorm2D(8),
		nn.NewHardSwish(),
		bneck(r, 8, 16, 8, 1, true),
		// 16x16 → 8x8.
		bneck(r, 8, 24, 16, 2, true),
		bneck(r, 16, 32, 16, 1, true),
		// Head.
		nn.NewConv2D(r, 16, 32, 1, 1, 0, 1),
		nn.NewBatchNorm2D(32),
		nn.NewHardSwish(),
		nn.NewGlobalAvgPool(),
		nn.NewDense(r, 32, classes),
	)
}

// shuffleUnit is the ShuffleNetV2 basic unit: split channels, transform one
// half, concatenate, shuffle.
func shuffleUnit(r *frand.RNG, c int) nn.Layer {
	half := c / 2
	branch := nn.NewNetwork(
		convBNAct(r, half, half, 1, 1, 0, 1, relu),
		nn.NewDepthwiseConv2D(r, half, 3, 1, 1),
		nn.NewBatchNorm2D(half),
		convBNAct(r, half, half, 1, 1, 0, 1, relu),
	)
	return nn.NewNetwork(
		nn.NewParallel(true, nn.NewIdentity(), branch),
		nn.NewChannelShuffle(2),
	)
}

// shuffleDown is the ShuffleNetV2 spatial-downsampling unit: both branches
// see the full input; output channel count doubles to outC.
func shuffleDown(r *frand.RNG, inC, outC int) nn.Layer {
	half := outC / 2
	b1 := nn.NewNetwork(
		nn.NewDepthwiseConv2D(r, inC, 3, 2, 1),
		nn.NewBatchNorm2D(inC),
		convBNAct(r, inC, half, 1, 1, 0, 1, relu),
	)
	b2 := nn.NewNetwork(
		convBNAct(r, inC, half, 1, 1, 0, 1, relu),
		nn.NewDepthwiseConv2D(r, half, 3, 2, 1),
		nn.NewBatchNorm2D(half),
		convBNAct(r, half, half, 1, 1, 0, 1, relu),
	)
	return nn.NewNetwork(
		nn.NewParallel(false, b1, b2),
		nn.NewChannelShuffle(2),
	)
}

// TinyShuffleNetV2 is a scaled-down ShuffleNetV2 x0.5 for 32x32 inputs.
func TinyShuffleNetV2(r *frand.RNG, inC, classes int) *nn.Network {
	return nn.NewNetwork(
		// Stem: 32x32 → 16x16, 8 channels.
		convBNAct(r, inC, 8, 3, 2, 1, 1, relu),
		shuffleUnit(r, 8),
		// 16x16 → 8x8, 16 channels.
		shuffleDown(r, 8, 16),
		shuffleUnit(r, 16),
		shuffleUnit(r, 16),
		convBNAct(r, 16, 32, 1, 1, 0, 1, relu),
		nn.NewGlobalAvgPool(),
		nn.NewDense(r, 32, classes),
	)
}

// fire is the SqueezeNet fire module: a 1x1 squeeze feeding parallel 1x1 and
// 3x3 expansions. True to the original, it contains no normalization.
func fire(r *frand.RNG, inC, squeeze, expand int) nn.Layer {
	return nn.NewNetwork(
		nn.NewConv2D(r, inC, squeeze, 1, 1, 0, 1),
		nn.NewReLU(),
		nn.NewParallel(false,
			nn.NewNetwork(nn.NewConv2D(r, squeeze, expand, 1, 1, 0, 1), nn.NewReLU()),
			nn.NewNetwork(nn.NewConv2D(r, squeeze, expand, 3, 1, 1, 1), nn.NewReLU()),
		),
	)
}

// TinySqueezeNet is a scaled-down SqueezeNet 1.1 for 32x32 inputs. Like the
// original it has no batch normalization, which makes it markedly harder to
// train — the paper observes exactly this failure under FedAvg (Table 5).
func TinySqueezeNet(r *frand.RNG, inC, classes int) *nn.Network {
	return nn.NewNetwork(
		nn.NewConv2D(r, inC, 8, 3, 2, 1, 1), // 32 → 16
		nn.NewReLU(),
		nn.NewMaxPool2D(2, 2), // 16 → 8
		fire(r, 8, 4, 8),      // out 16
		fire(r, 16, 4, 8),     // out 16
		nn.NewMaxPool2D(2, 2), // 8 → 4
		fire(r, 16, 6, 12),    // out 24
		nn.NewConv2D(r, 24, classes, 1, 1, 0, 1),
		nn.NewGlobalAvgPool(),
	)
}

// SimpleCNN is the plain convolutional classifier used for the synthetic
// CIFAR-style experiment (§6.5): two conv/BN/ReLU stages and a linear head.
func SimpleCNN(r *frand.RNG, inC, classes int) *nn.Network {
	return nn.NewNetwork(
		convBNAct(r, inC, 8, 3, 1, 1, 1, relu),
		nn.NewMaxPool2D(2, 2),
		convBNAct(r, 8, 16, 3, 1, 1, 1, relu),
		nn.NewMaxPool2D(2, 2),
		nn.NewFlatten(),
		nn.NewDense(r, 16*8*8, classes),
	)
}

// MLPRegressor is the "simple DNN" used for ECG heart-rate estimation
// (§6.6): a fully-connected network with ReLU hidden layers and a linear
// output of width out.
func MLPRegressor(r *frand.RNG, in int, hidden []int, out int) *nn.Network {
	var layers []nn.Layer
	prev := in
	for _, h := range hidden {
		layers = append(layers, nn.NewDense(r, prev, h), nn.NewReLU())
		prev = h
	}
	layers = append(layers, nn.NewDense(r, prev, out))
	return nn.NewNetwork(layers...)
}

// MLPBuilder returns a deterministic builder for MLPRegressor.
func MLPBuilder(seed uint64, in int, hidden []int, out int) Builder {
	return func() *nn.Network { return MLPRegressor(frand.New(seed), in, hidden, out) }
}

// ECGConvNet is a 1-D convolutional heart-rate regressor: the flat window of
// the given length is viewed as a [1, 1, L] image and processed by stride-2
// convolutions (height stays 1 throughout), giving a receptive field long
// enough to span a full beat period, followed by global pooling and a linear
// head. Translation invariance from the pooling matches the task: heart rate
// does not depend on beat phase.
func ECGConvNet(r *frand.RNG, length int) *nn.Network {
	return nn.NewNetwork(
		nn.NewReshape(1, 1, length),
		nn.NewConv2D(r, 1, 8, 3, 2, 1, 1), // L -> L/2
		nn.NewBatchNorm2D(8),
		nn.NewReLU(),
		nn.NewConv2D(r, 8, 16, 3, 2, 1, 1), // L/2 -> L/4
		nn.NewBatchNorm2D(16),
		nn.NewReLU(),
		nn.NewConv2D(r, 16, 16, 3, 2, 1, 1), // L/4 -> L/8
		nn.NewBatchNorm2D(16),
		nn.NewReLU(),
		nn.NewConv2D(r, 16, 24, 3, 2, 1, 1), // L/8 -> L/16
		nn.NewBatchNorm2D(24),
		nn.NewReLU(),
		nn.NewConv2D(r, 24, 24, 3, 2, 1, 1), // L/16 -> L/32
		nn.NewBatchNorm2D(24),
		nn.NewReLU(),
		nn.NewGlobalAvgPool(),
		nn.NewDense(r, 24, 1),
	)
}

// ECGConvBuilder returns a deterministic builder for ECGConvNet.
func ECGConvBuilder(seed uint64, length int) Builder {
	return func() *nn.Network { return ECGConvNet(frand.New(seed), length) }
}
