package nn

import (
	"testing"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/tensor"
)

// The value-only loss path must be bit-identical to the gradient path's loss
// accumulation: EvalValue is the contract consumers like fl.EvalLoss rely on
// when they skip the gradient on pure inference.
func TestEvalValueMatchesEvalInto(t *testing.T) {
	r := frand.New(41)
	logits := tensor.Randn(r, 3, 16, 5)
	classes := []int{4, 0, 2, 1, 3, 4, 0, 1, 2, 3, 0, 4, 1, 2, 3, 0}
	dense := tensor.New(16, 5)
	for i := range dense.Data() {
		if r.Float64() < 0.4 {
			dense.Data()[i] = 1
		}
	}
	preds := tensor.Randn(r, 2, 16, 5)

	cases := []struct {
		name   string
		loss   LossValuer
		pred   *tensor.Tensor
		target Target
	}{
		{"softmax-ce", SoftmaxCrossEntropy{}, logits, ClassTarget(classes)},
		{"bce-logits", BCEWithLogits{}, logits, DenseTarget(dense)},
		{"mse", MSE{}, preds, DenseTarget(dense)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			grad := tensor.New(tc.pred.Shape()...)
			want := tc.loss.(LossInto).EvalInto(grad, tc.pred, tc.target)
			got := tc.loss.EvalValue(tc.pred, tc.target)
			if got != want {
				t.Fatalf("EvalValue = %v, EvalInto loss = %v (must be bit-identical)", got, want)
			}
			// LossValue must pick the value-only path: the grad thunk is never
			// invoked for a LossValuer.
			called := false
			lv := LossValue(tc.loss, func() *tensor.Tensor { called = true; return grad }, tc.pred, tc.target)
			if lv != want {
				t.Fatalf("LossValue = %v, want %v", lv, want)
			}
			if called {
				t.Fatal("LossValue materialized a gradient buffer for a LossValuer")
			}
		})
	}
}

// EvalValue must allocate nothing: it is the per-batch hot path of every
// eval sweep.
func TestEvalValueZeroAlloc(t *testing.T) {
	r := frand.New(43)
	logits := tensor.Randn(r, 3, 8, 4)
	target := ClassTarget([]int{0, 1, 2, 3, 0, 1, 2, 3})
	var sink float64
	allocs := testing.AllocsPerRun(50, func() {
		sink += SoftmaxCrossEntropy{}.EvalValue(logits, target)
	})
	if allocs != 0 {
		t.Fatalf("EvalValue allocates %v per call, want 0", allocs)
	}
	_ = sink
}
