package nn

import (
	"fmt"
	"testing"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/tensor"
)

// Parallel Conv2D (and Dense, via the network test below) must be
// BIT-identical to the serial layer at every intra-op budget: forward
// outputs, input gradients, and the accumulated weight/bias gradients are
// all compared with exact equality on shapes with odd sample counts,
// channel counts not divisible by the budget, and grouped/depthwise
// variants.

func convCase(t *testing.T, n, inC, outC, k, stride, pad, groups, h, w, par int) {
	t.Helper()
	name := fmt.Sprintf("n%d_%d→%d_k%d_s%d_p%d_g%d_%dx%d_par%d", n, inC, outC, k, stride, pad, groups, h, w, par)

	serial := NewConv2D(frand.New(5), inC, outC, k, stride, pad, groups)
	parl := NewConv2D(frand.New(5), inC, outC, k, stride, pad, groups)
	parl.SetIntraOp(par)

	r := frand.New(9)
	x := tensor.Randn(r, 1, n, inC, h, w)
	outS := serial.Forward(x, true)
	outP := parl.Forward(x, true)
	exactSlice(t, name+"/forward", outP.Data(), outS.Data())

	grad := tensor.Randn(r, 1, outS.Shape()...)
	// Seed the gradient accumulators with junk to catch a kernel that
	// overwrites instead of accumulating (both sides get the same junk).
	seed := frand.New(13)
	for i, p := range serial.Params() {
		j := tensor.Randn(seed, 1, p.Grad.Shape()...)
		p.Grad.CopyFrom(j)
		parl.Params()[i].Grad.CopyFrom(j)
	}
	dxS := serial.Backward(grad)
	dxP := parl.Backward(grad)
	exactSlice(t, name+"/dx", dxP.Data(), dxS.Data())
	exactSlice(t, name+"/dW", parl.W.Grad.Data(), serial.W.Grad.Data())
	exactSlice(t, name+"/db", parl.B.Grad.Data(), serial.B.Grad.Data())
}

func exactSlice(t *testing.T, name string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d differs: %v != %v (must be bit-identical)", name, i, got[i], want[i])
		}
	}
}

// TestConv2DParallelBitIdentical sweeps budgets over standard, grouped, and
// depthwise convolutions at shapes that produce ragged iteration and row
// partitions, plus the single-iteration (N=1, groups=1) case that hands the
// budget to the row-parallel matmul.
func TestConv2DParallelBitIdentical(t *testing.T) {
	for _, par := range []int{1, 2, 3, 4, 8} {
		convCase(t, 3, 6, 8, 3, 1, 1, 1, 16, 16, par)  // standard, odd batch
		convCase(t, 3, 6, 8, 3, 1, 1, 2, 16, 16, par)  // grouped
		convCase(t, 2, 6, 6, 3, 1, 1, 6, 13, 11, par)  // depthwise, odd image
		convCase(t, 5, 3, 7, 3, 2, 0, 1, 17, 15, par)  // strided, no pad, odd everything
		convCase(t, 1, 3, 16, 3, 1, 1, 1, 32, 32, par) // single iteration → inner row parallelism
	}
}

// TestNetworkParallelTrainingBitIdentical trains two identical conv+dense
// networks — one serial, one with an intra-op budget — for several SGD steps
// and requires bit-identical weights throughout, i.e. the budget must not
// perturb training at all.
func TestNetworkParallelTrainingBitIdentical(t *testing.T) {
	build := func() *Network {
		br := frand.New(41)
		return NewNetwork(
			NewConv2D(br, 3, 8, 3, 1, 1, 1),
			NewReLU(),
			NewFlatten(),
			NewDense(br, 8*12*12, 32),
			NewReLU(),
			NewDense(br, 32, 4),
		)
	}
	serial := build()
	parl := build()
	parl.SetIntraOp(4)
	if parl.IntraOp() != 4 {
		t.Fatalf("IntraOp()=%d after SetIntraOp(4)", parl.IntraOp())
	}

	r := frand.New(77)
	optS := NewSGD(0.05, 0.9, 1e-4)
	optP := NewSGD(0.05, 0.9, 1e-4)
	loss := SoftmaxCrossEntropy{}
	for step := 0; step < 4; step++ {
		x := tensor.Randn(r, 1, 5, 3, 12, 12)
		labels := []int{0, 1, 2, 3, 0}
		outS := serial.Forward(x, true)
		outP := parl.Forward(x, true)
		exactSlice(t, fmt.Sprintf("step%d/out", step), outP.Data(), outS.Data())
		_, gS := loss.Eval(outS, ClassTarget(labels))
		_, gP := loss.Eval(outP, ClassTarget(labels))
		serial.Backward(gS)
		parl.Backward(gP)
		optS.Step(serial.Params())
		optP.Step(parl.Params())
	}
	ws, wp := serial.Snapshot(), parl.Snapshot()
	for i := range ws.Params {
		exactSlice(t, fmt.Sprintf("param%d", i), wp.Params[i].Data(), ws.Params[i].Data())
	}
}
