package isp

import (
	"math"
	"sort"
)

// DenoiseAlg selects the denoising algorithm (Table 3 row "Denoising").
type DenoiseAlg int

// Denoise variants. FBDD-style two-pass denoising is the baseline; Option 1
// omits the stage; Option 2 is wavelet BayesShrink.
const (
	DenoiseFBDD DenoiseAlg = iota
	DenoiseNone
	DenoiseWavelet
)

// String implements fmt.Stringer.
func (a DenoiseAlg) String() string {
	switch a {
	case DenoiseFBDD:
		return "fbdd"
	case DenoiseNone:
		return "none"
	case DenoiseWavelet:
		return "wavelet-bayesshrink"
	}
	return "denoise?"
}

// Denoise applies the selected denoiser, returning a new image.
func Denoise(im *Image, alg DenoiseAlg) *Image {
	switch alg {
	case DenoiseNone:
		return im.Clone()
	case DenoiseWavelet:
		return denoiseWaveletBayesShrink(im)
	default:
		return denoiseFBDD(im)
	}
}

// denoiseFBDD approximates FBDD (Fake Before Demosaicing Denoising as used
// by LibRaw/dcraw): an impulse-suppression pass (median of the 3x3
// neighborhood when the centre is an outlier) followed by a light Gaussian
// smoothing of chroma-like high frequencies.
func denoiseFBDD(im *Image) *Image {
	out := im.Clone()
	var window [9]float64
	for c := 0; c < 3; c++ {
		for y := 0; y < im.H; y++ {
			for x := 0; x < im.W; x++ {
				k := 0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						window[k] = im.At(clampInt(x+dx, 0, im.W-1), clampInt(y+dy, 0, im.H-1), c)
						k++
					}
				}
				v := im.At(x, y, c)
				w := window[:]
				sort.Float64s(w)
				med := w[4]
				// Impulse test: centre far outside the local range.
				if math.Abs(v-med) > 0.15 {
					out.Set(x, y, c, med)
				}
			}
		}
	}
	return gaussian3(out, 0.35)
}

// gaussian3 applies a 3x3 blur with centre weight (1-a) and the remaining
// mass a spread over the 8 neighbors — a cheap separable-ish smoother.
func gaussian3(im *Image, a float64) *Image {
	out := NewImage(im.W, im.H)
	side := a / 8
	for c := 0; c < 3; c++ {
		for y := 0; y < im.H; y++ {
			for x := 0; x < im.W; x++ {
				var s float64
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						v := im.At(clampInt(x+dx, 0, im.W-1), clampInt(y+dy, 0, im.H-1), c)
						if dx == 0 && dy == 0 {
							s += v * (1 - a)
						} else {
							s += v * side
						}
					}
				}
				out.Set(x, y, c, s)
			}
		}
	}
	return out
}

// denoiseWaveletBayesShrink performs one level of a 2-D Haar wavelet
// transform per channel, soft-thresholds the detail coefficients with the
// BayesShrink threshold T = σ²/σ_x (noise σ estimated from the diagonal
// subband median), and reconstructs.
func denoiseWaveletBayesShrink(im *Image) *Image {
	out := im.Clone()
	w2, h2 := im.W/2, im.H/2
	if w2 == 0 || h2 == 0 {
		return out
	}
	ll := make([]float64, w2*h2)
	lh := make([]float64, w2*h2)
	hl := make([]float64, w2*h2)
	hh := make([]float64, w2*h2)
	for c := 0; c < 3; c++ {
		// Forward Haar on 2x2 blocks.
		for y := 0; y < h2; y++ {
			for x := 0; x < w2; x++ {
				a := im.At(2*x, 2*y, c)
				b := im.At(clampInt(2*x+1, 0, im.W-1), 2*y, c)
				d := im.At(2*x, clampInt(2*y+1, 0, im.H-1), c)
				e := im.At(clampInt(2*x+1, 0, im.W-1), clampInt(2*y+1, 0, im.H-1), c)
				i := y*w2 + x
				ll[i] = (a + b + d + e) / 2
				lh[i] = (a - b + d - e) / 2
				hl[i] = (a + b - d - e) / 2
				hh[i] = (a - b - d + e) / 2
			}
		}
		// BayesShrink threshold from the HH subband.
		sigma := medianAbs(hh) / 0.6745
		t := bayesThreshold(hh, sigma)
		softThreshold(lh, t)
		softThreshold(hl, t)
		softThreshold(hh, t)
		// Inverse Haar.
		for y := 0; y < h2; y++ {
			for x := 0; x < w2; x++ {
				i := y*w2 + x
				a := (ll[i] + lh[i] + hl[i] + hh[i]) / 2
				b := (ll[i] - lh[i] + hl[i] - hh[i]) / 2
				d := (ll[i] + lh[i] - hl[i] - hh[i]) / 2
				e := (ll[i] - lh[i] - hl[i] + hh[i]) / 2
				out.Set(2*x, 2*y, c, clamp01(a))
				if 2*x+1 < im.W {
					out.Set(2*x+1, 2*y, c, clamp01(b))
				}
				if 2*y+1 < im.H {
					out.Set(2*x, 2*y+1, c, clamp01(d))
				}
				if 2*x+1 < im.W && 2*y+1 < im.H {
					out.Set(2*x+1, 2*y+1, c, clamp01(e))
				}
			}
		}
	}
	return out
}

func medianAbs(v []float64) float64 {
	tmp := make([]float64, len(v))
	for i, x := range v {
		tmp[i] = math.Abs(x)
	}
	sort.Float64s(tmp)
	return tmp[len(tmp)/2]
}

// bayesThreshold computes σ²/σ_x where σ_x² = max(var(subband) - σ², 0).
func bayesThreshold(sub []float64, sigma float64) float64 {
	var sumsq float64
	for _, v := range sub {
		sumsq += v * v
	}
	varY := sumsq / float64(len(sub))
	varX := varY - sigma*sigma
	if varX <= 1e-12 {
		return math.Inf(1) // kill the whole subband: it is all noise
	}
	return sigma * sigma / math.Sqrt(varX)
}

func softThreshold(v []float64, t float64) {
	if math.IsInf(t, 1) {
		for i := range v {
			v[i] = 0
		}
		return
	}
	for i, x := range v {
		switch {
		case x > t:
			v[i] = x - t
		case x < -t:
			v[i] = x + t
		default:
			v[i] = 0
		}
	}
}
