package scene

import (
	"testing"

	"heteroswitch/internal/frand"
)

func TestImageNet12Recipes(t *testing.T) {
	g := NewImageNet12(64)
	if g.NumClasses() != 12 {
		t.Fatalf("classes = %d", g.NumClasses())
	}
	names := map[string]bool{}
	for c := 0; c < 12; c++ {
		n := g.ClassName(c)
		if n == "" || names[n] {
			t.Fatalf("class %d has empty or duplicate name %q", c, n)
		}
		names[n] = true
	}
}

func TestRenderInRangeAndSized(t *testing.T) {
	g := NewImageNet12(48)
	rng := frand.New(1)
	for c := 0; c < g.NumClasses(); c++ {
		im := g.Render(c, rng)
		if im.W != 48 || im.H != 48 {
			t.Fatalf("class %d render %dx%d", c, im.W, im.H)
		}
		for _, v := range im.Pix {
			if v < 0 || v > 1 {
				t.Fatalf("class %d pixel out of range: %v", c, v)
			}
		}
	}
}

func TestRenderDeterministic(t *testing.T) {
	g := NewImageNet12(32)
	a := g.Render(3, frand.New(42))
	b := g.Render(3, frand.New(42))
	if a.MSE(b) != 0 {
		t.Fatal("render not deterministic for identical RNG")
	}
}

func TestIntraClassVariation(t *testing.T) {
	g := NewImageNet12(32)
	rng := frand.New(7)
	a := g.Render(3, rng)
	b := g.Render(3, rng)
	if a.MSE(b) < 1e-5 {
		t.Fatal("two instances of the same class are identical — no augmentable variation")
	}
}

func TestInterClassSeparation(t *testing.T) {
	// Mean image distance between classes should exceed within-class
	// distance, otherwise the classification task is ill-posed.
	g := NewImageNet12(32)
	rng := frand.New(11)
	var within, between float64
	nw, nb := 0, 0
	renders := make([][]float64, 12)
	for c := 0; c < 12; c++ {
		a := g.Render(c, rng)
		b := g.Render(c, rng)
		within += a.MSE(b)
		nw++
		means := a.ChannelMeans()
		renders[c] = means[:]
	}
	for c1 := 0; c1 < 12; c1++ {
		for c2 := c1 + 1; c2 < 12; c2++ {
			var d float64
			for k := 0; k < 3; k++ {
				diff := renders[c1][k] - renders[c2][k]
				d += diff * diff
			}
			between += d
			nb++
		}
	}
	if between/float64(nb) < 1e-4 {
		t.Errorf("classes have nearly identical color statistics: %v", between/float64(nb))
	}
	_ = within
}

func TestSyntheticGeneratorDeterministicInSeed(t *testing.T) {
	a := NewSynthetic(20, 32, 5)
	b := NewSynthetic(20, 32, 5)
	if len(a.Recipes) != 20 {
		t.Fatalf("recipes = %d", len(a.Recipes))
	}
	for i := range a.Recipes {
		if a.Recipes[i] != b.Recipes[i] {
			t.Fatal("synthetic recipes differ across identical seeds")
		}
	}
	c := NewSynthetic(20, 32, 6)
	same := 0
	for i := range a.Recipes {
		if a.Recipes[i].ColorA == c.Recipes[i].ColorA {
			same++
		}
	}
	if same == 20 {
		t.Fatal("different seeds produced identical recipes")
	}
}

func TestRenderSetClassMajorOrder(t *testing.T) {
	g := NewImageNet12(16)
	set := g.RenderSet(3, frand.New(13))
	if len(set) != 36 {
		t.Fatalf("set size %d", len(set))
	}
	for i, s := range set {
		if s.Class != i/3 {
			t.Fatalf("scene %d class %d, want %d", i, s.Class, i/3)
		}
		if s.Image == nil {
			t.Fatal("nil image in set")
		}
	}
}

func TestMultiLabelScene(t *testing.T) {
	g := NewImageNet12(32)
	rng := frand.New(17)
	for trial := 0; trial < 10; trial++ {
		im, labels := g.MultiLabelScene(rng)
		if im.W != 32 || im.H != 32 {
			t.Fatalf("geometry %dx%d", im.W, im.H)
		}
		if len(labels) != 12 {
			t.Fatalf("label vector length %d", len(labels))
		}
		pos := 0
		for _, l := range labels {
			if l != 0 && l != 1 {
				t.Fatalf("non-binary label %v", l)
			}
			if l == 1 {
				pos++
			}
		}
		if pos < 2 || pos > 4 {
			t.Fatalf("positive labels = %d, want 2..4", pos)
		}
	}
}

func TestRenderPanicsOnBadClass(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewImageNet12(16).Render(99, frand.New(1))
}

func BenchmarkRender64(b *testing.B) {
	g := NewImageNet12(64)
	rng := frand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Render(i%12, rng)
	}
}
