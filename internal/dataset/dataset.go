// Package dataset turns captured images into training/evaluation data and
// provides the federation plumbing: per-device capture of a shared scene
// set, shuffling, splitting, batching, and per-client partitioning.
package dataset

import (
	"fmt"

	"heteroswitch/internal/device"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/isp"
	"heteroswitch/internal/scene"
	"heteroswitch/internal/tensor"
)

// Sample is one training/evaluation example.
type Sample struct {
	X      *tensor.Tensor // [C, H, W]
	Label  int            // single-label class; -1 when Multi is used
	Multi  []float32      // multi-label indicator vector (nil if single-label)
	Device int            // index of the capturing device profile
}

// Dataset is an ordered collection of samples.
type Dataset struct {
	Samples    []Sample
	NumClasses int
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.Samples) }

// Shuffle permutes the samples in place.
func (d *Dataset) Shuffle(rng *frand.RNG) {
	rng.Shuffle(len(d.Samples), func(i, j int) {
		d.Samples[i], d.Samples[j] = d.Samples[j], d.Samples[i]
	})
}

// Split divides the dataset into a training set with the given fraction and
// a test set with the remainder (no shuffling; shuffle first if needed).
func (d *Dataset) Split(trainFrac float64) (train, test *Dataset) {
	n := int(float64(len(d.Samples)) * trainFrac)
	if n < 0 {
		n = 0
	}
	if n > len(d.Samples) {
		n = len(d.Samples)
	}
	return &Dataset{Samples: d.Samples[:n], NumClasses: d.NumClasses},
		&Dataset{Samples: d.Samples[n:], NumClasses: d.NumClasses}
}

// Subset returns a view of the given sample indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	s := make([]Sample, len(idx))
	for i, j := range idx {
		s[i] = d.Samples[j]
	}
	return &Dataset{Samples: s, NumClasses: d.NumClasses}
}

// Concat appends other datasets (class counts must agree).
func Concat(ds ...*Dataset) *Dataset {
	out := &Dataset{}
	for _, d := range ds {
		if d == nil || len(d.Samples) == 0 {
			continue
		}
		if out.NumClasses == 0 {
			out.NumClasses = d.NumClasses
		}
		out.Samples = append(out.Samples, d.Samples...)
	}
	return out
}

// StratifiedSplit splits per class so train and test both contain every
// class in proportion. Samples of each class keep their original order.
func (d *Dataset) StratifiedSplit(trainFrac float64) (train, test *Dataset) {
	byClass := map[int][]int{}
	for i, s := range d.Samples {
		byClass[s.Label] = append(byClass[s.Label], i)
	}
	var trIdx, teIdx []int
	for c := 0; c < d.NumClasses; c++ {
		idx := byClass[c]
		n := int(float64(len(idx)) * trainFrac)
		trIdx = append(trIdx, idx[:n]...)
		teIdx = append(teIdx, idx[n:]...)
	}
	return d.Subset(trIdx), d.Subset(teIdx)
}

// Batch materializes samples [lo, hi) as a stacked input tensor and labels.
func (d *Dataset) Batch(lo, hi int) (*tensor.Tensor, []int) {
	n := hi - lo
	first := d.Samples[lo].X
	shape := append([]int{n}, first.Shape()...)
	x := tensor.New(shape...)
	labels := make([]int, n)
	d.BatchInto(x, labels, lo, hi)
	return x, labels
}

// BatchInto fills x and labels with samples [lo, hi), the reuse-a-buffer form
// of Batch for allocation-free training loops. x must be shaped
// [hi-lo, sample...] (every element is overwritten) and labels must have
// length hi-lo.
func (d *Dataset) BatchInto(x *tensor.Tensor, labels []int, lo, hi int) {
	n := hi - lo
	per := d.Samples[lo].X.Size()
	if x.Size() != n*per || len(labels) != n {
		panic(fmt.Sprintf("dataset: BatchInto buffers (%d elems, %d labels) for %d samples of %d elems",
			x.Size(), len(labels), n, per))
	}
	for i := 0; i < n; i++ {
		s := d.Samples[lo+i]
		if s.X.Size() != per {
			panic(fmt.Sprintf("dataset: sample %d has %d elems, batch expects %d", lo+i, s.X.Size(), per))
		}
		copy(x.Data()[i*per:(i+1)*per], s.X.Data())
		labels[i] = s.Label
	}
}

// BatchMulti materializes samples [lo, hi) with their multi-label targets.
func (d *Dataset) BatchMulti(lo, hi int) (*tensor.Tensor, *tensor.Tensor) {
	n := hi - lo
	first := d.Samples[lo].X
	shape := append([]int{n}, first.Shape()...)
	x := tensor.New(shape...)
	y := tensor.New(n, d.NumClasses)
	d.BatchMultiInto(x, y, lo, hi)
	return x, y
}

// BatchMultiInto is the reuse-a-buffer form of BatchMulti: x must be
// [hi-lo, sample...] and y must be [hi-lo, NumClasses]; every element of
// both is overwritten.
func (d *Dataset) BatchMultiInto(x, y *tensor.Tensor, lo, hi int) {
	n := hi - lo
	per := d.Samples[lo].X.Size()
	if x.Size() != n*per || y.Size() != n*d.NumClasses {
		panic(fmt.Sprintf("dataset: BatchMultiInto buffers (%d, %d elems) for %d samples of %d elems, %d classes",
			x.Size(), y.Size(), n, per, d.NumClasses))
	}
	for i := 0; i < n; i++ {
		s := d.Samples[lo+i]
		// The buffers are reused uninitialized, so a short sample would
		// silently leave the previous batch's data in place — fail loudly.
		if s.X.Size() != per || len(s.Multi) != d.NumClasses {
			panic(fmt.Sprintf("dataset: sample %d has %d elems / %d labels, batch expects %d / %d",
				lo+i, s.X.Size(), len(s.Multi), per, d.NumClasses))
		}
		copy(x.Data()[i*per:(i+1)*per], s.X.Data())
		copy(y.Data()[i*d.NumClasses:(i+1)*d.NumClasses], s.Multi)
	}
}

// CaptureMode selects how captured frames are developed.
type CaptureMode int

// Capture modes.
const (
	// ModeProcessed develops frames with the device's own ISP and vendor
	// tuning — normal operation.
	ModeProcessed CaptureMode = iota
	// ModeRAW develops frames with minimal bilinear demosaic only — the
	// §3.3 RAW-data condition.
	ModeRAW
)

// Capture photographs every scene with the given device and returns a
// dataset of outRes×outRes tensors labelled with the scene class and the
// provided device index.
func Capture(scenes []scene.Scene, dev *device.Profile, devIndex int,
	mode CaptureMode, outRes, numClasses int, rng *frand.RNG) (*Dataset, error) {
	ds := &Dataset{NumClasses: numClasses, Samples: make([]Sample, 0, len(scenes))}
	for _, sc := range scenes {
		var im *isp.Image
		var err error
		switch mode {
		case ModeRAW:
			im, err = dev.CaptureRAW(sc.Image, rng)
		default:
			im, err = dev.CaptureProcessed(sc.Image, rng)
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: capture class %d: %w", sc.Class, err)
		}
		ds.Samples = append(ds.Samples, Sample{
			X:      im.Resize(outRes, outRes).ToTensor(),
			Label:  sc.Class,
			Device: devIndex,
		})
	}
	return ds, nil
}

// CaptureWithPipeline photographs every scene with the device's sensor but a
// caller-supplied ISP pipeline (no vendor tuning) — the ISP-stage ablation
// path (§3.4).
func CaptureWithPipeline(scenes []scene.Scene, dev *device.Profile, devIndex int,
	pipe isp.Pipeline, outRes, numClasses int, rng *frand.RNG) (*Dataset, error) {
	ds := &Dataset{NumClasses: numClasses, Samples: make([]Sample, 0, len(scenes))}
	for _, sc := range scenes {
		im, err := dev.CaptureWithPipeline(sc.Image, pipe, rng)
		if err != nil {
			return nil, fmt.Errorf("dataset: capture class %d: %w", sc.Class, err)
		}
		ds.Samples = append(ds.Samples, Sample{
			X:      im.Resize(outRes, outRes).ToTensor(),
			Label:  sc.Class,
			Device: devIndex,
		})
	}
	return ds, nil
}

// PartitionIID deals the dataset round-robin into n client shards after a
// shuffle, giving each client an approximately IID subset.
func (d *Dataset) PartitionIID(n int, rng *frand.RNG) []*Dataset {
	idx := rng.Perm(len(d.Samples))
	shards := make([]*Dataset, n)
	for i := range shards {
		shards[i] = &Dataset{NumClasses: d.NumClasses}
	}
	for i, j := range idx {
		s := shards[i%n]
		s.Samples = append(s.Samples, d.Samples[j])
	}
	return shards
}

// ByDevice groups samples by their capturing device index.
func (d *Dataset) ByDevice() map[int]*Dataset {
	out := map[int]*Dataset{}
	for _, s := range d.Samples {
		g, ok := out[s.Device]
		if !ok {
			g = &Dataset{NumClasses: d.NumClasses}
			out[s.Device] = g
		}
		g.Samples = append(g.Samples, s)
	}
	return out
}
