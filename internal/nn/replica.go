package nn

import "heteroswitch/internal/tensor"

// Replica is one goroutine's private inference copy of a served model: its
// own Network (arena, im2col scratch, frozen view) plus the model version it
// last loaded. Neither Network nor Frozen is safe for concurrent use, so a
// server runs one Replica per worker and moves versioned weights to it
// through Ensure; the weights themselves are read-only and shared.
//
// Ensure is deliberately version-keyed rather than comparing weights: loading
// (and re-folding BN into the frozen view) happens exactly once per version
// per replica, and a batch executed on version v is bit-identical on every
// replica because the folded weights are a pure function of v's values.
type Replica struct {
	net *Network
	inf Inference
	// version is the last Ensure'd model version; -1 before the first load.
	version int
	// panels, when non-nil, is the packed-weight panel cache shared by every
	// replica of one pool: Ensure points the network's next Freeze at it so
	// weight packing/quantization runs once per VERSION instead of once per
	// replica per version.
	panels *PanelCache
}

// NewReplica builds a replica from the model builder, granting it intraOp
// cores of kernel parallelism (0 keeps the builder's setting). The replica
// has no weights loaded yet: Ensure before the first Infer.
func NewReplica(build func() *Network, intraOp int) *Replica {
	net := build()
	if intraOp > 0 {
		net.SetIntraOp(intraOp)
	}
	return &Replica{net: net, version: -1}
}

// Version returns the loaded model version (-1 before the first Ensure).
func (r *Replica) Version() int { return r.version }

// Net exposes the replica's private network (for eval-surface toggles and
// tests); it must only be touched by the goroutine holding the replica.
func (r *Replica) Net() *Network { return r.net }

// Ensure makes the replica serve model version v with the given weights:
// a no-op when v is already loaded, otherwise one LoadWeights plus one
// re-fold of the frozen view. w must stay immutable while any replica can
// still Ensure against v (the VersionStore's retain window).
func (r *Replica) Ensure(v int, w Weights) error {
	if r.version == v && r.inf != nil {
		return nil
	}
	if err := r.net.LoadWeights(w); err != nil {
		return err
	}
	if r.panels != nil {
		// Bind the next Freeze to the shared panel set of version v; the
		// reference on the previous version's set drops inside Freeze only
		// after the new set is live.
		r.net.SetPanelSource(r.panels, v)
	}
	// One EvalView per version load: Freeze re-folds BN to the new weights
	// here, not per batch.
	r.inf = EvalView(r.net)
	r.version = v
	return nil
}

// Infer runs one batch through the replica's inference surface (the fused
// frozen view unless SetFusedEval(false) routed evaluation back to the
// reference forward). The output aliases the replica's arena: valid until
// the next Infer on this replica, so copy out before Put-ing it back.
func (r *Replica) Infer(x *tensor.Tensor) *tensor.Tensor {
	if r.inf == nil {
		panic("nn: Replica.Infer before Ensure")
	}
	return r.inf.Infer(x)
}

// ReplicaPool hands out replicas to concurrent request goroutines. It is a
// fixed-size blocking pool on a buffered channel: Get blocks until a replica
// is free (admission control — at most Size batches execute at once), and
// both Get and Put are allocation-free, keeping the steady-state request
// path at 0 allocs/op.
type ReplicaPool struct {
	ch chan *Replica
}

// NewReplicaPool builds n replicas from the builder, each granted intraOp
// cores (0 keeps the builder's setting). The replicas share one packed-weight
// panel cache: a version's folded weights are identical on every replica, so
// the first replica to Ensure a version packs its panels and the rest reuse
// them.
func NewReplicaPool(n int, build func() *Network, intraOp int) *ReplicaPool {
	p := &ReplicaPool{ch: make(chan *Replica, n)}
	pc := NewPanelCache()
	for i := 0; i < n; i++ {
		r := NewReplica(build, intraOp)
		r.panels = pc
		p.ch <- r
	}
	return p
}

// Size returns the number of replicas owned by the pool.
func (p *ReplicaPool) Size() int { return cap(p.ch) }

// Free returns the number of replicas currently idle in the pool. A quiesced
// server must report Free() == Size(); anything less means a borrower leaked
// a replica (the serving error-path regression tests assert exactly this).
func (p *ReplicaPool) Free() int { return len(p.ch) }

// Get blocks until a replica is free and transfers it to the caller.
func (p *ReplicaPool) Get() *Replica { return <-p.ch }

// Put returns a replica to the pool.
func (p *ReplicaPool) Put(r *Replica) { p.ch <- r }
