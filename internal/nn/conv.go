package nn

import (
	"fmt"
	"math"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/tensor"
)

// Conv2D is a grouped 2-D convolution over NCHW tensors. Groups==1 is a
// standard convolution; Groups==InC with OutC==InC is a depthwise
// convolution (the MobileNet building block); 1<Groups<InC gives the grouped
// convolutions used by ShuffleNet.
//
// The implementation lowers each sample and group to an im2col matrix and a
// single matmul, caching the column matrices for the backward pass.
type Conv2D struct {
	arenaScratch
	InC, OutC   int
	KH, KW      int
	Stride, Pad int
	Groups      int
	W, B        *Param
	inH, inW    int // geometry captured at Forward time
	dims        tensor.ConvDims
	cols        []float32 // cached im2col matrices: [N][G][rows*cols]
	dcol        []float32 // backward scratch: one group's column gradient
	batch       int
	x           *tensor.Tensor
}

// NewConv2D builds a grouped convolution with He-normal init. It panics if
// channel counts are not divisible by groups (a construction-time programmer
// error).
func NewConv2D(r *frand.RNG, inC, outC, k, stride, pad, groups int) *Conv2D {
	if groups < 1 || inC%groups != 0 || outC%groups != 0 {
		panic(fmt.Sprintf("nn: Conv2D groups=%d incompatible with channels %d→%d", groups, inC, outC))
	}
	fanIn := (inC / groups) * k * k
	std := math.Sqrt(2.0 / float64(fanIn))
	w := tensor.Randn(r, std, outC, fanIn)
	name := fmt.Sprintf("conv%d_%d_k%dg%d", inC, outC, k, groups)
	return &Conv2D{
		InC: inC, OutC: outC, KH: k, KW: k, Stride: stride, Pad: pad, Groups: groups,
		W: &Param{Name: name + ".W", W: w, Grad: tensor.New(outC, fanIn)},
		B: &Param{Name: name + ".b", W: tensor.New(outC), Grad: tensor.New(outC), NoDecay: true},
	}
}

// NewDepthwiseConv2D builds a depthwise convolution (groups == channels).
func NewDepthwiseConv2D(r *frand.RNG, c, k, stride, pad int) *Conv2D {
	return NewConv2D(r, c, c, k, stride, pad, c)
}

// Forward implements Layer.
func (l *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.NDim() != 4 || x.Dim(1) != l.InC {
		panic(fmt.Sprintf("nn: Conv2D input %v, want [N %d H W]", x.Shape(), l.InC))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	if h != l.inH || w != l.inW {
		d, err := tensor.NewConvDims(l.InC/l.Groups, h, w, l.KH, l.KW, l.Stride, l.Pad)
		if err != nil {
			panic("nn: " + err.Error())
		}
		l.dims, l.inH, l.inW = d, h, w
	}
	d := l.dims
	rows, cols := d.ColRows(), d.ColCols()
	g := l.Groups
	gcIn := l.InC / g
	gcOut := l.OutC / g
	need := n * g * rows * cols
	if cap(l.cols) < need {
		l.cols = make([]float32, need)
	}
	l.cols = l.cols[:need]
	l.batch = n
	l.x = x

	out := l.allocUninit(n, l.OutC, d.OutH, d.OutW)
	xd, od, wd, bd := x.Data(), out.Data(), l.W.W.Data(), l.B.W.Data()
	imgStride := l.InC * h * w
	outStride := l.OutC * d.OutH * d.OutW
	fanIn := gcIn * l.KH * l.KW
	for i := 0; i < n; i++ {
		for gi := 0; gi < g; gi++ {
			img := xd[i*imgStride+gi*gcIn*h*w : i*imgStride+(gi+1)*gcIn*h*w]
			col := l.cols[(i*g+gi)*rows*cols : (i*g+gi+1)*rows*cols]
			tensor.Im2Col(col, img, d)
			// y[gcOut, cols] = Wg[gcOut, fanIn] @ col[fanIn, cols]
			wg := wd[gi*gcOut*fanIn : (gi+1)*gcOut*fanIn]
			y := od[i*outStride+gi*gcOut*cols : i*outStride+(gi+1)*gcOut*cols]
			tensor.MatMulSlices(y, wg, col, gcOut, fanIn, cols)
			for oc := 0; oc < gcOut; oc++ {
				b := bd[gi*gcOut+oc]
				row := y[oc*cols : (oc+1)*cols]
				for j := range row {
					row[j] += b
				}
			}
		}
	}
	return out
}

// Backward implements Layer.
func (l *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	d := l.dims
	rows, cols := d.ColRows(), d.ColCols()
	g := l.Groups
	gcIn := l.InC / g
	gcOut := l.OutC / g
	fanIn := gcIn * l.KH * l.KW
	n := l.batch
	h, w := l.inH, l.inW

	// Col2Im accumulates, so dx must start zeroed.
	dx := l.alloc(n, l.InC, h, w)
	gd, wd, dwd, dbd, dxd := grad.Data(), l.W.W.Data(), l.W.Grad.Data(), l.B.Grad.Data(), dx.Data()
	imgStride := l.InC * h * w
	outStride := l.OutC * d.OutH * d.OutW

	if cap(l.dcol) < rows*cols {
		l.dcol = make([]float32, rows*cols)
	}
	dcol := l.dcol[:rows*cols]
	for i := 0; i < n; i++ {
		for gi := 0; gi < g; gi++ {
			dy := gd[i*outStride+gi*gcOut*cols : i*outStride+(gi+1)*gcOut*cols]
			col := l.cols[(i*g+gi)*rows*cols : (i*g+gi+1)*rows*cols]
			// dWg += dy @ colᵀ, accumulated in place (no temporary + add pass).
			dwg := dwd[gi*gcOut*fanIn : (gi+1)*gcOut*fanIn]
			tensor.MatMulTransBAccSlices(dwg, dy, col, gcOut, cols, fanIn)
			// db += Σ spatial dy
			for oc := 0; oc < gcOut; oc++ {
				var s float32
				row := dy[oc*cols : (oc+1)*cols]
				for _, v := range row {
					s += v
				}
				dbd[gi*gcOut+oc] += s
			}
			// dcol = Wgᵀ @ dy, then scatter back to dx. The transposed-A
			// kernel reads Wg in place instead of materializing Wgᵀ.
			wg := wd[gi*gcOut*fanIn : (gi+1)*gcOut*fanIn]
			clear(dcol)
			tensor.MatMulTransAAccSlices(dcol, wg, dy, gcOut, fanIn, cols)
			dimg := dxd[i*imgStride+gi*gcIn*h*w : i*imgStride+(gi+1)*gcIn*h*w]
			tensor.Col2Im(dimg, dcol, d)
		}
	}
	return dx
}

// Params implements Layer.
func (l *Conv2D) Params() []*Param { return []*Param{l.W, l.B} }

// States implements Layer.
func (l *Conv2D) States() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *Conv2D) Name() string {
	return fmt.Sprintf("Conv2D(%d→%d, k%d, s%d, g%d)", l.InC, l.OutC, l.KH, l.Stride, l.Groups)
}

// ChannelShuffle permutes channels between groups, the ShuffleNet mixing
// operation: viewing channels as [g, c/g], it transposes to [c/g, g].
type ChannelShuffle struct {
	arenaScratch
	Groups int
	c      int
}

// NewChannelShuffle returns a shuffle layer with the given group count.
func NewChannelShuffle(groups int) *ChannelShuffle { return &ChannelShuffle{Groups: groups} }

// Forward implements Layer.
func (l *ChannelShuffle) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.c = x.Dim(1)
	return l.shuffleChannels(x, l.Groups)
}

// Backward implements Layer: the inverse of a [g, c/g] transpose is a
// [c/g, g] transpose.
func (l *ChannelShuffle) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return l.shuffleChannels(grad, l.c/l.Groups)
}

func (l *ChannelShuffle) shuffleChannels(x *tensor.Tensor, g int) *tensor.Tensor {
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if c%g != 0 {
		panic(fmt.Sprintf("nn: ChannelShuffle %d channels not divisible by %d groups", c, g))
	}
	per := c / g
	out := l.allocUninit(n, c, h, w)
	hw := h * w
	xd, od := x.Data(), out.Data()
	for i := 0; i < n; i++ {
		base := i * c * hw
		for gi := 0; gi < g; gi++ {
			for ci := 0; ci < per; ci++ {
				src := xd[base+(gi*per+ci)*hw : base+(gi*per+ci+1)*hw]
				dst := od[base+(ci*g+gi)*hw : base+(ci*g+gi+1)*hw]
				copy(dst, src)
			}
		}
	}
	return out
}

// Params implements Layer.
func (l *ChannelShuffle) Params() []*Param { return nil }

// States implements Layer.
func (l *ChannelShuffle) States() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *ChannelShuffle) Name() string { return fmt.Sprintf("ChannelShuffle(g%d)", l.Groups) }
