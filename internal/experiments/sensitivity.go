package experiments

import (
	"fmt"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/fl"
	"heteroswitch/internal/metrics"
)

// Fig9Result is the hyperparameter sensitivity study (App. A.2 / Fig. 9):
// four one-at-a-time sweeps around the paper's chosen configuration.
type Fig9Result struct {
	Sweeps []Fig9Sweep
}

// Fig9Sweep is one panel: vary a single hyperparameter, fixing the rest.
type Fig9Sweep struct {
	Param  string
	Values []string
	Acc    []float64
}

// String renders all panels.
func (r *Fig9Result) String() string {
	t := &Table{
		Title:  "Figure 9 — hyperparameter sensitivity (FedAvg, market-share population)",
		Header: []string{"parameter", "value", "accuracy"},
	}
	for _, sw := range r.Sweeps {
		for i, v := range sw.Values {
			t.AddRow(sw.Param, v, pct(sw.Acc[i]))
		}
	}
	return t.String()
}

// Fig9 runs the sweeps. Round counts are scaled: the paper's T axis
// {100, 500, 1000} maps to {T/10, T/2, T} of the scaled base.
func Fig9(opts Options) (*Fig9Result, error) {
	dd, err := BuildDeviceData(opts, opts.scaled(8), opts.scaled(4), dataset.ModeProcessed)
	if err != nil {
		return nil, err
	}
	builder := SimpleCNNBuilder(opts.Seed, dd.Classes)
	counts := MarketShareCounts(dd, opts.scaled(50))
	baseRounds := opts.scaled(80)

	base := fl.Config{
		Rounds:           baseRounds,
		ClientsPerRound:  10,
		BatchSize:        10,
		LocalEpochs:      1,
		LR:               0.1,
		Seed:             opts.Seed,
		Workers:          opts.Workers,
		DisableStreaming: opts.DisableStreaming,
		IntraOp:          opts.IntraOp,
	}
	eval := func(cfg fl.Config) (float64, error) {
		srv, err := RunFL(opts, fl.FedAvg{}, dd, counts, cfg, builder)
		if err != nil {
			return 0, err
		}
		return metrics.Accuracy(srv.GlobalNet(), dd.AllTest(), 16), nil
	}

	res := &Fig9Result{}

	lrSweep := Fig9Sweep{Param: "learning rate"}
	for _, lr := range []float64{0.001, 0.01, 0.1} {
		cfg := base
		cfg.LR = lr
		acc, err := eval(cfg)
		if err != nil {
			return nil, err
		}
		lrSweep.Values = append(lrSweep.Values, fmt.Sprintf("%g", lr))
		lrSweep.Acc = append(lrSweep.Acc, acc)
	}
	res.Sweeps = append(res.Sweeps, lrSweep)

	bSweep := Fig9Sweep{Param: "batch size"}
	for _, b := range []int{1, 10, 20} {
		cfg := base
		cfg.BatchSize = b
		acc, err := eval(cfg)
		if err != nil {
			return nil, err
		}
		bSweep.Values = append(bSweep.Values, fmt.Sprintf("%d", b))
		bSweep.Acc = append(bSweep.Acc, acc)
	}
	res.Sweeps = append(res.Sweeps, bSweep)

	eSweep := Fig9Sweep{Param: "local epochs"}
	for _, e := range []int{1, 3, 5} {
		cfg := base
		cfg.LocalEpochs = e
		acc, err := eval(cfg)
		if err != nil {
			return nil, err
		}
		eSweep.Values = append(eSweep.Values, fmt.Sprintf("%d", e))
		eSweep.Acc = append(eSweep.Acc, acc)
	}
	res.Sweeps = append(res.Sweeps, eSweep)

	tSweep := Fig9Sweep{Param: "rounds"}
	for _, frac := range []float64{0.1, 0.5, 1.0} {
		cfg := base
		cfg.Rounds = max(1, int(float64(baseRounds)*frac))
		acc, err := eval(cfg)
		if err != nil {
			return nil, err
		}
		tSweep.Values = append(tSweep.Values, fmt.Sprintf("%d", cfg.Rounds))
		tSweep.Acc = append(tSweep.Acc, acc)
	}
	res.Sweeps = append(res.Sweeps, tSweep)

	return res, nil
}
