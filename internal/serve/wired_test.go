package serve

import (
	"strings"
	"testing"
)

// publishCopyAt publishes a value-copy of the current weights at virtual
// instant at — the store-side half of what a wired trainer does on every
// finalized window.
func publishCopyAt(t *testing.T, s *Server, at float64) {
	t.Helper()
	v, w := s.Store().Acquire()
	buf := s.Store().TakeBuffer()
	for i, p := range w.Params {
		buf.Params[i].CopyFrom(p)
	}
	for i, st := range w.States {
		buf.States[i].CopyFrom(st)
	}
	s.Store().Release(v)
	if err := s.PublishAt(at, buf); err != nil {
		t.Fatal(err)
	}
}

func wiredRun(t *testing.T, intraop int) Report {
	t.Helper()
	cfg := Config{MaxBatch: 4, BatchBudget: 0.2, Workers: 2, IntraOp: intraop, Flush: FlushEDF,
		Admission: AdmissionConfig{Deadline: 20}}
	s := testServer(t, cfg)
	lc := LoadConfig{
		Requests:    200,
		Concurrency: 8,
		Arrival:     ClosedLoop{Think: 0.3, Seed: 11},
		Service:     AffineService{Base: 1, PerItem: 0.25},
		Inputs:      testInputs(8),
	}
	if err := s.BeginTrainLoad(lc); err != nil {
		t.Fatal(err)
	}
	// Ten publishes at fixed instants, like a trainer finalizing windows.
	for i := 1; i <= 10; i++ {
		publishCopyAt(t, s, float64(i)*2)
	}
	rep, err := s.FinishTrainLoad()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Store().Version(); got != 10 {
		t.Fatalf("store at version %d after 10 publishes, want 10", got)
	}
	return rep
}

// A wired run tracks served-version staleness, accounts for every served
// request exactly once, and stays bit-reproducible across runs and intra-op
// budgets — the train-while-serve determinism contract.
func TestWiredLoadStalenessDeterminism(t *testing.T) {
	rep := wiredRun(t, 2)
	if !rep.StaleTracked {
		t.Fatal("wired run did not track staleness")
	}
	var total int64
	for _, c := range rep.StaleHist {
		total += c
	}
	if total != int64(rep.Served) {
		t.Fatalf("staleness histogram counts %d requests, served %d", total, rep.Served)
	}
	if rep.StaleMax < 1 {
		t.Fatalf("StaleMax=%d; requests in flight across a publish must observe staleness", rep.StaleMax)
	}
	if rep.StaleMin != 0 {
		t.Fatalf("StaleMin=%d; requests served after the last publish are fresh", rep.StaleMin)
	}
	if rep.StaleMean < float64(rep.StaleMin) || rep.StaleMean > float64(rep.StaleMax) {
		t.Fatalf("StaleMean=%g outside [%d, %d]", rep.StaleMean, rep.StaleMin, rep.StaleMax)
	}
	if !strings.Contains(rep.String(), "staleness served min=") ||
		!strings.Contains(rep.String(), "staleness histogram:") {
		t.Fatalf("wired report does not render the staleness block:\n%s", rep)
	}

	if again := wiredRun(t, 2); rep.String() != again.String() || rep != again {
		t.Fatalf("wired replay diverged:\n%s\nvs\n%s", rep, again)
	}
	if wide := wiredRun(t, 5); rep.String() != wide.String() {
		t.Fatalf("wired run varies with intra-op budget:\n%s\nvs\n%s", rep, wide)
	}
}

// Unwired reports must not know staleness exists: no StaleTracked, no
// staleness lines — byte-identical surface to the pre-wiring harness.
func TestUnwiredReportHasNoStaleness(t *testing.T) {
	r := mustLoad(t, Config{MaxBatch: 4, Workers: 1, IntraOp: 1}, LoadConfig{
		Requests: 40, Concurrency: 4, Inputs: testInputs(4), PublishEvery: 3,
	})
	if r.StaleTracked || strings.Contains(r.String(), "staleness") {
		t.Fatalf("unwired report leaked staleness fields:\n%s", r)
	}
}

func TestWiredLoadAPIMisuse(t *testing.T) {
	cfg := Config{MaxBatch: 2, Workers: 1, IntraOp: 1}
	s := testServer(t, cfg)
	lc := LoadConfig{Requests: 10, Concurrency: 2, Inputs: testInputs(2)}

	if err := s.PublishAt(1, testWeights(t)); err == nil {
		t.Fatal("PublishAt outside BeginTrainLoad must fail")
	}
	if _, err := s.FinishTrainLoad(); err == nil {
		t.Fatal("FinishTrainLoad outside BeginTrainLoad must fail")
	}
	churn := lc
	churn.PublishEvery = 2
	if err := s.BeginTrainLoad(churn); err == nil {
		t.Fatal("BeginTrainLoad must reject the synthetic PublishEvery churn knob")
	}

	if err := s.BeginTrainLoad(lc); err != nil {
		t.Fatal(err)
	}
	publishCopyAt(t, s, 3)
	if err := s.PublishAt(1, testWeights(t)); err == nil {
		t.Fatal("PublishAt into the serving past must fail")
	}
	rep, err := s.FinishTrainLoad()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 10 {
		t.Fatalf("requests=%d, want 10", rep.Requests)
	}
	// The load has drained; late publishes still advance the version stream.
	v := s.Store().Version()
	publishCopyAt(t, s, 1e9)
	if got := s.Store().Version(); got != v+1 {
		t.Fatalf("post-drain publish: version %d, want %d", got, v+1)
	}
}
