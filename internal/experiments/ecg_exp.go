package experiments

import (
	"fmt"

	"heteroswitch/internal/core"
	"heteroswitch/internal/dataset"
	"heteroswitch/internal/ecg"
	"heteroswitch/internal/fl"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/models"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/tensor"
)

// ECGResult reproduces §6.6: heart-rate prediction divergence across sensor
// types for FedAvg vs HeteroSwitch-with-Random-Gaussian-Filter.
type ECGResult struct {
	// Deviation is mean |pred - truth| / truth over all (signal, sensor)
	// pairs — the paper's headline metric (31.8% → 18.3%).
	FedAvgDeviation float64
	HeteroDeviation float64
	// Spread is the mean cross-sensor prediction spread (max-min)/truth for
	// the SAME underlying signal, isolating sensor-induced divergence.
	FedAvgSpread float64
	HeteroSpread float64
}

// String renders the comparison.
func (r *ECGResult) String() string {
	t := &Table{
		Title:  "§6.6 — ECG heart-rate estimation across four sensor types",
		Header: []string{"method", "deviation vs truth", "cross-sensor spread"},
	}
	t.AddRow("FedAvg", fmt.Sprintf("%.1f%%", r.FedAvgDeviation*100), fmt.Sprintf("%.1f%%", r.FedAvgSpread*100))
	t.AddRow("HeteroSwitch+RGF", fmt.Sprintf("%.1f%%", r.HeteroDeviation*100), fmt.Sprintf("%.1f%%", r.HeteroSpread*100))
	return t.String()
}

// ECG runs the non-vision experiment.
func ECG(opts Options) (*ECGResult, error) {
	rng := frand.New(opts.Seed ^ 0xec6)
	perSensor := opts.scaled(200)
	train := map[int]*dataset.Dataset{}
	for s := ecg.SensorType(0); s < ecg.NumSensors; s++ {
		train[int(s)] = ecg.GenerateDataset(s, perSensor, rng.SplitNamed(s.String()))
	}

	builder := models.ECGConvBuilder(opts.Seed, ecg.WindowLen)
	cfg := fl.Config{
		Rounds:           opts.scaled(150),
		ClientsPerRound:  8,
		BatchSize:        16,
		LocalEpochs:      1,
		LR:               0.05,
		Seed:             opts.Seed,
		Workers:          opts.Workers,
		DisableStreaming: opts.DisableStreaming,
		IntraOp:          opts.IntraOp,
	}
	counts := EqualCounts(int(ecg.NumSensors), 12)

	hetero := core.New()
	hetero.Transform = core.RandomGaussianFilter(0.5, 2.5)

	evalRig := func(srv Trainer) (deviation, spread float64) {
		inf := nn.EvalView(srv.GlobalNet())
		windows, truths := ecg.PairedRecordings(opts.scaled(60), frand.New(opts.Seed^0xeca))
		var devSum, sprSum float64
		n := 0
		for i, row := range windows {
			var preds []float64
			for _, w := range row {
				x := tensor.New(1, w.Size())
				copy(x.Data(), w.Data())
				out := inf.Infer(x)
				preds = append(preds, ecg.DenormalizeHR(out.At(0, 0)))
			}
			truth := truths[i]
			minP, maxP := preds[0], preds[0]
			for _, p := range preds {
				devSum += absF(p-truth) / truth
				if p < minP {
					minP = p
				}
				if p > maxP {
					maxP = p
				}
				n++
			}
			sprSum += (maxP - minP) / truth
		}
		return devSum / float64(n), sprSum / float64(len(windows))
	}

	res := &ECGResult{}
	srv, err := RunFLWithLoss(opts, fl.FedAvg{}, train, counts, cfg, builder, nn.MSE{})
	if err != nil {
		return nil, err
	}
	res.FedAvgDeviation, res.FedAvgSpread = evalRig(srv)

	srv, err = RunFLWithLoss(opts, hetero, train, counts, cfg, builder, nn.MSE{})
	if err != nil {
		return nil, err
	}
	res.HeteroDeviation, res.HeteroSpread = evalRig(srv)
	return res, nil
}

func absF(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
