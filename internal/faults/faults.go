// Package faults provides seeded, composable client-failure models for the
// virtual-time federated simulation: crash (a dispatched job never
// completes), transient failure (a job fails a fixed number of attempts
// before succeeding), update corruption (NaN/Inf or norm-blowup injected
// into the returned delta), and availability churn (on/off duty cycles
// gating when a client may be dispatched).
//
// Like internal/simclock's latency models, every draw is a pure function of
// the model's configuration and integer keys — no internal state, no wall
// clock — so a chaos run is exactly as bit-reproducible as a fault-free one:
// the same seed replays the same crashes, the same corrupted updates, and
// the same duty cycles, in any consumption order. Models are parsed from CLI
// specs (ParseSpec) and consumed by fl.Server, fl.AsyncServer, and the cmd/
// binaries.
package faults

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"heteroswitch/internal/simclock"
)

// Mode identifies how a corrupted update is poisoned.
type Mode int

const (
	// None means the update is left intact.
	None Mode = iota
	// NaN overwrites part of the returned delta with NaN.
	NaN
	// Inf overwrites part of the returned delta with +Inf.
	Inf
	// Blowup scales the returned delta by a huge factor (finite values, but
	// a norm far beyond anything honest training produces).
	Blowup
	// Mix picks one of NaN/Inf/Blowup per corrupted job, hash-seeded.
	Mix
)

// String returns the mode's spec keyword.
func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case NaN:
		return "nan"
	case Inf:
		return "inf"
	case Blowup:
		return "blowup"
	case Mix:
		return "mix"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Forever is the FailCount result for a crashed job: no attempt ever
// completes, so the consumer's retry budget — not the fault model — decides
// when to give up.
const Forever = math.MaxInt

// Salts separating the model's independent coin streams from one seed.
const (
	crashSalt   = 0x6372_6173_68_5f5f_01
	flakySalt   = 0x666c_616b_79_5f5f_02
	corruptSalt = 0x636f_7272_75_5f5f_03
	modeSalt    = 0x6d6f_6465_5f_5f5f_04
	churnSalt   = 0x6368_7572_6e_5f5f_06
)

// Model is a composed per-client fault process. The zero value injects
// nothing; a nil *Model is the canonical "no faults" and is safe to query
// through the helper methods. Fields are exported so tests can construct
// targeted models directly; production configurations come from ParseSpec.
type Model struct {
	// Seed drives every coin in the model.
	Seed uint64

	// CrashP is the per-job probability that no attempt ever completes.
	CrashP float64

	// FlakyP is the per-job probability of transient failure: the job's
	// first FlakyRetries attempts fail, then it completes normally.
	FlakyP       float64
	FlakyRetries int

	// CorruptP is the per-job probability that the returned update is
	// poisoned with CorruptMode before upload.
	CorruptP    float64
	CorruptMode Mode

	// ChurnPeriod/ChurnOn describe the availability duty cycle: each client
	// is on-duty for ChurnOn×ChurnPeriod virtual-time units out of every
	// ChurnPeriod, at a hash-derived per-client phase. ChurnOn == 0 (or
	// ChurnPeriod == 0) disables churn; ChurnOn >= 1 is always-on.
	ChurnPeriod float64
	ChurnOn     float64
}

// Enabled reports whether the model injects anything at all.
func (m *Model) Enabled() bool {
	return m != nil && (m.CrashP > 0 || m.FlakyP > 0 || m.CorruptP > 0 || m.churning())
}

// NeedsVirtualTime reports whether the model includes processes that only
// make sense on a virtual-time event loop (crash and transient failure need
// timeouts and reissue; churn needs a clock to gate duty cycles against).
// The synchronous barrier server rejects such models; corruption-only models
// run on both engines.
func (m *Model) NeedsVirtualTime() bool {
	return m != nil && (m.CrashP > 0 || m.FlakyP > 0 || m.churning())
}

// NeedsTimeout reports whether the model can make a dispatched job fail to
// complete, which requires the consumer to arm per-job timeouts.
func (m *Model) NeedsTimeout() bool {
	return m != nil && (m.CrashP > 0 || m.FlakyP > 0)
}

func (m *Model) churning() bool {
	return m.ChurnPeriod > 0 && m.ChurnOn > 0 && m.ChurnOn < 1
}

// FailCount returns how many of the job's dispatch attempts fail before one
// completes: 0 for a healthy job, FlakyRetries for a transiently failing
// one, and Forever for a crash. job must be a stable per-job key (the async
// server uses the job's first dispatch sequence number) so retries of the
// same job replay the same draw.
func (m *Model) FailCount(client, job int) int {
	if m == nil {
		return 0
	}
	if m.CrashP > 0 && simclock.Hash01(m.Seed^crashSalt, client, job) < m.CrashP {
		return Forever
	}
	if m.FlakyP > 0 && simclock.Hash01(m.Seed^flakySalt, client, job) < m.FlakyP {
		return m.FlakyRetries
	}
	return 0
}

// Corruption returns the poisoning applied to the job's returned update, or
// None. A Mix model resolves to a concrete mode here, hash-picked per job.
func (m *Model) Corruption(client, job int) Mode {
	if m == nil || m.CorruptP == 0 ||
		simclock.Hash01(m.Seed^corruptSalt, client, job) >= m.CorruptP {
		return None
	}
	mode := m.CorruptMode
	if mode == Mix {
		switch d := simclock.Hash01(m.Seed^modeSalt, client, job); {
		case d < 1.0/3:
			mode = NaN
		case d < 2.0/3:
			mode = Inf
		default:
			mode = Blowup
		}
	}
	return mode
}

// phase returns the client's duty-cycle offset in [0, ChurnPeriod).
func (m *Model) phase(client int) float64 {
	return simclock.Hash01(m.Seed^churnSalt, client, 0) * m.ChurnPeriod
}

// Available reports whether the client is on-duty at virtual time t.
func (m *Model) Available(client int, t float64) bool {
	if m == nil || !m.churning() {
		return true
	}
	pos := math.Mod(t+m.phase(client), m.ChurnPeriod)
	if pos < 0 {
		pos += m.ChurnPeriod
	}
	return pos < m.ChurnOn*m.ChurnPeriod
}

// NextOn returns the earliest virtual time >= t at which the client is
// on-duty: t itself when already available, otherwise the start of the
// client's next duty window.
func (m *Model) NextOn(client int, t float64) float64 {
	if m.Available(client, t) {
		return t
	}
	pos := math.Mod(t+m.phase(client), m.ChurnPeriod)
	if pos < 0 {
		pos += m.ChurnPeriod
	}
	next := t + (m.ChurnPeriod - pos)
	// Float rounding can land next an ulp short of the window boundary; step
	// deterministically until Available agrees (a handful of ulps at most,
	// far below any event-time resolution).
	for !m.Available(client, next) {
		next = math.Nextafter(next, math.Inf(1))
	}
	return next
}

// String renders the model as a canonical ParseSpec spec (fixed clause
// order; the seed is external, as in ParseSpec). A nil or empty model
// renders as "none".
func (m *Model) String() string {
	if !m.Enabled() {
		return "none"
	}
	var parts []string
	if m.CrashP > 0 {
		parts = append(parts, fmt.Sprintf("crash:%g", m.CrashP))
	}
	if m.FlakyP > 0 {
		parts = append(parts, fmt.Sprintf("flaky:%g,%d", m.FlakyP, m.FlakyRetries))
	}
	if m.CorruptP > 0 {
		parts = append(parts, fmt.Sprintf("corrupt:%g,%s", m.CorruptP, m.CorruptMode))
	}
	if m.churning() {
		parts = append(parts, fmt.Sprintf("churn:%g,%g", m.ChurnPeriod, m.ChurnOn))
	}
	return strings.Join(parts, "+")
}

// ParseSpec builds a Model from a CLI spec, seeding every coin from seed.
// A spec is one or more clauses joined by "+":
//
//	none (or "")            no faults (returns a nil model)
//	crash:P                 each job crashes (never completes) w.p. P
//	flaky:P,R               each job w.p. P fails its first R attempts, then
//	                        completes (R >= 1 retries)
//	corrupt:P,MODE          each completed job's update is poisoned w.p. P;
//	                        MODE is nan, inf, blowup, or mix
//	churn:PERIOD,ONFRAC     availability duty cycle: on for ONFRAC×PERIOD
//	                        out of every PERIOD virtual-time units, at a
//	                        per-client hash-derived phase (0 < ONFRAC < 1)
//
// Each clause may appear at most once. Example:
//
//	crash:0.1+flaky:0.2,2+corrupt:0.05,mix+churn:40,0.6
func ParseSpec(spec string, seed uint64) (*Model, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	m := &Model{Seed: seed}
	seen := map[string]bool{}
	for _, clause := range strings.Split(spec, "+") {
		name, argStr, _ := strings.Cut(strings.TrimSpace(clause), ":")
		if seen[name] {
			return nil, fmt.Errorf("faults: spec %q repeats clause %q", spec, name)
		}
		seen[name] = true
		var rawArgs []string
		if argStr != "" {
			rawArgs = strings.Split(argStr, ",")
			for i := range rawArgs {
				rawArgs[i] = strings.TrimSpace(rawArgs[i])
			}
		}
		bad := func(want string) error {
			return fmt.Errorf("faults: spec %q: clause %q wants %s", spec, clause, want)
		}
		// ParseFloat accepts "nan" and "inf" as numbers, so probabilities must
		// be checked with guards NaN cannot slip through, and corrupt's MODE
		// word is never parsed as a float.
		num := func(s string) (float64, error) {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return 0, fmt.Errorf("faults: spec %q: %v", spec, err)
			}
			return v, nil
		}
		prob := func(s string) (float64, error) {
			v, err := num(s)
			if err != nil {
				return 0, err
			}
			if !(v > 0 && v <= 1) {
				return 0, bad("a probability in (0,1]")
			}
			return v, nil
		}
		switch name {
		case "crash":
			if len(rawArgs) != 1 {
				return nil, bad("crash:P with P in (0,1]")
			}
			p, err := prob(rawArgs[0])
			if err != nil {
				return nil, err
			}
			m.CrashP = p
		case "flaky":
			if len(rawArgs) != 2 {
				return nil, bad("flaky:P,R with P in (0,1] and integer R >= 1")
			}
			p, err := prob(rawArgs[0])
			if err != nil {
				return nil, err
			}
			r, err := num(rawArgs[1])
			if err != nil {
				return nil, err
			}
			if !(r >= 1 && r == math.Trunc(r)) {
				return nil, bad("flaky:P,R with P in (0,1] and integer R >= 1")
			}
			m.FlakyP = p
			m.FlakyRetries = int(r)
		case "corrupt":
			if len(rawArgs) != 2 {
				return nil, bad("corrupt:P,MODE with P in (0,1] and MODE nan|inf|blowup|mix")
			}
			p, err := prob(rawArgs[0])
			if err != nil {
				return nil, err
			}
			mode, err := parseMode(rawArgs[1])
			if err != nil {
				return nil, fmt.Errorf("faults: spec %q: %v", spec, err)
			}
			m.CorruptP = p
			m.CorruptMode = mode
		case "churn":
			if len(rawArgs) != 2 {
				return nil, bad("churn:PERIOD,ONFRAC with PERIOD > 0 and ONFRAC in (0,1)")
			}
			period, err := num(rawArgs[0])
			if err != nil {
				return nil, err
			}
			on, err := num(rawArgs[1])
			if err != nil {
				return nil, err
			}
			if !(period > 0 && !math.IsInf(period, 0)) || !(on > 0 && on < 1) {
				return nil, bad("churn:PERIOD,ONFRAC with PERIOD > 0 and ONFRAC in (0,1)")
			}
			m.ChurnPeriod = period
			m.ChurnOn = on
		default:
			return nil, fmt.Errorf("faults: unknown clause %q in spec %q (have crash, flaky, corrupt, churn)", name, spec)
		}
	}
	return m, nil
}

// parseMode maps a spec keyword to a corruption Mode.
func parseMode(s string) (Mode, error) {
	switch s {
	case "nan":
		return NaN, nil
	case "inf":
		return Inf, nil
	case "blowup":
		return Blowup, nil
	case "mix":
		return Mix, nil
	}
	return None, fmt.Errorf("unknown corruption mode %q (have nan, inf, blowup, mix)", s)
}
