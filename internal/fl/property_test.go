package fl

import (
	"testing"
	"testing/quick"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/tensor"
)

// Property: FedAvg aggregation of identical client weights returns those
// weights unchanged (idempotence), for any sample counts.
func TestFedAvgIdempotentProperty(t *testing.T) {
	f := func(seed uint16, n1Raw, n2Raw uint8) bool {
		r := frand.New(uint64(seed))
		w := nn.Weights{Params: []*tensor.Tensor{tensor.Randn(r, 1, 5)}}
		n1 := int(n1Raw)%20 + 1
		n2 := int(n2Raw)%20 + 1
		results := []ClientResult{
			{NumSamples: n1, Weights: w.Clone()},
			{NumSamples: n2, Weights: w.Clone()},
		}
		out := FedAvg{}.Aggregate(w, results, Default())
		return out.Params[0].AllClose(w.Params[0], 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: every coordinate of the FedAvg aggregate lies within the
// coordinate-wise [min, max] envelope of the client weights (a convex
// combination), for arbitrary positive sample counts.
func TestFedAvgConvexityProperty(t *testing.T) {
	f := func(seed uint16, nRaw [3]uint8) bool {
		r := frand.New(uint64(seed) + 1)
		var results []ClientResult
		tensors := make([]*tensor.Tensor, 3)
		for i := 0; i < 3; i++ {
			tensors[i] = tensor.Randn(r, 1, 7)
			results = append(results, ClientResult{
				NumSamples: int(nRaw[i])%10 + 1,
				Weights:    nn.Weights{Params: []*tensor.Tensor{tensors[i]}},
			})
		}
		out := FedAvg{}.Aggregate(results[0].Weights, results, Default())
		for j := 0; j < 7; j++ {
			lo, hi := tensors[0].At(j), tensors[0].At(j)
			for i := 1; i < 3; i++ {
				v := tensors[i].At(j)
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			v := out.Params[0].At(j)
			if v < lo-1e-5 || v > hi+1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: DeviceCounts always sums to n and never produces negatives,
// for arbitrary positive share vectors.
func TestDeviceCountsProperty(t *testing.T) {
	f := func(seed uint16, nRaw uint8) bool {
		r := frand.New(uint64(seed) + 7)
		k := r.Intn(8) + 1
		shares := make([]float64, k)
		for i := range shares {
			shares[i] = r.Float64() + 0.01
		}
		n := int(nRaw)%200 + 1
		counts := DeviceCounts(shares, n)
		total := 0
		for _, c := range counts {
			if c < 0 {
				return false
			}
			total += c
		}
		return total == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: TrainLocal performs the expected number of optimizer steps:
// epochs * ceil(n/B).
func TestTrainLocalStepCountProperty(t *testing.T) {
	f := func(nRaw, bRaw, eRaw uint8) bool {
		n := int(nRaw)%20 + 1
		b := int(bRaw)%8 + 1
		e := int(eRaw)%3 + 1
		ds := fixtureData(n, 1)[0]
		ds.Samples = ds.Samples[:n]
		net := fixtureBuilder(3)()
		cfg := Config{Rounds: 1, ClientsPerRound: 1, BatchSize: b, LocalEpochs: e, LR: 0.01, Workers: 1}
		steps := 0
		TrainLocal(net, ds, cfg, nn.SoftmaxCrossEntropy{}, frand.New(1),
			func(ps []*nn.Param) { steps++ }, nil)
		want := e * ((n + b - 1) / b)
		return steps == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
