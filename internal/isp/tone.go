package isp

import "math"

// ToneAlg selects the tone transformation (Table 3 "Tone transformation").
type ToneAlg int

// Tone variants. sRGB gamma encoding is the baseline; Option 1 omits the
// stage (leaving linear data); Option 2 adds tone equalization on top of the
// gamma encode.
const (
	ToneSRGBGamma ToneAlg = iota
	ToneNone
	ToneSRGBGammaEq
)

// String implements fmt.Stringer.
func (a ToneAlg) String() string {
	switch a {
	case ToneSRGBGamma:
		return "srgb-gamma"
	case ToneNone:
		return "none"
	case ToneSRGBGammaEq:
		return "srgb-gamma+equalize"
	}
	return "tone?"
}

// SRGBEncode applies the standard piecewise sRGB opto-electronic transfer
// function to a linear value in [0,1].
func SRGBEncode(v float64) float64 {
	if v <= 0.0031308 {
		return 12.92 * v
	}
	return 1.055*math.Pow(v, 1/2.4) - 0.055
}

// SRGBDecode inverts SRGBEncode.
func SRGBDecode(v float64) float64 {
	if v <= 0.04045 {
		return v / 12.92
	}
	return math.Pow((v+0.055)/1.055, 2.4)
}

// ToneTransform applies the selected tone curve, returning a new image.
func ToneTransform(im *Image, alg ToneAlg) *Image {
	switch alg {
	case ToneNone:
		return im.Clone()
	case ToneSRGBGammaEq:
		g := applySRGB(im)
		return equalizeTone(g, 0.5)
	default:
		return applySRGB(im)
	}
}

func applySRGB(im *Image) *Image {
	out := im.Clone()
	for i, v := range out.Pix {
		out.Pix[i] = SRGBEncode(clamp01(v))
	}
	return out
}

// equalizeTone blends each pixel's luma toward its histogram-equalized value
// with strength `amount`, preserving chroma ratios — a simple global tone
// equalization as bundled with camera "auto contrast" modes.
func equalizeTone(im *Image, amount float64) *Image {
	const bins = 256
	n := im.W * im.H
	var hist [bins]int
	for i := 0; i < n; i++ {
		b := int(clamp01(im.Luma(i)) * (bins - 1))
		hist[b]++
	}
	var cdf [bins]float64
	acc := 0
	for b := 0; b < bins; b++ {
		acc += hist[b]
		cdf[b] = float64(acc) / float64(n)
	}
	out := im.Clone()
	for i := 0; i < n; i++ {
		l := clamp01(im.Luma(i))
		eq := cdf[int(l*(bins-1))]
		target := l + (eq-l)*amount
		if l > 1e-9 {
			scale := target / l
			for c := 0; c < 3; c++ {
				out.Pix[i*3+c] = clamp01(im.Pix[i*3+c] * scale)
			}
		} else {
			for c := 0; c < 3; c++ {
				out.Pix[i*3+c] = target
			}
		}
	}
	return out
}

// ApplyGamma raises every channel value to the given exponent (used by the
// device tone presets and HeteroSwitch's random gamma transform, eq. 3).
func ApplyGamma(im *Image, gamma float64) *Image {
	out := im.Clone()
	for i, v := range out.Pix {
		out.Pix[i] = math.Pow(clamp01(v), gamma)
	}
	return out
}
