package nn

import (
	"fmt"
	"math"

	"heteroswitch/internal/tensor"
)

// BatchNorm2D normalizes each channel of an NCHW tensor over the batch and
// spatial dimensions, with a learned affine transform. In training mode it
// uses batch statistics and updates exponential running statistics; in eval
// mode it uses the running statistics.
//
// The running statistics are exposed through States() so federated
// aggregation can average them alongside the trained parameters — BN
// statistics are exactly where system-induced data heterogeneity shows up
// as cross-client drift.
type BatchNorm2D struct {
	arenaScratch
	C        int
	Eps      float64
	Momentum float64
	Gamma    *Param
	Beta     *Param
	RunMean  *tensor.Tensor
	RunVar   *tensor.Tensor

	// forward cache
	xhat   *tensor.Tensor
	invStd []float32
	batch  int
	hw     int
}

// NewBatchNorm2D builds a BatchNorm over c channels with γ=1, β=0,
// running mean 0 and running variance 1.
func NewBatchNorm2D(c int) *BatchNorm2D {
	name := fmt.Sprintf("bn%d", c)
	return &BatchNorm2D{
		C: c, Eps: 1e-5, Momentum: 0.1,
		Gamma:   &Param{Name: name + ".gamma", W: tensor.Ones(c), Grad: tensor.New(c), NoDecay: true},
		Beta:    &Param{Name: name + ".beta", W: tensor.New(c), Grad: tensor.New(c), NoDecay: true},
		RunMean: tensor.New(c),
		RunVar:  tensor.Ones(c),
	}
}

// Forward implements Layer.
func (l *BatchNorm2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.NDim() != 4 || x.Dim(1) != l.C {
		panic(fmt.Sprintf("nn: BatchNorm2D input %v, want [N %d H W]", x.Shape(), l.C))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	hw := h * w
	m := n * hw
	l.batch, l.hw = n, hw
	out := l.allocUninit(n, l.C, h, w)
	xd, od := x.Data(), out.Data()
	gd, bd := l.Gamma.W.Data(), l.Beta.W.Data()

	if cap(l.invStd) < l.C {
		l.invStd = make([]float32, l.C)
	}
	l.invStd = l.invStd[:l.C]

	if train {
		l.xhat = l.allocUninit(n, l.C, h, w)
		xh := l.xhat.Data()
		rm, rv := l.RunMean.Data(), l.RunVar.Data()
		for c := 0; c < l.C; c++ {
			var sum, sumsq float64
			for i := 0; i < n; i++ {
				base := (i*l.C + c) * hw
				for j := 0; j < hw; j++ {
					v := float64(xd[base+j])
					sum += v
					sumsq += v * v
				}
			}
			mean := sum / float64(m)
			variance := sumsq/float64(m) - mean*mean
			if variance < 0 {
				variance = 0
			}
			inv := 1 / math.Sqrt(variance+l.Eps)
			l.invStd[c] = float32(inv)
			rm[c] = float32((1-l.Momentum)*float64(rm[c]) + l.Momentum*mean)
			rv[c] = float32((1-l.Momentum)*float64(rv[c]) + l.Momentum*variance)
			g, b := gd[c], bd[c]
			mf, invf := float32(mean), float32(inv)
			for i := 0; i < n; i++ {
				base := (i*l.C + c) * hw
				for j := 0; j < hw; j++ {
					xv := (xd[base+j] - mf) * invf
					xh[base+j] = xv
					od[base+j] = g*xv + b
				}
			}
		}
		return out
	}

	// Eval mode: use running statistics.
	rm, rv := l.RunMean.Data(), l.RunVar.Data()
	for c := 0; c < l.C; c++ {
		inv := float32(1 / math.Sqrt(float64(rv[c])+l.Eps))
		g, b, mf := gd[c], bd[c], rm[c]
		for i := 0; i < n; i++ {
			base := (i*l.C + c) * hw
			for j := 0; j < hw; j++ {
				od[base+j] = g*(xd[base+j]-mf)*inv + b
			}
		}
	}
	return out
}

// Backward implements Layer using the standard batch-norm gradient.
func (l *BatchNorm2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, hw := l.batch, l.hw
	m := float32(n * hw)
	dx := l.allocUninit(grad.Shape()...)
	gd := grad.Data()
	xh := l.xhat.Data()
	dxd := dx.Data()
	gammaD := l.Gamma.W.Data()
	dgamma, dbeta := l.Gamma.Grad.Data(), l.Beta.Grad.Data()

	for c := 0; c < l.C; c++ {
		var sumDy, sumDyXhat float64
		for i := 0; i < n; i++ {
			base := (i*l.C + c) * hw
			for j := 0; j < hw; j++ {
				dy := float64(gd[base+j])
				sumDy += dy
				sumDyXhat += dy * float64(xh[base+j])
			}
		}
		dgamma[c] += float32(sumDyXhat)
		dbeta[c] += float32(sumDy)
		g := gammaD[c]
		inv := l.invStd[c]
		sDy, sDyXh := float32(sumDy), float32(sumDyXhat)
		for i := 0; i < n; i++ {
			base := (i*l.C + c) * hw
			for j := 0; j < hw; j++ {
				dxhat := gd[base+j] * g
				dxd[base+j] = inv / m * (m*dxhat - sDy*g - xh[base+j]*sDyXh*g)
			}
		}
	}
	return dx
}

// Params implements Layer.
func (l *BatchNorm2D) Params() []*Param { return []*Param{l.Gamma, l.Beta} }

// States returns the running mean and variance.
func (l *BatchNorm2D) States() []*tensor.Tensor { return []*tensor.Tensor{l.RunMean, l.RunVar} }

// Name implements Layer.
func (l *BatchNorm2D) Name() string { return fmt.Sprintf("BatchNorm2D(%d)", l.C) }
