package simclock

import (
	"math"
	"testing"

	"heteroswitch/internal/frand"
)

func drain(c *Clock) []Event {
	var out []Event
	for {
		ev, ok := c.Next()
		if !ok {
			return out
		}
		out = append(out, ev)
	}
}

func TestClockOrdersByTime(t *testing.T) {
	var c Clock
	times := []float64{3.5, 0.25, 7, 1, 0.5, 2}
	for i, at := range times {
		c.Schedule(at, i)
	}
	if c.Len() != len(times) {
		t.Fatalf("Len = %d, want %d", c.Len(), len(times))
	}
	got := drain(&c)
	for i := 1; i < len(got); i++ {
		if got[i].At < got[i-1].At {
			t.Fatalf("events out of order: %v after %v", got[i], got[i-1])
		}
	}
	if c.Now() != 7 {
		t.Fatalf("Now = %v after draining, want 7", c.Now())
	}
}

// Ties at one instant must pop in ascending ID order regardless of the
// insertion order — the determinism contract the async server leans on.
func TestClockTieBreaksByID(t *testing.T) {
	r := frand.New(99)
	for trial := 0; trial < 50; trial++ {
		var c Clock
		ids := r.Perm(17)
		for _, id := range ids {
			c.Schedule(1.5, id)
		}
		c.Schedule(0.5, 100) // earlier event mixed in
		got := drain(&c)
		if got[0].ID != 100 {
			t.Fatalf("earlier event popped late: %v", got[0])
		}
		for i := 1; i < len(got); i++ {
			if got[i].ID != i-1 {
				t.Fatalf("tie order broken: got ID %d at position %d (insertion %v)", got[i].ID, i, ids)
			}
		}
	}
}

func TestClockNextAdvancesNowAndEmptyNext(t *testing.T) {
	var c Clock
	if _, ok := c.Next(); ok {
		t.Fatal("empty clock returned an event")
	}
	c.Schedule(2, 1)
	ev, ok := c.Next()
	if !ok || ev.At != 2 || c.Now() != 2 {
		t.Fatalf("ev %v ok %v now %v", ev, ok, c.Now())
	}
	// Scheduling at exactly Now is legal (zero-latency completions).
	c.Schedule(2, 2)
	if ev, _ := c.Next(); ev.ID != 2 {
		t.Fatalf("same-instant event lost: %v", ev)
	}
}

func TestClockPeekDoesNotAdvance(t *testing.T) {
	var c Clock
	if _, ok := c.Peek(); ok {
		t.Fatal("empty clock peeked an event")
	}
	c.Schedule(3, 1)
	c.Schedule(1, 2)
	ev, ok := c.Peek()
	if !ok || ev.At != 1 || ev.ID != 2 {
		t.Fatalf("Peek = %v, %v; want earliest event (1, id 2)", ev, ok)
	}
	if c.Now() != 0 || c.Len() != 2 {
		t.Fatalf("Peek advanced the clock: now=%v len=%d", c.Now(), c.Len())
	}
	// Peek is idempotent and agrees with the subsequent Next.
	if again, _ := c.Peek(); again != ev {
		t.Fatalf("second Peek %v != first %v", again, ev)
	}
	if popped, _ := c.Next(); popped != ev {
		t.Fatalf("Next %v != Peek %v", popped, ev)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule into the past did not panic")
		}
	}()
	var c Clock
	c.Schedule(5, 1)
	c.Next()
	c.Schedule(1, 2)
}

func TestClockReset(t *testing.T) {
	var c Clock
	c.Schedule(3, 1)
	c.Next()
	c.Schedule(9, 2)
	c.Reset()
	if c.Now() != 0 || c.Len() != 0 {
		t.Fatalf("Reset left now=%v len=%d", c.Now(), c.Len())
	}
	c.Schedule(1, 3) // 1 < 9 must be legal again after Reset
}

// The warm event loop — schedule a burst, drain it — must not allocate:
// the async server runs this millions of times per simulation.
func TestClockWarmLoopAllocs(t *testing.T) {
	var c Clock
	run := func() {
		for i := 0; i < 64; i++ {
			c.Schedule(c.Now()+float64(i%7), i)
		}
		for {
			if _, ok := c.Next(); !ok {
				break
			}
		}
	}
	run() // warm the heap's storage
	if allocs := testing.AllocsPerRun(100, run); allocs != 0 {
		t.Fatalf("warm schedule/drain loop allocates %v times per run", allocs)
	}
}

// Seeded models must reproduce identical schedules across instances and be
// insensitive to sampling order.
func TestLatencyModelsReproducible(t *testing.T) {
	models := []struct {
		name string
		mk   func(seed uint64) LatencyModel
	}{
		{"const", func(uint64) LatencyModel { return Constant{D: 1.5} }},
		{"uniform", func(s uint64) LatencyModel { return Uniform{Lo: 0.5, Hi: 2, Seed: s} }},
		{"straggler", func(s uint64) LatencyModel {
			return StragglerTail{Lo: 0.5, Hi: 2, TailProb: 0.3, TailFactor: 8, Seed: s}
		}},
	}
	for _, m := range models {
		a, b := m.mk(7), m.mk(7)
		other := m.mk(8)
		same, differ := true, false
		// b samples in reverse order: draws must depend only on (id, step).
		var got [20][20]float64
		for id := 0; id < 20; id++ {
			for step := 0; step < 20; step++ {
				got[id][step] = a.Sample(id, step)
			}
		}
		for id := 19; id >= 0; id-- {
			for step := 19; step >= 0; step-- {
				if b.Sample(id, step) != got[id][step] {
					same = false
				}
				if other.Sample(id, step) != got[id][step] {
					differ = true
				}
			}
		}
		if !same {
			t.Errorf("%s: same seed produced different schedules", m.name)
		}
		if m.name != "const" && !differ {
			t.Errorf("%s: different seeds produced identical schedules", m.name)
		}
	}
}

func TestUniformBoundsAndSpread(t *testing.T) {
	m := Uniform{Lo: 0.5, Hi: 2, Seed: 3}
	seen := map[float64]bool{}
	for id := 0; id < 40; id++ {
		v := m.Sample(id, 5)
		if v < 0.5 || v >= 2 {
			t.Fatalf("sample %v outside [0.5, 2)", v)
		}
		seen[v] = true
	}
	if len(seen) < 30 {
		t.Fatalf("uniform draws collapsed: %d distinct of 40", len(seen))
	}
}

func TestStragglerTailPersistentAndBounded(t *testing.T) {
	m := StragglerTail{Lo: 1, Hi: 2, TailProb: 0.4, TailFactor: 10, Seed: 11}
	stragglers := 0
	for id := 0; id < 200; id++ {
		isS := m.IsStraggler(id)
		if isS {
			stragglers++
		}
		for step := 0; step < 10; step++ {
			v := m.Sample(id, step)
			if isS && (v < 10 || v >= 20) {
				t.Fatalf("straggler %d drew %v, want [10, 20)", id, v)
			}
			if !isS && (v < 1 || v >= 2) {
				t.Fatalf("fast client %d drew %v, want [1, 2)", id, v)
			}
		}
	}
	// Deterministic marking should land near TailProb for 200 clients.
	if frac := float64(stragglers) / 200; math.Abs(frac-0.4) > 0.15 {
		t.Fatalf("straggler fraction %v far from 0.4", frac)
	}
}

func TestParseModel(t *testing.T) {
	good := map[string]any{
		"":                      Constant{},
		"zero":                  Constant{},
		"const:2.5":             Constant{D: 2.5},
		"uniform:0.5,2":         Uniform{Lo: 0.5, Hi: 2, Seed: 42},
		"straggler:0.5,2,0.1,8": StragglerTail{Lo: 0.5, Hi: 2, TailProb: 0.1, TailFactor: 8, Seed: 42},
	}
	for spec, want := range good {
		got, err := ParseModel(spec, 42)
		if err != nil {
			t.Errorf("ParseModel(%q): %v", spec, err)
			continue
		}
		if got != want {
			t.Errorf("ParseModel(%q) = %#v, want %#v", spec, got, want)
		}
	}
	for _, spec := range []string{"nope", "const:", "const:-1", "uniform:2,1", "uniform:1",
		"straggler:1,2,3", "straggler:1,2,2,8", "straggler:1,2,0.1,0.5", "const:abc", "zero:1"} {
		if _, err := ParseModel(spec, 1); err == nil {
			t.Errorf("ParseModel(%q) accepted a bad spec", spec)
		}
	}
}
