package tensor

import "fmt"

// matmul kernel block size, chosen to keep a block of B rows of both
// operands inside L1 cache for float32 data.
const mmBlock = 64

// MatMul returns a @ b for 2-D tensors a[m,k] and b[k,n] as a new [m,n]
// tensor. It uses a cache-blocked i-k-j loop ordering, which on row-major
// data streams both b and the output and vectorizes well.
func MatMul(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul needs 2-D tensors, have %v @ %v", a.shape, b.shape))
	}
	m, k := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d != %d", k, k2))
	}
	out := New(m, n)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a @ b, overwriting out. out must be [m,n].
func MatMulInto(out, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto out shape %v, want [%d %d]", out.shape, m, n))
	}
	out.Zero()
	matmulAcc(out.data, a.data, b.data, m, k, n)
}

// MatMulAccInto computes out += a @ b without zeroing out first.
func MatMulAccInto(out, a, b *Tensor) {
	m, k := a.shape[0], a.shape[1]
	n := b.shape[1]
	if b.shape[0] != k || out.shape[0] != m || out.shape[1] != n {
		panic("tensor: MatMulAccInto shape mismatch")
	}
	matmulAcc(out.data, a.data, b.data, m, k, n)
}

// matmulAcc is the blocked kernel: out[m,n] += a[m,k] @ b[k,n], all
// row-major flat slices.
func matmulAcc(out, a, b []float32, m, k, n int) {
	for i0 := 0; i0 < m; i0 += mmBlock {
		iMax := min(i0+mmBlock, m)
		for k0 := 0; k0 < k; k0 += mmBlock {
			kMax := min(k0+mmBlock, k)
			for i := i0; i < iMax; i++ {
				arow := a[i*k : i*k+k]
				orow := out[i*n : i*n+n]
				for kk := k0; kk < kMax; kk++ {
					av := arow[kk]
					if av == 0 {
						continue
					}
					brow := b[kk*n : kk*n+n]
					for j, bv := range brow {
						orow[j] += av * bv
					}
				}
			}
		}
	}
}

// MatMulTransB returns a @ bᵀ for a[m,k] and b[n,k] as [m,n]. This avoids
// materializing the transpose in backward passes.
func MatMulTransB(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMulTransB needs 2-D tensors")
	}
	m, k := a.shape[0], a.shape[1]
	n, k2 := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransB inner dims %d != %d", k, k2))
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		arow := a.data[i*k : i*k+k]
		orow := out.data[i*n : i*n+n]
		for j := 0; j < n; j++ {
			brow := b.data[j*k : j*k+k]
			var s float32
			for x := range arow {
				s += arow[x] * brow[x]
			}
			orow[j] = s
		}
	}
	return out
}

// MatMulTransA returns aᵀ @ b for a[k,m] and b[k,n] as [m,n], used for
// weight-gradient computation (xᵀ @ dy).
func MatMulTransA(a, b *Tensor) *Tensor {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMulTransA needs 2-D tensors")
	}
	out := New(a.shape[1], b.shape[1])
	MatMulTransAAccInto(out, a, b)
	return out
}

// MatMulTransAAccInto computes out += aᵀ @ b for a[k,m] and b[k,n] into the
// existing [m,n] tensor — the allocation-free weight-gradient accumulation
// (Grad += xᵀ @ dy) on the per-batch training hot path.
func MatMulTransAAccInto(out, a, b *Tensor) {
	if len(a.shape) != 2 || len(b.shape) != 2 {
		panic("tensor: MatMulTransAAccInto needs 2-D tensors")
	}
	k, m := a.shape[0], a.shape[1]
	k2, n := b.shape[0], b.shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMulTransAAccInto inner dims %d != %d", k, k2))
	}
	if out.shape[0] != m || out.shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTransAAccInto out shape %v, want [%d %d]", out.shape, m, n))
	}
	// out[i,j] += Σ_x a[x,i] b[x,j]: accumulate outer products row by row.
	for x := 0; x < k; x++ {
		arow := a.data[x*m : x*m+m]
		brow := b.data[x*n : x*n+n]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.data[i*n : i*n+n]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
