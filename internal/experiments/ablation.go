package experiments

import (
	"fmt"

	"heteroswitch/internal/core"
	"heteroswitch/internal/dataset"
	"heteroswitch/internal/fl"
)

// AblationResult is a generic labelled score list used by the design-choice
// ablations that go beyond the paper's tables.
type AblationResult struct {
	Title  string
	Scores []MethodScore
}

// String renders the ablation.
func (r *AblationResult) String() string {
	t := &Table{
		Title:  r.Title,
		Header: []string{"variant", "worst-case acc", "variance (pp²)", "avg acc"},
	}
	for _, s := range r.Scores {
		t.AddRow(s.Method, pct(s.WorstAcc), fmt.Sprintf("%.2f", s.Variance), pct(s.AvgAcc))
	}
	return t.String()
}

// ablationRig builds the shared workload and returns an evaluator.
func ablationRig(opts Options) (func(name string, strat fl.Strategy) (MethodScore, error), error) {
	dd, err := BuildDeviceData(opts, opts.scaled(10), opts.scaled(4), dataset.ModeProcessed)
	if err != nil {
		return nil, err
	}
	cfg := fl.Config{
		Rounds:           opts.scaled(80),
		ClientsPerRound:  12,
		BatchSize:        10,
		LocalEpochs:      1,
		LR:               0.1,
		Seed:             opts.Seed,
		Workers:          opts.Workers,
		DisableStreaming: opts.DisableStreaming,
		IntraOp:          opts.IntraOp,
	}
	counts := MarketShareCounts(dd, opts.scaled(60))
	builder := SimpleCNNBuilder(opts.Seed, dd.Classes)
	return func(name string, strat fl.Strategy) (MethodScore, error) {
		srv, err := RunFL(opts, strat, dd, counts, cfg, builder)
		if err != nil {
			return MethodScore{}, err
		}
		score := scoreFromAccuracies(name, PerDeviceAccuracies(srv.GlobalNet(), dd, 16))
		return score, nil
	}, nil
}

// AblationSwitches isolates the contribution of Switch 1 and Switch 2: no
// mechanism (FedAvg), transform always-on, transform+SWAD always-on, and the
// full switched algorithm.
func AblationSwitches(opts Options) (*AblationResult, error) {
	run, err := ablationRig(opts)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Title: "Ablation — switching mechanisms"}
	variants := []struct {
		name  string
		strat fl.Strategy
	}{
		{"no-switches (FedAvg)", fl.FedAvg{}},
		{"always-transform", core.NewWithMode(core.ModeTransformOnly)},
		{"always-transform+SWAD", core.NewWithMode(core.ModeTransformSWAD)},
		{"switched (HeteroSwitch)", core.New()},
	}
	for _, v := range variants {
		s, err := run(v.name, v.strat)
		if err != nil {
			return nil, err
		}
		res.Scores = append(res.Scores, s)
	}
	return res, nil
}

// AblationEMAAlpha sweeps eq. 1's smoothing factor (the paper fixes 0.9).
func AblationEMAAlpha(opts Options) (*AblationResult, error) {
	run, err := ablationRig(opts)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Title: "Ablation — EMA smoothing factor α"}
	for _, alpha := range []float64{0.5, 0.7, 0.9, 0.99} {
		hs := core.New()
		hs.Alpha = alpha
		s, err := run(fmt.Sprintf("alpha=%.2f", alpha), hs)
		if err != nil {
			return nil, err
		}
		res.Scores = append(res.Scores, s)
	}
	return res, nil
}

// AblationDegrees sweeps the transformation degrees of eqs. 2-3 over the
// appendix's search grid corners.
func AblationDegrees(opts Options) (*AblationResult, error) {
	run, err := ablationRig(opts)
	if err != nil {
		return nil, err
	}
	res := &AblationResult{Title: "Ablation — random WB / gamma degrees"}
	grid := []struct{ wb, gamma float64 }{
		{0.001, 0.1},
		{0.001, 0.9}, // the paper's tuned point
		{0.1, 0.9},
		{0.5, 0.5},
		{0.9, 0.9},
	}
	for _, g := range grid {
		hs := core.New()
		hs.Transform = core.RandomWBGamma(g.wb, g.gamma)
		s, err := run(fmt.Sprintf("wb=%.3f gamma=%.1f", g.wb, g.gamma), hs)
		if err != nil {
			return nil, err
		}
		res.Scores = append(res.Scores, s)
	}
	return res, nil
}
