// Package frand provides a small, fast, deterministic, splittable
// pseudo-random number generator used throughout the repository.
//
// All randomness in the simulator — sensor noise, scene generation, client
// sampling, weight initialization, data shuffling — flows through frand so
// that every experiment is exactly reproducible from a single seed. The
// generator is xoshiro256** seeded via SplitMix64, following the
// recommendations of Blackman & Vigna. It is NOT cryptographically secure.
package frand

import "math"

// RNG is a deterministic pseudo-random number generator. The zero value is
// not usable; construct with New. RNG is not safe for concurrent use: give
// each goroutine its own RNG via Split.
type RNG struct {
	s [4]uint64
	// cached second output of Box-Muller for NormFloat64
	hasGauss bool
	gauss    float64
}

// splitmix64 advances the state and returns the next SplitMix64 output.
// It is used to expand a single 64-bit seed into the 256-bit xoshiro state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns an RNG seeded from the given 64-bit seed. Two RNGs built from
// the same seed produce identical streams.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives an independent child generator. The parent stream advances;
// the child's stream is statistically independent of subsequent parent
// output. Use Split to hand deterministic sub-streams to workers, devices,
// clients, etc.
func (r *RNG) Split() *RNG {
	return New(r.Uint64() ^ 0xa5a5a5a55a5a5a5a)
}

// SplitNamed derives a child generator whose stream depends on both the
// parent state and the given label, so the same parent can deterministically
// produce distinct streams for named subsystems regardless of call order of
// other Splits.
func (r *RNG) SplitNamed(label string) *RNG {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	return New(r.Uint64() ^ h)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Float32 returns a uniform float32 in [0, 1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) * (1.0 / (1 << 24))
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("frand: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	x := r.Uint64()
	m := uint64(n)
	hi, lo := mul64(x, m)
	if lo < m {
		thresh := (-m) % m
		for lo < thresh {
			x = r.Uint64()
			hi, lo = mul64(x, m)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t & mask
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + (w1 >> 32)
	lo = a * b
	return
}

// NormFloat64 returns a standard normal variate (Box-Muller with caching).
func (r *RNG) NormFloat64() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// Normal returns a normal variate with the given mean and standard deviation.
func (r *RNG) Normal(mean, std float64) float64 {
	return mean + std*r.NormFloat64()
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles the slice in place (Fisher-Yates).
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle randomizes the order of n elements using the provided swap
// function, mirroring math/rand's Shuffle contract.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Choice returns k distinct indices sampled uniformly without replacement
// from [0, n). It panics if k > n or k < 0.
func (r *RNG) Choice(n, k int) []int {
	if k < 0 || k > n {
		panic("frand: Choice k out of range")
	}
	p := r.Perm(n)
	return p[:k]
}

// WeightedChoice returns one index in [0, len(w)) sampled proportionally to
// the non-negative weights w. It panics if all weights are zero or negative.
func (r *RNG) WeightedChoice(w []float64) int {
	var total float64
	for _, x := range w {
		if x > 0 {
			total += x
		}
	}
	if total <= 0 {
		panic("frand: WeightedChoice with no positive weights")
	}
	t := r.Float64() * total
	for i, x := range w {
		if x <= 0 {
			continue
		}
		t -= x
		if t < 0 {
			return i
		}
	}
	return len(w) - 1
}

// WeightedSample returns k indices sampled with replacement, proportional to
// the weights w.
func (r *RNG) WeightedSample(w []float64, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = r.WeightedChoice(w)
	}
	return out
}

// WeightedSampleNoReplace returns k distinct indices sampled without
// replacement proportional to w (sequential removal). Panics if fewer than k
// weights are positive.
func (r *RNG) WeightedSampleNoReplace(w []float64, k int) []int {
	cp := make([]float64, len(w))
	copy(cp, w)
	out := make([]int, 0, k)
	for len(out) < k {
		i := r.WeightedChoice(cp)
		out = append(out, i)
		cp[i] = 0
	}
	return out
}
