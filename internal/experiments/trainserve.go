package experiments

import (
	"fmt"

	"heteroswitch/internal/dataset"
	"heteroswitch/internal/fl"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/serve"
	"heteroswitch/internal/tensor"
)

// TrainServeSpec wires an asynchronous trainer and a serving load harness
// onto one virtual time axis: every global version the trainer finalizes is
// value-copied into the serving store at its finalize instant, and serving
// requests pin whichever version was current when their batch flushed.
type TrainServeSpec struct {
	FL       fl.Config
	Async    fl.AsyncConfig
	Strategy fl.Strategy
	Loss     nn.Loss
	Clients  []*fl.Client
	Builder  fl.Builder
	Serve    serve.Config
	Load     serve.LoadConfig
}

// TrainServeReport is the joint run's result: training window/publish counts
// and final virtual train time, plus the serving report with its
// served-version staleness block.
type TrainServeReport struct {
	// Windows counts finalized aggregation windows; Published counts the
	// subset that installed a new global version (zero-weight windows
	// publish nothing).
	Windows   int
	Published int
	// TrainTime is the trainer's virtual clock at the last window.
	TrainTime float64
	// Serving is the load harness report; StaleTracked is set and the
	// staleness histogram counts every served request once.
	Serving serve.Report
}

// String renders the training header followed by the serving report.
func (r *TrainServeReport) String() string {
	return fmt.Sprintf("train windows=%d published=%d train_vtime=%.6g\n",
		r.Windows, r.Published, r.TrainTime) + r.Serving.String()
}

// RunTrainServe runs training and serving as one deterministic event
// stream. The serving store starts from a value copy of the trainer's
// initial global (sharing storage would let the trainer's buffer recycling
// mutate a pinned serving version); each OnPublish copies the new global
// into a recycled store buffer and lands it at the trainer's virtual
// finalize instant, advancing the serving simulation up to that point.
func RunTrainServe(spec TrainServeSpec) (*TrainServeReport, error) {
	async, err := fl.NewAsyncServer(spec.FL, spec.Builder, spec.Loss, spec.Strategy, spec.Clients, spec.Async)
	if err != nil {
		return nil, err
	}
	build := func() *nn.Network { return spec.Builder() }
	srv, err := serve.NewServer(build, async.Global.Clone(), spec.Serve)
	if err != nil {
		return nil, err
	}
	if err := srv.BeginTrainLoad(spec.Load); err != nil {
		return nil, err
	}

	rep := &TrainServeReport{}
	var pubErr error
	async.OnPublish = func(_ int, w nn.Weights, vtime float64) {
		if pubErr != nil {
			return
		}
		buf := srv.Store().TakeBuffer()
		for i, p := range w.Params {
			buf.Params[i].CopyFrom(p)
		}
		for i, st := range w.States {
			buf.States[i].CopyFrom(st)
		}
		if err := srv.PublishAt(vtime, buf); err != nil {
			pubErr = err
			return
		}
		rep.Published++
	}
	async.Run(func(st fl.AsyncRoundStats) {
		rep.Windows++
		rep.TrainTime = st.VirtualTime
	})
	if pubErr != nil {
		return nil, fmt.Errorf("train-serve publish: %w", pubErr)
	}
	sr, err := srv.FinishTrainLoad()
	if err != nil {
		return nil, fmt.Errorf("train-serve load: %w", err)
	}
	rep.Serving = sr
	return rep, nil
}

// TrainWhileServe is the registry harness: the Table-1 federated workload
// trained asynchronously under a straggler-free uniform latency while the
// just-trained model serves a closed-loop request stream, with
// deadline-ordered (EDF) batch flush on the serving side. Scale drives both
// the training rounds and the offered serving load.
func TrainWhileServe(opts Options) (*TrainServeReport, error) {
	dd, err := BuildDeviceData(opts, opts.scaled(4), opts.scaled(2), dataset.ModeProcessed)
	if err != nil {
		return nil, err
	}
	const k = 4
	cfg := fl.Config{
		Rounds:           opts.scaled(12),
		ClientsPerRound:  k,
		BatchSize:        8,
		LocalEpochs:      1,
		LR:               0.1,
		Seed:             opts.Seed,
		Workers:          opts.Workers,
		DisableStreaming: opts.DisableStreaming,
		IntraOp:          opts.IntraOp,
	}
	if err := opts.applyRobustness(&cfg); err != nil {
		return nil, err
	}
	aopts := opts.Async
	if aopts.LatencyModel == "" {
		// Zero latency would finalize every window at t=0 and serve nothing
		// stale; spread the publishes so requests interleave with them.
		aopts.LatencyModel = "uniform:0.5,2"
	}
	if aopts.Depth == 0 {
		aopts.Depth = 2
	}
	acfg, err := aopts.Config(k, opts.Seed)
	if err != nil {
		return nil, err
	}
	clients, err := fl.BuildPopulation(dd.Train, MarketShareCounts(dd, 12), cfg.Seed)
	if err != nil {
		return nil, err
	}

	// Serve the pooled test captures as the request payload bank.
	test := dd.AllTest()
	bank := min(32, test.Len())
	inputs := make([]*tensor.Tensor, bank)
	for i := range inputs {
		inputs[i] = test.Samples[i].X
	}

	spec := TrainServeSpec{
		FL:       cfg,
		Async:    acfg,
		Strategy: fl.FedAvg{},
		Loss:     nn.SoftmaxCrossEntropy{},
		Clients:  clients,
		Builder:  SimpleCNNBuilder(opts.Seed, dd.Classes),
		Serve: serve.Config{
			MaxBatch:    4,
			BatchBudget: 0.2,
			Workers:     2,
			IntraOp:     opts.IntraOp,
			Flush:       serve.FlushEDF,
			Admission:   serve.AdmissionConfig{Deadline: 30},
		},
		Load: serve.LoadConfig{
			Requests:    opts.scaled(150),
			Concurrency: 8,
			Arrival:     serve.ClosedLoop{Think: 0.3, Seed: opts.Seed ^ 0xa11ce},
			Service:     serve.AffineService{Base: 0.5, PerItem: 0.125},
			Inputs:      inputs,
		},
	}
	return RunTrainServe(spec)
}
