//go:build race

package nn_test

// raceExtEnabled reports a -race build for the external test package:
// sync.Pool intentionally drops items at random under the race detector,
// so steady-state allocation counts are nondeterministic.
const raceExtEnabled = true
