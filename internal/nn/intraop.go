package nn

// IntraOpUser is the capability a Layer implements to receive an intra-op
// kernel parallelism budget: the maximum number of CPU cores its tensor
// kernels may occupy at once. Network.SetIntraOp propagates one budget
// through the whole layer tree, exactly like SetArena propagates the arena.
//
// The budget composes with coarser-grained parallelism by division, not by
// contention: a host that already runs W network replicas concurrently (the
// fl server's client workers) grants each replica GOMAXPROCS/W, so the
// process as a whole never oversubscribes the machine. A budget of 1 — the
// default for every freshly built network — byte-for-byte selects the serial
// kernels, and any budget produces bit-identical results (the parallel
// kernels only split disjoint output rows; see internal/parallel).
type IntraOpUser interface {
	SetIntraOp(budget int)
}

// intraOp is embedded by compute-heavy layers (Dense, Conv2D) to receive the
// budget; composite layers forward SetIntraOp to their children instead.
type intraOp struct {
	par int
}

// SetIntraOp implements IntraOpUser.
func (o *intraOp) SetIntraOp(budget int) { o.par = budget }

// budget returns the effective kernel budget (at least 1).
func (o *intraOp) budget() int {
	if o.par < 1 {
		return 1
	}
	return o.par
}
