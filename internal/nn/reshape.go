package nn

import (
	"fmt"

	"heteroswitch/internal/tensor"
)

// Reshape views each sample as the given per-sample shape, preserving the
// batch dimension: [N, ...] → [N, dims...]. It is a pure view change used to
// feed flat signals into convolutional stacks (e.g. ECG windows of length L
// become [1, 1, L] images for 1-D-style convolution).
type Reshape struct {
	Dims     []int
	inShape  []int
	shape    []int // reusable [N, Dims...] scratch
	out, dxv *tensor.Tensor
}

// NewReshape builds a reshape layer with the per-sample target shape.
func NewReshape(dims ...int) *Reshape {
	d := make([]int, len(dims))
	copy(d, dims)
	return &Reshape{Dims: d, shape: append([]int{0}, d...)}
}

// Forward implements Layer. The view headers are cached on the layer so
// steady-state batches allocate nothing.
func (l *Reshape) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	l.inShape = x.Shape()
	l.shape[0] = x.Dim(0)
	l.out = x.ReshapeInto(l.out, l.shape...)
	return l.out
}

// Backward implements Layer.
func (l *Reshape) Backward(grad *tensor.Tensor) *tensor.Tensor {
	l.dxv = grad.ReshapeInto(l.dxv, l.inShape...)
	return l.dxv
}

// Params implements Layer.
func (l *Reshape) Params() []*Param { return nil }

// States implements Layer.
func (l *Reshape) States() []*tensor.Tensor { return nil }

// Name implements Layer.
func (l *Reshape) Name() string { return fmt.Sprintf("Reshape%v", l.Dims) }
