package fl

import (
	"heteroswitch/internal/dataset"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/tensor"
)

// trainBatch runs one training-mode loss evaluation on samples [lo, hi),
// batching through the pooled dataset.BatchScratch (shared with the
// eval-side harnesses in internal/metrics). When the loss supports LossInto
// the gradient lands in a recycled scratch buffer; the caller may pass it to
// net.Backward before the next batch.
func trainBatch(bs *dataset.BatchScratch, net *nn.Network, loss nn.Loss, ds *dataset.Dataset,
	lo, hi int) (float64, *tensor.Tensor) {
	x, y, labels := bs.Next(ds, lo, hi)
	target := batchTarget(y, labels)
	out := net.Forward(x, true)
	if li, ok := loss.(nn.LossInto); ok {
		grad := bs.Alloc(out.Shape()...)
		return li.EvalInto(grad, out, target), grad
	}
	return loss.Eval(out, target)
}

// batchTarget wraps a BatchScratch window's targets: dense for multi-label,
// class indices otherwise.
func batchTarget(y *tensor.Tensor, labels []int) nn.Target {
	if y != nil {
		return nn.DenseTarget(y)
	}
	return nn.ClassTarget(labels)
}

// EvalLoss computes the mean loss of the network on ds in inference mode —
// L_init in Algorithm 1 terms. It handles both single- and multi-label data
// and forwards through one frozen inference replica (nn.EvalView): BN
// folded to the running statistics, activations fused, no backward caches.
// The loss is evaluated value-only (nn.LossValuer) — no gradient is computed
// or materialized on this pure-inference path.
func EvalLoss(net *nn.Network, loss nn.Loss, ds *dataset.Dataset, batch int) float64 {
	if ds.Len() == 0 {
		return 0
	}
	inf := nn.EvalView(net)
	bs := dataset.GetBatchScratch()
	defer dataset.PutBatchScratch(bs)
	var total float64
	bs.ForBatches(ds, batch, func(lo, hi int, x, y *tensor.Tensor, labels []int) {
		out := inf.Infer(x)
		target := batchTarget(y, labels)
		l := nn.LossValue(loss, func() *tensor.Tensor { return bs.Alloc(out.Shape()...) }, out, target)
		total += l * float64(hi-lo)
	})
	return total / float64(ds.Len())
}

// StepHook observes/adjusts parameter gradients right before each SGD step;
// FedProx adds its proximal pull here and SCAFFOLD its control variates.
type StepHook func(params []*nn.Param)

// BatchHook runs after each SGD step; HeteroSwitch maintains its per-batch
// SWA average here. batchIdx counts steps from 0 across all epochs.
type BatchHook func(net *nn.Network, batchIdx int)

// TrainLocal runs cfg.LocalEpochs of minibatch SGD on the client dataset and
// returns the running mean of batch losses (Algorithm 1's L_train). Batches
// are reshuffled each epoch from rng. stepHook and batchHook may be nil.
//
// The steady state of the loop is allocation-free: batch inputs, targets,
// and the loss gradient recycle through a pooled scratch arena, and every
// layer's outputs/gradients recycle through the network's own arena.
func TrainLocal(net *nn.Network, ds *dataset.Dataset, cfg Config, loss nn.Loss,
	rng *frand.RNG, stepHook StepHook, batchHook BatchHook) float64 {
	opt := nn.NewSGD(cfg.LR, cfg.Momentum, cfg.WeightDecay)
	params := net.Params()
	var lossSum float64
	batchIdx := 0
	order := make([]int, ds.Len())
	for i := range order {
		order[i] = i
	}
	// One reusable shuffled view: only the sample headers move per epoch,
	// instead of allocating a fresh Subset dataset every epoch.
	shuffled := &dataset.Dataset{
		Samples:    make([]dataset.Sample, ds.Len()),
		NumClasses: ds.NumClasses,
	}
	bs := dataset.GetBatchScratch()
	defer dataset.PutBatchScratch(bs)
	for e := 0; e < cfg.LocalEpochs; e++ {
		rng.ShuffleInts(order)
		for i, j := range order {
			shuffled.Samples[i] = ds.Samples[j]
		}
		for lo := 0; lo < shuffled.Len(); lo += cfg.BatchSize {
			hi := min(lo+cfg.BatchSize, shuffled.Len())
			l, gradT := trainBatch(bs, net, loss, shuffled, lo, hi)
			net.Backward(gradT)
			if stepHook != nil {
				stepHook(params)
			}
			opt.Step(params)
			if batchHook != nil {
				batchHook(net, batchIdx)
			}
			lossSum += l
			batchIdx++
		}
	}
	if batchIdx == 0 {
		return 0
	}
	return lossSum / float64(batchIdx)
}
