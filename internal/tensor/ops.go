package tensor

import (
	"fmt"
	"math"
)

// Add returns t + o elementwise as a new tensor.
func (t *Tensor) Add(o *Tensor) *Tensor {
	out := t.Clone()
	out.AddInPlace(o)
	return out
}

// AddInPlace computes t += o elementwise.
func (t *Tensor) AddInPlace(o *Tensor) {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: AddInPlace size mismatch %v vs %v", t.shape, o.shape))
	}
	for i := range t.data {
		t.data[i] += o.data[i]
	}
}

// Sub returns t - o elementwise as a new tensor.
func (t *Tensor) Sub(o *Tensor) *Tensor {
	out := t.Clone()
	out.SubInPlace(o)
	return out
}

// SubInPlace computes t -= o elementwise.
func (t *Tensor) SubInPlace(o *Tensor) {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: SubInPlace size mismatch %v vs %v", t.shape, o.shape))
	}
	for i := range t.data {
		t.data[i] -= o.data[i]
	}
}

// Mul returns the elementwise (Hadamard) product as a new tensor.
func (t *Tensor) Mul(o *Tensor) *Tensor {
	out := t.Clone()
	out.MulInPlace(o)
	return out
}

// MulInPlace computes t *= o elementwise.
func (t *Tensor) MulInPlace(o *Tensor) {
	if len(t.data) != len(o.data) {
		panic(fmt.Sprintf("tensor: MulInPlace size mismatch %v vs %v", t.shape, o.shape))
	}
	for i := range t.data {
		t.data[i] *= o.data[i]
	}
}

// Scale multiplies every element by a in place.
func (t *Tensor) Scale(a float32) {
	for i := range t.data {
		t.data[i] *= a
	}
}

// Scaled returns a*t as a new tensor.
func (t *Tensor) Scaled(a float32) *Tensor {
	out := t.Clone()
	out.Scale(a)
	return out
}

// AddScalar adds a to every element in place.
func (t *Tensor) AddScalar(a float32) {
	for i := range t.data {
		t.data[i] += a
	}
}

// Axpy computes t += a*x elementwise (the BLAS axpy). Panics on size
// mismatch. This is the workhorse of federated aggregation.
func (t *Tensor) Axpy(a float32, x *Tensor) {
	if len(t.data) != len(x.data) {
		panic(fmt.Sprintf("tensor: Axpy size mismatch %v vs %v", t.shape, x.shape))
	}
	for i := range t.data {
		t.data[i] += a * x.data[i]
	}
}

// Lerp sets t = (1-a)*t + a*x, the convex combination used by EMA and SWA
// style weight averaging.
func (t *Tensor) Lerp(a float32, x *Tensor) {
	if len(t.data) != len(x.data) {
		panic("tensor: Lerp size mismatch")
	}
	b := 1 - a
	for i := range t.data {
		t.data[i] = b*t.data[i] + a*x.data[i]
	}
}

// Apply replaces every element v with f(v).
func (t *Tensor) Apply(f func(float32) float32) {
	for i := range t.data {
		t.data[i] = f(t.data[i])
	}
}

// Clamp limits every element into [lo, hi] in place.
func (t *Tensor) Clamp(lo, hi float32) {
	for i := range t.data {
		v := t.data[i]
		if v < lo {
			v = lo
		} else if v > hi {
			v = hi
		}
		t.data[i] = v
	}
}

// Sum returns the sum of all elements (accumulated in float64 for accuracy).
func (t *Tensor) Sum() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v)
	}
	return s
}

// Mean returns the arithmetic mean of all elements; 0 for an empty tensor.
func (t *Tensor) Mean() float64 {
	if len(t.data) == 0 {
		return 0
	}
	return t.Sum() / float64(len(t.data))
}

// Max returns the maximum element. Panics on an empty tensor.
func (t *Tensor) Max() float32 {
	if len(t.data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. Panics on an empty tensor.
func (t *Tensor) Min() float32 {
	if len(t.data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.data[0]
	for _, v := range t.data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// Dot returns the inner product of t and o as float64.
func (t *Tensor) Dot(o *Tensor) float64 {
	if len(t.data) != len(o.data) {
		panic("tensor: Dot size mismatch")
	}
	var s float64
	for i := range t.data {
		s += float64(t.data[i]) * float64(o.data[i])
	}
	return s
}

// L2NormSq returns the squared Euclidean norm of the flattened tensor.
func (t *Tensor) L2NormSq() float64 {
	var s float64
	for _, v := range t.data {
		s += float64(v) * float64(v)
	}
	return s
}

// L2Norm returns the Euclidean norm of the flattened tensor.
func (t *Tensor) L2Norm() float64 { return math.Sqrt(t.L2NormSq()) }

// ArgMaxRows treats t as a [rows, cols] matrix and returns the column index
// of the max element in each row. Used for classification decisions.
func (t *Tensor) ArgMaxRows() []int {
	if len(t.shape) != 2 {
		panic(fmt.Sprintf("tensor: ArgMaxRows needs 2-D tensor, have %v", t.shape))
	}
	rows, cols := t.shape[0], t.shape[1]
	out := make([]int, rows)
	for r := 0; r < rows; r++ {
		base := r * cols
		best, bi := t.data[base], 0
		for c := 1; c < cols; c++ {
			if t.data[base+c] > best {
				best, bi = t.data[base+c], c
			}
		}
		out[r] = bi
	}
	return out
}

// Row returns a view tensor of row r of a 2-D tensor.
func (t *Tensor) Row(r int) *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Row needs 2-D tensor")
	}
	cols := t.shape[1]
	return FromSlice(t.data[r*cols:(r+1)*cols], cols)
}

// Slice returns a view of rows [lo, hi) along the first dimension. Shares
// data with t.
func (t *Tensor) Slice(lo, hi int) *Tensor {
	if len(t.shape) == 0 {
		panic("tensor: Slice of scalar")
	}
	if lo < 0 || hi > t.shape[0] || lo > hi {
		panic(fmt.Sprintf("tensor: Slice [%d,%d) of dim %d", lo, hi, t.shape[0]))
	}
	inner := 1
	for _, d := range t.shape[1:] {
		inner *= d
	}
	s := make([]int, len(t.shape))
	copy(s, t.shape)
	s[0] = hi - lo
	return &Tensor{shape: s, data: t.data[lo*inner : hi*inner]}
}

// Transpose2D returns the transpose of a 2-D tensor as a new tensor.
func (t *Tensor) Transpose2D() *Tensor {
	if len(t.shape) != 2 {
		panic("tensor: Transpose2D needs 2-D tensor")
	}
	r, c := t.shape[0], t.shape[1]
	out := New(c, r)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			out.data[j*r+i] = t.data[i*c+j]
		}
	}
	return out
}

// AllClose reports whether all elements of t and o differ by at most tol.
func (t *Tensor) AllClose(o *Tensor, tol float64) bool {
	if len(t.data) != len(o.data) {
		return false
	}
	for i := range t.data {
		if math.Abs(float64(t.data[i])-float64(o.data[i])) > tol {
			return false
		}
	}
	return true
}
