package tensor

// Arena is a shape-keyed recycler of per-batch tensors. Training hot loops
// allocate every layer output, gradient, and scratch tensor from an arena and
// call Reset once per batch; after the first batch warms the arena up, the
// steady state performs no heap allocation at all.
//
// Ownership contract:
//
//   - Get/GetUninit hand out tensors that remain valid until the next Reset.
//     A caller that needs a tensor to survive Reset must Clone it (or copy
//     into storage it owns) before Reset runs.
//   - Reset marks every buffer free again without releasing memory; the next
//     Get of the same shape returns a recycled buffer. Within one
//     Reset-to-Reset window all returned tensors are distinct (no aliasing).
//   - An Arena is NOT safe for concurrent use. Use one arena per goroutine
//     (in practice: per network replica).
//
// Tensors with more than four dimensions fall back to plain allocation and
// are never recycled; nothing in this codebase exceeds 4-D (NCHW).
type Arena struct {
	classes map[arenaKey]*arenaClass
}

// arenaKey identifies a size class: tensors are recycled only into requests
// with the exact same shape, so Get never has to re-shape a buffer.
type arenaKey struct {
	nd             int
	d0, d1, d2, d3 int
}

// arenaClass is one shape's free list: tensors[:next] are handed out,
// tensors[next:] are free. Reset rewinds next to 0.
type arenaClass struct {
	tensors []*Tensor
	next    int
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{classes: make(map[arenaKey]*arenaClass)}
}

func arenaKeyOf(shape []int) (arenaKey, bool) {
	k := arenaKey{nd: len(shape)}
	switch len(shape) {
	case 0:
	case 1:
		k.d0 = shape[0]
	case 2:
		k.d0, k.d1 = shape[0], shape[1]
	case 3:
		k.d0, k.d1, k.d2 = shape[0], shape[1], shape[2]
	case 4:
		k.d0, k.d1, k.d2, k.d3 = shape[0], shape[1], shape[2], shape[3]
	default:
		return k, false
	}
	return k, true
}

// Get returns a zero-filled tensor of the given shape, recycling a buffer
// released by the last Reset when one is available. Semantically equivalent
// to New(shape...), minus the steady-state allocation.
func (a *Arena) Get(shape ...int) *Tensor {
	t := a.GetUninit(shape...)
	t.Zero()
	return t
}

// GetUninit is Get without the zero fill: the contents are unspecified
// (whatever the previous batch left behind). Use it only when the caller
// overwrites every element before reading any.
func (a *Arena) GetUninit(shape ...int) *Tensor {
	key, ok := arenaKeyOf(shape)
	if !ok {
		return New(shape...)
	}
	c := a.classes[key]
	if c == nil {
		c = &arenaClass{}
		a.classes[key] = c
	}
	if c.next < len(c.tensors) {
		t := c.tensors[c.next]
		c.next++
		return t
	}
	t := New(shape...)
	c.tensors = append(c.tensors, t)
	c.next++
	return t
}

// Reset releases every buffer back to the arena. Tensors handed out before
// Reset must no longer be read or written afterwards — the next Get may
// return the same backing memory.
func (a *Arena) Reset() {
	for _, c := range a.classes {
		c.next = 0
	}
}

// Live returns the number of tensors currently handed out (since the last
// Reset). Intended for tests and diagnostics.
func (a *Arena) Live() int {
	n := 0
	for _, c := range a.classes {
		n += c.next
	}
	return n
}
