package camera

import (
	"math"
	"testing"

	"heteroswitch/internal/frand"
	"heteroswitch/internal/isp"
)

func flatScene(w, h int, r, g, b float64) *isp.Image {
	im := isp.NewImage(w, h)
	for i := 0; i < w*h; i++ {
		im.Pix[i*3] = r
		im.Pix[i*3+1] = g
		im.Pix[i*3+2] = b
	}
	return im
}

func idealSensor(res int) Sensor {
	return Sensor{
		Resolution:      res,
		Pattern:         isp.RGGB,
		ColorMatrix:     CrosstalkMatrix(0),
		IlluminantGains: [3]float64{1, 1, 1},
		BitDepth:        14,
	}
}

func TestIdealSensorIsTransparent(t *testing.T) {
	s := idealSensor(16)
	scene := flatScene(16, 16, 0.6, 0.4, 0.2)
	raw, err := s.Capture(scene, frand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// R site should read ~0.6, G ~0.4, B ~0.2 up to quantization.
	if math.Abs(raw.At(0, 0)-0.6) > 1e-3 || math.Abs(raw.At(1, 0)-0.4) > 1e-3 || math.Abs(raw.At(1, 1)-0.2) > 1e-3 {
		t.Fatalf("ideal capture wrong: %v %v %v", raw.At(0, 0), raw.At(1, 0), raw.At(1, 1))
	}
}

func TestIlluminantGainsCast(t *testing.T) {
	s := idealSensor(16)
	s.IlluminantGains = [3]float64{1.3, 1.0, 0.7}
	raw, err := s.Capture(flatScene(16, 16, 0.5, 0.5, 0.5), frand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if raw.At(0, 0) <= raw.At(1, 0) || raw.At(1, 0) <= raw.At(1, 1) {
		t.Fatalf("gains not applied: R=%v G=%v B=%v", raw.At(0, 0), raw.At(1, 0), raw.At(1, 1))
	}
}

func TestCrosstalkMixesChannels(t *testing.T) {
	s := idealSensor(16)
	s.ColorMatrix = CrosstalkMatrix(0.2)
	// Pure red scene: green sites should now read a nonzero signal.
	raw, err := s.Capture(flatScene(16, 16, 0.8, 0, 0), frand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if raw.At(1, 0) < 0.1 {
		t.Fatalf("crosstalk missing: G site = %v", raw.At(1, 0))
	}
	if raw.At(0, 0) <= raw.At(1, 0) {
		t.Fatal("R site should still dominate under moderate crosstalk")
	}
}

func TestCrosstalkMatrixRowsSumToOne(t *testing.T) {
	m := CrosstalkMatrix(0.13)
	for r := 0; r < 3; r++ {
		sum := m[r*3] + m[r*3+1] + m[r*3+2]
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
}

func TestVignettingDarkensCorners(t *testing.T) {
	s := idealSensor(32)
	s.Vignetting = 0.3
	raw, err := s.Capture(flatScene(32, 32, 0.8, 0.8, 0.8), frand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	centre := raw.At(16, 16)
	corner := raw.At(0, 0)
	if corner >= centre*0.85 {
		t.Fatalf("corner %v not darkened vs centre %v", corner, centre)
	}
}

func TestNoiseScalesWithConfig(t *testing.T) {
	quiet := idealSensor(32)
	quiet.ReadNoise = 0.005
	loud := idealSensor(32)
	loud.ReadNoise = 0.05
	scene := flatScene(32, 32, 0.5, 0.5, 0.5)
	rawQ, err := quiet.Capture(scene, frand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	rawL, err := loud.Capture(scene, frand.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if stddev(rawL.Pix) <= stddev(rawQ.Pix) {
		t.Fatalf("noisier sensor had lower spread: %v vs %v", stddev(rawL.Pix), stddev(rawQ.Pix))
	}
}

func stddev(v []float64) float64 {
	var sum, sumsq float64
	for _, x := range v {
		sum += x
		sumsq += x * x
	}
	m := sum / float64(len(v))
	return math.Sqrt(sumsq/float64(len(v)) - m*m)
}

func TestResolutionResampling(t *testing.T) {
	s := idealSensor(8)
	raw, err := s.Capture(flatScene(64, 64, 0.5, 0.5, 0.5), frand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if raw.W != 8 || raw.H != 8 {
		t.Fatalf("raw geometry %dx%d, want sensor resolution 8x8", raw.W, raw.H)
	}
}

func TestQuantization(t *testing.T) {
	s := idealSensor(8)
	s.BitDepth = 4 // 15 levels: heavy quantization
	raw, err := s.Capture(flatScene(8, 8, 0.5, 0.5, 0.5), frand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range raw.Pix {
		q := v * 15
		if math.Abs(q-math.Round(q)) > 1e-9 {
			t.Fatalf("value %v not on a 4-bit grid", v)
		}
	}
}

func TestCaptureDeterministic(t *testing.T) {
	s := idealSensor(16)
	s.ReadNoise = 0.02
	scene := flatScene(16, 16, 0.4, 0.5, 0.6)
	a, err := s.Capture(scene, frand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Capture(scene, frand.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("capture not deterministic under identical RNG")
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []Sensor{
		{Resolution: 2, BitDepth: 10},
		{Resolution: 32, BitDepth: 2},
		{Resolution: 32, BitDepth: 10, Vignetting: 1.5},
		{Resolution: 32, BitDepth: 10, ReadNoise: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("config %d should fail validation", i)
		}
	}
}
