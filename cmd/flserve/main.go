// Command flserve runs the deterministic serving load harness: it stands up
// the serving stack (refcounted version store, micro-batcher, per-worker
// frozen replicas) for one model and drives it with a seeded open- or
// closed-loop arrival process in virtual time. Everything printed is a pure
// function of the flags: two invocations with the same flags produce
// byte-identical output — including per-request output digests and the
// latency histogram — at every -intraop setting, which is exactly what the
// CI smoke diffs.
//
// -train switches to the train-while-serve harness: an asynchronous
// federated trainer and the serving stack share one virtual time axis, every
// finalized global version is published into the serving store at its
// finalize instant, and the report adds per-request served-version
// staleness. The same byte-identity contract holds.
package main

import (
	"flag"
	"fmt"
	"os"

	"heteroswitch/internal/experiments"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/models"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/serve"
	"heteroswitch/internal/tensor"
)

func main() {
	var (
		model       = flag.String("model", string(models.ArchMobileNet), "model architecture")
		classes     = flag.Int("classes", 12, "model output classes")
		side        = flag.Int("side", 32, "input image side (3-channel side x side; must match the architecture's expected geometry — 32 for the bundled models)")
		requests    = flag.Int("requests", 2000, "total requests to serve")
		concurrency = flag.Int("concurrency", 16, "closed-loop client population (ignored by open-loop arrivals)")
		arrival     = flag.String("arrival-model", "closed:0.5", "request process: closed:THINK (exp think-time clients) or open:RATE (Poisson arrivals)")
		maxBatch    = flag.Int("max-batch", 8, "micro-batch flush threshold")
		budget      = flag.Float64("batch-budget", 0.25, "virtual time a partial batch waits for more requests before flushing")
		workers     = flag.Int("workers", 2, "concurrent batch executors (one frozen replica each)")
		intraop     = flag.Int("intraop", 0, "total intra-op kernel budget split across workers (0 = GOMAXPROCS; outputs are bit-identical at every setting)")
		svcBase     = flag.Float64("service-base", 1, "virtual per-dispatch service cost")
		svcItem     = flag.Float64("service-per-item", 0.25, "virtual per-request service cost")
		publish     = flag.Int("publish-every", 0, "republish the model (same values, new version) every N batches, exercising version-cache churn (0 = off; unwired runs only)")
		bank        = flag.Int("inputs", 32, "distinct request payloads in the input bank")
		admission   = flag.String("admission", "", "overload admission policy DEPTH,DEADLINE: shed arrivals beyond DEPTH pending requests and queued requests older than DEADLINE at service start (either 0 disables that mechanism; empty or 'off' = no admission control)")
		flush       = flag.String("flush", "", "queued-batch start order: fifo (default) or edf (earliest deadline first, deadline = oldest request arrival + admission DEADLINE)")
		seed        = flag.Uint64("seed", 42, "random seed")
		backend     = flag.String("kernel-backend", tensor.ActiveBackend().String(), "matmul kernel backend for the frozen replicas: auto (packed when profitable), serial (bit-identical oracle kernels), packed (force the cache-blocked kernel), int8 (force the quantized weight-stationary kernel, documented-tolerance tier); default honors HETEROSWITCH_KERNEL_BACKEND")

		train      = flag.Bool("train", false, "run the train-while-serve harness (experiments \"train-serve\") instead of the synthetic load harness; serving-side flags above are ignored")
		trainScale = flag.Float64("train-scale", 0.2, "train-while-serve workload scale (1 = full reproduction size)")
		latency    = flag.String("latency-model", "", "virtual client latency for -train: zero, const:D, uniform:LO,HI, straggler:LO,HI,P,FACTOR (empty = uniform:0.5,2)")
		alpha      = flag.Float64("staleness-alpha", 0.5, "polynomial staleness discount 1/(1+s)^alpha for -train async folds (0 = no discount)")
		asyncDepth = flag.Int("async-depth", 2, "in-flight async jobs as a multiple of K for -train (1 = no overlap)")
	)
	flag.Parse()

	var err error
	if *train {
		err = runTrain(*trainScale, *seed, *workers, *intraop, *latency, *alpha, *asyncDepth, *backend)
	} else {
		err = run(*model, *classes, *side, *requests, *concurrency, *arrival,
			*maxBatch, *budget, *workers, *intraop, *svcBase, *svcItem, *publish, *bank, *admission, *flush, *seed, *backend)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "flserve:", err)
		os.Exit(1)
	}
}

// runTrain runs the wired train-while-serve harness: training publishes into
// the serving store on one virtual clock, the serving report gains the
// staleness block, and the whole stdout is a pure function of the flags.
func runTrain(scale float64, seed uint64, workers, intraop int, latency string, alpha float64, depth int, backend string) error {
	fmt.Printf("flserve train-while-serve scale=%g seed=%d latency=%s staleness_alpha=%g depth=%d\n",
		scale, seed, orDefault(latency, "uniform:0.5,2"), alpha, depth)
	opts := experiments.DefaultOptions()
	opts.Scale = scale
	opts.Seed = seed
	opts.Workers = max(workers, 1)
	opts.IntraOp = intraop
	opts.KernelBackend = backend
	opts.Async = experiments.AsyncOptions{
		StalenessAlpha: alpha,
		LatencyModel:   latency,
		Depth:          depth,
	}
	res, err := experiments.Run("train-serve", opts)
	if err != nil {
		return err
	}
	fmt.Print(res.String())
	return nil
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func run(model string, classes, side, requests, concurrency int, arrivalSpec string,
	maxBatch int, budget float64, workers, intraop int, svcBase, svcItem float64,
	publish, bank int, admissionSpec, flushSpec string, seed uint64, backend string) error {
	kb, err := tensor.ParseBackend(backend)
	if err != nil {
		return err
	}
	admission, err := serve.ParseAdmission(admissionSpec)
	if err != nil {
		return err
	}
	flush, err := serve.ParseFlush(flushSpec)
	if err != nil {
		return err
	}
	tensor.SetBackend(kb)
	builder, err := models.BuilderFor(models.Arch(model), seed, 3, classes)
	if err != nil {
		return err
	}
	build := func() *nn.Network { return builder() }
	weights := build().Snapshot()

	arrivalModel, err := serve.ParseArrival(arrivalSpec, seed^0xa11ce)
	if err != nil {
		return err
	}
	srv, err := serve.NewServer(build, weights, serve.Config{
		MaxBatch:    maxBatch,
		BatchBudget: budget,
		Workers:     workers,
		IntraOp:     intraop,
		Admission:   admission,
		Flush:       flush,
	})
	if err != nil {
		return err
	}

	r := frand.New(seed ^ 0x1ead)
	inputs := make([]*tensor.Tensor, bank)
	for i := range inputs {
		inputs[i] = tensor.Randn(r, 0.5, 3, side, side)
	}

	fmt.Printf("flserve model=%s classes=%d input=3x%dx%d\n", model, classes, side, side)
	// The FIFO default keeps this line — and therefore the whole default
	// stdout — byte-identical to earlier releases; a non-default flush
	// policy is appended so it shows up in the smoke diff.
	flushNote := ""
	if flush != serve.FlushFIFO {
		flushNote = fmt.Sprintf(" flush=%s", flush)
	}
	fmt.Printf("config max_batch=%d batch_budget=%g workers=%d intraop=%d arrival=%s service=affine(%g,%g) publish_every=%d admission=%d,%g seed=%d%s\n",
		maxBatch, budget, workers, intraop, arrivalSpec, svcBase, svcItem, publish, admission.Depth, admission.Deadline, seed, flushNote)

	report, err := srv.RunLoad(serve.LoadConfig{
		Requests:     requests,
		Concurrency:  concurrency,
		Arrival:      arrivalModel,
		Service:      serve.AffineService{Base: svcBase, PerItem: svcItem},
		Seed:         seed,
		PublishEvery: publish,
		Inputs:       inputs,
	})
	if err != nil {
		return err
	}
	fmt.Printf("versions published=%d resident=%d\n", srv.Store().Version(), srv.Store().Live())
	fmt.Print(report.String())
	return nil
}
