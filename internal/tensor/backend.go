package tensor

import (
	"fmt"
	"os"
	"sync/atomic"
)

// Kernel backends & numerics tiers --------------------------------------------
//
// The matmul entry points are split into two numerics tiers:
//
//   - The ORACLE tier: every kernel the training path uses (MatMul*,
//     MatMulTransB*, MatMulTransAAcc*, and their *P row-parallel forms).
//     These always run the serial/parallel register-tiled kernels with a
//     strict per-target ascending-k accumulation order and are bit-exact
//     at every intra-op budget. They never dispatch — the tol-0 training
//     and aggregation reproducibility contracts stand on them.
//
//   - The TOLERANCE tier: the epilogue-fused entry points the frozen
//     inference path compiles to (MatMulSlicesPEp, MatMulIntoPEp,
//     MatMulAccSlicesPEp). These dispatch through the process-wide Backend
//     below and may run the packed, cache-blocked GEBP kernel, whose
//     k-blocking reassociates partial sums. nn.Freeze's contract (≤1e-5
//     max-abs vs the reference forward, identical argmax) absorbs that;
//     BackendSerial forces the oracle kernels and is bit-identical to the
//     pre-dispatch behavior.
//
// The int8-quantized tier sits one step further out on the same seam: the
// frozen path's fused matmuls carry a PackedWeights handle (weights.go)
// whose int8 panels and per-output-channel scales are quantized once per
// weight version at nn.Freeze time, and BackendInt8 routes the
// weight-stationary entry points below onto the integer microkernel
// (int8.go). Its tolerance is LOOSER than the 1e-5 float tier (see the
// documented bound in int8.go), so BackendAuto never selects it — int8 is
// strictly opt-in via SetBackend/-kernel-backend/the environment variable.

// Backend selects the kernel implementation behind the tolerance-tier
// (epilogue-fused) matmul entry points.
type Backend uint8

const (
	// BackendAuto picks per call: the packed GEBP kernel when the matmul is
	// large enough to amortize packing, the oracle kernels otherwise. The
	// default.
	BackendAuto Backend = iota
	// BackendSerial forces the oracle kernels everywhere — bit-identical to
	// the pre-backend behavior at every budget.
	BackendSerial
	// BackendPacked forces the packed kernel for every eligible shape
	// (k ≥ 1); used by the CI backend matrix lane and A/B benchmarks.
	BackendPacked
	// BackendInt8 runs the weight-stationary fused matmuls (the frozen
	// path's conv/dense kernels, which carry a PackedWeights handle) on the
	// int8-quantized integer microkernel: weights quantized per output
	// channel once per version, activations per call, int32 accumulation,
	// float32 dequantizing epilogue. Tolerance-tier calls WITHOUT a weight
	// handle (raw-slice fused entries) fall back to the packed float
	// kernel. Never chosen by auto — the quantization error leaves the
	// float tier's 1e-5 bound, so int8 must be forced explicitly.
	BackendInt8
)

// String implements fmt.Stringer.
func (b Backend) String() string {
	switch b {
	case BackendAuto:
		return "auto"
	case BackendSerial:
		return "serial"
	case BackendPacked:
		return "packed"
	case BackendInt8:
		return "int8"
	}
	return fmt.Sprintf("Backend(%d)", uint8(b))
}

// ParseBackend maps the -kernel-backend flag values onto a Backend.
func ParseBackend(s string) (Backend, error) {
	switch s {
	case "", "auto":
		return BackendAuto, nil
	case "serial":
		return BackendSerial, nil
	case "packed":
		return BackendPacked, nil
	case "int8":
		return BackendInt8, nil
	}
	return BackendAuto, fmt.Errorf("tensor: unknown kernel backend %q (want auto, serial, packed, or int8)", s)
}

// activeBackend is the process-wide selection; the zero value is
// BackendAuto. Reads sit on the matmul hot path, so it is a lock-free
// atomic like the fused-eval toggle.
var activeBackend atomic.Uint32

// SetBackend selects the kernel backend for every subsequent
// tolerance-tier matmul. Safe for concurrent use; typically set once at
// startup from the -kernel-backend flag.
func SetBackend(b Backend) { activeBackend.Store(uint32(b)) }

// ActiveBackend returns the current process-wide backend selection.
func ActiveBackend() Backend { return Backend(activeBackend.Load()) }

// initBackendFromEnv applies an environment-variable backend selection and
// returns the error for an unparseable value WITHOUT changing the active
// backend — the init hook below turns that error into a hard process exit.
// Split out (with the lookup injected) so tests can pin the reject path
// without forking a subprocess.
func initBackendFromEnv(value string) error {
	if value == "" {
		return nil
	}
	b, err := ParseBackend(value)
	if err != nil {
		return fmt.Errorf("HETEROSWITCH_KERNEL_BACKEND: %v", err)
	}
	SetBackend(b)
	return nil
}

// init honors the HETEROSWITCH_KERNEL_BACKEND environment variable so test
// lanes (the CI backend matrix) can force a backend across whole packages
// without threading flags through every harness. An unknown value is a
// configuration error, not a preference: silently falling back to auto would
// make a CI lane test the wrong backend while reporting green, so the
// process fails loudly at startup instead.
func init() {
	if err := initBackendFromEnv(os.Getenv("HETEROSWITCH_KERNEL_BACKEND")); err != nil {
		fmt.Fprintln(os.Stderr, "tensor:", err)
		os.Exit(2)
	}
}

// Auto-dispatch thresholds: packing B costs k·n writes against m·k·n
// multiply-adds of compute, so the packed kernel needs enough rows to
// amortize the pack (m ≥ packAutoMinRows ⇒ pack ≤ 1/packAutoMinRows of
// compute) and enough total work for the panel loop's bookkeeping to
// vanish. Below either bound the oracle kernels win and auto stays on
// them.
const (
	packAutoMinRows = 8
	packAutoMinWork = 1 << 14
)

// usePacked reports whether a tolerance-tier matmul of the given shape
// dispatches to the packed kernel under the active backend. k == 0 always
// stays on the oracle path (the packed driver's first k-block doubles as
// the output initialization, so it needs at least one block). BackendInt8
// behaves like BackendPacked here: a raw-slice fused matmul has no
// per-channel weight scales to quantize against, so the closest honest
// kernel is the packed float one (the weight-stationary entry points
// dispatch to the true int8 kernel before ever reaching this check).
func usePacked(m, k, n int) bool {
	if k <= 0 || m <= 0 || n <= 0 {
		return false
	}
	switch ActiveBackend() {
	case BackendPacked, BackendInt8:
		return true
	case BackendSerial:
		return false
	default:
		return m >= packAutoMinRows && m*k*n >= packAutoMinWork
	}
}
