package tensor

import (
	"fmt"
	"math"
	"sync"

	"heteroswitch/internal/parallel"
)

// Int8-quantized matmul — the BackendInt8 kernel behind the weight-stationary
// fused entry points (weights.go). Strictly opt-in: auto never selects it.
//
// Quantization scheme (symmetric, zero-point-free in VALUE, biased in
// STORAGE — see the SWAR layout below):
//
//   - Weights: one scale per OUTPUT CHANNEL (per column for weights-as-B,
//     per row for weights-as-A), s_c = maxabs(channel)/127, quantized once
//     per weight version at refresh time (weights.go).
//   - Activations: quantized per call — per ROW for the dense path's A
//     operand (each sample gets its own scale, so one hot sample cannot
//     crush another's resolution), per TENSOR for the conv path's im2col B
//     operand (column scales are meaningless there; columns are spatial
//     positions, not channels).
//
// SWAR microkernel: a scalar int32 multiply has HALF the throughput of a
// float multiply on amd64 (IMUL binds to one port; MULSS issues on two), so
// an element-at-a-time integer kernel loses to the float GEBP kernel. The
// int8 kernel instead stores both operands BIASED to unsigned (q' = q+128 ∈
// [1,255]) and packs the B panel as 64-bit words holding two 32-bit lanes of
// adjacent columns; one 64-bit multiply by an A byte then produces BOTH lane
// products (each ≤ 255² = 65025, far below the 2³² lane boundary), and lane
// sums accumulate in place: 4 multiplies per k-step drive the full 2×4 tile,
// twice the MAC density of the float microkernel. The store peels the two
// int32 lane accumulators apart and removes the bias exactly with the
// zero-point identity
//
//	Σ a·b = Σ a'·b' − 128·Σa' − 128·Σb' + k·16384,
//
// with the per-row and per-column biased sums recorded at quantization time
// and folded into per-row/per-column int64 corrections ONCE per call (per
// version for the stationary operand) — the store's per-output work is one
// lane extraction, two integer adds, and one dequant multiply, and the
// recovered dot product is bit-for-bit the signed int8 dot.
// Dequantization multiplies once per target, out = float32(dot) · rowFactor
// · colScale (fixed multiply order), then the caller's row epilogue (bias +
// activation) runs in float32 exactly as on the float backends.
//
// Determinism: per-row/per-tensor maxabs reductions scan in fixed index
// order inside the worker that owns the rows (float max is exact, so even
// the order would not matter), quantization is element-local, and integer
// accumulation is exact and order-independent — so int8 results are
// bit-identical across intra-op budgets and concurrent replicas by
// construction, which is what the serve digest contract needs from every
// backend. There is no k-blocking: nothing reassociates, because nothing
// rounds.
//
// Accuracy: per element of a k-deep dot product the quantization error is
// bounded by k·128·s_a·s_w (each operand's rounding error is ≤ s/2 against
// a partner bounded by 127·s, plus the s_a·s_w/4 cross term). With unit-ish
// activations and fan-in-scaled weights that lands around 1e-2 absolute —
// the int8 tier's documented tolerance is therefore Int8Tol (5e-2, relative
// past unit magnitude) + identical argmax on the model fixtures, NOT the
// float tier's 1e-5.
const Int8Tol = 5e-2

// int8MaxK bounds the reduction depth: one 32-bit lane must hold k biased
// products of ≤ 65025 without carrying into its neighbor, so k ≤ 2³²/65025
// ≈ 66051. Every model shape here is orders of magnitude below; the drivers
// panic past the bound rather than corrupt silently.
const int8MaxK = 66000

// int8Bias is the storage zero point; 16384 = int8Bias².
const int8Bias = 128

// abs32 is |v| without the float64 round-trip of math.Abs.
func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

// maxAbsBits is max|v| over vs, scanned as float bits: clearing the sign bit
// is branch-free |·|, and unsigned comparison of non-negative float bits IS
// float comparison, so the loop is compare+cmov with no float pipeline or
// sign mispredicts. Four accumulators break the dependence chain (this scan
// runs over every conv activation, so it must stream at memory speed).
func maxAbsBits(vs []float32) float32 {
	var m0, m1, m2, m3 uint32
	i := 0
	for ; i+4 <= len(vs); i += 4 {
		x := vs[i : i+4 : i+4]
		if b := math.Float32bits(x[0]) &^ (1 << 31); b > m0 {
			m0 = b
		}
		if b := math.Float32bits(x[1]) &^ (1 << 31); b > m1 {
			m1 = b
		}
		if b := math.Float32bits(x[2]) &^ (1 << 31); b > m2 {
			m2 = b
		}
		if b := math.Float32bits(x[3]) &^ (1 << 31); b > m3 {
			m3 = b
		}
	}
	for ; i < len(vs); i++ {
		if b := math.Float32bits(vs[i]) &^ (1 << 31); b > m0 {
			m0 = b
		}
	}
	if m1 > m0 {
		m0 = m1
	}
	if m2 > m0 {
		m0 = m2
	}
	if m3 > m0 {
		m0 = m3
	}
	return math.Float32frombits(m0)
}

// quantInv converts a channel maxabs into the quantization multiplier
// 127/maxabs; an all-zero channel gets 0, so its values quantize to 0 and
// its dequant scale (maxabs/127 = 0) reproduces exact zeros. A denormal
// maxabs whose reciprocal overflows also flushes to 0 (outputs there are
// below float resolution anyway, and the guard keeps v·inv finite — the
// branchless rounding below has no clamp to catch an infinity).
func quantInv(maxAbs float32) float32 {
	if maxAbs == 0 {
		return 0
	}
	inv := 127 / maxAbs
	if inv > math.MaxFloat32 {
		return 0
	}
	return inv
}

// quantBiased rounds v·inv half-up directly in the biased storage domain:
// floor(s + 128.5) with s = v·inv. Every caller derives inv from the maxabs
// of the very data being quantized, so |s| ≤ 127(1+ε) by construction and
// s+128.5 always lands in [1.5, 255.5] — no sign branch, no clamp, just a
// multiply, an add, and a truncating convert. (This is round-half-up rather
// than half-away-from-zero; ties move a negative value's magnitude down by
// one step at most, well inside the tier's error budget, and the branchless
// form is what lets the per-call activation quantization keep up with the
// SWAR kernel.)
func quantBiased(v, inv float32) uint8 {
	return uint8(int32(v*inv + (int8Bias + 0.5)))
}

// quantVal is quantBiased shifted back to the signed domain (the weights
// path and tests read it; storage is always biased).
func quantVal(v, inv float32) int8 {
	return int8(int32(quantBiased(v, inv)) - int8Bias)
}

// int8Scratch pools the per-call activation quantization state (both
// orientations share one shape of scratch), mirroring packBuf so warm int8
// dispatches allocate nothing.
type int8Scratch struct {
	q     []uint8   // biased A rows (dense path)
	words []uint64  // biased lane-packed B panels (conv path)
	sums  []int32   // per-column biased sums during packing (conv path)
	adj   []int64   // per-row (dense) or per-column (conv) unbias corrections
	rs    []float32 // per-row dequant factors
}

var int8ScratchPool = sync.Pool{New: func() any { return new(int8Scratch) }}

func getInt8Scratch(nq, nwords, nsums, nadj, nrs int) *int8Scratch {
	s := int8ScratchPool.Get().(*int8Scratch)
	if cap(s.q) < nq {
		s.q = make([]uint8, nq)
	}
	if cap(s.words) < nwords {
		s.words = make([]uint64, nwords)
	}
	if cap(s.sums) < nsums {
		s.sums = make([]int32, nsums)
	}
	if cap(s.adj) < nadj {
		s.adj = make([]int64, nadj)
	}
	if cap(s.rs) < nrs {
		s.rs = make([]float32, nrs)
	}
	s.q, s.words = s.q[:nq], s.words[:nwords]
	s.sums, s.adj, s.rs = s.sums[:nsums], s.adj[:nadj], s.rs[:nrs]
	return s
}

func putInt8Scratch(s *int8Scratch) { int8ScratchPool.Put(s) }

// quantizeRows quantizes A rows [lo, hi) of a[·,k] into biased storage with
// one symmetric scale per row, recording the DEQUANT scale (maxabs/127) in
// rs and the row's unbias correction −128·Σa′ in radj. Each row is
// independent, so parallel workers quantize exactly the rows they will
// multiply — disjoint writes, and the same bits at any budget.
func quantizeRows(qa []uint8, radj []int64, rs []float32, a []float32, lo, hi, k int) {
	for i := lo; i < hi; i++ {
		row := a[i*k : (i+1)*k]
		ma := maxAbsBits(row)
		rs[i] = ma / 127
		inv := quantInv(ma)
		q := qa[i*k : (i+1)*k]
		var sum int64
		for j, v := range row {
			b := quantBiased(v, inv)
			q[j] = b
			sum += int64(b)
		}
		radj[i] = -int8Bias * sum
	}
}

// quantPackB quantizes b[k,n] with the single multiplier inv and packs it
// into biased lane-packed panels: panel p, depth kk occupies two uint64
// words, word 0 carrying columns j0/j0+1 in its low/high 32-bit lanes and
// word 1 columns j0+2/j0+3. Padding lanes are 0 (their products never reach
// a stored output). colSums records each real column's biased sum. The scan
// is row-major (kk outer) so every read of b is contiguous; the panel writes
// scatter with stride 2k, which the store buffers absorb.
func quantPackB(words []uint64, colSums []int32, b []float32, k, n int, inv float32) {
	for j := range colSums[:n] {
		colSums[j] = 0
	}
	full := n &^ (packNR - 1)
	for kk := 0; kk < k; kk++ {
		row := b[kk*n : kk*n+n]
		wbase := kk * 2
		j := 0
		for ; j < full; j += packNR {
			x := row[j : j+4 : j+4]
			q0 := uint64(quantBiased(x[0], inv))
			q1 := uint64(quantBiased(x[1], inv))
			q2 := uint64(quantBiased(x[2], inv))
			q3 := uint64(quantBiased(x[3], inv))
			c := colSums[j : j+4 : j+4]
			c[0] += int32(q0)
			c[1] += int32(q1)
			c[2] += int32(q2)
			c[3] += int32(q3)
			w := words[(j>>2)*k*2+wbase : (j>>2)*k*2+wbase+2 : (j>>2)*k*2+wbase+2]
			w[0] = q0 | q1<<32
			w[1] = q2 | q3<<32
		}
		if j < n {
			var lane [packNR]uint64
			for jj := 0; j+jj < n; jj++ {
				q := quantBiased(row[j+jj], inv)
				lane[jj] = uint64(q)
				colSums[j+jj] += int32(q)
			}
			w := words[(j>>2)*k*2+wbase:]
			w[0] = lane[0] | lane[1]<<32
			w[1] = lane[2] | lane[3]<<32
		}
	}
}

// int8Store unbias-corrects and dequantizes one microkernel row's four lane
// accumulators into w valid output columns: dot_j = lane_j + adj + corr_j,
// where adj is the row's correction (−128·rowSum, with k·16384 folded into
// exactly one side) and corr_j the column's precomputed correction; out (+)=
// float32(dot_j) · r · cs[j]. cs == nil means the column scale is uniform
// and already folded into r (the conv path).
func int8Store(dst []float32, w int, add bool, adj int64, corr []int64, r float32, cs []float32, l0, l1, l2, l3 uint32) {
	s0, s1, s2, s3 := r, r, r, r
	if cs != nil {
		if w > 0 {
			s0 *= cs[0]
		}
		if w > 1 {
			s1 *= cs[1]
		}
		if w > 2 {
			s2 *= cs[2]
		}
		if w > 3 {
			s3 *= cs[3]
		}
	}
	var v0, v1, v2, v3 float32
	if w > 0 {
		v0 = s0 * float32(int64(l0)+adj+corr[0])
	}
	if w > 1 {
		v1 = s1 * float32(int64(l1)+adj+corr[1])
	}
	if w > 2 {
		v2 = s2 * float32(int64(l2)+adj+corr[2])
	}
	if w > 3 {
		v3 = s3 * float32(int64(l3)+adj+corr[3])
	}
	if add {
		switch w {
		case 4:
			dst[0] += v0
			dst[1] += v1
			dst[2] += v2
			dst[3] += v3
		case 3:
			dst[0] += v0
			dst[1] += v1
			dst[2] += v2
		case 2:
			dst[0] += v0
			dst[1] += v1
		case 1:
			dst[0] += v0
		}
		return
	}
	switch w {
	case 4:
		dst[0], dst[1], dst[2], dst[3] = v0, v1, v2, v3
	case 3:
		dst[0], dst[1], dst[2] = v0, v1, v2
	case 2:
		dst[0], dst[1] = v0, v1
	case 1:
		dst[0] = v0
	}
}

// int8Micro2x4 accumulates the 2×4 tile over the full k extent with four
// uint64 SWAR accumulators (two 32-bit lanes each) — one 64-bit multiply
// per (row, word) feeds two output columns — then unbiases and dequantizes
// into the float32 output.
func int8Micro2x4(c []float32, ldc int, a0, a1 []uint8, panel []uint64, k, w int, add bool, adj0, adj1 int64, corr []int64, r0, r1 float32, cs []float32) {
	var acc00, acc01, acc10, acc11 uint64
	// 8-step unroll with one bounds guard per block: the multiply port is
	// the only real bottleneck (32 IMULs per block drive 64 MACs), so
	// amortizing the index arithmetic, slice headers, and loop control 8×
	// is what lets the SWAR kernel pull ahead of the float microkernel.
	a0, a1 = a0[:k:k], a1[:k:k]
	kk := 0
	for ; kk+8 <= k; kk += 8 {
		p := panel[kk*2 : kk*2+16 : kk*2+16]
		av0, av1 := uint64(a0[kk]), uint64(a1[kk])
		acc00 += av0 * p[0]
		acc01 += av0 * p[1]
		acc10 += av1 * p[0]
		acc11 += av1 * p[1]
		av0, av1 = uint64(a0[kk+1]), uint64(a1[kk+1])
		acc00 += av0 * p[2]
		acc01 += av0 * p[3]
		acc10 += av1 * p[2]
		acc11 += av1 * p[3]
		av0, av1 = uint64(a0[kk+2]), uint64(a1[kk+2])
		acc00 += av0 * p[4]
		acc01 += av0 * p[5]
		acc10 += av1 * p[4]
		acc11 += av1 * p[5]
		av0, av1 = uint64(a0[kk+3]), uint64(a1[kk+3])
		acc00 += av0 * p[6]
		acc01 += av0 * p[7]
		acc10 += av1 * p[6]
		acc11 += av1 * p[7]
		av0, av1 = uint64(a0[kk+4]), uint64(a1[kk+4])
		acc00 += av0 * p[8]
		acc01 += av0 * p[9]
		acc10 += av1 * p[8]
		acc11 += av1 * p[9]
		av0, av1 = uint64(a0[kk+5]), uint64(a1[kk+5])
		acc00 += av0 * p[10]
		acc01 += av0 * p[11]
		acc10 += av1 * p[10]
		acc11 += av1 * p[11]
		av0, av1 = uint64(a0[kk+6]), uint64(a1[kk+6])
		acc00 += av0 * p[12]
		acc01 += av0 * p[13]
		acc10 += av1 * p[12]
		acc11 += av1 * p[13]
		av0, av1 = uint64(a0[kk+7]), uint64(a1[kk+7])
		acc00 += av0 * p[14]
		acc01 += av0 * p[15]
		acc10 += av1 * p[14]
		acc11 += av1 * p[15]
	}
	for ; kk < k; kk++ {
		p0, p1 := panel[kk*2], panel[kk*2+1]
		av0, av1 := uint64(a0[kk]), uint64(a1[kk])
		acc00 += av0 * p0
		acc01 += av0 * p1
		acc10 += av1 * p0
		acc11 += av1 * p1
	}
	int8Store(c, w, add, adj0, corr, r0, cs,
		uint32(acc00), uint32(acc00>>32), uint32(acc01), uint32(acc01>>32))
	int8Store(c[ldc:], w, add, adj1, corr, r1, cs,
		uint32(acc10), uint32(acc10>>32), uint32(acc11), uint32(acc11>>32))
}

// int8Micro1x4 is the single-row tail microkernel.
func int8Micro1x4(c []float32, a []uint8, panel []uint64, k, w int, add bool, adj int64, corr []int64, r float32, cs []float32) {
	var acc0, acc1 uint64
	a = a[:k:k]
	kk := 0
	for ; kk+8 <= k; kk += 8 {
		p := panel[kk*2 : kk*2+16 : kk*2+16]
		av := uint64(a[kk])
		acc0 += av * p[0]
		acc1 += av * p[1]
		av = uint64(a[kk+1])
		acc0 += av * p[2]
		acc1 += av * p[3]
		av = uint64(a[kk+2])
		acc0 += av * p[4]
		acc1 += av * p[5]
		av = uint64(a[kk+3])
		acc0 += av * p[6]
		acc1 += av * p[7]
		av = uint64(a[kk+4])
		acc0 += av * p[8]
		acc1 += av * p[9]
		av = uint64(a[kk+5])
		acc0 += av * p[10]
		acc1 += av * p[11]
		av = uint64(a[kk+6])
		acc0 += av * p[12]
		acc1 += av * p[13]
		av = uint64(a[kk+7])
		acc0 += av * p[14]
		acc1 += av * p[15]
	}
	for ; kk < k; kk++ {
		av := uint64(a[kk])
		acc0 += av * panel[kk*2]
		acc1 += av * panel[kk*2+1]
	}
	int8Store(c, w, add, adj, corr, r, cs,
		uint32(acc0), uint32(acc0>>32), uint32(acc1), uint32(acc1>>32))
}

// int8RowRange runs the integer driver over output rows [lo, hi): panels
// outermost (each panel's full-k slab is the hot operand across the row
// sweep), then packMR row blocks with a 1-row tail. No k-blocking — the
// integer accumulator is exact at any depth within int8MaxK. radj/corr are
// the precomputed per-row and per-column unbias corrections (k·16384 folded
// into exactly one of them by the drivers).
func int8RowRange(out []float32, qa []uint8, panels []uint64, radj, corr []int64, rs, cs []float32, k, n, lo, hi int, accum bool) {
	np := (n + packNR - 1) / packNR
	for p := 0; p < np; p++ {
		panel := panels[p*k*2 : (p+1)*k*2]
		j0 := p * packNR
		w := min(packNR, n-j0)
		cb := corr[j0 : j0+w]
		var csp []float32
		if cs != nil {
			csp = cs[j0 : j0+w]
		}
		i := lo
		for ; i+packMR <= hi; i += packMR {
			int8Micro2x4(out[i*n+j0:], n, qa[i*k:], qa[(i+1)*k:], panel, k, w, accum,
				radj[i], radj[i+1], cb, rs[i], rs[i+1], csp)
		}
		for ; i < hi; i++ {
			int8Micro1x4(out[i*n+j0:], qa[i*k:], panel, k, w, accum, radj[i], cb, rs[i], csp)
		}
	}
}

// int8Task is the pooled parallel.Runner. quantA marks the dense path,
// where each worker first quantizes exactly the A rows it owns (disjoint
// qa/sums/rs writes); the conv path pre-quantizes B once in the caller.
type int8Task struct {
	out, a     []float32
	qa         []uint8
	panels     []uint64
	radj, corr []int64
	rs, cs     []float32
	k, n       int
	accum      bool
	quantA     bool
	ep         RowEpilogue
}

var int8TaskPool = sync.Pool{New: func() any { return new(int8Task) }}

// Run implements parallel.Runner on a row range of the output.
func (t *int8Task) Run(_, lo, hi int) {
	if t.quantA {
		quantizeRows(t.qa, t.radj, t.rs, t.a, lo, hi, t.k)
	}
	int8RowRange(t.out, t.qa, t.panels, t.radj, t.corr, t.rs, t.cs, t.k, t.n, lo, hi, t.accum)
	if t.ep != nil {
		applyEpilogue(t.ep, t.out, t.n, lo, hi)
	}
}

// matMulInt8B is the dense (weights-as-B) int8 driver: out[m,n] (+)=
// a[m,k] @ W with A quantized per row per call and W's lane-packed panels,
// column corrections (k·16384 included), and column scales taken from the
// version-stationary handle.
func matMulInt8B(par int, out, a []float32, pw *PackedWeights, m int, accum bool, ep RowEpilogue) {
	k, n := pw.k, pw.n
	if k > int8MaxK {
		panic(fmt.Sprintf("tensor: int8 reduction depth %d exceeds %d", k, int8MaxK))
	}
	s := getInt8Scratch(m*k, 0, 0, m, m)
	t := int8TaskPool.Get().(*int8Task)
	*t = int8Task{out: out, a: a, qa: s.q, panels: pw.qpanels, radj: s.adj, corr: pw.qcorr,
		rs: s.rs, cs: pw.scales, k: k, n: n, accum: accum, quantA: true, ep: ep}
	parallel.Run(par, m, mmGrain(k, n), t)
	*t = int8Task{} // drop slice references before pooling
	int8TaskPool.Put(t)
	putInt8Scratch(s)
}

// matMulInt8A is the conv (weights-as-A) int8 driver: out[rows,n] (+)=
// W[rowOff:rowOff+rows] @ b with b (the im2col matrix) quantized per tensor
// per call and W's biased rows, row corrections, and row scales taken from
// the handle. The per-tensor b scale folds into the per-row dequant factor,
// so the store's column scale is uniform (cs == nil); k·16384 rides on the
// per-column corrections computed here.
func matMulInt8A(par int, out []float32, pw *PackedWeights, rowOff, rows int, b []float32, n int, accum bool, ep RowEpilogue) {
	k := pw.k
	if k > int8MaxK {
		panic(fmt.Sprintf("tensor: int8 reduction depth %d exceeds %d", k, int8MaxK))
	}
	ma := maxAbsBits(b[:k*n])
	bScale := ma / 127
	np := (n + packNR - 1) / packNR
	s := getInt8Scratch(0, np*k*2, n, n, rows)
	quantPackB(s.words, s.sums, b, k, n, quantInv(ma))
	kbase := int64(k) * int8Bias * int8Bias
	for j, cs := range s.sums {
		s.adj[j] = kbase - int8Bias*int64(cs)
	}
	for i := 0; i < rows; i++ {
		s.rs[i] = pw.scales[rowOff+i] * bScale
	}
	t := int8TaskPool.Get().(*int8Task)
	*t = int8Task{out: out, qa: pw.qrows[rowOff*k : (rowOff+rows)*k], panels: s.words,
		radj: pw.qcorr[rowOff : rowOff+rows], corr: s.adj,
		rs: s.rs, k: k, n: n, accum: accum, ep: ep}
	parallel.Run(par, rows, mmGrain(k, n), t)
	*t = int8Task{}
	int8TaskPool.Put(t)
	putInt8Scratch(s)
}
