package faults

import (
	"math"
	"strings"
	"testing"
)

func TestParseSpecRoundTrip(t *testing.T) {
	specs := []string{
		"crash:0.1",
		"flaky:0.2,2",
		"corrupt:0.05,nan",
		"corrupt:0.5,mix",
		"churn:40,0.6",
		"crash:0.1+flaky:0.2,2+corrupt:0.05,mix+churn:40,0.6",
		"crash:1+corrupt:1,blowup",
		"flaky:0.25,5+churn:10,0.5",
	}
	for _, spec := range specs {
		m, err := ParseSpec(spec, 7)
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", spec, err)
		}
		if m == nil {
			t.Fatalf("ParseSpec(%q) = nil model", spec)
		}
		if got := m.String(); got != spec {
			t.Errorf("ParseSpec(%q).String() = %q", spec, got)
		}
		m2, err := ParseSpec(m.String(), 7)
		if err != nil {
			t.Fatalf("re-parse %q: %v", m.String(), err)
		}
		if *m2 != *m {
			t.Errorf("round trip %q: %+v != %+v", spec, m2, m)
		}
	}
}

func TestParseSpecEmpty(t *testing.T) {
	for _, spec := range []string{"", "none", "  none  "} {
		m, err := ParseSpec(spec, 3)
		if err != nil || m != nil {
			t.Errorf("ParseSpec(%q) = %v, %v; want nil, nil", spec, m, err)
		}
		if m.Enabled() || m.NeedsVirtualTime() || m.NeedsTimeout() {
			t.Errorf("nil model reports faults enabled")
		}
		if m.FailCount(1, 2) != 0 || m.Corruption(1, 2) != None || !m.Available(1, 5) {
			t.Errorf("nil model injects faults")
		}
	}
}

func TestParseSpecErrors(t *testing.T) {
	cases := []struct {
		spec, wantSub string
	}{
		{"crash", "crash:P"},
		{"crash:0", "probability in (0,1]"},
		{"crash:1.5", "probability in (0,1]"},
		{"crash:nan", "probability in (0,1]"},
		{"crash:0.2,3", "crash:P"},
		{"crash:xyz", "invalid syntax"},
		{"flaky:0.5", "flaky:P,R"},
		{"flaky:0.5,0", "flaky:P,R"},
		{"flaky:0.5,1.5", "flaky:P,R"},
		{"flaky:2,1", "probability in (0,1]"},
		{"corrupt:0.5", "corrupt:P,MODE"},
		{"corrupt:0.5,bogus", "unknown corruption mode"},
		{"corrupt:nan,0.5", "probability in (0,1]"},
		{"churn:40", "churn:PERIOD,ONFRAC"},
		{"churn:0,0.5", "churn:PERIOD,ONFRAC"},
		{"churn:40,1", "churn:PERIOD,ONFRAC"},
		{"churn:40,0", "churn:PERIOD,ONFRAC"},
		{"crash:0.1+crash:0.2", "repeats clause"},
		{"meteor:0.5", "unknown clause"},
	}
	for _, c := range cases {
		m, err := ParseSpec(c.spec, 1)
		if err == nil {
			t.Errorf("ParseSpec(%q) = %+v; want error", c.spec, m)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParseSpec(%q) error %q; want substring %q", c.spec, err, c.wantSub)
		}
	}
}

func TestDrawsAreDeterministicAndSeedSensitive(t *testing.T) {
	a, err := ParseSpec("crash:0.3+flaky:0.3,2+corrupt:0.4,mix+churn:20,0.5", 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := ParseSpec(a.String(), 42)
	c, _ := ParseSpec(a.String(), 43)
	differs := false
	for client := 0; client < 8; client++ {
		for job := 0; job < 32; job++ {
			if a.FailCount(client, job) != b.FailCount(client, job) ||
				a.Corruption(client, job) != b.Corruption(client, job) {
				t.Fatalf("same-seed draws differ at client=%d job=%d", client, job)
			}
			if a.FailCount(client, job) != c.FailCount(client, job) ||
				a.Corruption(client, job) != c.Corruption(client, job) {
				differs = true
			}
		}
		for step := 0; step < 16; step++ {
			tm := float64(step) * 3.7
			if a.Available(client, tm) != b.Available(client, tm) {
				t.Fatalf("same-seed availability differs at client=%d t=%g", client, tm)
			}
		}
	}
	if !differs {
		t.Errorf("seeds 42 and 43 produced identical draw streams")
	}
}

func TestFailCountSemantics(t *testing.T) {
	crash := &Model{Seed: 9, CrashP: 1}
	if got := crash.FailCount(3, 5); got != Forever {
		t.Errorf("CrashP=1 FailCount = %d; want Forever", got)
	}
	flaky := &Model{Seed: 9, FlakyP: 1, FlakyRetries: 3}
	if got := flaky.FailCount(3, 5); got != 3 {
		t.Errorf("FlakyP=1,R=3 FailCount = %d; want 3", got)
	}
	healthy := &Model{Seed: 9, CorruptP: 1, CorruptMode: NaN}
	if got := healthy.FailCount(3, 5); got != 0 {
		t.Errorf("corruption-only FailCount = %d; want 0", got)
	}
	// Crash dominates flaky: with both at p=1 the job crashes.
	both := &Model{Seed: 9, CrashP: 1, FlakyP: 1, FlakyRetries: 2}
	if got := both.FailCount(3, 5); got != Forever {
		t.Errorf("crash+flaky FailCount = %d; want Forever", got)
	}
}

func TestCorruptionModes(t *testing.T) {
	for _, mode := range []Mode{NaN, Inf, Blowup} {
		m := &Model{Seed: 4, CorruptP: 1, CorruptMode: mode}
		if got := m.Corruption(2, 7); got != mode {
			t.Errorf("CorruptP=1 mode %v drew %v", mode, got)
		}
	}
	// Mix resolves to a concrete mode and, across enough jobs, hits all three.
	mix := &Model{Seed: 4, CorruptP: 1, CorruptMode: Mix}
	seen := map[Mode]bool{}
	for job := 0; job < 64; job++ {
		got := mix.Corruption(2, job)
		if got != NaN && got != Inf && got != Blowup {
			t.Fatalf("Mix drew %v", got)
		}
		seen[got] = true
	}
	if len(seen) != 3 {
		t.Errorf("Mix over 64 jobs hit only %d modes", len(seen))
	}
	off := &Model{Seed: 4}
	if got := off.Corruption(2, 7); got != None {
		t.Errorf("CorruptP=0 drew %v", got)
	}
}

func TestChurnDutyCycle(t *testing.T) {
	m := &Model{Seed: 11, ChurnPeriod: 10, ChurnOn: 0.4}
	for client := 0; client < 6; client++ {
		// Sampled on-fraction over many periods approximates ChurnOn.
		on := 0
		const steps = 4000
		for i := 0; i < steps; i++ {
			if m.Available(client, float64(i)*0.25) {
				on++
			}
		}
		frac := float64(on) / steps
		if math.Abs(frac-0.4) > 0.05 {
			t.Errorf("client %d on-fraction %.3f; want ~0.4", client, frac)
		}
		// NextOn lands on an available instant, never in the past, and is the
		// identity when already available.
		for i := 0; i < 100; i++ {
			tm := float64(i) * 0.77
			next := m.NextOn(client, tm)
			if next < tm {
				t.Fatalf("NextOn(%d, %g) = %g went backwards", client, tm, next)
			}
			if m.Available(client, tm) && next != tm {
				t.Fatalf("NextOn(%d, %g) = %g; want identity when available", client, tm, next)
			}
			if !m.Available(client, next) {
				t.Fatalf("NextOn(%d, %g) = %g is not available", client, tm, next)
			}
			if next > tm+m.ChurnPeriod {
				t.Fatalf("NextOn(%d, %g) = %g skipped a full period", client, tm, next)
			}
		}
	}
	// Phases differ across clients (the duty cycles are not in lockstep).
	if m.phase(0) == m.phase(1) && m.phase(1) == m.phase(2) {
		t.Errorf("churn phases identical across clients")
	}
}
