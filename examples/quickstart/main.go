// Quickstart: build a small federated workload over the nine simulated
// devices, train FedAvg and HeteroSwitch for a few rounds, and compare
// per-device accuracy — the library's one-screen tour.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"heteroswitch/internal/core"
	"heteroswitch/internal/dataset"
	"heteroswitch/internal/experiments"
	"heteroswitch/internal/fl"
	"heteroswitch/internal/metrics"
)

func main() {
	opts := experiments.DefaultOptions()
	opts.Seed = 7

	// 1. Workload: shared scenes photographed by all nine Table-1 devices.
	fmt.Println("capturing scenes with 9 simulated devices...")
	dd, err := experiments.BuildDeviceData(opts, 6, 3, dataset.ModeProcessed)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A federated population whose device mix follows market share.
	cfg := fl.Config{
		Rounds:          40,
		ClientsPerRound: 10,
		BatchSize:       10,
		LocalEpochs:     1,
		LR:              0.1,
		Seed:            opts.Seed,
		Workers:         opts.Workers,
	}
	counts := experiments.MarketShareCounts(dd, 30)
	builder := experiments.SimpleCNNBuilder(opts.Seed, dd.Classes)

	// 3. Train FedAvg (baseline) and HeteroSwitch (the paper's method).
	for _, strat := range []fl.Strategy{fl.FedAvg{}, core.New()} {
		srv, err := experiments.RunFL(opts, strat, dd, counts, cfg, builder)
		if err != nil {
			log.Fatal(err)
		}
		net := srv.GlobalNet()
		acc := experiments.PerDeviceAccuracies(net, dd, 16)
		var pcts []float64
		fmt.Printf("\n%s:\n", strat.Name())
		for i, p := range dd.Profiles {
			fmt.Printf("  %-8s %5.1f%%\n", p.Name, acc[i]*100)
			pcts = append(pcts, acc[i]*100)
		}
		fmt.Printf("  mean %.1f%%  worst %.1f%%  variance %.2f pp²\n",
			metrics.Mean(pcts), metrics.Worst(pcts), metrics.Variance(pcts))
	}
}
