package tensor

import (
	"fmt"
	"testing"

	"heteroswitch/internal/frand"
)

// The parallel kernels promise BIT-identical results to the serial kernels
// at every budget: row partitioning never splits a single output element's
// accumulation, so not even float rounding may differ. Every comparison here
// is exact equality, across shapes chosen to produce ragged partitions (M
// and N not multiples of the tile width, the worker count, or each other)
// and budgets from serial to beyond the machine.

var parShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{3, 5, 7},
	{8, 64, 128},
	{13, 17, 19},
	{31, 64, 67},   // grain-sized rows, odd n
	{65, 64, 67},   // > one tile of ragged rows
	{65, 33, 129},  // everything odd
	{128, 96, 100}, // big enough that every budget actually splits
}

var parBudgets = []int{1, 2, 3, 4, 8, 16}

func exactEqual(t *testing.T, name string, got, want []float32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d differs: %v != %v (must be bit-identical)", name, i, got[i], want[i])
		}
	}
}

// TestMatMulIntoPBitIdentical covers out = a @ b.
func TestMatMulIntoPBitIdentical(t *testing.T) {
	r := frand.New(21)
	for _, sz := range parShapes {
		a := Randn(r, 1, sz.m, sz.k)
		b := Randn(r, 1, sz.k, sz.n)
		want := New(sz.m, sz.n)
		MatMulInto(want, a, b)
		for _, par := range parBudgets {
			got := Randn(r, 1, sz.m, sz.n) // junk, must be fully overwritten
			MatMulIntoP(par, got, a, b)
			exactEqual(t, fmt.Sprintf("MatMulIntoP(%d) %dx%dx%d", par, sz.m, sz.k, sz.n),
				got.Data(), want.Data())
		}
	}
}

// TestMatMulTransBIntoPBitIdentical covers out = a @ bᵀ and the accumulating
// slice form out += a @ bᵀ.
func TestMatMulTransBIntoPBitIdentical(t *testing.T) {
	r := frand.New(22)
	for _, sz := range parShapes {
		a := Randn(r, 1, sz.m, sz.k)
		b := Randn(r, 1, sz.n, sz.k)
		want := New(sz.m, sz.n)
		MatMulTransBInto(want, a, b)
		base := Randn(r, 1, sz.m, sz.n)
		wantAcc := base.Clone()
		MatMulTransBAccSlices(wantAcc.Data(), a.Data(), b.Data(), sz.m, sz.k, sz.n)
		for _, par := range parBudgets {
			got := Randn(r, 1, sz.m, sz.n)
			MatMulTransBIntoP(par, got, a, b)
			exactEqual(t, fmt.Sprintf("MatMulTransBIntoP(%d) %dx%dx%d", par, sz.m, sz.k, sz.n),
				got.Data(), want.Data())

			gotAcc := base.Clone()
			MatMulTransBAccSlicesP(par, gotAcc.Data(), a.Data(), b.Data(), sz.m, sz.k, sz.n)
			exactEqual(t, fmt.Sprintf("MatMulTransBAccSlicesP(%d) %dx%dx%d", par, sz.m, sz.k, sz.n),
				gotAcc.Data(), wantAcc.Data())
		}
	}
}

// TestMatMulTransAAccPBitIdentical covers out += aᵀ @ b (the weight-gradient
// kernel), whose parallel dimension is the result's rows (a's columns).
func TestMatMulTransAAccPBitIdentical(t *testing.T) {
	r := frand.New(23)
	for _, sz := range parShapes {
		a := Randn(r, 1, sz.k, sz.m)
		b := Randn(r, 1, sz.k, sz.n)
		base := Randn(r, 1, sz.m, sz.n)
		want := base.Clone()
		MatMulTransAAccInto(want, a, b)
		for _, par := range parBudgets {
			got := base.Clone()
			MatMulTransAAccIntoP(par, got, a, b)
			exactEqual(t, fmt.Sprintf("MatMulTransAAccIntoP(%d) %dx%dx%d", par, sz.m, sz.k, sz.n),
				got.Data(), want.Data())

			gotS := base.Clone()
			MatMulTransAAccSlicesP(par, gotS.Data(), a.Data(), b.Data(), sz.k, sz.m, sz.n)
			exactEqual(t, fmt.Sprintf("MatMulTransAAccSlicesP(%d) %dx%dx%d", par, sz.m, sz.k, sz.n),
				gotS.Data(), want.Data())
		}
	}
}

// TestMatMulSlicesPBitIdentical covers the header-free entry point the conv
// lowering uses.
func TestMatMulSlicesPBitIdentical(t *testing.T) {
	r := frand.New(24)
	for _, sz := range parShapes {
		a := Randn(r, 1, sz.m, sz.k)
		b := Randn(r, 1, sz.k, sz.n)
		want := make([]float32, sz.m*sz.n)
		MatMulSlices(want, a.Data(), b.Data(), sz.m, sz.k, sz.n)
		for _, par := range parBudgets {
			got := Randn(r, 1, sz.m, sz.n)
			MatMulSlicesP(par, got.Data(), a.Data(), b.Data(), sz.m, sz.k, sz.n)
			exactEqual(t, fmt.Sprintf("MatMulSlicesP(%d) %dx%dx%d", par, sz.m, sz.k, sz.n),
				got.Data(), want)
		}
	}
}

// TestMatMulPZeroAllocSteadyState verifies the parallel dispatch path
// allocates nothing once warm — the kernels must be safe on the
// zero-allocation training hot path.
func TestMatMulPZeroAllocSteadyState(t *testing.T) {
	r := frand.New(25)
	a := Randn(r, 1, 128, 96)
	b := Randn(r, 1, 96, 100)
	out := New(128, 100)
	MatMulIntoP(4, out, a, b) // warm pool + task pools
	allocs := testing.AllocsPerRun(20, func() {
		MatMulIntoP(4, out, a, b)
	})
	if allocs != 0 {
		t.Fatalf("MatMulIntoP steady state allocates %.1f/op, want 0", allocs)
	}
}

// BenchmarkMatMulParallel extends BenchmarkMatMul with the intra-op
// dimension: the same kernels at budgets 1/2/4/8 on kernel-sized and
// larger-than-cache matrices.
func BenchmarkMatMulParallel(b *testing.B) {
	r := frand.New(12)
	for _, sz := range []struct{ m, k, n int }{{64, 64, 64}, {128, 128, 128}, {256, 256, 256}} {
		a := Randn(r, 1, sz.m, sz.k)
		bb := Randn(r, 1, sz.k, sz.n)
		bt := Randn(r, 1, sz.n, sz.k)
		at := Randn(r, 1, sz.k, sz.m)
		out := New(sz.m, sz.n)
		for _, par := range []int{1, 2, 4, 8} {
			name := func(op string) string {
				return fmt.Sprintf("%s/%dx%dx%d/par=%d", op, sz.m, sz.k, sz.n, par)
			}
			b.Run(name("Into"), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					MatMulIntoP(par, out, a, bb)
				}
			})
			b.Run(name("TransBInto"), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					MatMulTransBIntoP(par, out, a, bt)
				}
			})
			b.Run(name("TransAAccInto"), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					MatMulTransAAccIntoP(par, out, at, bb)
				}
			})
		}
	}
}
