// Package isp implements the six-stage image signal processing pipeline the
// paper characterizes (Table 3): demosaicing, denoising, white balance,
// gamut mapping, tone transformation, and JPEG compression, each with the
// paper's Baseline / Option 1 / Option 2 algorithm variants.
//
// Images are float64 interleaved RGB with nominal range [0,1]; RAW frames
// are single-plane Bayer mosaics. Working in linear float keeps the stage
// implementations faithful to real ISP math and leaves quantization effects
// to the sensor model and the JPEG stage.
package isp

import (
	"fmt"
	"image"
	"image/color"
	"math"

	"heteroswitch/internal/tensor"
)

// Image is an interleaved RGB float image. Pixel (x, y) channel c lives at
// Pix[(y*W+x)*3+c]. Values are nominally in [0,1] but stages may transiently
// exceed that range; Clamp restores it.
type Image struct {
	W, H int
	Pix  []float64
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]float64, w*h*3)}
}

// Clone deep-copies the image.
func (im *Image) Clone() *Image {
	c := &Image{W: im.W, H: im.H, Pix: make([]float64, len(im.Pix))}
	copy(c.Pix, im.Pix)
	return c
}

// At returns channel c of pixel (x, y).
func (im *Image) At(x, y, c int) float64 { return im.Pix[(y*im.W+x)*3+c] }

// Set writes channel c of pixel (x, y).
func (im *Image) Set(x, y, c int, v float64) { im.Pix[(y*im.W+x)*3+c] = v }

// Clamp limits all values into [0, 1].
func (im *Image) Clamp() {
	for i, v := range im.Pix {
		if v < 0 {
			im.Pix[i] = 0
		} else if v > 1 {
			im.Pix[i] = 1
		}
	}
}

// ChannelMeans returns the per-channel means (used by gray-world WB and by
// tests asserting color-cast behaviour).
func (im *Image) ChannelMeans() [3]float64 {
	var sums [3]float64
	n := im.W * im.H
	for i := 0; i < n; i++ {
		for c := 0; c < 3; c++ {
			sums[c] += im.Pix[i*3+c]
		}
	}
	for c := range sums {
		sums[c] /= float64(n)
	}
	return sums
}

// Luma returns the Rec.601 luma of pixel index i.
func (im *Image) Luma(i int) float64 {
	return 0.299*im.Pix[i*3] + 0.587*im.Pix[i*3+1] + 0.114*im.Pix[i*3+2]
}

// ToTensor converts the image to a [3, H, W] CHW tensor.
func (im *Image) ToTensor() *tensor.Tensor {
	t := tensor.New(3, im.H, im.W)
	d := t.Data()
	hw := im.W * im.H
	for i := 0; i < hw; i++ {
		for c := 0; c < 3; c++ {
			d[c*hw+i] = float32(im.Pix[i*3+c])
		}
	}
	return t
}

// FromTensor converts a [3, H, W] tensor back into an Image.
func FromTensor(t *tensor.Tensor) (*Image, error) {
	if t.NDim() != 3 || t.Dim(0) != 3 {
		return nil, fmt.Errorf("isp: FromTensor wants [3 H W], have %v", t.Shape())
	}
	h, w := t.Dim(1), t.Dim(2)
	im := NewImage(w, h)
	d := t.Data()
	hw := w * h
	for i := 0; i < hw; i++ {
		for c := 0; c < 3; c++ {
			im.Pix[i*3+c] = float64(d[c*hw+i])
		}
	}
	return im, nil
}

// ToNRGBA converts to an 8-bit standard-library image (values clamped).
func (im *Image) ToNRGBA() *image.NRGBA {
	out := image.NewNRGBA(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			i := (y*im.W + x) * 3
			out.SetNRGBA(x, y, color.NRGBA{
				R: to8(im.Pix[i]),
				G: to8(im.Pix[i+1]),
				B: to8(im.Pix[i+2]),
				A: 255,
			})
		}
	}
	return out
}

// FromGoImage converts any stdlib image into a float Image.
func FromGoImage(src image.Image) *Image {
	b := src.Bounds()
	im := NewImage(b.Dx(), b.Dy())
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, bl, _ := src.At(b.Min.X+x, b.Min.Y+y).RGBA()
			i := (y*im.W + x) * 3
			im.Pix[i] = float64(r) / 65535
			im.Pix[i+1] = float64(g) / 65535
			im.Pix[i+2] = float64(bl) / 65535
		}
	}
	return im
}

func to8(v float64) uint8 {
	v = math.Round(v * 255)
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// Resize bilinearly resamples the image to (w, h).
func (im *Image) Resize(w, h int) *Image {
	if w == im.W && h == im.H {
		return im.Clone()
	}
	out := NewImage(w, h)
	sx := float64(im.W) / float64(w)
	sy := float64(im.H) / float64(h)
	for y := 0; y < h; y++ {
		fy := (float64(y)+0.5)*sy - 0.5
		y0 := int(math.Floor(fy))
		ty := fy - float64(y0)
		y1 := y0 + 1
		y0 = clampInt(y0, 0, im.H-1)
		y1 = clampInt(y1, 0, im.H-1)
		for x := 0; x < w; x++ {
			fx := (float64(x)+0.5)*sx - 0.5
			x0 := int(math.Floor(fx))
			tx := fx - float64(x0)
			x1 := x0 + 1
			x0 = clampInt(x0, 0, im.W-1)
			x1 = clampInt(x1, 0, im.W-1)
			for c := 0; c < 3; c++ {
				v00 := im.At(x0, y0, c)
				v10 := im.At(x1, y0, c)
				v01 := im.At(x0, y1, c)
				v11 := im.At(x1, y1, c)
				top := v00 + (v10-v00)*tx
				bot := v01 + (v11-v01)*tx
				out.Set(x, y, c, top+(bot-top)*ty)
			}
		}
	}
	return out
}

// MSE returns the mean squared error between two same-sized images.
func (im *Image) MSE(o *Image) float64 {
	if len(im.Pix) != len(o.Pix) {
		panic("isp: MSE size mismatch")
	}
	var s float64
	for i := range im.Pix {
		d := im.Pix[i] - o.Pix[i]
		s += d * d
	}
	return s / float64(len(im.Pix))
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
