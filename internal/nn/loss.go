package nn

import (
	"fmt"
	"math"

	"heteroswitch/internal/tensor"
)

// Loss computes a scalar training loss and the gradient of that loss with
// respect to the network's output (logits/predictions).
type Loss interface {
	// Eval returns the mean loss over the batch and dL/d(pred).
	Eval(pred *tensor.Tensor, target Target) (float64, *tensor.Tensor)
	Name() string
}

// LossInto is an optional Loss capability: losses that can write their
// gradient into a caller-provided buffer implement it, so training loops can
// reuse one per-batch gradient tensor (e.g. from an arena) instead of
// allocating a fresh one per Eval. All losses in this package implement it;
// Eval is a convenience wrapper. EvalInto overwrites every element of grad,
// which must have pred's shape.
type LossInto interface {
	Loss
	EvalInto(grad, pred *tensor.Tensor, target Target) float64
}

// LossValuer is an optional Loss capability for pure-inference consumers:
// EvalValue returns the scalar loss without computing or materializing the
// gradient at all. The value is computed with the same floating-point
// operations, in the same order, as EvalInto's loss accumulation, so routing
// an eval loop through EvalValue is bit-identical to the gradient path —
// just cheaper. All losses in this package implement it.
type LossValuer interface {
	Loss
	EvalValue(pred *tensor.Tensor, target Target) float64
}

// LossValue evaluates the scalar loss by the cheapest route the loss
// supports: the value-only path when available, otherwise EvalInto into the
// caller's scratch gradient buffer (which must have pred's shape and is
// ignored on the value-only path), otherwise plain Eval.
func LossValue(loss Loss, grad func() *tensor.Tensor, pred *tensor.Tensor, target Target) float64 {
	if lv, ok := loss.(LossValuer); ok {
		return lv.EvalValue(pred, target)
	}
	if li, ok := loss.(LossInto); ok {
		return li.EvalInto(grad(), pred, target)
	}
	l, _ := loss.Eval(pred, target)
	return l
}

// Target carries either class indices (single-label), a dense matrix
// (multi-label / regression), whichever the loss expects.
type Target struct {
	Classes []int          // single-label classification
	Dense   *tensor.Tensor // multi-label {0,1} matrix or regression targets
}

// ClassTarget wraps class indices as a Target.
func ClassTarget(classes []int) Target { return Target{Classes: classes} }

// DenseTarget wraps a dense tensor as a Target.
func DenseTarget(t *tensor.Tensor) Target { return Target{Dense: t} }

// SoftmaxCrossEntropy is the standard multi-class classification loss. Eval
// expects logits [N, C] and Target.Classes of length N.
type SoftmaxCrossEntropy struct{}

// Eval implements Loss. The gradient is (softmax - onehot)/N.
func (l SoftmaxCrossEntropy) Eval(logits *tensor.Tensor, target Target) (float64, *tensor.Tensor) {
	grad := tensor.New(logits.Shape()...)
	return l.EvalInto(grad, logits, target), grad
}

// EvalInto implements LossInto.
func (SoftmaxCrossEntropy) EvalInto(grad, logits *tensor.Tensor, target Target) float64 {
	if logits.NDim() != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy logits %v", logits.Shape()))
	}
	n, c := logits.Dim(0), logits.Dim(1)
	if len(target.Classes) != n {
		panic(fmt.Sprintf("nn: %d labels for %d logits rows", len(target.Classes), n))
	}
	if !grad.SameShape(logits) {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy grad buffer %v, want %v", grad.Shape(), logits.Shape()))
	}
	ld, gd := logits.Data(), grad.Data()
	var loss float64
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		row := ld[i*c : (i+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logSum := math.Log(sum)
		y := target.Classes[i]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, c))
		}
		loss += -(float64(row[y]-maxv) - logSum) * invN
		gRow := gd[i*c : (i+1)*c]
		for j, v := range row {
			p := math.Exp(float64(v-maxv)) / sum
			gRow[j] = float32(p * invN)
		}
		gRow[y] -= float32(invN)
	}
	return loss
}

// EvalValue implements LossValuer: EvalInto's loss accumulation with the
// per-element softmax-gradient loop elided.
func (SoftmaxCrossEntropy) EvalValue(logits *tensor.Tensor, target Target) float64 {
	if logits.NDim() != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy logits %v", logits.Shape()))
	}
	n, c := logits.Dim(0), logits.Dim(1)
	if len(target.Classes) != n {
		panic(fmt.Sprintf("nn: %d labels for %d logits rows", len(target.Classes), n))
	}
	ld := logits.Data()
	var loss float64
	invN := 1 / float64(n)
	for i := 0; i < n; i++ {
		row := ld[i*c : (i+1)*c]
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - maxv))
		}
		logSum := math.Log(sum)
		y := target.Classes[i]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, c))
		}
		loss += -(float64(row[y]-maxv) - logSum) * invN
	}
	return loss
}

// Name implements Loss.
func (SoftmaxCrossEntropy) Name() string { return "SoftmaxCrossEntropy" }

// BCEWithLogits is the multi-label classification loss: an independent
// sigmoid cross-entropy per class, averaged over batch and classes. Eval
// expects logits [N, C] and Target.Dense [N, C] with entries in {0,1}.
type BCEWithLogits struct{}

// Eval implements Loss.
func (l BCEWithLogits) Eval(logits *tensor.Tensor, target Target) (float64, *tensor.Tensor) {
	grad := tensor.New(logits.Shape()...)
	return l.EvalInto(grad, logits, target), grad
}

// EvalInto implements LossInto.
func (BCEWithLogits) EvalInto(grad, logits *tensor.Tensor, target Target) float64 {
	if target.Dense == nil || !logits.SameShape(target.Dense) {
		panic("nn: BCEWithLogits needs dense targets matching logits shape")
	}
	if !grad.SameShape(logits) {
		panic(fmt.Sprintf("nn: BCEWithLogits grad buffer %v, want %v", grad.Shape(), logits.Shape()))
	}
	ld, td, gd := logits.Data(), target.Dense.Data(), grad.Data()
	var loss float64
	invM := 1 / float64(len(ld))
	for i, z := range ld {
		t := float64(td[i])
		zf := float64(z)
		// numerically stable: log(1+e^-|z|) + max(z,0) - z*t
		loss += (math.Max(zf, 0) - zf*t + math.Log1p(math.Exp(-math.Abs(zf)))) * invM
		p := sigmoid64(zf)
		gd[i] = float32((p - t) * invM)
	}
	return loss
}

// EvalValue implements LossValuer: EvalInto's loss accumulation without the
// sigmoid-gradient writes.
func (BCEWithLogits) EvalValue(logits *tensor.Tensor, target Target) float64 {
	if target.Dense == nil || !logits.SameShape(target.Dense) {
		panic("nn: BCEWithLogits needs dense targets matching logits shape")
	}
	ld, td := logits.Data(), target.Dense.Data()
	var loss float64
	invM := 1 / float64(len(ld))
	for i, z := range ld {
		t := float64(td[i])
		zf := float64(z)
		loss += (math.Max(zf, 0) - zf*t + math.Log1p(math.Exp(-math.Abs(zf)))) * invM
	}
	return loss
}

// Name implements Loss.
func (BCEWithLogits) Name() string { return "BCEWithLogits" }

// MSE is the mean squared error regression loss. Eval expects predictions
// [N, D] and Target.Dense [N, D].
type MSE struct{}

// Eval implements Loss.
func (l MSE) Eval(pred *tensor.Tensor, target Target) (float64, *tensor.Tensor) {
	grad := tensor.New(pred.Shape()...)
	return l.EvalInto(grad, pred, target), grad
}

// EvalInto implements LossInto.
func (MSE) EvalInto(grad, pred *tensor.Tensor, target Target) float64 {
	if target.Dense == nil || pred.Size() != target.Dense.Size() {
		panic("nn: MSE needs dense targets matching prediction size")
	}
	if grad.Size() != pred.Size() {
		panic("nn: MSE grad buffer size mismatch")
	}
	pd, td, gd := pred.Data(), target.Dense.Data(), grad.Data()
	var loss float64
	invM := 1 / float64(len(pd))
	for i := range pd {
		d := float64(pd[i]) - float64(td[i])
		loss += d * d * invM
		gd[i] = float32(2 * d * invM)
	}
	return loss
}

// EvalValue implements LossValuer: EvalInto's loss accumulation without the
// residual-gradient writes.
func (MSE) EvalValue(pred *tensor.Tensor, target Target) float64 {
	if target.Dense == nil || pred.Size() != target.Dense.Size() {
		panic("nn: MSE needs dense targets matching prediction size")
	}
	pd, td := pred.Data(), target.Dense.Data()
	var loss float64
	invM := 1 / float64(len(pd))
	for i := range pd {
		d := float64(pd[i]) - float64(td[i])
		loss += d * d * invM
	}
	return loss
}

// Name implements Loss.
func (MSE) Name() string { return "MSE" }

// interface conformance checks
var (
	_ LossInto   = SoftmaxCrossEntropy{}
	_ LossInto   = BCEWithLogits{}
	_ LossInto   = MSE{}
	_ LossValuer = SoftmaxCrossEntropy{}
	_ LossValuer = BCEWithLogits{}
	_ LossValuer = MSE{}
)
