// Package device defines the nine smartphone camera profiles of the paper's
// Table 1 (three vendors × three performance tiers, with market shares) plus
// generators for unseen and long-tail device types.
//
// A Profile is the composition of a camera.Sensor (HW) and an isp.Pipeline
// (SW) together with vendor-specific rendering preferences (tone and
// saturation tuning). Capturing the SAME latent scene through different
// profiles is precisely the paper's controlled data-collection setup: all
// remaining variation is system-induced.
package device

import (
	"fmt"

	"heteroswitch/internal/camera"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/isp"
)

// Tier is a device performance class.
type Tier string

// Performance tiers from Table 1.
const (
	TierHigh Tier = "H"
	TierMid  Tier = "M"
	TierLow  Tier = "L"
)

// Vendor identifies a device maker.
type Vendor string

// Vendors from Table 1.
const (
	VendorSamsung Vendor = "Samsung"
	VendorLG      Vendor = "LG"
	VendorGoogle  Vendor = "Google"
)

// Profile is one device type: sensor hardware, ISP software, vendor
// rendering preferences, and FL participation weight.
type Profile struct {
	Name        string
	Vendor      Vendor
	Tier        Tier
	MarketShare float64 // fraction of FL population (Table 1 percentages)

	Sensor camera.Sensor
	ISP    isp.Pipeline

	// Vendor rendering tuning applied after the ISP pipeline: an extra tone
	// gamma (<1 brightens/adds contrast pop, >1 flattens) and a saturation
	// factor around Rec.601 luma.
	ToneGamma  float64
	Saturation float64
}

// String implements fmt.Stringer.
func (p *Profile) String() string {
	return fmt.Sprintf("%s(%s/%s, %.0f%%)", p.Name, p.Vendor, p.Tier, p.MarketShare*100)
}

// CaptureProcessed photographs a scene and develops it with the device's own
// ISP and vendor tuning — what the stock camera app would save.
func (p *Profile) CaptureProcessed(scene *isp.Image, rng *frand.RNG) (*isp.Image, error) {
	raw, err := p.Sensor.Capture(scene, rng)
	if err != nil {
		return nil, fmt.Errorf("device %s: %w", p.Name, err)
	}
	im, err := p.ISP.Process(raw)
	if err != nil {
		return nil, fmt.Errorf("device %s: %w", p.Name, err)
	}
	return p.applyVendorTuning(im), nil
}

// CaptureWithPipeline photographs a scene but develops it with an arbitrary
// pipeline (no vendor tuning) — used by the ISP-stage ablation experiments.
func (p *Profile) CaptureWithPipeline(scene *isp.Image, pipe isp.Pipeline, rng *frand.RNG) (*isp.Image, error) {
	raw, err := p.Sensor.Capture(scene, rng)
	if err != nil {
		return nil, fmt.Errorf("device %s: %w", p.Name, err)
	}
	im, err := pipe.Process(raw)
	if err != nil {
		return nil, fmt.Errorf("device %s: %w", p.Name, err)
	}
	return im, nil
}

// CaptureRAW photographs a scene and returns the minimally-converted RAW
// rendition (bilinear demosaic only, no ISP) — the §3.3 condition.
func (p *Profile) CaptureRAW(scene *isp.Image, rng *frand.RNG) (*isp.Image, error) {
	raw, err := p.Sensor.Capture(scene, rng)
	if err != nil {
		return nil, fmt.Errorf("device %s: %w", p.Name, err)
	}
	return isp.ProcessRAWOnly(raw), nil
}

func (p *Profile) applyVendorTuning(im *isp.Image) *isp.Image {
	out := im
	if p.ToneGamma != 0 && p.ToneGamma != 1 {
		out = isp.ApplyGamma(out, p.ToneGamma)
	}
	if p.Saturation != 0 && p.Saturation != 1 {
		out = applySaturation(out, p.Saturation)
	}
	return out
}

func applySaturation(im *isp.Image, sat float64) *isp.Image {
	out := im.Clone()
	n := im.W * im.H
	for i := 0; i < n; i++ {
		l := im.Luma(i)
		for c := 0; c < 3; c++ {
			v := l + sat*(im.Pix[i*3+c]-l)
			if v < 0 {
				v = 0
			} else if v > 1 {
				v = 1
			}
			out.Pix[i*3+c] = v
		}
	}
	return out
}

// tierSensor builds a sensor for the given tier with vendor spectral traits.
// Newer/higher tiers have more resolution, better color separation, and less
// noise; the vendor sets the illuminant response direction.
func tierSensor(vendor Vendor, tier Tier) camera.Sensor {
	var gains [3]float64
	switch vendor {
	case VendorSamsung: // warm-leaning sensor stack
		gains = [3]float64{1.30, 1.0, 0.72}
	case VendorLG: // cool-leaning sensor stack
		gains = [3]float64{0.72, 1.0, 1.30}
	default: // Google: near-neutral
		gains = [3]float64{1.08, 1.0, 0.92}
	}
	s := camera.Sensor{
		Pattern:         isp.RGGB,
		IlluminantGains: gains,
		BlackLevel:      0.004,
	}
	switch tier {
	case TierHigh:
		s.Resolution = 64
		s.ColorMatrix = camera.CrosstalkMatrix(0.05)
		s.ShotNoise, s.ReadNoise = 0.010, 0.004
		s.Vignetting = 0.08
		s.BitDepth = 12
	case TierMid:
		s.Resolution = 48
		s.ColorMatrix = camera.CrosstalkMatrix(0.13)
		s.ShotNoise, s.ReadNoise = 0.025, 0.012
		s.Vignetting = 0.18
		s.BitDepth = 10
	default: // TierLow
		s.Resolution = 32
		s.ColorMatrix = camera.CrosstalkMatrix(0.22)
		s.ShotNoise, s.ReadNoise = 0.050, 0.025
		s.Vignetting = 0.35
		s.BitDepth = 10
	}
	return s
}

// Profiles returns the nine Table-1 device profiles in a fixed order:
// Pixel5, Pixel2, Nexus5X, VELVET, G7, G4, S22, S9, S6 (the column order of
// the paper's Table 2).
func Profiles() []*Profile {
	mk := func(name string, vendor Vendor, tier Tier, share float64,
		pipe isp.Pipeline, toneGamma, saturation float64) *Profile {
		return &Profile{
			Name: name, Vendor: vendor, Tier: tier, MarketShare: share,
			Sensor: tierSensor(vendor, tier), ISP: pipe,
			ToneGamma: toneGamma, Saturation: saturation,
		}
	}
	base := isp.Baseline()

	// Google: computational photography — AHD demosaic, strong tone mapping,
	// nearly identical processing between Pixel generations (the paper
	// observes Pixel5/Pixel2 are each other's closest pair).
	pixel := base
	pixel.Demosaic = isp.DemosaicAHD
	pixel.Tone = isp.ToneSRGBGammaEq

	nexus := base
	nexus.Denoise = isp.DenoiseNone
	nexus.Compress = isp.CompressJPEG50

	// LG: wavelet denoising; G-series uses white-patch WB.
	velvet := base
	velvet.Demosaic = isp.DemosaicAHD
	velvet.Denoise = isp.DenoiseWavelet

	g7 := base
	g7.Denoise = isp.DenoiseWavelet
	g7.WB = isp.WBWhitePatch

	g4 := base
	g4.Demosaic = isp.DemosaicBinning
	g4.Denoise = isp.DenoiseNone
	g4.WB = isp.WBWhitePatch
	g4.Compress = isp.CompressJPEG50

	// Samsung: punchy rendering; flagship adds tone equalization, the old
	// S6 bins pixels and compresses hard.
	s22 := base
	s22.Tone = isp.ToneSRGBGammaEq

	s9 := base

	s6 := base
	s6.Demosaic = isp.DemosaicBinning
	s6.Denoise = isp.DenoiseNone
	s6.Compress = isp.CompressJPEG50

	return []*Profile{
		mk("Pixel5", VendorGoogle, TierHigh, 0.01, pixel, 0.90, 1.00),
		mk("Pixel2", VendorGoogle, TierMid, 0.03, pixel, 0.92, 1.00),
		mk("Nexus5X", VendorGoogle, TierLow, 0.04, nexus, 1.00, 0.90),
		mk("VELVET", VendorLG, TierHigh, 0.02, velvet, 1.05, 1.05),
		mk("G7", VendorLG, TierMid, 0.05, g7, 1.00, 1.00),
		mk("G4", VendorLG, TierLow, 0.08, g4, 1.00, 0.95),
		mk("S22", VendorSamsung, TierHigh, 0.12, s22, 0.88, 1.25),
		mk("S9", VendorSamsung, TierMid, 0.27, s9, 0.95, 1.15),
		mk("S6", VendorSamsung, TierLow, 0.38, s6, 1.00, 1.10),
	}
}

// ByName returns the named Table-1 profile or an error.
func ByName(name string) (*Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("device: unknown device %q", name)
}

// MarketShares returns the participation weights of Profiles() in order.
func MarketShares(profiles []*Profile) []float64 {
	w := make([]float64, len(profiles))
	for i, p := range profiles {
		w[i] = p.MarketShare
	}
	return w
}

// DominantNames returns the dominant (most-participating) device types,
// the paper's privileged group in the fairness analysis (Fig. 4): S9 and S6.
func DominantNames() []string { return []string{"S9", "S6"} }

// Random generates a plausible random device profile — used to model the
// long tail of device types in the FLAIR-style experiment and to synthesize
// genuinely unseen devices for domain-generalization tests.
func Random(rng *frand.RNG, name string) *Profile {
	vendors := []Vendor{VendorSamsung, VendorLG, VendorGoogle}
	tiers := []Tier{TierHigh, TierMid, TierLow}
	vendor := vendors[rng.Intn(len(vendors))]
	tier := tiers[rng.Intn(len(tiers))]
	s := tierSensor(vendor, tier)
	// Perturb the tier template so each random device is unique.
	s.ColorMatrix = camera.CrosstalkMatrix(rng.Uniform(0.03, 0.20))
	for c := range s.IlluminantGains {
		s.IlluminantGains[c] *= rng.Uniform(0.9, 1.1)
	}
	s.ShotNoise *= rng.Uniform(0.6, 1.6)
	s.ReadNoise *= rng.Uniform(0.6, 1.6)
	s.Vignetting = rng.Uniform(0.02, 0.3)

	pipe := isp.Baseline()
	stageOpts := []int{rng.Intn(3), rng.Intn(3), rng.Intn(3), rng.Intn(3), rng.Intn(3), rng.Intn(3)}
	for st, opt := range stageOpts {
		var err error
		pipe, err = pipe.Option(isp.Stage(st), opt)
		if err != nil {
			// Unreachable by construction; keep the baseline stage.
			continue
		}
	}
	return &Profile{
		Name: name, Vendor: vendor, Tier: tier,
		MarketShare: 0,
		Sensor:      s,
		ISP:         pipe,
		ToneGamma:   rng.Uniform(0.85, 1.1),
		Saturation:  rng.Uniform(0.9, 1.25),
	}
}
