module heteroswitch

go 1.24
