package serve

import (
	"strings"
	"testing"
)

// overloadLoad is a closed-loop population that demands far more than one
// worker can serve (batch of 4 costs 4 time units, 24 clients think 0.2), so
// without admission control queueing grows to the full population.
func overloadLoad() LoadConfig {
	return LoadConfig{
		Requests:    400,
		Concurrency: 24,
		Arrival:     ClosedLoop{Think: 0.2, Seed: 5},
		Service:     AffineService{Base: 2, PerItem: 0.5},
		Inputs:      testInputs(16),
	}
}

func overloadConfig(a AdmissionConfig) Config {
	return Config{MaxBatch: 4, BatchBudget: 0.2, Workers: 1, IntraOp: 2, Admission: a}
}

func TestParseAdmission(t *testing.T) {
	good := map[string]AdmissionConfig{
		"":      {},
		"off":   {},
		"64,12": {Depth: 64, Deadline: 12},
		"8,0":   {Depth: 8},
		"0,2.5": {Deadline: 2.5},
	}
	for spec, want := range good {
		got, err := ParseAdmission(spec)
		if err != nil || got != want {
			t.Fatalf("ParseAdmission(%q) = %+v, %v; want %+v", spec, got, err, want)
		}
	}
	for _, spec := range []string{"8", "x,1", "-1,2", "1,-2", "1,2,3garbage"} {
		if _, err := ParseAdmission(spec); err == nil {
			t.Fatalf("ParseAdmission(%q) accepted", spec)
		}
	}
}

// A bounded admission depth must cap the pending queue at exactly Depth, shed
// the overflow deterministically, and account for every request either way.
func TestAdmissionDepthBoundsQueue(t *testing.T) {
	lc := overloadLoad()
	cfg := overloadConfig(AdmissionConfig{Depth: 8})
	r := mustLoad(t, cfg, lc)
	if r.MaxQueue > 8 {
		t.Fatalf("pending queue reached %d, admission depth is 8", r.MaxQueue)
	}
	if r.ShedQueue == 0 || r.Reissues == 0 {
		t.Fatalf("overload with depth 8 shed nothing: %+v", r)
	}
	if r.ShedDeadline != 0 {
		t.Fatalf("deadline sheds without a deadline: %+v", r)
	}
	if r.Served+r.ShedQueue != r.Requests || r.Requests != lc.Requests {
		t.Fatalf("request accounting doesn't balance: %+v", r)
	}
	if int64(r.Served) != r.Hist.Count() {
		t.Fatalf("histogram holds %d requests, served %d", r.Hist.Count(), r.Served)
	}

	// Shedding is part of the deterministic schedule: bit-identical across
	// runs and across intra-op budgets.
	if again := mustLoad(t, cfg, lc); again != r {
		t.Fatalf("admission run not reproducible:\n%+v\nvs\n%+v", again, r)
	}
	cfg.IntraOp = 7
	if other := mustLoad(t, cfg, lc); other != r {
		t.Fatalf("admission run depends on intra-op budget:\n%+v\nvs\n%+v", other, r)
	}
}

// Deadline shedding drops requests whose queueing wait already blew the
// budget, which bounds every served latency by deadline + max batch cost —
// the stable-p99-under-overload contract.
func TestAdmissionDeadlineBoundsTail(t *testing.T) {
	lc := overloadLoad()
	const deadline = 6.0
	r := mustLoad(t, overloadConfig(AdmissionConfig{Deadline: deadline}), lc)
	if r.ShedDeadline == 0 {
		t.Fatalf("overload with deadline %g shed nothing: %+v", deadline, r)
	}
	if r.Served+r.ShedDeadline != r.Requests {
		t.Fatalf("request accounting doesn't balance: %+v", r)
	}
	// A served request waited at most deadline when its batch started and
	// then paid at most a full batch's service time.
	bound := deadline + 2 + 0.5*4
	if r.P99 > bound || r.MeanLatency > bound {
		t.Fatalf("served latency beyond the deadline bound %g: %+v", bound, r)
	}
	unbounded := mustLoad(t, overloadConfig(AdmissionConfig{}), lc)
	if r.P99 >= unbounded.P99 {
		t.Fatalf("deadline shedding did not improve tail latency: %g vs %g", r.P99, unbounded.P99)
	}
}

// Admission limits that never trigger must not change the run at all — same
// schedule, latencies, and served outputs; only the digest moves, by exactly
// the deterministic counter fold.
func TestAdmissionIdleIsInvisible(t *testing.T) {
	lc := overloadLoad()
	off := mustLoad(t, overloadConfig(AdmissionConfig{}), lc)
	on := mustLoad(t, overloadConfig(AdmissionConfig{Depth: 1 << 20, Deadline: 1e9}), lc)
	if on.ShedQueue != 0 || on.ShedDeadline != 0 || on.Reissues != 0 {
		t.Fatalf("idle admission shed something: %+v", on)
	}
	if on.Served != off.Served || on.MaxQueue != off.MaxQueue {
		t.Fatalf("idle admission changed accounting: %+v vs %+v", on, off)
	}
	want := off.OutputDigest
	for _, c := range [...]int{on.Served, on.ShedQueue, on.ShedDeadline, on.Reissues, on.MaxQueue} {
		want = foldU64(want, uint64(c))
	}
	if on.OutputDigest != want {
		t.Fatalf("idle admission perturbed outputs: digest %016x, want %016x", on.OutputDigest, want)
	}
	off.OutputDigest = on.OutputDigest
	if off != on {
		t.Fatalf("idle admission changed the schedule:\n%+v\nvs\n%+v", off, on)
	}
	if !strings.Contains(on.String(), "admission served=") {
		t.Fatalf("report omits the admission line:\n%s", on.String())
	}
}

// Depth and deadline compose, stay reproducible under combined shedding, and
// open-loop overload (the regime with truly unbounded queues) is tamed too.
func TestAdmissionOpenLoopOverload(t *testing.T) {
	lc := LoadConfig{
		Requests: 300,
		Arrival:  OpenLoop{Rate: 4, Seed: 11}, // 4 req/unit vs capacity 1
		Service:  AffineService{Base: 2, PerItem: 0.5},
		Inputs:   testInputs(16),
	}
	cfg := overloadConfig(AdmissionConfig{Depth: 12, Deadline: 8})
	r := mustLoad(t, cfg, lc)
	if r.MaxQueue > 12 {
		t.Fatalf("pending queue reached %d, admission depth is 12", r.MaxQueue)
	}
	if r.ShedQueue == 0 {
		t.Fatalf("open-loop overload at depth 12 shed nothing: %+v", r)
	}
	if r.Reissues != 0 {
		t.Fatalf("open loop has no clients to reissue: %+v", r)
	}
	if r.Served+r.ShedQueue+r.ShedDeadline != lc.Requests {
		t.Fatalf("request accounting doesn't balance: %+v", r)
	}
	if again := mustLoad(t, cfg, lc); again != r {
		t.Fatalf("combined admission run not reproducible:\n%+v\nvs\n%+v", again, r)
	}
}
