package nn

import "heteroswitch/internal/tensor"

// ArenaUser is the capability a Layer implements to draw its per-batch
// output, gradient, and scratch tensors from a shared tensor.Arena instead
// of allocating fresh ones. Network.SetArena propagates one arena through
// the whole layer tree; composite layers (Residual, Parallel, SEBlock,
// nested Networks) forward the call to their children so a model shares a
// single arena per replica.
//
// Arena ownership rules (see also the package doc of internal/tensor):
// every tensor a layer obtains from the arena is valid only for the current
// batch — the owning Network resets the arena at the top of each Forward.
// Anything that must survive a batch boundary (parameters, gradients
// accumulators, optimizer state, running statistics, weight snapshots) must
// NOT come from the arena.
type ArenaUser interface {
	SetArena(a *tensor.Arena)
}

// arenaScratch is embedded by layers to get SetArena plus the alloc helpers.
// With no arena attached (bare layers constructed outside a Network, as the
// gradient-check tests do) allocation falls back to tensor.New, preserving
// the legacy behaviour exactly.
type arenaScratch struct {
	arena *tensor.Arena
}

// SetArena implements ArenaUser.
func (s *arenaScratch) SetArena(a *tensor.Arena) { s.arena = a }

// alloc returns a zero-filled per-batch tensor (tensor.New semantics).
func (s *arenaScratch) alloc(shape ...int) *tensor.Tensor {
	if s.arena != nil {
		return s.arena.Get(shape...)
	}
	return tensor.New(shape...)
}

// allocUninit returns a per-batch tensor whose contents are unspecified.
// Callers must overwrite every element before reading any.
func (s *arenaScratch) allocUninit(shape ...int) *tensor.Tensor {
	if s.arena != nil {
		return s.arena.GetUninit(shape...)
	}
	return tensor.New(shape...)
}
