package core

import (
	"testing"

	"heteroswitch/internal/fl"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/simclock"
)

// HeteroSwitch's async contract: with zero latency, discount ≡ 1, and
// Concurrency == Buffer == K, the asynchronous run must be bit-identical
// (tolerance 0) to the synchronous streaming run — the aggregated weights
// AND the L_EMA switching signal, since the accumulator folds the eq. 1
// inputs with the same discount as the weights.
func TestHeteroSwitchAsyncZeroLatencyMatchesSync(t *testing.T) {
	cfg := fl.Config{
		Rounds: 8, ClientsPerRound: 4, BatchSize: 4, LocalEpochs: 1,
		LR: 0.1, Seed: 13, Workers: 1,
	}

	hsSync := New()
	clients, _ := toyPopulation(33)
	sync, err := fl.NewServer(cfg, toyBuilder(), nn.SoftmaxCrossEntropy{}, hsSync, clients)
	if err != nil {
		t.Fatal(err)
	}
	sync.Run(nil)

	hsAsync := New()
	clients, _ = toyPopulation(33)
	async, err := fl.NewAsyncServer(cfg, toyBuilder(), nn.SoftmaxCrossEntropy{}, hsAsync, clients,
		fl.AsyncConfig{Staleness: fl.PolynomialStaleness{Alpha: 0}, Latency: simclock.Constant{D: 0}})
	if err != nil {
		t.Fatal(err)
	}
	async.Run(nil)

	for i := range sync.Global.Params {
		if !sync.Global.Params[i].AllClose(async.Global.Params[i], 0) {
			t.Fatalf("param %d not bit-identical between sync and async HeteroSwitch", i)
		}
	}
	ls, okS := hsSync.LEMA()
	la, okA := hsAsync.LEMA()
	if !okS || !okA {
		t.Fatal("L_EMA not initialized")
	}
	if ls != la {
		t.Fatalf("L_EMA diverged: sync %v, async %v", ls, la)
	}
}

// Race coverage: the async completion loop with full switching — LocalUpdate
// reads L_EMA while window finalization writes it, and the intra-op budget
// runs the lazily evaluated training through the parallel kernels. Run with
// -race in CI.
func TestHeteroSwitchAsyncStragglerRace(t *testing.T) {
	clients, _ := toyPopulation(47)
	cfg := fl.Config{
		Rounds: 6, ClientsPerRound: 4, BatchSize: 4, LocalEpochs: 1,
		LR: 0.1, Seed: 29, Workers: 1, IntraOp: 4, ClientDropout: 0.2,
	}
	hs := New()
	srv, err := fl.NewAsyncServer(cfg, toyBuilder(), nn.SoftmaxCrossEntropy{}, hs, clients,
		fl.AsyncConfig{
			Staleness:   fl.PolynomialStaleness{Alpha: 0.5},
			Latency:     simclock.StragglerTail{Lo: 0.5, Hi: 2, TailProb: 0.3, TailFactor: 8, Seed: 19},
			Concurrency: 8,
			Buffer:      4,
		})
	if err != nil {
		t.Fatal(err)
	}
	srv.Run(nil)
	if lema, ok := hs.LEMA(); !ok || lema != lema {
		t.Fatalf("L_EMA bad after async run: %v (%v)", lema, ok)
	}
	for _, p := range srv.Global.Params {
		if p.HasNaN() {
			t.Fatal("NaN weights after async HeteroSwitch run")
		}
	}
}

// Staleness discounts must reach the L_EMA inputs: a window of stale results
// still yields a finite, sane switching signal (discounted loss sum divided
// by discounted sample sum — not mixed scales).
func TestHeteroSwitchAsyncDiscountedLEMAFinite(t *testing.T) {
	clients, _ := toyPopulation(61)
	cfg := fl.Config{
		Rounds: 6, ClientsPerRound: 4, BatchSize: 4, LocalEpochs: 1,
		LR: 0.1, Seed: 7, Workers: 1,
	}
	hs := New()
	srv, err := fl.NewAsyncServer(cfg, toyBuilder(), nn.SoftmaxCrossEntropy{}, hs, clients,
		fl.AsyncConfig{
			Staleness:   fl.PolynomialStaleness{Alpha: 2},
			Latency:     simclock.Uniform{Lo: 0.5, Hi: 4, Seed: 23},
			Concurrency: 12,
			Buffer:      4,
		})
	if err != nil {
		t.Fatal(err)
	}
	sawStale := false
	srv.Run(func(s fl.AsyncRoundStats) {
		if s.MaxStaleness > 0 {
			sawStale = true
		}
	})
	if !sawStale {
		t.Fatal("deep pipeline never produced a stale fold")
	}
	lema, ok := hs.LEMA()
	if !ok || lema <= 0 || lema != lema {
		t.Fatalf("L_EMA invalid after discounted folds: %v (%v)", lema, ok)
	}
}
