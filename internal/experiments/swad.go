package experiments

import (
	"fmt"

	"heteroswitch/internal/core"
	"heteroswitch/internal/dataset"
	"heteroswitch/internal/frand"
	"heteroswitch/internal/metrics"
	"heteroswitch/internal/nn"
)

// Fig7Method identifies the three training regimes compared in Fig. 7.
type Fig7Method int

// The Fig. 7 regimes.
const (
	Fig7TransformOnly Fig7Method = iota
	Fig7SWA                      // per-epoch weight averaging
	Fig7SWAD                     // per-batch weight averaging
)

// String implements fmt.Stringer.
func (m Fig7Method) String() string {
	switch m {
	case Fig7SWA:
		return "transform+SWA"
	case Fig7SWAD:
		return "transform+SWAD"
	default:
		return "transform-only"
	}
}

// Fig7Result compares robustness of the three regimes against four
// transformation families at increasing degrees.
type Fig7Result struct {
	Transforms []string
	// Deg[transform][method] = mean degradation over degrees 0.3..0.9
	// relative to the method's accuracy on the original dataset.
	Deg      [][3]float64
	CleanAcc [3]float64
}

// String renders the comparison.
func (r *Fig7Result) String() string {
	t := &Table{
		Title: fmt.Sprintf("Figure 7 — robustness of weight averaging (clean acc: plain %s, SWA %s, SWAD %s)",
			pct(r.CleanAcc[0]), pct(r.CleanAcc[1]), pct(r.CleanAcc[2])),
		Header: []string{"transform", "transform-only", "+SWA", "+SWAD"},
	}
	for i, name := range r.Transforms {
		t.AddRow(name,
			fmt.Sprintf("%.1f%%", r.Deg[i][0]*100),
			fmt.Sprintf("%.1f%%", r.Deg[i][1]*100),
			fmt.Sprintf("%.1f%%", r.Deg[i][2]*100))
	}
	return t.String()
}

// sceneDataset renders the 12-class scenes directly to tensors (Fig. 7 uses
// the original dataset, not device captures).
func sceneDataset(opts Options, perClass int, salt string) *dataset.Dataset {
	gen := newSceneGen()
	rng := frand.New(opts.Seed).SplitNamed(salt)
	ds := &dataset.Dataset{NumClasses: gen.NumClasses()}
	for c := 0; c < gen.NumClasses(); c++ {
		for i := 0; i < perClass; i++ {
			im := gen.Render(c, rng).Resize(opts.OutRes, opts.OutRes)
			ds.Samples = append(ds.Samples, dataset.Sample{X: im.ToTensor(), Label: c})
		}
	}
	return ds
}

// trainWithAveraging trains with per-batch random transforms (degree 0.3)
// and the selected weight-averaging regime, returning the final weights.
// As a single-client path it grants the network the single-client intra-op
// budget (full machine unless -intraop caps it), and batches recycle
// through the pooled dataset.BatchScratch.
func trainWithAveraging(opts Options, train *dataset.Dataset, method Fig7Method, epochs int) *nn.Network {
	net := SimpleCNNBuilder(opts.Seed, train.NumClasses)()
	net.SetIntraOp(opts.IntraOpBudget())
	opt := nn.NewSGD(0.05, 0.9, 0)
	rng := frand.New(opts.Seed ^ 0xf16)
	transforms := trainTransforms(0.3)

	var avg nn.Weights
	avgCount := 0
	accumulate := func() {
		w := net.Snapshot()
		if avgCount == 0 {
			avg = w
		} else {
			avg.Lerp(float32(1.0/float64(avgCount+1)), w)
		}
		avgCount++
	}

	order := make([]int, train.Len())
	for i := range order {
		order[i] = i
	}
	// Standard SWA/SWAD protocol: average only after a warmup (the first
	// half of training), so near-initialization weights do not pollute the
	// running mean.
	warmup := epochs / 2
	const batch = 10
	bs := dataset.GetBatchScratch()
	defer dataset.PutBatchScratch(bs)
	for e := 0; e < epochs; e++ {
		rng.ShuffleInts(order)
		shuffled := train.Subset(order)
		// Fresh random transform of the whole epoch's data, as the Fig. 7
		// protocol applies random transformation during training.
		tf := transforms[rng.Intn(len(transforms))]
		aug := core.TransformDataset(shuffled, tf, rng)
		for lo := 0; lo < aug.Len(); lo += batch {
			hi := min(lo+batch, aug.Len())
			x, _, labels := bs.Next(aug, lo, hi)
			out := net.Forward(x, true)
			_, grad := nn.SoftmaxCrossEntropy{}.Eval(out, nn.ClassTarget(labels))
			net.Backward(grad)
			opt.Step(net.Params())
			if method == Fig7SWAD && e >= warmup {
				accumulate()
			}
		}
		if method == Fig7SWA && e >= warmup {
			accumulate()
		}
	}
	if method != Fig7TransformOnly && avgCount > 0 {
		if err := net.LoadWeights(avg); err != nil {
			panic("experiments: averaging weights mismatch: " + err.Error())
		}
	}
	return net
}

// trainTransforms is the low-degree training augmentation pool.
func trainTransforms(degree float64) []core.TransformFunc {
	return []core.TransformFunc{
		core.AffineJitter(degree),
		core.GaussianNoise(degree),
		core.WBOnly(degree),
		core.GammaOnly(degree),
	}
}

// Fig7 runs the robustness comparison.
func Fig7(opts Options) (*Fig7Result, error) {
	train := sceneDataset(opts, opts.scaled(10), "fig7-train")
	test := sceneDataset(opts, opts.scaled(5), "fig7-test")
	epochs := opts.scaled(10)

	nets := [3]*nn.Network{}
	for m := Fig7TransformOnly; m <= Fig7SWAD; m++ {
		nets[m] = trainWithAveraging(opts, train, m, epochs)
	}
	res := &Fig7Result{}
	for m := 0; m < 3; m++ {
		res.CleanAcc[m] = metrics.Accuracy(nets[m], test, 16)
	}

	evalTransforms := []struct {
		name string
		mk   func(degree float64) core.TransformFunc
	}{
		{"affine", core.AffineJitter},
		{"gaussian-noise", core.GaussianNoise},
		{"white-balance", core.WBOnly},
		{"gamma", core.GammaOnly},
	}
	degrees := []float64{0.3, 0.5, 0.7, 0.9}
	for _, tf := range evalTransforms {
		var deg [3]float64
		for _, d := range degrees {
			rng := frand.New(opts.Seed ^ 0x7e57)
			perturbed := core.TransformDataset(test, tf.mk(d), rng)
			for m := 0; m < 3; m++ {
				acc := metrics.Accuracy(nets[m], perturbed, 16)
				deg[m] += metrics.Degradation(res.CleanAcc[m], acc) / float64(len(degrees))
			}
		}
		res.Transforms = append(res.Transforms, tf.name)
		res.Deg = append(res.Deg, deg)
	}
	return res, nil
}
