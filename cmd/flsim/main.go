// Command flsim runs a single federated-learning simulation over the
// Table-1 device population with a chosen aggregation method and model,
// printing per-round loss and the final per-device evaluation.
//
// Usage:
//
//	flsim -method heteroswitch -model mobilenetv3-tiny -rounds 100 -clients 100 -k 20
//	flsim -method fedavg -model simplecnn -rounds 50
//	flsim -method fedavg -async -staleness-alpha 0.5 -latency-model straggler:0.5,2,0.15,8
//
// Methods: fedavg, fedprox, qfedavg, scaffold, heteroswitch, isp-transform,
// isp-swad. -async switches streaming-capable methods to staleness-aware
// asynchronous aggregation on a deterministic virtual-time simulation.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"heteroswitch/internal/core"
	"heteroswitch/internal/dataset"
	"heteroswitch/internal/experiments"
	"heteroswitch/internal/faults"
	"heteroswitch/internal/fl"
	"heteroswitch/internal/metrics"
	"heteroswitch/internal/models"
	"heteroswitch/internal/nn"
	"heteroswitch/internal/simclock"
	"heteroswitch/internal/tensor"
)

func strategyFor(name string, totalClients int) (fl.Strategy, error) {
	switch name {
	case "fedavg":
		return fl.FedAvg{}, nil
	case "fedprox":
		return &fl.FedProx{Mu: 1e-1}, nil
	case "qfedavg":
		return &fl.QFedAvg{Q: 1e-6}, nil
	case "scaffold":
		return &fl.Scaffold{TotalClients: totalClients}, nil
	case "heteroswitch":
		return core.New(), nil
	case "isp-transform":
		return core.NewWithMode(core.ModeTransformOnly), nil
	case "isp-swad":
		return core.NewWithMode(core.ModeTransformSWAD), nil
	default:
		return nil, fmt.Errorf("unknown method %q", name)
	}
}

func main() {
	var (
		method   = flag.String("method", "heteroswitch", "aggregation method")
		model    = flag.String("model", string(models.ArchMobileNet), "model architecture")
		rounds   = flag.Int("rounds", 100, "communication rounds (T)")
		clients  = flag.Int("clients", 100, "total clients (N)")
		k        = flag.Int("k", 20, "clients per round (K)")
		batch    = flag.Int("batch", 10, "local batch size (B)")
		epochs   = flag.Int("epochs", 1, "local epochs (E)")
		lr       = flag.Float64("lr", 0.1, "learning rate")
		perClass = flag.Int("per-class", 12, "training scenes per class per device")
		seed     = flag.Uint64("seed", 42, "random seed")
		workers  = flag.Int("workers", 4, "parallel client trainers")
		intraop  = flag.Int("intraop", 0, "total intra-op kernel parallelism budget, split across workers (0 = GOMAXPROCS, 1 = serial kernels; results are bit-identical at every setting)")
		barrier  = flag.Bool("barrier", false, "force legacy barrier aggregation (materialize all K snapshots)")
		fused    = flag.Bool("fused-eval", true, "evaluate through the frozen inference fast path (BN folded, activations fused); -fused-eval=false keeps the reference layer-by-layer eval forward")
		backend  = flag.String("kernel-backend", tensor.ActiveBackend().String(), "matmul kernel backend for the frozen eval path: auto (packed when profitable), serial (bit-identical oracle kernels), packed (force the cache-blocked kernel), int8 (force the quantized weight-stationary kernel, documented-tolerance tier); training always uses the oracle kernels; default honors HETEROSWITCH_KERNEL_BACKEND")
		logEvery = flag.Int("log-every", 10, "print loss every N rounds")

		async      = flag.Bool("async", false, "asynchronous staleness-aware aggregation on a deterministic virtual-time simulation (no round barrier)")
		alpha      = flag.Float64("staleness-alpha", 0.5, "polynomial staleness discount 1/(1+s)^alpha for async folds (0 = no discount)")
		latency    = flag.String("latency-model", "straggler:0.5,2,0.15,8", "virtual client latency: zero, const:D, uniform:LO,HI, straggler:LO,HI,P,FACTOR")
		asyncDepth = flag.Int("async-depth", 2, "in-flight async jobs as a multiple of K (1 = no overlap, so no staleness)")

		faultSpec     = flag.String("faults", "", "seeded fault injection: crash:P, flaky:P,R, corrupt:P,MODE, churn:PERIOD,ON, combined with '+' (empty = fault-free; crash/flaky/churn need -async, crash/flaky also -fault-timeout)")
		maxNorm       = flag.Float64("max-delta-norm", 0, "update validation gate: reject client deltas with non-finite values or L2 norm above this (0 = gate off, unless -faults is set, then +Inf = non-finite check only)")
		faultTimeout  = flag.Float64("fault-timeout", 0, "async per-job virtual timeout before deterministic reissue (0 = no timeouts, the pre-fault behavior)")
		faultBackoff  = flag.Float64("fault-backoff", 0, "base virtual reissue backoff, doubled each attempt (needs -fault-timeout)")
		faultAttempts = flag.Int("fault-attempts", 0, "max dispatch attempts per job before its client counts failed (0 = 3 when timeouts are on)")
		maxStale      = flag.Int("max-staleness", 0, "drop async results staler than this many aggregation windows instead of folding them (0 = fold everything)")
	)
	flag.Parse()
	nn.SetFusedEval(*fused)
	kb, err := tensor.ParseBackend(*backend)
	if err != nil {
		fatal(err)
	}
	tensor.SetBackend(kb)

	opts := experiments.DefaultOptions()
	opts.Seed = *seed
	opts.Workers = *workers

	fmt.Printf("building device federation (9 devices, %d scenes/class)...\n", *perClass)
	dd, err := experiments.BuildDeviceData(opts, *perClass, 4, dataset.ModeProcessed)
	if err != nil {
		fatal(err)
	}
	builder, err := models.BuilderFor(models.Arch(*model), *seed, 3, dd.Classes)
	if err != nil {
		fatal(err)
	}
	strat, err := strategyFor(*method, *clients)
	if err != nil {
		fatal(err)
	}
	cfg := fl.Config{
		Rounds:           *rounds,
		ClientsPerRound:  *k,
		BatchSize:        *batch,
		LocalEpochs:      *epochs,
		LR:               *lr,
		Seed:             *seed,
		Workers:          *workers,
		IntraOp:          *intraop,
		DisableStreaming: *barrier,
	}
	fm, err := faults.ParseSpec(*faultSpec, *seed)
	if err != nil {
		fatal(err)
	}
	cfg.Faults = fm
	cfg.MaxDeltaNorm = *maxNorm
	if fm != nil && cfg.MaxDeltaNorm == 0 {
		cfg.MaxDeltaNorm = math.Inf(1)
	}
	counts := experiments.MarketShareCounts(dd, *clients)
	pop, err := fl.BuildPopulation(dd.Train, counts, *seed)
	if err != nil {
		fatal(err)
	}
	if cfg.ClientsPerRound > len(pop) {
		cfg.ClientsPerRound = len(pop)
	}
	var net *nn.Network
	if *async {
		lat, err := simclock.ParseModel(*latency, *seed)
		if err != nil {
			fatal(err)
		}
		srv, err := fl.NewAsyncServer(cfg, builder, nn.SoftmaxCrossEntropy{}, strat, pop, fl.AsyncConfig{
			Staleness:    fl.PolynomialStaleness{Alpha: *alpha},
			Latency:      lat,
			Concurrency:  *asyncDepth * cfg.ClientsPerRound,
			Buffer:       cfg.ClientsPerRound,
			Timeout:      *faultTimeout,
			RetryBackoff: *faultBackoff,
			MaxAttempts:  *faultAttempts,
			MaxStaleness: *maxStale,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("running %s / %s ASYNC: N=%d K=%d depth=%d alpha=%g latency=%s T=%d lr=%g faults=%s\n",
			strat.Name(), *model, len(pop), cfg.ClientsPerRound, *asyncDepth, *alpha, *latency, *rounds, *lr, cfg.Faults.String())
		var reissues, failed, rejected, staleDropped, deferred int
		var wasted int64
		srv.Run(func(s fl.AsyncRoundStats) {
			reissues += s.Reissues
			failed += s.Failed
			rejected += len(s.Rejected)
			staleDropped += s.StaleDropped
			deferred += s.Deferred
			wasted += s.BytesWasted
			if (*logEvery > 0 && (s.Round+1)%*logEvery == 0) || s.Round == *rounds-1 {
				fmt.Printf("round %4d  train-loss %.4f  init-loss %.4f  vtime %8.1f  staleness %.2f (max %d)  discount %.3f\n",
					s.Round+1, s.MeanLoss, s.MeanInit, s.VirtualTime, s.MeanStaleness, s.MaxStaleness, s.MeanDiscount)
			}
		})
		if cfg.Faults.Enabled() || *faultTimeout > 0 || *maxStale > 0 || cfg.MaxDeltaNorm > 0 {
			fmt.Printf("chaos: reissues=%d failed=%d rejected=%d stale-dropped=%d deferred=%d bytes-wasted=%d\n",
				reissues, failed, rejected, staleDropped, deferred, wasted)
		}
		net = srv.GlobalNet()
	} else {
		srv, err := fl.NewServer(cfg, builder, nn.SoftmaxCrossEntropy{}, strat, pop)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("running %s / %s: N=%d K=%d B=%d E=%d T=%d lr=%g\n",
			strat.Name(), *model, len(pop), cfg.ClientsPerRound, *batch, *epochs, *rounds, *lr)
		var rejected int
		var wasted int64
		srv.Run(func(s fl.RoundStats) {
			rejected += len(s.Rejected)
			wasted += s.BytesWasted
			if (*logEvery > 0 && (s.Round+1)%*logEvery == 0) || s.Round == *rounds-1 {
				fmt.Printf("round %4d  train-loss %.4f  init-loss %.4f\n", s.Round+1, s.MeanLoss, s.MeanInit)
			}
		})
		if cfg.Faults.Enabled() || cfg.MaxDeltaNorm > 0 {
			fmt.Printf("chaos: rejected=%d bytes-wasted=%d\n", rejected, wasted)
		}
		net = srv.GlobalNet()
	}
	acc := experiments.PerDeviceAccuracies(net, dd, 16)
	fmt.Println("\nper-device test accuracy:")
	var accs []float64
	for i, p := range dd.Profiles {
		fmt.Printf("  %-8s %.1f%%\n", p.Name, acc[i]*100)
		accs = append(accs, acc[i]*100)
	}
	fmt.Printf("\naverage %.1f%%  worst %.1f%%  variance %.2f pp²\n",
		metrics.Mean(accs), metrics.Worst(accs), metrics.Variance(accs))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flsim:", err)
	os.Exit(1)
}
