package fl

import (
	"testing"

	"heteroswitch/internal/nn"
)

// OnPublish is the training→serving wiring point: it must fire synchronously
// from finalizeWindow, exactly once per installed global version, carrying
// the freshly installed weights and the window's finalize instant.
func TestOnPublishFiresPerInstalledVersion(t *testing.T) {
	srv := asyncFixtureServer(t, FedAvg{}, AsyncConfig{})
	type pub struct {
		version int
		vtime   float64
	}
	var pubs []pub
	srv.OnPublish = func(v int, w nn.Weights, vt float64) {
		if !w.SharesStorage(srv.Global) {
			t.Fatal("hook weights are not the freshly installed global")
		}
		if v != srv.Version {
			t.Fatalf("hook version %d != server version %d", v, srv.Version)
		}
		pubs = append(pubs, pub{v, vt})
	}
	var stats []AsyncRoundStats
	srv.Run(func(st AsyncRoundStats) { stats = append(stats, st) })

	if len(pubs) == 0 {
		t.Fatal("OnPublish never fired")
	}
	if len(pubs) != srv.Version {
		t.Fatalf("%d publishes for %d installed versions", len(pubs), srv.Version)
	}
	for i, p := range pubs {
		if p.version != i+1 {
			t.Fatalf("publish %d carries version %d; versions must be sequential", i, p.version)
		}
		if i > 0 && p.vtime < pubs[i-1].vtime {
			t.Fatalf("publish times regress: %g after %g", p.vtime, pubs[i-1].vtime)
		}
	}
	// Every window installed a version here, so publish instants line up with
	// the windows' reported virtual times one to one.
	if len(pubs) == len(stats) {
		for i := range pubs {
			if pubs[i].vtime != stats[i].VirtualTime {
				t.Fatalf("publish %d at vtime %g, window reported %g", i, pubs[i].vtime, stats[i].VirtualTime)
			}
		}
	}
}

// The hook must not perturb training: a run with a hook installed produces
// bit-identical globals to one without.
func TestOnPublishIsObservationOnly(t *testing.T) {
	plain := asyncFixtureServer(t, FedAvg{}, AsyncConfig{})
	plain.Run(nil)
	hooked := asyncFixtureServer(t, FedAvg{}, AsyncConfig{})
	fired := 0
	hooked.OnPublish = func(int, nn.Weights, float64) { fired++ }
	hooked.Run(nil)
	if fired == 0 {
		t.Fatal("hook never fired")
	}
	if plain.Version != hooked.Version {
		t.Fatalf("version drift: %d vs %d", plain.Version, hooked.Version)
	}
	requireBitIdentical(t, plain.Global, hooked.Global, "hooked vs plain global")
}
