package tensor

import "fmt"

// ConvDims describes a 2-D convolution geometry shared by Im2Col and the
// conv layers in internal/nn.
type ConvDims struct {
	InC, InH, InW    int // input channels / height / width
	KH, KW           int // kernel size
	StrideH, StrideW int
	PadH, PadW       int
	OutH, OutW       int // derived output size
}

// NewConvDims computes output sizes for the given geometry. It returns an
// error if the geometry produces a non-positive output size.
func NewConvDims(inC, inH, inW, kh, kw, stride, pad int) (ConvDims, error) {
	d := ConvDims{
		InC: inC, InH: inH, InW: inW,
		KH: kh, KW: kw,
		StrideH: stride, StrideW: stride,
		PadH: pad, PadW: pad,
	}
	d.OutH = (inH+2*pad-kh)/stride + 1
	d.OutW = (inW+2*pad-kw)/stride + 1
	if d.OutH <= 0 || d.OutW <= 0 {
		return d, fmt.Errorf("tensor: conv geometry %dx%d k%d s%d p%d yields output %dx%d",
			inH, inW, kh, stride, pad, d.OutH, d.OutW)
	}
	return d, nil
}

// ColRows returns the number of rows of the im2col matrix (inC*kh*kw).
func (d ConvDims) ColRows() int { return d.InC * d.KH * d.KW }

// ColCols returns the number of columns of the im2col matrix (outH*outW).
func (d ConvDims) ColCols() int { return d.OutH * d.OutW }

// Im2Col expands one image (flat CHW slice `img`) into the column matrix
// `col` of shape [inC*kh*kw, outH*outW], so that convolution becomes a
// single matrix multiply: W[outC, inC*kh*kw] @ col.
//
// col must have length ColRows()*ColCols(). Out-of-bounds taps (padding)
// are written as zeros.
func Im2Col(col, img []float32, d ConvDims) {
	if len(col) != d.ColRows()*d.ColCols() {
		panic(fmt.Sprintf("tensor: Im2Col col size %d, want %d", len(col), d.ColRows()*d.ColCols()))
	}
	if len(img) != d.InC*d.InH*d.InW {
		panic(fmt.Sprintf("tensor: Im2Col img size %d, want %d", len(img), d.InC*d.InH*d.InW))
	}
	cols := d.ColCols()
	row := 0
	for c := 0; c < d.InC; c++ {
		chanBase := c * d.InH * d.InW
		for ky := 0; ky < d.KH; ky++ {
			for kx := 0; kx < d.KW; kx++ {
				dst := col[row*cols : (row+1)*cols]
				i := 0
				for oy := 0; oy < d.OutH; oy++ {
					iy := oy*d.StrideH - d.PadH + ky
					if iy < 0 || iy >= d.InH {
						for ox := 0; ox < d.OutW; ox++ {
							dst[i] = 0
							i++
						}
						continue
					}
					rowBase := chanBase + iy*d.InW
					for ox := 0; ox < d.OutW; ox++ {
						ix := ox*d.StrideW - d.PadW + kx
						if ix < 0 || ix >= d.InW {
							dst[i] = 0
						} else {
							dst[i] = img[rowBase+ix]
						}
						i++
					}
				}
				row++
			}
		}
	}
}

// Col2Im scatters the column matrix back into an image, accumulating
// overlapping contributions. It is the adjoint of Im2Col and is used to
// compute input gradients of convolution. img is NOT zeroed first.
func Col2Im(img, col []float32, d ConvDims) {
	cols := d.ColCols()
	row := 0
	for c := 0; c < d.InC; c++ {
		chanBase := c * d.InH * d.InW
		for ky := 0; ky < d.KH; ky++ {
			for kx := 0; kx < d.KW; kx++ {
				src := col[row*cols : (row+1)*cols]
				i := 0
				for oy := 0; oy < d.OutH; oy++ {
					iy := oy*d.StrideH - d.PadH + ky
					if iy < 0 || iy >= d.InH {
						i += d.OutW
						continue
					}
					rowBase := chanBase + iy*d.InW
					for ox := 0; ox < d.OutW; ox++ {
						ix := ox*d.StrideW - d.PadW + kx
						if ix >= 0 && ix < d.InW {
							img[rowBase+ix] += src[i]
						}
						i++
					}
				}
				row++
			}
		}
	}
}
