package core

import (
	"math"
	"sync"

	"heteroswitch/internal/fl"
	"heteroswitch/internal/nn"
)

// Mode selects how much of Algorithm 1 is active, matching the ablation rows
// of Table 4.
type Mode int

// Operating modes.
const (
	// ModeFull is HeteroSwitch proper: bias-gated transformation (Switch 1)
	// and loss-gated SWAD adoption (Switch 2).
	ModeFull Mode = iota
	// ModeTransformOnly always applies the ISP transformation and never uses
	// SWAD (Table 4's "ISP Transformation" row).
	ModeTransformOnly
	// ModeTransformSWAD always applies the transformation AND always returns
	// the SWAD average (Table 4's "+ SWAD" row) — the one-size-fits-all
	// variant HeteroSwitch improves upon.
	ModeTransformSWAD
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case ModeTransformOnly:
		return "ISP-Transformation"
	case ModeTransformSWAD:
		return "ISP+SWAD"
	default:
		return "HeteroSwitch"
	}
}

// HeteroSwitch is the paper's selective generalization strategy. It
// implements fl.Strategy; the server side is FedAvg aggregation plus the
// L_EMA tracking of eq. 1.
type HeteroSwitch struct {
	// Mode selects full switching or an always-on ablation.
	Mode Mode
	// Alpha is the EMA smoothing factor of eq. 1 (paper: 0.9).
	Alpha float64
	// Transform perturbs one sample tensor; defaults to RandomWBGamma with
	// the appendix's tuned degrees (WB 0.001, gamma 0.9).
	Transform TransformFunc

	mu      sync.Mutex
	lema    float64
	hasLEMA bool
}

// New returns HeteroSwitch in full switching mode with the paper's tuned
// hyperparameters.
func New() *HeteroSwitch {
	return &HeteroSwitch{
		Mode:      ModeFull,
		Alpha:     0.9,
		Transform: RandomWBGamma(0.001, 0.9),
	}
}

// NewWithMode returns the requested ablation variant with default
// hyperparameters.
func NewWithMode(m Mode) *HeteroSwitch {
	h := New()
	h.Mode = m
	return h
}

// Name implements fl.Strategy.
func (h *HeteroSwitch) Name() string { return h.Mode.String() }

// LEMA returns the current EMA of the aggregated train loss and whether it
// has been initialized (it is undefined until the first aggregation).
func (h *HeteroSwitch) LEMA() (float64, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.lema, h.hasLEMA
}

// LocalUpdate implements Algorithm 1 (ClientUpdate).
func (h *HeteroSwitch) LocalUpdate(ctx *fl.ClientContext) fl.ClientResult {
	lema, hasLEMA := h.LEMA()

	// Line 2: L_init = L(D, W).
	initLoss := fl.EvalLoss(ctx.Net, ctx.Loss, ctx.Client.Data, ctx.Cfg.BatchSize)

	// Lines 3-5: Switch 1 — the global model already fits this data better
	// than the population average, so the data is likely (system-)biased.
	var switch1 bool
	switch h.Mode {
	case ModeTransformOnly, ModeTransformSWAD:
		switch1 = true
	default:
		switch1 = hasLEMA && initLoss < lema
	}

	// Lines 6-8: random ISP transformation on the client's data.
	data := ctx.Client.Data
	if switch1 {
		tf := h.Transform
		if tf == nil {
			tf = RandomWBGamma(0.001, 0.9)
		}
		data = TransformDataset(data, tf, ctx.RNG)
	}

	// Lines 9-21: local SGD; when Switch 1 is on, maintain the per-batch
	// weight average W_SWA (SWAD — denser than SWA's per-epoch averaging).
	useSWAD := switch1 && h.Mode != ModeTransformOnly
	var swa nn.Weights
	var batchHook fl.BatchHook
	if useSWAD {
		swa = ctx.Net.Snapshot() // line 10: initialize W_SWA as a copy of W
		batchHook = func(net *nn.Network, batchIdx int) {
			// Line 17: W_SWA ← (W_SWA·Idx_b + W) / (Idx_b + 1)
			w := net.Snapshot()
			swa.Lerp(float32(1.0/float64(batchIdx+1)), w)
		}
	}
	trainLoss := fl.TrainLocal(ctx.Net, data, ctx.Cfg, ctx.Loss, ctx.RNG, nil, batchHook)

	// Lines 22-29: Switch 2 — adopt the averaged weights only if training
	// still tracks below the population EMA.
	var switch2 bool
	switch h.Mode {
	case ModeTransformSWAD:
		switch2 = true
	case ModeTransformOnly:
		switch2 = false
	default:
		switch2 = switch1 && hasLEMA && trainLoss < lema
	}

	var weights nn.Weights
	if switch2 && useSWAD {
		weights = swa
	} else {
		weights = ctx.Net.Snapshot()
	}
	return fl.ClientResult{
		ClientID: ctx.Client.ID, DeviceIdx: ctx.Client.Device,
		NumSamples: ctx.Client.Data.Len(),
		Weights:    weights,
		TrainLoss:  trainLoss, InitLoss: initLoss,
	}
}

// Aggregate implements fl.Strategy: FedAvg aggregation plus the eq. 1 EMA
// update over the round's sample-weighted mean train loss.
func (h *HeteroSwitch) Aggregate(global nn.Weights, results []fl.ClientResult, cfg fl.Config) nn.Weights {
	if len(results) == 0 {
		return global
	}
	out := fl.FedAvg{}.Aggregate(global, results, cfg)

	var lcur, total float64
	for _, r := range results {
		lcur += r.TrainLoss * float64(r.NumSamples)
		total += float64(r.NumSamples)
	}
	lcur /= total
	if math.IsNaN(lcur) || math.IsInf(lcur, 0) {
		return out
	}
	h.mu.Lock()
	if h.hasLEMA {
		h.lema = h.Alpha*lcur + (1-h.Alpha)*h.lema // eq. 1
	} else {
		h.lema = lcur
		h.hasLEMA = true
	}
	h.mu.Unlock()
	return out
}

// interface conformance check
var _ fl.Strategy = (*HeteroSwitch)(nil)
