package serve

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// histBuckets spans 2^histMinExp up to 2^(histMinExp+histBuckets-2) in
// power-of-two buckets, with bucket 0 catching everything below and the last
// bucket everything above — wide enough for any virtual latency a sane
// service model produces.
const (
	histBuckets = 64
	histMinExp  = -30
)

// Histogram is a fixed power-of-two-bucket latency histogram. Bucketing uses
// math.Frexp — pure exponent extraction, no transcendental whose libm could
// vary — so two runs with identical latencies produce byte-identical String
// output; the CI smoke diffs exactly that.
type Histogram struct {
	counts [histBuckets]int64
	total  int64
}

// Add records one latency observation.
func (h *Histogram) Add(d float64) {
	h.counts[bucketOf(d)]++
	h.total++
}

// bucketOf maps a latency to its bucket: b such that d ∈ [2^(histMinExp+b-1),
// 2^(histMinExp+b)), clamped at both ends.
func bucketOf(d float64) int {
	if d <= 0 {
		return 0
	}
	_, exp := math.Frexp(d) // d = frac × 2^exp, frac ∈ [0.5, 1)
	b := exp - histMinExp
	if b < 0 {
		return 0
	}
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 { return h.total }

// Equal reports whether two histograms are identical bucket by bucket.
func (h *Histogram) Equal(o *Histogram) bool { return h.counts == o.counts && h.total == o.total }

// String renders the non-empty buckets as "[lo, hi): count" lines — the
// bit-diffable artifact the CI smoke compares across runs.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "latency histogram (%d requests)\n", h.total)
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo := math.Ldexp(1, histMinExp+i-1)
		hi := math.Ldexp(1, histMinExp+i)
		switch i {
		case 0:
			fmt.Fprintf(&b, "  [0, %g): %d\n", hi, c)
		case histBuckets - 1:
			fmt.Fprintf(&b, "  [%g, +inf): %d\n", lo, c)
		default:
			fmt.Fprintf(&b, "  [%g, %g): %d\n", lo, hi, c)
		}
	}
	return b.String()
}

// Report is one load run's deterministic summary: throughput and exact
// order-statistic latency quantiles in virtual time, batching efficiency,
// and an FNV-1a digest of every request's output in request order — the
// value two runs (or two intra-op budgets) must reproduce bit-for-bit.
type Report struct {
	// Requests counts every finished request, served or shed; Served only
	// those that completed service (latency stats cover exactly these).
	Requests int
	Served   int
	// ShedQueue/ShedDeadline count admission rejections: arrivals refused at
	// a full pending queue, and queued requests dropped at service start
	// because their wait blew the deadline. Reissues counts closed-loop
	// clients that immediately re-entered after a shed; MaxQueue is the
	// peak pending depth (forming batch plus flushed queue). All zero when
	// admission control is off.
	ShedQueue    int
	ShedDeadline int
	Reissues     int
	MaxQueue     int
	Batches      int
	MeanBatch    float64
	VirtualTime  float64
	// Throughput is Served / VirtualTime (virtual requests per time unit).
	Throughput    float64
	MeanLatency   float64
	P50, P95, P99 float64
	OutputDigest  uint64
	Hist          Histogram
}

// quantiles fills the report's latency summary from the raw per-request
// latencies (exact sorted order statistics, not histogram interpolation).
func (r *Report) quantiles(lat []float64) {
	if len(lat) == 0 {
		return
	}
	sorted := append([]float64(nil), lat...)
	sort.Float64s(sorted)
	var sum float64
	for _, d := range sorted {
		sum += d
	}
	r.MeanLatency = sum / float64(len(sorted))
	pick := func(q float64) float64 {
		return sorted[int(q*float64(len(sorted)-1))]
	}
	r.P50, r.P95, r.P99 = pick(0.50), pick(0.95), pick(0.99)
}

// String renders the summary; like the histogram it is deterministic, so the
// CI smoke can diff two runs' full stdout.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests=%d batches=%d mean_batch=%.6g\n", r.Requests, r.Batches, r.MeanBatch)
	fmt.Fprintf(&b, "virtual_time=%.6g throughput=%.6g req/unit\n", r.VirtualTime, r.Throughput)
	fmt.Fprintf(&b, "latency mean=%.6g p50=%.6g p95=%.6g p99=%.6g\n", r.MeanLatency, r.P50, r.P95, r.P99)
	fmt.Fprintf(&b, "admission served=%d shed_queue=%d shed_deadline=%d reissues=%d max_queue=%d\n",
		r.Served, r.ShedQueue, r.ShedDeadline, r.Reissues, r.MaxQueue)
	fmt.Fprintf(&b, "output_digest=%016x\n", r.OutputDigest)
	b.WriteString(r.Hist.String())
	return b.String()
}
