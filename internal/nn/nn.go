// Package nn is a compact, dependency-free neural-network training stack:
// layers with explicit forward/backward passes, losses, an SGD optimizer,
// and utilities for extracting and injecting flat parameter lists (the
// interface federated learning needs for model aggregation).
//
// Design notes:
//
//   - Layers are stateful: Forward caches whatever Backward needs, so a
//     Backward call must follow the matching Forward on the same layer
//     instance. A layer instance is therefore not safe for concurrent use;
//     build one network instance per worker goroutine.
//   - Parameter gradients are ACCUMULATED by Backward. Call ZeroGrads (or
//     Optimizer.Step, which zeroes after applying) between batches.
//   - Tensors are NCHW float32 throughout.
package nn

import (
	"fmt"
	"io"

	"heteroswitch/internal/tensor"
)

// Param is one trainable tensor together with its gradient accumulator.
type Param struct {
	Name    string
	W       *tensor.Tensor
	Grad    *tensor.Tensor
	NoDecay bool // true for biases and normalization affine params
}

// Layer is a differentiable network component.
type Layer interface {
	// Forward computes the layer output for input x. When train is true the
	// layer caches intermediates for Backward and uses training behaviour
	// (batch statistics, dropout masks).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward consumes dL/d(output) and returns dL/d(input), accumulating
	// parameter gradients along the way.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's trainable parameters (possibly empty).
	Params() []*Param
	// States returns non-trained persistent tensors (e.g. BatchNorm running
	// statistics) that federated averaging should still aggregate.
	States() []*tensor.Tensor
	// Name returns a short human-readable layer description.
	Name() string
}

// Network is an ordered sequence of layers, the only composition primitive
// needed here (branching blocks are themselves Layers).
//
// Every network owns a tensor.Arena from which its layers draw per-batch
// output/gradient/scratch tensors; the arena is reset at the top of each
// Forward, so a batch's tensors (including the network output and the loss
// gradient) are valid until the next Forward on the same network. Callers
// that retain a Forward result across batches must Clone it. SetArena(nil)
// restores the legacy allocate-per-batch behaviour.
type Network struct {
	LayerList []Layer

	arena *tensor.Arena
	// intraOp is the kernel parallelism budget granted via SetIntraOp,
	// remembered so layers added later or nested networks can inherit it.
	intraOp int
	// ownsArena is true when this network is the outermost owner of its
	// arena: it resets the arena per batch and detaches the final input
	// gradient from it. A network embedded as a layer of a larger model
	// adopts the parent's arena via SetArena and does neither.
	ownsArena bool
	// dxOut, keyed by gradient size, detaches Backward's return value from
	// the arena (callers like the gradient checker hold it across batches).
	dxOut map[int]*tensor.Tensor
	// frozen caches the compiled inference view built by Freeze; it shares
	// this network's arena and intra-op budget and is re-folded (not
	// recompiled) on every Freeze call.
	frozen *Frozen
	// panelCache/panelVersion/panelSet wire Freeze to a shared packed-weight
	// panel cache (SetPanelSource, the serving replica path): the frozen ops
	// bind to the version's shared panelSet instead of private handles, and
	// the network holds one reference on the set it currently serves from.
	panelCache   *PanelCache
	panelVersion int
	panelSet     *panelSet
}

// NewNetwork builds a network from the given layers with a fresh arena.
func NewNetwork(layers ...Layer) *Network {
	n := &Network{LayerList: layers}
	n.SetArena(tensor.NewArena())
	n.ownsArena = true
	return n
}

// SetArena attaches a (possibly nil) arena to the network and every layer
// that implements ArenaUser. The network becomes a non-owner: it no longer
// resets the arena per batch, which is what a parent network embedding this
// one as a layer relies on. SetArena(nil) disables arena recycling entirely
// (every layer falls back to tensor.New), which the equivalence tests use to
// A/B the arena against fresh allocation.
func (n *Network) SetArena(a *tensor.Arena) {
	n.arena = a
	n.ownsArena = false
	for _, l := range n.LayerList {
		if u, ok := l.(ArenaUser); ok {
			u.SetArena(a)
		}
	}
}

// SetIntraOp grants every compute-heavy layer an intra-op kernel parallelism
// budget (the maximum cores one kernel may occupy), propagating through the
// layer tree like SetArena. Freshly built networks default to budget 1 — the
// serial kernels, byte for byte. Any budget produces bit-identical outputs,
// gradients, and trained weights (the parallel kernels partition disjoint
// output rows deterministically; see internal/parallel), so callers may
// grant whatever share of the machine is theirs: the fl server hands each of
// its W client workers GOMAXPROCS/W, single-client paths take the full
// machine.
func (n *Network) SetIntraOp(budget int) {
	n.intraOp = budget
	for _, l := range n.LayerList {
		if u, ok := l.(IntraOpUser); ok {
			u.SetIntraOp(budget)
		}
	}
}

// IntraOp returns the budget last granted via SetIntraOp (0 if never set).
func (n *Network) IntraOp() int { return n.intraOp }

// Forward runs all layers in order. When the network owns its arena, the
// arena is reset first: the previous batch's tensors are recycled, so the
// returned output is valid only until the next Forward call.
func (n *Network) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if n.ownsArena && n.arena != nil {
		n.arena.Reset()
	}
	for _, l := range n.LayerList {
		x = l.Forward(x, train)
	}
	return x
}

// Backward runs the backward pass through all layers in reverse order and
// returns dL/d(network input). On an arena-owning network the returned
// gradient is copied into a small per-size cache so it survives later
// Forward passes (the arena buffer it came from is recycled on the next
// Forward) — but the cache is reused, so the result is only valid until the
// next Backward with a same-size gradient. Nested networks hand the arena
// tensor through untouched.
func (n *Network) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(n.LayerList) - 1; i >= 0; i-- {
		grad = n.LayerList[i].Backward(grad)
	}
	if n.ownsArena && n.arena != nil {
		buf := n.dxOut[grad.Size()]
		if buf == nil || !buf.SameShape(grad) {
			buf = tensor.New(grad.Shape()...)
			if n.dxOut == nil {
				n.dxOut = make(map[int]*tensor.Tensor)
			}
			n.dxOut[grad.Size()] = buf
		}
		buf.CopyFrom(grad)
		return buf
	}
	return grad
}

// Arena returns the network's arena (nil when disabled). Training loops use
// it to co-allocate per-batch tensors that live outside the layer stack —
// the loss gradient, for one — with the same per-batch lifetime.
func (n *Network) Arena() *tensor.Arena { return n.arena }

// Params returns all trainable parameters in a stable order (layer order,
// then each layer's declared order). The order is the contract federated
// aggregation relies on.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.LayerList {
		out = append(out, l.Params()...)
	}
	return out
}

// States returns all persistent non-trained tensors in stable order.
func (n *Network) States() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range n.LayerList {
		out = append(out, l.States()...)
	}
	return out
}

// ZeroGrads clears every parameter gradient.
func (n *Network) ZeroGrads() {
	for _, p := range n.Params() {
		p.Grad.Zero()
	}
}

// NumParams returns the total number of trainable scalars.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		total += p.W.Size()
	}
	return total
}

// Name describes the network briefly.
func (n *Network) Name() string {
	return fmt.Sprintf("Network(%d layers, %d params)", len(n.LayerList), n.NumParams())
}

// Snapshot deep-copies all parameters and states into a Weights value.
func (n *Network) Snapshot() Weights {
	ps := n.Params()
	ss := n.States()
	w := Weights{
		Params: make([]*tensor.Tensor, len(ps)),
		States: make([]*tensor.Tensor, len(ss)),
	}
	for i, p := range ps {
		w.Params[i] = p.W.Clone()
	}
	for i, s := range ss {
		w.States[i] = s.Clone()
	}
	return w
}

// SnapshotInto copies all parameters and states into w's existing tensors,
// avoiding the allocations of Snapshot. w must have been created from the
// same architecture (e.g. by Snapshot or Weights.Clone); any shape mismatch
// is an error and leaves w partially written.
func (n *Network) SnapshotInto(w Weights) error {
	ps := n.Params()
	ss := n.States()
	if len(ps) != len(w.Params) || len(ss) != len(w.States) {
		return fmt.Errorf("nn: snapshot buffer mismatch: have %d/%d tensors, network has %d/%d",
			len(w.Params), len(w.States), len(ps), len(ss))
	}
	for i, p := range ps {
		if p.W.Size() != w.Params[i].Size() {
			return fmt.Errorf("nn: snapshot param %d (%s) size %d != buffer %d", i, p.Name, p.W.Size(), w.Params[i].Size())
		}
		w.Params[i].CopyFrom(p.W)
	}
	for i, s := range ss {
		if s.Size() != w.States[i].Size() {
			return fmt.Errorf("nn: snapshot state %d size %d != buffer %d", i, s.Size(), w.States[i].Size())
		}
		w.States[i].CopyFrom(s)
	}
	return nil
}

// LoadWeights copies the given weights into the network's parameters and
// states. It returns an error on any shape mismatch.
func (n *Network) LoadWeights(w Weights) error {
	ps := n.Params()
	ss := n.States()
	if len(ps) != len(w.Params) || len(ss) != len(w.States) {
		return fmt.Errorf("nn: weight count mismatch: have %d/%d tensors, network wants %d/%d",
			len(w.Params), len(w.States), len(ps), len(ss))
	}
	for i, p := range ps {
		if p.W.Size() != w.Params[i].Size() {
			return fmt.Errorf("nn: param %d (%s) size %d != %d", i, p.Name, p.W.Size(), w.Params[i].Size())
		}
		p.W.CopyFrom(w.Params[i])
	}
	for i, s := range ss {
		if s.Size() != w.States[i].Size() {
			return fmt.Errorf("nn: state %d size %d != %d", i, s.Size(), w.States[i].Size())
		}
		s.CopyFrom(w.States[i])
	}
	return nil
}

// Weights is a detached snapshot of a network's parameters and states —
// the unit of exchange between federated clients and the server.
type Weights struct {
	Params []*tensor.Tensor
	States []*tensor.Tensor
}

// Clone deep-copies the weights.
func (w Weights) Clone() Weights {
	c := Weights{
		Params: make([]*tensor.Tensor, len(w.Params)),
		States: make([]*tensor.Tensor, len(w.States)),
	}
	for i, p := range w.Params {
		c.Params[i] = p.Clone()
	}
	for i, s := range w.States {
		c.States[i] = s.Clone()
	}
	return c
}

// Zero returns a zero-filled weight set with the same shapes as w.
func (w Weights) Zero() Weights {
	z := Weights{
		Params: make([]*tensor.Tensor, len(w.Params)),
		States: make([]*tensor.Tensor, len(w.States)),
	}
	for i, p := range w.Params {
		z.Params[i] = tensor.New(p.Shape()...)
	}
	for i, s := range w.States {
		z.States[i] = tensor.New(s.Shape()...)
	}
	return z
}

// Axpy computes w += a*x across all tensors (params and states).
func (w Weights) Axpy(a float32, x Weights) {
	for i, p := range w.Params {
		p.Axpy(a, x.Params[i])
	}
	for i, s := range w.States {
		s.Axpy(a, x.States[i])
	}
}

// Lerp computes w = (1-a)*w + a*x across all tensors.
func (w Weights) Lerp(a float32, x Weights) {
	for i, p := range w.Params {
		p.Lerp(a, x.Params[i])
	}
	for i, s := range w.States {
		s.Lerp(a, x.States[i])
	}
}

// Scale multiplies all tensors by a.
func (w Weights) Scale(a float32) {
	for _, p := range w.Params {
		p.Scale(a)
	}
	for _, s := range w.States {
		s.Scale(a)
	}
}

// Sub returns w - x as a new weight set (params and states).
func (w Weights) Sub(x Weights) Weights {
	d := w.Clone()
	d.Axpy(-1, x)
	return d
}

// L2DistSq returns the squared L2 distance between the PARAMETER tensors of
// w and x (states excluded), as used by the FedProx proximal term.
func (w Weights) L2DistSq(x Weights) float64 {
	var s float64
	for i, p := range w.Params {
		a, b := p.Data(), x.Params[i].Data()
		for j := range a {
			d := float64(a[j]) - float64(b[j])
			s += d * d
		}
	}
	return s
}

// WriteTo serializes the weights.
func (w Weights) WriteTo(out io.Writer) (int64, error) {
	var total int64
	hdr := []int64{int64(len(w.Params)), int64(len(w.States))}
	for _, h := range hdr {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(h >> (8 * i))
		}
		n, err := out.Write(b[:])
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
	for _, t := range append(append([]*tensor.Tensor{}, w.Params...), w.States...) {
		n, err := t.WriteTo(out)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ReadWeights deserializes a weight set written by WriteTo.
func ReadWeights(in io.Reader) (Weights, error) {
	readInt := func() (int64, error) {
		var b [8]byte
		if _, err := io.ReadFull(in, b[:]); err != nil {
			return 0, err
		}
		var v int64
		for i := 0; i < 8; i++ {
			v |= int64(b[i]) << (8 * i)
		}
		return v, nil
	}
	np, err := readInt()
	if err != nil {
		return Weights{}, err
	}
	ns, err := readInt()
	if err != nil {
		return Weights{}, err
	}
	w := Weights{
		Params: make([]*tensor.Tensor, np),
		States: make([]*tensor.Tensor, ns),
	}
	for i := range w.Params {
		t := tensor.New()
		if _, err := t.ReadFrom(in); err != nil {
			return Weights{}, err
		}
		w.Params[i] = t
	}
	for i := range w.States {
		t := tensor.New()
		if _, err := t.ReadFrom(in); err != nil {
			return Weights{}, err
		}
		w.States[i] = t
	}
	return w, nil
}
