//go:build !race

package serve

// raceEnabled reports a -race build (see race_on_test.go).
const raceEnabled = false
